(* Bechamel microbenchmarks: one Test.make per reproduced table/figure,
   measuring the real (wall-clock) cost of that experiment's core MCR
   operation in this OCaml implementation. *)

open Bechamel
open Toolkit
module Fnv = Mcr_util.Fnv
module Ty = Mcr_types.Ty
module Typlan = Mcr_types.Typlan
module Heap = Mcr_alloc.Heap
module Aspace = Mcr_vmem.Aspace
module Region = Mcr_vmem.Region
module Objgraph = Mcr_trace.Objgraph
module Manager = Mcr_core.Manager
module K = Mcr_simos.Kernel

(* Table 1 / replay matching: hashing a call stack into a call-stack ID *)
let test_callstack_hash =
  let stack = [ "main"; "server_init"; "parse_config"; "read_file" ] in
  Test.make ~name:"table1:callstack-hash" (Staged.stage (fun () -> Fnv.strings stack))

(* Table 3: the tag-maintaining allocation path *)
let test_alloc_tagging =
  let aspace = Aspace.create () in
  let heap = Heap.create aspace ~instrumented:true ~name:"bench" ~size:(1 lsl 20) () in
  Heap.end_startup heap;
  Test.make ~name:"table3:alloc-tagging"
    (Staged.stage (fun () ->
         let a = Heap.malloc heap ~ty_id:3 ~site:5 ~callstack:12345 8 in
         Heap.free heap a))

(* Table 2: the hybrid precise/conservative traversal *)
let test_conservative_scan =
  let kernel = K.create () in
  K.fs_write kernel ~path:Mcr_servers.Listing1.config_path "welcome=hi";
  let m = Manager.launch kernel (Mcr_servers.Listing1.v1 ()) in
  ignore (Manager.wait_startup m ());
  ignore
    (Mcr_workloads.Http_bench.run kernel ~port:Mcr_servers.Listing1.port ~requests:20 ~path:"/" ());
  let image = Manager.root_image m in
  Test.make ~name:"table2:mutable-tracing-analysis"
    (Staged.stage (fun () -> ignore (Objgraph.analyze image)))

(* Region lookup on a many-region address space (an update pins one region
   per immutable object, so hundreds of regions are realistic): the sorted
   array + binary search now in Aspace vs the former linear list scan, kept
   here as the before-reference. *)
let test_region_lookup_linear, test_region_lookup_indexed =
  let aspace = Aspace.create () in
  for _ = 1 to 512 do
    ignore (Aspace.map aspace ~name:"bench" (Aspace.Near Region.Mmap) ~size:8192 Region.Mmap)
  done;
  let regions = Aspace.regions aspace in
  let addrs =
    Array.of_list (List.map (fun (r : Region.t) -> r.Region.base + 8) regions)
  in
  let cursor = ref 0 in
  let next_addr () =
    let a = addrs.(!cursor) in
    cursor := (!cursor + 1) mod Array.length addrs;
    a
  in
  ( Test.make ~name:"aspace:find-region-linear-list(512)"
      (Staged.stage (fun () ->
           ignore (List.find_opt (fun r -> Region.contains r (next_addr ())) regions))),
    Test.make ~name:"aspace:find-region-binary-search(512)"
      (Staged.stage (fun () -> ignore (Aspace.find_region aspace (next_addr ())))) )

(* Figure 3: the per-object type transformation applied during transfer *)
let test_type_transform =
  let src_env = Ty.env_create () and dst_env = Ty.env_create () in
  Ty.env_add src_env "l_t"
    (Ty.Struct { sname = "l_t"; fields = [ ("value", Ty.Int); ("next", Ty.Ptr (Ty.Named "l_t")) ] });
  Ty.env_add dst_env "l_t"
    (Ty.Struct
       { sname = "l_t";
         fields = [ ("value", Ty.Int); ("next", Ty.Ptr (Ty.Named "l_t")); ("new", Ty.Int) ] });
  let plan =
    match Typlan.plan ~src_env ~dst_env ~src:(Ty.Named "l_t") ~dst:(Ty.Named "l_t") with
    | Ok p -> p
    | Error e -> failwith e
  in
  let src = [| 5; 0x9da68e8 |] in
  let dst = Array.make 3 0 in
  Test.make ~name:"fig3:type-transform"
    (Staged.stage (fun () ->
         Typlan.apply plan ~read:(Array.get src) ~write:(Array.set dst)))

let run () =
  print_endline "\nBechamel microbenchmarks (ns per run, wall clock)";
  print_endline "=================================================";
  let tests =
    [ test_callstack_hash; test_alloc_tagging; test_conservative_scan; test_type_transform;
      test_region_lookup_linear; test_region_lookup_indexed ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-36s %12.1f ns/run\n" name est
          | _ -> Printf.printf "  %-36s (no estimate)\n" name)
        results)
    tests
