(* The benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md section 4 for the experiment index).

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- table3  # one experiment
   Experiments: table1 table2 table3 fig3 quiescence control-migration
                update-time memory spec dirty-reduction ablation micro
                fault-matrix downtime fleet image (the last four accept
                --smoke: reduced deterministic subset; downtime also
                accepts --workers N,N,... for the transfer worker-pool
                sweep)
   Regression gate:
     dune exec bench/main.exe -- check --against BENCH_downtime.json \
       --against BENCH_fleet.json --tolerance 15%
   --against is repeatable; each baseline is dispatched on its cells'
   "sweep" field (fleet cells re-run the rollout, downtime cells re-run
   the update) and the run fails (exit 1) when any cell regresses past
   the tolerance. *)

let smoke = ref false
let workers = ref [ 1; 2; 4; 8 ]

let experiments =
  [
    ("table1", fun () -> Experiments.table1 ());
    ("table2", fun () -> Experiments.table2 ());
    ("table3", fun () -> Experiments.table3 ());
    ("fig3", fun () -> ignore (Experiments.fig3 ()));
    ("quiescence", fun () -> Experiments.quiescence ());
    ("control-migration", fun () -> Experiments.control_migration ());
    ("update-time", fun () -> Experiments.update_time ());
    ("memory", fun () -> Experiments.memory ());
    ("cpu", fun () -> Experiments.cpu ());
    ("spec", fun () -> Experiments.spec ());
    ("dirty-reduction", fun () -> Experiments.dirty_reduction ());
    ("ablation", fun () -> Experiments.ablation ());
    ("micro", fun () -> Micro.run ());
    ("fault-matrix", fun () -> Faultbench.run ~smoke:!smoke ());
    ("downtime", fun () -> Downtime.run ~smoke:!smoke ~workers:!workers ());
    ("fleet", fun () -> Fleetbench.run ~smoke:!smoke ());
    ("image", fun () -> Imagebench.run ~smoke:!smoke ());
    ("latency", fun () -> Latencybench.run ~smoke:!smoke ());
  ]

let usage () =
  print_endline "usage: main.exe [experiment...]";
  print_endline "experiments:";
  List.iter (fun (name, _) -> print_endline ("  " ^ name)) experiments;
  print_endline "  all (default)";
  print_endline "  check [--against <baseline.json>]... --tolerance <pct>%"

let against = ref []
let tolerance_pct = ref 15

let parse_tolerance s =
  let s = String.trim s in
  let s =
    if String.length s > 0 && s.[String.length s - 1] = '%' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  match int_of_string_opt s with
  | Some n when n >= 0 -> n
  | _ ->
      Printf.printf "bad --tolerance %S (want e.g. 15%%)\n" s;
      exit 1

let parse_workers s =
  match
    List.map
      (fun w -> match int_of_string_opt (String.trim w) with Some n when n >= 1 -> n | _ -> raise Exit)
      (String.split_on_char ',' s)
  with
  | ws -> ws
  | exception Exit ->
      Printf.printf "bad --workers list %S (want e.g. 1,4)\n" s;
      exit 1

(* Each baseline file declares its own sweep family in every cell's
   "sweep" field; peek at the first cell to pick the checker. Unreadable
   or malformed files fall through to the downtime checker, which reports
   the problem and exits 2. *)
let baseline_kind path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let data = really_input_string ic n in
    close_in ic;
    data
  with
  | exception Sys_error _ -> None
  | data -> (
      match Mcr_obs.Json.parse data with
      | Error _ -> None
      | Ok j -> (
          match Mcr_obs.Json.to_list j with
          | Some (first :: _) -> Mcr_obs.Json.str_field "sweep" first
          | _ -> None))

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  smoke := List.mem "--smoke" args;
  let args = List.filter (fun a -> a <> "--smoke") args in
  let rec strip_workers = function
    | "--workers" :: spec :: rest ->
        workers := parse_workers spec;
        strip_workers rest
    | "--against" :: path :: rest ->
        against := path :: !against;
        strip_workers rest
    | "--tolerance" :: spec :: rest ->
        tolerance_pct := parse_tolerance spec;
        strip_workers rest
    | a :: rest -> a :: strip_workers rest
    | [] -> []
  in
  let args = strip_workers args in
  match args with
  | [ "check" ] ->
      let baselines =
        match List.rev !against with [] -> [ "BENCH_downtime.json" ] | l -> l
      in
      List.iter
        (fun path ->
          match baseline_kind path with
          | Some "fleet" -> Fleetbench.check ~against:path ~tolerance_pct:!tolerance_pct ()
          | Some "image" -> Imagebench.check ~against:path ~tolerance_pct:!tolerance_pct ()
          | Some "latency" ->
              Latencybench.check ~against:path ~tolerance_pct:!tolerance_pct ()
          | _ -> Downtime.check ~against:path ~tolerance_pct:!tolerance_pct ())
        baselines
  | [] | [ "all" ] ->
      print_endline "MCR reproduction harness: all experiments";
      List.iter (fun (_, f) -> f ()) experiments
  | [ "help" ] | [ "--help" ] -> usage ()
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> f ()
          | None ->
              Printf.printf "unknown experiment %S\n" name;
              usage ();
              exit 1)
        names
