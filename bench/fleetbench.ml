(* The fleet experiment: canary-gated rolling live update across N
   instances behind the simulated balancer, swept over fleet sizes, wave
   policies, and seeded faults.

   Three scenario kinds, each with hard assertions (exit 1 on violation):

   - clean: the rollout must complete (all instances on the target
     version), route zero client-visible errors, and never drop aggregate
     availability below [n - max_unavailable] — the policy bound.
   - fault-halt: a transfer-conflict fault seeded into the canary must
     roll the canary back and halt the rollout with at least
     [n - canary - wave] instances never leaving the starting version.
   - slo-halt: an unmeetable SLO downtime budget on the canary must halt
     the rollout and, under [Rollback_updated], revert every
     already-updated instance back to the starting version.

   $MCR_FLEET_JSON: write every scenario's cell as JSON (the committed
   BENCH_fleet.json baseline is this file from a smoke run, and
   [check ~against] re-measures every cell against it with a tolerance).

   $MCR_FLIGHT_DIR: write every rollout's fleet flight summary
   ({!Mcr_obs.Fleet_flight.to_json}) into that directory, one file per
   scenario — mcr-postmortem renders them. *)

module Policy = Mcr_core.Policy
module Testbed = Mcr_workloads.Testbed
module Fleet_policy = Mcr_fleet.Fleet_policy
module Fleet = Mcr_fleet.Fleet
module Rollout = Mcr_fleet.Rollout
module Fleet_flight = Mcr_obs.Fleet_flight
module Json = Mcr_obs.Json

let fms ns = Printf.sprintf "%.1f" (float_of_int ns /. 1e6)

type expect = Clean | Fault_halt | Slo_halt

let expect_to_string = function
  | Clean -> "clean"
  | Fault_halt -> "fault_halt"
  | Slo_halt -> "slo_halt"

let expect_of_string = function
  | "clean" -> Some Clean
  | "fault_halt" -> Some Fault_halt
  | "slo_halt" -> Some Slo_halt
  | _ -> None

type scenario = {
  server : Testbed.server;
  n : int;
  canary : int;
  wave : int;
  max_unavailable : int;
  halt : Fleet_policy.halt;
  fault_seed : int option;  (* arms [fault_instance] with of_seed (seed + i) *)
  fault_instance : int option;
  slo_downtime_ns : int option;  (* canary-halting SLO budget when set *)
  expect : expect;
}

let scenario ?fault_seed ?fault_instance ?slo_downtime_ns ~expect server ~n ~canary ~wave
    ~max_unavailable ~halt () =
  {
    server;
    n;
    canary;
    wave;
    max_unavailable;
    halt;
    fault_seed;
    fault_instance;
    slo_downtime_ns;
    expect;
  }

(* Seed 3 maps to a transfer conflict in Mcr_fault.Fault.of_seed — a fault
   the update pipeline always hits, so the canary rollback is guaranteed
   (instance 0 keeps the fleet seed unshifted). *)
let conflict_seed = 3

let smoke_scenarios =
  [
    scenario Testbed.Nginx ~n:4 ~canary:1 ~wave:2 ~max_unavailable:2
      ~halt:Fleet_policy.Halt_only ~expect:Clean ();
    scenario Testbed.Nginx ~n:8 ~canary:1 ~wave:4 ~max_unavailable:4
      ~halt:Fleet_policy.Halt_only ~expect:Clean ();
    scenario Testbed.Nginx ~n:8 ~canary:1 ~wave:2 ~max_unavailable:2
      ~halt:Fleet_policy.Halt_only ~fault_seed:conflict_seed ~fault_instance:0
      ~expect:Fault_halt ();
    scenario Testbed.Nginx ~n:8 ~canary:1 ~wave:2 ~max_unavailable:2
      ~halt:Fleet_policy.Rollback_updated ~slo_downtime_ns:1 ~expect:Slo_halt ();
  ]

let full_scenarios =
  smoke_scenarios
  @ [
      scenario Testbed.Nginx ~n:16 ~canary:2 ~wave:4 ~max_unavailable:4
        ~halt:Fleet_policy.Halt_only ~expect:Clean ();
      scenario Testbed.Nginx ~n:32 ~canary:2 ~wave:8 ~max_unavailable:8
        ~halt:Fleet_policy.Halt_only ~expect:Clean ();
      scenario Testbed.Vsftpd ~n:8 ~canary:1 ~wave:4 ~max_unavailable:4
        ~halt:Fleet_policy.Halt_only ~expect:Clean ();
      scenario Testbed.Httpd ~n:8 ~canary:1 ~wave:2 ~max_unavailable:2
        ~halt:Fleet_policy.Rollback_updated ~fault_seed:conflict_seed ~fault_instance:0
        ~expect:Fault_halt ();
    ]

let policy_of sc =
  let pol =
    Fleet_policy.default
    |> Fleet_policy.with_canary sc.canary
    |> Fleet_policy.with_wave sc.wave
    |> Fleet_policy.with_max_unavailable sc.max_unavailable
    |> Fleet_policy.with_halt sc.halt
  in
  let pol =
    match (sc.fault_seed, sc.fault_instance) with
    | Some seed, Some i -> Fleet_policy.with_fault ~seed:(Some seed) ~instances:[ i ] pol
    | _ -> pol
  in
  match sc.slo_downtime_ns with
  | Some ns ->
      Fleet_policy.with_update
        (Policy.with_slo ~downtime_ns:(Some ns) ~total_ns:None Policy.default)
        pol
  | None -> pol

let label sc =
  Printf.sprintf "%s n=%d %s" (Testbed.name sc.server) sc.n (expect_to_string sc.expect)

let measure sc =
  let fleet = Fleet.of_testbed ~policy:(policy_of sc) sc.server ~n:sc.n in
  let summary = Rollout.execute fleet in
  (fleet, summary)

let flush_summary sc (s : Fleet_flight.t) =
  match Sys.getenv_opt "MCR_FLIGHT_DIR" with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path =
        Filename.concat dir
          (Printf.sprintf "fleet_%s_n%d_%s.json" (Testbed.name sc.server) sc.n
             (expect_to_string sc.expect))
      in
      let oc = open_out_bin path in
      output_string oc (Fleet_flight.to_json s);
      close_out oc;
      Printf.printf "fleet: wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Assertions: every scenario states what its rollout must have done. *)

let base_tag sc = (Testbed.base_version sc.server).Mcr_program.Progdef.version_tag

let on_base_count fleet sc =
  let tag = base_tag sc in
  List.length
    (List.filter (fun i -> Fleet.version_tag fleet i = tag) (List.init sc.n Fun.id))

let verify fleet sc (s : Fleet_flight.t) =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.printf "!! %s: %s\n" (label sc) msg;
        exit 1)
      fmt
  in
  match sc.expect with
  | Clean ->
      if s.Fleet_flight.fs_halted then fail "expected a clean rollout, got a halt";
      if s.Fleet_flight.fs_updated <> sc.n then
        fail "only %d/%d instances reached the target version" s.Fleet_flight.fs_updated
          sc.n;
      if s.Fleet_flight.fs_client_errors <> 0 then
        fail "%d client-visible errors during a clean rollout"
          s.Fleet_flight.fs_client_errors;
      let bound = sc.n - sc.max_unavailable in
      if s.Fleet_flight.fs_min_serving < bound then
        fail "availability dropped to %d serving, below the max-unavailable bound %d"
          s.Fleet_flight.fs_min_serving bound
  | Fault_halt ->
      if not s.Fleet_flight.fs_halted then fail "seeded canary fault did not halt";
      if s.Fleet_flight.fs_blocking = None then fail "halted without a blocking verdict";
      let untouched = on_base_count fleet sc in
      let bound = sc.n - sc.canary - sc.wave in
      if untouched < bound then
        fail "only %d instances still on %s after the halt (bound %d)" untouched
          (base_tag sc) bound
  | Slo_halt ->
      if not s.Fleet_flight.fs_halted then fail "SLO violation did not halt";
      if s.Fleet_flight.fs_blocking = None then fail "halted without a blocking verdict";
      if sc.halt = Fleet_policy.Rollback_updated then begin
        if s.Fleet_flight.fs_reverted < 1 then
          fail "halt policy rollback_updated reverted nothing";
        let untouched = on_base_count fleet sc in
        if untouched <> sc.n then
          fail "%d instances not back on %s after the rollback wave" (sc.n - untouched)
            (base_tag sc)
      end

(* ------------------------------------------------------------------ *)

let cell_json sc (s : Fleet_flight.t) =
  let opt = function Some v -> string_of_int v | None -> "null" in
  Printf.sprintf
    "    {\"sweep\": \"fleet\", \"server\": %S, \"n\": %d, \"canary\": %d, \"wave\": %d, \
     \"max_unavailable\": %d, \"halt\": %S, \"fault_seed\": %s, \"fault_instance\": %s, \
     \"slo_downtime_ns\": %s, \"expect\": %S, \"halted\": %b, \"updated\": %d, \
     \"reverted\": %d, \"makespan_ns\": %d, \"min_serving\": %d, \
     \"min_availability_permille\": %d, \"requests\": %d, \"client_errors\": %d}"
    (Testbed.name sc.server) sc.n sc.canary sc.wave sc.max_unavailable
    (Fleet_policy.halt_to_string sc.halt)
    (opt sc.fault_seed) (opt sc.fault_instance) (opt sc.slo_downtime_ns)
    (expect_to_string sc.expect) s.Fleet_flight.fs_halted s.Fleet_flight.fs_updated
    s.Fleet_flight.fs_reverted s.Fleet_flight.fs_makespan_ns s.Fleet_flight.fs_min_serving
    (Fleet_flight.min_availability_permille s)
    s.Fleet_flight.fs_requests s.Fleet_flight.fs_client_errors

let write_json path json =
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out_bin path in
  output_string oc ("[\n" ^ String.concat ",\n" (List.rev !json) ^ "\n]\n");
  close_out oc;
  Printf.printf "fleet: wrote %s\n" path

let run ?(smoke = false) () =
  let scenarios = if smoke then smoke_scenarios else full_scenarios in
  Printf.printf "\n== fleet%s: canary-gated rolling update (makespan ms) ==\n"
    (if smoke then " (smoke)" else "");
  Printf.printf "%-10s %3s %-24s %-10s %9s %7s %9s %5s %6s\n" "server" "n"
    "policy" "outcome" "makespan" "updated" "min-avail" "errs" "reqs";
  let json = ref [] in
  List.iter
    (fun sc ->
      let fleet, s = measure sc in
      verify fleet sc s;
      flush_summary sc s;
      json := cell_json sc s :: !json;
      let policy_str =
        Printf.sprintf "c=%d w=%d mu=%d %s%s" sc.canary sc.wave sc.max_unavailable
          (Fleet_policy.halt_to_string sc.halt)
          (match sc.fault_seed with Some s -> Printf.sprintf " f=%d" s | None -> "")
      in
      Printf.printf "%-10s %3d %-24s %-10s %9s %3d/%-3d %6d/1000 %5d %6d\n"
        (Testbed.name sc.server) sc.n policy_str
        (if s.Fleet_flight.fs_halted then "HALTED" else "completed")
        (fms s.Fleet_flight.fs_makespan_ns)
        s.Fleet_flight.fs_updated sc.n
        (Fleet_flight.min_availability_permille s)
        s.Fleet_flight.fs_client_errors s.Fleet_flight.fs_requests)
    scenarios;
  (match Sys.getenv_opt "MCR_FLEET_JSON" with
  | Some path -> write_json path json
  | None -> ());
  Printf.printf
    "\nfleet: %d scenario(s) ok — clean rollouts held the availability bound, seeded \
     faults halted at the canary\n"
    (List.length scenarios)

(* ------------------------------------------------------------------ *)
(* Regression gate: re-run every cell of a committed baseline
   (BENCH_fleet.json) and fail when the outcome flips, the makespan
   regresses past the tolerance, availability sinks below the baseline
   floor, or client errors appear. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  data

let server_of_name name = List.find_opt (fun s -> Testbed.name s = name) Testbed.all

let scenario_of_cell cell =
  let ( let* ) = Option.bind in
  let* name = Json.str_field "server" cell in
  let* server = server_of_name name in
  let* n = Json.int_field "n" cell in
  let* canary = Json.int_field "canary" cell in
  let* wave = Json.int_field "wave" cell in
  let* max_unavailable = Json.int_field "max_unavailable" cell in
  let* halt_s = Json.str_field "halt" cell in
  let* halt = Fleet_policy.halt_of_string halt_s in
  let* expect_s = Json.str_field "expect" cell in
  let* expect = expect_of_string expect_s in
  Some
    (scenario server ~n ~canary ~wave ~max_unavailable ~halt ~expect
       ?fault_seed:(Json.int_field "fault_seed" cell)
       ?fault_instance:(Json.int_field "fault_instance" cell)
       ?slo_downtime_ns:(Json.int_field "slo_downtime_ns" cell)
       ())

let check ~against ~tolerance_pct () =
  let data =
    match read_file against with
    | data -> data
    | exception Sys_error e ->
        Printf.printf "fleet check: %s\n" e;
        exit 2
  in
  let cells =
    match Json.parse data with
    | Error e ->
        Printf.printf "fleet check: %s: %s\n" against e;
        exit 2
    | Ok j -> (
        match Json.to_list j with
        | Some l -> l
        | None ->
            Printf.printf "fleet check: %s: expected a JSON array of cells\n" against;
            exit 2)
  in
  Printf.printf "\n== fleet check: %d cell(s) against %s (tolerance %d%%) ==\n"
    (List.length cells) against tolerance_pct;
  let regressions = ref 0 in
  let checked = ref 0 in
  let gate label ok detail =
    incr checked;
    if not ok then incr regressions;
    Printf.printf "%-44s %s  %s\n" label (if ok then "ok" else "REGRESSED") detail
  in
  List.iter
    (fun cell ->
      match scenario_of_cell cell with
      | None -> Printf.printf "fleet check: malformed cell, skipping\n"
      | Some sc ->
          let _fleet, s = measure sc in
          let name = label sc in
          (match Json.bool_field "halted" cell with
          | Some halted ->
              gate (name ^ " outcome")
                (s.Fleet_flight.fs_halted = halted)
                (Printf.sprintf "halted %b -> %b" halted s.Fleet_flight.fs_halted)
          | None -> ());
          (match Json.int_field "makespan_ns" cell with
          | Some baseline ->
              let budget = baseline + (baseline * tolerance_pct / 100) in
              gate (name ^ " makespan")
                (s.Fleet_flight.fs_makespan_ns <= budget)
                (Printf.sprintf "%s -> %s ms" (fms baseline)
                   (fms s.Fleet_flight.fs_makespan_ns))
          | None -> ());
          (match Json.int_field "min_availability_permille" cell with
          | Some baseline ->
              let floor = baseline * (100 - min 100 tolerance_pct) / 100 in
              let got = Fleet_flight.min_availability_permille s in
              gate (name ^ " availability") (got >= floor)
                (Printf.sprintf "%d/1000 -> %d/1000" baseline got)
          | None -> ());
          match Json.int_field "client_errors" cell with
          | Some baseline ->
              gate (name ^ " client errors")
                (s.Fleet_flight.fs_client_errors <= baseline)
                (Printf.sprintf "%d -> %d" baseline s.Fleet_flight.fs_client_errors)
          | None -> ())
    cells;
  if !regressions > 0 then begin
    Printf.printf "\nfleet check: %d gate(s) regressed beyond %d%% of the baseline\n"
      !regressions tolerance_pct;
    exit 1
  end;
  Printf.printf "\nfleet check: all %d gate(s) within %d%% of the baseline\n" !checked
    tolerance_pct
