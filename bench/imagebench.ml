(* The image experiment: persistent-checkpoint cost versus state size
   across the four servers. Each cell loads a server with the paper
   benchmark at a given scale, saves a checkpoint image to disk, reads it
   back and restores it into a brand-new kernel, measuring:

   - image_bytes: encoded on-disk size (sections + hashes + trailer)
   - words / regions / procs: how much state the image carries
   - save_quiesce_ns: virtual time the save spent reaching the quiescent
     point (the only downtime a live save costs the server)
   - restore_settle_ns: virtual time the fresh kernel spent launching and
     settling before the instant install

   Hard assertions (exit 1 on violation): the round-trip is lossless
   (read-back fingerprint and re-encoded bytes identical) and the
   restored instance answers the same benchmark with zero errors.

   $MCR_IMAGE_JSON: write every cell as JSON (the committed
   BENCH_image.json baseline is this file from a smoke run, and
   [check ~against] re-measures every cell against it with a tolerance).

   $MCR_IMAGE_DIR: keep the .mcrimg files in that directory (one per
   cell) instead of deleting them — CI uploads these as artifacts. *)

module K = Mcr_simos.Kernel
module Manager = Mcr_core.Manager
module Policy = Mcr_core.Policy
module Image = Mcr_image.Image
module Testbed = Mcr_workloads.Testbed
module Bench_result = Mcr_workloads.Bench_result
module Timetravel = Mcr_workloads.Timetravel
module Json = Mcr_obs.Json

let fms ns = Printf.sprintf "%.1f" (float_of_int ns /. 1e6)

type scenario = { server : Testbed.server; scale : int }

let smoke_scenarios =
  [
    { server = Testbed.Nginx; scale = 4_000 };
    { server = Testbed.Httpd; scale = 4_000 };
  ]

let full_scenarios =
  List.concat_map
    (fun server -> [ { server; scale = 4_000 }; { server; scale = 1_000 } ])
    Testbed.all

let label sc = Printf.sprintf "%s scale=%d" (Testbed.name sc.server) sc.scale

type cell = {
  image_bytes : int;
  words : int;
  regions : int;
  procs : int;
  save_quiesce_ns : int;
  restore_settle_ns : int;
}

let fail sc fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.printf "!! %s: %s\n" (label sc) msg;
      exit 1)
    fmt

let image_path sc =
  let file =
    Printf.sprintf "image_%s_s%d.mcrimg"
      (String.map (fun c -> if c = ' ' then '-' else c) (Testbed.name sc.server))
      sc.scale
  in
  match Sys.getenv_opt "MCR_IMAGE_DIR" with
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      (Filename.concat dir file, false)
  | None -> (Filename.concat (Filename.get_temp_dir_name ()) file, true)

let measure sc =
  let kernel = K.create () in
  let m = Testbed.launch kernel sc.server in
  ignore (Testbed.benchmark kernel sc.server ~scale:sc.scale ());
  let path, ephemeral = image_path sc in
  let t0 = K.clock_ns kernel in
  let img =
    match Manager.save_image m ~path with
    | Ok img -> img
    | Error e -> fail sc "save: %s" e
  in
  let save_quiesce_ns = K.clock_ns kernel - t0 in
  let on_disk =
    match Image.read ~path with
    | Ok on_disk -> on_disk
    | Error e -> fail sc "read back: %s" (Image.error_to_string e)
  in
  (* determinism: decode of the on-disk bytes re-encodes byte-identically *)
  if Image.encode on_disk <> Image.encode img then
    fail sc "file round-trip is not byte-identical";
  if Image.fingerprint on_disk <> Image.fingerprint img then
    fail sc "fingerprint lost in the file round-trip";
  let k2, m2 =
    match Timetravel.restore on_disk with
    | Ok (k2, m2, _report) -> (k2, m2)
    | Error e -> fail sc "restore: %s" e
  in
  let restore_settle_ns = K.clock_ns k2 in
  let fp =
    Image.aspace_fingerprint ~prog:(Image.prog on_disk)
      (K.aspace (Manager.root_proc m2))
  in
  if fp <> Image.fingerprint on_disk then
    fail sc "restored fingerprint %d differs from the image's %d" fp
      (Image.fingerprint on_disk);
  let r = Testbed.benchmark k2 sc.server ~scale:sc.scale () in
  if r.Bench_result.errors <> 0 then
    fail sc "restored instance answered %d request(s) with errors"
      r.Bench_result.errors;
  let image_bytes = String.length (Image.encode img) in
  if ephemeral then Sys.remove path;
  {
    image_bytes;
    words = Image.total_words img;
    regions = Image.region_count img;
    procs = Image.proc_count img;
    save_quiesce_ns;
    restore_settle_ns;
  }

(* ------------------------------------------------------------------ *)

let cell_json sc c =
  Printf.sprintf
    "    {\"sweep\": \"image\", \"server\": %S, \"scale\": %d, \"image_bytes\": %d, \
     \"words\": %d, \"regions\": %d, \"procs\": %d, \"save_quiesce_ns\": %d, \
     \"restore_settle_ns\": %d}"
    (Testbed.name sc.server) sc.scale c.image_bytes c.words c.regions c.procs
    c.save_quiesce_ns c.restore_settle_ns

let write_json path json =
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out_bin path in
  output_string oc ("[\n" ^ String.concat ",\n" (List.rev !json) ^ "\n]\n");
  close_out oc;
  Printf.printf "image: wrote %s\n" path

let run ?(smoke = false) () =
  let scenarios = if smoke then smoke_scenarios else full_scenarios in
  Printf.printf "\n== image%s: checkpoint save/restore cost vs state size ==\n"
    (if smoke then " (smoke)" else "");
  Printf.printf "%-14s %6s %10s %9s %8s %6s %10s %11s\n" "server" "scale" "bytes"
    "words" "regions" "procs" "save(ms)" "settle(ms)";
  let json = ref [] in
  List.iter
    (fun sc ->
      let c = measure sc in
      json := cell_json sc c :: !json;
      Printf.printf "%-14s %6d %10d %9d %8d %6d %10s %11s\n" (Testbed.name sc.server)
        sc.scale c.image_bytes c.words c.regions c.procs (fms c.save_quiesce_ns)
        (fms c.restore_settle_ns))
    scenarios;
  (match Sys.getenv_opt "MCR_IMAGE_JSON" with
  | Some path -> write_json path json
  | None -> ());
  Printf.printf
    "\nimage: %d scenario(s) ok — every save round-tripped byte-identically and every \
     restored instance served cleanly\n"
    (List.length scenarios)

(* ------------------------------------------------------------------ *)
(* Regression gate: re-run every cell of a committed baseline
   (BENCH_image.json) and fail when the image grows, carries fewer
   processes, or save/restore virtual time regresses past the
   tolerance. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  data

let server_of_name name = List.find_opt (fun s -> Testbed.name s = name) Testbed.all

let scenario_of_cell cell =
  let ( let* ) = Option.bind in
  let* name = Json.str_field "server" cell in
  let* server = server_of_name name in
  let* scale = Json.int_field "scale" cell in
  Some { server; scale }

let check ~against ~tolerance_pct () =
  let data =
    match read_file against with
    | data -> data
    | exception Sys_error e ->
        Printf.printf "image check: %s\n" e;
        exit 2
  in
  let cells =
    match Json.parse data with
    | Error e ->
        Printf.printf "image check: %s: %s\n" against e;
        exit 2
    | Ok j -> (
        match Json.to_list j with
        | Some l -> l
        | None ->
            Printf.printf "image check: %s: expected a JSON array of cells\n" against;
            exit 2)
  in
  Printf.printf "\n== image check: %d cell(s) against %s (tolerance %d%%) ==\n"
    (List.length cells) against tolerance_pct;
  let regressions = ref 0 in
  let checked = ref 0 in
  let gate label ok detail =
    incr checked;
    if not ok then incr regressions;
    Printf.printf "%-44s %s  %s\n" label (if ok then "ok" else "REGRESSED") detail
  in
  List.iter
    (fun cell ->
      match scenario_of_cell cell with
      | None -> Printf.printf "image check: malformed cell, skipping\n"
      | Some sc ->
          let c = measure sc in
          let name = label sc in
          let grow baseline got what =
            let budget = baseline + (baseline * tolerance_pct / 100) in
            gate
              (Printf.sprintf "%s %s" name what)
              (got <= budget)
              (Printf.sprintf "%d -> %d" baseline got)
          in
          (match Json.int_field "image_bytes" cell with
          | Some b -> grow b c.image_bytes "image bytes"
          | None -> ());
          (match Json.int_field "procs" cell with
          | Some b ->
              gate (name ^ " procs") (c.procs >= b)
                (Printf.sprintf "%d -> %d" b c.procs)
          | None -> ());
          (match Json.int_field "save_quiesce_ns" cell with
          | Some b ->
              let budget = b + (b * tolerance_pct / 100) in
              gate (name ^ " save quiesce")
                (c.save_quiesce_ns <= budget)
                (Printf.sprintf "%s -> %s ms" (fms b) (fms c.save_quiesce_ns))
          | None -> ());
          match Json.int_field "restore_settle_ns" cell with
          | Some b ->
              let budget = b + (b * tolerance_pct / 100) in
              gate (name ^ " restore settle")
                (c.restore_settle_ns <= budget)
                (Printf.sprintf "%s -> %s ms" (fms b) (fms c.restore_settle_ns))
          | None -> ())
    cells;
  if !regressions > 0 then begin
    Printf.printf "\nimage check: %d gate(s) regressed beyond %d%% of the baseline\n"
      !regressions tolerance_pct;
    exit 1
  end;
  Printf.printf "\nimage check: all %d gate(s) within %d%% of the baseline\n" !checked
    tolerance_pct
