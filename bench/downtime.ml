(* The downtime experiment: iterative pre-copy vs single-shot service
   interruption, swept over open-connection counts on all four evaluated
   servers.

   For each (server, connections) configuration two fresh simulations run
   with identical preparation — launch, a short workload, [n] long-lived
   held connections — differing only in the update policy: the single-shot
   baseline (the window is the whole update) and pre-copy (the window is
   the final delta). Reported per cell: downtime/total in ms. The run fails
   (exit 1) if pre-copy downtime is not strictly below single-shot downtime
   at the highest connection count for any server — the PR's acceptance
   criterion. *)

module K = Mcr_simos.Kernel
module Manager = Mcr_core.Manager
module Policy = Mcr_core.Policy
module Testbed = Mcr_workloads.Testbed
module Holders = Mcr_workloads.Holders

let fms ns = Printf.sprintf "%.1f" (float_of_int ns /. 1e6)

type cell = { downtime_ns : int; total_ns : int; rounds : int }

let measure server ~conns ~precopy =
  let kernel = K.create () in
  let m = Testbed.launch kernel server in
  ignore (Testbed.benchmark kernel server ~scale:10_000 ());
  let holders =
    if conns > 0 then Some (Testbed.open_holders kernel server ~n:conns) else None
  in
  let policy =
    if precopy then Policy.with_precopy ~max_rounds:6 ~threshold_words:100_000 true Policy.default
    else Policy.default
  in
  let _m2, report = Manager.update m ~policy (Testbed.final_version server) in
  (match holders with Some h -> Holders.close_all h | None -> ());
  if not report.Manager.success then begin
    Printf.printf "!! %s update failed at %d conns (%s): %s\n" (Testbed.name server) conns
      (if precopy then "precopy" else "single-shot")
      (Option.fold ~none:"?" ~some:Mcr_error.to_string report.Manager.failure);
    exit 1
  end;
  {
    downtime_ns = report.Manager.downtime_ns;
    total_ns = report.Manager.total_ns;
    rounds = report.Manager.precopy_rounds;
  }

let run ?(smoke = false) () =
  let points = if smoke then [ 0; 8 ] else [ 0; 25; 50; 100 ] in
  let servers = Testbed.all in
  Printf.printf "\n== downtime%s: pre-copy vs single-shot (downtime/total ms) ==\n"
    (if smoke then " (smoke)" else "");
  Printf.printf "%-10s %5s   %-17s %-23s %9s\n" "server" "conns" "single-shot" "precopy"
    "speedup";
  let top = List.fold_left max 0 points in
  let violations = ref 0 in
  List.iter
    (fun server ->
      List.iter
        (fun conns ->
          let ss = measure server ~conns ~precopy:false in
          let pc = measure server ~conns ~precopy:true in
          let speedup =
            if pc.downtime_ns > 0 then
              float_of_int ss.downtime_ns /. float_of_int pc.downtime_ns
            else infinity
          in
          let at_top = conns = top in
          let ok = pc.downtime_ns < ss.downtime_ns in
          if at_top && not ok then incr violations;
          Printf.printf "%-10s %5d   %7s/%-9s %7s/%-9s(%d rds) %8.1fx%s\n"
            (Testbed.name server) conns (fms ss.downtime_ns) (fms ss.total_ns)
            (fms pc.downtime_ns) (fms pc.total_ns) pc.rounds speedup
            (if at_top && not ok then "  <-- NOT BELOW SINGLE-SHOT" else ""))
        points)
    servers;
  if !violations > 0 then begin
    Printf.printf
      "\ndowntime: %d configuration(s) where pre-copy did not beat single-shot at %d conns\n"
      !violations top;
    exit 1
  end;
  Printf.printf
    "\npre-copy downtime strictly below single-shot at %d connections on all servers\n" top
