(* The downtime experiment, four sweeps over the evaluated servers:

   1. Iterative pre-copy vs single-shot service interruption, swept over
      open-connection counts. For each (server, connections) configuration
      two fresh simulations run with identical preparation — launch, a
      short workload, [n] long-lived held connections — differing only in
      the update policy: the single-shot baseline (the window is the whole
      update) and pre-copy (the window is the final delta). The run fails
      (exit 1) if pre-copy downtime is not strictly below single-shot at
      the highest connection count for any server.

   2. Sharded parallel state transfer, swept over the worker-pool size at
      the highest connection count. The web servers carry per-connection
      buffer ballast (conn_buffer_words / ConnBufferWords config
      directives, with a heap sized to hold it) so the transfer window is
      dominated by tracing + copying — the component the worker pool
      parallelises. The run fails if the largest worker count is not
      strictly below workers=1 for any server, and (full mode only) if
      nginx/httpd do not reach a >= 2x downtime reduction.

   3. Zero-copy page remap vs plain single-shot, over the same connection
      points. The remap pass retracts the per-word copy charge of every
      byte-identical, layout-stable page and charges one remap_page_ns
      instead, so its downtime can only be <= the baseline; the run fails
      if it is not strictly below on vsftpd and OpenSSH at the top
      connection count. Those two servers always measure the 100-conn
      acceptance cell, even in smoke mode.

   4. Dirty-delta scaling: one lineage per server takes a warm update and
      then repeated self-updates under increasing interleaved traffic.
      With named dirty epochs the copied+hashed residue of each window
      must track the traffic actually served since the previous update —
      the run fails if the quiet self-update's residue is not well below
      the reachable heap, or if it does not grow with traffic.

   $MCR_DOWNTIME_JSON: write both sweeps' cells as JSON for machine
   consumption (the CI workflow uploads it as an artifact; the committed
   BENCH_downtime.json baseline is this file from a smoke run, and
   [check ~against] re-measures every cell against it with a tolerance).

   $MCR_FLIGHT_DIR: write every measured update's flight record
   ({!Mcr_obs.Export.flight_json}) into that directory, one file per
   experiment — the post-mortem artifact CI uploads. *)

module K = Mcr_simos.Kernel
module Manager = Mcr_core.Manager
module Policy = Mcr_core.Policy
module Testbed = Mcr_workloads.Testbed
module Holders = Mcr_workloads.Holders
module Nginx = Mcr_servers.Nginx_sim
module Httpd = Mcr_servers.Httpd_sim
module Json = Mcr_obs.Json

let fms ns = Printf.sprintf "%.1f" (float_of_int ns /. 1e6)

type cell = {
  downtime_ns : int;
  total_ns : int;
  rounds : int;
  live_words : int;
  copied_words : int;  (* transferred minus the remapped portion *)
  remapped_words : int;
  hashed_words : int;
  skipped_clean_words : int;
}

let cell_of_report (report : Manager.report) =
  let sum f = List.fold_left (fun acc (_, o) -> acc + f o) 0 report.Manager.transfers in
  let transferred = sum (fun o -> o.Mcr_trace.Transfer.transferred_words) in
  let remapped = sum (fun o -> o.Mcr_trace.Transfer.remapped_words) in
  {
    downtime_ns = report.Manager.downtime_ns;
    total_ns = report.Manager.total_ns;
    rounds = report.Manager.precopy_rounds;
    live_words = sum (fun o -> o.Mcr_trace.Transfer.live_words);
    copied_words = transferred - remapped;
    remapped_words = remapped;
    hashed_words = sum (fun o -> o.Mcr_trace.Transfer.hashed_words);
    skipped_clean_words = sum (fun o -> o.Mcr_trace.Transfer.skipped_clean_words);
  }

(* Flight records of every measured update, oldest first — flushed to
   $MCR_FLIGHT_DIR at the end of the run. *)
let flights : Mcr_obs.Flight.record list ref = ref []

let flush_flights ~name =
  match Sys.getenv_opt "MCR_FLIGHT_DIR" with
  | None -> flights := []
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (Printf.sprintf "flight_%s.json" name) in
      let oc = open_out_bin path in
      output_string oc (Mcr_obs.Export.flight_json (List.rev !flights));
      close_out oc;
      Printf.printf "downtime: wrote %s (%d flight record(s))\n" path (List.length !flights);
      flights := []

let measure ?config ?base_version ?final_version server ~conns ~policy ~label () =
  let kernel = K.create () in
  let m = Testbed.launch ?config ?version:base_version kernel server in
  ignore (Testbed.benchmark kernel server ~scale:10_000 ());
  let holders =
    if conns > 0 then Some (Testbed.open_holders kernel server ~n:conns) else None
  in
  let target =
    match final_version with Some v -> v | None -> Testbed.final_version server
  in
  let _m2, report = Manager.update m ~policy target in
  (match holders with Some h -> Holders.close_all h | None -> ());
  flights := report.Manager.flight :: !flights;
  if not report.Manager.success then begin
    Printf.printf "!! %s update failed at %d conns (%s): %s\n" (Testbed.name server) conns
      label
      (Option.fold ~none:"?" ~some:Mcr_error.to_string report.Manager.failure);
    exit 1
  end;
  cell_of_report report

(* ------------------------------------------------------------------ *)
(* Sweep 1: pre-copy vs single-shot *)

let precopy_policy =
  Policy.with_precopy ~max_rounds:6 ~threshold_words:100_000 true Policy.default

let precopy_sweep ~smoke json =
  let points = if smoke then [ 0; 8 ] else [ 0; 25; 50; 100 ] in
  let servers = Testbed.all in
  Printf.printf "\n== downtime%s: pre-copy vs single-shot (downtime/total ms) ==\n"
    (if smoke then " (smoke)" else "");
  Printf.printf "%-10s %5s   %-17s %-23s %9s\n" "server" "conns" "single-shot" "precopy"
    "speedup";
  let top = List.fold_left max 0 points in
  let violations = ref 0 in
  List.iter
    (fun server ->
      List.iter
        (fun conns ->
          let ss =
            measure server ~conns ~policy:Policy.default ~label:"single-shot" ()
          in
          let pc = measure server ~conns ~policy:precopy_policy ~label:"precopy" () in
          let speedup =
            if pc.downtime_ns > 0 then
              float_of_int ss.downtime_ns /. float_of_int pc.downtime_ns
            else infinity
          in
          let at_top = conns = top in
          let ok = pc.downtime_ns < ss.downtime_ns in
          if at_top && not ok then incr violations;
          json :=
            Printf.sprintf
              "    {\"sweep\": \"precopy\", \"server\": %S, \"conns\": %d, \
               \"single_shot_downtime_ns\": %d, \"precopy_downtime_ns\": %d, \
               \"precopy_rounds\": %d}"
              (Testbed.name server) conns ss.downtime_ns pc.downtime_ns pc.rounds
            :: !json;
          Printf.printf "%-10s %5d   %7s/%-9s %7s/%-9s(%d rds) %8.1fx%s\n"
            (Testbed.name server) conns (fms ss.downtime_ns) (fms ss.total_ns)
            (fms pc.downtime_ns) (fms pc.total_ns) pc.rounds speedup
            (if at_top && not ok then "  <-- NOT BELOW SINGLE-SHOT" else ""))
        points)
    servers;
  if !violations > 0 then begin
    Printf.printf
      "\ndowntime: %d configuration(s) where pre-copy did not beat single-shot at %d conns\n"
      !violations top;
    exit 1
  end;
  Printf.printf
    "\npre-copy downtime strictly below single-shot at %d connections on all servers\n" top

(* ------------------------------------------------------------------ *)
(* Sweep 2: transfer worker-pool size at the top connection count *)

(* Per-connection buffer ballast for the web servers: the config directive
   sizes every held connection's read buffer, and the versions get a heap
   large enough to hold [conns] of them (plus the usual server state). *)
let ballast_words = 65_536
let ballast_heap_words = 8 * 1024 * 1024

let ballast = function
  | Testbed.Nginx ->
      Some
        ( Printf.sprintf "worker_processes 1;\nconn_buffer_words %d;" ballast_words,
          Nginx.base ~heap_words:ballast_heap_words (),
          Nginx.final ~heap_words:ballast_heap_words () )
  | Testbed.Httpd ->
      Some
        ( Printf.sprintf "ServerLimit 2\nThreadsPerChild 2\nConnBufferWords %d" ballast_words,
          Httpd.base ~heap_words:ballast_heap_words (),
          Httpd.final ~heap_words:ballast_heap_words () )
  | Testbed.Vsftpd | Testbed.Sshd -> None

let workers_sweep ~smoke ~workers json =
  let conns = if smoke then 8 else 100 in
  let workers = List.sort_uniq compare (List.filter (fun w -> w >= 1) workers) in
  let workers = if workers = [] then [ 1; 2; 4; 8 ] else workers in
  let servers = Testbed.all in
  Printf.printf
    "\n== downtime%s: sharded parallel transfer at %d conns (single-shot downtime ms) ==\n"
    (if smoke then " (smoke)" else "")
    conns;
  Printf.printf "%-10s" "server";
  List.iter (fun w -> Printf.printf " %9s" (Printf.sprintf "W=%d" w)) workers;
  Printf.printf " %9s\n" "speedup";
  let violations = ref 0 in
  let weak = ref 0 in
  List.iter
    (fun server ->
      let config, base_version, final_version =
        match ballast server with
        | Some (c, b, f) -> (Some c, Some b, Some f)
        | None -> (None, None, None)
      in
      let cells =
        List.map
          (fun w ->
            let policy = Policy.with_transfer_workers w Policy.default in
            ( w,
              measure ?config ?base_version ?final_version server ~conns ~policy
                ~label:(Printf.sprintf "workers=%d" w) () ))
          workers
      in
      let base = snd (List.hd cells) in
      let _, best = List.nth cells (List.length cells - 1) in
      let speedup =
        if best.downtime_ns > 0 then
          float_of_int base.downtime_ns /. float_of_int best.downtime_ns
        else infinity
      in
      (* The worker pool must pay for itself on the ballast-carrying web
         servers: largest pool strictly below workers=1. vsftpd/sshd have
         so little transferable state that the per-worker spawn/join cost
         dominates — reported, not asserted. *)
      let gated = ballast server <> None in
      let ok = best.downtime_ns < base.downtime_ns in
      if gated && not ok then incr violations;
      (* ...and in full mode they must halve the window — the PR's
         acceptance criterion *)
      let need_2x = (not smoke) && gated in
      if need_2x && speedup < 2.0 then incr weak;
      List.iter
        (fun (w, c) ->
          json :=
            Printf.sprintf
              "    {\"sweep\": \"workers\", \"server\": %S, \"conns\": %d, \
               \"workers\": %d, \"downtime_ns\": %d, \"total_ns\": %d}"
              (Testbed.name server) conns w c.downtime_ns c.total_ns
            :: !json)
        cells;
      Printf.printf "%-10s" (Testbed.name server);
      List.iter (fun (_, c) -> Printf.printf " %9s" (fms c.downtime_ns)) cells;
      Printf.printf " %8.1fx%s%s\n" speedup
        (if gated && not ok then "  <-- NOT BELOW W=1"
         else if (not gated) && not ok then "  (spawn/join-bound)"
         else "")
        (if need_2x && speedup < 2.0 then "  <-- BELOW 2x" else ""))
    servers;
  if !violations > 0 then begin
    Printf.printf
      "\ndowntime: %d web server(s) where the largest worker pool did not beat workers=1\n"
      !violations;
    exit 1
  end;
  if !weak > 0 then begin
    Printf.printf "\ndowntime: %d web server(s) below the 2x parallel-transfer bar\n" !weak;
    exit 1
  end;
  Printf.printf
    "\nparallel transfer beats workers=1 at %d connections on nginx/httpd%s\n" conns
    (if smoke then "" else " with >= 2x downtime reduction")

(* ------------------------------------------------------------------ *)
(* Sweep 3: zero-copy page remap vs plain single-shot *)

let remap_policy = Policy.with_transfer_remap true Policy.default

(* The acceptance servers: remap must pay for itself on the small-state
   daemons whose window is copy-dominated. *)
let remap_gated = function Testbed.Vsftpd | Testbed.Sshd -> true | _ -> false

let remap_points ~smoke server =
  let base = if smoke then [ 0; 8 ] else [ 0; 25; 50; 100 ] in
  if remap_gated server then List.sort_uniq compare (100 :: base) else base

(* Every server carries per-connection ballast here: the web servers their
   conn read buffers, vsftpd/sshd an opaque per-session buffer
   (session_buffer_words). Both sides of the comparison use the same
   config — only the policy differs. *)
let remap_ballast server =
  match ballast server with
  | Some (c, b, f) -> (Some c, Some b, Some f)
  | None ->
      let config =
        match server with
        | Testbed.Vsftpd -> "anonymous_enable=NO\nsession_buffer_words 4096"
        | _ -> "PermitRootLogin no\nsession_buffer_words 4096"
      in
      (Some config, None, None)

let remap_sweep ~smoke json =
  Printf.printf "\n== downtime%s: zero-copy page remap vs single-shot (downtime ms) ==\n"
    (if smoke then " (smoke)" else "");
  Printf.printf "%-10s %5s %11s %11s %12s %12s\n" "server" "conns" "single-shot" "remap"
    "remapped_w" "copied_w";
  let violations = ref 0 in
  List.iter
    (fun server ->
      let points = remap_points ~smoke server in
      let top = List.fold_left max 0 points in
      let config, base_version, final_version = remap_ballast server in
      List.iter
        (fun conns ->
          let ss =
            measure ?config ?base_version ?final_version server ~conns
              ~policy:Policy.default ~label:"single-shot" ()
          in
          let rm =
            measure ?config ?base_version ?final_version server ~conns ~policy:remap_policy
              ~label:"remap" ()
          in
          let gated = remap_gated server && conns = top in
          let ok = rm.downtime_ns < ss.downtime_ns in
          if gated && not ok then incr violations;
          json :=
            Printf.sprintf
              "    {\"sweep\": \"remap\", \"server\": %S, \"conns\": %d, \
               \"single_shot_downtime_ns\": %d, \"remap_downtime_ns\": %d, \
               \"remapped_words\": %d, \"copied_words\": %d}"
              (Testbed.name server) conns ss.downtime_ns rm.downtime_ns rm.remapped_words
              rm.copied_words
            :: !json;
          Printf.printf "%-10s %5d %11s %11s %12d %12d%s\n" (Testbed.name server) conns
            (fms ss.downtime_ns) (fms rm.downtime_ns) rm.remapped_words rm.copied_words
            (if gated && not ok then "  <-- NOT BELOW SINGLE-SHOT" else ""))
        points)
    Testbed.all;
  if !violations > 0 then begin
    Printf.printf
      "\ndowntime: %d configuration(s) where page remap did not beat single-shot\n"
      !violations;
    exit 1
  end;
  Printf.printf
    "\npage remap downtime strictly below single-shot on vsftpd/OpenSSH at 100 connections\n"

(* ------------------------------------------------------------------ *)
(* Sweep 4: dirty-delta scaling across back-to-back updates *)

let delta_servers = [ Testbed.Vsftpd; Testbed.Sshd ]

(* Traffic levels between self-updates, as benchmark scales (0 = none;
   smaller scale = more requests). *)
let delta_levels ~smoke = if smoke then [ 0; 10_000 ] else [ 0; 10_000; 2_000 ]

(* One lineage: warm update to the final version, then one self-update per
   level after serving that level's traffic. Returns (scale, cell) pairs in
   level order. *)
let delta_lineage server ~levels =
  let kernel = K.create () in
  let m0 = Testbed.launch kernel server in
  ignore (Testbed.benchmark kernel server ~scale:10_000 ());
  let fail (report : Manager.report) label =
    if not report.Manager.success then begin
      Printf.printf "!! %s delta lineage: %s update failed: %s\n" (Testbed.name server)
        label
        (Option.fold ~none:"?" ~some:Mcr_error.to_string report.Manager.failure);
      exit 1
    end
  in
  let m1, warm = Manager.update m0 ~policy:remap_policy (Testbed.final_version server) in
  flights := warm.Manager.flight :: !flights;
  fail warm "warm";
  let mgr = ref m1 in
  List.map
    (fun scale ->
      if scale > 0 then ignore (Testbed.benchmark kernel server ~scale ());
      let m2, r = Manager.update !mgr ~policy:remap_policy (Testbed.final_version server) in
      flights := r.Manager.flight :: !flights;
      fail r (Printf.sprintf "self-update (traffic scale %d)" scale);
      mgr := m2;
      (scale, cell_of_report r))
    levels

let delta_sweep ~smoke json =
  Printf.printf
    "\n== downtime%s: dirty-delta scaling across self-updates (words per window) ==\n"
    (if smoke then " (smoke)" else "");
  Printf.printf "%-10s %8s %10s %10s %10s %10s %10s\n" "server" "traffic" "live" "copied"
    "hashed" "remapped" "downtime";
  let violations = ref 0 in
  List.iter
    (fun server ->
      let cells = delta_lineage server ~levels:(delta_levels ~smoke) in
      List.iter
        (fun (scale, c) ->
          json :=
            Printf.sprintf
              "    {\"sweep\": \"delta\", \"server\": %S, \"traffic_scale\": %d, \
               \"downtime_ns\": %d, \"live_words\": %d, \"copied_words\": %d, \
               \"remapped_words\": %d, \"hashed_words\": %d, \"skipped_clean_words\": %d}"
              (Testbed.name server) scale c.downtime_ns c.live_words c.copied_words
              c.remapped_words c.hashed_words c.skipped_clean_words
            :: !json;
          Printf.printf "%-10s %8s %10d %10d %10d %10d %9s\n" (Testbed.name server)
            (if scale = 0 then "none" else Printf.sprintf "1/%d" scale)
            c.live_words c.copied_words c.hashed_words c.remapped_words (fms c.downtime_ns))
        cells;
      let residue c = c.copied_words + c.hashed_words in
      let quiet = List.assoc 0 cells in
      let _, busiest = List.nth cells (List.length cells - 1) in
      (* the window cost must track the dirty set, not the reachable heap *)
      if residue quiet * 2 >= quiet.live_words then begin
        incr violations;
        Printf.printf "%-10s   <-- quiet residue %d not well below %d live words\n"
          (Testbed.name server) (residue quiet) quiet.live_words
      end;
      if residue busiest < residue quiet then begin
        incr violations;
        Printf.printf "%-10s   <-- residue shrank under traffic (%d -> %d)\n"
          (Testbed.name server) (residue quiet) (residue busiest)
      end)
    delta_servers;
  if !violations > 0 then begin
    Printf.printf "\ndowntime: %d dirty-delta scaling violation(s)\n" !violations;
    exit 1
  end;
  Printf.printf "\ncopied+hashed words track the dirty set across back-to-back updates\n"

let write_json path json =
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out_bin path in
  output_string oc ("[\n" ^ String.concat ",\n" (List.rev !json) ^ "\n]\n");
  close_out oc;
  Printf.printf "downtime: wrote %s\n" path

let run ?(smoke = false) ?(workers = [ 1; 2; 4; 8 ]) () =
  let json = ref [] in
  precopy_sweep ~smoke json;
  workers_sweep ~smoke ~workers json;
  remap_sweep ~smoke json;
  delta_sweep ~smoke json;
  (match Sys.getenv_opt "MCR_DOWNTIME_JSON" with
  | Some path -> write_json path json
  | None -> ());
  flush_flights ~name:"downtime"

(* ------------------------------------------------------------------ *)
(* Regression gate: re-measure every cell of a committed baseline
   (BENCH_downtime.json) and fail when any downtime exceeds it by more
   than the tolerance. The simulation is deterministic, so genuine
   behaviour changes show up exactly; the tolerance admits intentional
   cost-model drift without a baseline refresh. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  data

let server_of_name name = List.find_opt (fun s -> Testbed.name s = name) Testbed.all

let check ~against ~tolerance_pct () =
  let data =
    match read_file against with
    | data -> data
    | exception Sys_error e ->
        Printf.printf "downtime check: %s\n" e;
        exit 2
  in
  let cells =
    match Json.parse data with
    | Error e ->
        Printf.printf "downtime check: %s: %s\n" against e;
        exit 2
    | Ok j -> (
        match Json.to_list j with
        | Some l -> l
        | None ->
            Printf.printf "downtime check: %s: expected a JSON array of cells\n" against;
            exit 2)
  in
  Printf.printf "\n== downtime check: %d cell(s) against %s (tolerance %d%%) ==\n"
    (List.length cells) against tolerance_pct;
  let regressions = ref 0 in
  let checked = ref 0 in
  let gate label ~baseline ~measured =
    incr checked;
    let budget = baseline + (baseline * tolerance_pct / 100) in
    let ok = measured <= budget in
    if not ok then incr regressions;
    Printf.printf "%-40s %9s -> %9s ms  %s\n" label (fms baseline) (fms measured)
      (if ok then "ok" else "REGRESSED")
  in
  let gate_words label ~baseline ~measured =
    incr checked;
    let budget = baseline + (baseline * tolerance_pct / 100) in
    let ok = measured <= budget in
    if not ok then incr regressions;
    Printf.printf "%-40s %9d -> %9d w   %s\n" label baseline measured
      (if ok then "ok" else "REGRESSED")
  in
  (* delta cells re-run one lineage per server (level order is the file
     order), so split them out of the per-cell walk *)
  let delta_cells, cells =
    List.partition (fun c -> Json.str_field "sweep" c = Some "delta") cells
  in
  List.iter
    (fun cell ->
      match
        ( Json.str_field "sweep" cell,
          Json.str_field "server" cell,
          Json.int_field "conns" cell )
      with
      | Some "precopy", Some name, Some conns -> begin
          match server_of_name name with
          | None -> Printf.printf "downtime check: unknown server %S, skipping\n" name
          | Some server ->
              let ss =
                measure server ~conns ~policy:Policy.default ~label:"single-shot" ()
              in
              let pc = measure server ~conns ~policy:precopy_policy ~label:"precopy" () in
              (match Json.int_field "single_shot_downtime_ns" cell with
              | Some baseline ->
                  gate
                    (Printf.sprintf "%s conns=%d single-shot" name conns)
                    ~baseline ~measured:ss.downtime_ns
              | None -> ());
              (match Json.int_field "precopy_downtime_ns" cell with
              | Some baseline ->
                  gate
                    (Printf.sprintf "%s conns=%d precopy" name conns)
                    ~baseline ~measured:pc.downtime_ns
              | None -> ())
        end
      | Some "remap", Some name, Some conns -> begin
          match server_of_name name with
          | None -> Printf.printf "downtime check: unknown server %S, skipping\n" name
          | Some server ->
              let config, base_version, final_version = remap_ballast server in
              let ss =
                measure ?config ?base_version ?final_version server ~conns
                  ~policy:Policy.default ~label:"single-shot" ()
              in
              let rm =
                measure ?config ?base_version ?final_version server ~conns
                  ~policy:remap_policy ~label:"remap" ()
              in
              (match Json.int_field "single_shot_downtime_ns" cell with
              | Some baseline ->
                  gate
                    (Printf.sprintf "%s conns=%d single-shot" name conns)
                    ~baseline ~measured:ss.downtime_ns
              | None -> ());
              (match Json.int_field "remap_downtime_ns" cell with
              | Some baseline ->
                  gate
                    (Printf.sprintf "%s conns=%d remap" name conns)
                    ~baseline ~measured:rm.downtime_ns
              | None -> ());
              (match Json.int_field "copied_words" cell with
              | Some baseline ->
                  gate_words
                    (Printf.sprintf "%s conns=%d remap copied" name conns)
                    ~baseline ~measured:rm.copied_words
              | None -> ())
        end
      | Some "workers", Some name, Some conns -> begin
          match
            ( server_of_name name,
              Json.int_field "workers" cell,
              Json.int_field "downtime_ns" cell )
          with
          | Some server, Some w, Some baseline ->
              let config, base_version, final_version =
                match ballast server with
                | Some (c, b, f) -> (Some c, Some b, Some f)
                | None -> (None, None, None)
              in
              let policy = Policy.with_transfer_workers w Policy.default in
              let c =
                measure ?config ?base_version ?final_version server ~conns ~policy
                  ~label:(Printf.sprintf "workers=%d" w) ()
              in
              gate
                (Printf.sprintf "%s conns=%d W=%d" name conns w)
                ~baseline ~measured:c.downtime_ns
          | _ -> Printf.printf "downtime check: malformed workers cell, skipping\n"
        end
      | _ -> Printf.printf "downtime check: malformed cell, skipping\n")
    cells;
  (* delta lineages: one replay per server, levels in baseline order *)
  let delta_names =
    List.fold_left
      (fun acc c ->
        match Json.str_field "server" c with
        | Some n when not (List.mem n acc) -> acc @ [ n ]
        | _ -> acc)
      [] delta_cells
  in
  List.iter
    (fun name ->
      match server_of_name name with
      | None -> Printf.printf "downtime check: unknown server %S, skipping\n" name
      | Some server -> (
          let cells_for =
            List.filter (fun c -> Json.str_field "server" c = Some name) delta_cells
          in
          let levels = List.filter_map (Json.int_field "traffic_scale") cells_for in
          if List.length levels <> List.length cells_for then
            Printf.printf "downtime check: malformed delta cell for %S, skipping\n" name
          else
            let measured = delta_lineage server ~levels in
            List.iter2
              (fun cell (scale, m) ->
                (match Json.int_field "downtime_ns" cell with
                | Some baseline ->
                    gate
                      (Printf.sprintf "%s delta traffic=%d" name scale)
                      ~baseline ~measured:m.downtime_ns
                | None -> ());
                match Json.int_field "copied_words" cell with
                | Some baseline ->
                    gate_words
                      (Printf.sprintf "%s delta traffic=%d copied" name scale)
                      ~baseline ~measured:m.copied_words
                | None -> ())
              cells_for measured))
    delta_names;
  flush_flights ~name:"downtime_check";
  if !regressions > 0 then begin
    Printf.printf "\ndowntime check: %d cell(s) regressed more than %d%% over baseline\n"
      !regressions tolerance_pct;
    exit 1
  end;
  Printf.printf "\ndowntime check: all %d cell(s) within %d%% of the baseline\n" !checked
    tolerance_pct
