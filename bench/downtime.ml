(* The downtime experiment, two sweeps over all four evaluated servers:

   1. Iterative pre-copy vs single-shot service interruption, swept over
      open-connection counts. For each (server, connections) configuration
      two fresh simulations run with identical preparation — launch, a
      short workload, [n] long-lived held connections — differing only in
      the update policy: the single-shot baseline (the window is the whole
      update) and pre-copy (the window is the final delta). The run fails
      (exit 1) if pre-copy downtime is not strictly below single-shot at
      the highest connection count for any server.

   2. Sharded parallel state transfer, swept over the worker-pool size at
      the highest connection count. The web servers carry per-connection
      buffer ballast (conn_buffer_words / ConnBufferWords config
      directives, with a heap sized to hold it) so the transfer window is
      dominated by tracing + copying — the component the worker pool
      parallelises. The run fails if the largest worker count is not
      strictly below workers=1 for any server, and (full mode only) if
      nginx/httpd do not reach a >= 2x downtime reduction.

   $MCR_DOWNTIME_JSON: write both sweeps' cells as JSON for machine
   consumption (the CI workflow uploads it as an artifact; the committed
   BENCH_downtime.json baseline is this file from a smoke run, and
   [check ~against] re-measures every cell against it with a tolerance).

   $MCR_FLIGHT_DIR: write every measured update's flight record
   ({!Mcr_obs.Export.flight_json}) into that directory, one file per
   experiment — the post-mortem artifact CI uploads. *)

module K = Mcr_simos.Kernel
module Manager = Mcr_core.Manager
module Policy = Mcr_core.Policy
module Testbed = Mcr_workloads.Testbed
module Holders = Mcr_workloads.Holders
module Nginx = Mcr_servers.Nginx_sim
module Httpd = Mcr_servers.Httpd_sim
module Json = Mcr_obs.Json

let fms ns = Printf.sprintf "%.1f" (float_of_int ns /. 1e6)

type cell = { downtime_ns : int; total_ns : int; rounds : int }

(* Flight records of every measured update, oldest first — flushed to
   $MCR_FLIGHT_DIR at the end of the run. *)
let flights : Mcr_obs.Flight.record list ref = ref []

let flush_flights ~name =
  match Sys.getenv_opt "MCR_FLIGHT_DIR" with
  | None -> flights := []
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (Printf.sprintf "flight_%s.json" name) in
      let oc = open_out_bin path in
      output_string oc (Mcr_obs.Export.flight_json (List.rev !flights));
      close_out oc;
      Printf.printf "downtime: wrote %s (%d flight record(s))\n" path (List.length !flights);
      flights := []

let measure ?config ?base_version ?final_version server ~conns ~policy ~label () =
  let kernel = K.create () in
  let m = Testbed.launch ?config ?version:base_version kernel server in
  ignore (Testbed.benchmark kernel server ~scale:10_000 ());
  let holders =
    if conns > 0 then Some (Testbed.open_holders kernel server ~n:conns) else None
  in
  let target =
    match final_version with Some v -> v | None -> Testbed.final_version server
  in
  let _m2, report = Manager.update m ~policy target in
  (match holders with Some h -> Holders.close_all h | None -> ());
  flights := report.Manager.flight :: !flights;
  if not report.Manager.success then begin
    Printf.printf "!! %s update failed at %d conns (%s): %s\n" (Testbed.name server) conns
      label
      (Option.fold ~none:"?" ~some:Mcr_error.to_string report.Manager.failure);
    exit 1
  end;
  {
    downtime_ns = report.Manager.downtime_ns;
    total_ns = report.Manager.total_ns;
    rounds = report.Manager.precopy_rounds;
  }

(* ------------------------------------------------------------------ *)
(* Sweep 1: pre-copy vs single-shot *)

let precopy_policy =
  Policy.with_precopy ~max_rounds:6 ~threshold_words:100_000 true Policy.default

let precopy_sweep ~smoke json =
  let points = if smoke then [ 0; 8 ] else [ 0; 25; 50; 100 ] in
  let servers = Testbed.all in
  Printf.printf "\n== downtime%s: pre-copy vs single-shot (downtime/total ms) ==\n"
    (if smoke then " (smoke)" else "");
  Printf.printf "%-10s %5s   %-17s %-23s %9s\n" "server" "conns" "single-shot" "precopy"
    "speedup";
  let top = List.fold_left max 0 points in
  let violations = ref 0 in
  List.iter
    (fun server ->
      List.iter
        (fun conns ->
          let ss =
            measure server ~conns ~policy:Policy.default ~label:"single-shot" ()
          in
          let pc = measure server ~conns ~policy:precopy_policy ~label:"precopy" () in
          let speedup =
            if pc.downtime_ns > 0 then
              float_of_int ss.downtime_ns /. float_of_int pc.downtime_ns
            else infinity
          in
          let at_top = conns = top in
          let ok = pc.downtime_ns < ss.downtime_ns in
          if at_top && not ok then incr violations;
          json :=
            Printf.sprintf
              "    {\"sweep\": \"precopy\", \"server\": %S, \"conns\": %d, \
               \"single_shot_downtime_ns\": %d, \"precopy_downtime_ns\": %d, \
               \"precopy_rounds\": %d}"
              (Testbed.name server) conns ss.downtime_ns pc.downtime_ns pc.rounds
            :: !json;
          Printf.printf "%-10s %5d   %7s/%-9s %7s/%-9s(%d rds) %8.1fx%s\n"
            (Testbed.name server) conns (fms ss.downtime_ns) (fms ss.total_ns)
            (fms pc.downtime_ns) (fms pc.total_ns) pc.rounds speedup
            (if at_top && not ok then "  <-- NOT BELOW SINGLE-SHOT" else ""))
        points)
    servers;
  if !violations > 0 then begin
    Printf.printf
      "\ndowntime: %d configuration(s) where pre-copy did not beat single-shot at %d conns\n"
      !violations top;
    exit 1
  end;
  Printf.printf
    "\npre-copy downtime strictly below single-shot at %d connections on all servers\n" top

(* ------------------------------------------------------------------ *)
(* Sweep 2: transfer worker-pool size at the top connection count *)

(* Per-connection buffer ballast for the web servers: the config directive
   sizes every held connection's read buffer, and the versions get a heap
   large enough to hold [conns] of them (plus the usual server state). *)
let ballast_words = 65_536
let ballast_heap_words = 8 * 1024 * 1024

let ballast = function
  | Testbed.Nginx ->
      Some
        ( Printf.sprintf "worker_processes 1;\nconn_buffer_words %d;" ballast_words,
          Nginx.base ~heap_words:ballast_heap_words (),
          Nginx.final ~heap_words:ballast_heap_words () )
  | Testbed.Httpd ->
      Some
        ( Printf.sprintf "ServerLimit 2\nThreadsPerChild 2\nConnBufferWords %d" ballast_words,
          Httpd.base ~heap_words:ballast_heap_words (),
          Httpd.final ~heap_words:ballast_heap_words () )
  | Testbed.Vsftpd | Testbed.Sshd -> None

let workers_sweep ~smoke ~workers json =
  let conns = if smoke then 8 else 100 in
  let workers = List.sort_uniq compare (List.filter (fun w -> w >= 1) workers) in
  let workers = if workers = [] then [ 1; 2; 4; 8 ] else workers in
  let servers = Testbed.all in
  Printf.printf
    "\n== downtime%s: sharded parallel transfer at %d conns (single-shot downtime ms) ==\n"
    (if smoke then " (smoke)" else "")
    conns;
  Printf.printf "%-10s" "server";
  List.iter (fun w -> Printf.printf " %9s" (Printf.sprintf "W=%d" w)) workers;
  Printf.printf " %9s\n" "speedup";
  let violations = ref 0 in
  let weak = ref 0 in
  List.iter
    (fun server ->
      let config, base_version, final_version =
        match ballast server with
        | Some (c, b, f) -> (Some c, Some b, Some f)
        | None -> (None, None, None)
      in
      let cells =
        List.map
          (fun w ->
            let policy = Policy.with_transfer_workers w Policy.default in
            ( w,
              measure ?config ?base_version ?final_version server ~conns ~policy
                ~label:(Printf.sprintf "workers=%d" w) () ))
          workers
      in
      let base = snd (List.hd cells) in
      let _, best = List.nth cells (List.length cells - 1) in
      let speedup =
        if best.downtime_ns > 0 then
          float_of_int base.downtime_ns /. float_of_int best.downtime_ns
        else infinity
      in
      (* The worker pool must pay for itself on the ballast-carrying web
         servers: largest pool strictly below workers=1. vsftpd/sshd have
         so little transferable state that the per-worker spawn/join cost
         dominates — reported, not asserted. *)
      let gated = ballast server <> None in
      let ok = best.downtime_ns < base.downtime_ns in
      if gated && not ok then incr violations;
      (* ...and in full mode they must halve the window — the PR's
         acceptance criterion *)
      let need_2x = (not smoke) && gated in
      if need_2x && speedup < 2.0 then incr weak;
      List.iter
        (fun (w, c) ->
          json :=
            Printf.sprintf
              "    {\"sweep\": \"workers\", \"server\": %S, \"conns\": %d, \
               \"workers\": %d, \"downtime_ns\": %d, \"total_ns\": %d}"
              (Testbed.name server) conns w c.downtime_ns c.total_ns
            :: !json)
        cells;
      Printf.printf "%-10s" (Testbed.name server);
      List.iter (fun (_, c) -> Printf.printf " %9s" (fms c.downtime_ns)) cells;
      Printf.printf " %8.1fx%s%s\n" speedup
        (if gated && not ok then "  <-- NOT BELOW W=1"
         else if (not gated) && not ok then "  (spawn/join-bound)"
         else "")
        (if need_2x && speedup < 2.0 then "  <-- BELOW 2x" else ""))
    servers;
  if !violations > 0 then begin
    Printf.printf
      "\ndowntime: %d web server(s) where the largest worker pool did not beat workers=1\n"
      !violations;
    exit 1
  end;
  if !weak > 0 then begin
    Printf.printf "\ndowntime: %d web server(s) below the 2x parallel-transfer bar\n" !weak;
    exit 1
  end;
  Printf.printf
    "\nparallel transfer beats workers=1 at %d connections on nginx/httpd%s\n" conns
    (if smoke then "" else " with >= 2x downtime reduction")

let write_json path json =
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out_bin path in
  output_string oc ("[\n" ^ String.concat ",\n" (List.rev !json) ^ "\n]\n");
  close_out oc;
  Printf.printf "downtime: wrote %s\n" path

let run ?(smoke = false) ?(workers = [ 1; 2; 4; 8 ]) () =
  let json = ref [] in
  precopy_sweep ~smoke json;
  workers_sweep ~smoke ~workers json;
  (match Sys.getenv_opt "MCR_DOWNTIME_JSON" with
  | Some path -> write_json path json
  | None -> ());
  flush_flights ~name:"downtime"

(* ------------------------------------------------------------------ *)
(* Regression gate: re-measure every cell of a committed baseline
   (BENCH_downtime.json) and fail when any downtime exceeds it by more
   than the tolerance. The simulation is deterministic, so genuine
   behaviour changes show up exactly; the tolerance admits intentional
   cost-model drift without a baseline refresh. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  data

let server_of_name name = List.find_opt (fun s -> Testbed.name s = name) Testbed.all

let check ~against ~tolerance_pct () =
  let data =
    match read_file against with
    | data -> data
    | exception Sys_error e ->
        Printf.printf "downtime check: %s\n" e;
        exit 2
  in
  let cells =
    match Json.parse data with
    | Error e ->
        Printf.printf "downtime check: %s: %s\n" against e;
        exit 2
    | Ok j -> (
        match Json.to_list j with
        | Some l -> l
        | None ->
            Printf.printf "downtime check: %s: expected a JSON array of cells\n" against;
            exit 2)
  in
  Printf.printf "\n== downtime check: %d cell(s) against %s (tolerance %d%%) ==\n"
    (List.length cells) against tolerance_pct;
  let regressions = ref 0 in
  let checked = ref 0 in
  let gate label ~baseline ~measured =
    incr checked;
    let budget = baseline + (baseline * tolerance_pct / 100) in
    let ok = measured <= budget in
    if not ok then incr regressions;
    Printf.printf "%-40s %9s -> %9s ms  %s\n" label (fms baseline) (fms measured)
      (if ok then "ok" else "REGRESSED")
  in
  List.iter
    (fun cell ->
      match
        ( Json.str_field "sweep" cell,
          Json.str_field "server" cell,
          Json.int_field "conns" cell )
      with
      | Some "precopy", Some name, Some conns -> begin
          match server_of_name name with
          | None -> Printf.printf "downtime check: unknown server %S, skipping\n" name
          | Some server ->
              let ss =
                measure server ~conns ~policy:Policy.default ~label:"single-shot" ()
              in
              let pc = measure server ~conns ~policy:precopy_policy ~label:"precopy" () in
              (match Json.int_field "single_shot_downtime_ns" cell with
              | Some baseline ->
                  gate
                    (Printf.sprintf "%s conns=%d single-shot" name conns)
                    ~baseline ~measured:ss.downtime_ns
              | None -> ());
              (match Json.int_field "precopy_downtime_ns" cell with
              | Some baseline ->
                  gate
                    (Printf.sprintf "%s conns=%d precopy" name conns)
                    ~baseline ~measured:pc.downtime_ns
              | None -> ())
        end
      | Some "workers", Some name, Some conns -> begin
          match
            ( server_of_name name,
              Json.int_field "workers" cell,
              Json.int_field "downtime_ns" cell )
          with
          | Some server, Some w, Some baseline ->
              let config, base_version, final_version =
                match ballast server with
                | Some (c, b, f) -> (Some c, Some b, Some f)
                | None -> (None, None, None)
              in
              let policy = Policy.with_transfer_workers w Policy.default in
              let c =
                measure ?config ?base_version ?final_version server ~conns ~policy
                  ~label:(Printf.sprintf "workers=%d" w) ()
              in
              gate
                (Printf.sprintf "%s conns=%d W=%d" name conns w)
                ~baseline ~measured:c.downtime_ns
          | _ -> Printf.printf "downtime check: malformed workers cell, skipping\n"
        end
      | _ -> Printf.printf "downtime check: malformed cell, skipping\n")
    cells;
  flush_flights ~name:"downtime_check";
  if !regressions > 0 then begin
    Printf.printf "\ndowntime check: %d cell(s) regressed more than %d%% over baseline\n"
      !regressions tolerance_pct;
    exit 1
  end;
  Printf.printf "\ndowntime check: all %d cell(s) within %d%% of the baseline\n" !checked
    tolerance_pct
