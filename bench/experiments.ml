(* The experiment harness: one function per table/figure of the paper, each
   printing measured results next to the paper's numbers. *)

module K = Mcr_simos.Kernel
module P = Mcr_program.Progdef
module Instr = Mcr_program.Instr
module Profiler = Mcr_quiesce.Profiler
module Manager = Mcr_core.Manager
module Objgraph = Mcr_trace.Objgraph
module Heap = Mcr_alloc.Heap
module Aspace = Mcr_vmem.Aspace
module Region = Mcr_vmem.Region
module Testbed = Mcr_workloads.Testbed
module Holders = Mcr_workloads.Holders
module Tablefmt = Mcr_util.Tablefmt
module Stats = Mcr_util.Stats

let ms ns = float_of_int ns /. 1e6
let fms ns = Printf.sprintf "%.1f" (ms ns)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let note fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Table 1: programs, updates, engineering effort *)

let table1 () =
  section "Table 1: programs and updates (measured | paper)";
  let t = Tablefmt.create ~header:[ "Program"; "SL"; "LL"; "QP"; "Per"; "Vol"; "Num"; "LOC";
                                    "Fun"; "Var"; "Type"; "Ann LOC"; "ST LOC" ] in
  List.iter
    (fun server ->
      let kernel = K.create () in
      let profiler = Profiler.create kernel in
      Profiler.set_filter profiler (fun th ->
          K.thread_name th <> "mcr-ctl"
          && P.image_of_proc (K.thread_proc th) <> None);
      Profiler.attach profiler;
      let _m = Testbed.launch ~instr:Instr.baseline ~profiler kernel server in
      let open_holders = Testbed.profiling_workload kernel server in
      Profiler.detach profiler;
      let r = Profiler.report profiler in
      Holders.close_all open_holders;
      let series = Testbed.version_series server in
      let changes =
        let rec go acc = function
          | a :: (b :: _ as rest) ->
              let d = P.diff_versions a b in
              let fa, va, ta = acc in
              go (fa + d.P.funcs_changed, va + d.P.vars_changed, ta + d.P.types_changed) rest
          | _ -> acc
        in
        go (0, 0, 0) series
      in
      let fun_, var, ty = changes in
      let meta = Testbed.meta server in
      Tablefmt.add_row t
        [
          Testbed.name server;
          string_of_int r.Profiler.short_lived;
          string_of_int r.Profiler.long_lived_count;
          string_of_int r.Profiler.quiescent_points;
          string_of_int r.Profiler.persistent_points;
          string_of_int r.Profiler.volatile_points;
          string_of_int meta.Mcr_servers.Table_meta.num_updates;
          string_of_int meta.Mcr_servers.Table_meta.upstream_loc;
          string_of_int fun_;
          string_of_int var;
          string_of_int ty;
          string_of_int meta.Mcr_servers.Table_meta.annotation_loc;
          string_of_int meta.Mcr_servers.Table_meta.st_loc;
        ])
    Testbed.all;
  Tablefmt.add_sep t;
  List.iter
    (fun (p : Paper_ref.table1_row) ->
      Tablefmt.add_row t
        ([ "(paper) " ^ p.Paper_ref.prog ]
        @ List.map string_of_int
            [ p.sl; p.ll; p.qp; p.per; p.vol; p.num; p.loc; p.fun_; p.var; p.ty;
              p.ann_loc; p.st_loc ]))
    Paper_ref.table1;
  Tablefmt.print t;
  note
    "Num/LOC/Ann/ST are update-series metadata (upstream facts); SL..Vol are\n\
     measured by the quiescence profiler; Fun/Var/Type are measured by\n\
     diffing the simulated version series (intentionally smaller-scale than\n\
     the upstream C releases).\n"

(* ------------------------------------------------------------------ *)
(* Table 2: mutable tracing statistics *)

let table2_rows () =
  let variants =
    [
      (Testbed.Httpd, "Apache httpd", Instr.full);
      (Testbed.Nginx, "nginx", Instr.full);
      (Testbed.Nginx, "nginx (reg)", Instr.with_regions Instr.full);
      (Testbed.Vsftpd, "vsftpd", Instr.full);
      (Testbed.Sshd, "OpenSSH", Instr.full);
    ]
  in
  List.map
    (fun (server, label, instr) ->
      let kernel = K.create () in
      let m = Testbed.launch ~instr kernel server in
      ignore (Testbed.benchmark kernel server ~scale:250 ());
      let holders = Testbed.open_holders kernel server ~n:16 in
      let stats = Manager.trace_statistics m in
      Holders.close_all holders;
      (label, stats))
    variants

let table2 () =
  section "Table 2: mutable tracing statistics (measured | paper)";
  let t =
    Tablefmt.create
      ~header:
        [ "Program"; "Ptr"; "Src stat"; "Src dyn"; "Targ stat"; "Targ dyn"; "Targ lib";
          "| Likely"; "Src stat"; "Src dyn"; "Targ stat"; "Targ dyn"; "Targ lib" ]
  in
  let row label (s : Objgraph.stats) =
    Tablefmt.add_row t
      ([ label ]
      @ List.map string_of_int
          [ s.Objgraph.precise.Objgraph.ptr; s.Objgraph.precise.src_static;
            s.Objgraph.precise.src_dynamic; s.Objgraph.precise.targ_static;
            s.Objgraph.precise.targ_dynamic; s.Objgraph.precise.targ_lib;
            s.Objgraph.likely.ptr; s.Objgraph.likely.src_static;
            s.Objgraph.likely.src_dynamic; s.Objgraph.likely.targ_static;
            s.Objgraph.likely.targ_dynamic; s.Objgraph.likely.targ_lib ])
  in
  List.iter (fun (label, stats) -> row label stats) (table2_rows ());
  Tablefmt.add_sep t;
  List.iter
    (fun (p : Paper_ref.table2_row) ->
      Tablefmt.add_row t
        ([ "(paper) " ^ p.Paper_ref.prog2 ]
        @ List.map string_of_int
            [ p.p_ptr; p.p_src_static; p.p_src_dyn; p.p_targ_static; p.p_targ_dyn;
              p.p_targ_lib; p.l_ptr; p.l_src_static; p.l_src_dyn; p.l_targ_static;
              p.l_targ_dyn; p.l_targ_lib ]))
    Paper_ref.table2;
  Tablefmt.print t;
  note
    "Shape checks: uninstrumented custom allocators (httpd pools, nginx)\n\
     dominate likely pointers; region instrumentation (nginx reg) moves\n\
     pointers from the likely to the precise side; fully instrumented\n\
     allocators (vsftpd, OpenSSH) leave only a handful of likely pointers.\n"

(* ------------------------------------------------------------------ *)
(* Table 3: run-time overhead of the instrumentation layers *)

let table3 ?(scale = 400) () =
  section "Table 3: run time normalized against baseline (measured | paper)";
  let variants =
    [
      (Testbed.Httpd, "Apache httpd", false);
      (Testbed.Nginx, "nginx", false);
      (Testbed.Nginx, "nginx (reg)", true);
      (Testbed.Vsftpd, "vsftpd", false);
      (Testbed.Sshd, "OpenSSH", false);
    ]
  in
  let measure server instr =
    let kernel = K.create () in
    let _m = Testbed.launch ~instr kernel server in
    let r = Testbed.benchmark kernel server ~scale () in
    assert (r.Mcr_workloads.Bench_result.errors = 0);
    float_of_int r.Mcr_workloads.Bench_result.elapsed_ns
  in
  let t = Tablefmt.create ~header:("Program" :: Paper_ref.table3_configs) in
  List.iter
    (fun (server, label, regions) ->
      let with_regions i = if regions then Instr.with_regions i else i in
      (* the baseline is always the uninstrumented program *)
      let base = measure server Instr.baseline in
      let norm =
        List.map
          (fun (_, instr) -> measure server (with_regions instr) /. base)
          Instr.table3_rows
      in
      Tablefmt.add_row t (label :: List.map (Printf.sprintf "%.3f") norm))
    variants;
  Tablefmt.add_sep t;
  List.iter
    (fun (label, row) ->
      Tablefmt.add_row t (("(paper) " ^ label) :: List.map (Printf.sprintf "%.3f") row))
    Paper_ref.table3;
  Tablefmt.print t;
  note
    "Shape checks: overhead grows with the allocator intensity of the\n\
     workload; region instrumentation (nginx reg) is the most expensive\n\
     configuration; quiescence detection adds marginal cost on top.\n"

(* ------------------------------------------------------------------ *)
(* Figure 3: state transfer time vs open connections *)

let fig3 ?(step = 20) ?(max_conns = 100) () =
  section "Figure 3: state transfer time (ms) vs open connections (measured)";
  let points =
    let rec go n = if n > max_conns then [] else n :: go (n + step) in
    0 :: List.filter (fun n -> n > 0) (go step)
  in
  let t =
    Tablefmt.create ~header:("Connections" :: List.map Testbed.name Testbed.all)
  in
  let results =
    List.map
      (fun n ->
        let per_server =
          List.map
            (fun server ->
              let kernel = K.create () in
              let m = Testbed.launch kernel server in
              ignore (Testbed.benchmark kernel server ~scale:5000 ());
              let holders =
                if n > 0 then Some (Testbed.open_holders kernel server ~n) else None
              in
              let _m2, report = Manager.update m (Testbed.final_version server) in
              if not report.Manager.success then
                Printf.printf "!! %s update failed at %d conns: %s\n" (Testbed.name server) n
                  (Option.fold ~none:"?" ~some:Mcr_error.to_string report.Manager.failure);
              (match holders with Some h -> Holders.close_all h | None -> ());
              report.Manager.state_transfer_ns)
            Testbed.all
        in
        (n, per_server))
      points
  in
  List.iter
    (fun (n, per_server) ->
      Tablefmt.add_row t (string_of_int n :: List.map fms per_server))
    results;
  Tablefmt.print t;
  (match (results, List.rev results) with
  | (0, base) :: _, (last_n, last) :: _ when last_n > 0 ->
      let base_avg = Stats.mean (List.map float_of_int base) /. 1e6 in
      let incr =
        Stats.mean (List.map2 (fun l b -> float_of_int (l - b)) last base) /. 1e6
      in
      let blo, bhi = Paper_ref.fig3_baseline_ms in
      note
        "Baseline (0 conns) avg %.1f ms (paper: %.0f-%.0f ms); avg increase at %d conns\n\
         %.1f ms (paper: %.0f ms at 100). Shape: per-process-per-connection servers\n\
         (vsftpd, OpenSSH) grow fastest.\n"
        base_avg blo bhi last_n incr Paper_ref.fig3_avg_increase_at_100_ms
  | _ -> ());
  results

(* ------------------------------------------------------------------ *)
(* In-text: quiescence time *)

let quiescence ?(repeats = 11) () =
  section "Quiescence time (measured; paper: < 100 ms, workload-independent)";
  let t = Tablefmt.create ~header:[ "Program"; "p50 ms"; "p90 ms"; "max ms"; "converged" ] in
  List.iter
    (fun server ->
      let kernel = K.create () in
      let m = Testbed.launch kernel server in
      let holders = Testbed.open_holders kernel server ~n:4 in
      let samples =
        List.init repeats (fun _ ->
            (* some load between attempts so each sample sees a different
               program state *)
            ignore (Testbed.benchmark kernel server ~scale:20_000 ());
            Manager.quiesce_only m)
      in
      Holders.close_all holders;
      let ok = List.filter_map Fun.id samples in
      let converged = List.length ok = repeats in
      if ok = [] then
        Tablefmt.add_row t [ Testbed.name server; "-"; "-"; "-"; string_of_bool converged ]
      else begin
        let s = Stats.summary (List.map (fun ns -> ms ns) ok) in
        Tablefmt.add_row t
          [
            Testbed.name server;
            Printf.sprintf "%.1f" s.Stats.p50;
            Printf.sprintf "%.1f" s.Stats.p90;
            Printf.sprintf "%.1f" s.Stats.max;
            string_of_bool converged;
          ]
      end)
    Testbed.all;
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* In-text: control migration (record/replay) *)

let control_migration () =
  section "Control migration (measured; paper: record and replay < 50 ms, 1-45% startup overhead)";
  let t =
    Tablefmt.create
      ~header:[ "Program"; "startup ms"; "recorded ms"; "overhead %"; "replay (CM) ms" ]
  in
  (* startup duration: from launch until every process of the tree has
     reached its first quiescent point. The bare run uses the instrumented
     program without the startup-log recorder, so the comparison isolates
     the recording cost (the paper's "modest overhead compared to the
     original startup time"). *)
  let expected_tree server =
    match server with Testbed.Nginx -> 2 | Testbed.Httpd -> 3 | _ -> 1
  in
  let settled images expected () =
    List.length (images ()) >= expected
    && List.for_all (fun (im : P.image) -> im.P.i_startup_complete) (images ())
  in
  let measure_bare server =
    let kernel = K.create () in
    Testbed.prepare_fs kernel server;
    let t0 = K.clock_ns kernel in
    let members = ref [] in
    let track img =
      members := !members @ [ img ];
      img.P.i_child_hooks <- (fun c -> members := !members @ [ c ]) :: img.P.i_child_hooks
    in
    let proc =
      Mcr_program.Loader.launch kernel ~instr:Instr.full (Testbed.base_version server)
        ~on_image:track
    in
    (* balance the manager's controller thread so only recording differs *)
    ignore
      (K.spawn_thread kernel proc ~name:"ctl-balance" (fun _ ->
           match K.syscall (Mcr_simos.Sysdefs.Unix_listen { path = "/bench/balance" }) with
           | Mcr_simos.Sysdefs.Ok_fd fd ->
               ignore
                 (K.syscall (Mcr_simos.Sysdefs.Accept { fd; nonblock = false }))
           | _ -> ()));
    let images () =
      List.filter (fun (im : P.image) -> K.alive im.P.i_proc) !members
    in
    ignore
      (K.run_until kernel ~max_ns:(t0 + 5_000_000_000)
         (settled images (expected_tree server)));
    K.clock_ns kernel - t0
  in
  let measure_recorded server =
    let kernel = K.create () in
    Testbed.prepare_fs kernel server;
    let t0 = K.clock_ns kernel in
    let m = Manager.launch kernel (Testbed.base_version server) in
    ignore
      (K.run_until kernel ~max_ns:(t0 + 5_000_000_000)
         (settled (fun () -> Manager.images m) (expected_tree server)));
    (K.clock_ns kernel - t0, kernel, m)
  in
  List.iter
    (fun server ->
      let bare = measure_bare server in
      let recorded, k2, m = measure_recorded server in
      (* replay: the control-migration phase of an update *)
      ignore (Testbed.benchmark k2 server ~scale:10_000 ());
      let _, report = Manager.update m (Testbed.final_version server) in
      let overhead = 100. *. (float_of_int recorded /. float_of_int bare -. 1.) in
      Tablefmt.add_row t
        [
          Testbed.name server;
          fms bare;
          fms recorded;
          Printf.sprintf "%.1f" overhead;
          (if report.Manager.success then fms report.Manager.control_migration_ns else "FAIL");
        ])
    Testbed.all;
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* In-text: memory usage *)

let memory () =
  section "Memory usage (measured; paper: RSS overhead 110-483.6%, avg 288.5%)";
  let t =
    Tablefmt.create
      ~header:[ "Program"; "base RSS KB"; "MCR RSS KB"; "overhead %"; "tag words"; "log entries" ]
  in
  let overheads =
    List.map
      (fun server ->
        let run instr =
          let kernel = K.create () in
          let m = Testbed.launch ~instr kernel server in
          ignore (Testbed.benchmark kernel server ~scale:2000 ());
          Manager.memory_stats m
        in
        let base = run Instr.baseline in
        let full = run Instr.full in
        let overhead =
          100.
          *. (float_of_int full.Manager.resident_bytes
              /. float_of_int base.Manager.app_bytes
             -. 1.)
        in
        Tablefmt.add_row t
          [
            Testbed.name server;
            string_of_int (base.Manager.app_bytes / 1024);
            string_of_int (full.Manager.resident_bytes / 1024);
            Printf.sprintf "%.1f" overhead;
            string_of_int full.Manager.tag_metadata_words;
            string_of_int full.Manager.startup_log_entries;
          ];
        overhead)
      Testbed.all
  in
  Tablefmt.print t;
  note "Average RSS overhead: %.1f%% (paper: %.1f%%)\n" (Stats.mean overheads)
    Paper_ref.rss_overhead_avg_pct

(* ------------------------------------------------------------------ *)
(* In-text: SPEC-style allocator instrumentation overhead *)

let spec () =
  section "Allocator instrumentation overhead (measured; paper: <=5% typical, 36% perlbench)";
  let t = Tablefmt.create ~header:[ "Workload"; "baseline ms"; "instrumented ms"; "overhead %" ] in
  (* Virtual-cost model: a compute-bound loop with some allocation (typical
     SPEC) and an allocation-dominated loop (the perlbench analog). *)
  let run ~allocs_per_iter ~work_per_iter ~iters ~instrumented =
    let kernel = K.create () in
    let costs = K.costs kernel in
    let aspace = Aspace.create () in
    let heap = Heap.create aspace ~instrumented ~name:"spec" ~size:(1 lsl 22) () in
    Heap.end_startup heap;
    let t0 = K.clock_ns kernel in
    for _ = 1 to iters do
      K.charge kernel (work_per_iter * costs.Mcr_simos.Costs.app_work_ns);
      let blocks =
        List.init allocs_per_iter (fun i ->
            K.charge kernel
              (costs.Mcr_simos.Costs.alloc_ns
              + if instrumented then 2 * costs.Mcr_simos.Costs.tag_word_ns else 0);
            Heap.malloc heap ~ty_id:1 ~site:1 (1 + (i mod 8)))
      in
      List.iter
        (fun b ->
          K.charge kernel costs.Mcr_simos.Costs.alloc_ns;
          Heap.free heap b)
        blocks
    done;
    K.clock_ns kernel - t0
  in
  let bench name ~allocs_per_iter ~work_per_iter =
    let base = run ~allocs_per_iter ~work_per_iter ~iters:2000 ~instrumented:false in
    let instr = run ~allocs_per_iter ~work_per_iter ~iters:2000 ~instrumented:true in
    let overhead = 100. *. (float_of_int instr /. float_of_int base -. 1.) in
    Tablefmt.add_row t
      [ name; fms base; fms instr; Printf.sprintf "%.1f" overhead ]
  in
  bench "compute-bound (typical SPEC)" ~allocs_per_iter:1 ~work_per_iter:20;
  bench "mixed" ~allocs_per_iter:4 ~work_per_iter:8;
  bench "alloc-dominated (perlbench)" ~allocs_per_iter:16 ~work_per_iter:1;
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* In-text: dirty-object tracking reduction *)

let dirty_reduction ?(conns = 50) () =
  section
    (Printf.sprintf
       "Soft-dirty transfer reduction at %d connections (measured; paper: 68-86%%)" conns);
  let t =
    Tablefmt.create
      ~header:[ "Program"; "words (dirty-only)"; "words (full)"; "reduction %" ]
  in
  List.iter
    (fun server ->
      let run dirty_only =
        let kernel = K.create () in
        let m = Testbed.launch kernel server in
        ignore (Testbed.benchmark kernel server ~scale:5000 ());
        let _h = Testbed.open_holders kernel server ~n:conns in
        let _, report =
          Manager.update m
            ~policy:(Mcr_core.Policy.with_dirty_only dirty_only Mcr_core.Policy.default)
            (Testbed.final_version server)
        in
        if not report.Manager.success then None
        else
          Some
            (List.fold_left
               (fun acc (_, (o : Mcr_trace.Transfer.outcome)) ->
                 acc + o.Mcr_trace.Transfer.transferred_words)
               0 report.Manager.transfers)
      in
      match (run true, run false) with
      | Some d, Some f when f > 0 ->
          Tablefmt.add_row t
            [
              Testbed.name server;
              string_of_int d;
              string_of_int f;
              Printf.sprintf "%.1f" (100. *. (1. -. (float_of_int d /. float_of_int f)));
            ]
      | _ -> Tablefmt.add_row t [ Testbed.name server; "-"; "-"; "FAIL" ])
    Testbed.all;
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* In-text: CPU utilization *)

let cpu () =
  section "CPU utilization under paced load (measured; paper: < 3% increase)";
  let t = Tablefmt.create ~header:[ "Program"; "baseline %"; "MCR %"; "increase pp" ] in
  (* open-loop load with client think time, so the server has idle time and
     utilization is meaningful (closed-loop saturation is Table 3) *)
  List.iter
    (fun (server, port) ->
      let run instr =
        let kernel = K.create () in
        let _m = Testbed.launch ~instr kernel server in
        let t0 = K.clock_ns kernel and i0 = K.idle_ns kernel in
        ignore
          (Mcr_workloads.Http_bench.run kernel ~port ~concurrency:2 ~think_ns:100_000
             ~requests:300 ~path:"/index.html" ());
        let total = K.clock_ns kernel - t0 and idle = K.idle_ns kernel - i0 in
        100. *. (1. -. (float_of_int idle /. float_of_int (max 1 total)))
      in
      let base = run Instr.baseline in
      let full = run Instr.full in
      Tablefmt.add_row t
        [
          Testbed.name server;
          Printf.sprintf "%.1f" base;
          Printf.sprintf "%.1f" full;
          Printf.sprintf "%+.1f" (full -. base);
        ])
    [ (Testbed.Httpd, Mcr_servers.Httpd_sim.port); (Testbed.Nginx, Mcr_servers.Nginx_sim.port) ];
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 5) *)

let ablation () =
  section "Ablation: conservative scanning off (likely-pointer invariants)";
  (* analyze a listing1-style image with and without conservative opacity:
     without it, the hidden-pointer target is unreachable and would be lost *)
  let kernel = K.create () in
  K.fs_write kernel ~path:Mcr_servers.Listing1.config_path "welcome=hi";
  let m = Manager.launch kernel (Mcr_servers.Listing1.v1 ()) in
  ignore (Manager.wait_startup m ());
  ignore
    (Mcr_workloads.Http_bench.run kernel ~port:Mcr_servers.Listing1.port ~requests:3 ~path:"/" ());
  let image = Manager.root_image m in
  let conservative = Objgraph.analyze image in
  let relaxed_policy =
    { Mcr_types.Ty.unions_opaque = false; char_arrays_opaque = false; words_opaque = false }
  in
  let relaxed = Objgraph.analyze ~policy:relaxed_policy image in
  let pinned a =
    List.length (List.filter (fun (o : Objgraph.obj) -> o.Objgraph.immutable_)
                   (Objgraph.reachable_objects a))
  in
  let reach a = List.length (Objgraph.reachable_objects a) in
  Printf.printf
    "conservative: %d reachable, %d pinned (likely ptr %d)\n\
     relaxed:      %d reachable, %d pinned (likely ptr %d)\n\
     -> without conservative scanning, %d object(s) reachable only through\n\
     hidden pointers would be lost or dangle after transfer.\n"
    (reach conservative) (pinned conservative) conservative.Objgraph.stats.Objgraph.likely.Objgraph.ptr
    (reach relaxed) (pinned relaxed) relaxed.Objgraph.stats.Objgraph.likely.Objgraph.ptr
    (reach conservative - reach relaxed);
  section "Ablation: region-allocator instrumentation (nginxreg)";
  let run_nginx instr =
    let kernel = K.create () in
    let m = Testbed.launch ~instr kernel Testbed.Nginx in
    ignore (Testbed.benchmark kernel Testbed.Nginx ~scale:2000 ());
    let holders = Testbed.open_holders kernel Testbed.Nginx ~n:8 in
    let _, report = Manager.update m (Mcr_servers.Nginx_sim.final ()) in
    Holders.close_all holders;
    report
  in
  let plain = run_nginx Instr.full in
  let reg = run_nginx (Instr.with_regions Instr.full) in
  let summary label (r : Manager.report) =
    let tr =
      List.fold_left
        (fun (tt, pin) (_, (o : Mcr_trace.Transfer.outcome)) ->
          (tt + o.Mcr_trace.Transfer.type_transformed, pin + o.Mcr_trace.Transfer.immutable_remapped))
        (0, 0) r.Manager.transfers
    in
    Printf.printf "%-22s success=%b type-transformed=%d pinned-in-place=%d\n" label
      r.Manager.success (fst tr) (snd tr)
  in
  summary "uninstrumented pools:" plain;
  summary "nginxreg:" reg;
  note
    "-> region instrumentation lets mutable tracing transform pool-resident\n\
     objects precisely instead of pinning opaque chunks in place.\n";
  section "Ablation: tag-free tracing (the Kitsune-style alternative)";
  (* re-analyze the listing1 image ignoring the in-band type tags *)
  let tagged = Objgraph.analyze image in
  let tag_free = Objgraph.analyze ~tag_free:true image in
  let pinned_of a =
    List.length
      (List.filter (fun (o : Objgraph.obj) -> o.Objgraph.immutable_)
         (Objgraph.reachable_objects a))
  in
  Printf.printf
    "with tags:    %d precise ptrs, %d likely, %d pinned objects\n\
     tag-free:     %d precise ptrs, %d likely, %d pinned objects\n\
     -> without tags every heap pointer is conservative: nothing dynamic can\n\
     be relocated or type-transformed (no interior/void* support without\n\
     pervasive annotations, as the paper notes).\n"
    tagged.Objgraph.stats.Objgraph.precise.Objgraph.ptr
    tagged.Objgraph.stats.Objgraph.likely.Objgraph.ptr (pinned_of tagged)
    tag_free.Objgraph.stats.Objgraph.precise.Objgraph.ptr
    tag_free.Objgraph.stats.Objgraph.likely.Objgraph.ptr (pinned_of tag_free);
  section "Ablation: call-stack-ID vs positional replay matching";
  (* the old version's real startup log, replayed against a reordered
     observation of itself: stack IDs tolerate benign reordering that a
     strict global ordering flags (Section 5) *)
  let kernel2 = K.create () in
  K.fs_write kernel2 ~path:Mcr_servers.Listing1.config_path "welcome=hi";
  let m2 = Manager.launch kernel2 (Mcr_servers.Listing1.v1 ()) in
  ignore (Manager.wait_startup m2 ());
  let entries =
    match Manager.memory_stats m2 |> fun _ -> () with
    | () -> (
        (* re-record a fresh session to get raw entries *)
        let kernel3 = K.create () in
        K.fs_write kernel3 ~path:Mcr_servers.Listing1.config_path "welcome=hi";
        let img = ref None in
        ignore
          (Mcr_program.Loader.launch kernel3 (Mcr_servers.Listing1.v1 ())
             ~on_image:(fun i -> img := Some i));
        let session = Mcr_replay.Record.start kernel3 (Option.get !img) in
        ignore
          (K.run_until kernel3
             ~max_ns:(K.clock_ns kernel3 + 10_000_000_000)
             (fun () -> (Option.get !img).P.i_startup_complete));
        match Mcr_replay.Record.logs session with
        | [ l ] -> l.Mcr_replay.Logdefs.entries
        | _ -> [])
  in
  let observed =
    (* swap adjacent same-kind-compatible entries to emulate benign
       nondeterministic reordering between versions *)
    match entries with
    | a :: b :: rest -> b :: a :: rest
    | l -> l
  in
  let module L = Mcr_replay.Logdefs in
  (* stack-ID matching: an entry matches if some unconsumed recorded entry
     has the same callstack and kind with equal args *)
  let stack_conflicts =
    let consumed = Array.make (List.length entries) false in
    List.fold_left
      (fun acc (o : L.entry) ->
        let rec find i = function
          | [] -> acc + 1
          | (e : L.entry) :: rest ->
              if
                (not consumed.(i))
                && e.L.callstack = o.L.callstack
                && L.deep_equal e.L.call o.L.call
              then begin
                consumed.(i) <- true;
                acc
              end
              else find (i + 1) rest
        in
        find 0 entries)
      0 observed
  in
  (* positional matching: entry i must equal recorded entry i *)
  let positional_conflicts =
    List.fold_left2
      (fun acc (e : L.entry) (o : L.entry) ->
        if L.deep_equal e.L.call o.L.call then acc else acc + 1)
      0 entries observed
  in
  Printf.printf
    "reordered startup (2 calls swapped): %d conflicts with call-stack IDs,\n\
     %d with strict positional matching -> stack IDs absorb benign\n\
     reordering, positional matching does not.\n"
    stack_conflicts positional_conflicts

(* ------------------------------------------------------------------ *)
(* Update-time summary (the < 1 s claim) *)

let slug = function
  | Testbed.Nginx -> "nginx"
  | Testbed.Httpd -> "httpd"
  | Testbed.Vsftpd -> "vsftpd"
  | Testbed.Sshd -> "sshd"

let write_file path data =
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* [trace_dir] (or $MCR_TRACE_DIR): write one Chrome trace-event file per
   server, covering its whole launch/workload/update run. [json_path] (or
   $MCR_BENCH_JSON): write the per-stage timings as a JSON array, for
   machine consumption alongside the printed table. *)
let update_time ?trace_dir ?json_path () =
  let trace_dir =
    match trace_dir with Some d -> Some d | None -> Sys.getenv_opt "MCR_TRACE_DIR"
  in
  let json_path =
    match json_path with Some p -> Some p | None -> Sys.getenv_opt "MCR_BENCH_JSON"
  in
  section "End-to-end update time (measured; paper: < 1 s)";
  let t =
    Tablefmt.create
      ~header:[ "Program"; "quiesce ms"; "CM ms"; "ST ms"; "total ms"; "replayed"; "live" ]
  in
  let json_rows = ref [] in
  List.iter
    (fun server ->
      let kernel = K.create () in
      let trace =
        match trace_dir with
        | Some _ -> Some (Mcr_obs.Trace.create ~clock:(fun () -> K.clock_ns kernel) ())
        | None -> None
      in
      let m = Testbed.launch ?trace kernel server in
      ignore (Testbed.benchmark kernel server ~scale:2000 ());
      let holders = Testbed.open_holders kernel server ~n:10 in
      let _, r = Manager.update m (Testbed.final_version server) in
      Holders.close_all holders;
      (match (trace_dir, trace) with
      | Some dir, Some tr ->
          write_file
            (Filename.concat dir (slug server ^ ".trace.json"))
            (Mcr_obs.Export.chrome_json tr)
      | _ -> ());
      json_rows :=
        Printf.sprintf
          "  {\"server\": %S, \"success\": %b, \"quiesce_ns\": %d, \
           \"control_migration_ns\": %d, \"state_transfer_ns\": %d, \"total_ns\": %d, \
           \"replayed_calls\": %d, \"live_calls\": %d}"
          (slug server) r.Manager.success r.Manager.quiesce_ns
          r.Manager.control_migration_ns r.Manager.state_transfer_ns r.Manager.total_ns
          r.Manager.replayed_calls r.Manager.live_calls
        :: !json_rows;
      if r.Manager.success then
        Tablefmt.add_row t
          [
            Testbed.name server;
            fms r.Manager.quiesce_ns;
            fms r.Manager.control_migration_ns;
            fms r.Manager.state_transfer_ns;
            fms r.Manager.total_ns;
            string_of_int r.Manager.replayed_calls;
            string_of_int r.Manager.live_calls;
          ]
      else
        Tablefmt.add_row t
          [ Testbed.name server; "-"; "-"; "-";
            "FAIL: " ^ Option.fold ~none:"?" ~some:Mcr_error.to_string r.Manager.failure; "-"; "-" ])
    Testbed.all;
  Tablefmt.print t;
  match json_path with
  | Some p ->
      write_file p ("[\n" ^ String.concat ",\n" (List.rev !json_rows) ^ "\n]\n");
      Printf.printf "wrote %s\n" p
  | None -> ()
