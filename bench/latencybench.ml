(* The client-perceived latency experiment: what does a live update cost
   the clients, at the tail?

   For each evaluated server an open-loop Poisson driver
   ({!Mcr_workloads.Loadgen}) schedules an arrival stream whose span
   brackets a live update, twice with identical preparation and seed —
   differing only in {!Mcr_core.Policy.t.request_parking}. Both runs
   use {!Mcr_core.Policy.t.concurrent_transfer} (the copy occupies a
   dedicated core), so clients — stand-ins for remote machines — stay
   live through the window and their arrival/backoff timers fire inside
   it. That is the regime where the two policies genuinely diverge:

   - parking off (the baseline): connections arriving once the window
     has filled the accept backlog are refused; the clients retry on an
     exponential backoff, so the tail is inflated by the backoff
     quantization (a refused client sleeps past the window's end by up
     to its whole last interval) and by the post-window refusal
     lottery of the returning herd;
   - parking on: the manager parks the listeners before quiescence
     (after a short drain), arriving connections complete their
     handshake into the parked SYN queue, and unparking on commit or
     rollback releases them FIFO into the survivor's backlog — no
     refusals, no retry storm, tail = window + queue-drain position.

   Because the driver is open-loop, latency is measured from the
   *scheduled* arrival (coordinated omission charged, not hidden), so
   the p99.9 comparison is exactly the client fleet's view. The run
   fails (exit 1) if any request is lost (issued <> completed+errored,
   or errors with parking on), if a parked connection is stranded
   (parked <> resumed+aborted), if the full-mode stream does not sustain
   >= 10k concurrent in-flight requests, or if parking does not
   strictly improve p99.9 on every server.

   $MCR_LATENCY_JSON: write every cell as JSON (the CI workflow uploads
   it; the committed BENCH_latency.json baseline is this file from a
   smoke run, and [check ~against] re-measures every cell against it,
   gating the p99/p99.9 tail and request conservation). Next to it,
   per-cell post-mortem inputs are dropped: latency_flight_*.json (the
   attempt's flight record) and latency_requests_*.json (per-request
   stamps) — feed both to `mcr-postmortem FLIGHT --requests REQS` for
   the client-impact section. *)

module K = Mcr_simos.Kernel
module Manager = Mcr_core.Manager
module Policy = Mcr_core.Policy
module Testbed = Mcr_workloads.Testbed
module Loadgen = Mcr_workloads.Loadgen
module Stats = Mcr_util.Stats
module Json = Mcr_obs.Json

let fms ns = Printf.sprintf "%.1f" (float_of_int ns /. 1e6)

(* Arrival rate (req/s of virtual time), chosen so the stream's span
   (requests/rate) brackets the update window: smoke is a steady 30 k/s
   the servers absorb outside the window, so every refusal is
   window-caused; full mode is 250 k/s — far above the service rate —
   so the scheduled-arrival pile through the window exceeds 10k
   concurrent in-flight requests per server. *)
let default_rate ~smoke = if smoke then 30_000 else 250_000
let default_requests ~smoke = if smoke then 1_500 else 12_000
let seed = 11

(* Virtual warm-up between the first scheduled arrival and the update
   request: enough for the accept path to reach steady state, short
   enough that most of the stream lands inside or after the window. *)
let warm_ns = 5_000_000

type cell = {
  parking : bool;
  requests : int;
  rate : int;
  issued : int;
  completed : int;
  errored : int;
  refused_retries : int;
  peak_in_flight : int;
  parked : int;
  resumed : int;
  aborted : int;
  downtime_ns : int;
  summary : Stats.hist_summary;  (* bucketed, as STATS/report render it *)
  p99_ns : int;  (* exact tail percentiles from the per-request records *)
  p999_ns : int;
}

(* The stream leaves thousands of connections alive at once in the web
   servers' single address space, so those get a large-heap version pair
   (nginx in particular region-allocates per accepted connection and
   OOM-kills its worker under load on the default heap). vsftpd and sshd
   fork a session process per connection — each session gets its own
   default heap, and a large per-session heap would only bloat every
   fork. Both sides of the comparison use the same versions; only the
   parking policy differs. *)
let heap_words = 8 * 1024 * 1024

let versions server =
  match (server : Testbed.server) with
  | Testbed.Nginx ->
      (Mcr_servers.Nginx_sim.base ~heap_words (), Mcr_servers.Nginx_sim.final ~heap_words ())
  | Testbed.Httpd ->
      (Mcr_servers.Httpd_sim.base ~heap_words (), Mcr_servers.Httpd_sim.final ~heap_words ())
  | Testbed.Vsftpd -> (Mcr_servers.Vsftpd_sim.base (), Mcr_servers.Vsftpd_sim.final ())
  | Testbed.Sshd -> (Mcr_servers.Sshd_sim.base (), Mcr_servers.Sshd_sim.final ())

(* vsftpd serves a 1 MiB big.bin by default; the latency stream RETRs it
   thousands of times, so shrink it to keep the byte charges from
   swamping the window signal (both sides of the comparison see the
   same file). *)
let shrink_ftp_payload kernel server =
  match (server : Testbed.server) with
  | Testbed.Vsftpd ->
      K.fs_write kernel
        ~path:(Mcr_servers.Vsftpd_sim.ftp_root ^ "/big.bin")
        (String.make 1024 'f')
  | _ -> ()

let measure server ~parking ~requests ~rate () =
  let kernel = K.create () in
  let base_version, final_version = versions server in
  let m = Testbed.launch ~version:base_version kernel server in
  shrink_ftp_payload kernel server;
  let policy =
    Policy.with_concurrent_transfer true
      (if parking then Policy.with_request_parking true (Manager.policy m)
       else Manager.policy m)
  in
  let lg =
    Loadgen.start kernel ~server ~seed ~metrics:(Manager.metrics m) ~rate ~requests ()
  in
  K.run_for kernel warm_ns;
  let _m2, report = Manager.update m ~policy final_version in
  if not report.Manager.success then begin
    Printf.printf "!! %s update failed (parking=%b): %s\n" (Testbed.name server) parking
      (Option.fold ~none:"?" ~some:Mcr_error.to_string report.Manager.failure);
    exit 1
  end;
  Loadgen.drive lg;
  let cell = {
    parking;
    requests;
    rate;
    issued = Loadgen.issued lg;
    completed = Loadgen.completed lg;
    errored = Loadgen.errored lg;
    refused_retries = Loadgen.refused_retries lg;
    peak_in_flight = Loadgen.peak_in_flight lg;
    parked = report.Manager.parked_requests;
    resumed = report.Manager.resumed_requests;
    aborted = report.Manager.aborted_requests;
    downtime_ns = report.Manager.downtime_ns;
    summary = Loadgen.summary lg;
    p99_ns = Loadgen.exact_percentile lg 99.;
    p999_ns = Loadgen.exact_percentile lg 99.9;
  }
  in
  (* The post-mortem inputs: the attempt's flight record and the driver's
     per-request stamps. `mcr-postmortem latency_flight_X.json --requests
     latency_requests_X.json` names the waterfall segment each stalled
     request was held in. *)
  (cell, Mcr_obs.Flight.to_json report.Manager.flight, Loadgen.requests_json lg)

let cell_json server c =
  let s = c.summary in
  Printf.sprintf
    "    {\"sweep\": \"latency\", \"server\": %S, \"parking\": %b, \"requests\": %d, \
     \"rate\": %d, \"issued\": %d, \"completed\": %d, \"errored\": %d, \
     \"refused_retries\": %d, \"peak_in_flight\": %d, \"parked\": %d, \"resumed\": %d, \
     \"aborted\": %d, \"downtime_ns\": %d, \"p50_ns\": %d, \"p90_ns\": %d, \
     \"p99_ns\": %d, \"p999_ns\": %d, \"max_ns\": %d}"
    (Testbed.name server) c.parking c.requests c.rate c.issued c.completed c.errored
    c.refused_retries c.peak_in_flight c.parked c.resumed c.aborted c.downtime_ns
    s.Stats.p50_ns s.Stats.p90_ns c.p99_ns c.p999_ns s.Stats.max_ns

(* Conservation: the driver and the kernel must agree that nothing was
   lost — every issued request completed or errored, and every parked
   connection was resumed or aborted. *)
let conservation_violations server c =
  let v = ref [] in
  if c.issued <> c.requests then
    v := Printf.sprintf "issued %d <> scheduled %d" c.issued c.requests :: !v;
  if c.completed + c.errored <> c.issued then
    v :=
      Printf.sprintf "completed %d + errored %d <> issued %d" c.completed c.errored
        c.issued
      :: !v;
  if c.errored > 0 then v := Printf.sprintf "%d request(s) errored" c.errored :: !v;
  if c.parked <> c.resumed + c.aborted then
    v :=
      Printf.sprintf "parked %d <> resumed %d + aborted %d" c.parked c.resumed c.aborted
      :: !v;
  if c.aborted > 0 then
    v := Printf.sprintf "%d parked connection(s) aborted" c.aborted :: !v;
  List.iter
    (fun msg -> Printf.printf "!! %s (parking=%b): %s\n" (Testbed.name server) c.parking msg)
    !v;
  List.length !v

let run ?(smoke = false) () =
  let requests = default_requests ~smoke in
  let rate = default_rate ~smoke in
  let json = ref [] in
  Printf.printf
    "\n== latency%s: open-loop tail through a live update, parking off vs on ==\n"
    (if smoke then " (smoke)" else "");
  Printf.printf "   %d requests at %d req/s against each server (seed %d)\n" requests rate
    seed;
  Printf.printf "%-10s %-7s %8s %8s %8s %8s %9s %7s %7s %8s\n" "server" "parking" "p50"
    "p99" "p99.9" "max(ms)" "peak-infl" "refused" "parked" "downtime";
  let violations = ref 0 in
  let artifact_dir =
    Option.map Filename.dirname (Sys.getenv_opt "MCR_LATENCY_JSON")
  in
  let write_artifact name data =
    Option.iter
      (fun dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let path = Filename.concat dir name in
        let oc = open_out_bin path in
        output_string oc data;
        close_out oc)
      artifact_dir
  in
  List.iter
    (fun server ->
      let off, off_flight, off_reqs = measure server ~parking:false ~requests ~rate () in
      let on, on_flight, on_reqs = measure server ~parking:true ~requests ~rate () in
      let slug =
        match server with
        | Testbed.Nginx -> "nginx"
        | Testbed.Httpd -> "httpd"
        | Testbed.Vsftpd -> "vsftpd"
        | Testbed.Sshd -> "sshd"
      in
      write_artifact (Printf.sprintf "latency_flight_%s_off.json" slug) off_flight;
      write_artifact (Printf.sprintf "latency_requests_%s_off.json" slug) off_reqs;
      write_artifact (Printf.sprintf "latency_flight_%s_on.json" slug) on_flight;
      write_artifact (Printf.sprintf "latency_requests_%s_on.json" slug) on_reqs;
      List.iter
        (fun c ->
          violations := !violations + conservation_violations server c;
          json := cell_json server c :: !json;
          let s = c.summary in
          Printf.printf "%-10s %-7s %8s %8s %8s %8s %9d %7d %7d %8s\n"
            (Testbed.name server)
            (if c.parking then "on" else "off")
            (fms s.Stats.p50_ns) (fms c.p99_ns) (fms c.p999_ns) (fms s.Stats.max_ns)
            c.peak_in_flight c.refused_retries c.parked (fms c.downtime_ns))
        [ off; on ];
      (* The full-mode stream must sustain a 10k-connection pile-up. *)
      if (not smoke) && off.peak_in_flight < 10_000 then begin
        incr violations;
        Printf.printf "!! %s: peak in-flight %d below 10000\n" (Testbed.name server)
          off.peak_in_flight
      end;
      (* Parking must pay for itself at the tail (exact percentiles —
         the bucketed histogram can tie genuinely different tails). *)
      if on.p999_ns >= off.p999_ns then begin
        incr violations;
        Printf.printf "!! %s: parking p99.9 %s ms not below no-parking %s ms\n"
          (Testbed.name server) (fms on.p999_ns) (fms off.p999_ns)
      end;
      (* Parking must suppress the retry storm (any residual refusals
         come from the pre-park slice of the burst, not the window). *)
      if on.refused_retries > 0 && on.refused_retries >= off.refused_retries then begin
        incr violations;
        Printf.printf "!! %s: %d refused-connect retries with parking on (>= %d without)\n"
          (Testbed.name server) on.refused_retries off.refused_retries
      end)
    Testbed.all;
  (match Sys.getenv_opt "MCR_LATENCY_JSON" with
  | Some path ->
      let dir = Filename.dirname path in
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let oc = open_out_bin path in
      output_string oc ("[\n" ^ String.concat ",\n" (List.rev !json) ^ "\n]\n");
      close_out oc;
      Printf.printf "latency: wrote %s\n" path
  | None -> ());
  if !violations > 0 then begin
    Printf.printf "\nlatency: %d violation(s)\n" !violations;
    exit 1
  end;
  Printf.printf
    "\nrequest parking strictly improves p99.9 on all servers, nothing lost, nothing stranded\n"

(* ------------------------------------------------------------------ *)
(* Regression gate: re-measure every cell of a committed baseline
   (BENCH_latency.json) with the cell's own requests/rate/parking and
   fail when the p99/p99.9 tail exceeds it by more than the tolerance
   or any request is lost. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  data

let server_of_name name = List.find_opt (fun s -> Testbed.name s = name) Testbed.all

let check ~against ~tolerance_pct () =
  let data =
    match read_file against with
    | data -> data
    | exception Sys_error e ->
        Printf.printf "latency check: %s\n" e;
        exit 2
  in
  let cells =
    match Json.parse data with
    | Error e ->
        Printf.printf "latency check: %s: %s\n" against e;
        exit 2
    | Ok j -> (
        match Json.to_list j with
        | Some l -> l
        | None ->
            Printf.printf "latency check: %s: expected a JSON array of cells\n" against;
            exit 2)
  in
  Printf.printf "\n== latency check: %d cell(s) against %s (tolerance %d%%) ==\n"
    (List.length cells) against tolerance_pct;
  let regressions = ref 0 in
  let checked = ref 0 in
  let gate label ~baseline ~measured =
    incr checked;
    let budget = baseline + (baseline * tolerance_pct / 100) in
    let ok = measured <= budget in
    if not ok then incr regressions;
    Printf.printf "%-44s %9s -> %9s ms  %s\n" label (fms baseline) (fms measured)
      (if ok then "ok" else "REGRESSED")
  in
  List.iter
    (fun cell ->
      match
        ( Json.str_field "server" cell,
          Json.bool_field "parking" cell,
          Json.int_field "requests" cell,
          Json.int_field "rate" cell )
      with
      | Some name, Some parking, Some requests, Some rate -> begin
          match server_of_name name with
          | None -> Printf.printf "latency check: unknown server %S, skipping\n" name
          | Some server ->
              let c, _, _ = measure server ~parking ~requests ~rate () in
              let lost = conservation_violations server c in
              regressions := !regressions + lost;
              let tag fmt = Printf.sprintf fmt name (if parking then "on" else "off") in
              (match Json.int_field "p99_ns" cell with
              | Some baseline ->
                  gate (tag "%s parking=%s p99") ~baseline ~measured:c.p99_ns
              | None -> ());
              (match Json.int_field "p999_ns" cell with
              | Some baseline ->
                  gate (tag "%s parking=%s p99.9") ~baseline ~measured:c.p999_ns
              | None -> ())
        end
      | _ -> Printf.printf "latency check: malformed cell, skipping\n")
    cells;
  if !regressions > 0 then begin
    Printf.printf
      "\nlatency check: %d regression(s) past %d%% over baseline (or lost requests)\n"
      !regressions tolerance_pct;
    exit 1
  end;
  Printf.printf "\nlatency check: all %d cell(s) within %d%% of the baseline, nothing lost\n"
    !checked tolerance_pct
