(* The numbers the paper reports, kept next to our measurements so every
   harness output is a paper-vs-measured comparison. Source: Giuffrida,
   Iorgulescu, Tanenbaum, "Mutable Checkpoint-Restart", Middleware 2014,
   Tables 1-3, Figure 3, and Section 8 in-text results. *)

(* Table 1: quiescence profiling, updates, changes, engineering effort *)
type table1_row = {
  prog : string;
  sl : int;
  ll : int;
  qp : int;
  per : int;
  vol : int;
  num : int;
  loc : int;
  fun_ : int;
  var : int;
  ty : int;
  ann_loc : int;
  st_loc : int;
}

let table1 =
  [
    { prog = "Apache httpd"; sl = 2; ll = 8; qp = 8; per = 5; vol = 3; num = 5; loc = 10_844;
      fun_ = 829; var = 28; ty = 48; ann_loc = 181; st_loc = 302 };
    { prog = "nginx"; sl = 1; ll = 2; qp = 2; per = 2; vol = 0; num = 25; loc = 9_681;
      fun_ = 711; var = 51; ty = 54; ann_loc = 22; st_loc = 335 };
    { prog = "vsftpd"; sl = 0; ll = 5; qp = 5; per = 1; vol = 4; num = 5; loc = 5_830;
      fun_ = 305; var = 121; ty = 35; ann_loc = 82; st_loc = 21 };
    { prog = "OpenSSH"; sl = 3; ll = 3; qp = 3; per = 1; vol = 2; num = 5; loc = 14_370;
      fun_ = 894; var = 84; ty = 33; ann_loc = 49; st_loc = 135 };
  ]

(* Table 2: mutable tracing statistics *)
type table2_row = {
  prog2 : string;
  p_ptr : int;
  p_src_static : int;
  p_src_dyn : int;
  p_targ_static : int;
  p_targ_dyn : int;
  p_targ_lib : int;
  l_ptr : int;
  l_src_static : int;
  l_src_dyn : int;
  l_targ_static : int;
  l_targ_dyn : int;
  l_targ_lib : int;
}

let table2 =
  [
    { prog2 = "Apache httpd"; p_ptr = 2_373; p_src_static = 2_272; p_src_dyn = 101;
      p_targ_static = 2_151; p_targ_dyn = 219; p_targ_lib = 3; l_ptr = 16_252;
      l_src_static = 185; l_src_dyn = 16_067; l_targ_static = 2_050; l_targ_dyn = 14_201;
      l_targ_lib = 1 };
    { prog2 = "nginx"; p_ptr = 1_242; p_src_static = 1_226; p_src_dyn = 16;
      p_targ_static = 1_214; p_targ_dyn = 26; p_targ_lib = 2; l_ptr = 4_049;
      l_src_static = 51; l_src_dyn = 3_998; l_targ_static = 293; l_targ_dyn = 3_755;
      l_targ_lib = 1 };
    { prog2 = "nginx (reg)"; p_ptr = 2_049; p_src_static = 1_226; p_src_dyn = 823;
      p_targ_static = 1_455; p_targ_dyn = 592; p_targ_lib = 2; l_ptr = 3_522;
      l_src_static = 51; l_src_dyn = 3_471; l_targ_static = 149; l_targ_dyn = 3_372;
      l_targ_lib = 1 };
    { prog2 = "vsftpd"; p_ptr = 149; p_src_static = 148; p_src_dyn = 1; p_targ_static = 131;
      p_targ_dyn = 4; p_targ_lib = 14; l_ptr = 6; l_src_static = 6; l_src_dyn = 0;
      l_targ_static = 0; l_targ_dyn = 6; l_targ_lib = 0 };
    { prog2 = "OpenSSH"; p_ptr = 237; p_src_static = 226; p_src_dyn = 11; p_targ_static = 211;
      p_targ_dyn = 19; p_targ_lib = 7; l_ptr = 56; l_src_static = 5; l_src_dyn = 51;
      l_targ_static = 16; l_targ_dyn = 32; l_targ_lib = 8 };
  ]

(* Table 3: run time normalized against the baseline *)
let table3 =
  [
    ("Apache httpd", [ 0.977; 1.040; 1.043; 1.047 ]);
    ("nginx", [ 1.000; 1.000; 1.000; 1.000 ]);
    ("nginx (reg)", [ 1.000; 1.175; 1.192; 1.186 ]);
    ("vsftpd", [ 1.024; 1.027; 1.028; 1.028 ]);
    ("OpenSSH", [ 0.999; 0.999; 1.001; 1.001 ]);
  ]

let table3_configs = [ "Unblock"; "+SInstr"; "+DInstr"; "+QDet" ]

(* Figure 3: state transfer time vs open connections — the paper reports a
   28-187 ms baseline with no connections and an average increase of 371 ms
   at 100 connections, with vsftpd/OpenSSH growing fastest (one process per
   connection). *)
let fig3_baseline_ms = (28.0, 187.0)
let fig3_avg_increase_at_100_ms = 371.0

(* In-text results *)
let quiescence_ms_max = 100.0
let control_migration_ms_max = 50.0
let record_replay_overhead_pct = (1.0, 45.0)
let rss_overhead_pct = (110.0, 483.6)
let rss_overhead_avg_pct = 288.5
let spec_alloc_worst_pct = 5.0
let spec_perlbench_pct = 36.0
let dirty_reduction_pct = (68.0, 86.0)
