(* fault-matrix: the rollback guarantee, measured.

   One row per (injection stage x server): inject the fault with
   deadlines armed, record the rollback reason and the rollback latency
   (virtual ns from the update call to the resumed old version). Stages
   marked "guaranteed" must roll back — a commit there is a harness bug
   and the run exits nonzero, which is what CI keys on ([--smoke] runs a
   reduced, still fully deterministic subset). Syscall faults are best
   effort: replayed calls can mask them, so their rows report whatever
   outcome occurred.

   When $MCR_FLIGHT_DIR is set, every attempt's flight record is written
   to $MCR_FLIGHT_DIR/flight_fault_matrix.json — the rollback-explanation
   artifact CI uploads, renderable with bin/mcr_postmortem. *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module Manager = Mcr_core.Manager
module Fault = Mcr_fault.Fault
module Testbed = Mcr_workloads.Testbed

(* name, plan, quiescence deadline, rollback guaranteed *)
let stages =
  [
    ("quiesce-refusal", [ Fault.Quiesce_refusal ], Some 1_000_000_000, true);
    ("replay-conflict", [ Fault.Replay_conflict ], None, true);
    ("startup-crash", [ Fault.Startup_crash ], None, true);
    ("startup-hang", [ Fault.Startup_hang ], None, true);
    ("reinit-hang", [ Fault.Reinit_hang ], None, true);
    ("transfer-conflict", [ Fault.Transfer_conflict ], None, true);
    ("likely-misclass", [ Fault.Likely_misclassification ], None, true);
    ( "syscall-enospc",
      [ Fault.Syscall_failure { call = "open_at"; err = S.ENOSPC; after = 0 } ],
      None,
      false );
    ( "syscall-connreset",
      [ Fault.Syscall_failure { call = "read"; err = S.ECONNRESET; after = 0 } ],
      None,
      false );
  ]

let smoke_stages = [ "quiesce-refusal"; "startup-crash"; "transfer-conflict" ]

let flights : Mcr_obs.Flight.record list ref = ref []

let flush_flights () =
  match Sys.getenv_opt "MCR_FLIGHT_DIR" with
  | None | Some "" -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir "flight_fault_matrix.json" in
      let oc = open_out path in
      output_string oc (Mcr_obs.Export.flight_json (List.rev !flights));
      close_out oc;
      Printf.printf "fault-matrix: flight records -> %s\n" path

let run ?(smoke = false) () =
  let servers = if smoke then [ Testbed.Httpd ] else Testbed.all in
  let stages =
    if smoke then List.filter (fun (n, _, _, _) -> List.mem n smoke_stages) stages
    else stages
  in
  Printf.printf "\n== fault-matrix%s: rollback latency per injection stage ==\n"
    (if smoke then " (smoke)" else "");
  Printf.printf "%-18s %-14s %-42s %12s\n" "stage" "server" "outcome" "latency(ms)";
  let violations = ref 0 in
  List.iter
    (fun (stage, plan, qdl, guaranteed) ->
      List.iter
        (fun server ->
          let kernel = K.create () in
          let m = Testbed.launch kernel server in
          let m2, report =
            Manager.update m
              ~policy:
                (Mcr_core.Policy.with_deadlines ~quiesce_ns:qdl
                   ~update_ns:(Some 20_000_000_000) Mcr_core.Policy.default)
              ~fault:(Fault.script plan)
              (Testbed.final_version server)
          in
          flights := report.Manager.flight :: !flights;
          let outcome =
            if report.Manager.success then "COMMIT"
            else
              match report.Manager.failure with
              | Some r -> Mcr_error.to_string r
              | None -> "<no reason>"
          in
          let old_ok = K.alive (Manager.root_proc m2) in
          if guaranteed && (report.Manager.success || not old_ok) then begin
            incr violations;
            Printf.printf "%-18s %-14s %-42s %12s  <-- GUARANTEE VIOLATED\n" stage
              (Testbed.name server) outcome "-"
          end
          else
            Printf.printf "%-18s %-14s %-42s %12.2f\n" stage (Testbed.name server)
              outcome
              (float_of_int report.Manager.total_ns /. 1e6))
        servers)
    stages;
  flush_flights ();
  if !violations > 0 then begin
    Printf.printf "\nfault-matrix: %d rollback-guarantee violation(s)\n" !violations;
    exit 1
  end
