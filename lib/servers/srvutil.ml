(* Small helpers shared by the simulated servers. *)

module S = Mcr_simos.Sysdefs
module Api = Mcr_program.Api
module Addr = Mcr_vmem.Addr

(* "GET /path" -> "/path"; anything else -> None *)
let parse_get req =
  match String.split_on_char ' ' (String.trim req) with
  | [ "GET"; path ] -> Some path
  | _ -> None

(* first word of a command line *)
let command req =
  match String.split_on_char ' ' (String.trim req) with
  | cmd :: _ -> String.uppercase_ascii cmd
  | [] -> ""

let arg req =
  match String.split_on_char ' ' (String.trim req) with
  | _ :: a :: _ -> Some a
  | _ -> None

(* "key value" / "key value;" directive in a config file -> int value *)
let config_int raw ~key ~default =
  let parse line =
    match String.split_on_char ' ' (String.trim line) with
    | k :: v :: _ when k = key ->
        let v =
          if String.length v > 0 && v.[String.length v - 1] = ';' then
            String.sub v 0 (String.length v - 1)
          else v
        in
        int_of_string_opt v
    | _ -> None
  in
  match List.find_map parse (String.split_on_char '\n' raw) with
  | Some n -> n
  | None -> default

(* read one request off a connection at a (possibly wrapped) quiescent point *)
let read_request t ~qpoint fd =
  match Api.blocking t ~qpoint (S.Read { fd; max = 4096; nonblock = false }) with
  | S.Ok_data "" -> None
  | S.Ok_data d -> Some d
  | _ -> None

let reply t fd data = ignore (Api.sys t (S.Write { fd; data }))

(* fixed-capacity fd set stored in a global int array: slot 0 unused fds are 0 *)
let array_add t ~global_arr ~capacity v =
  let base = Api.global t global_arr in
  let rec go i =
    if i >= capacity then false
    else if Api.load t (Addr.add_words base i) = 0 then begin
      Api.store t (Addr.add_words base i) v;
      true
    end
    else go (i + 1)
  in
  go 0

let array_remove t ~global_arr ~capacity v =
  let base = Api.global t global_arr in
  for i = 0 to capacity - 1 do
    if Api.load t (Addr.add_words base i) = v then Api.store t (Addr.add_words base i) 0
  done

let array_values t ~global_arr ~capacity =
  let base = Api.global t global_arr in
  let rec go i acc =
    if i >= capacity then List.rev acc
    else
      let v = Api.load t (Addr.add_words base i) in
      go (i + 1) (if v = 0 then acc else v :: acc)
  in
  go 0 []
