module S = Mcr_simos.Sysdefs
module Ty = Mcr_types.Ty
module P = Mcr_program.Progdef
module Api = Mcr_program.Api
module Addr = Mcr_vmem.Addr

let port = 2222
let config_path = "/etc/sshd_config"
let max_sessions = 128

let meta = Table_meta.sshd

(* ------------------------------------------------------------------ *)
(* Types *)

let conf_t =
  Ty.Struct
    {
      sname = "ssh_conf_t";
      fields = [ ("listen_fd", Ty.Int); ("banner", Ty.Void_ptr); ("sess_buf_words", Ty.Int) ];
    }

let session_t ~final =
  let fields =
    [
      ("conn", Ty.Int);
      ("authed", Ty.Int);
      ("cmds", Ty.Int);
      ("user", Ty.Void_ptr);
      ("buf", Ty.Void_ptr);
    ]
    @ if final then [ ("uid", Ty.Int) ] else []
  in
  Ty.Struct { sname = "ssh_session_t"; fields }

let env ~final =
  let e = Ty.env_create () in
  Ty.env_add e "ssh_conf_t" conf_t;
  Ty.env_add e "ssh_session_t" (session_t ~final);
  e

(* ------------------------------------------------------------------ *)
(* Session process *)

let helper_body t =
  Api.fn t "ssh_exec_helper" @@ fun () ->
  (* the short-lived exec'ed helper: a bit of work, then exit *)
  Api.app_work t 1;
  ignore (Api.sys t (S.Nanosleep { ns = 10_000 }))

let session_body ~final t =
  Api.fn t "ssh_session_main" @@ fun () ->
  let conn = Api.load t (Api.global t "ssh_cur_conn") in
  let sess = Api.malloc t ~site:"ssh_session_main:session" "ssh_session_t" in
  Api.store t (Api.global t "ssh_session") sess;
  Api.store_field t sess "ssh_session_t" "conn" conn;
  (* per-session transfer ballast: an opaque packet buffer sized by the
     session_buffer_words directive (0 = none). Large sizes are
     page-segregated, so state transfer can remap them page-for-page. *)
  let conf = Api.load t (Api.global t "ssh_conf") in
  let buf_words = Api.load_field t conf "ssh_conf_t" "sess_buf_words" in
  if buf_words > 0 then
    Api.store_field t sess "ssh_session_t" "buf"
      (Api.malloc_opaque t ~site:"ssh_session_main:buf" buf_words);
  Srvutil.reply t conn "SSH-2.0-mcr_sshd";
  Api.loop t "ssh_session_loop" (fun () ->
      match
        Api.blocking t ~qpoint:"ssh_session_read" (S.Read { fd = conn; max = 512; nonblock = false })
      with
      | S.Ok_data "" -> Api.exit t 0
      | S.Err S.EINTR -> true
      | S.Err _ -> Api.exit t 0
      | S.Ok_data cmdline -> begin
          Api.store_field t sess "ssh_session_t" "cmds"
            (Api.load_field t sess "ssh_session_t" "cmds" + 1);
          Api.app_work t 1;
          (match (Srvutil.command cmdline, Srvutil.arg cmdline) with
          | "AUTH", Some user ->
              (* authentication initialises the session's packet buffer:
                 the writes land after first quiesce, so its pages are
                 dirty and must travel with every state transfer (the
                 remap pass can share them frame-for-frame when congruent) *)
              if buf_words > 0 then begin
                let b = Api.load_field t sess "ssh_session_t" "buf" in
                for i = 0 to buf_words - 1 do
                  Api.store t (Addr.add_words b i) (0x73_73_68 lxor i)
                done
              end;
              (* privilege-separation helper: fork, let it run, reap it *)
              (match Api.sys t (S.Fork { entry = "ssh_exec_helper" }) with
              | S.Ok_pid pid -> ignore (Api.sys t (S.Waitpid { pid }))
              | _ -> ());
              let buf = Api.malloc_opaque t ~site:"ssh_auth:user" 4 in
              Api.write_bytes t buf user;
              Api.store_field t sess "ssh_session_t" "user" buf;
              (* type-unsafe idiom: a copy of the buffer pointer kept as a
                 plain integer — a likely pointer to data whose (absent)
                 type no update ever changes, so no annotation is needed *)
              Api.store t (Api.global t "ssh_sess_shadow") buf;
              Api.store_field t sess "ssh_session_t" "authed" 1;
              if final then Api.store_field t sess "ssh_session_t" "uid" 1000;
              Srvutil.reply t conn "auth-ok"
          | "RUN", Some cmd ->
              if Api.load_field t sess "ssh_session_t" "authed" = 1 then
                Srvutil.reply t conn
                  (Printf.sprintf "out:%s#%d" cmd
                     (Api.load_field t sess "ssh_session_t" "cmds"))
              else Srvutil.reply t conn "denied"
          | "EXIT", _ ->
              Srvutil.reply t conn "bye";
              ignore (Api.sys t (S.Close { fd = conn }));
              Api.exit t 0
          | _, _ -> Srvutil.reply t conn "unknown");
          true
        end
      | _ -> true)

(* ------------------------------------------------------------------ *)
(* Master *)

let master_body t =
  Api.fn t "main" @@ fun () ->
  Api.fn t "ssh_init" (fun () ->
      let conf = Api.malloc t ~site:"ssh_init:conf" "ssh_conf_t" in
      Api.store t (Api.global t "ssh_conf") conf;
      let cfd = Api.sys_fd_exn t (S.Open { path = config_path; create = false }) in
      let raw =
        match Api.sys t (S.Read { fd = cfd; max = 512; nonblock = false }) with
        | S.Ok_data d -> d
        | _ -> ""
      in
      Api.sys_unit_exn t (S.Close { fd = cfd });
      Api.store_field t conf "ssh_conf_t" "sess_buf_words"
        (Srvutil.config_int raw ~key:"session_buffer_words" ~default:0);
      let banner = Api.malloc_opaque t ~site:"ssh_init:banner" 4 in
      Api.write_bytes t banner "mcr_sshd";
      Api.store_field t conf "ssh_conf_t" "banner" banner;
      (* startup-time configuration tables (mime types, host maps, parsed
         directives): the bulk of a real server's state, initialized once
         and re-created by the new version's own startup — what soft-dirty
         tracking excludes from transfer *)
      let cfg_table = Api.malloc_opaque t ~site:"ssh_init:cfg_table" 1024 in
      Api.store t (Api.global t "ssh_cfg_table") cfg_table;
      (* a libcrypto context: program pointers into shared-library state *)
      let crypto_ctx = Api.lib_malloc t 32 in
      Api.store t (Api.global t "ssh_crypto_ctx") crypto_ctx;
      let sock = Api.sys_fd_exn t S.Socket in
      Api.sys_unit_exn t (S.Bind { fd = sock; port });
      Api.sys_unit_exn t (S.Listen { fd = sock; backlog = 256 });
      Api.store_field t conf "ssh_conf_t" "listen_fd" sock);
  let conf = Api.load t (Api.global t "ssh_conf") in
  let listen_fd = Api.load_field t conf "ssh_conf_t" "listen_fd" in
  Api.fn t "ssh_server_loop" @@ fun () ->
  Api.loop t "ssh_accept_loop" (fun () ->
      match
        Api.blocking t ~qpoint:"ssh_server_loop" (S.Accept { fd = listen_fd; nonblock = false })
      with
      | S.Ok_fd conn ->
          Api.store t (Api.global t "ssh_cur_conn") conn;
          ignore (Srvutil.array_add t ~global_arr:"ssh_sessions" ~capacity:max_sessions conn);
          ignore (Api.sys t (S.Fork { entry = "ssh_session" }));
          ignore (Api.sys t (S.Close { fd = conn }));
          true
      | _ -> true)

(* volatile-session control migration (OpenSSH's 49-LOC analog) *)
let respawn_sessions t =
  let is_master = match Api.sys t S.Getppid with S.Ok_pid 0 -> true | _ -> false in
  if is_master then begin
    let held = Srvutil.array_values t ~global_arr:"ssh_sessions" ~capacity:max_sessions in
    List.iter
      (fun conn ->
        Api.store t (Api.global t "ssh_cur_conn") conn;
        Api.masquerade t ~frames:[ "ssh_server_loop"; "main"; "main" ] (fun () ->
            ignore (Api.sys t (S.Fork { entry = "ssh_session" }))))
      held
  end

(* ------------------------------------------------------------------ *)
(* Versions *)

let globals ~step =
  [
    ("ssh_conf", Ty.Ptr (Ty.Named "ssh_conf_t"));
    ("ssh_sessions", Ty.Array (Ty.Int, max_sessions));
    ("ssh_cur_conn", Ty.Int);
    ("ssh_session", Ty.Ptr (Ty.Named "ssh_session_t"));
    ("ssh_sess_shadow", Ty.Word);
    ("ssh_cfg_table", Ty.Void_ptr);
    ("ssh_crypto_ctx", Ty.Void_ptr);
  ]
  @ List.init step (fun i -> (Printf.sprintf "ssh_stat_%d" (i + 1), Ty.Int))

let funcs ~step =
  [ "main"; "ssh_init"; "ssh_server_loop"; "ssh_session_main"; "ssh_auth"; "ssh_exec_helper" ]
  @ List.concat
      (List.init step (fun i ->
           [ Printf.sprintf "ssh_fix_%d" (i + 1); Printf.sprintf "ssh_cve_%d" (i + 1) ]))

let strings = [ "sshd"; "AUTH"; "RUN"; "EXIT"; "SSH-2.0-mcr_sshd" ]

let qpoints = [ ("ssh_server_loop", "accept"); ("ssh_session_read", "read") ]

let version_of_step ?heap_words ~step ~final ~tag () =
  P.make_version ~prog:"sshd" ~version_tag:tag ~layout_bias:(step * 1024) ?heap_words
    ~tyenv:(env ~final)
    ~globals:(globals ~step) ~funcs:(funcs ~step) ~strings
    ~entries:
      [
        ("main", master_body);
        ("ssh_session", session_body ~final);
        ("ssh_exec_helper", helper_body);
      ]
    ~qpoints
    ~annotations:[ P.Reinit_handler { name = "ssh_respawn_sessions"; run = respawn_sessions } ]
    ()

let versions () =
  List.init (meta.Table_meta.num_updates + 1) (fun step ->
      let final = step = meta.Table_meta.num_updates in
      let tag =
        if step = 0 then "3.5p1" else if final then "3.8p1" else Printf.sprintf "3.5p1+u%d" step
      in
      version_of_step ~step ~final ~tag ())

let base ?heap_words () = version_of_step ?heap_words ~step:0 ~final:false ~tag:"3.5p1" ()

let final ?heap_words () =
  version_of_step ?heap_words ~step:meta.Table_meta.num_updates ~final:true ~tag:"3.8p1" ()
