(** The paper's running example (Listing 1): a minimal event-driven server.

    Globals: [char b(8)] (holds a hidden pointer, Figure 2), a linked-list
    head [list] of [l_t] nodes (one appended per request), and a startup
    [conf] structure read from persistent storage. One thread, one
    quiescent point ([server_get_event]/accept).

    Versions:
    - v1: baseline;
    - v2: adds field [new] to [l_t] and changes the reply banner — the
      Figure 2 update, requiring relocation and on-the-fly type
      transformation of every list node;
    - v2 with [`Omit_listen]: a pathological update whose startup omits the
      recorded [listen] call — triggers a mutable-reinitialization conflict
      and therefore a rollback;
    - v2 with [`Change_union]: changes a conservatively-traced structure —
      triggers a mutable-tracing conflict. *)

val port : int

val config_path : string
(** The config file read at startup; create it with [Kernel.fs_write]
    before launching (contents "welcome=<banner>"). *)

val v1 : unit -> Mcr_program.Progdef.version

val v2 :
  ?variant:
    [ `Normal | `Omit_listen | `Change_hidden | `Change_port | `With_handler | `Rename_init ] ->
  unit ->
  Mcr_program.Progdef.version
(** [`Change_hidden] retypes the structure referenced only through the
    hidden pointer in [b], which conservative tracing marks nonupdatable.
    [`Change_port] binds a different port — a replay-class call with
    mismatched arguments, the paper's argument-comparison conflict.
    [`With_handler] installs a user transfer handler for [l_t] that
    initializes the added field to 42 instead of zero (the semantic
    state transformation escape hatch).
    [`Rename_init] renames the startup function — the paper's admitted
    conservativeness: renamed functions change call-stack IDs, so the
    replayed calls no longer match and the update (spuriously but safely)
    rolls back. *)
