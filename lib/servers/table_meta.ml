(* Update-series metadata for Table 1.

   The "LOC" changed by upstream releases and the engineering-effort line
   counts are facts about the original C programs and the authors' MCR
   annotations; they cannot be derived from the simulation, so they are
   carried as recorded metadata (values from Table 1 of the paper). The
   Fun/Var/Type change counts, by contrast, ARE derived — by diffing the
   simulated version series (Progdef.diff_versions). *)

type t = {
  prog : string;
  num_updates : int;
  upstream_loc : int;  (** LOC changed across the update series (paper). *)
  annotation_loc : int;  (** "Ann LOC" (paper). *)
  st_loc : int;  (** "ST LOC": manual state-transfer code (paper). *)
}

let nginx =
  { prog = "nginx"; num_updates = 25; upstream_loc = 9_681; annotation_loc = 22; st_loc = 335 }

let httpd =
  {
    prog = "Apache httpd";
    num_updates = 5;
    upstream_loc = 10_844;
    annotation_loc = 181;
    st_loc = 302;
  }

let vsftpd =
  { prog = "vsftpd"; num_updates = 5; upstream_loc = 5_830; annotation_loc = 82; st_loc = 21 }

let sshd =
  { prog = "OpenSSH"; num_updates = 5; upstream_loc = 14_370; annotation_loc = 49; st_loc = 135 }
