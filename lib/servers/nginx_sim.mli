(** nginx-like simulated server (the paper's nginx v0.8.54 .. v1.0.15).

    Architecture mirrored from the original: a master process that forks one
    event-driven worker and then parks in its signal loop; the worker
    multiplexes the listening socket and all connections in a single poll
    loop — the "rigorous event-driven programming model" that gives nginx a
    single persistent quiescent state per process (Table 1: no volatile
    quiescent points). Connections are carved from a region ("pool")
    allocator — uninstrumented by default, per-object-tagged in the
    [nginxreg] configuration — and a shared free-list slab backs the
    counter zone. One global uses the low-2-bit pointer-encoding idiom that
    requires the paper's 22-LOC annotation ([Encoded_ptr]).

    Requests: ["GET <path>"] returns the file at <path> (or a canned page)
    and updates an instrumented-heap response cache. ["HOLD"] keeps the
    connection open without a response (long-lived connections for the
    Figure 3 workload). *)

val port : int

val doc_root : string
(** Files under this prefix are servable; populate with [Kernel.fs_write]. *)

val versions : unit -> Mcr_program.Progdef.version list
(** The full update series: index 0 is v0.8.54, the last is v1.0.15 (26
    versions, 25 updates, matching the paper's count). Intermediate
    versions carry the small structural diffs used for Table 1 counting;
    the final version's functional change adds a [ttl] field to the cache
    entry type. *)

val base : ?heap_words:int -> unit -> Mcr_program.Progdef.version
val final : ?heap_words:int -> unit -> Mcr_program.Progdef.version
(** [?heap_words] sizes the instrumented heap — the downtime benchmark
    passes a large heap so per-connection buffer ballast (the
    [conn_buffer_words] config directive) fits at scale. *)

val final_with_workers : int -> Mcr_program.Progdef.version
(** The final version configured to fork [n] worker processes — the
    paper's Section 7 "nondeterministic process model" scenario. Growing
    the worker count is handled automatically (extra forks execute live);
    shrinking it omits a recorded fork and conflicts (rollback). *)

val meta : Table_meta.t
(** Upstream update-series metadata (changed LOC) and engineering-effort
    line counts (annotations, state-transfer code) for Table 1. *)
