module S = Mcr_simos.Sysdefs
module Ty = Mcr_types.Ty
module P = Mcr_program.Progdef
module Api = Mcr_program.Api
module Addr = Mcr_vmem.Addr

let port = 8082
let servers = 2
let workers_per_server = 2
let doc_root = "/www"
let config_path = "/etc/httpd.conf"
let pidfile = "/var/run/httpd.pid"
let max_held = 128

let meta = Table_meta.httpd

(* ------------------------------------------------------------------ *)
(* Types *)

let conf_t =
  Ty.Struct
    {
      sname = "ap_conf_t";
      fields =
        [
          ("workers", Ty.Int);
          ("listen_fd", Ty.Int);
          ("conn_buf_words", Ty.Int);
          ("root", Ty.Void_ptr);
        ];
    }

let vhost_t ~final =
  let fields =
    [ ("name", Ty.Void_ptr); ("hits", Ty.Int); ("next", Ty.Ptr (Ty.Named "ap_vhost_t")) ]
    @ if final then [ ("bytes", Ty.Int) ] else []
  in
  Ty.Struct { sname = "ap_vhost_t"; fields }

let request_t =
  Ty.Struct { sname = "ap_request_t"; fields = [ ("uri", Ty.Void_ptr); ("len", Ty.Int) ] }

let env ~final =
  let e = Ty.env_create () in
  Ty.env_add e "ap_conf_t" conf_t;
  Ty.env_add e "ap_vhost_t" (vhost_t ~final);
  Ty.env_add e "ap_request_t" request_t;
  e

(* ------------------------------------------------------------------ *)
(* Request handling *)

let serve_file t path =
  let full = if String.length path > 0 && path.[0] = '/' then doc_root ^ path else path in
  match Api.sys t (S.Open { path = full; create = false }) with
  | S.Ok_fd fd ->
      let data =
        match Api.sys t (S.Read { fd; max = 65536; nonblock = false }) with
        | S.Ok_data d -> d
        | _ -> ""
      in
      ignore (Api.sys t (S.Close { fd }));
      data
  | _ -> "404 not found"

let bump_vhost t path len =
  let head_addr = Api.global t "ap_vhost_head" in
  let key_buf name =
    let b = Api.malloc_opaque t ~site:"ap_vhost:name" 4 in
    Api.write_bytes t b name;
    b
  in
  let rec find addr =
    if addr = 0 then None
    else if Api.read_string t (Api.load_field t addr "ap_vhost_t" "name") = path then Some addr
    else find (Api.load_field t addr "ap_vhost_t" "next")
  in
  match find (Api.load t head_addr) with
  | Some v ->
      Api.store_field t v "ap_vhost_t" "hits" (Api.load_field t v "ap_vhost_t" "hits" + 1)
  | None ->
      let v = Api.malloc t ~site:"ap_vhost_insert:entry" "ap_vhost_t" in
      Api.store_field t v "ap_vhost_t" "name" (key_buf path);
      Api.store_field t v "ap_vhost_t" "hits" 1;
      Api.store_field t v "ap_vhost_t" "next" (Api.load t head_addr);
      Api.store t head_addr v;
      ignore len

(* ------------------------------------------------------------------ *)
(* Worker threads *)

(* claim the scoreboard slot holding [fd]; returns the slot index so the
   hold worker can park per-connection state (the request buffer) there *)
let claim_held t fd =
  let held = Api.global t "ap_held_fds" in
  let claimed = Api.global t "ap_held_claimed" in
  let rec go i =
    if i >= max_held then None
    else if Api.load t (Addr.add_words held i) = fd && Api.load t (Addr.add_words claimed i) = 0
    then begin
      Api.store t (Addr.add_words claimed i) 1;
      Some i
    end
    else go (i + 1)
  in
  go 0

let unheld t fd =
  let held = Api.global t "ap_held_fds" in
  let claimed = Api.global t "ap_held_claimed" in
  let bufs = Api.global t "ap_held_bufs" in
  for i = 0 to max_held - 1 do
    if Api.load t (Addr.add_words held i) = fd then begin
      Api.store t (Addr.add_words held i) 0;
      Api.store t (Addr.add_words claimed i) 0;
      let b = Api.load t (Addr.add_words bufs i) in
      if b <> 0 then begin
        Api.free t b;
        Api.store t (Addr.add_words bufs i) 0
      end
    end
  done

let respond_get t ~slot conn path =
  let body = serve_file t path in
  (* per-request state in a nested region: a child pool of the process
     pool, destroyed when the request completes (apr semantics) *)
  let root_pool = Api.find_pool t "ap_root_pool" in
  let rpool = Api.subpool t ~parent:root_pool "ap_req_pool" in
  let req = Api.palloc t rpool ~site:"ap_process_request:req" "ap_request_t" in
  let uri = Api.palloc_bytes t rpool path in
  Api.store t req uri;
  (* the access log lives in the long-lived root pool (apr-style): a linked
     list of pool records whose head hides in a pointer-sized integer —
     uninstrumented pool state, the dominant source of likely pointers in
     Table 2 *)
  let entry = Api.palloc t root_pool ~site:"ap_log:entry" "ap_request_t" in
  let n_now = Api.load t (Api.global t "ap_requests") in
  (* method literals alternate with pool-copied uris: pool-resident likely
     pointers into both static strings and dynamic memory, as in Table 2 *)
  Api.store t entry
    (if n_now mod 2 = 0 then Api.string_lit t "GET" else Api.palloc_bytes t root_pool path);
  Api.store t (Mcr_vmem.Addr.add_words entry 1) (Api.load t (Api.global t "ap_log_head"));
  Api.store t (Api.global t "ap_log_head") entry;
  (* bucket-brigade buffers: transient heap allocations per response, the
     instrumented-malloc traffic behind httpd's Table 3 overhead *)
  let brigade = List.init 6 (fun _ -> Api.malloc_opaque t ~site:"ap_brigade:bucket" 8) in
  List.iter (fun b -> Api.free t b) brigade;
  bump_vhost t path (String.length body);
  let sb = Api.global t "ap_scoreboard" in
  Api.store t (Addr.add_words sb slot) (Api.load t (Addr.add_words sb slot) + 1);
  Api.store t (Api.global t "ap_requests") (Api.load t (Api.global t "ap_requests") + 1);
  Api.app_work t 1;
  let n = Api.load t (Api.global t "ap_requests") in
  Srvutil.reply t conn (Printf.sprintf "200 #%d %s" n body);
  Api.pool_destroy t rpool

let hold_worker_body t =
  Api.fn t "ap_hold_worker" @@ fun () ->
  (* find our connection: first held-but-unclaimed fd *)
  let held = Api.global t "ap_held_fds" in
  let fd, slot =
    let rec go i =
      if i >= max_held then (0, -1)
      else
        let v = Api.load t (Addr.add_words held i) in
        if v <> 0 then
          match claim_held t v with Some s -> (v, s) | None -> go (i + 1)
        else go (i + 1)
    in
    go 0
  in
  if fd <> 0 then begin
    let state = Api.stack_var t "hold_state" "ap_hold_state_t" in
    (* per-connection request buffer: heap state that grows with held
       connections (Figure 3), sized by the ConnBufferWords directive and
       parked in ap_held_bufs so it stays reachable (and transferable)
       for the connection's whole lifetime; respawned hold workers after
       an update find the transferred buffer already in the slot *)
    let bufs = Api.global t "ap_held_bufs" in
    if Api.load t (Addr.add_words bufs slot) = 0 then begin
      let conf = Api.load t (Api.global t "ap_conf") in
      let buf_words =
        let n = Api.load_field t conf "ap_conf_t" "conn_buf_words" in
        if n <= 0 then 256 else n
      in
      Api.store t (Addr.add_words bufs slot)
        (Api.malloc_opaque t ~site:"ap_hold_worker:buf" buf_words)
    end;
    let rec serve () =
      match Api.blocking t ~qpoint:"ap_hold_read" (S.Read { fd; max = 4096; nonblock = false }) with
      | S.Ok_data "" ->
          unheld t fd;
          ignore (Api.sys t (S.Close { fd }))
      | S.Ok_data req -> begin
          match Srvutil.parse_get req with
          | Some path ->
              Api.store t state (Api.load t state + 1);
              respond_get t ~slot:0 fd path;
              unheld t fd;
              ignore (Api.sys t (S.Close { fd }))
          | None -> serve ()
        end
      | S.Err S.EINTR -> serve ()
      | _ -> unheld t fd
    in
    serve ()
  end

let worker_body t =
  Api.fn t "ap_worker_thread" @@ fun () ->
  let slot_counter = Api.global t "ap_next_slot" in
  let slot = Api.load t slot_counter in
  Api.store t slot_counter (slot + 1);
  let conf = Api.load t (Api.global t "ap_conf") in
  let listen_fd = Api.load_field t conf "ap_conf_t" "listen_fd" in
  Api.loop t "ap_worker_loop" (fun () ->
      match
        Api.blocking t ~qpoint:"ap_worker_accept" (S.Accept { fd = listen_fd; nonblock = false })
      with
      | S.Ok_fd conn -> begin
          match Api.sys t (S.Read { fd = conn; max = 4096; nonblock = false }) with
          | S.Ok_data req -> begin
              match Srvutil.parse_get req with
              | Some path ->
                  respond_get t ~slot conn path;
                  ignore (Api.sys t (S.Close { fd = conn }));
                  true
              | None ->
                  if Srvutil.command req = "HOLD" then begin
                    ignore (Srvutil.array_add t ~global_arr:"ap_held_fds" ~capacity:max_held conn);
                    ignore (Api.sys t (S.Thread_create { entry = "ap_hold_worker" }));
                    true
                  end
                  else begin
                    Srvutil.reply t conn "400";
                    ignore (Api.sys t (S.Close { fd = conn }));
                    true
                  end
            end
          | _ ->
              ignore (Api.sys t (S.Close { fd = conn }));
              true
        end
      | _ -> true)

(* ------------------------------------------------------------------ *)
(* Server (child) processes and master *)

let server_body t =
  Api.fn t "ap_child_main" @@ fun () ->
  for _ = 1 to workers_per_server do
    ignore (Api.sys t (S.Thread_create { entry = "ap_worker" }))
  done;
  Api.loop t "ap_child_wait" (fun () ->
      ignore
        (Api.blocking t ~qpoint:"ap_child_wait"
           (S.Sem_wait { name = "ap.child.signal"; timeout_ns = None }));
      true)

let master_body ~prepared ~step t =
  Api.fn t "main" @@ fun () ->
  Api.fn t "ap_read_config" (fun () ->
      let conf = Api.malloc t ~site:"ap_read_config:conf" "ap_conf_t" in
      Api.store t (Api.global t "ap_conf") conf;
      let cfd = Api.sys_fd_exn t (S.Open { path = config_path; create = false }) in
      let raw =
        match Api.sys t (S.Read { fd = cfd; max = 512; nonblock = false }) with
        | S.Ok_data d -> d
        | _ -> ""
      in
      Api.sys_unit_exn t (S.Close { fd = cfd });
      let root_buf = Api.malloc_opaque t ~site:"ap_read_config:root" 4 in
      Api.write_bytes t root_buf doc_root;
      Api.store_field t conf "ap_conf_t" "workers" (servers * workers_per_server);
      Api.store_field t conf "ap_conf_t" "conn_buf_words"
        (Srvutil.config_int raw ~key:"ConnBufferWords" ~default:256);
      (* startup-time configuration tables (mime types, host maps, parsed
         directives): the bulk of a real server's state, initialized once
         and re-created by the new version's own startup — what soft-dirty
         tracking excludes from transfer *)
      let cfg_table = Api.malloc_opaque t ~site:"ap_read_config:cfg_table" 1024 in
      Api.store t (Api.global t "ap_cfg_table") cfg_table;
      Api.store_field t conf "ap_conf_t" "root" root_buf;
      (* module handler table: function pointers into the text section *)
      let handlers = Api.global t "ap_handlers" in
      List.iteri
        (fun i fname -> Api.store t (Mcr_vmem.Addr.add_words handlers i) (Api.func_ptr t fname))
        [ "ap_read_config"; "ap_pidfile_check"; "ap_worker_thread"; "ap_hold_worker" ];
      if step > 0 then Api.store t (Api.global t (Printf.sprintf "ap_stat_%d" step)) step);
  Api.fn t "ap_pidfile_check" (fun () ->
      (* detect a running instance: unprepared builds abort here when the
         pidfile holds another pid — the paper's 8-LOC preparation *)
      let pfd = Api.sys_fd_exn t (S.Open { path = pidfile; create = true }) in
      let content =
        match Api.sys t (S.Read { fd = pfd; max = 64; nonblock = false }) with
        | S.Ok_data d -> d
        | _ -> ""
      in
      let mypid =
        match Api.sys t S.Getpid with S.Ok_pid p -> string_of_int p | _ -> "?"
      in
      (* a non-empty pidfile means another (or a previous) instance: the
         unprepared build aborts — under MCR the old version is of course
         still running, so every unprepared update rolls back *)
      if content <> "" && not prepared then Api.exit t 1;
      if content = "" then ignore (Api.sys t (S.Write { fd = pfd; data = mypid }));
      Api.sys_unit_exn t (S.Close { fd = pfd }));
  let conf = Api.load t (Api.global t "ap_conf") in
  let sock = Api.sys_fd_exn t S.Socket in
  Api.sys_unit_exn t (S.Bind { fd = sock; port });
  Api.sys_unit_exn t (S.Listen { fd = sock; backlog = 256 });
  Api.store_field t conf "ap_conf_t" "listen_fd" sock;
  ignore (Api.pool t ~chunk_words:512 "ap_root_pool");
  (* short-lived startup helpers: daemonization and init tasks (Table 1's
     two short-lived thread classes for httpd) *)
  ignore (Api.sys t (S.Thread_create { entry = "ap_daemonize" }));
  ignore (Api.sys t (S.Thread_create { entry = "ap_init_task" }));
  for _ = 1 to servers do
    ignore (Api.sys t (S.Fork { entry = "ap_server" }))
  done;
  Api.loop t "ap_master" (fun () ->
      ignore
        (Api.blocking t ~qpoint:"ap_master"
           (S.Sem_wait { name = "ap.master.signal"; timeout_ns = None }));
      true)

(* re-create hold-handler threads for held connections after an update (the
   volatile quiescent points; httpd's largest control-migration annotation) *)
let respawn_hold_workers t =
  let held = Api.global t "ap_held_fds" in
  let claimed = Api.global t "ap_held_claimed" in
  for i = 0 to max_held - 1 do
    if Api.load t (Addr.add_words held i) <> 0 then begin
      Api.store t (Addr.add_words claimed i) 0;
      ignore (Api.sys t (S.Thread_create { entry = "ap_hold_worker" }))
    end
  done

(* ------------------------------------------------------------------ *)
(* Versions *)

let globals ~step =
  [
    ("ap_conf", Ty.Ptr (Ty.Named "ap_conf_t"));
    ("ap_scoreboard", Ty.Array (Ty.Int, 16));
    ("ap_next_slot", Ty.Int);
    ("ap_requests", Ty.Int);
    ("ap_vhost_head", Ty.Ptr (Ty.Named "ap_vhost_t"));
    ("ap_held_fds", Ty.Array (Ty.Int, max_held));
    ("ap_held_claimed", Ty.Array (Ty.Int, max_held));
    ("ap_held_bufs", Ty.Array (Ty.Void_ptr, max_held));
    (* access-log head stored as a pointer-sized integer: opaque, so the
       whole pool-resident log is found only by conservative scanning *)
    ("ap_log_head", Ty.Word);
    ("ap_handlers", Ty.Array (Ty.Func_ptr, 4));
    ("ap_cfg_table", Ty.Void_ptr);
  ]
  @ List.init step (fun i -> (Printf.sprintf "ap_stat_%d" (i + 1), Ty.Int))

let funcs ~step =
  [
    "main";
    "ap_read_config";
    "ap_pidfile_check";
    "ap_master";
    "ap_child_main";
    "ap_worker_thread";
    "ap_hold_worker";
    "ap_vhost_insert";
  ]
  @ List.concat
      (List.init step (fun i ->
           [ Printf.sprintf "ap_fix_%d" (i + 1); Printf.sprintf "ap_mod_%d" (i + 1) ]))

let strings = [ "httpd"; "GET"; "HOLD"; "200"; "400"; "404 not found"; doc_root; pidfile ]

let qpoints =
  [
    ("ap_master", "sem_wait");
    ("ap_child_wait", "sem_wait");
    ("ap_worker_accept", "accept");
    ("ap_hold_read", "read");
  ]

let helper_body name t =
  Api.fn t name @@ fun () -> ignore (Api.sys t (S.Nanosleep { ns = 1_000 }))

let version_of_step ?heap_words ~step ~final ~prepared ~tag () =
  let e = env ~final in
  Ty.env_add e "ap_hold_state_t" Ty.Int;
  P.make_version ~prog:"httpd" ~version_tag:tag ~layout_bias:(step * 1024) ?heap_words ~tyenv:e
    ~globals:(globals ~step) ~funcs:(funcs ~step) ~strings
    ~entries:
      [
        ("main", master_body ~prepared ~step);
        ("ap_server", server_body);
        ("ap_worker", worker_body);
        ("ap_hold_worker", hold_worker_body);
        ("ap_daemonize", helper_body "ap_daemonize");
        ("ap_init_task", helper_body "ap_init_task");
      ]
    ~qpoints
    ~annotations:
      [ P.Reinit_handler { name = "ap_respawn_hold_workers"; run = respawn_hold_workers } ]
    ()

let versions () =
  List.init (meta.Table_meta.num_updates + 1) (fun step ->
      let final = step = meta.Table_meta.num_updates in
      let tag =
        if step = 0 then "2.2.23" else if final then "2.3.8" else Printf.sprintf "2.2.23+u%d" step
      in
      version_of_step ~step ~final ~prepared:true ~tag ())

let base ?heap_words () =
  version_of_step ?heap_words ~step:0 ~final:false ~prepared:true ~tag:"2.2.23" ()

let final ?heap_words () =
  version_of_step ?heap_words ~step:meta.Table_meta.num_updates ~final:true ~prepared:true
    ~tag:"2.3.8" ()

let unprepared () =
  version_of_step ~step:meta.Table_meta.num_updates ~final:true ~prepared:false ~tag:"2.3.8-raw" ()
