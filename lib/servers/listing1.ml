module S = Mcr_simos.Sysdefs
module Ty = Mcr_types.Ty
module P = Mcr_program.Progdef
module Api = Mcr_program.Api
module Addr = Mcr_vmem.Addr

let port = 8080
let config_path = "/etc/listing1.conf"

(* ------------------------------------------------------------------ *)
(* Types *)

let conf_s =
  Ty.Struct
    {
      sname = "conf_s";
      fields = [ ("workers", Ty.Int); ("sock", Ty.Int); ("banner", Ty.Void_ptr) ];
    }

let l_t_v1 =
  Ty.Struct { sname = "l_t"; fields = [ ("value", Ty.Int); ("next", Ty.Ptr (Ty.Named "l_t")) ] }

let l_t_v2 =
  Ty.Struct
    {
      sname = "l_t";
      fields = [ ("value", Ty.Int); ("next", Ty.Ptr (Ty.Named "l_t")); ("new", Ty.Int) ];
    }

let hidden_s_v1 =
  Ty.Struct { sname = "hidden_s"; fields = [ ("a", Ty.Int); ("b", Ty.Int) ] }

(* the pathological variant retypes a field of the structure that is only
   reachable through the hidden pointer in [b] *)
let hidden_s_changed =
  Ty.Struct { sname = "hidden_s"; fields = [ ("a", Ty.Ptr Ty.Int); ("b", Ty.Int) ] }

let env ~v2 ~change_hidden =
  let e = Ty.env_create () in
  Ty.env_add e "conf_s" conf_s;
  Ty.env_add e "l_t" (if v2 then l_t_v2 else l_t_v1);
  Ty.env_add e "hidden_s" (if change_hidden then hidden_s_changed else hidden_s_v1);
  e

(* ------------------------------------------------------------------ *)
(* Server body *)

let parse_banner contents =
  match String.index_opt contents '=' with
  | Some i -> String.sub contents (i + 1) (String.length contents - i - 1)
  | None -> "hello"

let main ?(init_name = "server_init") ~tag ~omit_listen ~port t =
  Api.fn t "main" @@ fun () ->
  (* --- startup --- *)
  Api.fn t init_name (fun () ->
      let conf = Api.malloc t ~site:"server_init:conf" "conf_s" in
      Api.store t (Api.global t "conf") conf;
      (* configuration from persistent storage *)
      let cfd = Api.sys_fd_exn t (S.Open { path = config_path; create = false }) in
      let contents =
        match Api.sys t (S.Read { fd = cfd; max = 256; nonblock = false }) with
        | S.Ok_data d -> d
        | _ -> ""
      in
      Api.sys_unit_exn t (S.Close { fd = cfd });
      let banner = parse_banner contents in
      let banner_buf = Api.malloc_opaque t ~site:"server_init:banner" 8 in
      Api.write_bytes t banner_buf banner;
      Api.store_field t conf "conf_s" "workers" 1;
      Api.store_field t conf "conf_s" "banner" banner_buf;
      (* a heap structure reachable only through the hidden pointer in b *)
      let hidden = Api.malloc t ~site:"server_init:hidden" "hidden_s" in
      Api.store_field t hidden "hidden_s" "a" 11;
      Api.store_field t hidden "hidden_s" "b" 22;
      Api.store t (Api.global t "b") hidden;
      (* the listening socket *)
      let sock = Api.sys_fd_exn t S.Socket in
      Api.sys_unit_exn t (S.Bind { fd = sock; port });
      if not omit_listen then Api.sys_unit_exn t (S.Listen { fd = sock; backlog = 64 });
      Api.store_field t conf "conf_s" "sock" sock);
  (* --- main loop --- *)
  let conf () = Api.load t (Api.global t "conf") in
  let sock = Api.load_field t (conf ()) "conf_s" "sock" in
  Api.loop t "main_loop" (fun () ->
      let event =
        Api.fn t "server_get_event" (fun () ->
            Api.blocking t ~qpoint:"server_get_event" (S.Accept { fd = sock; nonblock = false }))
      in
      match event with
      | S.Ok_fd conn ->
          Api.fn t "server_handle_event" (fun () ->
              (match Api.sys t (S.Read { fd = conn; max = 256; nonblock = false }) with
              | S.Ok_data _req ->
                  Api.app_work t 1;
                  let count = Api.load t (Api.global t "count") + 1 in
                  Api.store t (Api.global t "count") count;
                  (* prepend a list node (Figure 2 state) *)
                  let node = Api.malloc t ~site:"handle_event:node" "l_t" in
                  let list_head = Api.global t "list" in
                  Api.store_field t node "l_t" "value" count;
                  Api.store_field t node "l_t" "next"
                    (Api.load_field t list_head "l_t" "next");
                  Api.store_field t list_head "l_t" "next" node;
                  (* refresh the hidden pointer in the opaque buffer *)
                  let hidden = Api.load t (Api.global t "b") in
                  Api.store t (Api.global t "b") hidden;
                  Api.store t (Addr.add_words (Api.global t "b") 1) ((count * 2) + 1);
                  let banner =
                    Api.read_string t (Api.load_field t (conf ()) "conf_s" "banner")
                  in
                  let reply = Printf.sprintf "%s/%s:%d" banner tag count in
                  ignore (Api.sys t (S.Write { fd = conn; data = reply }))
              | _ -> ());
              ignore (Api.sys t (S.Close { fd = conn })));
          true
      | S.Err _ -> true
      | _ -> true)

(* ------------------------------------------------------------------ *)
(* Versions *)

let globals =
  [
    ("b", Ty.Char_array 16);
    ("list", Ty.Named "l_t");
    ("conf", Ty.Ptr (Ty.Named "conf_s"));
    ("count", Ty.Int);
  ]

let funcs = [ "main"; "server_init"; "server_get_event"; "server_handle_event" ]

let strings = [ "welcome"; "listing1" ]

let qpoints = [ ("server_get_event", "accept") ]

let v1 () =
  P.make_version ~prog:"listing1" ~version_tag:"1.0" ~layout_bias:0
    ~tyenv:(env ~v2:false ~change_hidden:false) ~globals ~funcs ~strings
    ~entries:[ ("main", main ~init_name:"server_init" ~tag:"v1" ~omit_listen:false ~port) ]
    ~qpoints ()

(* user transfer handler: the added field defaults to 42, not zero — the
   semantic transformation MCR cannot infer (layout: value, next, new) *)
let l_t_handler ~old_words ~new_words =
  new_words.(0) <- old_words.(0);
  new_words.(1) <- old_words.(1);
  new_words.(2) <- 42

let v2 ?(variant = `Normal) () =
  let omit_listen = variant = `Omit_listen in
  let change_hidden = variant = `Change_hidden in
  let bind_port = if variant = `Change_port then port + 1 else port in
  let init_name = if variant = `Rename_init then "server_init2" else "server_init" in
  let annotations =
    if variant = `With_handler then
      [ P.Transfer_handler { ty_name = "l_t"; transform = l_t_handler } ]
    else []
  in
  (* the bias must clear every v1 region so pinned (immutable) old pages
     never collide with v2's own mappings *)
  P.make_version ~prog:"listing1" ~version_tag:"2.0" ~layout_bias:512
    ~tyenv:(env ~v2:true ~change_hidden) ~globals ~funcs ~strings
    ~entries:[ ("main", main ~init_name ~tag:"v2" ~omit_listen ~port:bind_port) ]
    ~qpoints ~annotations ()
