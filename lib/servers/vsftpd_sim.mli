(** vsftpd-like simulated FTP server (the paper's vsftpd 1.1.0 .. 2.0.2).

    Architecture: a single master ("standalone") process accepts control
    connections and forks one session process per connection — the paper's
    process-per-connection model whose per-session quiescent points are
    {e volatile} (they do not exist right after startup and must be
    re-created after an update by a reinit handler, vsftpd's 82-LOC
    control-migration annotation).

    Session commands: ["USER <n>"], ["PASS <p>"], ["RETR <path>"] (returns
    file contents under [/srv/ftp]), ["STAT"] (returns the session's
    command count — state that must survive updates), ["QUIT"]. *)

val port : int
val ftp_root : string

val versions : unit -> Mcr_program.Progdef.version list
(** 6 versions (5 updates); the final update adds a [bytes_sent] field to
    the session structure. *)

val base : ?heap_words:int -> unit -> Mcr_program.Progdef.version
val final : ?heap_words:int -> unit -> Mcr_program.Progdef.version
val meta : Table_meta.t
