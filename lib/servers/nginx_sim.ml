module S = Mcr_simos.Sysdefs
module Ty = Mcr_types.Ty
module P = Mcr_program.Progdef
module Api = Mcr_program.Api
module Addr = Mcr_vmem.Addr

let port = 8081
let doc_root = "/www"
let config_path = "/etc/nginx.conf"
let max_conns = 128

let meta = Table_meta.nginx

(* ------------------------------------------------------------------ *)
(* Types. [step] indexes the update series; cumulative structural changes
   make consecutive versions differ the way upstream point releases do. *)

let connection_t =
  Ty.Struct
    {
      sname = "ngx_connection_t";
      fields =
        [
          ("fd", Ty.Int);
          ("state", Ty.Int);
          ("bytes_sent", Ty.Int);
          (* the pointer-encoding idiom: request pointer with flag bits in
             the low 2 bits; Encoded_ptr is the paper's 22-LOC annotation *)
          ("request", Ty.Encoded_ptr { target = Ty.Named "ngx_request_t"; mask = 3 });
        ];
    }

let request_t ~step =
  let extra =
    (* every 5th update extends the request structure *)
    List.init (step / 5) (fun i -> (Printf.sprintf "r%d" ((i + 1) * 5), Ty.Int))
  in
  Ty.Struct
    { sname = "ngx_request_t"; fields = [ ("uri", Ty.Void_ptr); ("resp_len", Ty.Int) ] @ extra }

let cache_entry_t ~final =
  let fields =
    [ ("key", Ty.Int); ("hits", Ty.Int); ("next", Ty.Ptr (Ty.Named "ngx_cache_entry_t")) ]
    @ (if final then [ ("ttl", Ty.Int) ] else [])
  in
  Ty.Struct { sname = "ngx_cache_entry_t"; fields }

let conf_t =
  Ty.Struct
    {
      sname = "ngx_conf_t";
      fields =
        [
          ("workers", Ty.Int);
          ("listen_fd", Ty.Int);
          ("conn_buf_words", Ty.Int);
          ("root", Ty.Void_ptr);
        ];
    }

let env ~step ~final =
  let e = Ty.env_create () in
  Ty.env_add e "ngx_conf_t" conf_t;
  Ty.env_add e "ngx_connection_t" connection_t;
  Ty.env_add e "ngx_request_t" (request_t ~step);
  Ty.env_add e "ngx_cache_entry_t" (cache_entry_t ~final);
  e

(* ------------------------------------------------------------------ *)
(* Worker: the single event loop *)

let handle_get t conn path =
  (* per-request header/ctx objects from the cycle pool: cheap bumps when
     uninstrumented, tag-maintaining when region instrumentation is on *)
  let pool = Api.find_pool t "ngx_cycle_pool" in
  for _ = 1 to 24 do
    ignore (Api.palloc t pool ~site:"ngx_http_header:hdr" "ngx_request_t")
  done;
  let full = if String.length path > 0 && path.[0] = '/' then doc_root ^ path else path in
  let body =
    match Api.sys t (S.Open { path = full; create = false }) with
    | S.Ok_fd fd ->
        let data =
          match Api.sys t (S.Read { fd = fd; max = 65536; nonblock = false }) with
          | S.Ok_data d -> d
          | _ -> ""
        in
        ignore (Api.sys t (S.Close { fd }));
        data
    | _ -> "404 not found"
  in
  (* response cache on the instrumented heap: precise, relocatable state *)
  let key = Hashtbl.hash path land 0xFFFFFF in
  let head_addr = Api.global t "ngx_cache_head" in
  let rec lookup addr =
    if addr = 0 then None
    else if Api.load_field t addr "ngx_cache_entry_t" "key" = key then Some addr
    else lookup (Api.load_field t addr "ngx_cache_entry_t" "next")
  in
  (match lookup (Api.load t head_addr) with
  | Some entry ->
      Api.store_field t entry "ngx_cache_entry_t" "hits"
        (Api.load_field t entry "ngx_cache_entry_t" "hits" + 1)
  | None ->
      let entry = Api.malloc t ~site:"ngx_cache_insert:entry" "ngx_cache_entry_t" in
      Api.store_field t entry "ngx_cache_entry_t" "key" key;
      Api.store_field t entry "ngx_cache_entry_t" "hits" 1;
      Api.store_field t entry "ngx_cache_entry_t" "next" (Api.load t head_addr);
      Api.store t head_addr entry);
  Api.app_work t 1;
  Api.store t (Api.global t "ngx_requests") (Api.load t (Api.global t "ngx_requests") + 1);
  Api.store t (Api.global t "ngx_bytes")
    (Api.load t (Api.global t "ngx_bytes") + String.length body);
  let n = Api.load t (Api.global t "ngx_requests") in
  Srvutil.reply t conn (Printf.sprintf "200 #%d %s" n body)

let conn_slot t fd =
  let fds = Api.global t "ngx_conn_fds" in
  let rec go i =
    if i >= max_conns then None
    else if Api.load t (Addr.add_words fds i) = fd then Some i
    else go (i + 1)
  in
  go 0

let accept_connection t pool listen_fd =
  match Api.sys t (S.Accept { fd = listen_fd; nonblock = true }) with
  | S.Ok_fd conn_fd ->
      (* connection and request objects live in the region pool:
         uninstrumented by default, tagged under nginxreg *)
      let conn = Api.palloc t pool ~site:"ngx_event_accept:conn" "ngx_connection_t" in
      let req = Api.palloc t pool ~site:"ngx_event_accept:req" "ngx_request_t" in
      Api.store_field t conn "ngx_connection_t" "fd" conn_fd;
      Api.store_field t conn "ngx_connection_t" "state" 0;
      Api.store_field t conn "ngx_connection_t" "request" (req lor 1);
      (* the request's uri field initially points at an interned literal:
         pool-resident pointers into static strings (Table 2's dominant
         likely-pointer targets) *)
      Api.store t req (Api.string_lit t "GET");
      let fds = Api.global t "ngx_conn_fds" in
      let ptrs = Api.global t "ngx_conn_ptrs" in
      let rec install i =
        if i < max_conns then
          if Api.load t (Addr.add_words fds i) = 0 then begin
            Api.store t (Addr.add_words fds i) conn_fd;
            Api.store t (Addr.add_words ptrs i) conn
          end
          else install (i + 1)
      in
      install 0;
      (* the encoded head pointer idiom at global scope too *)
      Api.store t (Api.global t "ngx_head_enc") (conn lor 2);
      (* per-connection read buffer on the instrumented heap: connection
         state that state transfer must move (Figure 3 growth); sized by
         the conn_buffer_words config directive *)
      let conf = Api.load t (Api.global t "ngx_conf") in
      let buf_words =
        let n = Api.load_field t conf "ngx_conf_t" "conn_buf_words" in
        if n <= 0 then 64 else n
      in
      let buf = Api.malloc_opaque t ~site:"ngx_event_accept:buf" buf_words in
      (match conn_slot t conn_fd with
      | Some slot -> Api.store t (Addr.add_words (Api.global t "ngx_conn_bufs") slot) buf
      | None -> Api.free t buf)
  | _ -> ()

let drop_connection t slot =
  let fds = Api.global t "ngx_conn_fds" in
  let ptrs = Api.global t "ngx_conn_ptrs" in
  let bufs = Api.global t "ngx_conn_bufs" in
  let fd = Api.load t (Addr.add_words fds slot) in
  ignore (Api.sys t (S.Close { fd }));
  Api.store t (Addr.add_words fds slot) 0;
  Api.store t (Addr.add_words ptrs slot) 0;
  let buf = Api.load t (Addr.add_words bufs slot) in
  if buf <> 0 then begin
    Api.free t buf;
    Api.store t (Addr.add_words bufs slot) 0
  end

let handle_readable t slab slot =
  let fds = Api.global t "ngx_conn_fds" in
  let fd = Api.load t (Addr.add_words fds slot) in
  match Api.sys t (S.Read { fd; max = 4096; nonblock = true }) with
  | S.Ok_data "" -> drop_connection t slot
  | S.Ok_data req -> begin
      (* churn the shared slab: a token per request, freeing the previous
         one — leaves free-list links in reusable memory *)
      let tok = Api.slab_alloc t slab in
      Api.store t tok (Api.load t (Api.global t "ngx_requests"));
      let prev = Api.load t (Api.global t "ngx_slab_prev") in
      if prev <> 0 then Api.slab_free t slab prev;
      Api.store t (Api.global t "ngx_slab_prev") tok;
      match Srvutil.parse_get req with
      | Some path ->
          handle_get t fd path;
          drop_connection t slot
      | None ->
          if Srvutil.command req = "HOLD" then begin
            let ptrs = Api.global t "ngx_conn_ptrs" in
            let conn = Api.load t (Addr.add_words ptrs slot) in
            if conn <> 0 then Api.store_field t conn "ngx_connection_t" "state" 1
          end
          else begin
            Srvutil.reply t fd "400";
            drop_connection t slot
          end
    end
  | _ -> ()

let worker_body t =
  Api.fn t "ngx_worker_process" @@ fun () ->
  let pool = Api.find_pool t "ngx_cycle_pool" in
  let slab = Api.find_slab t "ngx_shm" in
  let conf = Api.load t (Api.global t "ngx_conf") in
  let listen_fd = Api.load_field t conf "ngx_conf_t" "listen_fd" in
  Api.loop t "ngx_worker_cycle" (fun () ->
      let conn_fds = Srvutil.array_values t ~global_arr:"ngx_conn_fds" ~capacity:max_conns in
      let ready =
        Api.fn t "ngx_process_events" (fun () ->
            Api.blocking t ~qpoint:"ngx_process_events"
              (S.Poll { fds = listen_fd :: conn_fds; timeout_ns = None; nonblock = false }))
      in
      (match ready with
      | S.Ok_ready fds ->
          List.iter
            (fun fd ->
              if fd = listen_fd then accept_connection t pool listen_fd
              else
                match conn_slot t fd with
                | Some slot -> handle_readable t slab slot
                | None -> ())
            fds
      | _ -> ());
      true)

(* ------------------------------------------------------------------ *)
(* Master *)

let master_body ?(workers = 1) ~step t =
  Api.fn t "main" @@ fun () ->
  Api.fn t "ngx_init_cycle" (fun () ->
      let conf = Api.malloc t ~site:"ngx_init_cycle:conf" "ngx_conf_t" in
      Api.store t (Api.global t "ngx_conf") conf;
      let cfd = Api.sys_fd_exn t (S.Open { path = config_path; create = false }) in
      let raw =
        match Api.sys t (S.Read { fd = cfd; max = 512; nonblock = false }) with
        | S.Ok_data d -> d
        | _ -> ""
      in
      Api.sys_unit_exn t (S.Close { fd = cfd });
      let root_buf = Api.malloc_opaque t ~site:"ngx_init_cycle:root" 4 in
      Api.write_bytes t root_buf doc_root;
      Api.store_field t conf "ngx_conf_t" "workers" 1;
      Api.store_field t conf "ngx_conf_t" "conn_buf_words"
        (Srvutil.config_int raw ~key:"conn_buffer_words" ~default:64);
      (* startup-time configuration tables (mime types, host maps, parsed
         directives): the bulk of a real server's state, initialized once
         and re-created by the new version's own startup — what soft-dirty
         tracking excludes from transfer *)
      let cfg_table = Api.malloc_opaque t ~site:"ngx_init_cycle:cfg_table" 8192 in
      Api.store t (Api.global t "ngx_cfg_table") cfg_table;
      Api.store_field t conf "ngx_conf_t" "root" root_buf;
      (* exercise the per-step added functions so the series' diffs are
         "real": later versions touch their stats globals *)
      if step > 0 then begin
        match Mcr_types.Symtab.lookup_opt t.P.image.P.i_symtab (Printf.sprintf "ngx_stat_%d" ((step + 1) / 2)) with
        | Some e -> Api.store t e.Mcr_types.Symtab.addr step
        | None -> ()
      end;
      (* a compiled-regex context from an uninstrumented shared library
         (libpcre): a program pointer into library state (Table 2's
         "Targ lib" column) *)
      let regex_ctx = Api.lib_malloc t 16 in
      Api.store t (Api.global t "ngx_regex_ctx") regex_ctx;
      let sock = Api.sys_fd_exn t S.Socket in
      Api.sys_unit_exn t (S.Bind { fd = sock; port });
      Api.sys_unit_exn t (S.Listen { fd = sock; backlog = 256 });
      Api.store_field t conf "ngx_conf_t" "listen_fd" sock;
      ignore (Api.pool t ~chunk_words:512 "ngx_cycle_pool");
      ignore (Api.slab t "ngx_shm" ~slot_words:2 ~slots_per_chunk:32);
      let handlers = Api.global t "ngx_handlers" in
      List.iteri
        (fun i fname -> Api.store t (Addr.add_words handlers i) (Api.func_ptr t fname))
        [ "ngx_init_cycle"; "ngx_worker_process"; "ngx_process_events"; "ngx_event_accept" ]);
  (* short-lived helper thread (the daemonization class in Table 1) *)
  ignore (Api.sys t (S.Thread_create { entry = "ngx_init_helper" }));
  for _ = 1 to workers do
    ignore (Api.sys t (S.Fork { entry = "ngx_worker" }))
  done;
  Api.loop t "ngx_master_cycle" (fun () ->
      ignore
        (Api.blocking t ~qpoint:"ngx_master_cycle"
           (S.Sem_wait { name = "ngx.master.signal"; timeout_ns = None }));
      true)

let helper_body t =
  Api.fn t "ngx_init_helper" @@ fun () ->
  ignore (Api.sys t (S.Nanosleep { ns = 1_000 }))

(* ------------------------------------------------------------------ *)
(* The version series *)

let globals ~step =
  [
    ("ngx_conf", Ty.Ptr (Ty.Named "ngx_conf_t"));
    ("ngx_conn_fds", Ty.Array (Ty.Int, max_conns));
    ("ngx_conn_ptrs", Ty.Array (Ty.Ptr (Ty.Named "ngx_connection_t"), max_conns));
    ("ngx_conn_bufs", Ty.Array (Ty.Void_ptr, max_conns));
    ("ngx_cache_head", Ty.Ptr (Ty.Named "ngx_cache_entry_t"));
    ("ngx_requests", Ty.Int);
    ("ngx_bytes", Ty.Word);
    ("ngx_slab_prev", Ty.Word);
    ("ngx_head_enc", Ty.Encoded_ptr { target = Ty.Named "ngx_connection_t"; mask = 3 });
    ("ngx_handlers", Ty.Array (Ty.Func_ptr, 4));
    ("ngx_cfg_table", Ty.Void_ptr);
    ("ngx_regex_ctx", Ty.Void_ptr);
  ]
  (* every 2nd update adds a stats global *)
  @ List.init (step / 2) (fun i -> (Printf.sprintf "ngx_stat_%d" (i + 1), Ty.Int))

let funcs ~step =
  [
    "main";
    "ngx_init_cycle";
    "ngx_master_cycle";
    "ngx_worker_process";
    "ngx_process_events";
    "ngx_event_accept";
    "ngx_cache_insert";
  ]
  (* each update adds a couple of functions *)
  @ List.concat
      (List.init step (fun i ->
           [ Printf.sprintf "ngx_fix_%d" (i + 1); Printf.sprintf "ngx_helper_%d" (i + 1) ]))

let strings = [ "nginx"; "GET"; "HOLD"; "200"; "400"; "404 not found"; doc_root ]

let qpoints = [ ("ngx_master_cycle", "sem_wait"); ("ngx_process_events", "poll") ]

(* Manual state-transfer code (the paper's "ST LOC" for nginx, which uses
   slabs): tokens handed out by the old version's uninstrumented slab live
   in pinned memory the new slab does not own, so the cross-version
   free-list reference must be dropped after transfer. *)
let reset_slab_refs t = Api.store t (Api.global t "ngx_slab_prev") 0

let version_of_step ?workers ?heap_words ~step ~final ~tag () =
  P.make_version ~prog:"nginx" ~version_tag:tag ~layout_bias:(step * 1024) ?heap_words
    ~tyenv:(env ~step ~final) ~globals:(globals ~step) ~funcs:(funcs ~step) ~strings
    ~entries:
      [
        ("main", master_body ?workers ~step);
        ("ngx_worker", worker_body);
        ("ngx_init_helper", helper_body);
      ]
    ~qpoints
    ~annotations:[ P.Reinit_handler { name = "ngx_reset_slab_refs"; run = reset_slab_refs } ]
    ()

let versions () =
  List.init (meta.Table_meta.num_updates + 1) (fun step ->
      let final = step = meta.Table_meta.num_updates in
      let tag = if step = 0 then "0.8.54" else if final then "1.0.15" else Printf.sprintf "0.8.54+u%d" step in
      version_of_step ~step ~final ~tag ())

let base ?heap_words () = version_of_step ?heap_words ~step:0 ~final:false ~tag:"0.8.54" ()

(* a nondeterministic-process-model update (Section 7): the new version
   forks a different number of workers than the recorded startup *)
let final_with_workers n =
  version_of_step ~workers:n ~step:meta.Table_meta.num_updates ~final:true ~tag:"1.0.15" ()

let final ?heap_words () =
  version_of_step ?heap_words ~step:meta.Table_meta.num_updates ~final:true ~tag:"1.0.15" ()
