module S = Mcr_simos.Sysdefs
module Ty = Mcr_types.Ty
module P = Mcr_program.Progdef
module Api = Mcr_program.Api
module Addr = Mcr_vmem.Addr

let port = 2121
let ftp_root = "/srv/ftp"
let config_path = "/etc/vsftpd.conf"
let max_sessions = 128

let meta = Table_meta.vsftpd

(* ------------------------------------------------------------------ *)
(* Types *)

let conf_t =
  Ty.Struct
    {
      sname = "vsf_conf_t";
      fields = [ ("listen_fd", Ty.Int); ("root", Ty.Void_ptr); ("sess_buf_words", Ty.Int) ];
    }

let session_t ~final =
  let fields =
    [
      ("conn", Ty.Int);
      ("state", Ty.Int);
      ("cmds", Ty.Int);
      ("user", Ty.Void_ptr);
      ("buf", Ty.Void_ptr);
    ]
    @ if final then [ ("bytes_sent", Ty.Int) ] else []
  in
  Ty.Struct { sname = "vsf_session_t"; fields }

let env ~final =
  let e = Ty.env_create () in
  Ty.env_add e "vsf_conf_t" conf_t;
  Ty.env_add e "vsf_session_t" (session_t ~final);
  e

(* ------------------------------------------------------------------ *)
(* Session process (one per control connection) *)

let session_body ~final t =
  Api.fn t "vsf_session_main" @@ fun () ->
  let conn = Api.load t (Api.global t "vsf_cur_conn") in
  let sess = Api.malloc t ~site:"vsf_session_main:session" "vsf_session_t" in
  Api.store t (Api.global t "vsf_session") sess;
  Api.store_field t sess "vsf_session_t" "conn" conn;
  (* per-session transfer ballast: an opaque command/data buffer sized by
     the session_buffer_words directive (0 = none). Large sizes are
     page-segregated, so state transfer can remap them page-for-page. *)
  let conf = Api.load t (Api.global t "vsf_conf") in
  let buf_words = Api.load_field t conf "vsf_conf_t" "sess_buf_words" in
  if buf_words > 0 then
    Api.store_field t sess "vsf_session_t" "buf"
      (Api.malloc_opaque t ~site:"vsf_session_main:buf" buf_words);
  Srvutil.reply t conn "220 vsftpd ready";
  let bump () =
    Api.store_field t sess "vsf_session_t" "cmds"
      (Api.load_field t sess "vsf_session_t" "cmds" + 1)
  in
  Api.loop t "vsf_session_loop" (fun () ->
      match
        Api.blocking t ~qpoint:"vsf_session_read" (S.Read { fd = conn; max = 512; nonblock = false })
      with
      | S.Ok_data "" -> Api.exit t 0
      | S.Err S.EINTR -> true
      | S.Err _ -> Api.exit t 0
      | S.Ok_data cmdline -> begin
          bump ();
          Api.app_work t 1;
          (match (Srvutil.command cmdline, Srvutil.arg cmdline) with
          | "USER", Some u ->
              (* login initialises the session's command/data buffer: the
                 writes land after first quiesce, so its pages are dirty
                 and must travel with every state transfer (the remap
                 pass can share them frame-for-frame when congruent) *)
              if buf_words > 0 then begin
                let b = Api.load_field t sess "vsf_session_t" "buf" in
                for i = 0 to buf_words - 1 do
                  Api.store t (Addr.add_words b i) (0x76_73_66 lxor i)
                done
              end;
              let buf = Api.malloc_opaque t ~site:"vsf_user:name" 4 in
              Api.write_bytes t buf u;
              Api.store_field t sess "vsf_session_t" "user" buf;
              (* type-unsafe idiom: a copy of the buffer pointer kept as a
                 plain integer — a likely pointer to data whose (absent)
                 type no update ever changes, so no annotation is needed *)
              Api.store t (Api.global t "vsf_sess_shadow") buf;
              Api.store_field t sess "vsf_session_t" "state" 1;
              Srvutil.reply t conn "331 password please"
          | "PASS", _ ->
              if Api.load_field t sess "vsf_session_t" "state" >= 1 then begin
                Api.store_field t sess "vsf_session_t" "state" 2;
                Srvutil.reply t conn "230 logged in"
              end
              else Srvutil.reply t conn "503 login first"
          | "RETR", Some path ->
              if Api.load_field t sess "vsf_session_t" "state" < 2 then
                Srvutil.reply t conn "530 not logged in"
              else begin
                let full = ftp_root ^ "/" ^ path in
                match Api.sys t (S.Open { path = full; create = false }) with
                | S.Ok_fd fd ->
                    (* stream the file in 64 KB chunks: each chunk moves
                       through a transient heap buffer and a (potentially
                       unblockified) write — the real transfer loop shape *)
                    Srvutil.reply t conn "150 ";
                    let rec stream total =
                      match Api.sys t (S.Read { fd; max = 1 lsl 16; nonblock = false }) with
                      | S.Ok_data "" -> total
                      | S.Ok_data chunk ->
                          let buf = Api.malloc_opaque t ~site:"vsf_retr:buf" 16 in
                          (* the data write is wrapped (unblockified) but is
                             deliberately NOT a quiescent point: a thread
                             parked mid-transfer has no equivalent restart
                             state in the new version (Section 7's
                             mismatched-quiescent-state caveat), so
                             quiescence drains active transfers instead *)
                          ignore
                            (Api.blocking t ~qpoint:"vsf_data_write"
                               (S.Write { fd = conn; data = chunk }));
                          Api.free t buf;
                          stream (total + String.length chunk)
                      | _ -> total
                    in
                    let sent = stream 0 in
                    ignore (Api.sys t (S.Close { fd }));
                    if final then
                      Api.store_field t sess "vsf_session_t" "bytes_sent"
                        (Api.load_field t sess "vsf_session_t" "bytes_sent" + sent);
                    Srvutil.reply t conn "226 done"
                | _ -> Srvutil.reply t conn "550 no such file"
              end
          | "STAT", _ ->
              Srvutil.reply t conn
                (Printf.sprintf "211 cmds=%d state=%d"
                   (Api.load_field t sess "vsf_session_t" "cmds")
                   (Api.load_field t sess "vsf_session_t" "state"))
          | "QUIT", _ ->
              Srvutil.reply t conn "221 bye";
              ignore (Api.sys t (S.Close { fd = conn }));
              Api.exit t 0
          | _, _ -> Srvutil.reply t conn "500 unknown command");
          true
        end
      | _ -> true)

(* ------------------------------------------------------------------ *)
(* Master ("standalone") process *)

let fork_session t conn =
  Api.store t (Api.global t "vsf_cur_conn") conn;
  ignore (Srvutil.array_add t ~global_arr:"vsf_sessions" ~capacity:max_sessions conn);
  Api.store t (Api.global t "vsf_total_sessions")
    (Api.load t (Api.global t "vsf_total_sessions") + 1);
  ignore (Api.sys t (S.Fork { entry = "vsf_session" }));
  (* parent closes its copy of the connection *)
  ignore (Api.sys t (S.Close { fd = conn }))

let master_body t =
  Api.fn t "main" @@ fun () ->
  Api.fn t "vsf_init" (fun () ->
      let conf = Api.malloc t ~site:"vsf_init:conf" "vsf_conf_t" in
      Api.store t (Api.global t "vsf_conf") conf;
      let cfd = Api.sys_fd_exn t (S.Open { path = config_path; create = false }) in
      let raw =
        match Api.sys t (S.Read { fd = cfd; max = 512; nonblock = false }) with
        | S.Ok_data d -> d
        | _ -> ""
      in
      Api.sys_unit_exn t (S.Close { fd = cfd });
      Api.store_field t conf "vsf_conf_t" "sess_buf_words"
        (Srvutil.config_int raw ~key:"session_buffer_words" ~default:0);
      let root_buf = Api.malloc_opaque t ~site:"vsf_init:root" 4 in
      Api.write_bytes t root_buf ftp_root;
      Api.store_field t conf "vsf_conf_t" "root" root_buf;
      (* startup-time configuration tables (mime types, host maps, parsed
         directives): the bulk of a real server's state, initialized once
         and re-created by the new version's own startup — what soft-dirty
         tracking excludes from transfer *)
      let cfg_table = Api.malloc_opaque t ~site:"vsf_init:cfg_table" 1024 in
      Api.store t (Api.global t "vsf_cfg_table") cfg_table;
      let sock = Api.sys_fd_exn t S.Socket in
      Api.sys_unit_exn t (S.Bind { fd = sock; port });
      Api.sys_unit_exn t (S.Listen { fd = sock; backlog = 256 });
      Api.store_field t conf "vsf_conf_t" "listen_fd" sock);
  let conf = Api.load t (Api.global t "vsf_conf") in
  let listen_fd = Api.load_field t conf "vsf_conf_t" "listen_fd" in
  Api.fn t "vsf_standalone_main" @@ fun () ->
  Api.loop t "vsf_accept_loop" (fun () ->
      match
        Api.blocking t ~qpoint:"vsf_standalone_main"
          (S.Accept { fd = listen_fd; nonblock = false })
      with
      | S.Ok_fd conn ->
          fork_session t conn;
          true
      | _ -> true)

(* Control migration for the volatile per-session quiescent points: after an
   update, re-fork a session process for every control connection in the
   table, at the original fork site's call-stack identity (the paper's 82
   LOC for vsftpd). *)
let respawn_sessions t =
  let is_master = match Api.sys t S.Getppid with S.Ok_pid 0 -> true | _ -> false in
  if is_master then begin
    let held = Srvutil.array_values t ~global_arr:"vsf_sessions" ~capacity:max_sessions in
    List.iter
      (fun conn ->
        Api.store t (Api.global t "vsf_cur_conn") conn;
        Api.masquerade t ~frames:[ "vsf_standalone_main"; "main"; "main" ] (fun () ->
            ignore (Api.sys t (S.Fork { entry = "vsf_session" }))))
      held
  end

(* ------------------------------------------------------------------ *)
(* Versions *)

let globals ~step =
  [
    ("vsf_conf", Ty.Ptr (Ty.Named "vsf_conf_t"));
    ("vsf_sessions", Ty.Array (Ty.Int, max_sessions));
    ("vsf_cur_conn", Ty.Int);
    ("vsf_total_sessions", Ty.Int);
    ("vsf_session", Ty.Ptr (Ty.Named "vsf_session_t"));
    ("vsf_sess_shadow", Ty.Word);
    ("vsf_cfg_table", Ty.Void_ptr);
  ]
  @ List.init step (fun i -> (Printf.sprintf "vsf_stat_%d" (i + 1), Ty.Int))

let funcs ~step =
  [ "main"; "vsf_init"; "vsf_standalone_main"; "vsf_session_main"; "vsf_user" ]
  @ List.concat
      (List.init step (fun i ->
           [ Printf.sprintf "vsf_fix_%d" (i + 1); Printf.sprintf "vsf_sec_%d" (i + 1) ]))

let strings = [ "vsftpd"; "USER"; "PASS"; "RETR"; "STAT"; "QUIT"; ftp_root ]

let qpoints = [ ("vsf_standalone_main", "accept"); ("vsf_session_read", "read") ]

let version_of_step ?heap_words ~step ~final ~tag () =
  P.make_version ~prog:"vsftpd" ~version_tag:tag ~layout_bias:(step * 1024) ?heap_words
    ~tyenv:(env ~final) ~globals:(globals ~step) ~funcs:(funcs ~step) ~strings
    ~entries:[ ("main", master_body); ("vsf_session", session_body ~final) ]
    ~qpoints
    ~annotations:[ P.Reinit_handler { name = "vsf_respawn_sessions"; run = respawn_sessions } ]
    ()

let versions () =
  List.init (meta.Table_meta.num_updates + 1) (fun step ->
      let final = step = meta.Table_meta.num_updates in
      let tag =
        if step = 0 then "1.1.0" else if final then "2.0.2" else Printf.sprintf "1.1.0+u%d" step
      in
      version_of_step ~step ~final ~tag ())

let base ?heap_words () = version_of_step ?heap_words ~step:0 ~final:false ~tag:"1.1.0" ()

let final ?heap_words () =
  version_of_step ?heap_words ~step:meta.Table_meta.num_updates ~final:true ~tag:"2.0.2" ()
