(** OpenSSH-daemon-like simulated server (the paper's OpenSSH 3.5 .. 3.8).

    Architecture: a master that forks one session process per connection;
    sessions authenticate (forking a short-lived privilege-separation /
    exec helper — the paper's "exec()ing other helper programs" short-lived
    class) and then serve commands. Session quiescent points are volatile:
    a reinit-handler annotation re-creates session processes after an
    update (OpenSSH's 49-LOC analog).

    Commands: ["AUTH <user>"], ["RUN <cmd>"] (requires auth; returns an
    output banner with the per-session command counter), ["EXIT"]. *)

val port : int

val versions : unit -> Mcr_program.Progdef.version list
(** 6 versions (5 updates); the final update adds a [uid] field to the
    session structure. *)

val base : ?heap_words:int -> unit -> Mcr_program.Progdef.version
val final : ?heap_words:int -> unit -> Mcr_program.Progdef.version
val meta : Table_meta.t
