(** Apache httpd-like simulated server (the paper's httpd 2.2.23, worker
    MPM: "2 servers and 50 worker threads", scaled down for simulation).

    Architecture: a master process that forks [servers] child processes,
    each running [workers] accept-loop threads; per-request state lives in
    {e nested region pools} (a child pool per request inside the process
    pool) — uninstrumented, the paper's biggest source of likely pointers.
    A scoreboard (global array) and a virtual-host statistics list (on the
    instrumented heap) carry the cross-update state.

    Two behaviours from the paper's engineering-effort discussion are
    modeled:
    - the server "aborts prematurely after actively detecting its own
      running instance" (a pidfile check): versions built with
      [mcr_prepared:false] abort when the pidfile exists, which makes every
      live update roll back — the paper's 8-LOC fix is the [mcr_prepared]
      build;
    - ["HOLD"] requests are handed to dynamically spawned hold-handler
      threads with volatile quiescent points, re-created after an update by
      a reinit-handler annotation (the 163-LOC analog). *)

val port : int
val servers : int
val workers_per_server : int

val versions : unit -> Mcr_program.Progdef.version list
(** 6 versions (5 updates, matching the paper); the final update retypes
    the vhost statistics entry. *)

val base : ?heap_words:int -> unit -> Mcr_program.Progdef.version
val final : ?heap_words:int -> unit -> Mcr_program.Progdef.version
(** [?heap_words] sizes the instrumented heap — the downtime benchmark
    passes a large heap so per-connection buffer ballast (the
    [ConnBufferWords] config directive) fits at scale. *)

val unprepared : unit -> Mcr_program.Progdef.version
(** The final version built without the 8-LOC MCR preparation: its startup
    aborts when it detects the running instance's pidfile, so updating to
    it rolls back. *)

val meta : Table_meta.t
