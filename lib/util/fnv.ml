type t = int

(* The 64-bit FNV constants exceed OCaml's 63-bit int literals; truncate the
   basis through Int64. Overflowing multiplication is fine for hashing. *)
let offset_basis = Int64.to_int 0xcbf29ce484222325L land max_int
let prime = 0x100000001b3

let fold_char h c = (h lxor Char.code c) * prime

let fold_string h s =
  let h = ref h in
  String.iter (fun c -> h := fold_char !h c) s;
  !h

let mask h = h land max_int

let string s = mask (fold_string offset_basis s)

let strings names =
  let h =
    List.fold_left (fun h s -> fold_char (fold_string h s) '\x00') offset_basis names
  in
  mask h

let combine h1 h2 = mask (((h1 * prime) lxor h2) * prime)

let int n =
  let h = ref offset_basis in
  for shift = 0 to 7 do
    h := fold_char !h (Char.chr ((n lsr (shift * 8)) land 0xff))
  done;
  mask !h
