(** Deterministic pseudo-random numbers (splitmix64).

    All randomized behaviour in the simulator (workload arrival order,
    payload contents) flows through an explicit generator so experiments are
    reproducible run to run. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val copy : t -> t
(** [copy t] is an independent generator with the same state. *)

val next : t -> int
(** [next t] is a uniformly distributed non-negative int. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniformly chosen element. Requires [arr] non-empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
