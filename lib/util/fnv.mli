(** FNV-1a hashing, used for version-agnostic call-stack IDs.

    The paper computes a call stack ID "by simply hashing all the active
    function names on the call stack of the thread issuing the system call"
    (Section 5). We use 64-bit FNV-1a folded to OCaml's native int. *)

type t = int
(** A hash value. Non-negative. *)

val string : string -> t
(** [string s] is the FNV-1a hash of [s]. *)

val strings : string list -> t
(** [strings names] hashes a list of strings order-sensitively, with a
    separator that cannot occur in function names, so that
    [["ab"; "c"]] and [["a"; "bc"]] hash differently. *)

val combine : t -> t -> t
(** [combine h1 h2] mixes two hash values. *)

val int : int -> t
(** [int n] hashes an integer. *)
