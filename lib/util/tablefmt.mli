(** Plain-text table rendering for the benchmark harness.

    Reproduced tables are printed in the same row/column layout as the
    paper so paper-vs-measured comparison is line-by-line. *)

type align = Left | Right

type t

val create : header:string list -> t
(** [create ~header] starts a table with the given column names. *)

val set_align : t -> align list -> unit
(** Per-column alignment; default is [Left] for the first column and
    [Right] for the rest. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row. Short rows are padded with [""]. *)

val add_sep : t -> unit
(** Appends a horizontal separator row. *)

val render : t -> string
(** Renders the table with column-width autosizing. *)

val print : t -> unit
(** [print t] is [print_string (render t)]. *)
