(** Small statistics helpers for the benchmark harness.

    The paper repeats every experiment 11 times and reports the median; the
    harness does the same. *)

val median : float list -> float
(** [median xs] is the median of [xs]. Requires [xs] non-empty. *)

val mean : float list -> float
(** Arithmetic mean. Requires non-empty input. *)

val stddev : float list -> float
(** Population standard deviation. Requires non-empty input. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [\[0,100\]], linear interpolation between
    closest ranks — so [percentile 50.] agrees with {!median} on every
    input. Requires [xs] non-empty. *)

val min_max : float list -> float * float
(** Smallest and largest element. Requires non-empty input. *)

val geometric_mean : float list -> float
(** Geometric mean; used for normalized-overhead summaries. Requires all
    elements positive. *)

val p50 : float list -> float
val p90 : float list -> float

val p99 : float list -> float
(** Percentile shorthands for {!percentile}. Require non-empty input. *)

type summary = {
  n : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  min : float;
  max : float;
}

val summary : float list -> summary
(** One-shot distribution summary of a sample. Requires non-empty input. *)

(** {1 Fixed-bucket integer histograms}

    Shared by the observability metrics registry ({!Mcr_obs.Metrics}) and
    the quiescence profiler: deterministic (fixed bounds, no wall clock),
    mergeable, with nearest-rank percentile estimation that returns the
    upper bound of the bucket containing the rank. *)

type hist = {
  bounds : int array;  (** Strictly increasing bucket upper bounds. *)
  counts : int array;  (** Per-bucket counts; last cell counts overflow. *)
  mutable total : int;
  mutable sum : int;
}

val hist_create : bounds:int array -> hist

val default_ns_bounds : int array
(** 1 us .. 10 s — the range virtual-time stage durations fall in. *)

val hist_observe : hist -> int -> unit

val hist_copy : hist -> hist

val hist_merge : hist -> hist -> hist
(** Pointwise sum. @raise Invalid_argument when the bounds differ. *)

val hist_percentile : hist -> float -> int
(** [hist_percentile h p] is the upper bound of the bucket holding the
    nearest-rank [p]-th percentile (saturating at the last finite bound);
    0 when the histogram is empty. *)
