(** Small statistics helpers for the benchmark harness.

    The paper repeats every experiment 11 times and reports the median; the
    harness does the same. *)

val median : float list -> float
(** [median xs] is the median of [xs]. Requires [xs] non-empty. *)

val mean : float list -> float
(** Arithmetic mean. Requires non-empty input. *)

val stddev : float list -> float
(** Population standard deviation. Requires non-empty input. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [\[0,100\]], nearest-rank method. *)

val min_max : float list -> float * float
(** Smallest and largest element. Requires non-empty input. *)

val geometric_mean : float list -> float
(** Geometric mean; used for normalized-overhead summaries. Requires all
    elements positive. *)
