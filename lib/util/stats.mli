(** Small statistics helpers for the benchmark harness.

    The paper repeats every experiment 11 times and reports the median; the
    harness does the same. *)

val median : float list -> float
(** [median xs] is the median of [xs]. Requires [xs] non-empty. *)

val mean : float list -> float
(** Arithmetic mean. Requires non-empty input. *)

val stddev : float list -> float
(** Population standard deviation. Requires non-empty input. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [\[0,100\]], linear interpolation between
    closest ranks — so [percentile 50.] agrees with {!median} on every
    input. Requires [xs] non-empty. *)

val min_max : float list -> float * float
(** Smallest and largest element. Requires non-empty input. *)

val geometric_mean : float list -> float
(** Geometric mean; used for normalized-overhead summaries. Requires all
    elements positive. *)

val p50 : float list -> float
val p90 : float list -> float

val p99 : float list -> float
(** Percentile shorthands for {!percentile}. Require non-empty input. *)

type summary = {
  n : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  min : float;
  max : float;
}

val summary : float list -> summary
(** One-shot distribution summary of a sample. Requires non-empty input. *)

(** {1 Fixed-bucket integer histograms}

    Shared by the observability metrics registry ({!Mcr_obs.Metrics}) and
    the quiescence profiler: deterministic (fixed bounds, no wall clock),
    mergeable, with nearest-rank percentile estimation that returns the
    upper bound of the bucket containing the rank. *)

type hist = {
  bounds : int array;  (** Strictly increasing bucket upper bounds. *)
  counts : int array;  (** Per-bucket counts; last cell counts overflow. *)
  mutable total : int;
  mutable sum : int;
  mutable vmax : int;  (** Largest value observed (0 when empty). *)
}

val hist_create : bounds:int array -> hist

val default_ns_bounds : int array
(** 1 us .. 10 s — the range virtual-time stage durations fall in. *)

val log_bounds : ?lo:int -> ?hi:int -> ?sub:int -> unit -> int array
(** HDR-style log-bucketed bounds: geometric octaves from [lo] (default
    1 us) up past [hi] (default 10 s), each octave split into [sub]
    (default 8) linear sub-buckets, bounding per-bucket relative error by
    [1/sub] at every magnitude. Fine enough for a meaningful p99.9. *)

val log_ns_bounds : int array
(** [log_bounds ()] — the bounds client-latency histograms use. *)

val hist_observe : hist -> int -> unit

val hist_copy : hist -> hist

val hist_merge : hist -> hist -> hist
(** Pointwise sum. @raise Invalid_argument when the bounds differ. *)

val hist_percentile : hist -> float -> int
(** [hist_percentile h p] is the upper bound of the bucket holding the
    nearest-rank [p]-th percentile (saturating at the last finite bound);
    0 when the histogram is empty. *)

val hist_max : hist -> int
(** Largest value observed; 0 when empty. Exact, not a bucket bound. *)

type hist_summary = {
  count : int;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  p999_ns : int;
  max_ns : int;
}

val hist_summary : hist -> hist_summary
(** One-shot tail summary (p50/p90/p99/p99.9/max) of a histogram. *)
