type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_u64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t = Int64.to_int (next_u64 t) land max_int

let int t bound =
  assert (bound > 0);
  next t mod bound

let bool t = next t land 1 = 1

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
