let sorted xs = List.sort compare xs

let median xs =
  assert (xs <> []);
  let arr = Array.of_list (sorted xs) in
  let n = Array.length arr in
  if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.

let mean xs =
  assert (xs <> []);
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  let m = mean xs in
  let sq = List.map (fun x -> (x -. m) ** 2.) xs in
  sqrt (mean sq)

(* Linear interpolation between closest ranks (the numpy/R-7 definition):
   agrees with [median] at p = 50 and needs no special case at p = 0. *)
let percentile p xs =
  assert (xs <> []);
  assert (p >= 0. && p <= 100.);
  let arr = Array.of_list (sorted xs) in
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let lo = max 0 (min (n - 2) lo) in
    let frac = rank -. float_of_int lo in
    arr.(lo) +. (frac *. (arr.(lo + 1) -. arr.(lo)))
  end

let min_max xs =
  assert (xs <> []);
  let lo = List.fold_left min infinity xs in
  let hi = List.fold_left max neg_infinity xs in
  (lo, hi)

let geometric_mean xs =
  assert (xs <> []);
  assert (List.for_all (fun x -> x > 0.) xs);
  exp (mean (List.map log xs))

let p50 xs = percentile 50. xs
let p90 xs = percentile 90. xs
let p99 xs = percentile 99. xs

type summary = {
  n : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  min : float;
  max : float;
}

let summary xs =
  let lo, hi = min_max xs in
  {
    n = List.length xs;
    mean = mean xs;
    p50 = percentile 50. xs;
    p90 = percentile 90. xs;
    p99 = percentile 99. xs;
    min = lo;
    max = hi;
  }

(* ------------------------------------------------------------------ *)
(* Fixed-bucket integer histograms (virtual-time durations, sizes).
   Deterministic by construction: bucket bounds are fixed at creation and
   observations land by value, never by wall clock. *)

type hist = {
  bounds : int array;  (* strictly increasing upper bounds *)
  counts : int array;  (* length bounds + 1; last is overflow *)
  mutable total : int;
  mutable sum : int;
  mutable vmax : int;
}

let hist_create ~bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Stats.hist_create: empty bounds";
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Stats.hist_create: bounds must be strictly increasing"
  done;
  { bounds = Array.copy bounds; counts = Array.make (n + 1) 0; total = 0; sum = 0; vmax = 0 }

(* 1 us .. 10 s, the range of virtual-time stage durations *)
let default_ns_bounds =
  [| 1_000; 10_000; 100_000; 1_000_000; 5_000_000; 10_000_000; 50_000_000;
     100_000_000; 500_000_000; 1_000_000_000; 5_000_000_000; 10_000_000_000 |]

(* HDR-style log-bucketed bounds: geometric octaves from [lo] up past [hi],
   each split into [sub] linear sub-buckets, so relative error per bucket is
   bounded by 1/sub regardless of magnitude. With the defaults (1 us .. 10 s,
   8 sub-buckets) that is ~190 buckets — cheap, mergeable, and fine enough
   for a meaningful p99.9. *)
let log_bounds ?(lo = 1_000) ?(hi = 10_000_000_000) ?(sub = 8) () =
  if lo <= 0 || hi <= lo || sub <= 0 then invalid_arg "Stats.log_bounds";
  let out = ref [ lo ] in
  let base = ref lo in
  let last = ref lo in
  (try
     while !last < hi do
       let step = max 1 (!base / sub) in
       for k = 1 to sub do
         let b = !base + (k * step) in
         if b > !last then begin
           out := b :: !out;
           last := b
         end;
         if !last >= hi then raise Exit
       done;
       base := !base * 2
     done
   with Exit -> ());
  Array.of_list (List.rev !out)

let log_ns_bounds = log_bounds ()

let bucket_index h v =
  let n = Array.length h.bounds in
  let rec go lo hi =
    (* first bucket whose bound is >= v, else the overflow bucket *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if h.bounds.(mid) >= v then go lo mid else go (mid + 1) hi
  in
  go 0 n

let hist_observe h v =
  h.counts.(bucket_index h v) <- h.counts.(bucket_index h v) + 1;
  h.total <- h.total + 1;
  h.sum <- h.sum + v;
  if v > h.vmax then h.vmax <- v

let hist_copy h =
  {
    bounds = Array.copy h.bounds;
    counts = Array.copy h.counts;
    total = h.total;
    sum = h.sum;
    vmax = h.vmax;
  }

let hist_merge a b =
  if a.bounds <> b.bounds then invalid_arg "Stats.hist_merge: bucket bounds differ";
  let m = hist_copy a in
  Array.iteri (fun i c -> m.counts.(i) <- m.counts.(i) + c) b.counts;
  m.total <- a.total + b.total;
  m.sum <- a.sum + b.sum;
  m.vmax <- max a.vmax b.vmax;
  m

let hist_percentile h p =
  assert (p >= 0. && p <= 100.);
  if h.total = 0 then 0
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int h.total)) in
    let rank = max 1 rank in
    let n = Array.length h.bounds in
    let rec go i acc =
      if i > n then h.bounds.(n - 1)
      else
        let acc = acc + h.counts.(i) in
        if acc >= rank then if i < n then h.bounds.(i) else h.bounds.(n - 1)
        else go (i + 1) acc
    in
    go 0 0
  end

let hist_max h = h.vmax

type hist_summary = {
  count : int;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  p999_ns : int;
  max_ns : int;
}

let hist_summary h =
  {
    count = h.total;
    p50_ns = hist_percentile h 50.;
    p90_ns = hist_percentile h 90.;
    p99_ns = hist_percentile h 99.;
    p999_ns = hist_percentile h 99.9;
    max_ns = h.vmax;
  }
