let sorted xs = List.sort compare xs

let median xs =
  assert (xs <> []);
  let arr = Array.of_list (sorted xs) in
  let n = Array.length arr in
  if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.

let mean xs =
  assert (xs <> []);
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  let m = mean xs in
  let sq = List.map (fun x -> (x -. m) ** 2.) xs in
  sqrt (mean sq)

let percentile p xs =
  assert (xs <> []);
  assert (p >= 0. && p <= 100.);
  let arr = Array.of_list (sorted xs) in
  let n = Array.length arr in
  if p = 0. then arr.(0)
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    arr.(max 0 (min (n - 1) (rank - 1)))
  end

let min_max xs =
  assert (xs <> []);
  let lo = List.fold_left min infinity xs in
  let hi = List.fold_left max neg_infinity xs in
  (lo, hi)

let geometric_mean xs =
  assert (xs <> []);
  assert (List.for_all (fun x -> x > 0.) xs);
  exp (mean (List.map log xs))
