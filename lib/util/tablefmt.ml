type align = Left | Right

type row = Cells of string list | Sep

type t = {
  header : string list;
  mutable rows : row list; (* reversed *)
  mutable align : align list option;
}

let create ~header = { header; rows = []; align = None }

let set_align t a = t.align <- Some a

let add_row t cells = t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let pad_to n xs filler =
  let len = List.length xs in
  if len >= n then xs else xs @ List.init (n - len) (fun _ -> filler)

let render t =
  let ncols =
    List.fold_left
      (fun acc r -> match r with Cells c -> max acc (List.length c) | Sep -> acc)
      (List.length t.header)
      t.rows
  in
  let rows = List.rev t.rows in
  let all_cell_rows =
    pad_to ncols t.header ""
    :: List.filter_map (function Cells c -> Some (pad_to ncols c "") | Sep -> None) rows
  in
  let widths = Array.make ncols 0 in
  let record_widths cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter record_widths all_cell_rows;
  let aligns =
    match t.align with
    | Some a -> Array.of_list (pad_to ncols a Right)
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let buf = Buffer.create 1024 in
  let put_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        let pad = widths.(i) - String.length c in
        match aligns.(i) with
        | Left ->
            Buffer.add_string buf c;
            Buffer.add_string buf (String.make pad ' ')
        | Right ->
            Buffer.add_string buf (String.make pad ' ');
            Buffer.add_string buf c)
      cells;
    Buffer.add_char buf '\n'
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  let sep () = Buffer.add_string buf (String.make total_width '-' ^ "\n") in
  put_cells (pad_to ncols t.header "");
  sep ();
  List.iter (function Cells c -> put_cells (pad_to ncols c "") | Sep -> sep ()) rows;
  Buffer.contents buf

let print t = print_string (render t)
