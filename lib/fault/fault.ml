module S = Mcr_simos.Sysdefs
module Trace = Mcr_obs.Trace
module Rng = Mcr_util.Rng

type point =
  | Quiesce_refusal
  | Replay_conflict
  | Startup_crash
  | Startup_hang
  | Reinit_hang
  | Transfer_conflict
  | Likely_misclassification
  | Syscall_failure of { call : string; err : S.err; after : int }

type t = {
  mutable armed : point list;
  mutable fired_rev : string list;
  mutable syscall_seen : int;
  mutable trace : Trace.t option;
}

let point_name = function
  | Quiesce_refusal -> "quiesce_refusal"
  | Replay_conflict -> "replay_conflict"
  | Startup_crash -> "startup_crash"
  | Startup_hang -> "startup_hang"
  | Reinit_hang -> "reinit_hang"
  | Transfer_conflict -> "transfer_conflict"
  | Likely_misclassification -> "likely_misclassification"
  | Syscall_failure _ -> "syscall_failure"

let pp_point ppf = function
  | Syscall_failure { call; err; after } ->
      Format.fprintf ppf "syscall_failure(%s->%a, after=%d)" call S.pp_err err after
  | p -> Format.pp_print_string ppf (point_name p)

(* Kind equality ignores the payload: [consume t (Syscall_failure ...)]
   disarms whatever syscall failure is armed, not a structurally-equal one. *)
let same_kind a b = String.equal (point_name a) (point_name b)

let script ?trace points =
  { armed = points; fired_rev = []; syscall_seen = 0; trace }

let of_seed ?trace seed =
  let rng = Rng.create seed in
  let point =
    match Rng.int rng 8 with
    | 0 -> Quiesce_refusal
    | 1 -> Replay_conflict
    | 2 -> Startup_crash
    | 3 -> Startup_hang
    | 4 -> Reinit_hang
    | 5 -> Transfer_conflict
    | 6 -> Likely_misclassification
    | _ ->
        let call = Rng.pick rng [| "read"; "write"; "open_at"; "accept" |] in
        let err = Rng.pick rng [| S.ENOSPC; S.ECONNRESET |] in
        let after = Rng.int rng 3 in
        Syscall_failure { call; err; after }
  in
  script ?trace [ point ]

let set_trace t tr = t.trace <- tr
let armed t = t.armed
let fired t = List.rev t.fired_rev
let fires t kind = List.exists (fun p -> same_kind p kind) t.armed

let record t p =
  t.fired_rev <- point_name p :: t.fired_rev;
  Trace.instant t.trace ~cat:"fault"
    ~args:[ ("point", Format.asprintf "%a" pp_point p) ]
    "fault.inject"

(* Remove the first armed point satisfying [pred], preserving order. *)
let take t pred =
  let rec go acc = function
    | [] -> None
    | p :: rest when pred p ->
        t.armed <- List.rev_append acc rest;
        Some p
    | p :: rest -> go (p :: acc) rest
  in
  go [] t.armed

let consume t kind =
  match take t (fun p -> same_kind p kind) with
  | Some p ->
      record t p;
      true
  | None -> false

let syscall_result t ~call =
  let name = S.call_name call in
  let matches = function
    | Syscall_failure { call = c; _ } -> String.equal c name
    | _ -> false
  in
  if not (List.exists matches t.armed) then None
  else
    match List.find matches t.armed with
    | Syscall_failure { err; after; _ } as p ->
        if t.syscall_seen < after then (
          t.syscall_seen <- t.syscall_seen + 1;
          None)
        else begin
          (match take t matches with Some _ -> () | None -> assert false);
          record t p;
          Some (S.Err err)
        end
    | _ -> None
