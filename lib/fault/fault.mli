(** Deterministic, seedable fault injection for the update pipeline.

    MCR's guarantee is that a conflict at {e any} stage rolls the update
    back atomically — "clients never observe a failed update" (Section 3).
    This module is how we systematically produce those conflicts: a
    {e fault plan} arms injection points at each stage of the pipeline
    (quiescence, replay, state transfer, reinitialization, and the syscall
    layer underneath all of them), and the stage owners consult the plan
    at their injection sites. Plans are plain data built either from an
    explicit script or from a {!Mcr_util.Rng} seed, so every faulted run
    is reproducible from one integer — the property suite in
    [test/test_fault.ml] and the [fault-matrix] bench target both depend
    on that.

    A plan is consumed destructively: each armed point fires at most once
    ({!consume} / {!syscall_result} remove it), and {!fired} reports what
    actually triggered, so a test can distinguish "the update failed
    because of my fault" from "the fault never got the chance to fire". *)

type point =
  | Quiesce_refusal
      (** One old-version thread refuses the quiescence barrier for as
          long as the point stays armed ({!Mcr_quiesce.Barrier.set_refusal}).
          Without a quiescence deadline this reproduces the
          update-hangs-forever bug; with one it must yield the rollback
          reason ["quiescence deadline exceeded"]. *)
  | Replay_conflict
      (** The replay engine reports a synthetic conflict on the next
          replayed call ({!Mcr_replay.Replayer}, conflict kind
          ["injected"]). *)
  | Startup_crash
      (** The new version is killed mid-startup (manager-side), exercising
          the ["new version crashed during startup"] rollback path. *)
  | Startup_hang
      (** New-version threads refuse their startup quiescence barrier, so
          the new version never reports quiescent startup. *)
  | Reinit_hang
      (** A synthetic reinitialization handler spins forever without
          blocking, exercising ["reinit handlers did not quiesce"]. *)
  | Transfer_conflict
      (** {!Mcr_trace.Transfer.run} reports a synthetic conflict before
          transferring any state. *)
  | Likely_misclassification
      (** {!Mcr_trace.Objgraph.analyze} treats one relocatable heap object
          as the target of a spurious likely pointer, pinning it
          non-updatable; the transfer then conflicts on it — the paper's
          conservative-tracing failure mode, forced. *)
  | Syscall_failure of { call : string; err : Mcr_simos.Sysdefs.err; after : int }
      (** The [after]+1-th executed syscall whose {!Mcr_simos.Sysdefs.call_name}
          equals [call] (counted across the plan's lifetime, new-version
          processes only) fails with [err] instead of executing —
          the ENOSPC / ECONNRESET analogs, delivered through
          {!Mcr_simos.Kernel.set_fault_hook}. *)

type t
(** A mutable fault plan: a multiset of armed points plus a log of what
    fired. Not thread-safe — the simulation is cooperative. *)

val script : ?trace:Mcr_obs.Trace.t -> point list -> t
(** An explicit plan arming exactly [points]. *)

val of_seed : ?trace:Mcr_obs.Trace.t -> int -> t
(** A single-point plan chosen deterministically from [seed] via
    {!Mcr_util.Rng} — the property suite's generator. Equal seeds give
    equal plans. *)

val set_trace : t -> Mcr_obs.Trace.t option -> unit
(** Route [fault.inject] instants to the given sink (category ["fault"]).
    The manager points the plan at its own trace so injected faults are
    visible in the same timeline as the rollback they cause. *)

val armed : t -> point list
(** Points still armed, in arming order. *)

val fired : t -> string list
(** {!point_name}s of points that have fired, in firing order. *)

val fires : t -> point -> bool
(** Whether a point of the same kind as the argument (payload ignored) is
    still armed. Non-consuming — refusal closures poll this every quiesce
    tick. *)

val consume : t -> point -> bool
(** Fire and disarm the first armed point of the same kind as the argument
    (payload ignored): records it in {!fired}, emits the trace instant,
    and returns [true]; [false] if no such point is armed. *)

val syscall_result : t -> call:Mcr_simos.Sysdefs.call -> Mcr_simos.Sysdefs.result option
(** Kernel fault-hook body: if a [Syscall_failure] matching [call]'s name
    is armed, count the match; once [after] matches have been skipped,
    fire it and return [Some (Err err)]. [None] otherwise. *)

val point_name : point -> string
(** Stable kind mnemonic ("quiesce_refusal", "syscall_failure", ...). *)

val pp_point : Format.formatter -> point -> unit
