(** Persistent checkpoint images.

    Everything the live-update machinery checkpoints today dies with its
    kernel: {!Mcr_core.Manager.update} transfers state between two
    in-memory versions of one process tree. This module gives the same
    state a {e durable} form — a versioned, hash-integrity-checked on-disk
    image of a quiescent program (the moral equivalent of DragonFly BSD's
    [sys_checkpoint] ELF core: VM segments, fd/vnode tables, thread
    positions, signal state) — and the inverse operation that materializes
    the image into a fresh kernel and resumes it serving.

    {b Wire format.} An image is a flat section table:

    {v
    magic "MCRIMAGE" | u64 format_version | u64 section_count
    section := tag[4] | name | payload | u64 fnv64(payload)
    trailer := u64 fnv64(all preceding bytes)
    v}

    where strings are [u64 length | bytes] and all integers are 64-bit
    little-endian. Sections are identified by a 4-byte ASCII tag ([META],
    [PROC], [POLI], [ATMP], [FLIT]); decoders {e skip} sections whose tag
    they do not know, so later format revisions can add sections without
    bumping {!format_version}. Every decode failure is a typed {!error}
    naming the failing section — there are no ad-hoc exceptions on this
    surface.

    {b Restore semantics.} Simulated threads are OCaml effect
    continuations and do not serialize. A restore therefore re-launches
    the {e same program version} in the target kernel (deterministic
    startup re-creates listeners, threads and the address-space skeleton),
    then installs the image over the settled processes: region sets are
    reconciled, every word of every saved region is written back
    untracked, and the exact dirty-tracking state (write sequence, page
    stamps, named epoch marks, inherited taint) plus allocator state
    (in-band heap headers travel with the pages; OCaml-side caches are
    rebuilt by walking them) are re-installed. The result fingerprints
    byte-identically to the saved instance, resumes serving, and
    subsequent dirty-only / pre-copy live updates behave exactly as they
    would have on the original. In-flight connections of the saved
    instance are dropped — the same contract as process-level
    checkpoint-restart on a real socket. *)

module P = Mcr_program.Progdef

val format_version : int
(** Current on-disk format revision (1). *)

val magic : string
(** The 8-byte magic, ["MCRIMAGE"]. *)

(** {1 Errors} *)

type error =
  | Bad_magic  (** The file does not start with {!magic}. *)
  | Version_skew of { found : int; expected : int }
      (** The file's format version is not the one this code speaks. *)
  | Truncated of { section : string }
      (** The byte stream ended inside the named section (["header"] /
          ["trailer"] when the fixed framing itself is cut short). *)
  | Hash_mismatch of { section : string }
      (** The named section's content hash — or, for ["image"], the
          whole-image trailer hash — does not match its bytes. *)
  | Missing_section of string
      (** A required section (e.g. ["meta"]) is absent. *)
  | Malformed of { section : string; reason : string }
      (** The section's bytes decoded but violate the schema. *)
  | Program_mismatch of { image : string; target : string }
      (** Restore target runs a different program than the image holds. *)
  | Version_mismatch of { image : string; target : string }
      (** Restore target runs a different version tag than the image. *)
  | Fingerprint_mismatch of { image : int; restored : int }
      (** Post-install verification failed: the restored address space
          does not fingerprint to the image's recorded value. *)
  | Io of string  (** Host filesystem failure while reading/writing. *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

(** {1 The image} *)

type t

val prog : t -> string
(** Program name the image holds (e.g. ["nginx"]). *)

val version_tag : t -> string
(** Version tag of the held program (restore re-launches exactly it). *)

val clock_ns : t -> int
(** The saved kernel's virtual clock at capture time. *)

val fingerprint : t -> int
(** The root process's address-space fingerprint recorded at capture —
    {!aspace_fingerprint} of the saved root. Install verifies the restored
    space reproduces it bit-for-bit. *)

val proc_count : t -> int
val region_count : t -> int

val total_words : t -> int
(** Total words of page content across every saved region and process. *)

val policy_text : t -> string option
(** The saving manager's policy, rendered by [Policy.to_kv] — opaque at
    this layer, parsed back by the core when replaying. *)

val target_tag : t -> string option
(** When the image was snapped at an update's quiescent point: the version
    the update was heading to. *)

val flight_json : t -> string option
(** When the image belongs to a completed update attempt: that attempt's
    flight record, JSON-encoded — the evidence [mcr-postmortem --replay]
    checks its offline re-run against. *)

val layout : t -> (string * string * int) list
(** [(tag, name, payload_bytes)] for every section the image encodes to,
    in file order — the table doc/IMAGE.md documents. *)

(** {1 Capture and persistence} *)

val aspace_fingerprint : prog:string -> Mcr_vmem.Aspace.t -> int
(** FNV-1a over the program name and then every region's name, base and
    full word contents in address order. The canonical byte-identity
    witness shared with [Fleet.image_fingerprint]. *)

val capture :
  Mcr_simos.Kernel.t ->
  members:P.image list ->
  ?policy_text:string ->
  ?target_tag:string ->
  ?flight_json:string ->
  unit ->
  t
(** Snapshot the program's full state. [members] is the live process set,
    root first (a {!Mcr_core.Manager} passes its current images). The
    caller is responsible for the instant being a sensible one — the
    manager captures at quiescence; the cooperative scheduler makes any
    capture instant-atomic. *)

val with_flight_json : t -> string -> t
(** The image with its flight-record section replaced — the manager
    attaches the attempt's record once the attempt finishes. *)

val encode : t -> string
val decode : string -> (t, error) result

val write : t -> path:string -> (unit, error) result
(** Encode to the {e host} filesystem — images must survive kernel
    teardown, so they live outside any simulated fs. *)

val read : path:string -> (t, error) result

val save :
  Mcr_simos.Kernel.t ->
  path:string ->
  members:P.image list ->
  ?policy_text:string ->
  ?target_tag:string ->
  ?flight_json:string ->
  unit ->
  (t, error) result
(** {!capture} followed by {!write}. *)

(** {1 Restore} *)

type install_report = {
  paired_procs : int;  (** Saved processes installed over live ones. *)
  skipped_saved_procs : int;
      (** Saved processes with no live counterpart (e.g. per-connection
          session children of a server saved under load) — their state is
          dropped, like the in-flight connections they served. *)
  unmatched_live_procs : int;
      (** Live processes the image knows nothing about; left untouched. *)
}

val install : t -> members:P.image list -> (install_report, error) result
(** Install the image over an already-running, settled instance of the
    same program and version: reconcile each paired process's region set,
    write back all page contents, re-stamp dirty-tracking state and
    rebuild allocator views. Processes are paired root-to-root and then by
    creation call stack in creation order. Fails with
    {!Program_mismatch} / {!Version_mismatch} before touching anything,
    and with {!Fingerprint_mismatch} if post-install verification fails. *)

val restore :
  t -> launch:(unit -> P.image list) -> (P.image list * install_report, error) result
(** Materialize into a fresh kernel: [launch ()] must start the image's
    program+version there and return its settled members (root first) —
    e.g. [Testbed.launch] wrapped by the caller; then {!install} runs over
    them. Returns the live members now carrying the restored state. *)
