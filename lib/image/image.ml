module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module Aspace = Mcr_vmem.Aspace
module Addr = Mcr_vmem.Addr
module Region = Mcr_vmem.Region
module Heap = Mcr_alloc.Heap
module Pool = Mcr_alloc.Pool
module Slab = Mcr_alloc.Slab
module Fnv = Mcr_util.Fnv
module P = Mcr_program.Progdef

let format_version = 1
let magic = "MCRIMAGE"

type error =
  | Bad_magic
  | Version_skew of { found : int; expected : int }
  | Truncated of { section : string }
  | Hash_mismatch of { section : string }
  | Missing_section of string
  | Malformed of { section : string; reason : string }
  | Program_mismatch of { image : string; target : string }
  | Version_mismatch of { image : string; target : string }
  | Fingerprint_mismatch of { image : int; restored : int }
  | Io of string

let error_to_string = function
  | Bad_magic -> "bad magic: not an MCR checkpoint image"
  | Version_skew { found; expected } ->
      Printf.sprintf "format version skew: image is v%d, this build speaks v%d" found expected
  | Truncated { section } -> Printf.sprintf "truncated image: section %s is cut short" section
  | Hash_mismatch { section } ->
      Printf.sprintf "integrity failure: section %s does not match its content hash" section
  | Missing_section s -> Printf.sprintf "required section %s is missing" s
  | Malformed { section; reason } -> Printf.sprintf "malformed section %s: %s" section reason
  | Program_mismatch { image; target } ->
      Printf.sprintf "image holds program %s but the restore target runs %s" image target
  | Version_mismatch { image; target } ->
      Printf.sprintf "image holds version %s but the restore target runs %s" image target
  | Fingerprint_mismatch { image; restored } ->
      Printf.sprintf "restored fingerprint %#x does not reproduce the image's %#x" restored image
  | Io msg -> Printf.sprintf "i/o failure: %s" msg

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

(* ------------------------------------------------------------------ *)
(* In-memory representation *)

type region_image = {
  r_name : string;
  r_kind : string;
  r_base : Addr.t;
  r_size : int;  (* bytes *)
  r_words : int array;
}

type page_state_image = { g_page : Addr.t; g_seq : int; g_touched : bool; g_inherited : bool }

type heap_image = {
  h_base : Addr.t;
  h_size : int;
  h_instrumented : bool;
  h_allocs : int;
  h_frees : int;
  h_tag_words : int;
}

type thread_image = {
  t_tid : int;
  t_name : string;
  t_callstack : string list;
  t_blocked : string option;
}

type proc_image = {
  pi_pid : int;
  pi_name : string;
  pi_creation_callstack : int;
  pi_startup_complete : bool;
  pi_layout_bias : int;
  pi_write_seq : int;
  pi_fds : int list;
  pi_regions : region_image list;
  pi_pages : page_state_image list;
  pi_epochs : (string * int) list;
  pi_threads : thread_image list;
  pi_heap : heap_image option;
  pi_lib_heap : heap_image option;
  pi_pools : Pool.state list;
  pi_slabs : (string * Slab.state) list;
}

type t = {
  im_prog : string;
  im_version_tag : string;
  im_clock_ns : int;
  im_fingerprint : int;
  im_policy_text : string option;
  im_target_tag : string option;
  im_flight_json : string option;
  im_procs : proc_image list;
}

let prog t = t.im_prog
let version_tag t = t.im_version_tag
let clock_ns t = t.im_clock_ns
let fingerprint t = t.im_fingerprint
let policy_text t = t.im_policy_text
let target_tag t = t.im_target_tag
let flight_json t = t.im_flight_json
let proc_count t = List.length t.im_procs
let region_count t = List.fold_left (fun a p -> a + List.length p.pi_regions) 0 t.im_procs

let total_words t =
  List.fold_left
    (fun a p -> List.fold_left (fun a r -> a + Array.length r.r_words) a p.pi_regions)
    0 t.im_procs

let with_flight_json t json = { t with im_flight_json = Some json }

(* ------------------------------------------------------------------ *)
(* Fingerprint — the byte-identity witness shared with Fleet *)

let aspace_fingerprint ~prog asp =
  List.fold_left
    (fun acc (r : Region.t) ->
      let acc = Fnv.combine acc (Fnv.string r.Region.name) in
      let acc = Fnv.combine acc (Fnv.int r.Region.base) in
      Aspace.fold_words asp r.Region.base ~words:(r.Region.size / Addr.word_size) ~init:acc
        ~f:(fun acc w -> Fnv.combine acc (Fnv.int w)))
    (Fnv.string prog) (Aspace.regions asp)

(* ------------------------------------------------------------------ *)
(* Binary writer / reader *)

let w_u64 b n =
  for i = 0 to 7 do
    Buffer.add_char b (Char.chr ((n lsr (8 * i)) land 0xff))
  done

let w_bool b v = w_u64 b (if v then 1 else 0)

let w_str b s =
  w_u64 b (String.length s);
  Buffer.add_string b s

let w_opt_str b = function
  | None -> w_u64 b 0
  | Some s ->
      w_u64 b 1;
      w_str b s

let w_list b f xs =
  w_u64 b (List.length xs);
  List.iter (f b) xs

exception Short

type reader = { data : string; mutable pos : int }

let r_u64 r =
  if r.pos + 8 > String.length r.data then raise Short;
  let v = ref 0 in
  for i = 0 to 7 do
    v := !v lor (Char.code r.data.[r.pos + i] lsl (8 * i))
  done;
  r.pos <- r.pos + 8;
  !v

let r_bool r = r_u64 r <> 0

let r_str r =
  let n = r_u64 r in
  if n < 0 || r.pos + n > String.length r.data then raise Short;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_opt_str r = if r_u64 r = 0 then None else Some (r_str r)

let r_list r f =
  let n = r_u64 r in
  if n < 0 then raise Short;
  List.init n (fun _ -> f r)

(* ------------------------------------------------------------------ *)
(* Section payload codecs *)

let w_region b r =
  w_str b r.r_name;
  w_str b r.r_kind;
  w_u64 b r.r_base;
  w_u64 b r.r_size;
  w_u64 b (Array.length r.r_words);
  Array.iter (w_u64 b) r.r_words

let r_region r =
  let r_name = r_str r in
  let r_kind = r_str r in
  let r_base = r_u64 r in
  let r_size = r_u64 r in
  let n = r_u64 r in
  if n < 0 || r.pos + (8 * n) > String.length r.data then raise Short;
  let r_words = Array.init n (fun _ -> r_u64 r) in
  { r_name; r_kind; r_base; r_size; r_words }

let w_page b g =
  w_u64 b g.g_page;
  w_u64 b g.g_seq;
  w_bool b g.g_touched;
  w_bool b g.g_inherited

let r_page r =
  let g_page = r_u64 r in
  let g_seq = r_u64 r in
  let g_touched = r_bool r in
  let g_inherited = r_bool r in
  { g_page; g_seq; g_touched; g_inherited }

let w_heap b h =
  w_u64 b h.h_base;
  w_u64 b h.h_size;
  w_bool b h.h_instrumented;
  w_u64 b h.h_allocs;
  w_u64 b h.h_frees;
  w_u64 b h.h_tag_words

let r_heap r =
  let h_base = r_u64 r in
  let h_size = r_u64 r in
  let h_instrumented = r_bool r in
  let h_allocs = r_u64 r in
  let h_frees = r_u64 r in
  let h_tag_words = r_u64 r in
  { h_base; h_size; h_instrumented; h_allocs; h_frees; h_tag_words }

let w_heap_opt b = function
  | None -> w_u64 b 0
  | Some h ->
      w_u64 b 1;
      w_heap b h

let r_heap_opt r = if r_u64 r = 0 then None else Some (r_heap r)

let rec w_pool b (st : Pool.state) =
  w_str b st.Pool.st_name;
  w_bool b st.st_instrument;
  w_u64 b st.st_chunk_words;
  w_u64 b st.st_pallocs;
  w_u64 b st.st_tag_words;
  w_u64 b st.st_chunks_grabbed;
  w_list b
    (fun b (c : Pool.chunk_state) ->
      w_u64 b c.Pool.cs_base;
      w_u64 b c.cs_words;
      w_u64 b c.cs_bump;
      w_bool b c.cs_micro)
    st.st_chunks;
  w_list b w_pool st.st_kids

let rec r_pool r : Pool.state =
  let st_name = r_str r in
  let st_instrument = r_bool r in
  let st_chunk_words = r_u64 r in
  let st_pallocs = r_u64 r in
  let st_tag_words = r_u64 r in
  let st_chunks_grabbed = r_u64 r in
  let st_chunks =
    r_list r (fun r ->
        let cs_base = r_u64 r in
        let cs_words = r_u64 r in
        let cs_bump = r_u64 r in
        let cs_micro = r_bool r in
        { Pool.cs_base; cs_words; cs_bump; cs_micro })
  in
  let st_kids = r_list r r_pool in
  { Pool.st_name; st_instrument; st_chunk_words; st_pallocs; st_tag_words; st_chunks_grabbed;
    st_chunks; st_kids }

let w_slab b (name, (st : Slab.state)) =
  w_str b name;
  w_u64 b st.Slab.ss_slot_words;
  w_list b w_u64 st.ss_chunks;
  w_u64 b st.ss_free_head;
  w_u64 b st.ss_live

let r_slab r =
  let name = r_str r in
  let ss_slot_words = r_u64 r in
  let ss_chunks = r_list r r_u64 in
  let ss_free_head = r_u64 r in
  let ss_live = r_u64 r in
  (name, { Slab.ss_slot_words; ss_chunks; ss_free_head; ss_live })

let w_thread b th =
  w_u64 b th.t_tid;
  w_str b th.t_name;
  w_list b w_str th.t_callstack;
  w_opt_str b th.t_blocked

let r_thread r =
  let t_tid = r_u64 r in
  let t_name = r_str r in
  let t_callstack = r_list r r_str in
  let t_blocked = r_opt_str r in
  { t_tid; t_name; t_callstack; t_blocked }

let encode_proc p =
  let b = Buffer.create 4096 in
  w_u64 b p.pi_pid;
  w_str b p.pi_name;
  w_u64 b p.pi_creation_callstack;
  w_bool b p.pi_startup_complete;
  w_u64 b p.pi_layout_bias;
  w_u64 b p.pi_write_seq;
  w_list b w_u64 p.pi_fds;
  w_list b w_region p.pi_regions;
  w_list b w_page p.pi_pages;
  w_list b
    (fun b (name, mark) ->
      w_str b name;
      w_u64 b mark)
    p.pi_epochs;
  w_list b w_thread p.pi_threads;
  w_heap_opt b p.pi_heap;
  w_heap_opt b p.pi_lib_heap;
  w_list b w_pool p.pi_pools;
  w_list b w_slab p.pi_slabs;
  Buffer.contents b

let decode_proc r =
  let pi_pid = r_u64 r in
  let pi_name = r_str r in
  let pi_creation_callstack = r_u64 r in
  let pi_startup_complete = r_bool r in
  let pi_layout_bias = r_u64 r in
  let pi_write_seq = r_u64 r in
  let pi_fds = r_list r r_u64 in
  let pi_regions = r_list r r_region in
  let pi_pages = r_list r r_page in
  let pi_epochs =
    r_list r (fun r ->
        let name = r_str r in
        let mark = r_u64 r in
        (name, mark))
  in
  let pi_threads = r_list r r_thread in
  let pi_heap = r_heap_opt r in
  let pi_lib_heap = r_heap_opt r in
  let pi_pools = r_list r r_pool in
  let pi_slabs = r_list r r_slab in
  { pi_pid; pi_name; pi_creation_callstack; pi_startup_complete; pi_layout_bias; pi_write_seq;
    pi_fds; pi_regions; pi_pages; pi_epochs; pi_threads; pi_heap; pi_lib_heap; pi_pools;
    pi_slabs }

let encode_meta t =
  let b = Buffer.create 256 in
  w_str b t.im_prog;
  w_str b t.im_version_tag;
  w_u64 b t.im_clock_ns;
  w_u64 b t.im_fingerprint;
  w_u64 b (List.length t.im_procs);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Section table *)

let sections_of t =
  let meta = ("META", "meta", encode_meta t) in
  let procs =
    List.mapi (fun i p -> ("PROC", Printf.sprintf "proc.%d" i, encode_proc p)) t.im_procs
  in
  let opt tag name = function Some s -> [ (tag, name, s) ] | None -> [] in
  (meta :: procs)
  @ opt "POLI" "policy" t.im_policy_text
  @ opt "ATMP" "attempt" t.im_target_tag
  @ opt "FLIT" "flight" t.im_flight_json

let layout t = List.map (fun (tag, name, payload) -> (tag, name, String.length payload)) (sections_of t)

let encode t =
  let sections = sections_of t in
  let b = Buffer.create 65536 in
  Buffer.add_string b magic;
  w_u64 b format_version;
  w_u64 b (List.length sections);
  List.iter
    (fun (tag, name, payload) ->
      assert (String.length tag = 4);
      Buffer.add_string b tag;
      w_str b name;
      w_str b payload;
      w_u64 b (Fnv.string payload))
    sections;
  let body = Buffer.contents b in
  let out = Buffer.create (String.length body + 8) in
  Buffer.add_string out body;
  w_u64 out (Fnv.string body);
  Buffer.contents out

let decode data =
  let len = String.length data in
  if len < 8 then Error (Truncated { section = "header" })
  else if String.sub data 0 8 <> magic then Error Bad_magic
  else
    let r = { data; pos = 8 } in
    match r_u64 r with
    | exception Short -> Error (Truncated { section = "header" })
    | v when v <> format_version -> Error (Version_skew { found = v; expected = format_version })
    | _ -> (
        match r_u64 r with
        | exception Short -> Error (Truncated { section = "header" })
        | count -> (
            let sections = ref [] in
            let failure = ref None in
            (try
               for i = 0 to count - 1 do
                 let label = ref (Printf.sprintf "#%d" i) in
                 try
                   if r.pos + 4 > len then raise Short;
                   let tag = String.sub data r.pos 4 in
                   r.pos <- r.pos + 4;
                   label := tag;
                   let name = r_str r in
                   label := name;
                   let payload = r_str r in
                   let hash = r_u64 r in
                   if Fnv.string payload <> hash then begin
                     failure := Some (Hash_mismatch { section = name });
                     raise Exit
                   end;
                   sections := (tag, name, payload) :: !sections
                 with Short ->
                   failure := Some (Truncated { section = !label });
                   raise Exit
               done;
               (* whole-image trailer *)
               let body_end = r.pos in
               match r_u64 r with
               | exception Short -> failure := Some (Truncated { section = "trailer" })
               | trailer ->
                   if Fnv.string (String.sub data 0 body_end) <> trailer then
                     failure := Some (Hash_mismatch { section = "image" })
             with Exit -> ());
            match !failure with
            | Some e -> Error e
            | None -> (
                let sections = List.rev !sections in
                let find tag = List.find_opt (fun (t, _, _) -> t = tag) sections in
                match find "META" with
                | None -> Error (Missing_section "meta")
                | Some (_, meta_name, meta) -> (
                    try
                      let mr = { data = meta; pos = 0 } in
                      let im_prog = r_str mr in
                      let im_version_tag = r_str mr in
                      let im_clock_ns = r_u64 mr in
                      let im_fingerprint = r_u64 mr in
                      let nprocs = r_u64 mr in
                      let procs =
                        List.filter_map
                          (fun (tag, name, payload) ->
                            if tag <> "PROC" then None
                            else
                              try Some (decode_proc { data = payload; pos = 0 })
                              with Short ->
                                raise
                                  (Stdlib.Failure
                                     (Printf.sprintf "proc section %s is self-inconsistent" name)))
                          sections
                      in
                      if List.length procs <> nprocs then
                        Error
                          (Malformed
                             {
                               section = meta_name;
                               reason =
                                 Printf.sprintf "meta promises %d processes, found %d" nprocs
                                   (List.length procs);
                             })
                      else
                        let opt_payload tag =
                          Option.map (fun (_, _, p) -> p) (find tag)
                        in
                        Ok
                          {
                            im_prog;
                            im_version_tag;
                            im_clock_ns;
                            im_fingerprint;
                            im_policy_text = opt_payload "POLI";
                            im_target_tag = opt_payload "ATMP";
                            im_flight_json = opt_payload "FLIT";
                            im_procs = procs;
                          }
                    with
                    | Short -> Error (Truncated { section = meta_name })
                    | Stdlib.Failure reason -> Error (Malformed { section = "proc"; reason })))))

(* ------------------------------------------------------------------ *)
(* Capture *)

let kind_of_string = function
  | "static" -> Region.Static
  | "heap" -> Region.Heap
  | "stack" -> Region.Stack
  | "lib" -> Region.Lib
  | "mmap" -> Region.Mmap
  | s -> invalid_arg ("Image: unknown region kind " ^ s)

let capture_region asp (r : Region.t) =
  let words = r.Region.size / Addr.word_size in
  let arr = Array.make words 0 in
  let i = ref 0 in
  let () =
    Aspace.fold_words asp r.Region.base ~words ~init:() ~f:(fun () w ->
        arr.(!i) <- w;
        incr i)
  in
  {
    r_name = r.Region.name;
    r_kind = Region.kind_to_string r.Region.kind;
    r_base = r.Region.base;
    r_size = r.Region.size;
    r_words = arr;
  }

let heap_image_of h =
  {
    h_base = Heap.base h;
    h_size = Heap.limit h - Heap.base h;
    h_instrumented = Heap.instrumented h;
    h_allocs = (Heap.stats h).Heap.allocs;
    h_frees = (Heap.stats h).Heap.frees;
    h_tag_words = (Heap.stats h).Heap.tag_words;
  }

let capture_thread th =
  {
    t_tid = K.tid th;
    t_name = K.thread_name th;
    t_callstack = K.callstack th;
    t_blocked = Option.map (fun c -> Format.asprintf "%a" S.pp_call c) (K.blocked_in th);
  }

let capture_proc (img : P.image) =
  let proc = img.P.i_proc in
  let asp = img.P.i_aspace in
  {
    pi_pid = K.pid proc;
    pi_name = K.proc_name proc;
    pi_creation_callstack = K.creation_callstack proc;
    pi_startup_complete = img.P.i_startup_complete;
    pi_layout_bias = Aspace.layout_bias asp;
    pi_write_seq = Aspace.write_seq asp;
    pi_fds = K.fds proc;
    pi_regions = List.map (capture_region asp) (Aspace.regions asp);
    pi_pages =
      List.map
        (fun (ps : Aspace.page_state) ->
          {
            g_page = ps.Aspace.ps_page;
            g_seq = ps.ps_last_write_seq;
            g_touched = ps.ps_touched;
            g_inherited = ps.ps_inherited;
          })
        (Aspace.page_states asp);
    pi_epochs = Aspace.epochs asp;
    pi_threads = List.map capture_thread (K.proc_threads proc);
    pi_heap = Some (heap_image_of img.P.i_heap);
    pi_lib_heap = Some (heap_image_of img.P.i_lib_heap);
    pi_pools = List.map (fun (_, p) -> Pool.export_state p) img.P.i_pools;
    pi_slabs = List.map (fun (name, s) -> (name, Slab.export_state s)) img.P.i_slabs;
  }

let capture kernel ~members ?policy_text ?target_tag ?flight_json () =
  match members with
  | [] -> invalid_arg "Image.capture: empty member list"
  | root :: _ ->
      {
        im_prog = root.P.i_version.P.prog;
        im_version_tag = root.P.i_version.P.version_tag;
        im_clock_ns = K.clock_ns kernel;
        im_fingerprint =
          aspace_fingerprint ~prog:root.P.i_version.P.prog (K.aspace root.P.i_proc);
        im_policy_text = policy_text;
        im_target_tag = target_tag;
        im_flight_json = flight_json;
        im_procs = List.map capture_proc members;
      }

(* ------------------------------------------------------------------ *)
(* Host-filesystem persistence *)

let write t ~path =
  match
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (encode t))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Io msg)

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | data -> decode data
  | exception Sys_error msg -> Error (Io msg)
  | exception End_of_file -> Error (Truncated { section = "header" })

let save kernel ~path ~members ?policy_text ?target_tag ?flight_json () =
  let t = capture kernel ~members ?policy_text ?target_tag ?flight_json () in
  match write t ~path with Ok () -> Ok t | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Install *)

type install_report = {
  paired_procs : int;
  skipped_saved_procs : int;
  unmatched_live_procs : int;
}

(* Reconcile the live address space's region set with the saved one, then
   write back contents and dirty-tracking state. All stores are untracked
   and the write sequence / page stamps / epoch marks are re-installed
   afterwards, so the restored space is indistinguishable from the saved
   one to every dirty-tracking consumer. *)
let install_aspace saved asp =
  let saved_by_base = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace saved_by_base r.r_base r) saved.pi_regions;
  (* drop live regions the image does not know, or whose shape changed *)
  List.iter
    (fun (r : Region.t) ->
      match Hashtbl.find_opt saved_by_base r.Region.base with
      | Some s
        when s.r_size = r.Region.size
             && s.r_kind = Region.kind_to_string r.Region.kind ->
          ()
      | _ -> Aspace.unmap asp r.Region.base)
    (Aspace.regions asp);
  (* map regions the live space is missing *)
  let live_bases =
    List.fold_left
      (fun acc (r : Region.t) ->
        Hashtbl.replace acc r.Region.base ();
        acc)
      (Hashtbl.create 16) (Aspace.regions asp)
  in
  List.iter
    (fun s ->
      if not (Hashtbl.mem live_bases s.r_base) then
        ignore
          (Aspace.map asp ~name:s.r_name (Aspace.Fixed s.r_base) ~size:s.r_size
             (kind_of_string s.r_kind)))
    saved.pi_regions;
  (* contents *)
  List.iter
    (fun s ->
      Array.iteri
        (fun i w -> Aspace.write_word_untracked asp (Addr.add_words s.r_base i) w)
        s.r_words)
    saved.pi_regions;
  (* dirty-tracking state *)
  Aspace.set_write_seq asp saved.pi_write_seq;
  List.iter
    (fun g ->
      Aspace.restore_page_state asp
        {
          Aspace.ps_page = g.g_page;
          ps_last_write_seq = g.g_seq;
          ps_touched = g.g_touched;
          ps_inherited = g.g_inherited;
        })
    saved.pi_pages;
  Aspace.restore_epochs asp saved.pi_epochs

let install_heap saved_opt heap =
  Heap.refresh heap;
  match saved_opt with
  | None -> ()
  | Some h ->
      Heap.restore_stats heap ~allocs:h.h_allocs ~frees:h.h_frees ~tag_words:h.h_tag_words

let install_proc saved (img : P.image) =
  install_aspace saved img.P.i_aspace;
  install_heap saved.pi_heap img.P.i_heap;
  install_heap saved.pi_lib_heap img.P.i_lib_heap;
  (* Pools/slabs: pair by name — a deterministic same-version startup
     creates the same named set, so a mismatch means the restore target is
     not actually running the image's program configuration. *)
  let find_pool name =
    List.find_opt (fun (st : Pool.state) -> st.Pool.st_name = name) saved.pi_pools
  in
  List.iter
    (fun (name, pool) ->
      match find_pool name with
      | Some st -> Pool.restore_state pool st
      | None -> ())
    img.P.i_pools;
  List.iter
    (fun (name, slab) ->
      match List.assoc_opt name saved.pi_slabs with
      | Some st -> Slab.restore_state slab st
      | None -> ())
    img.P.i_slabs;
  img.P.i_startup_complete <- saved.pi_startup_complete

(* Pair saved processes with live ones: roots first, then by creation call
   stack in creation order — the same key Manager uses to pair processes
   across versions during an update. *)
let pair_procs saved_procs members =
  match (saved_procs, members) with
  | [], _ | _, [] -> ([], saved_procs, members)
  | sroot :: srest, lroot :: lrest ->
      let remaining = ref lrest in
      let pairs = ref [ (sroot, lroot) ] in
      let skipped = ref [] in
      List.iter
        (fun s ->
          let rec take acc = function
            | [] ->
                skipped := s :: !skipped;
                List.rev acc
            | (l : P.image) :: tl when K.creation_callstack l.P.i_proc = s.pi_creation_callstack ->
                pairs := (s, l) :: !pairs;
                List.rev_append acc tl
            | l :: tl -> take (l :: acc) tl
          in
          remaining := take [] !remaining)
        srest;
      (List.rev !pairs, List.rev !skipped, !remaining)

let install t ~members =
  match members with
  | [] -> Error (Malformed { section = "proc"; reason = "restore target has no processes" })
  | root :: _ ->
      let live_prog = root.P.i_version.P.prog in
      let live_tag = root.P.i_version.P.version_tag in
      if live_prog <> t.im_prog then
        Error (Program_mismatch { image = t.im_prog; target = live_prog })
      else if live_tag <> t.im_version_tag then
        Error (Version_mismatch { image = t.im_version_tag; target = live_tag })
      else begin
        let pairs, skipped, unmatched = pair_procs t.im_procs members in
        List.iter (fun (s, l) -> install_proc s l) pairs;
        let restored = aspace_fingerprint ~prog:t.im_prog (K.aspace root.P.i_proc) in
        if restored <> t.im_fingerprint then
          Error (Fingerprint_mismatch { image = t.im_fingerprint; restored })
        else
          Ok
            {
              paired_procs = List.length pairs;
              skipped_saved_procs = List.length skipped;
              unmatched_live_procs = List.length unmatched;
            }
      end

let restore t ~launch =
  let members = launch () in
  match install t ~members with Ok report -> Ok (members, report) | Error e -> Error e
