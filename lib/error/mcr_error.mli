(** Shared rollback-reason vocabulary for the update pipeline.

    Every way a live update can fail and roll back is one constructor of
    {!rollback_reason}. The manager, the replayer, the transfer engine and
    the quiescence barrier all speak this type instead of ad-hoc strings, so
    reports can be matched structurally and the per-reason rollback metrics
    ([mcr_rollback_reason_<reason>_total]) are derived from one place. *)

type conflict_obj = {
  co_kind : string;
      (** Conflict class: ["nonupdatable_changed"], ["no_plan"],
          ["missing_type"] or ["injected"]. *)
  co_addr : int;  (** Old-version payload address (0 for injected faults). *)
  co_ty : string option;  (** Type tag, when the object was typed. *)
  co_callstack : int;  (** Allocation call-stack ID (0 if n/a). *)
  co_shard : int;  (** Transfer shard that touched it (-1 unsharded). *)
  co_round : int;
      (** Pre-copy round that last staged the object (0 = never staged). *)
  co_detail : string;
}
(** The conflicting object's identity, captured when the conflict was
    detected. Rollback destroys the new version's state, so explanations
    (the flight recorder, [mcr-ctl EXPLAIN]) must never re-derive this after
    the fact — it rides inside {!Tracing_conflict}. *)

type rollback_reason =
  | Program_not_running
      (** Update requested against a manager whose program already exited. *)
  | Quiescence_deadline_exceeded
      (** The old version did not park all threads within the quiescence
          deadline. *)
  | Quiescence_did_not_converge
      (** No deadline was set and the barrier protocol gave up waiting. *)
  | Update_deadline_exceeded
      (** The whole-update deadline elapsed mid-pipeline. *)
  | Startup_crashed  (** The new version crashed during startup replay. *)
  | Startup_not_quiescent
      (** The new version finished startup but never reached its
          pre-requested quiescence barrier. *)
  | Reinit_conflict
      (** Mutable reinitialization conflict: a startup call diverged from
          the recorded log on an immutable object. *)
  | Reinit_not_quiesced
      (** Reinit handler threads did not re-quiesce after running. *)
  | Tracing_conflict of conflict_obj list
      (** Mutable tracing conflict: nonupdatable state changed, a plan or
          type was missing, or an injected transfer fault fired. Carries the
          conflicting objects' identities so post-rollback explanations need
          no live state. *)
  | Precopy_diverged
      (** Pre-copy delta rounds never shrank below the convergence
          threshold within the round budget. *)

val all : rollback_reason list
(** Every constructor, in declaration order (payload-carrying constructors
    with an empty payload). *)

val to_string : rollback_reason -> string
(** Stable human-readable reason, e.g. ["quiescence deadline exceeded"].
    These strings are part of the ctl wire protocol ([ERR <reason>] /
    legacy [FAIL <reason>]) and must not change. *)

val metric_name : rollback_reason -> string
(** The per-reason rollback counter name:
    ["mcr_rollback_reason_" ^ underscored reason ^ "_total"]. *)

val of_string : string -> rollback_reason option
(** Inverse of {!to_string} (payloads come back empty — the wire strings
    carry none). *)

val conflict_objs : rollback_reason -> conflict_obj list
(** The {!Tracing_conflict} payload; [[]] for every other reason. *)

(** [equal a b] is whether both are the same failure mode — payloads are
    ignored. *)
val equal : rollback_reason -> rollback_reason -> bool
val pp : Format.formatter -> rollback_reason -> unit
