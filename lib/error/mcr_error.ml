(* A conflicting object's identity, captured at the moment the conflict is
   detected — rollback tears the new version down, so explanations must not
   re-derive any of this afterwards. Plain ints/strings only: this module
   sits below every other library. *)
type conflict_obj = {
  co_kind : string;
  co_addr : int;
  co_ty : string option;
  co_callstack : int;
  co_shard : int;
  co_round : int;
  co_detail : string;
}

type rollback_reason =
  | Program_not_running
  | Quiescence_deadline_exceeded
  | Quiescence_did_not_converge
  | Update_deadline_exceeded
  | Startup_crashed
  | Startup_not_quiescent
  | Reinit_conflict
  | Reinit_not_quiesced
  | Tracing_conflict of conflict_obj list
  | Precopy_diverged

let all =
  [
    Program_not_running;
    Quiescence_deadline_exceeded;
    Quiescence_did_not_converge;
    Update_deadline_exceeded;
    Startup_crashed;
    Startup_not_quiescent;
    Reinit_conflict;
    Reinit_not_quiesced;
    Tracing_conflict [];
    Precopy_diverged;
  ]

(* The strings predate the variant (they were matched verbatim by tests and
   clients of the ctl socket), so they are frozen wire format. The
   [Tracing_conflict] payload deliberately does not leak into the string. *)
let to_string = function
  | Program_not_running -> "program is not running"
  | Quiescence_deadline_exceeded -> "quiescence deadline exceeded"
  | Quiescence_did_not_converge -> "quiescence did not converge"
  | Update_deadline_exceeded -> "update deadline exceeded"
  | Startup_crashed -> "new version crashed during startup"
  | Startup_not_quiescent -> "new version did not reach a quiescent startup"
  | Reinit_conflict -> "mutable reinitialization conflict"
  | Reinit_not_quiesced -> "reinit handlers did not quiesce"
  | Tracing_conflict _ -> "mutable tracing conflict"
  | Precopy_diverged -> "precopy did not converge"

let metric_name r =
  "mcr_rollback_reason_" ^ String.map (fun c -> if c = ' ' then '_' else c) (to_string r) ^ "_total"

let of_string s = List.find_opt (fun r -> to_string r = s) all

(* Reason identity, not payload identity: two tracing conflicts are the same
   failure mode whatever objects they name. *)
let equal a b =
  match (a, b) with
  | Tracing_conflict _, Tracing_conflict _ -> true
  | Tracing_conflict _, _ | _, Tracing_conflict _ -> false
  | a, b -> a = b

let conflict_objs = function Tracing_conflict objs -> objs | _ -> []
let pp ppf r = Format.pp_print_string ppf (to_string r)
