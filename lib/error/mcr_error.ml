type rollback_reason =
  | Program_not_running
  | Quiescence_deadline_exceeded
  | Quiescence_did_not_converge
  | Update_deadline_exceeded
  | Startup_crashed
  | Startup_not_quiescent
  | Reinit_conflict
  | Reinit_not_quiesced
  | Tracing_conflict
  | Precopy_diverged

let all =
  [
    Program_not_running;
    Quiescence_deadline_exceeded;
    Quiescence_did_not_converge;
    Update_deadline_exceeded;
    Startup_crashed;
    Startup_not_quiescent;
    Reinit_conflict;
    Reinit_not_quiesced;
    Tracing_conflict;
    Precopy_diverged;
  ]

(* The strings predate the variant (they were matched verbatim by tests and
   clients of the ctl socket), so they are frozen wire format. *)
let to_string = function
  | Program_not_running -> "program is not running"
  | Quiescence_deadline_exceeded -> "quiescence deadline exceeded"
  | Quiescence_did_not_converge -> "quiescence did not converge"
  | Update_deadline_exceeded -> "update deadline exceeded"
  | Startup_crashed -> "new version crashed during startup"
  | Startup_not_quiescent -> "new version did not reach a quiescent startup"
  | Reinit_conflict -> "mutable reinitialization conflict"
  | Reinit_not_quiesced -> "reinit handlers did not quiesce"
  | Tracing_conflict -> "mutable tracing conflict"
  | Precopy_diverged -> "precopy did not converge"

let metric_name r =
  "mcr_rollback_reason_" ^ String.map (fun c -> if c = ' ' then '_' else c) (to_string r) ^ "_total"

let of_string s = List.find_opt (fun r -> to_string r = s) all
let equal (a : rollback_reason) b = a = b
let pp ppf r = Format.pp_print_string ppf (to_string r)
