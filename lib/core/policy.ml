type t = {
  quiesce_deadline_ns : int option;
  update_deadline_ns : int option;
  retries : int;
  retry_backoff_ns : int;
  fault_seed : int option;
  dirty_only : bool;
  precopy : bool;
  precopy_max_rounds : int;
  precopy_threshold_words : int;
  transfer_workers : int;
  transfer_remap : bool;
  slo_downtime_ns : int option;
  slo_total_ns : int option;
}

let default =
  {
    quiesce_deadline_ns = None;
    update_deadline_ns = None;
    retries = 0;
    retry_backoff_ns = 100_000_000;
    fault_seed = None;
    dirty_only = true;
    precopy = false;
    precopy_max_rounds = 4;
    precopy_threshold_words = 512;
    transfer_workers = 1;
    transfer_remap = false;
    slo_downtime_ns = None;
    slo_total_ns = None;
  }

let with_quiesce_deadline_ns q t = { t with quiesce_deadline_ns = q }
let with_update_deadline_ns u t = { t with update_deadline_ns = u }

let with_deadlines ~quiesce_ns ~update_ns t =
  { t with quiesce_deadline_ns = quiesce_ns; update_deadline_ns = update_ns }

let with_retries ?backoff_ns n t =
  if n < 0 then invalid_arg "Policy.with_retries: negative count";
  { t with retries = n; retry_backoff_ns = Option.value backoff_ns ~default:t.retry_backoff_ns }

let with_fault_seed s t = { t with fault_seed = s }
let with_dirty_only d t = { t with dirty_only = d }

let with_precopy ?max_rounds ?threshold_words enabled t =
  let max_rounds = Option.value max_rounds ~default:t.precopy_max_rounds in
  let threshold_words = Option.value threshold_words ~default:t.precopy_threshold_words in
  if max_rounds < 1 then invalid_arg "Policy.with_precopy: max_rounds must be >= 1";
  if threshold_words < 0 then invalid_arg "Policy.with_precopy: negative threshold";
  {
    t with
    precopy = enabled;
    precopy_max_rounds = max_rounds;
    precopy_threshold_words = threshold_words;
  }

let with_transfer_workers n t =
  if n < 1 then invalid_arg "Policy.with_transfer_workers: workers must be >= 1";
  { t with transfer_workers = n }

let with_transfer_remap r t = { t with transfer_remap = r }

let with_slo ~downtime_ns ~total_ns t =
  (match (downtime_ns, total_ns) with
  | Some d, _ when d <= 0 -> invalid_arg "Policy.with_slo: downtime budget must be positive"
  | _, Some ut when ut <= 0 -> invalid_arg "Policy.with_slo: total budget must be positive"
  | _ -> ());
  { t with slo_downtime_ns = downtime_ns; slo_total_ns = total_ns }

let pp ppf t =
  let opt ppf = function
    | None -> Format.pp_print_string ppf "-"
    | Some n -> Format.pp_print_int ppf n
  in
  Format.fprintf ppf
    "@[<hov>quiesce_deadline_ns=%a update_deadline_ns=%a retries=%d retry_backoff_ns=%d \
     fault_seed=%a dirty_only=%b precopy=%b precopy_max_rounds=%d precopy_threshold_words=%d \
     transfer_workers=%d transfer_remap=%b slo_downtime_ns=%a slo_total_ns=%a@]"
    opt t.quiesce_deadline_ns opt t.update_deadline_ns t.retries t.retry_backoff_ns opt
    t.fault_seed t.dirty_only t.precopy t.precopy_max_rounds t.precopy_threshold_words
    t.transfer_workers t.transfer_remap opt t.slo_downtime_ns opt t.slo_total_ns
