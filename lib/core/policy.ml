type t = {
  quiesce_deadline_ns : int option;
  update_deadline_ns : int option;
  retries : int;
  retry_backoff_ns : int;
  fault_seed : int option;
  dirty_only : bool;
  precopy : bool;
  precopy_max_rounds : int;
  precopy_threshold_words : int;
  transfer_workers : int;
  transfer_remap : bool;
  slo_downtime_ns : int option;
  slo_total_ns : int option;
  image_dir : string option;
  request_parking : bool;
  drain_ns : int;
  concurrent_transfer : bool;
}

let default =
  {
    quiesce_deadline_ns = None;
    update_deadline_ns = None;
    retries = 0;
    retry_backoff_ns = 100_000_000;
    fault_seed = None;
    dirty_only = true;
    precopy = false;
    precopy_max_rounds = 4;
    precopy_threshold_words = 512;
    transfer_workers = 1;
    transfer_remap = false;
    slo_downtime_ns = None;
    slo_total_ns = None;
    image_dir = None;
    request_parking = false;
    drain_ns = 2_000_000;
    concurrent_transfer = false;
  }

let with_quiesce_deadline_ns q t = { t with quiesce_deadline_ns = q }
let with_update_deadline_ns u t = { t with update_deadline_ns = u }

let with_deadlines ~quiesce_ns ~update_ns t =
  { t with quiesce_deadline_ns = quiesce_ns; update_deadline_ns = update_ns }

let with_retries ?backoff_ns n t =
  if n < 0 then invalid_arg "Policy.with_retries: negative count";
  { t with retries = n; retry_backoff_ns = Option.value backoff_ns ~default:t.retry_backoff_ns }

let with_fault_seed s t = { t with fault_seed = s }
let with_dirty_only d t = { t with dirty_only = d }

let with_precopy ?max_rounds ?threshold_words enabled t =
  let max_rounds = Option.value max_rounds ~default:t.precopy_max_rounds in
  let threshold_words = Option.value threshold_words ~default:t.precopy_threshold_words in
  if max_rounds < 1 then invalid_arg "Policy.with_precopy: max_rounds must be >= 1";
  if threshold_words < 0 then invalid_arg "Policy.with_precopy: negative threshold";
  {
    t with
    precopy = enabled;
    precopy_max_rounds = max_rounds;
    precopy_threshold_words = threshold_words;
  }

let with_transfer_workers n t =
  if n < 1 then invalid_arg "Policy.with_transfer_workers: workers must be >= 1";
  { t with transfer_workers = n }

let with_transfer_remap r t = { t with transfer_remap = r }

let with_slo ~downtime_ns ~total_ns t =
  (match (downtime_ns, total_ns) with
  | Some d, _ when d <= 0 -> invalid_arg "Policy.with_slo: downtime budget must be positive"
  | _, Some ut when ut <= 0 -> invalid_arg "Policy.with_slo: total budget must be positive"
  | _ -> ());
  { t with slo_downtime_ns = downtime_ns; slo_total_ns = total_ns }

let with_image_dir d t = { t with image_dir = d }

let with_request_parking ?drain_ns enabled t =
  let drain_ns = Option.value drain_ns ~default:t.drain_ns in
  if drain_ns < 0 then invalid_arg "Policy.with_request_parking: negative drain budget";
  { t with request_parking = enabled; drain_ns }

let with_concurrent_transfer c t = { t with concurrent_transfer = c }

(* Key=value rendering embedded in checkpoint images (section POLI) so an
   offline replay can re-run an update under the exact policy that
   produced it. Only scalar fields round-trip; [image_dir] deliberately
   does not (a replayed update must not re-snapshot images). *)
let to_kv t =
  let opt = function None -> "-" | Some n -> string_of_int n in
  String.concat " "
    [
      "quiesce_deadline_ns=" ^ opt t.quiesce_deadline_ns;
      "update_deadline_ns=" ^ opt t.update_deadline_ns;
      "retries=" ^ string_of_int t.retries;
      "retry_backoff_ns=" ^ string_of_int t.retry_backoff_ns;
      "fault_seed=" ^ opt t.fault_seed;
      "dirty_only=" ^ string_of_bool t.dirty_only;
      "precopy=" ^ string_of_bool t.precopy;
      "precopy_max_rounds=" ^ string_of_int t.precopy_max_rounds;
      "precopy_threshold_words=" ^ string_of_int t.precopy_threshold_words;
      "transfer_workers=" ^ string_of_int t.transfer_workers;
      "transfer_remap=" ^ string_of_bool t.transfer_remap;
      "slo_downtime_ns=" ^ opt t.slo_downtime_ns;
      "slo_total_ns=" ^ opt t.slo_total_ns;
      "request_parking=" ^ string_of_bool t.request_parking;
      "drain_ns=" ^ string_of_int t.drain_ns;
      "concurrent_transfer=" ^ string_of_bool t.concurrent_transfer;
    ]

let of_string_exn p v =
  match p with
  | `Int -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> failwith (Printf.sprintf "Policy.of_kv: %S is not an integer" v))
  | `Bool -> (
      match bool_of_string_opt v with
      | Some b -> if b then 1 else 0
      | None -> failwith (Printf.sprintf "Policy.of_kv: %S is not a boolean" v))

let of_kv s =
  let fields =
    List.filter_map
      (fun tok ->
        match String.index_opt tok '=' with
        | None -> None
        | Some i ->
            Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1)))
      (String.split_on_char ' ' s)
  in
  try
    let get k = List.assoc_opt k fields in
    let opt k p =
      match get k with None | Some "-" -> None | Some v -> Some (of_string_exn p v)
    and scalar k p d = match get k with None -> d | Some v -> of_string_exn p v in
    Ok
      {
        quiesce_deadline_ns = opt "quiesce_deadline_ns" `Int;
        update_deadline_ns = opt "update_deadline_ns" `Int;
        retries = scalar "retries" `Int default.retries;
        retry_backoff_ns = scalar "retry_backoff_ns" `Int default.retry_backoff_ns;
        fault_seed = opt "fault_seed" `Int;
        dirty_only = scalar "dirty_only" `Bool (if default.dirty_only then 1 else 0) <> 0;
        precopy = scalar "precopy" `Bool (if default.precopy then 1 else 0) <> 0;
        precopy_max_rounds = scalar "precopy_max_rounds" `Int default.precopy_max_rounds;
        precopy_threshold_words =
          scalar "precopy_threshold_words" `Int default.precopy_threshold_words;
        transfer_workers = scalar "transfer_workers" `Int default.transfer_workers;
        transfer_remap = scalar "transfer_remap" `Bool (if default.transfer_remap then 1 else 0) <> 0;
        slo_downtime_ns = opt "slo_downtime_ns" `Int;
        slo_total_ns = opt "slo_total_ns" `Int;
        image_dir = None;
        request_parking =
          scalar "request_parking" `Bool (if default.request_parking then 1 else 0) <> 0;
        drain_ns = scalar "drain_ns" `Int default.drain_ns;
        concurrent_transfer =
          scalar "concurrent_transfer" `Bool (if default.concurrent_transfer then 1 else 0) <> 0;
      }
  with Stdlib.Failure msg -> Error msg

let pp ppf t =
  let opt ppf = function
    | None -> Format.pp_print_string ppf "-"
    | Some n -> Format.pp_print_int ppf n
  in
  Format.fprintf ppf
    "@[<hov>quiesce_deadline_ns=%a update_deadline_ns=%a retries=%d retry_backoff_ns=%d \
     fault_seed=%a dirty_only=%b precopy=%b precopy_max_rounds=%d precopy_threshold_words=%d \
     transfer_workers=%d transfer_remap=%b slo_downtime_ns=%a slo_total_ns=%a image_dir=%s \
     request_parking=%b drain_ns=%d concurrent_transfer=%b@]"
    opt t.quiesce_deadline_ns opt t.update_deadline_ns t.retries t.retry_backoff_ns opt
    t.fault_seed t.dirty_only t.precopy t.precopy_max_rounds t.precopy_threshold_words
    t.transfer_workers t.transfer_remap opt t.slo_downtime_ns opt t.slo_total_ns
    (Option.value t.image_dir ~default:"-")
    t.request_parking t.drain_ns t.concurrent_transfer
