(** The mcr-ctl client side.

    "The mcr-ctl tool allows users to signal live updates to the MCR
    backend using Unix domain sockets" (Section 8). {!request_update}
    spawns a client process in the simulated kernel that connects to the
    manager's control socket, sends UPDATE, and reports the reply. The
    reply arrives only after the update commits or rolls back, so the tool
    observes the atomic outcome. {!request_stats} sends STATS instead and
    receives the manager's current metrics snapshot immediately — it never
    waits on an update.

    {b Protocol versioning.} Since protocol version 1 a client may open
    with a [HELLO <version> <command>] frame; the server then answers with
    a uniform response frame — ["OK"] (optionally followed by a payload) on
    success, ["ERR <reason>"] on refusal, and specifically
    ["ERR version <server_version>"] when the client's version is not
    supported. {!request_v} speaks this framing and surfaces the outcome as
    a typed [result]. Frames without a HELLO prefix take the legacy path:
    raw commands, raw payloads, and ["FAIL <reason>"] for a refused
    UPDATE — exactly what pre-versioning clients expect. The wire format is
    documented in doc/OBSERVABILITY.md. *)

module Frame = Frame
(** The frame encoder/decoder both sides share (re-exported for clients
    that want to speak the protocol directly). *)

val protocol_version : int
(** The protocol version this client speaks (= {!Manager.protocol_version}). *)

type error = Frame.error =
  | Version_mismatch of { client : int; server : int }
      (** The server refused our HELLO; [server] is the version it speaks. *)
  | Refused of string  (** The server answered [ERR <reason>]. *)
  | Transport of string  (** Connection failure or unparseable frame. *)

val pp_error : Format.formatter -> error -> unit

val request :
  Mcr_simos.Kernel.t -> path:string -> command:string -> on_reply:(string -> unit) -> unit
(** {b Legacy raw transport.} Spawn a client process that sends [command]
    over the control socket and passes the raw reply to [on_reply] (or
    "ERR <err>" if the connection failed). Drive the kernel afterwards.
    New code should prefer {!request_v}. *)

val request_v :
  Mcr_simos.Kernel.t ->
  ?version:int ->
  path:string ->
  command:string ->
  on_result:((string, error) result -> unit) ->
  unit ->
  unit
(** Send [command] wrapped in a versioned HELLO frame ([?version] defaults
    to {!protocol_version}) and parse the uniform response: [Ok payload]
    (the payload is [""] for plain "OK" acknowledgements), or [Error _]
    with the typed failure. An empty [command] sends a bare handshake —
    see {!hello}. Drive the kernel afterwards. *)

val hello :
  Mcr_simos.Kernel.t ->
  ?version:int ->
  path:string ->
  on_result:((string, error) result -> unit) ->
  unit ->
  unit
(** Bare version handshake: [Ok server_version_string] when the server
    accepts our version, [Error (Version_mismatch _)] otherwise. *)

(** {1 Typed commands}

    Every control-socket command as a variant. {!command_to_string} is the
    single wire encoder (its output is the protocol documented in
    doc/OBSERVABILITY.md); {!exec} sends one command over the versioned
    framing. The [request_*] helpers below are thin wrappers kept for
    existing callers — new code should build a {!command}. *)

type command =
  | Update  (** Perform a live update; replies when it commits or rolls back. *)
  | Stats  (** Rendered metrics snapshot; never waits on an update. *)
  | Explain of int option
      (** Flight record as JSON ([None] = newest, [Some n] with [n] = 1 the
          newest). *)
  | Deadlines of { quiesce_ns : int option; update_ns : int option }
      (** Set ([None] clears) the lineage's default deadlines. *)
  | Retry of { retries : int; backoff_ns : int }
  | Fault_arm of int option
      (** Arm a seeded fault plan for subsequent updates; [None] disarms. *)
  | Precopy of { enabled : bool; max_rounds : int option; threshold_words : int option }
  | Workers of int  (** Transfer worker-pool size. *)
  | Remap of bool  (** Zero-copy page remap on/off. *)
  | Slo of { downtime_ns : int option; total_ns : int option }
  | Save of string
      (** Write a persistent checkpoint image of the running program to the
          given {e host} path; replies [OK <fingerprint>]. *)
  | Restore of string
      (** Install the image at the given host path over the running
          program in place; replies
          [OK paired=<n> skipped=<n> unmatched=<n> fingerprint=<f>]. *)
  | Raw of string
      (** Escape hatch: send the string verbatim (e.g. a [FLEET ...]
          command on an orchestrator socket). *)

val command_to_string : command -> string
(** The wire spelling — the single encoder both {!exec} and the legacy
    helpers share. *)

val exec :
  Mcr_simos.Kernel.t ->
  ?version:int ->
  path:string ->
  command ->
  on_result:((string, error) result -> unit) ->
  unit ->
  unit
(** Send one typed command over the versioned protocol
    ({!request_v} of {!command_to_string}). Drive the kernel afterwards. *)

(** {1 Legacy helpers} *)

val request_update :
  Mcr_simos.Kernel.t -> path:string -> on_reply:(string -> unit) -> unit
(** Spawn the client. Drive the kernel afterwards; [on_reply] fires with
    "OK" or "FAIL <reason>" when the manager responds (or "ERR <err>" if
    the connection failed). For typed outcomes use
    [request_v ~command:"UPDATE"], whose refusal reasons parse with
    {!Mcr_error.of_string}. *)

val request_stats :
  Mcr_simos.Kernel.t -> path:string -> on_reply:(string -> unit) -> unit
(** Ask the manager for a rendered metrics snapshot ({!Mcr_obs.Metrics.render}).
    Replies immediately even while an update is in flight. *)

val request_deadlines :
  Mcr_simos.Kernel.t ->
  path:string ->
  quiesce_ns:int option ->
  update_ns:int option ->
  on_reply:(string -> unit) ->
  unit
(** Set the manager's default quiescence / whole-update deadlines
    ([DEADLINES <q|-> <u|->]; [None] clears one). Replies "OK" or
    "ERR usage: ...". *)

val request_retry :
  Mcr_simos.Kernel.t ->
  path:string ->
  retries:int ->
  backoff_ns:int ->
  on_reply:(string -> unit) ->
  unit
(** Set the manager's default retry policy ([RETRY <n> <backoff_ns>]). *)

val request_fault :
  Mcr_simos.Kernel.t ->
  path:string ->
  seed:int option ->
  on_reply:(string -> unit) ->
  unit
(** Arm ([FAULT <seed>]) or disarm ([FAULT OFF]) a seeded fault plan for
    subsequent updates — {!Mcr_fault.Fault.of_seed} applied per update. *)

val request_precopy :
  Mcr_simos.Kernel.t ->
  path:string ->
  enabled:bool ->
  ?max_rounds:int ->
  ?threshold_words:int ->
  on_reply:(string -> unit) ->
  unit ->
  unit
(** Enable ([PRECOPY ON [max_rounds] [threshold_words]]) or disable
    ([PRECOPY OFF]) pre-copy for subsequent updates on this manager
    lineage. *)

val request_workers :
  Mcr_simos.Kernel.t ->
  path:string ->
  workers:int ->
  on_reply:(string -> unit) ->
  unit
(** Set the transfer worker-pool size for subsequent updates on this
    manager lineage ([WORKERS <count>]). Replies "OK" or
    "ERR usage: WORKERS <count>" for a count below 1. *)

val request_remap :
  Mcr_simos.Kernel.t ->
  path:string ->
  enabled:bool ->
  on_reply:(string -> unit) ->
  unit
(** Enable ([REMAP ON]) or disable ([REMAP OFF]) the zero-copy page remap
    for subsequent updates on this manager lineage. *)

val request_slo :
  Mcr_simos.Kernel.t ->
  path:string ->
  downtime_ns:int option ->
  total_ns:int option ->
  on_reply:(string -> unit) ->
  unit
(** Set (or clear, with [None]) the lineage's SLO budgets
    ([SLO <downtime_ns|-> <total_ns|->]). Subsequent updates evaluate them
    into their flight records and count [mcr_slo_violations_total]. *)

val request_explain :
  Mcr_simos.Kernel.t ->
  ?version:int ->
  path:string ->
  nth:int option ->
  on_result:((string, error) result -> unit) ->
  unit ->
  unit
(** Fetch a flight record as JSON over the versioned protocol
    ([EXPLAIN LAST] for [nth = None], [EXPLAIN <n>] otherwise; [n] = 1 is
    the newest record). [Ok json] parses with {!Mcr_obs.Flight.of_json};
    an empty recorder answers [Error (Refused "no flight records")]. *)

val update_pending : Manager.t -> bool
(** Whether the manager has an outstanding mcr-ctl UPDATE request —
    the signal the host loop uses to invoke {!Manager.update}. *)
