(** The mcr-ctl client side.

    "The mcr-ctl tool allows users to signal live updates to the MCR
    backend using Unix domain sockets" (Section 8). {!request_update}
    spawns a client process in the simulated kernel that connects to the
    manager's control socket, sends UPDATE, and reports the reply. The
    reply arrives only after the update commits or rolls back, so the tool
    observes the atomic outcome. *)

val request_update :
  Mcr_simos.Kernel.t -> path:string -> on_reply:(string -> unit) -> unit
(** Spawn the client. Drive the kernel afterwards; [on_reply] fires with
    "OK" or "FAIL <reason>" when the manager responds (or "ERR <err>" if
    the connection failed). *)

val update_pending : Manager.t -> bool
(** Whether the manager has an outstanding mcr-ctl UPDATE request —
    the signal the host loop uses to invoke {!Manager.update}. *)
