(** The mcr-ctl client side.

    "The mcr-ctl tool allows users to signal live updates to the MCR
    backend using Unix domain sockets" (Section 8). {!request_update}
    spawns a client process in the simulated kernel that connects to the
    manager's control socket, sends UPDATE, and reports the reply. The
    reply arrives only after the update commits or rolls back, so the tool
    observes the atomic outcome. {!request_stats} sends STATS instead and
    receives the manager's current metrics snapshot immediately — it never
    waits on an update. *)

val request :
  Mcr_simos.Kernel.t -> path:string -> command:string -> on_reply:(string -> unit) -> unit
(** Spawn a client process that sends [command] over the control socket and
    passes the reply to [on_reply] (or "ERR <err>" if the connection
    failed). Drive the kernel afterwards. *)

val request_update :
  Mcr_simos.Kernel.t -> path:string -> on_reply:(string -> unit) -> unit
(** Spawn the client. Drive the kernel afterwards; [on_reply] fires with
    "OK" or "FAIL <reason>" when the manager responds (or "ERR <err>" if
    the connection failed). *)

val request_stats :
  Mcr_simos.Kernel.t -> path:string -> on_reply:(string -> unit) -> unit
(** Ask the manager for a rendered metrics snapshot ({!Mcr_obs.Metrics.render}).
    Replies immediately even while an update is in flight. *)

val request_deadlines :
  Mcr_simos.Kernel.t ->
  path:string ->
  quiesce_ns:int option ->
  update_ns:int option ->
  on_reply:(string -> unit) ->
  unit
(** Set the manager's default quiescence / whole-update deadlines
    ([DEADLINES <q|-> <u|->]; [None] clears one). Replies "OK" or
    "ERR usage: ...". *)

val request_retry :
  Mcr_simos.Kernel.t ->
  path:string ->
  retries:int ->
  backoff_ns:int ->
  on_reply:(string -> unit) ->
  unit
(** Set the manager's default retry policy ([RETRY <n> <backoff_ns>]). *)

val request_fault :
  Mcr_simos.Kernel.t ->
  path:string ->
  seed:int option ->
  on_reply:(string -> unit) ->
  unit
(** Arm ([FAULT <seed>]) or disarm ([FAULT OFF]) a seeded fault plan for
    subsequent updates — {!Mcr_fault.Fault.of_seed} applied per update. *)

val update_pending : Manager.t -> bool
(** Whether the manager has an outstanding mcr-ctl UPDATE request —
    the signal the host loop uses to invoke {!Manager.update}. *)
