(** The MCR runtime: checkpoint → restart → restore, atomically.

    A manager owns one running MCR-enabled program (all its processes). The
    update path follows Section 3:

    + {b Checkpoint}: request quiescence on every process barrier and run
      the system until all long-lived threads are parked.
    + {b Restart}: launch the new version with quiescence pre-requested (so
      it accepts no external events), install the inherited descriptors,
      and replay the old startup logs through mutable reinitialization.
    + {b Restore}: pair old and new processes by creation identity, run
      mutable tracing per pair (in parallel — the clock is charged the
      maximum pair cost), transfer post-startup descriptors, run the
      version's reinit handlers to re-create volatile quiescent states, and
      transfer any processes those handlers created.
    + {b Commit} (release the new version, terminate the old) or
      {b rollback} (terminate the new version, resume the old) — clients
      never observe a failed update.

    Managers also expose the controller channel ([mcr-ctl]) and the
    measurement hooks the benchmark harness consumes.

    {b Observability}: every manager owns a {!Mcr_obs.Metrics} registry
    (always on — snapshots are attached to each update {!report} and served
    over the control socket by the [STATS] command), and optionally an
    {!Mcr_obs.Trace} sink ([?trace] at {!launch}) into which the update
    pipeline emits nested stage spans ([update] ⊃ [quiesce],
    [restart_replay], [state_transfer] ⊃ per-pair [transfer.pair],
    [commit]/[rollback]) and the instrumented layers emit their instants.
    The sink is threaded through to the barriers, the replayer, the object
    graph analysis and the transfer engine of both program versions.
    Tracing never charges virtual time, so enabling it changes no measured
    number. *)

type t

val launch :
  Mcr_simos.Kernel.t ->
  ?instr:Mcr_program.Instr.t ->
  ?profiler:Mcr_quiesce.Profiler.t ->
  ?trace:Mcr_obs.Trace.t ->
  ?quiesce_deadline_ns:int ->
  ?update_deadline_ns:int ->
  ?retries:int ->
  ?retry_backoff_ns:int ->
  Mcr_program.Progdef.version ->
  t
(** Launch an MCR-enabled program: loads the version, starts startup-log
    recording, arms per-process first-quiescence processing (heap startup
    end + soft-dirty epoch), and spawns the controller thread listening on
    [ctl_path]. Drive the kernel afterwards ({!wait_startup}). [?trace]
    enables event tracing for this manager and every manager descended
    from it by updates.

    [?quiesce_deadline_ns], [?update_deadline_ns], [?retries] and
    [?retry_backoff_ns] set the manager's default update policy (see
    {!update}); the policy is shared across the manager lineage and can be
    changed at runtime over the control socket ([DEADLINES], [RETRY],
    [FAULT] — see {!Ctl}). If a stale control-socket file is left at
    [ctl_path] by an earlier unclean exit, it is unlinked before binding. *)

val kernel : t -> Mcr_simos.Kernel.t
val root_proc : t -> Mcr_simos.Kernel.proc
val root_image : t -> Mcr_program.Progdef.image
val version : t -> Mcr_program.Progdef.version
val images : t -> Mcr_program.Progdef.image list
(** All live process images of the program, root first. *)

val ctl_path : t -> string
(** Unix-socket path of the controller ("/run/mcr/<prog>.sock"). *)

val wait_startup : t -> ?max_ns:int -> unit -> bool
(** Run the kernel until the root process completes startup (reaches its
    first quiescent point). *)

val update_requested : t -> bool
(** An [mcr-ctl] client asked for an update (see {!Ctl}). *)

(** {1 Observability} *)

val trace : t -> Mcr_obs.Trace.t option
(** The event sink passed at {!launch}, if any. *)

val metrics : t -> Mcr_obs.Metrics.t
(** The manager's metrics registry. Shared across updates: the manager
    returned by a successful {!update} keeps the same registry, so counters
    accumulate over the whole lineage. *)

val metrics_snapshot : t -> Mcr_obs.Metrics.snapshot
(** Deterministic snapshot of the registry (refreshes the process gauge
    first). *)

(** {1 Live update} *)

type report = {
  success : bool;
  quiesce_ns : int;
  control_migration_ns : int;
  state_transfer_ns : int;
  total_ns : int;
  replayed_calls : int;
  live_calls : int;
  replay_conflicts : Mcr_replay.Replayer.conflict list;
  transfer_conflicts : Mcr_trace.Transfer.conflict list;
  transfers : (Mcr_replay.Logdefs.proc_key * Mcr_trace.Transfer.outcome) list;
  failure : string option;  (** Human-readable rollback cause. *)
  metrics : Mcr_obs.Metrics.snapshot;
      (** Registry snapshot taken when the update finished (every exit
          path, success or rollback). *)
}

val update :
  t ->
  ?dirty_only:bool ->
  ?quiesce_deadline_ns:int ->
  ?update_deadline_ns:int ->
  ?retries:int ->
  ?retry_backoff_ns:int ->
  ?fault:Mcr_fault.Fault.t ->
  Mcr_program.Progdef.version ->
  t * report
(** [update t v2] performs a live update. On success the returned manager
    owns the new version (the old processes are terminated); on rollback it
    is [t] itself and the old version has resumed. [dirty_only:false]
    disables soft-dirty filtering (ablation). Updating a manager whose
    processes are gone (already updated away from, or fully crashed) fails
    with a report, touching nothing.

    {b Deadlines.} [?quiesce_deadline_ns] bounds the checkpoint stage;
    blowing it rolls back with reason ["quiescence deadline exceeded"].
    [?update_deadline_ns] bounds the whole update (virtual time from the
    call); blowing it rolls back with reason ["update deadline exceeded"],
    which takes precedence over the quiescence reason when both apply.
    With no deadlines set, a non-converging quiescence fails with the
    legacy reason ["quiescence did not converge"] after the built-in 5 s
    budget. Every rollback increments both [mcr_rollbacks_total] and a
    per-reason counter [mcr_rollback_reason_<reason with underscores>_total].

    {b Retry.} [?retries] > 0 re-attempts a failed update up to that many
    times, sleeping [?retry_backoff_ns] × attempt between tries (virtual
    time) and counting [mcr_update_retries_total]. The fault plan is shared
    across attempts, so faults consumed by an attempt do not re-fire.

    {b Fault injection.} [?fault] threads a {!Mcr_fault.Fault} plan through
    the pipeline (see [doc/FAULTS.md]). Unset per-call options default to
    the manager's policy (set at {!launch} or over the control socket). *)

(** {1 Measurement hooks} *)

val quiesce_only : t -> int option
(** Run the quiescence protocol, measure convergence (virtual ns), then
    release. [None] if convergence failed. *)

val trace_statistics : t -> Mcr_trace.Objgraph.stats
(** Aggregate mutable-tracing statistics over all live processes (the
    Table 2 numbers). Read-only: quiesces nothing, transfers nothing. *)

type memory_stats = {
  app_bytes : int;  (** Touched application pages (the program's own RSS). *)
  mcr_bytes : int;
      (** Modeled MCR footprint: the preloaded runtime library per process,
          the in-memory startup log, and the (deliberately space-inefficient,
          Section 8) relocation/data-type tag records. *)
  resident_bytes : int;  (** [app_bytes + mcr_bytes]. *)
  tag_metadata_words : int;  (** In-band allocator metadata words. *)
  startup_log_entries : int;
  processes : int;
}

val memory_stats : t -> memory_stats
