(** The MCR runtime: checkpoint → restart → restore, atomically.

    A manager owns one running MCR-enabled program (all its processes). The
    update path follows Section 3:

    + {b Checkpoint}: request quiescence on every process barrier and run
      the system until all long-lived threads are parked.
    + {b Restart}: launch the new version with quiescence pre-requested (so
      it accepts no external events), install the inherited descriptors,
      and replay the old startup logs through mutable reinitialization.
    + {b Restore}: pair old and new processes by creation identity, run
      mutable tracing per pair (in parallel — the clock is charged the
      maximum pair cost), transfer post-startup descriptors, run the
      version's reinit handlers to re-create volatile quiescent states, and
      transfer any processes those handlers created.
    + {b Commit} (release the new version, terminate the old) or
      {b rollback} (terminate the new version, resume the old) — clients
      never observe a failed update.

    {b Pre-copy.} With {!Policy.t.precopy} enabled the stage order changes:
    the new version is launched and replayed {e while the old version keeps
    serving}, then iterative pre-copy rounds speculatively trace the old
    version's reachable graph and stage content hashes
    ({!Mcr_trace.Transfer.precopy_round}); only when the delta staged by a
    round falls under {!Policy.t.precopy_threshold_words} does quiescence
    open the service-interruption window, inside which the unchanged
    single-shot transfer runs with the staged work prepaid. The committed
    image is byte-for-byte the single-shot result, and a failure before the
    window opens costs zero downtime. If no round converges within
    {!Policy.t.precopy_max_rounds}, the update rolls back with
    {!Mcr_error.Precopy_diverged}.

    Managers also expose the controller channel ([mcr-ctl]) and the
    measurement hooks the benchmark harness consumes.

    {b Observability}: every manager owns a {!Mcr_obs.Metrics} registry
    (always on — snapshots are attached to each update {!report} and served
    over the control socket by the [STATS] command), and optionally an
    {!Mcr_obs.Trace} sink ([?trace] at {!launch}) into which the update
    pipeline emits nested stage spans ([update] ⊃ [quiesce],
    [restart_replay], [precopy] (with per-round [precopy.round] instants),
    [state_transfer] ⊃ per-pair [transfer.pair], [commit]/[rollback]) and
    the instrumented layers emit their instants. The sink is threaded
    through to the barriers, the replayer, the object graph analysis and
    the transfer engine of both program versions. Tracing never charges
    virtual time, so enabling it changes no measured number. *)

type t

val protocol_version : int
(** Version of the control-socket protocol this manager speaks (see
    {!Ctl.request_v} and doc/OBSERVABILITY.md for the wire format). *)

val launch :
  Mcr_simos.Kernel.t ->
  ?instr:Mcr_program.Instr.t ->
  ?profiler:Mcr_quiesce.Profiler.t ->
  ?trace:Mcr_obs.Trace.t ->
  ?policy:Policy.t ->
  Mcr_program.Progdef.version ->
  t
(** Launch an MCR-enabled program: loads the version, starts startup-log
    recording, arms per-process first-quiescence processing (heap startup
    end + soft-dirty epoch), and spawns the controller thread listening on
    [ctl_path]. Drive the kernel afterwards ({!wait_startup}). [?trace]
    enables event tracing for this manager and every manager descended
    from it by updates.

    [?policy] sets the manager's update policy ({!Policy.t}, default
    {!Policy.default}); it is shared across the manager lineage and can be
    changed at runtime over the control socket ([DEADLINES], [RETRY],
    [FAULT], [PRECOPY] — see {!Ctl}). It is the only spelling: the record
    with its builders replaced the per-field optional arguments. If a
    stale control-socket file is left at [ctl_path] by an earlier unclean
    exit, it is unlinked before binding. *)

val kernel : t -> Mcr_simos.Kernel.t
val root_proc : t -> Mcr_simos.Kernel.proc
val root_image : t -> Mcr_program.Progdef.image
val version : t -> Mcr_program.Progdef.version
val images : t -> Mcr_program.Progdef.image list
(** All live process images of the program, root first. *)

val ctl_path : t -> string
(** Unix-socket path of the controller ("/run/mcr/<prog>.sock"). *)

val wait_startup : t -> ?max_ns:int -> unit -> bool
(** Run the kernel until the root process completes startup (reaches its
    first quiescent point). *)

val update_requested : t -> bool
(** An [mcr-ctl] client asked for an update (see {!Ctl}). *)

val policy : t -> Policy.t
(** The manager's current update policy (shared across the lineage). *)

val set_policy : t -> Policy.t -> unit
(** Replace the lineage's policy — the programmatic equivalent of the
    control-socket policy commands. *)

(** {1 Observability} *)

val trace : t -> Mcr_obs.Trace.t option
(** The event sink passed at {!launch}, if any. *)

val metrics : t -> Mcr_obs.Metrics.t
(** The manager's metrics registry. Shared across updates: the manager
    returned by a successful {!update} keeps the same registry, so counters
    accumulate over the whole lineage. *)

val metrics_snapshot : t -> Mcr_obs.Metrics.snapshot
(** Deterministic snapshot of the registry (refreshes the process gauge
    first). *)

val flight_records : t -> Mcr_obs.Flight.record list
(** The lineage's flight-recorder ring: one {!Mcr_obs.Flight.record} per
    update attempt, newest first, capped at 32. The same ring serves
    [mcr-ctl EXPLAIN [LAST|<n>]] ([n] = 1 is the newest record). *)

(** {1 Live update} *)

type report = {
  success : bool;
  quiesce_ns : int;
  control_migration_ns : int;
  state_transfer_ns : int;
  total_ns : int;
  downtime_ns : int;
      (** Service interruption: virtual time from the quiescence request
          that opened the window to the end of the update. Equal to
          [total_ns] for single-shot updates; with pre-copy it covers only
          the final delta (0 if the update failed before the window
          opened). *)
  precopy_rounds : int;  (** Pre-copy rounds run (0 when disabled). *)
  precopy_bytes : int;  (** Bytes staged across all pre-copy rounds. *)
  replayed_calls : int;
  live_calls : int;
  replay_conflicts : Mcr_replay.Replayer.conflict list;
  transfer_conflicts : Mcr_trace.Transfer.conflict list;
  transfers : (Mcr_replay.Logdefs.proc_key * Mcr_trace.Transfer.outcome) list;
  failure : Mcr_error.rollback_reason option;
      (** Rollback cause ({!Mcr_error.to_string} renders the frozen
          human-readable form). *)
  metrics : Mcr_obs.Metrics.snapshot;
      (** Registry snapshot taken when the update finished (every exit
          path, success or rollback). *)
  flight : Mcr_obs.Flight.record;
      (** The attempt's flight record: downtime attribution (components sum
          to [downtime_ns] exactly), rollback explanation (stage, frozen
          reason, conflicting objects, fired fault points, retry lineage)
          and SLO evaluation. Also appended to {!flight_records}. *)
  parked_requests : int;
      (** Connections parked by this attempt ({!Policy.t.request_parking};
          0 with parking off). Conservation: [parked_requests =
          resumed_requests + aborted_requests] on every exit path — the
          attempt never strands a parked connection. *)
  resumed_requests : int;
      (** Parked connections moved into the surviving version's accept
          backlog when the attempt ended (commit or rollback). *)
  aborted_requests : int;
      (** Parked connections whose listener died before unpark. *)
  client_latency : Mcr_util.Stats.hist_summary option;
      (** Client-observed request-latency tail (p50/p90/p99/p99.9/max) from
          the [mcr_request_latency_ns] histogram, when a load driver
          ({!Mcr_workloads.Loadgen}) is feeding one into this manager's
          registry. *)
}

val update :
  t ->
  ?policy:Policy.t ->
  ?fault:Mcr_fault.Fault.t ->
  ?on_precopy_round:(int -> unit) ->
  Mcr_program.Progdef.version ->
  t * report
(** [update t v2] performs a live update. On success the returned manager
    owns the new version (the old processes are terminated); on rollback it
    is [t] itself and the old version has resumed. Updating a manager whose
    processes are gone (already updated away from, or fully crashed) fails
    with a report, touching nothing.

    {b Policy.} [?policy] overrides the manager's stored policy for this
    call only; with no override the stored policy applies. Per-field
    tweaks are spelled with the {!Policy} builders
    ([Policy.with_dirty_only false (Manager.policy t)] and friends).

    {b Checkpoint images.} When the effective policy carries
    {!Policy.t.image_dir}, the attempt snapshots a persistent checkpoint
    image ({!Mcr_image.Image}) of the old version at its quiescent point
    and writes it to [<dir>/<prog>-update-<seq>.mcrimg] with the
    attempt's flight record attached — on success {e and} on rollback
    (a rolled-back attempt's image is the input to
    [mcr-postmortem --replay]).

    {b Deadlines.} [quiesce_deadline_ns] bounds the checkpoint stage;
    blowing it rolls back with {!Mcr_error.Quiescence_deadline_exceeded}.
    [update_deadline_ns] bounds the whole update (virtual time from the
    call); blowing it rolls back with
    {!Mcr_error.Update_deadline_exceeded}, which takes precedence over the
    quiescence reason when both apply. With no deadlines set, a
    non-converging quiescence fails with
    {!Mcr_error.Quiescence_did_not_converge} after the built-in 5 s budget.
    Every rollback increments both [mcr_rollbacks_total] and the
    per-reason counter {!Mcr_error.metric_name}.

    {b Retry.} [retries] > 0 re-attempts a failed update up to that many
    times, sleeping [retry_backoff_ns] × attempt between tries (virtual
    time) and counting [mcr_update_retries_total]. The fault plan is shared
    across attempts, so faults consumed by an attempt do not re-fire.

    {b Fault injection.} [?fault] threads a {!Mcr_fault.Fault} plan through
    the pipeline (see [doc/FAULTS.md]); when unset, a policy
    {!Policy.t.fault_seed} arms {!Mcr_fault.Fault.of_seed}.

    {b Pre-copy.} With policy [precopy = true] the stage order changes as
    described above; [?on_precopy_round] is invoked after each round's
    speculative cost has elapsed (tests use it to mutate the still-serving
    old version deterministically between rounds). *)

(** {1 Persistent checkpoint images}

    Host-side spellings of the control-socket [SAVE <path>] /
    [RESTORE <path>] commands (see {!Ctl.command}): quiesce the program,
    capture or install a {!Mcr_image.Image}, release. *)

val save_image : t -> path:string -> (Mcr_image.Image.t, string) result
(** Quiesce, snapshot a persistent checkpoint image with the manager's
    current policy embedded, write it to [path] on the {e host}
    filesystem, release. *)

val restore_image :
  t -> Mcr_image.Image.t -> (Mcr_image.Image.install_report, string) result
(** Quiesce, install the image in place over the manager's live processes
    (same program and version required; see {!Mcr_image.Image.install}),
    release. The program resumes serving with the image's exact memory,
    dirty-tracking and allocator state. *)

(** {1 Measurement hooks} *)

val quiesce_only : t -> int option
(** Run the quiescence protocol, measure convergence (virtual ns), then
    release. [None] if convergence failed. *)

val trace_statistics : t -> Mcr_trace.Objgraph.stats
(** Aggregate mutable-tracing statistics over all live processes (the
    Table 2 numbers). Read-only: quiesces nothing, transfers nothing. *)

type memory_stats = {
  app_bytes : int;  (** Touched application pages (the program's own RSS). *)
  mcr_bytes : int;
      (** Modeled MCR footprint: the preloaded runtime library per process,
          the in-memory startup log, and the (deliberately space-inefficient,
          Section 8) relocation/data-type tag records. *)
  resident_bytes : int;  (** [app_bytes + mcr_bytes]. *)
  tag_metadata_words : int;  (** In-band allocator metadata words. *)
  startup_log_entries : int;
  processes : int;
}

val memory_stats : t -> memory_stats
