(** Generic control-socket listener — the server half of the v1 ctl
    protocol, factored out of {!Manager} so any controller (a single
    manager, the fleet coordinator) can serve a command family over the
    same wire format.

    The listener thread owns the whole connection lifecycle: bind, accept,
    read one request frame, classify it with {!Frame.parse_request}, answer
    the HELLO handshake and version mismatches itself, and hand everything
    else to [dispatch]. Dispatch runs on the listener thread inside the
    simulated kernel, so it may block (the manager's UPDATE parks on a
    semaphore until the host loop completes the update) — the reply is
    written when it returns. *)

val bind :
  Mcr_simos.Kernel.t -> path:string -> Mcr_simos.Sysdefs.result
(** [bind kernel ~path] unlinks a stale socket name (one with no live
    listener behind it) and then issues [Unix_listen]. Must run on the
    thread that will serve the socket, at bind time: a stale name can
    appear at any point before the listen (e.g. the previous incarnation
    crashing after this one was spawned), so checking any earlier is a
    race. Binding over a live listener still fails with [EADDRINUSE]. *)

val spawn :
  Mcr_simos.Kernel.t ->
  Mcr_simos.Kernel.proc ->
  ?name:string ->
  path:string ->
  dispatch:(versioned:bool -> string -> string) ->
  unit ->
  unit
(** [spawn kernel proc ~path ~dispatch ()] starts a controller thread
    (named [?name], default ["mcr-ctl"]) in [proc] listening on the
    Unix-domain socket [path], binding via {!bind} (stale names are
    unlinked at bind time, on the listener thread; binding over a live
    listener is still refused). Per connection, [dispatch ~versioned cmd] must return
    the complete reply frame: callers build versioned replies with
    {!Frame.ok}/{!Frame.ok_payload}/{!Frame.err} and downgrade legacy ones
    themselves ([versioned] is false for pre-HELLO clients). *)
