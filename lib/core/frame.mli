(** The v1 ctl wire protocol: frame encoding and decoding.

    One module owns both directions of the socket protocol so the manager's
    controller thread and the {!Ctl} client cannot drift apart:

    - requests are ["HELLO <version>[ <command>]"] (versioned) or any other
      raw string (the pre-HELLO legacy protocol);
    - replies are ["OK"], ["OK <inline>"], ["OK\npayload"] or
      ["ERR <reason>"]; legacy UPDATE replies use ["FAIL <reason>"]. *)

val protocol_version : int
(** The ctl protocol version this build speaks (currently 1). *)

type error =
  | Version_mismatch of { client : int; server : int }
      (** The server refused the HELLO with [ERR version <server>]. *)
  | Refused of string  (** The server replied [ERR <reason>]. *)
  | Transport of string  (** Connection failure or an unparseable frame. *)

val pp_error : Format.formatter -> error -> unit

(** {1 Server side} *)

val ok : string
(** The bare success frame, ["OK"]. *)

val ok_inline : string -> string
(** [ok_inline v] is ["OK <v>"] — short single-line results. *)

val ok_payload : string -> string
(** [ok_payload p] is ["OK\n<p>"] — multi-line payloads (STATS, EXPLAIN). *)

val err : string -> string
(** [err reason] is ["ERR <reason>"]. *)

val legacy_update_frame : string -> string
(** Downgrade a versioned UPDATE result for a legacy connection:
    ["ERR <r>"] becomes ["FAIL <r>"], anything else passes through. *)

val parse_request :
  string -> [ `Hello of int * string option | `Malformed_hello | `Legacy of string ]
(** Classify an incoming request frame. [`Hello (v, cmd)] for
    ["HELLO <v>[ <cmd>]"] (no command, or an empty one, yields [None] /
    [Some ""] — the version handshake); [`Malformed_hello] when the version
    is not an integer; [`Legacy raw] otherwise. *)

(** {1 Client side} *)

val hello_frame : version:int -> command:string -> string
(** Encode a versioned request; an empty [command] is the bare handshake. *)

val parse_reply : version:int -> string -> (string, error) result
(** Decode a versioned reply. [Ok payload] for the three OK forms (the bare
    ["OK"] yields [""]); [Error (Version_mismatch _)] for
    ["ERR version <n>"]; [Error (Refused _)] for other [ERR] frames;
    [Error (Transport _)] for anything else. *)
