module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module P = Mcr_program.Progdef
module Instr = Mcr_program.Instr
module Loader = Mcr_program.Loader
module Barrier = Mcr_quiesce.Barrier
module Record = Mcr_replay.Record
module Replayer = Mcr_replay.Replayer
module Logdefs = Mcr_replay.Logdefs
module Objgraph = Mcr_trace.Objgraph
module Transfer = Mcr_trace.Transfer
module Heap = Mcr_alloc.Heap
module Pool = Mcr_alloc.Pool
module Aspace = Mcr_vmem.Aspace
module Addr = Mcr_vmem.Addr
module Trace = Mcr_obs.Trace
module Metrics = Mcr_obs.Metrics
module Flight = Mcr_obs.Flight
module Fault = Mcr_fault.Fault
module Err = Mcr_error
module Image = Mcr_image.Image

let reserved_fd_base = 1000
let protocol_version = Frame.protocol_version

(* Coordinator constant of the parallel transfer: relink the program and
   prelink shared libraries for the remapped immutable objects (Section 6). *)
let relink_ns = 25_000_000

type log_source = Recorder of Record.t | Replayed of Replayer.t

(* The manager's metric instruments; the registry itself travels across
   updates, so counters accumulate over the whole manager lineage. *)
type mset = {
  m_updates : Metrics.counter;
  m_commits : Metrics.counter;
  m_rollbacks : Metrics.counter;
  m_replayed : Metrics.counter;
  m_live : Metrics.counter;
  m_replay_conflicts : Metrics.counter;
  m_transfer_conflicts : Metrics.counter;
  m_transfer_pairs : Metrics.counter;
  m_transferred_objects : Metrics.counter;
  m_transferred_words : Metrics.counter;
  m_remapped_words : Metrics.counter;
  m_skipped_clean_words : Metrics.counter;
  m_precopy_bytes : Metrics.counter;
  m_processes : Metrics.gauge;
  m_quiesce_h : Metrics.histogram;
  m_cm_h : Metrics.histogram;
  m_st_h : Metrics.histogram;
  m_total_h : Metrics.histogram;
  m_downtime_h : Metrics.histogram;
  m_precopy_rounds_h : Metrics.histogram;
  m_pair_cost_h : Metrics.histogram;
  m_workers_g : Metrics.gauge;
  m_shard_words_h : Metrics.histogram;
  m_slo_violations : Metrics.counter;
  m_parked : Metrics.counter;
  m_resumed : Metrics.counter;
  m_aborted : Metrics.counter;
}

let make_mset metrics =
  {
    m_updates = Metrics.counter metrics "mcr_updates_total";
    m_commits = Metrics.counter metrics "mcr_update_commits_total";
    m_rollbacks = Metrics.counter metrics "mcr_update_rollbacks_total";
    m_replayed = Metrics.counter metrics "mcr_replayed_calls_total";
    m_live = Metrics.counter metrics "mcr_live_calls_total";
    m_replay_conflicts = Metrics.counter metrics "mcr_replay_conflicts_total";
    m_transfer_conflicts = Metrics.counter metrics "mcr_transfer_conflicts_total";
    m_transfer_pairs = Metrics.counter metrics "mcr_transfer_pairs_total";
    m_transferred_objects = Metrics.counter metrics "mcr_transferred_objects_total";
    m_transferred_words = Metrics.counter metrics "mcr_transferred_words_total";
    m_remapped_words = Metrics.counter metrics "mcr_transfer_remapped_words_total";
    m_skipped_clean_words =
      Metrics.counter metrics "mcr_transfer_skipped_clean_words_total";
    m_precopy_bytes = Metrics.counter metrics "mcr_precopy_bytes_total";
    m_processes = Metrics.gauge metrics "mcr_processes";
    m_quiesce_h = Metrics.histogram metrics "mcr_quiesce_ns";
    m_cm_h = Metrics.histogram metrics "mcr_control_migration_ns";
    m_st_h = Metrics.histogram metrics "mcr_state_transfer_ns";
    m_total_h = Metrics.histogram metrics "mcr_update_total_ns";
    m_downtime_h = Metrics.histogram metrics "mcr_update_downtime_ns";
    m_precopy_rounds_h =
      Metrics.histogram metrics ~bounds:[| 1; 2; 3; 4; 6; 8; 12; 16 |] "mcr_precopy_rounds";
    m_pair_cost_h = Metrics.histogram metrics "mcr_pair_cost_ns";
    m_workers_g = Metrics.gauge metrics "mcr_transfer_workers";
    m_shard_words_h = Metrics.histogram metrics "mcr_transfer_shard_words";
    m_slo_violations = Metrics.counter metrics "mcr_slo_violations_total";
    m_parked = Metrics.counter metrics "mcr_requests_parked_total";
    m_resumed = Metrics.counter metrics "mcr_requests_resumed_total";
    m_aborted = Metrics.counter metrics "mcr_requests_aborted_total";
  }

type t = {
  kernel : K.t;
  instr : Instr.t;
  prog_version : P.version;
  root_proc : K.proc;
  root_image : P.image;
  members : P.image list ref;
  log_source : log_source;
  ctl_path : string;
  ctl_pending : bool ref;
  ctl_result : string ref;
  ctl_sem : string;
  trace : Trace.t option;
  metrics : Metrics.t;
  mset : mset;
  (* Shared (and mutable) across the manager lineage — mcr-ctl commands
     adjust it between updates, and the manager a commit returns keeps
     honouring it. *)
  policy : Policy.t ref;
  (* The flight recorder ring: one record per update attempt, newest first,
     capped. Shared across the lineage like the metrics registry so
     EXPLAIN works against whichever incarnation is serving. *)
  flight_log : Flight.record list ref;
  flight_seq : int ref;
}

type report = {
  success : bool;
  quiesce_ns : int;
  control_migration_ns : int;
  state_transfer_ns : int;
  total_ns : int;
  downtime_ns : int;
  precopy_rounds : int;
  precopy_bytes : int;
  replayed_calls : int;
  live_calls : int;
  replay_conflicts : Replayer.conflict list;
  transfer_conflicts : Transfer.conflict list;
  transfers : (Logdefs.proc_key * Transfer.outcome) list;
  failure : Err.rollback_reason option;
  metrics : Metrics.snapshot;
  flight : Flight.record;
  parked_requests : int;
  resumed_requests : int;
  aborted_requests : int;
  client_latency : Mcr_util.Stats.hist_summary option;
}

let kernel t = t.kernel
let root_proc t = t.root_proc
let root_image t = t.root_image
let version t = t.prog_version
let images t = List.filter (fun (im : P.image) -> K.alive im.P.i_proc) !(t.members)
let ctl_path t = t.ctl_path
let update_requested t = !(t.ctl_pending)
let trace t = t.trace
let metrics (t : t) = t.metrics
let policy t = !(t.policy)
let set_policy t p = t.policy := p

let metrics_snapshot (t : t) =
  Metrics.set t.mset.m_processes (List.length (images t));
  Metrics.snapshot t.metrics

let flight_records t = !(t.flight_log)

(* ------------------------------------------------------------------ *)
(* Image bookkeeping hooks *)

let first_quiesce_heap_hook (im : P.image) =
  Heap.end_startup im.P.i_heap;
  (* the startup checkpoint owns the "startup" epoch; pre-copy rounds and
     the transfer own their own ("mcr.precopy", "mcr.transfer") so no
     consumer can clobber another's dirty baseline *)
  Aspace.epoch_reset im.P.i_aspace ~name:"startup"

let track_members ?trace members (img : P.image) =
  members := !members @ [ img ];
  Barrier.set_trace img.P.i_barrier trace;
  img.P.i_first_quiesce_hooks <- first_quiesce_heap_hook :: img.P.i_first_quiesce_hooks;
  img.P.i_child_hooks <-
    (fun child ->
      members := !members @ [ child ];
      Barrier.set_trace child.P.i_barrier trace)
    :: img.P.i_child_hooks

(* ------------------------------------------------------------------ *)
(* Controller thread (the libmcr side of mcr-ctl) *)

(* Policy commands accepted over the control socket. [None] means the
   command is not a policy command (generic ERR). *)
let policy_command policy cmd =
  let words =
    String.split_on_char ' ' (String.trim cmd) |> List.filter (fun s -> s <> "")
  in
  let ns_opt = function
    | "-" -> Ok None
    | s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> Ok (Some n)
        | _ -> Error ())
  in
  match words with
  | "DEADLINES" :: rest -> begin
      match rest with
      | [ q; u ] -> begin
          match (ns_opt q, ns_opt u) with
          | Ok q, Ok u ->
              policy := Policy.with_deadlines ~quiesce_ns:q ~update_ns:u !policy;
              Some "OK"
          | _ -> Some "ERR usage: DEADLINES <quiesce_ns|-> <update_ns|->"
        end
      | _ -> Some "ERR usage: DEADLINES <quiesce_ns|-> <update_ns|->"
    end
  | "RETRY" :: rest -> begin
      match rest with
      | [ n; b ] -> begin
          match (int_of_string_opt n, int_of_string_opt b) with
          | Some n, Some b when n >= 0 && b >= 0 ->
              policy := { !policy with Policy.retries = n; retry_backoff_ns = b };
              Some "OK"
          | _ -> Some "ERR usage: RETRY <count> <backoff_ns>"
        end
      | _ -> Some "ERR usage: RETRY <count> <backoff_ns>"
    end
  | "FAULT" :: rest -> begin
      match rest with
      | [ "OFF" ] ->
          policy := Policy.with_fault_seed None !policy;
          Some "OK"
      | [ s ] -> begin
          match int_of_string_opt s with
          | Some seed ->
              policy := Policy.with_fault_seed (Some seed) !policy;
              Some "OK"
          | None -> Some "ERR usage: FAULT <seed>|OFF"
        end
      | _ -> Some "ERR usage: FAULT <seed>|OFF"
    end
  | "PRECOPY" :: rest -> begin
      let usage = "ERR usage: PRECOPY ON [max_rounds] [threshold_words] | OFF" in
      match rest with
      | [ "OFF" ] ->
          policy := Policy.with_precopy false !policy;
          Some "OK"
      | "ON" :: knobs -> begin
          let apply ?max_rounds ?threshold_words () =
            match Policy.with_precopy ?max_rounds ?threshold_words true !policy with
            | p ->
                policy := p;
                Some "OK"
            | exception Invalid_argument _ -> Some usage
          in
          match knobs with
          | [] -> apply ()
          | [ r ] -> begin
              match int_of_string_opt r with
              | Some r -> apply ~max_rounds:r ()
              | None -> Some usage
            end
          | [ r; w ] -> begin
              match (int_of_string_opt r, int_of_string_opt w) with
              | Some r, Some w -> apply ~max_rounds:r ~threshold_words:w ()
              | _ -> Some usage
            end
          | _ -> Some usage
        end
      | _ -> Some usage
    end
  | "WORKERS" :: rest -> begin
      let usage = "ERR usage: WORKERS <count>" in
      match rest with
      | [ n ] -> begin
          match int_of_string_opt n with
          | Some n when n >= 1 ->
              policy := Policy.with_transfer_workers n !policy;
              Some "OK"
          | Some _ | None -> Some usage
        end
      | _ -> Some usage
    end
  | "REMAP" :: rest -> begin
      let usage = "ERR usage: REMAP ON|OFF" in
      match rest with
      | [ "ON" ] ->
          policy := Policy.with_transfer_remap true !policy;
          Some "OK"
      | [ "OFF" ] ->
          policy := Policy.with_transfer_remap false !policy;
          Some "OK"
      | _ -> Some usage
    end
  | "SLO" :: rest -> begin
      let usage = "ERR usage: SLO <downtime_ns|-> <total_ns|->" in
      match rest with
      | [ d; u ] -> begin
          match (ns_opt d, ns_opt u) with
          | Ok d, Ok u ->
              policy := Policy.with_slo ~downtime_ns:d ~total_ns:u !policy;
              Some "OK"
          | _ -> Some usage
        end
      | _ -> Some usage
    end
  | "PARKING" :: rest -> begin
      let usage = "ERR usage: PARKING ON [drain_ns] | OFF" in
      match rest with
      | [ "OFF" ] ->
          policy := Policy.with_request_parking false !policy;
          Some "OK"
      | [ "ON" ] ->
          policy := Policy.with_request_parking true !policy;
          Some "OK"
      | [ "ON"; d ] -> begin
          match int_of_string_opt d with
          | Some d when d >= 0 ->
              policy := Policy.with_request_parking ~drain_ns:d true !policy;
              Some "OK"
          | Some _ | None -> Some usage
        end
      | _ -> Some usage
    end
  | _ -> None

(* SAVE/RESTORE serve persistent checkpoint images over the control
   socket. Dispatch runs on the controller thread of the cooperative
   scheduler, so the capture instant is atomic by construction: no other
   simulated thread can interleave a write between two captured words.
   The image file itself lives on the host filesystem — it must survive
   kernel teardown. *)
let checkpoint_command ~live ~policy cmd =
  let words =
    String.split_on_char ' ' (String.trim cmd) |> List.filter (fun s -> s <> "")
  in
  match words with
  | "SAVE" :: rest -> (
      match rest with
      | [ path ] -> (
          match live () with
          | [] -> Some (Error "program not running")
          | members -> (
              let kernel = (List.hd members).P.i_kernel in
              match
                Image.save kernel ~path ~members
                  ~policy_text:(Policy.to_kv !policy) ()
              with
              | Ok img -> Some (Ok (string_of_int (Image.fingerprint img)))
              | Error e -> Some (Error (Image.error_to_string e))))
      | _ -> Some (Error "usage: SAVE <path>"))
  | "RESTORE" :: rest -> (
      match rest with
      | [ path ] -> (
          match Image.read ~path with
          | Error e -> Some (Error (Image.error_to_string e))
          | Ok img -> (
              match live () with
              | [] -> Some (Error "program not running")
              | members -> (
                  match Image.install img ~members with
                  | Ok r ->
                      Some
                        (Ok
                           (Printf.sprintf "paired=%d skipped=%d unmatched=%d fingerprint=%d"
                              r.Image.paired_procs r.Image.skipped_saved_procs
                              r.Image.unmatched_live_procs (Image.fingerprint img)))
                  | Error e -> Some (Error (Image.error_to_string e)))))
      | _ -> Some (Error "usage: RESTORE <path>"))
  | _ -> None

(* EXPLAIN serves the flight-recorder ring: 1 is the newest record. *)
let explain_nth flight_log n =
  match List.nth_opt !flight_log (n - 1) with
  | Some r -> Ok (Flight.to_json r)
  | None ->
      Error
        (if !flight_log = [] then "no flight records"
         else Printf.sprintf "no flight record %d" n)

let spawn_ctl kernel proc ~ctl_path ~ctl_pending ~ctl_result ~ctl_sem ~stats ~explain ~policy
    ~checkpoint =
  let dispatch ~versioned cmd =
    let has_prefix p =
      String.length cmd >= String.length p && String.sub cmd 0 (String.length p) = p
    in
    if has_prefix "UPDATE" then begin
      ctl_pending := true;
      ignore (K.syscall (S.Sem_wait { name = ctl_sem; timeout_ns = None }));
      if versioned then !ctl_result else Frame.legacy_update_frame !ctl_result
    end
    else if has_prefix "STATS" then
      (* metrics snapshots are cheap and never block on the update
         semaphore: reply immediately *)
      if versioned then Frame.ok_payload (stats ()) else stats ()
    else if has_prefix "EXPLAIN" then begin
      let arg = String.trim (String.sub cmd 7 (String.length cmd - 7)) in
      let nth =
        match arg with
        | "" | "LAST" -> Some 1
        | s -> (
            match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)
      in
      match nth with
      | None -> if versioned then Frame.err "usage: EXPLAIN [LAST|<n>]" else "ERR"
      | Some n -> (
          match explain n with
          | Ok json ->
              (* legacy connections get the raw payload, like legacy STATS *)
              if versioned then Frame.ok_payload json else json
          | Error e -> if versioned then Frame.err e else "ERR")
    end
    else begin
      match checkpoint cmd with
      | Some (Ok v) -> if versioned then Frame.ok_inline v else "OK"
      | Some (Error e) -> if versioned then Frame.err e else "ERR"
      | None -> (
          match policy_command policy cmd with
          | Some r -> r
          | None -> if versioned then "ERR unknown command" else "ERR")
    end
  in
  Ctl_server.spawn kernel proc ~path:ctl_path ~dispatch ()

(* ------------------------------------------------------------------ *)
(* Launch *)

let stats_text ~metrics ~mset ~live () =
  Metrics.set mset.m_processes (List.length (live ()));
  Metrics.render (Metrics.snapshot metrics)

let make_manager kernel instr prog_version root_proc root_image members log_source ~trace
    ~metrics ~policy =
  let mset = make_mset metrics in
  let ctl_path = "/run/mcr/" ^ prog_version.P.prog ^ ".sock" in
  let ctl_pending = ref false in
  let ctl_result = ref "" in
  let ctl_sem = Printf.sprintf "mcr.ctl.done.%d" (K.pid root_proc) in
  let flight_log = ref [] in
  let flight_seq = ref 0 in
  let live () = List.filter (fun (im : P.image) -> K.alive im.P.i_proc) !members in
  (* Ctl_server.spawn unlinks a stale socket name before binding *)
  spawn_ctl kernel root_proc ~ctl_path ~ctl_pending ~ctl_result ~ctl_sem
    ~stats:(stats_text ~metrics ~mset ~live)
    ~explain:(explain_nth flight_log) ~policy
    ~checkpoint:(checkpoint_command ~live ~policy);
  {
    kernel;
    instr;
    prog_version;
    root_proc;
    root_image;
    members;
    log_source;
    ctl_path;
    ctl_pending;
    ctl_result;
    ctl_sem;
    trace;
    metrics;
    mset;
    policy;
    flight_log;
    flight_seq;
  }

let launch kernel ?(instr = Instr.full) ?profiler ?trace ?policy prog_version =
  let members = ref [] in
  let image_slot = ref None in
  let proc =
    Loader.launch kernel ~instr ?profiler prog_version ~on_image:(fun img ->
        image_slot := Some img;
        track_members ?trace members img)
  in
  let image =
    match !image_slot with Some i -> i | None -> invalid_arg "Manager.launch: no image"
  in
  let recorder = Record.start kernel image in
  let base = Option.value policy ~default:Policy.default in
  make_manager kernel instr prog_version proc image members (Recorder recorder) ~trace
    ~metrics:(Metrics.create ()) ~policy:(ref base)

let wait_startup t ?(max_ns = 10_000_000_000) () =
  K.run_until t.kernel
    ~max_ns:(K.clock_ns t.kernel + max_ns)
    (fun () -> t.root_image.P.i_startup_complete)

(* ------------------------------------------------------------------ *)
(* Quiescence *)

let request_all t = List.iter (fun (im : P.image) -> Barrier.request im.P.i_barrier) (images t)

let all_quiesced t =
  List.for_all (fun (im : P.image) -> Barrier.quiesced im.P.i_barrier) (images t)

let release_all t =
  List.iter
    (fun (im : P.image) ->
      if Barrier.requested im.P.i_barrier then Barrier.release im.P.i_barrier)
    (images t)

let quiesce_only t =
  let t0 = K.clock_ns t.kernel in
  request_all t;
  let ok = K.run_until t.kernel ~max_ns:(t0 + 1_000_000_000) (fun () -> all_quiesced t) in
  let elapsed = K.clock_ns t.kernel - t0 in
  release_all t;
  if ok then Some elapsed else None

(* ------------------------------------------------------------------ *)
(* Persistent checkpoint images (host-side API; the ctl spellings are
   SAVE/RESTORE, handled by [checkpoint_command]) *)

let with_quiesced t f =
  if images t = [] then Error "program not running"
  else begin
    let t0 = K.clock_ns t.kernel in
    request_all t;
    let ok =
      K.run_until t.kernel ~max_ns:(t0 + 5_000_000_000) (fun () -> all_quiesced t)
    in
    if not ok then begin
      release_all t;
      Error (Err.to_string Err.Quiescence_did_not_converge)
    end
    else begin
      let r = f () in
      release_all t;
      r
    end
  end

let save_image t ~path =
  with_quiesced t (fun () ->
      match
        Image.save t.kernel ~path ~members:(images t)
          ~policy_text:(Policy.to_kv !(t.policy)) ()
      with
      | Ok img -> Ok img
      | Error e -> Error (Image.error_to_string e))

let restore_image t img =
  with_quiesced t (fun () ->
      match Image.install img ~members:(images t) with
      | Ok rep -> Ok rep
      | Error e -> Error (Image.error_to_string e))

(* ------------------------------------------------------------------ *)
(* Read-only measurement hooks *)

let merge_side (a : Objgraph.side) (b : Objgraph.side) =
  a.Objgraph.ptr <- a.Objgraph.ptr + b.Objgraph.ptr;
  a.Objgraph.src_static <- a.Objgraph.src_static + b.Objgraph.src_static;
  a.Objgraph.src_dynamic <- a.Objgraph.src_dynamic + b.Objgraph.src_dynamic;
  a.Objgraph.targ_static <- a.Objgraph.targ_static + b.Objgraph.targ_static;
  a.Objgraph.targ_dynamic <- a.Objgraph.targ_dynamic + b.Objgraph.targ_dynamic;
  a.Objgraph.targ_lib <- a.Objgraph.targ_lib + b.Objgraph.targ_lib

let trace_statistics t =
  let acc =
    {
      Objgraph.precise =
        { Objgraph.ptr = 0; src_static = 0; src_dynamic = 0; targ_static = 0; targ_dynamic = 0;
          targ_lib = 0 };
      likely =
        { Objgraph.ptr = 0; src_static = 0; src_dynamic = 0; targ_static = 0; targ_dynamic = 0;
          targ_lib = 0 };
    }
  in
  List.iter
    (fun im ->
      let a = Objgraph.analyze im in
      merge_side acc.Objgraph.precise a.Objgraph.stats.Objgraph.precise;
      merge_side acc.Objgraph.likely a.Objgraph.stats.Objgraph.likely)
    (images t);
  acc

type memory_stats = {
  app_bytes : int;
  mcr_bytes : int;
  resident_bytes : int;
  tag_metadata_words : int;
  startup_log_entries : int;
  processes : int;
}

(* Footprint model for the MCR runtime, calibrated to the paper's numbers:
   libmcr.so plus per-process runtime structures, a fat record per tagged
   object ("our tags ... are extremely space-inefficient", Section 8), and
   the in-memory startup log. *)
let libmcr_bytes_per_proc = 96 * 1024
let tag_record_bytes = 240
let log_entry_bytes = 256

let memory_stats t =
  let imgs = images t in
  let app =
    List.fold_left (fun acc (im : P.image) -> acc + Aspace.touched_bytes im.P.i_aspace) 0 imgs
  in
  let tags =
    List.fold_left
      (fun acc (im : P.image) ->
        acc
        + Heap.metadata_words im.P.i_heap
        + Heap.metadata_words im.P.i_lib_heap
        + List.fold_left (fun a (_, p) -> a + (Pool.stats p).Pool.tag_words) 0 im.P.i_pools)
      0 imgs
  in
  let log_entries =
    match t.log_source with
    | Recorder r -> Record.entry_count r
    | Replayed r ->
        List.fold_left
          (fun acc (l : Logdefs.plog) -> acc + List.length l.Logdefs.entries)
          0 (Replayer.new_logs r)
  in
  let instrumented = t.instr.Instr.static_instr || t.instr.Instr.dynamic_instr in
  let mcr =
    if not instrumented then 0
    else
      (List.length imgs * libmcr_bytes_per_proc)
      + (tags / 2 * tag_record_bytes) (* 2 in-band words per tagged object *)
      + (log_entries * log_entry_bytes)
  in
  {
    app_bytes = app;
    mcr_bytes = mcr;
    resident_bytes = app + mcr;
    tag_metadata_words = tags;
    startup_log_entries = log_entries;
    processes = List.length imgs;
  }

(* ------------------------------------------------------------------ *)
(* The live update *)

let respond_ctl t result =
  if !(t.ctl_pending) then begin
    t.ctl_result := result;
    K.post_semaphore t.kernel t.ctl_sem;
    (* let the controller thread deliver the reply *)
    K.run_for t.kernel 5_000_000;
    t.ctl_pending := false
  end

let reinit_ctx (im : P.image) th =
  { P.kernel = im.P.i_kernel; thread = th; proc = im.P.i_proc; image = im }

(* The whole pipeline in one pass. Without pre-copy the stage order is the
   paper's checkpoint/restart/restore: quiesce -> restart+replay ->
   transfer -> commit, and the service-interruption window is the whole
   update. With [pol.precopy] the old version keeps serving while the new
   version starts up and delta rounds speculatively stage the reachable
   graph; only then does quiescence open the window, so downtime is the
   final delta, not the bulk transfer. *)
let update_once t ~(pol : Policy.t) ?(attempt = 0) ?(prior = []) ?fault ?on_precopy_round
    new_version =
  let k = t.kernel in
  let t0 = K.clock_ns k in
  let tr = t.trace in
  (match fault with Some f -> Fault.set_trace f tr | None -> ());
  let mpid = K.pid t.root_proc in
  let dirty_only = pol.Policy.dirty_only in
  let workers = pol.Policy.transfer_workers in
  let quiesce_deadline_ns = pol.Policy.quiesce_deadline_ns in
  let update_deadline_ns = pol.Policy.update_deadline_ns in
  let precopy_enabled = pol.Policy.precopy in
  (* The service-interruption window opens when quiescence is requested:
     immediately for single-shot updates, only after the pre-copy rounds
     otherwise. Failures before the window opens cost zero downtime. *)
  let window_start = ref (if precopy_enabled then None else Some t0) in
  let downtime_ns () =
    match !window_start with Some w -> K.clock_ns k - w | None -> 0
  in
  let precopy_rounds_done = ref 0 in
  let precopy_bytes_staged = ref 0 in
  (* ---- in-flight request parking. Listeners are parked (new connections
     queue kernel-side instead of getting ECONNREFUSED) just before the
     window opens, the old version gets a bounded drain to finish requests
     it already accepted, and whichever version survives the attempt
     unparks — listener descriptors are shared across versions, so the
     parked queue drains into the survivor's accept backlog. ---- *)
  let parking_enabled = pol.Policy.request_parking in
  let pstats0 = K.parking_stats k in
  let parked_engaged = ref false in
  let member_procs imgs = List.map (fun (im : P.image) -> im.P.i_proc) imgs in
  let park_members () =
    if parking_enabled then begin
      let n =
        List.fold_left
          (fun acc p -> acc + K.park_listeners k p)
          0
          (member_procs (images t))
      in
      parked_engaged := true;
      Trace.instant tr ~pid:mpid ~cat:"stage"
        ~args:[ ("listeners", string_of_int n) ]
        "park";
      if pol.Policy.drain_ns > 0 then K.run_for k pol.Policy.drain_ns
    end
  in
  let unpark_members imgs =
    if !parked_engaged then begin
      let n =
        List.fold_left (fun acc p -> acc + K.unpark_listeners k p) 0 (member_procs imgs)
      in
      parked_engaged := false;
      Trace.instant tr ~pid:mpid ~cat:"stage"
        ~args:[ ("resumed", string_of_int n) ]
        "unpark"
    end
  in
  (* this attempt's conservation ledger entry, folded into the metrics and
     the report on every exit path *)
  let note_parking () =
    let s = K.parking_stats k in
    let pk = s.K.parked - pstats0.K.parked in
    let rs = s.K.resumed - pstats0.K.resumed in
    let ab = s.K.aborted - pstats0.K.aborted in
    Metrics.incr ~by:pk t.mset.m_parked;
    Metrics.incr ~by:rs t.mset.m_resumed;
    Metrics.incr ~by:ab t.mset.m_aborted;
    (pk, rs, ab)
  in
  let client_latency () =
    Option.map Metrics.hist_snapshot_summary
      (Metrics.find_histogram (Metrics.snapshot t.metrics) "mcr_request_latency_ns")
  in
  let note_rollback reason =
    Metrics.incr t.mset.m_rollbacks;
    Metrics.incr (Metrics.counter t.metrics (Err.metric_name reason))
  in
  let observe_end () =
    Metrics.observe t.mset.m_total_h (K.clock_ns k - t0);
    Metrics.observe t.mset.m_downtime_h (downtime_ns ());
    Metrics.observe t.mset.m_precopy_rounds_h !precopy_rounds_done;
    if !precopy_bytes_staged > 0 then
      Metrics.incr ~by:!precopy_bytes_staged t.mset.m_precopy_bytes
  in
  let deadline_exceeded () =
    match update_deadline_ns with Some d -> K.clock_ns k - t0 >= d | None -> false
  in
  (* ---- flight recorder accumulators. Each in-window segment is measured
     independently, at the point it elapses, so the components summing to
     downtime_ns is a real cross-check (property-tested to hold exactly on
     every pipeline path), not an identity. Recording itself never touches
     the clock. ---- *)
  (* persistent checkpoint image of the old version, snapped at its
     quiescent point when the policy asks for one; the flight record is
     attached and the file written once the attempt completes, success or
     rollback (a rolled-back attempt's image is exactly what
     [mcr-postmortem --replay] feeds on) *)
  let captured_image = ref None in
  let fb_quiesce = ref 0 in
  let fb_restart = ref 0 in
  let fb_trace = ref 0 in
  let fb_copy = ref 0 in
  let fb_spawn_join = ref 0 in
  let fb_relink = ref 0 in
  let fb_channel = ref 0 in
  let fb_handlers = ref 0 in
  let fb_rounds = ref [] in
  (* word counters, not durations: never part of the attribution sum *)
  let fb_remapped_words = ref 0 in
  let fb_skipped_clean_words = ref 0 in
  (* set on entry to every exit path (commit, rollback, pre-restart
     failure); the tail from there to the record build — ctl reply
     delivery, kills, releases — is the teardown segment *)
  let teardown_from = ref t0 in
  let explain reason ~stage =
    Some
      {
        Flight.e_reason = Err.to_string reason;
        e_stage = stage;
        e_conflicts =
          List.map
            (fun (c : Err.conflict_obj) ->
              {
                Flight.c_kind = c.Err.co_kind;
                c_addr = c.Err.co_addr;
                c_ty = c.Err.co_ty;
                c_callstack = c.Err.co_callstack;
                c_shard = c.Err.co_shard;
                c_round = c.Err.co_round;
                c_detail = c.Err.co_detail;
              })
            (Err.conflict_objs reason);
        e_fault =
          (match fault with
          | Some f -> (
              match Fault.fired f with
              | [] -> None
              | fired -> Some (String.concat "," fired))
          | None -> None);
      }
  in
  let build_flight ~success ~explanation =
    let seq = !(t.flight_seq) + 1 in
    t.flight_seq := seq;
    let teardown =
      match !window_start with Some _ -> K.clock_ns k - !teardown_from | None -> 0
    in
    let total_ns = K.clock_ns k - t0 in
    let dt = downtime_ns () in
    let slo =
      match (pol.Policy.slo_downtime_ns, pol.Policy.slo_total_ns) with
      | None, None -> None
      | d, u ->
          Some
            {
              Flight.s_downtime_budget_ns = d;
              s_total_budget_ns = u;
              s_downtime_ok = (match d with Some b -> dt <= b | None -> true);
              s_total_ok = (match u with Some b -> total_ns <= b | None -> true);
            }
    in
    (match slo with
    | Some s when Flight.slo_violated s -> Metrics.incr t.mset.m_slo_violations
    | _ -> ());
    let record =
      {
        Flight.f_seq = seq;
        f_attempt = attempt;
        f_prog = t.prog_version.P.prog;
        f_from = t.prog_version.P.version_tag;
        f_to = new_version.P.version_tag;
        f_success = success;
        f_start_ns = t0;
        f_total_ns = total_ns;
        f_downtime_ns = dt;
        f_precopy = precopy_enabled;
        f_workers = workers;
        f_remapped_words = !fb_remapped_words;
        f_skipped_clean_words = !fb_skipped_clean_words;
        f_rounds = List.rev !fb_rounds;
        f_attribution =
          {
            Flight.a_quiesce_ns = !fb_quiesce;
            a_restart_ns = !fb_restart;
            a_trace_ns = !fb_trace;
            a_copy_ns = !fb_copy;
            a_spawn_join_ns = !fb_spawn_join;
            a_relink_ns = !fb_relink;
            a_channel_ns = !fb_channel;
            a_handlers_ns = !fb_handlers;
            a_teardown_ns = teardown;
          };
        f_slo = slo;
        f_explanation = explanation;
        f_prior = prior;
      }
    in
    let kept = List.filteri (fun i _ -> i < 31) !(t.flight_log) in
    t.flight_log := record :: kept;
    (match (pol.Policy.image_dir, !captured_image) with
    | Some dir, Some img -> (
        let img = Image.with_flight_json img (Flight.to_json record) in
        let sanitize c =
          match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c | _ -> '-'
        in
        let base = String.map sanitize t.prog_version.P.prog in
        let path = Filename.concat dir (Printf.sprintf "%s-update-%d.mcrimg" base seq) in
        match Image.write img ~path with
        | Ok () -> Trace.instant tr ~pid:mpid ~cat:"stage" ~args:[ ("path", path) ] "image.write"
        | Error e ->
            Logs.warn (fun m ->
                m "checkpoint image write to %s failed: %s" path (Image.error_to_string e)))
    | _ -> ());
    record
  in
  Metrics.incr t.mset.m_updates;
  Trace.span_begin tr ~pid:mpid ~cat:"stage"
    ~args:
      [ ("from", t.prog_version.P.version_tag); ("to", new_version.P.version_tag);
        ("prog", t.prog_version.P.prog) ]
    "update";
  let fail_before_restart ~stage reason =
    teardown_from := K.clock_ns k;
    let reason_s = Err.to_string reason in
    release_all t;
    unpark_members (images t);
    let parked_requests, resumed_requests, aborted_requests = note_parking () in
    respond_ctl t ("ERR " ^ reason_s);
    note_rollback reason;
    observe_end ();
    Trace.instant tr ~pid:mpid ~cat:"stage" ~args:[ ("reason", reason_s) ] "update.fail";
    Trace.span_end tr ~pid:mpid ~cat:"stage" "update";
    let flight = build_flight ~success:false ~explanation:(explain reason ~stage) in
    ( t,
      {
        success = false;
        quiesce_ns = K.clock_ns k - t0;
        control_migration_ns = 0;
        state_transfer_ns = 0;
        total_ns = K.clock_ns k - t0;
        downtime_ns = downtime_ns ();
        precopy_rounds = !precopy_rounds_done;
        precopy_bytes = !precopy_bytes_staged;
        replayed_calls = 0;
        live_calls = 0;
        replay_conflicts = [];
        transfer_conflicts = [];
        transfers = [];
        failure = Some reason;
        metrics = metrics_snapshot t;
        flight;
        parked_requests;
        resumed_requests;
        aborted_requests;
        client_latency = client_latency ();
      } )
  in
  (* a manager whose processes are gone (already updated away from, or
     crashed) cannot be updated *)
  if images t = [] then fail_before_restart ~stage:"init" Err.Program_not_running
  else begin
  let set_refusals imgs f =
    List.iter (fun (im : P.image) -> Barrier.set_refusal im.P.i_barrier f) imgs
  in
  (* ---- checkpoint: quiesce the running version. Shared by both stage
     orders; the window opens here. ---- *)
  let quiesce_ns = ref 0 in
  let do_quiesce () =
    Trace.span_begin tr ~pid:mpid ~cat:"stage" "quiesce";
    (* park first, then drain: new arrivals queue kernel-side while the old
       version finishes what it already accepted, so the barrier finds the
       accept loops idle instead of mid-request *)
    park_members ();
    (* fault injection: while armed, old-version threads decline the barrier *)
    (match fault with
    | Some f when Fault.fires f Fault.Quiesce_refusal ->
        set_refusals (images t) (Some (fun () -> Fault.fires f Fault.Quiesce_refusal))
    | _ -> ());
    let wstart = K.clock_ns k in
    window_start := Some wstart;
    request_all t;
    let quiesce_budget = Option.value quiesce_deadline_ns ~default:5_000_000_000 in
    let max_ns =
      match update_deadline_ns with
      | Some u -> min (wstart + quiesce_budget) (t0 + u)
      | None -> wstart + quiesce_budget
    in
    let quiesce_ok = K.run_until k ~max_ns (fun () -> all_quiesced t) in
    (match fault with
    | Some f ->
        ignore (Fault.consume f Fault.Quiesce_refusal);
        set_refusals (images t) None
    | None -> ());
    Trace.span_end tr ~pid:mpid ~cat:"stage"
      ~args:[ ("converged", (if quiesce_ok then "yes" else "no")) ]
      "quiesce";
    if quiesce_ok then begin
      quiesce_ns := K.clock_ns k - wstart;
      Metrics.observe t.mset.m_quiesce_h !quiesce_ns;
      if pol.Policy.image_dir <> None then
        captured_image :=
          Some
            (Image.capture k ~members:(images t) ~policy_text:(Policy.to_kv pol)
               ~target_tag:new_version.P.version_tag ())
    end;
    (* attribution: all in-window time so far is quiescence wait, converged
       or not *)
    fb_quiesce := K.clock_ns k - wstart;
    quiesce_ok
  in
  let quiesce_failure_reason () =
    if deadline_exceeded () then Err.Update_deadline_exceeded
    else
      let elapsed =
        match !window_start with Some w -> K.clock_ns k - w | None -> 0
      in
      Barrier.failure_reason
        ~deadline_hit:
          (match quiesce_deadline_ns with Some d -> elapsed >= d | None -> false)
  in
  let pre_quiesce_failed =
    if precopy_enabled then None
    else if not (do_quiesce ()) then Some (quiesce_failure_reason ())
    else if deadline_exceeded () then Some Err.Update_deadline_exceeded
    else None
  in
  match pre_quiesce_failed with
  | Some reason -> fail_before_restart ~stage:"quiesce" reason
  | None -> begin
    let t1 = K.clock_ns k in
    let logs =
      match t.log_source with
      | Recorder r -> Record.logs r
      | Replayed r -> Replayer.new_logs r
    in
    (* global inheritance: every reserved-range descriptor from every old
       process, deduplicated (separability makes numbers globally unique).
       Reserved-range descriptors are created during startup, so the set is
       stable whether or not the old version is still serving (pre-copy). *)
    let inherited : (int * K.proc) list =
      List.fold_left
        (fun acc (im : P.image) ->
          List.fold_left
            (fun acc fd ->
              if fd >= reserved_fd_base && not (List.mem_assoc fd acc) then
                (fd, im.P.i_proc) :: acc
              else acc)
            acc
            (K.fds im.P.i_proc))
        [] (images t)
      |> List.rev
    in
    (* ---- restart: launch the new version under replay ---- *)
    Trace.span_begin tr ~pid:mpid ~cat:"stage" "restart_replay";
    let new_members = ref [] in
    let new_root_slot = ref None in
    let in_update = ref true in
    (* fault injection: new-version threads decline their startup barrier *)
    let arm_startup_hang (img : P.image) =
      match fault with
      | Some f when Fault.fires f Fault.Startup_hang ->
          Barrier.set_refusal img.P.i_barrier
            (Some (fun () -> Fault.fires f Fault.Startup_hang))
      | _ -> ()
    in
    let new_proc =
      Loader.launch k ~instr:t.instr new_version ~on_image:(fun img ->
          new_root_slot := Some img;
          track_members ?trace:tr new_members img;
          (* reinitiate quiescence detection before startup runs, so the new
             version is never exposed to external events (Section 5) *)
          Barrier.request img.P.i_barrier;
          arm_startup_hang img;
          img.P.i_child_hooks <-
            (fun child ->
              if !in_update then begin
                Barrier.request child.P.i_barrier;
                arm_startup_hang child
              end)
            :: img.P.i_child_hooks)
    in
    let new_root_image = Option.get !new_root_slot in
    List.iter
      (fun (fd, src) -> ignore (K.transfer_fd k ~src ~fd ~dst:new_proc ~at:fd))
      inherited;
    let rep =
      Replayer.start k ?trace:tr ?fault new_root_image ~logs
        ~inherited:(List.map fst inherited)
    in
    let old_proc_of_key key =
      match key with
      | Logdefs.Root -> Some t.root_proc
      | _ ->
          List.find_map
            (fun (l : Logdefs.plog) ->
              if l.Logdefs.key = key then K.find_proc k l.Logdefs.pid else None)
            logs
    in
    (* fault injection: syscall-level failures, scoped to new-version
       processes so the serving old version never sees them *)
    (match fault with
    | Some f
      when List.exists
             (function Fault.Syscall_failure _ -> true | _ -> false)
             (Fault.armed f) ->
        K.set_fault_hook k
          (Some
             (fun th call ->
               let pid = K.pid (K.thread_proc th) in
               if List.exists (fun (im : P.image) -> K.pid im.P.i_proc = pid) !new_members
               then Fault.syscall_result f ~call
               else None))
    | _ -> ());
    (* the new version gets its own controller thread; its replayed
       unix_listen inherits the control socket *)
    let new_ctl_pending = ref false in
    let new_ctl_result = ref "" in
    let new_ctl_sem = Printf.sprintf "mcr.ctl.done.%d" (K.pid new_proc) in
    let live_new () =
      List.filter (fun (im : P.image) -> K.alive im.P.i_proc) !new_members
    in
    spawn_ctl k new_proc ~ctl_path:t.ctl_path ~ctl_pending:new_ctl_pending
      ~ctl_result:new_ctl_result ~ctl_sem:new_ctl_sem
      ~stats:(stats_text ~metrics:t.metrics ~mset:t.mset ~live:live_new)
      ~explain:(explain_nth t.flight_log) ~policy:t.policy
      ~checkpoint:(checkpoint_command ~live:live_new ~policy:t.policy);
    let new_quiesced () =
      match live_new () with
      | [] -> false
      | imgs ->
          List.for_all
            (fun (im : P.image) ->
              im.P.i_startup_complete && Barrier.quiesced im.P.i_barrier)
            imgs
    in
    let rollback reason ~stage ~cm_ns ~st_ns ~transfers ~transfer_conflicts =
      teardown_from := K.clock_ns k;
      let reason_s = Err.to_string reason in
      in_update := false;
      K.set_fault_hook k None;
      Trace.span_begin tr ~pid:mpid ~cat:"stage" ~args:[ ("reason", reason_s) ] "rollback";
      List.iter
        (fun (im : P.image) ->
          (* remapped pages in the dying new image may still share frames
             with the surviving old image: give the survivor sole ownership
             so no shared frame outlives the window *)
          ignore (Aspace.detach_shared im.P.i_aspace);
          if K.alive im.P.i_proc then K.kill_process k im.P.i_proc ~status:1)
        !new_members;
      release_all t;
      unpark_members (images t);
      let parked_requests, resumed_requests, aborted_requests = note_parking () in
      respond_ctl t ("ERR " ^ reason_s);
      note_rollback reason;
      Metrics.incr ~by:(Replayer.replayed_calls rep) t.mset.m_replayed;
      Metrics.incr ~by:(Replayer.live_calls rep) t.mset.m_live;
      Metrics.incr ~by:(List.length (Replayer.conflicts rep)) t.mset.m_replay_conflicts;
      Metrics.incr ~by:(List.length transfer_conflicts) t.mset.m_transfer_conflicts;
      observe_end ();
      Trace.span_end tr ~pid:mpid ~cat:"stage" "rollback";
      Trace.instant tr ~pid:mpid ~cat:"stage" ~args:[ ("reason", reason_s) ] "update.fail";
      Trace.span_end tr ~pid:mpid ~cat:"stage" "update";
      let flight = build_flight ~success:false ~explanation:(explain reason ~stage) in
      ( t,
        {
          success = false;
          quiesce_ns = !quiesce_ns;
          control_migration_ns = cm_ns;
          state_transfer_ns = st_ns;
          total_ns = K.clock_ns k - t0;
          downtime_ns = downtime_ns ();
          precopy_rounds = !precopy_rounds_done;
          precopy_bytes = !precopy_bytes_staged;
          replayed_calls = Replayer.replayed_calls rep;
          live_calls = Replayer.live_calls rep;
          replay_conflicts = Replayer.conflicts rep;
          transfer_conflicts;
          transfers;
          failure = Some reason;
          metrics = metrics_snapshot t;
          flight;
          parked_requests;
          resumed_requests;
          aborted_requests;
          client_latency = client_latency ();
        } )
    in
    (* fault injection: kill the new version mid-startup *)
    (match fault with
    | Some f when Fault.consume f Fault.Startup_crash ->
        ignore (K.run_until k ~max_ns:(K.clock_ns k + 50_000_000) (fun () -> false));
        if K.alive new_proc then K.kill_process k new_proc ~status:139
    | _ -> ());
    let startup_max =
      let cap = t1 + 10_000_000_000 in
      match update_deadline_ns with Some d -> min cap (t0 + d) | None -> cap
    in
    let startup_ok =
      K.run_until k ~max_ns:startup_max (fun () ->
          new_quiesced ()
          || (not (K.alive new_proc))
          || Replayer.conflicts rep <> [])
    in
    (match fault with
    | Some f ->
        ignore (Fault.consume f Fault.Startup_hang);
        List.iter (fun (im : P.image) -> Barrier.set_refusal im.P.i_barrier None)
          !new_members
    | None -> ());
    let t2 = K.clock_ns k in
    let cm_ns = t2 - t1 in
    (* attribution: restart+replay elapses inside the window only for
       single-shot updates; under pre-copy it runs while the old version
       still serves *)
    if not precopy_enabled then fb_restart := cm_ns;
    Trace.span_end tr ~pid:mpid ~cat:"stage" "restart_replay";
    Metrics.observe t.mset.m_cm_h cm_ns;
    if not (K.alive new_proc) then
      rollback Err.Startup_crashed ~stage:"restart_replay" ~cm_ns ~st_ns:0 ~transfers:[]
        ~transfer_conflicts:[]
    else begin
      match Replayer.rollback_reason rep with
      | Some reason ->
          rollback reason ~stage:"restart_replay" ~cm_ns ~st_ns:0 ~transfers:[]
            ~transfer_conflicts:[]
      | None ->
    if deadline_exceeded () then
      rollback Err.Update_deadline_exceeded ~stage:"restart_replay" ~cm_ns ~st_ns:0
        ~transfers:[] ~transfer_conflicts:[]
    else if not (startup_ok && new_quiesced ()) then
      rollback Err.Startup_not_quiescent ~stage:"restart_replay" ~cm_ns ~st_ns:0
        ~transfers:[] ~transfer_conflicts:[]
    else begin
      (* ---- pre-copy: speculative tracing + staging rounds, old version
         still serving. Staging is host-side only (no new-version writes),
         so aborting here needs no undo; each round's speculative copy cost
         elapses on the clock concurrently with service. ---- *)
      let sessions : (Logdefs.proc_key, Transfer.precopy) Hashtbl.t = Hashtbl.create 8 in
      let precopy_epoch = "mcr.precopy" in
      let precopy_result =
        if not precopy_enabled then Ok ()
        else begin
          Trace.span_begin tr ~pid:mpid ~cat:"stage" "precopy";
          (* each attempt is a fresh pre-copy session: forget any epoch a
             previous (rolled-back) attempt left on the old images so round
             one stages the full copy set and pays full tracing *)
          List.iter
            (fun (im : P.image) -> Aspace.epoch_remove im.P.i_aspace ~name:precopy_epoch)
            (images t);
          let max_rounds = max 1 pol.Policy.precopy_max_rounds in
          let threshold = max 0 pol.Policy.precopy_threshold_words in
          let rec round r =
            if deadline_exceeded () then Error Err.Update_deadline_exceeded
            else begin
              incr precopy_rounds_done;
              let round_cost = ref 0 in
              let round_delta = ref 0 in
              List.iter
                (fun (key, _new_pid) ->
                  match old_proc_of_key key with
                  | Some oldp when K.alive oldp -> begin
                      match P.image_of_proc oldp with
                      | Some oi ->
                          let aspace = oi.P.i_aspace in
                          let since = Aspace.epoch_find aspace ~name:precopy_epoch in
                          let analysis = Objgraph.analyze ?trace:tr ?cost_since:since oi in
                          let session =
                            match Hashtbl.find_opt sessions key with
                            | Some s -> s
                            | None ->
                                let s = Transfer.precopy_create () in
                                Hashtbl.replace sessions key s;
                                s
                          in
                          let rs =
                            Transfer.precopy_round session ~old_image:oi ~analysis ?since
                              ~dirty_only ~workers ()
                          in
                          (* staging is host-side (no program ran), so the
                             write sequence is unchanged since [since] was
                             read: resetting now is the same mark *)
                          Aspace.epoch_reset aspace ~name:precopy_epoch;
                          (* rounds run per-pair in parallel, like transfers;
                             within a pair the worker pool shards the round,
                             so the pair pays its critical path *)
                          round_cost :=
                            max !round_cost
                              (Objgraph.trace_critical_ns analysis ~workers
                              + rs.Transfer.round_cost_ns);
                          round_delta := !round_delta + rs.Transfer.round_words;
                          precopy_bytes_staged :=
                            !precopy_bytes_staged + (rs.Transfer.round_words * Addr.word_size)
                      | None -> ()
                    end
                  | _ -> ())
                (Replayer.pairs rep);
              Trace.instant tr ~pid:mpid ~cat:"stage"
                ~args:
                  [ ("round", string_of_int r);
                    ("delta_words", string_of_int !round_delta);
                    ("cost_ns", string_of_int !round_cost) ]
                "precopy.round";
              fb_rounds :=
                { Flight.r_words = !round_delta; r_cost_ns = !round_cost } :: !fb_rounds;
              (* the old version keeps serving while the speculative copy
                 elapses — this is the whole point *)
              K.run_for k !round_cost;
              (match on_precopy_round with Some f -> f r | None -> ());
              if r >= 2 && !round_delta <= threshold then Ok ()
              else if r >= max_rounds then begin
                if max_rounds = 1 || !round_delta <= threshold then Ok ()
                else Error Err.Precopy_diverged
              end
              else round (r + 1)
            end
          in
          let res = round 1 in
          Trace.span_end tr ~pid:mpid ~cat:"stage"
            ~args:[ ("rounds", string_of_int !precopy_rounds_done) ]
            "precopy";
          res
        end
      in
      let window_failed =
        match precopy_result with
        | Error reason -> Some (reason, "precopy")
        | Ok () ->
            if not precopy_enabled then None
            else begin
              (* relinking the program and prelinking shared libraries for
                 the remapped immutable objects depends only on the new
                 binary, all fixed before the window — prepay it too, with
                 the old version still serving *)
              K.run_for k relink_ns;
              (* ---- the window opens: quiesce, pay only the delta ---- *)
              if not (do_quiesce ()) then Some (quiesce_failure_reason (), "quiesce")
              else if deadline_exceeded () then Some (Err.Update_deadline_exceeded, "quiesce")
              else None
            end
      in
      match window_failed with
      | Some (reason, stage) ->
          rollback reason ~stage ~cm_ns ~st_ns:0 ~transfers:[] ~transfer_conflicts:[]
      | None -> begin
      (* ---- restore: mutable tracing, in waves so reinit handlers can
         re-create volatile processes that then get their own transfer ---- *)
      Trace.span_begin tr ~pid:mpid ~cat:"stage" "state_transfer";
      let t2' = K.clock_ns k in
      let done_pairs = Hashtbl.create 8 in
      let transfers = ref [] in
      let transfer_conflicts = ref [] in
      let max_pair_cost = ref 0 in
      let pairs_done = ref 0 in
      let transfer_wave () =
        let fresh =
          List.filter (fun (key, _) -> not (Hashtbl.mem done_pairs key)) (Replayer.pairs rep)
        in
        let worked = ref false in
        List.iter
          (fun (key, new_pid) ->
            Hashtbl.replace done_pairs key ();
            match (old_proc_of_key key, K.find_proc k new_pid) with
            | Some oldp, Some newp when K.alive oldp && K.alive newp -> begin
                match (P.image_of_proc oldp, P.image_of_proc newp) with
                | Some oi, Some ni ->
                    worked := true;
                    let cost_since =
                      (* the pre-copy epoch discounts in-window tracing only
                         if this attempt's rounds actually paid for it *)
                      if Hashtbl.mem sessions key then
                        Aspace.epoch_find oi.P.i_aspace ~name:precopy_epoch
                      else None
                    in
                    let analysis = Objgraph.analyze ?trace:tr ?cost_since ?fault oi in
                    let outcome =
                      Transfer.run ~old_image:oi ~new_image:ni ~analysis ~dirty_only
                        ~remap:pol.Policy.transfer_remap
                        ?precopy:(Hashtbl.find_opt sessions key)
                        ~workers ?trace:tr ?fault ()
                    in
                    (* per-pair critical path: tracing and copying each run
                       sharded across the worker pool, so the pair pays the
                       max over shards of each phase, not the sum *)
                    let pair_cost =
                      outcome.Transfer.trace_critical_ns + outcome.Transfer.cost_ns
                    in
                    if pair_cost > !max_pair_cost then begin
                      max_pair_cost := pair_cost;
                      (* attribution follows the critical pair: its copy
                         critical path is the max shard, and whatever
                         cost_ns adds on top of that is the worker pool's
                         spawn/join overhead *)
                      let copy_crit =
                        if outcome.Transfer.workers > 1 then
                          Array.fold_left max 0 outcome.Transfer.shard_cost_ns
                        else outcome.Transfer.cost_ns
                      in
                      fb_trace := outcome.Transfer.trace_critical_ns;
                      fb_copy := copy_crit;
                      fb_spawn_join := outcome.Transfer.cost_ns - copy_crit
                    end;
                    transfers := (key, outcome) :: !transfers;
                    (* O(total-conflicts): accumulate reversed, reverse once
                       at the consumption points *)
                    transfer_conflicts :=
                      List.rev_append outcome.Transfer.conflicts !transfer_conflicts;
                    incr pairs_done;
                    Metrics.incr t.mset.m_transfer_pairs;
                    Metrics.incr ~by:outcome.Transfer.transferred_objects
                      t.mset.m_transferred_objects;
                    Metrics.incr ~by:outcome.Transfer.transferred_words
                      t.mset.m_transferred_words;
                    Metrics.incr ~by:outcome.Transfer.remapped_words
                      t.mset.m_remapped_words;
                    Metrics.incr ~by:outcome.Transfer.skipped_clean_words
                      t.mset.m_skipped_clean_words;
                    fb_remapped_words :=
                      !fb_remapped_words + outcome.Transfer.remapped_words;
                    fb_skipped_clean_words :=
                      !fb_skipped_clean_words + outcome.Transfer.skipped_clean_words;
                    Metrics.observe t.mset.m_pair_cost_h pair_cost;
                    (* pair transfers run in parallel — the charged time is
                       the max across pairs, so a begin/end pair cannot
                       represent one; a Complete event carries the pair's
                       own duration instead *)
                    Trace.complete tr ~pid:new_pid ~cat:"stage"
                      ~args:
                        [ ("pair", Format.asprintf "%a" Logdefs.pp_key key);
                          ("words", string_of_int outcome.Transfer.transferred_words);
                          ("objects", string_of_int outcome.Transfer.transferred_objects);
                          ("workers", string_of_int outcome.Transfer.workers) ]
                      ~dur_ns:pair_cost "transfer.pair";
                    Metrics.set t.mset.m_workers_g outcome.Transfer.workers;
                    if outcome.Transfer.workers > 1 then
                      Array.iteri
                        (fun s words ->
                          Metrics.observe t.mset.m_shard_words_h words;
                          Trace.complete tr ~pid:new_pid ~cat:"stage"
                            ~args:
                              [ ("pair", Format.asprintf "%a" Logdefs.pp_key key);
                                ("shard", string_of_int s);
                                ("words", string_of_int words) ]
                            ~dur_ns:
                              (outcome.Transfer.trace_shard_ns.(s)
                              + outcome.Transfer.shard_cost_ns.(s))
                            "transfer.shard")
                        outcome.Transfer.shard_words;
                    (* post-startup descriptors (open connections) move to
                       the paired process at the same numbers *)
                    List.iter
                      (fun fd ->
                        if fd < reserved_fd_base then
                          ignore (K.transfer_fd k ~src:oldp ~fd ~dst:newp ~at:fd))
                      (K.fds oldp)
                | _, _ -> ()
              end
            | _, _ -> ())
          fresh;
        !worked
      in
      ignore (transfer_wave ());
      (* volatile quiescent states: run the new version's reinit handlers *)
      let handler_threads =
        (* fault injection: a handler that spins forever without blocking.
           Each iteration makes a syscall (so the thread dies with its
           process after rollback) and charges time (so the clock reaches
           the settling horizon) *)
        let injected =
          match fault with
          | Some f when Fault.consume f Fault.Reinit_hang ->
              [
                K.spawn_thread k new_root_image.P.i_proc ~name:"reinit:fault-hang"
                  (fun th ->
                    K.push_frame th "reinit:fault-hang";
                    let rec spin () =
                      ignore (K.syscall S.Getpid);
                      K.charge k 50_000_000;
                      spin ()
                    in
                    spin ());
              ]
          | _ -> []
        in
        injected
        @ List.concat_map
            (fun (im : P.image) ->
              List.map
                (fun (name, run) ->
                  K.spawn_thread k im.P.i_proc ~name:("reinit:" ^ name) (fun th ->
                      K.push_frame th ("reinit:" ^ name);
                      run (reinit_ctx im th)))
                (P.reinit_handlers im.P.i_version))
            (live_new ())
      in
      (* wait until every handler has run to completion (or parked) AND the
         processes they re-created have quiesced — the bare new_quiesced
         predicate holds trivially before the handlers get scheduled *)
      let handlers_settled () =
        List.for_all
          (fun th -> (not (K.thread_alive th)) || K.blocked_in th <> None)
          handler_threads
      in
      let handlers_ok =
        K.run_until k
          ~max_ns:(K.clock_ns k + 2_000_000_000)
          (fun () -> handlers_settled () && new_quiesced ())
      in
      let waves = ref 0 in
      while transfer_wave () && !waves < 4 do
        incr waves;
        ignore (K.run_until k ~max_ns:(K.clock_ns k + 1_000_000_000) new_quiesced)
      done;
      (* attribution: everything that elapsed on the clock since the
         state-transfer phase opened was reinit-handler settling (the
         transfer waves themselves only accumulate charges) *)
      fb_handlers := K.clock_ns k - t2';
      (* parallel multiprocess transfer: the slowest pair bounds the
         parallel phase; the coordinator adds a constant (relinking the
         program and prelinking shared libraries for the remapped immutable
         objects, Section 6 — already prepaid under pre-copy) plus a
         per-process channel setup cost *)
      fb_relink := (if precopy_enabled then 0 else relink_ns);
      fb_channel := 2_000_000 * !pairs_done;
      (* Dedicated-core accounting keeps client machines live through the
         copy window — their connect/backoff timers fire inside it, which
         is what the latency bench measures. Single-core accounting (the
         default) freezes them, preserving historical downtime numbers. *)
      (if pol.Policy.concurrent_transfer then K.charge_concurrent else K.charge)
        k
        (!max_pair_cost + !fb_relink + !fb_channel);
      let t3 = K.clock_ns k in
      let st_ns = t3 - t2' in
      Trace.span_end tr ~pid:mpid ~cat:"stage"
        ~args:[ ("pairs", string_of_int !pairs_done) ]
        "state_transfer";
      Metrics.observe t.mset.m_st_h st_ns;
      if deadline_exceeded () then
        rollback Err.Update_deadline_exceeded ~stage:"state_transfer" ~cm_ns ~st_ns
          ~transfers:!transfers ~transfer_conflicts:(List.rev !transfer_conflicts)
      else if not handlers_ok then
        rollback Err.Reinit_not_quiesced ~stage:"state_transfer" ~cm_ns ~st_ns
          ~transfers:!transfers ~transfer_conflicts:(List.rev !transfer_conflicts)
      else begin
        match Transfer.rollback_reason (List.rev !transfer_conflicts) with
        | Some reason ->
            rollback reason ~stage:"state_transfer" ~cm_ns ~st_ns ~transfers:!transfers
              ~transfer_conflicts:(List.rev !transfer_conflicts)
        | None -> begin
        (* ---- commit ---- *)
        teardown_from := K.clock_ns k;
        Trace.span_begin tr ~pid:mpid ~cat:"stage" "commit";
        respond_ctl t "OK";
        List.iter
          (fun (im : P.image) ->
            (* the old image dies: detach any frames it shares with the new
               image (zero-copy remap) so the survivor owns its memory *)
            ignore (Aspace.detach_shared im.P.i_aspace);
            if K.alive im.P.i_proc then K.kill_process k im.P.i_proc ~status:0)
          (images t);
        (* the update window is over: close the transfer's dirty epoch on
           the surviving images so the next update starts it afresh *)
        List.iter
          (fun (im : P.image) ->
            Aspace.epoch_reset im.P.i_aspace ~name:"mcr.transfer")
          (live_new ());
        in_update := false;
        K.set_fault_hook k None;
        List.iter (fun (im : P.image) -> Barrier.release im.P.i_barrier) (live_new ());
        (* the survivor serves: parked connections drain FIFO into its
           accept backlogs (the listener descriptors were shared across
           versions, so the queue is already its own) *)
        unpark_members (live_new ());
        let parked_requests, resumed_requests, aborted_requests = note_parking () in
        let new_t =
          {
            kernel = k;
            instr = t.instr;
            prog_version = new_version;
            root_proc = new_proc;
            root_image = new_root_image;
            members = new_members;
            log_source = Replayed rep;
            ctl_path = t.ctl_path;
            ctl_pending = new_ctl_pending;
            ctl_result = new_ctl_result;
            ctl_sem = new_ctl_sem;
            trace = tr;
            metrics = t.metrics;
            mset = t.mset;
            policy = t.policy;
            flight_log = t.flight_log;
            flight_seq = t.flight_seq;
          }
        in
        Metrics.incr t.mset.m_commits;
        Metrics.incr ~by:(Replayer.replayed_calls rep) t.mset.m_replayed;
        Metrics.incr ~by:(Replayer.live_calls rep) t.mset.m_live;
        observe_end ();
        Trace.span_end tr ~pid:mpid ~cat:"stage" "commit";
        Trace.span_end tr ~pid:mpid ~cat:"stage" "update";
        let flight = build_flight ~success:true ~explanation:None in
        ( new_t,
          {
            success = true;
            quiesce_ns = !quiesce_ns;
            control_migration_ns = cm_ns;
            state_transfer_ns = st_ns;
            total_ns = K.clock_ns k - t0;
            downtime_ns = downtime_ns ();
            precopy_rounds = !precopy_rounds_done;
            precopy_bytes = !precopy_bytes_staged;
            replayed_calls = Replayer.replayed_calls rep;
            live_calls = Replayer.live_calls rep;
            replay_conflicts = [];
            transfer_conflicts = [];
            transfers = List.rev !transfers;
            failure = None;
            metrics = metrics_snapshot new_t;
            flight;
            parked_requests;
            resumed_requests;
            aborted_requests;
            client_latency = client_latency ();
          } )
        end
      end
      end
    end
    end
  end
  end

(* Public entry point: resolve the effective policy (manager's stored
   policy, overridden for this call by [?policy]), then run [update_once]
   with bounded retry. The fault plan is shared across attempts — a fault
   consumed by attempt [n] is gone on attempt [n+1], so transient injected
   failures are exactly the ones retry recovers from. *)
let update t ?policy ?fault ?on_precopy_round new_version =
  let pol = match policy with Some p -> p | None -> !(t.policy) in
  let fault =
    match fault with
    | Some _ as s -> s
    | None -> Option.map Fault.of_seed pol.Policy.fault_seed
  in
  let k = t.kernel in
  let rec attempt n prior =
    let t', rep =
      update_once t ~pol ~attempt:n ~prior ?fault ?on_precopy_round new_version
    in
    if rep.success || n >= pol.Policy.retries then (t', rep)
    else begin
      Metrics.incr (Metrics.counter t.metrics "mcr_update_retries_total");
      (* linear backoff in virtual time before the next attempt *)
      ignore
        (K.run_until k
           ~max_ns:(K.clock_ns k + (pol.Policy.retry_backoff_ns * (n + 1)))
           (fun () -> false));
      (* retry lineage: the next attempt's record carries this one (its own
         lineage emptied, so the chain stays flat) *)
      attempt (n + 1) (prior @ [ { rep.flight with Flight.f_prior = [] } ])
    end
  in
  attempt 0 []
