(* The v1 ctl wire protocol, factored out of the manager and client so both
   sides encode/decode through one tested module.

   Requests:  "HELLO <version>[ <command>]"   (versioned)
              anything else                   (legacy raw command)
   Replies:   "OK" | "OK <inline>" | "OK\n<payload>" | "ERR <reason>"
   Legacy UPDATE replies keep the pre-HELLO "FAIL <reason>" form. *)

let protocol_version = 1

type error =
  | Version_mismatch of { client : int; server : int }
  | Refused of string
  | Transport of string

let pp_error ppf = function
  | Version_mismatch { client; server } ->
      Format.fprintf ppf "protocol version mismatch (client %d, server %d)" client server
  | Refused reason -> Format.fprintf ppf "refused: %s" reason
  | Transport detail -> Format.fprintf ppf "transport error: %s" detail

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* ------------------------------------------------------------------ *)
(* Server side: reply encoding *)

let ok = "OK"
let ok_inline v = "OK " ^ v
let ok_payload p = "OK\n" ^ p
let err reason = "ERR " ^ reason

(* Uniform (versioned) response frames are "OK[\npayload]" / "ERR <reason>";
   the pre-HELLO protocol used "FAIL <reason>" for a refused UPDATE and raw
   payloads, which legacy connections must keep receiving verbatim. *)
let legacy_update_frame result =
  if has_prefix "ERR " result then "FAIL " ^ String.sub result 4 (String.length result - 4)
  else result

(* "HELLO <version>[ <command>]" -> `Hello (version, command option);
   anything else is a legacy raw command. *)
let parse_request raw =
  if has_prefix "HELLO" raw then begin
    let rest = String.trim (String.sub raw 5 (String.length raw - 5)) in
    let version_str, cmd =
      match String.index_opt rest ' ' with
      | Some i ->
          ( String.sub rest 0 i,
            Some (String.trim (String.sub rest (i + 1) (String.length rest - i - 1))) )
      | None -> (rest, None)
    in
    match int_of_string_opt version_str with
    | Some v -> `Hello (v, cmd)
    | None -> `Malformed_hello
  end
  else `Legacy raw

(* ------------------------------------------------------------------ *)
(* Client side: request encoding, reply decoding *)

let hello_frame ~version ~command =
  if command = "" then Printf.sprintf "HELLO %d" version
  else Printf.sprintf "HELLO %d %s" version command

let parse_reply ~version reply =
  if reply = "OK" then Ok ""
  else if has_prefix "OK\n" reply then Ok (String.sub reply 3 (String.length reply - 3))
  else if has_prefix "OK " reply then Ok (String.sub reply 3 (String.length reply - 3))
  else if has_prefix "ERR version " reply then begin
    match int_of_string_opt (String.sub reply 12 (String.length reply - 12)) with
    | Some server -> Error (Version_mismatch { client = version; server })
    | None -> Error (Refused (String.sub reply 4 (String.length reply - 4)))
  end
  else if has_prefix "ERR " reply then
    Error (Refused (String.sub reply 4 (String.length reply - 4)))
  else if reply = "ERR" then Error (Refused "unknown")
  else Error (Transport ("unexpected frame: " ^ reply))
