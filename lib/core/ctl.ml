module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs

let protocol_version = Manager.protocol_version

type error =
  | Version_mismatch of { client : int; server : int }
  | Refused of string
  | Transport of string

let pp_error ppf = function
  | Version_mismatch { client; server } ->
      Format.fprintf ppf "protocol version mismatch (client %d, server %d)" client server
  | Refused reason -> Format.fprintf ppf "refused: %s" reason
  | Transport detail -> Format.fprintf ppf "transport error: %s" detail

let request kernel ~path ~command ~on_reply =
  ignore
    (K.spawn_process kernel ~image:(K.Fresh_image (Mcr_vmem.Aspace.create ())) ~name:"mcr-ctl"
       ~entry:"main"
       ~main:(fun _th ->
         let rec connect attempts =
           match K.syscall (S.Unix_connect { path }) with
           | S.Ok_fd fd -> Some fd
           | S.Err S.ECONNREFUSED when attempts > 0 ->
               ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
               connect (attempts - 1)
           | _ -> None
         in
         match connect 100 with
         | None -> on_reply "ERR ECONNREFUSED"
         | Some fd -> (
             ignore (K.syscall (S.Write { fd; data = command }));
             match K.syscall (S.Read { fd = fd; max = 65536; nonblock = false }) with
             | S.Ok_data reply -> on_reply reply
             | S.Err e -> on_reply (Format.asprintf "ERR %a" S.pp_err e)
             | _ -> on_reply "ERR"))
       ())

(* Parse a versioned "OK[ payload]" / "OK\npayload" / "ERR <reason>" frame. *)
let parse_versioned ~version reply =
  let has_prefix p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  if reply = "OK" then Ok ""
  else if has_prefix "OK\n" reply then Ok (String.sub reply 3 (String.length reply - 3))
  else if has_prefix "OK " reply then Ok (String.sub reply 3 (String.length reply - 3))
  else if has_prefix "ERR version " reply then begin
    match int_of_string_opt (String.sub reply 12 (String.length reply - 12)) with
    | Some server -> Error (Version_mismatch { client = version; server })
    | None -> Error (Refused (String.sub reply 4 (String.length reply - 4)))
  end
  else if has_prefix "ERR " reply then
    Error (Refused (String.sub reply 4 (String.length reply - 4)))
  else if reply = "ERR" then Error (Refused "unknown")
  else Error (Transport ("unexpected frame: " ^ reply))

let request_v kernel ?(version = protocol_version) ~path ~command ~on_result () =
  let wire =
    if command = "" then Printf.sprintf "HELLO %d" version
    else Printf.sprintf "HELLO %d %s" version command
  in
  request kernel ~path ~command:wire ~on_reply:(fun reply ->
      if reply = "ERR ECONNREFUSED" then on_result (Error (Transport "ECONNREFUSED"))
      else on_result (parse_versioned ~version reply))

let hello kernel ?version ~path ~on_result () =
  request_v kernel ?version ~path ~command:"" ~on_result ()

let request_update kernel ~path ~on_reply = request kernel ~path ~command:"UPDATE" ~on_reply
let request_stats kernel ~path ~on_reply = request kernel ~path ~command:"STATS" ~on_reply

let ns_arg = function None -> "-" | Some ns -> string_of_int ns

let request_deadlines kernel ~path ~quiesce_ns ~update_ns ~on_reply =
  request kernel ~path
    ~command:(Printf.sprintf "DEADLINES %s %s" (ns_arg quiesce_ns) (ns_arg update_ns))
    ~on_reply

let request_retry kernel ~path ~retries ~backoff_ns ~on_reply =
  request kernel ~path ~command:(Printf.sprintf "RETRY %d %d" retries backoff_ns) ~on_reply

let request_fault kernel ~path ~seed ~on_reply =
  let command =
    match seed with None -> "FAULT OFF" | Some s -> Printf.sprintf "FAULT %d" s
  in
  request kernel ~path ~command ~on_reply

let request_precopy kernel ~path ~enabled ?max_rounds ?threshold_words ~on_reply () =
  let command =
    if not enabled then "PRECOPY OFF"
    else
      match (max_rounds, threshold_words) with
      | None, None -> "PRECOPY ON"
      | Some r, None -> Printf.sprintf "PRECOPY ON %d" r
      | Some r, Some w -> Printf.sprintf "PRECOPY ON %d %d" r w
      | None, Some w -> Printf.sprintf "PRECOPY ON %d %d" Policy.default.Policy.precopy_max_rounds w
  in
  request kernel ~path ~command ~on_reply

let request_workers kernel ~path ~workers ~on_reply =
  request kernel ~path ~command:(Printf.sprintf "WORKERS %d" workers) ~on_reply

let update_pending m = Manager.update_requested m
