module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs

module Frame = Frame

let protocol_version = Frame.protocol_version

type error = Frame.error =
  | Version_mismatch of { client : int; server : int }
  | Refused of string
  | Transport of string

let pp_error = Frame.pp_error

let request kernel ~path ~command ~on_reply =
  ignore
    (K.spawn_process kernel ~image:(K.Fresh_image (Mcr_vmem.Aspace.create ())) ~name:"mcr-ctl"
       ~entry:"main"
       ~main:(fun _th ->
         let rec connect attempts =
           match K.syscall (S.Unix_connect { path }) with
           | S.Ok_fd fd -> Some fd
           | S.Err S.ECONNREFUSED when attempts > 0 ->
               ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
               connect (attempts - 1)
           | _ -> None
         in
         match connect 100 with
         | None -> on_reply "ERR ECONNREFUSED"
         | Some fd -> (
             ignore (K.syscall (S.Write { fd; data = command }));
             match K.syscall (S.Read { fd = fd; max = 65536; nonblock = false }) with
             | S.Ok_data reply -> on_reply reply
             | S.Err e -> on_reply (Format.asprintf "ERR %a" S.pp_err e)
             | _ -> on_reply "ERR"))
       ())

let request_v kernel ?(version = protocol_version) ~path ~command ~on_result () =
  request kernel ~path
    ~command:(Frame.hello_frame ~version ~command)
    ~on_reply:(fun reply ->
      if reply = "ERR ECONNREFUSED" then on_result (Error (Transport "ECONNREFUSED"))
      else on_result (Frame.parse_reply ~version reply))

let hello kernel ?version ~path ~on_result () =
  request_v kernel ?version ~path ~command:"" ~on_result ()

(* ------------------------------------------------------------------ *)
(* The typed command surface: one variant, one encoder, one request
   function. The string spellings below ARE the wire protocol — the
   legacy request_* helpers are thin wrappers over the same encoder. *)

type command =
  | Update
  | Stats
  | Explain of int option
  | Deadlines of { quiesce_ns : int option; update_ns : int option }
  | Retry of { retries : int; backoff_ns : int }
  | Fault_arm of int option
  | Precopy of { enabled : bool; max_rounds : int option; threshold_words : int option }
  | Workers of int
  | Remap of bool
  | Slo of { downtime_ns : int option; total_ns : int option }
  | Save of string
  | Restore of string
  | Raw of string

let ns_arg = function None -> "-" | Some ns -> string_of_int ns

let command_to_string = function
  | Update -> "UPDATE"
  | Stats -> "STATS"
  | Explain None -> "EXPLAIN LAST"
  | Explain (Some n) -> Printf.sprintf "EXPLAIN %d" n
  | Deadlines { quiesce_ns; update_ns } ->
      Printf.sprintf "DEADLINES %s %s" (ns_arg quiesce_ns) (ns_arg update_ns)
  | Retry { retries; backoff_ns } -> Printf.sprintf "RETRY %d %d" retries backoff_ns
  | Fault_arm None -> "FAULT OFF"
  | Fault_arm (Some s) -> Printf.sprintf "FAULT %d" s
  | Precopy { enabled = false; _ } -> "PRECOPY OFF"
  | Precopy { enabled = true; max_rounds; threshold_words } -> (
      match (max_rounds, threshold_words) with
      | None, None -> "PRECOPY ON"
      | Some r, None -> Printf.sprintf "PRECOPY ON %d" r
      | r, Some w ->
          Printf.sprintf "PRECOPY ON %d %d"
            (Option.value r ~default:Policy.default.Policy.precopy_max_rounds)
            w)
  | Workers n -> Printf.sprintf "WORKERS %d" n
  | Remap enabled -> if enabled then "REMAP ON" else "REMAP OFF"
  | Slo { downtime_ns; total_ns } ->
      Printf.sprintf "SLO %s %s" (ns_arg downtime_ns) (ns_arg total_ns)
  | Save path -> "SAVE " ^ path
  | Restore path -> "RESTORE " ^ path
  | Raw s -> s

let exec kernel ?version ~path command ~on_result () =
  request_v kernel ?version ~path ~command:(command_to_string command) ~on_result ()

(* ------------------------------------------------------------------ *)
(* Legacy per-command helpers (thin wrappers, raw transport) *)

let request_update kernel ~path ~on_reply =
  request kernel ~path ~command:(command_to_string Update) ~on_reply

let request_stats kernel ~path ~on_reply =
  request kernel ~path ~command:(command_to_string Stats) ~on_reply

let request_deadlines kernel ~path ~quiesce_ns ~update_ns ~on_reply =
  request kernel ~path ~command:(command_to_string (Deadlines { quiesce_ns; update_ns })) ~on_reply

let request_retry kernel ~path ~retries ~backoff_ns ~on_reply =
  request kernel ~path ~command:(command_to_string (Retry { retries; backoff_ns })) ~on_reply

let request_fault kernel ~path ~seed ~on_reply =
  request kernel ~path ~command:(command_to_string (Fault_arm seed)) ~on_reply

let request_precopy kernel ~path ~enabled ?max_rounds ?threshold_words ~on_reply () =
  request kernel ~path
    ~command:(command_to_string (Precopy { enabled; max_rounds; threshold_words }))
    ~on_reply

let request_workers kernel ~path ~workers ~on_reply =
  request kernel ~path ~command:(command_to_string (Workers workers)) ~on_reply

let request_remap kernel ~path ~enabled ~on_reply =
  request kernel ~path ~command:(command_to_string (Remap enabled)) ~on_reply

let request_slo kernel ~path ~downtime_ns ~total_ns ~on_reply =
  request kernel ~path ~command:(command_to_string (Slo { downtime_ns; total_ns })) ~on_reply

let request_explain kernel ?version ~path ~nth ~on_result () =
  exec kernel ?version ~path (Explain nth) ~on_result ()

let update_pending m = Manager.update_requested m
