module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs

let request kernel ~path ~command ~on_reply =
  ignore
    (K.spawn_process kernel ~image:(K.Fresh_image (Mcr_vmem.Aspace.create ())) ~name:"mcr-ctl"
       ~entry:"main"
       ~main:(fun _th ->
         let rec connect attempts =
           match K.syscall (S.Unix_connect { path }) with
           | S.Ok_fd fd -> Some fd
           | S.Err S.ECONNREFUSED when attempts > 0 ->
               ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
               connect (attempts - 1)
           | _ -> None
         in
         match connect 100 with
         | None -> on_reply "ERR ECONNREFUSED"
         | Some fd -> (
             ignore (K.syscall (S.Write { fd; data = command }));
             match K.syscall (S.Read { fd = fd; max = 65536; nonblock = false }) with
             | S.Ok_data reply -> on_reply reply
             | S.Err e -> on_reply (Format.asprintf "ERR %a" S.pp_err e)
             | _ -> on_reply "ERR"))
       ())

let request_update kernel ~path ~on_reply = request kernel ~path ~command:"UPDATE" ~on_reply
let request_stats kernel ~path ~on_reply = request kernel ~path ~command:"STATS" ~on_reply
let update_pending m = Manager.update_requested m
