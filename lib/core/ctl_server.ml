(* The server half of the ctl wire protocol, shared by every controller
   that listens on a Unix-domain socket: the per-manager mcr-ctl endpoint
   and the fleet coordinator's FLEET endpoint. One request frame per
   connection, one reply frame back — the handshake and version policing
   live here so command families cannot drift apart on the wire. *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs

(* An unclean exit leaves the previous incarnation's socket name behind
   (AF_UNIX names survive close); binding over a live listener is still
   refused. The check runs here, immediately before listen on the
   listener's own thread — checking only at spawn time leaves a hole where
   the previous listener dies between our spawn and our listen and its
   stale name makes the bind fail with EADDRINUSE. *)
let bind kernel ~path =
  if not (K.path_active kernel ~path) then K.unlink_path kernel ~path;
  K.syscall (S.Unix_listen { path })

let spawn kernel proc ?(name = "mcr-ctl") ~path ~dispatch () =
  ignore
    (K.spawn_thread kernel proc ~name (fun th ->
         K.push_frame th "mcr_ctl_loop";
         match bind kernel ~path with
         | S.Ok_fd lfd ->
             let rec serve () =
               match K.syscall (S.Accept { fd = lfd; nonblock = false }) with
               | S.Ok_fd conn ->
                   let reply data = ignore (K.syscall (S.Write { fd = conn; data })) in
                   (match K.syscall (S.Read { fd = conn; max = 256; nonblock = false }) with
                   | S.Ok_data raw -> begin
                       match Frame.parse_request raw with
                       | `Legacy cmd -> reply (dispatch ~versioned:false cmd)
                       | `Malformed_hello -> reply (Frame.err "malformed hello")
                       | `Hello (v, _) when v <> Frame.protocol_version ->
                           reply
                             (Frame.err (Printf.sprintf "version %d" Frame.protocol_version))
                       | `Hello (_, None) | `Hello (_, Some "") ->
                           reply (Frame.ok_inline (string_of_int Frame.protocol_version))
                       | `Hello (_, Some cmd) -> reply (dispatch ~versioned:true cmd)
                     end
                   | _ -> ());
                   ignore (K.syscall (S.Close { fd = conn }));
                   serve ()
               | _ -> ()
             in
             serve ()
         | _ -> ()))
