(** Consolidated update policy.

    Everything that used to be a separate optional argument on
    {!Manager.launch}/{!Manager.update} — deadlines, retry, fault seed,
    dirty-only filtering — plus the pre-copy knobs, in one immutable record
    with builder functions. Pass it once via [?policy]; the old labels
    remain as deprecated shims. *)

type t = {
  quiesce_deadline_ns : int option;
      (** Give up on quiescence after this long (default: none; the barrier
          protocol's own 5 s horizon applies). *)
  update_deadline_ns : int option;
      (** Whole-update budget measured from the update request; blowing it
          anywhere in the pipeline rolls back (default: none). *)
  retries : int;  (** Additional attempts after a rollback (default 0). *)
  retry_backoff_ns : int;
      (** Linear backoff between attempts: attempt [n] waits [n] times this
          (default 100 ms). *)
  fault_seed : int option;
      (** Arm {!Mcr_fault.Fault.of_seed} on every update (default none). *)
  dirty_only : bool;
      (** Soft-dirty filtering of the state transfer (default true; false
          is the transfer-everything ablation). *)
  precopy : bool;
      (** Iterative pre-copy state transfer: speculatively trace and stage
          the old version's state while it keeps serving, so only the final
          delta is paid inside the quiescence window (default false). *)
  precopy_max_rounds : int;
      (** Round budget including the initial full round. 1 means a single
          speculative round with no convergence check (default 4). *)
  precopy_threshold_words : int;
      (** A delta round staging at most this many words has converged; if
          no round converges within the budget the update rolls back with
          {!Mcr_error.Precopy_diverged} (default 512). *)
  transfer_workers : int;
      (** Simulated state-transfer worker pool size. The reachable set is
          partitioned into that many word-balanced shards and downtime is
          charged as the critical path over shards plus per-worker
          spawn/join overhead; results are byte-identical for every value
          (default 1 — sequential accounting, no overhead). *)
  transfer_remap : bool;
      (** Zero-copy page remap: after the in-window copy, destination pages
          byte-identical to a page-aligned congruent source page share the
          source frame (copy-on-write) instead of keeping a private copy,
          and pay {!Mcr_simos.Costs.t.remap_page_ns} per page instead of
          per-word copy charges. Byte-identical results either way
          (default false). *)
  slo_downtime_ns : int option;
      (** Per-update downtime budget for SLO evaluation (default none). A
          completed attempt whose downtime exceeds it is recorded as an SLO
          violation in the flight record and counted in
          [mcr_slo_violations_total] — informational: it never causes a
          rollback by itself (use [update_deadline_ns] for enforcement). *)
  slo_total_ns : int option;
      (** Per-update end-to-end duration budget, same semantics (default
          none). *)
}

val default : t

val with_quiesce_deadline_ns : int option -> t -> t
val with_update_deadline_ns : int option -> t -> t
val with_deadlines : quiesce_ns:int option -> update_ns:int option -> t -> t
val with_retries : ?backoff_ns:int -> int -> t -> t
val with_fault_seed : int option -> t -> t
val with_dirty_only : bool -> t -> t

val with_precopy : ?max_rounds:int -> ?threshold_words:int -> bool -> t -> t
(** [with_precopy true p] enables pre-copy; the optional knobs default to
    the current values of [p]. *)

val with_transfer_workers : int -> t -> t
(** Set the transfer worker-pool size.
    @raise Invalid_argument if the count is below 1. *)

val with_transfer_remap : bool -> t -> t
(** Enable or disable the zero-copy page remap. *)

val with_slo : downtime_ns:int option -> total_ns:int option -> t -> t
(** Set (or clear, with [None]) the SLO budgets.
    @raise Invalid_argument if a budget is not positive. *)

val pp : Format.formatter -> t -> unit
