(** Consolidated update policy.

    Every knob governing {!Manager.launch}/{!Manager.update} — deadlines,
    retry, fault seed, dirty-only filtering, pre-copy, worker pool, page
    remap, SLO budgets, checkpoint imaging — in one immutable record with
    builder functions, passed once via [?policy]. This record is the only
    spelling: there are no per-field optional arguments. *)

type t = {
  quiesce_deadline_ns : int option;
      (** Give up on quiescence after this long (default: none; the barrier
          protocol's own 5 s horizon applies). *)
  update_deadline_ns : int option;
      (** Whole-update budget measured from the update request; blowing it
          anywhere in the pipeline rolls back (default: none). *)
  retries : int;  (** Additional attempts after a rollback (default 0). *)
  retry_backoff_ns : int;
      (** Linear backoff between attempts: attempt [n] waits [n] times this
          (default 100 ms). *)
  fault_seed : int option;
      (** Arm {!Mcr_fault.Fault.of_seed} on every update (default none). *)
  dirty_only : bool;
      (** Soft-dirty filtering of the state transfer (default true; false
          is the transfer-everything ablation). *)
  precopy : bool;
      (** Iterative pre-copy state transfer: speculatively trace and stage
          the old version's state while it keeps serving, so only the final
          delta is paid inside the quiescence window (default false). *)
  precopy_max_rounds : int;
      (** Round budget including the initial full round. 1 means a single
          speculative round with no convergence check (default 4). *)
  precopy_threshold_words : int;
      (** A delta round staging at most this many words has converged; if
          no round converges within the budget the update rolls back with
          {!Mcr_error.Precopy_diverged} (default 512). *)
  transfer_workers : int;
      (** Simulated state-transfer worker pool size. The reachable set is
          partitioned into that many word-balanced shards and downtime is
          charged as the critical path over shards plus per-worker
          spawn/join overhead; results are byte-identical for every value
          (default 1 — sequential accounting, no overhead). *)
  transfer_remap : bool;
      (** Zero-copy page remap: after the in-window copy, destination pages
          byte-identical to a page-aligned congruent source page share the
          source frame (copy-on-write) instead of keeping a private copy,
          and pay {!Mcr_simos.Costs.t.remap_page_ns} per page instead of
          per-word copy charges. Byte-identical results either way
          (default false). *)
  slo_downtime_ns : int option;
      (** Per-update downtime budget for SLO evaluation (default none). A
          completed attempt whose downtime exceeds it is recorded as an SLO
          violation in the flight record and counted in
          [mcr_slo_violations_total] — informational: it never causes a
          rollback by itself (use [update_deadline_ns] for enforcement). *)
  slo_total_ns : int option;
      (** Per-update end-to-end duration budget, same semantics (default
          none). *)
  image_dir : string option;
      (** When set, every update snapshots a persistent checkpoint image of
          the old version at its quiescent point and writes it (with the
          attempt's flight record attached) into this {e host} directory
          once the attempt completes — the input to crash recovery,
          migration and [mcr-postmortem --replay] (default none). *)
  request_parking : bool;
      (** Park in-flight connections during the update window: listeners
          stop refusing (no [ECONNREFUSED] retry storms) and instead queue
          new connections kernel-side, resuming them FIFO on the surviving
          version after commit or rollback. Established connections get a
          bounded [drain_ns] grace period before quiescence is requested
          (default false). *)
  drain_ns : int;
      (** How long to keep serving after parking the listeners, so
          requests already being processed finish before the quiescence
          barrier is requested (default 2 ms; only meaningful with
          [request_parking]). *)
  concurrent_transfer : bool;
      (** Bill the state-transfer copy to a dedicated core
          ({!Mcr_simos.Kernel.charge_concurrent}): the rest of the machine
          — in particular client processes standing in for remote hosts —
          keeps running through the copy window, so their retry/backoff
          timers fire inside it instead of leapfrogging to its end. Off by
          default: single-core accounting, window freezes everything. *)
}

val default : t

val with_quiesce_deadline_ns : int option -> t -> t
val with_update_deadline_ns : int option -> t -> t
val with_deadlines : quiesce_ns:int option -> update_ns:int option -> t -> t
val with_retries : ?backoff_ns:int -> int -> t -> t
val with_fault_seed : int option -> t -> t
val with_dirty_only : bool -> t -> t

val with_precopy : ?max_rounds:int -> ?threshold_words:int -> bool -> t -> t
(** [with_precopy true p] enables pre-copy; the optional knobs default to
    the current values of [p]. *)

val with_transfer_workers : int -> t -> t
(** Set the transfer worker-pool size.
    @raise Invalid_argument if the count is below 1. *)

val with_transfer_remap : bool -> t -> t
(** Enable or disable the zero-copy page remap. *)

val with_slo : downtime_ns:int option -> total_ns:int option -> t -> t
(** Set (or clear, with [None]) the SLO budgets.
    @raise Invalid_argument if a budget is not positive. *)

val with_image_dir : string option -> t -> t
(** Set (or clear) the host directory update-time checkpoint images are
    written into. *)

val with_request_parking : ?drain_ns:int -> bool -> t -> t
(** [with_request_parking true p] parks in-flight connections through
    update windows; [drain_ns] defaults to the current value of [p].
    @raise Invalid_argument if the drain budget is negative. *)

val with_concurrent_transfer : bool -> t -> t
(** Enable or disable dedicated-core accounting for the state-transfer
    window. *)

val to_kv : t -> string
(** Render the scalar fields as a [key=value ...] line — the form embedded
    in checkpoint images so an offline replay can reconstruct the exact
    policy. [image_dir] deliberately does not round-trip (a replayed
    update must not re-snapshot images). *)

val of_kv : string -> (t, string) result
(** Parse {!to_kv} output. Unknown keys are ignored and missing keys take
    their defaults, so policies written by older builds keep parsing. *)

val pp : Format.formatter -> t -> unit
