module Addr = Mcr_vmem.Addr
module Aspace = Mcr_vmem.Aspace
module Region = Mcr_vmem.Region

type entry = {
  name : string;
  ty : Ty.t;
  addr : Addr.t;
  words : int;
}

type t = {
  data : entry list;
  by_name : (string, entry) Hashtbl.t;
  funcs : (string, Addr.t) Hashtbl.t;
  funcs_rev : (Addr.t, string) Hashtbl.t;
  strings : (string, Addr.t) Hashtbl.t;
  data_region : Region.t;
  rodata_region : Region.t;
  text_region : Region.t;
}

(* Pack a string's bytes into words, little-endian, NUL-terminated. *)
let store_string aspace addr s =
  let words = (String.length s + 1 + Addr.word_size - 1) / Addr.word_size in
  for w = 0 to words - 1 do
    let v = ref 0 in
    for b = Addr.word_size - 1 downto 0 do
      let i = (w * Addr.word_size) + b in
      let byte = if i < String.length s then Char.code s.[i] else 0 in
      v := (!v lsl 8) lor byte
    done;
    Aspace.write_word_untracked aspace (Addr.add_words addr w) !v
  done;
  words

let build env aspace ~data ~funcs ~strings =
  let data_words =
    List.fold_left (fun acc (_, ty) -> acc + Ty.sizeof_words env ty) 0 data
  in
  let data_bytes = max Addr.page_size (data_words * Addr.word_size) in
  let data_base = Aspace.map aspace ~name:".data" (Aspace.Near Region.Static) ~size:data_bytes Region.Static in
  let by_name = Hashtbl.create 64 in
  let _, data_entries =
    List.fold_left
      (fun (addr, acc) (name, ty) ->
        let words = Ty.sizeof_words env ty in
        let e = { name; ty; addr; words } in
        Hashtbl.replace by_name name e;
        (Addr.add_words addr words, e :: acc))
      (data_base, []) data
  in
  let string_words =
    List.fold_left
      (fun acc s -> acc + ((String.length s + 1 + Addr.word_size - 1) / Addr.word_size))
      0 strings
  in
  let rodata_bytes = max Addr.page_size (string_words * Addr.word_size) in
  let rodata_base =
    Aspace.map aspace ~name:".rodata" (Aspace.Near Region.Static) ~size:rodata_bytes Region.Static
  in
  let string_tbl = Hashtbl.create 64 in
  let _ =
    List.fold_left
      (fun addr s ->
        if Hashtbl.mem string_tbl s then addr
        else begin
          let words = store_string aspace addr s in
          Hashtbl.replace string_tbl s addr;
          Addr.add_words addr words
        end)
      rodata_base strings
  in
  let text_bytes = max Addr.page_size (List.length funcs * Addr.word_size * 4) in
  let text_base =
    Aspace.map aspace ~name:".text" (Aspace.Near Region.Static) ~size:text_bytes Region.Static
  in
  let func_tbl = Hashtbl.create 64 in
  let func_rev = Hashtbl.create 64 in
  List.iteri
    (fun i fname ->
      let addr = Addr.add_words text_base (i * 4) in
      Hashtbl.replace func_tbl fname addr;
      Hashtbl.replace func_rev addr fname)
    funcs;
  let find_region base =
    match Aspace.find_region aspace base with
    | Some r -> r
    | None -> assert false
  in
  {
    data = List.rev data_entries;
    by_name;
    funcs = func_tbl;
    funcs_rev = func_rev;
    strings = string_tbl;
    data_region = find_region data_base;
    rodata_region = find_region rodata_base;
    text_region = find_region text_base;
  }

let lookup t name = Hashtbl.find t.by_name name

let lookup_opt t name = Hashtbl.find_opt t.by_name name

let entries t = t.data

let func_addr t name = Hashtbl.find t.funcs name

let func_name_of_addr t addr = Hashtbl.find_opt t.funcs_rev addr

let string_addr t s = Hashtbl.find t.strings s

let find_data_by_addr t addr =
  List.find_opt
    (fun e -> addr >= e.addr && addr < Addr.add_words e.addr e.words)
    t.data

let strings t = Hashtbl.fold (fun s a acc -> (s, a) :: acc) t.strings [] |> List.sort compare

let funcs t = Hashtbl.fold (fun f a acc -> (f, a) :: acc) t.funcs [] |> List.sort compare

let data_region t = t.data_region
let rodata_region t = t.rodata_region
let text_region t = t.text_region
