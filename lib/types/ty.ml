type t =
  | Int
  | Word
  | Char_array of int
  | Ptr of t
  | Void_ptr
  | Func_ptr
  | Encoded_ptr of { target : t; mask : int }
  | Struct of struct_def
  | Union of (string * t) list
  | Array of t * int
  | Named of string
  | Opaque of int

and struct_def = { sname : string; fields : (string * t) list }

type env = (string, t) Hashtbl.t

let env_create () = Hashtbl.create 16

let env_add env name ty = Hashtbl.replace env name ty

let env_find env name = Hashtbl.find env name

let env_names env =
  Hashtbl.fold (fun k _ acc -> k :: acc) env [] |> List.sort compare

let resolve env ty =
  let rec go seen = function
    | Named n ->
        if List.mem n seen then
          invalid_arg ("Ty.resolve: cyclic named type " ^ n)
        else go (n :: seen) (env_find env n)
    | ty -> ty
  in
  go [] ty

let words_for_bytes n = (n + Mcr_vmem.Addr.word_size - 1) / Mcr_vmem.Addr.word_size

let sizeof_words env ty =
  let rec go visiting ty =
    match ty with
    | Int | Word | Ptr _ | Void_ptr | Func_ptr | Encoded_ptr _ -> 1
    | Char_array n -> max 1 (words_for_bytes n)
    | Opaque n -> max 1 n
    | Array (elt, n) -> n * go visiting elt
    | Struct { sname; fields } ->
        if List.mem sname visiting then
          invalid_arg ("Ty.sizeof_words: unbounded recursive struct " ^ sname)
        else
          List.fold_left (fun acc (_, fty) -> acc + go (sname :: visiting) fty) 0 fields
    | Union members ->
        List.fold_left (fun acc (_, mty) -> max acc (go visiting mty)) 1 members
    | Named n -> go visiting (env_find env n)
  in
  go [] ty

let as_struct env ty =
  match resolve env ty with
  | Struct def -> def
  | _ -> raise Not_found

let field_offset env ty name =
  let def = as_struct env ty in
  let rec go off = function
    | [] -> raise Not_found
    | (fname, fty) :: rest ->
        if fname = name then off else go (off + sizeof_words env fty) rest
  in
  go 0 def.fields

let field_ty env ty name =
  let def = as_struct env ty in
  match List.assoc_opt name def.fields with
  | Some fty -> fty
  | None -> raise Not_found

type policy = {
  unions_opaque : bool;
  char_arrays_opaque : bool;
  words_opaque : bool;
}

let default_policy = { unions_opaque = true; char_arrays_opaque = true; words_opaque = true }

type slot =
  | Slot_scalar
  | Slot_ptr of t
  | Slot_void_ptr
  | Slot_func_ptr
  | Slot_encoded_ptr of { target : t; mask : int }
  | Slot_opaque

let slots ?(policy = default_policy) env ty =
  let buf = ref [] in
  let push s = buf := s :: !buf in
  let push_n s n = for _ = 1 to n do push s done in
  let rec go ty =
    match ty with
    | Int -> push Slot_scalar
    | Word -> push (if policy.words_opaque then Slot_opaque else Slot_scalar)
    | Char_array n ->
        push_n (if policy.char_arrays_opaque then Slot_opaque else Slot_scalar)
          (max 1 (words_for_bytes n))
    | Ptr target -> push (Slot_ptr target)
    | Void_ptr -> push Slot_void_ptr
    | Func_ptr -> push Slot_func_ptr
    | Encoded_ptr { target; mask } -> push (Slot_encoded_ptr { target; mask })
    | Struct { fields; _ } -> List.iter (fun (_, fty) -> go fty) fields
    | Union members ->
        let size = sizeof_words env ty in
        if policy.unions_opaque then push_n Slot_opaque size
        else begin
          (* Non-default policy: trust the first member's layout. *)
          (match members with
          | (_, mty) :: _ ->
              go mty;
              push_n Slot_scalar (size - sizeof_words env mty)
          | [] -> push_n Slot_scalar size)
        end
    | Array (elt, n) -> for _ = 1 to n do go elt done
    | Named n -> go (env_find env n)
    | Opaque n -> push_n Slot_opaque (max 1 n)
  in
  go ty;
  Array.of_list (List.rev !buf)

let equal env_a env_b ta tb =
  let rec go seen ta tb =
    match (ta, tb) with
    | Named na, Named nb when List.mem (na, nb) seen -> true
    | Named na, _ -> begin
        match tb with
        | Named nb -> go ((na, nb) :: seen) (env_find env_a na) (env_find env_b nb)
        | _ -> go seen (env_find env_a na) tb
      end
    | _, Named nb -> go seen ta (env_find env_b nb)
    | Int, Int | Word, Word | Void_ptr, Void_ptr | Func_ptr, Func_ptr -> true
    | Char_array a, Char_array b -> a = b
    | Opaque a, Opaque b -> a = b
    | Ptr a, Ptr b -> go seen a b
    | Encoded_ptr a, Encoded_ptr b -> a.mask = b.mask && go seen a.target b.target
    | Array (a, n), Array (b, m) -> n = m && go seen a b
    | Struct a, Struct b ->
        a.sname = b.sname
        && List.length a.fields = List.length b.fields
        && List.for_all2
             (fun (na, fa) (nb, fb) -> na = nb && go seen fa fb)
             a.fields b.fields
    | Union a, Union b ->
        List.length a = List.length b
        && List.for_all2 (fun (na, ma) (nb, mb) -> na = nb && go seen ma mb) a b
    | ( (Int | Word | Char_array _ | Ptr _ | Void_ptr | Func_ptr | Encoded_ptr _
        | Struct _ | Union _ | Array _ | Opaque _),
        _ ) ->
        false
  in
  go [] ta tb

let contains_opaque ?policy env ty =
  Array.exists (function Slot_opaque -> true | _ -> false) (slots ?policy env ty)

let rec pp ppf = function
  | Int -> Format.pp_print_string ppf "int"
  | Word -> Format.pp_print_string ppf "long"
  | Char_array n -> Format.fprintf ppf "char[%d]" n
  | Ptr t -> Format.fprintf ppf "%a*" pp t
  | Void_ptr -> Format.pp_print_string ppf "void*"
  | Func_ptr -> Format.pp_print_string ppf "void(*)()"
  | Encoded_ptr { target; mask } -> Format.fprintf ppf "%a* /*enc:%d*/" pp target mask
  | Struct { sname; _ } -> Format.fprintf ppf "struct %s" sname
  | Union members ->
      Format.fprintf ppf "union{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           (fun ppf (n, t) -> Format.fprintf ppf "%s:%a" n pp t))
        members
  | Array (t, n) -> Format.fprintf ppf "%a[%d]" pp t n
  | Named n -> Format.pp_print_string ppf n
  | Opaque n -> Format.fprintf ppf "opaque[%dw]" n

let to_string t = Format.asprintf "%a" pp t
