module Addr = Mcr_vmem.Addr
module Aspace = Mcr_vmem.Aspace

let field_addr env ~base ty name = Addr.add_words base (Ty.field_offset env ty name)

let read_field aspace env ~base ty name = Aspace.read_word aspace (field_addr env ~base ty name)

let write_field aspace env ~base ty name v =
  Aspace.write_word aspace (field_addr env ~base ty name) v

let elem_addr env ~base ty i =
  match Ty.resolve env ty with
  | Ty.Array (elt, n) ->
      assert (i >= 0 && i < n);
      Addr.add_words base (i * Ty.sizeof_words env elt)
  | _ -> invalid_arg "Access.elem_addr: not an array type"

let read_string aspace addr =
  let buf = Buffer.create 32 in
  let rec go w =
    if w >= 4096 / Addr.word_size then Buffer.contents buf
    else begin
      let v = Aspace.read_word aspace (Addr.add_words addr w) in
      let rec bytes b =
        if b >= Addr.word_size then true
        else
          let c = (v lsr (b * 8)) land 0xff in
          if c = 0 then false
          else begin
            Buffer.add_char buf (Char.chr c);
            bytes (b + 1)
          end
      in
      if bytes 0 then go (w + 1) else Buffer.contents buf
    end
  in
  go 0

let write_bytes aspace addr s =
  let words = (String.length s + 1 + Addr.word_size - 1) / Addr.word_size in
  for w = 0 to words - 1 do
    let v = ref 0 in
    for b = Addr.word_size - 1 downto 0 do
      let i = (w * Addr.word_size) + b in
      let byte = if i < String.length s then Char.code s.[i] else 0 in
      v := (!v lsl 8) lor byte
    done;
    Aspace.write_word aspace (Addr.add_words addr w) !v
  done
