(** Cross-version type transformation plans.

    When an update changes a data structure, mutable tracing must
    "type-transform" each affected object on the fly (Section 6, Figure 2:
    the list node gains a [new] field in v2). A plan is the word-level
    recipe for one (old type, new type) pair: which words to copy where, and
    which new words to default-initialize.

    Plans are mechanism only; whether a transformation is *allowed* (the
    object may be nonupdatable) is decided by the tracing invariants. *)

type action =
  | Copy of { src_off : int; dst_off : int; words : int }
      (** Copy words from old object to new object (word offsets). Pointer
          words are copied too; relocation happens in a later fixup pass. *)
  | Zero of { dst_off : int; words : int }
      (** Default-initialize words added by the update. *)

type t = {
  src_ty : Ty.t;
  dst_ty : Ty.t;
  src_words : int;
  dst_words : int;
  actions : action list;  (** In ascending [dst_off] order. *)
}

val plan : src_env:Ty.env -> dst_env:Ty.env -> src:Ty.t -> dst:Ty.t -> (t, string) result
(** [plan ~src_env ~dst_env ~src ~dst] computes a transformation recipe.

    Supported shapes: identical types; [Int]/[Word] interchange; pointer
    kind interchange ([Ptr _], [Void_ptr], [Encoded_ptr] with equal mask);
    char arrays and opaque areas resized (copy prefix, zero suffix); arrays
    resized and element-transformed; structs with fields matched by name
    (added fields zeroed, removed fields dropped, reordering followed).

    Errors (requiring a user transfer handler, as in the paper) include:
    scalar/pointer confusion, changed unions, changed encoded-pointer masks,
    and anything else without an unambiguous mapping. *)

val is_identity : t -> bool
(** True when the plan is a full-size copy at offset zero — i.e. the type
    did not change shape and the object can be transferred by plain copy. *)

val apply : t -> read:(int -> int) -> write:(int -> int -> unit) -> unit
(** Run the plan. [read off] yields the old object's word at [off];
    [write off v] stores into the new object. *)

val pp : Format.formatter -> t -> unit
