(** Numeric type-id registry.

    In-band allocator metadata cannot hold a structured type descriptor, so
    tags store a small integer id; this registry maps ids back to
    descriptors. Each program version owns one registry; ids are matched
    across versions by type {e name}, mirroring the paper's symbol-based
    pairing of static objects. *)

type t

val create : unit -> t

val register : t -> name:string -> Ty.t -> int
(** [register t ~name ty] assigns (or returns the existing) id for [name].
    Re-registering an existing name with a different descriptor replaces the
    descriptor but keeps the id — that is how an updated version redefines a
    type. *)

val find : t -> int -> Ty.t
(** Descriptor by id. @raise Not_found. *)

val name_of_id : t -> int -> string
(** @raise Not_found. *)

val id_of_name : t -> string -> int option

val count : t -> int
(** Number of registered types. *)
