(** Typed access to simulated memory.

    Convenience layer the simulated servers use to read and write their own
    state. Everything bottoms out in word reads/writes on the address space,
    so the soft-dirty machinery observes every server write exactly as the
    kernel would. *)

val field_addr : Ty.env -> base:Mcr_vmem.Addr.t -> Ty.t -> string -> Mcr_vmem.Addr.t
(** Address of a struct field given the struct's base address. *)

val read_field : Mcr_vmem.Aspace.t -> Ty.env -> base:Mcr_vmem.Addr.t -> Ty.t -> string -> int
(** One-word field read (scalars and pointers). *)

val write_field :
  Mcr_vmem.Aspace.t -> Ty.env -> base:Mcr_vmem.Addr.t -> Ty.t -> string -> int -> unit
(** One-word field write; marks the page soft-dirty. *)

val elem_addr : Ty.env -> base:Mcr_vmem.Addr.t -> Ty.t -> int -> Mcr_vmem.Addr.t
(** Address of array element [i] given the array's base and type. *)

val read_string : Mcr_vmem.Aspace.t -> Mcr_vmem.Addr.t -> string
(** Decode a NUL-terminated packed string (as stored by {!Symtab}). Reads at
    most 4096 bytes. *)

val write_bytes : Mcr_vmem.Aspace.t -> Mcr_vmem.Addr.t -> string -> unit
(** Pack a string into words at the address (tracked writes). *)
