(** Data-type descriptors.

    This is the metadata the paper's LLVM pass attaches to static objects and
    allocations ("relocation and data type tags", Section 6). A descriptor
    tells mutable tracing, for every word of an object, whether it is a
    scalar, a pointer it can trace precisely, or an opaque area it must scan
    conservatively.

    All sizes are in 8-byte machine words; every field starts word-aligned,
    matching the alignment assumption of conservative pointer scanning. *)

type t =
  | Int  (** Narrow scalar (C [int]); never holds a pointer. One word. *)
  | Word
      (** Pointer-sized integer (C [long] / [intptr_t]); opaque under the
          default run-time policy because it may hide a pointer. *)
  | Char_array of int
      (** [n] bytes of raw storage; occupies ceil(n/8) words; opaque. *)
  | Ptr of t  (** Typed pointer — traced precisely. *)
  | Void_ptr  (** [void*] — traced precisely via the target's own tag. *)
  | Func_ptr  (** Code pointer; relocated by symbol, never traversed. *)
  | Encoded_ptr of { target : t; mask : int }
      (** Annotated pointer with metadata in its low [mask] bits (the nginx
          idiom, Section 8: "storing metadata in the 2 least significant
          bits"). Requires the MCR annotation to trace precisely. *)
  | Struct of struct_def
  | Union of (string * t) list  (** Opaque: layout ambiguity. *)
  | Array of t * int
  | Named of string  (** Reference into an {!env}; enables recursion. *)
  | Opaque of int  (** [n] words with no type information at all. *)

and struct_def = { sname : string; fields : (string * t) list }

(** {1 Type environments} *)

type env
(** Named-type registry of one program version. *)

val env_create : unit -> env

val env_add : env -> string -> t -> unit
(** [env_add env name ty] registers [name]. Re-registering replaces, which
    is how an updated version redefines a struct. *)

val env_find : env -> string -> t
(** @raise Not_found for unknown names. *)

val env_names : env -> string list
(** All registered names, sorted. *)

val resolve : env -> t -> t
(** Chase [Named] links until a structural constructor appears.
    @raise Invalid_argument on a [Named] cycle with no structure. *)

(** {1 Layout} *)

val sizeof_words : env -> t -> int
(** Object size in words. Unions size to their largest member.
    @raise Invalid_argument on unbounded recursive layouts. *)

val field_offset : env -> t -> string -> int
(** Word offset of a struct field. @raise Not_found if absent or not a
    struct. *)

val field_ty : env -> t -> string -> t
(** Type of a struct field. @raise Not_found as {!field_offset}. *)

(** {1 Slot classification} *)

(** Run-time policy deciding which areas are opaque (Section 6: "Our default
    is to do so for unions, pointer-sized integers, char arrays, and
    uninstrumented allocator operations"). *)
type policy = {
  unions_opaque : bool;
  char_arrays_opaque : bool;
  words_opaque : bool;  (** pointer-sized integers *)
}

val default_policy : policy

(** What one word-aligned slot of an object holds. *)
type slot =
  | Slot_scalar  (** Data; neither traced nor scanned. *)
  | Slot_ptr of t  (** Precise pointer to a value of the given type. *)
  | Slot_void_ptr
  | Slot_func_ptr
  | Slot_encoded_ptr of { target : t; mask : int }
  | Slot_opaque  (** Conservative scanning required. *)

val slots : ?policy:policy -> env -> t -> slot array
(** [slots env ty] flattens [ty] into per-word slots, expanding arrays and
    nested structs. Length equals [sizeof_words env ty]. *)

(** {1 Comparison} *)

val equal : env -> env -> t -> t -> bool
(** Structural equality across two environments (named types compared by
    their resolved structure, with cycle tolerance). *)

val contains_opaque : ?policy:policy -> env -> t -> bool
(** True when any slot is opaque. Such objects attract conservative
    treatment. *)

val pp : Format.formatter -> t -> unit
(** Compact C-like rendering, for diagnostics and conflict reports. *)

val to_string : t -> string
