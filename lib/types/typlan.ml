type action =
  | Copy of { src_off : int; dst_off : int; words : int }
  | Zero of { dst_off : int; words : int }

type t = {
  src_ty : Ty.t;
  dst_ty : Ty.t;
  src_words : int;
  dst_words : int;
  actions : action list;
}

let ( let* ) = Result.bind

let error fmt = Format.kasprintf (fun s -> Error s) fmt

(* Merge adjacent actions so plans stay small for large arrays. *)
let coalesce actions =
  let rec go acc = function
    | [] -> List.rev acc
    | Copy a :: Copy b :: rest
      when a.src_off + a.words = b.src_off && a.dst_off + a.words = b.dst_off ->
        go acc (Copy { a with words = a.words + b.words } :: rest)
    | Zero a :: Zero b :: rest when a.dst_off + a.words = b.dst_off ->
        go acc (Zero { a with words = a.words + b.words } :: rest)
    | x :: rest -> go (x :: acc) rest
  in
  go [] actions

let plan ~src_env ~dst_env ~src ~dst =
  let rec build src_off dst_off src dst =
    let s = Ty.resolve src_env src and d = Ty.resolve dst_env dst in
    let copy words = Ok [ Copy { src_off; dst_off; words } ] in
    let resize src_words dst_words =
      let copied = min src_words dst_words in
      let actions = [ Copy { src_off; dst_off; words = copied } ] in
      if dst_words > copied then
        Ok (actions @ [ Zero { dst_off = dst_off + copied; words = dst_words - copied } ])
      else Ok actions
    in
    match (s, d) with
    | (Ty.Int | Ty.Word), (Ty.Int | Ty.Word) -> copy 1
    | (Ty.Ptr _ | Ty.Void_ptr), (Ty.Ptr _ | Ty.Void_ptr) -> copy 1
    | Ty.Func_ptr, Ty.Func_ptr -> copy 1
    | Ty.Encoded_ptr a, Ty.Encoded_ptr b ->
        if a.mask = b.mask then copy 1
        else error "encoded pointer mask changed (%d -> %d)" a.mask b.mask
    | Ty.Char_array a, Ty.Char_array b ->
        resize (Ty.sizeof_words src_env (Ty.Char_array a)) (Ty.sizeof_words dst_env (Ty.Char_array b))
    | Ty.Opaque a, Ty.Opaque b -> resize (max 1 a) (max 1 b)
    | Ty.Array (se, sn), Ty.Array (de, dn) ->
        let sw = Ty.sizeof_words src_env se and dw = Ty.sizeof_words dst_env de in
        let shared = min sn dn in
        let rec elems i acc =
          if i >= shared then Ok (List.concat (List.rev acc))
          else
            let* sub = build (src_off + (i * sw)) (dst_off + (i * dw)) se de in
            elems (i + 1) (sub :: acc)
        in
        let* copied = elems 0 [] in
        if dn > shared then
          Ok (copied @ [ Zero { dst_off = dst_off + (shared * dw); words = (dn - shared) * dw } ])
        else Ok copied
    | Ty.Struct sdef, Ty.Struct ddef ->
        let src_offsets =
          let off = ref 0 in
          List.map
            (fun (name, fty) ->
              let o = !off in
              off := o + Ty.sizeof_words src_env fty;
              (name, (o, fty)))
            sdef.fields
        in
        let rec fields doff acc = function
          | [] -> Ok (List.concat (List.rev acc))
          | (name, dty) :: rest ->
              let dwords = Ty.sizeof_words dst_env dty in
              let* sub =
                match List.assoc_opt name src_offsets with
                | Some (soff, sty) -> begin
                    match build (src_off + soff) (dst_off + doff) sty dty with
                    | Ok a -> Ok a
                    | Error e ->
                        error "field %s.%s: %s" ddef.sname name e
                  end
                | None -> Ok [ Zero { dst_off = dst_off + doff; words = dwords } ]
              in
              fields (doff + dwords) (sub :: acc) rest
        in
        fields 0 [] ddef.fields
    | Ty.Union a, Ty.Union b ->
        if Ty.equal src_env dst_env (Ty.Union a) (Ty.Union b) then
          copy (Ty.sizeof_words src_env (Ty.Union a))
        else error "union layout changed; needs a user transfer handler"
    | _, _ ->
        error "no unambiguous mapping from %s to %s" (Ty.to_string s) (Ty.to_string d)
  in
  let* actions = build 0 0 src dst in
  Ok
    {
      src_ty = src;
      dst_ty = dst;
      src_words = Ty.sizeof_words src_env src;
      dst_words = Ty.sizeof_words dst_env dst;
      actions = coalesce actions;
    }

let is_identity t =
  t.src_words = t.dst_words
  && match t.actions with
     | [ Copy { src_off = 0; dst_off = 0; words } ] -> words = t.src_words
     | [] -> t.src_words = 0
     | _ -> false

let apply t ~read ~write =
  List.iter
    (function
      | Copy { src_off; dst_off; words } ->
          for i = 0 to words - 1 do
            write (dst_off + i) (read (src_off + i))
          done
      | Zero { dst_off; words } ->
          for i = 0 to words - 1 do
            write (dst_off + i) 0
          done)
    t.actions

let pp ppf t =
  Format.fprintf ppf "@[<v>plan %a (%dw) -> %a (%dw):@," Ty.pp t.src_ty t.src_words Ty.pp
    t.dst_ty t.dst_words;
  List.iter
    (function
      | Copy { src_off; dst_off; words } ->
          Format.fprintf ppf "  copy src+%d -> dst+%d (%dw)@," src_off dst_off words
      | Zero { dst_off; words } -> Format.fprintf ppf "  zero dst+%d (%dw)@," dst_off words)
    t.actions;
  Format.fprintf ppf "@]"
