type t = {
  mutable next : int;
  by_id : (int, string * Ty.t) Hashtbl.t;
  by_name : (string, int) Hashtbl.t;
}

let create () = { next = 1; by_id = Hashtbl.create 32; by_name = Hashtbl.create 32 }

let register t ~name ty =
  match Hashtbl.find_opt t.by_name name with
  | Some id ->
      Hashtbl.replace t.by_id id (name, ty);
      id
  | None ->
      let id = t.next in
      t.next <- id + 1;
      Hashtbl.replace t.by_id id (name, ty);
      Hashtbl.replace t.by_name name id;
      id

let find t id = snd (Hashtbl.find t.by_id id)

let name_of_id t id = fst (Hashtbl.find t.by_id id)

let id_of_name t name = Hashtbl.find_opt t.by_name name

let count t = Hashtbl.length t.by_id
