(** Static-object symbol tables and image layout (the linker analog).

    The paper inherits "immutable static memory objects (e.g., global
    variables) using a linker script" and matches static objects across
    versions by symbol name (Section 6). This module lays out a program
    version's globals, string literals and function symbols into the static
    area of an address space and records the symbol metadata mutable tracing
    needs: name, type, address, size. *)

type entry = {
  name : string;
  ty : Ty.t;
  addr : Mcr_vmem.Addr.t;
  words : int;
}

type t

val build :
  Ty.env ->
  Mcr_vmem.Aspace.t ->
  data:(string * Ty.t) list ->
  funcs:string list ->
  strings:string list ->
  t
(** [build env aspace ~data ~funcs ~strings] maps three static regions —
    [.data] for globals, [.rodata] for interned string literals, [.text]
    for function symbols — and assigns addresses in declaration order.
    String bytes are stored packed into words so conservative scanning sees
    realistic non-pointer content. *)

val lookup : t -> string -> entry
(** Global variable by name. @raise Not_found. *)

val lookup_opt : t -> string -> entry option

val entries : t -> entry list
(** All data symbols, in layout order. These are the tracing roots. *)

val func_addr : t -> string -> Mcr_vmem.Addr.t
(** Address of a function symbol. @raise Not_found. *)

val func_name_of_addr : t -> Mcr_vmem.Addr.t -> string option
(** Reverse lookup, used to relocate function pointers by symbol. *)

val string_addr : t -> string -> Mcr_vmem.Addr.t
(** Address of an interned string literal. @raise Not_found. *)

val find_data_by_addr : t -> Mcr_vmem.Addr.t -> entry option
(** The data symbol whose storage contains the address, if any. *)

val strings : t -> (string * Mcr_vmem.Addr.t) list
(** All interned string literals with their addresses. *)

val funcs : t -> (string * Mcr_vmem.Addr.t) list
(** All function symbols with their addresses. *)

val data_region : t -> Mcr_vmem.Region.t
val rodata_region : t -> Mcr_vmem.Region.t
val text_region : t -> Mcr_vmem.Region.t
