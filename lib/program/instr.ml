type t = {
  unblockify : bool;
  static_instr : bool;
  dynamic_instr : bool;
  quiesce_detect : bool;
  instrument_regions : bool;
}

let baseline =
  {
    unblockify = false;
    static_instr = false;
    dynamic_instr = false;
    quiesce_detect = false;
    instrument_regions = false;
  }

let unblock = { baseline with unblockify = true }
let sinstr = { unblock with static_instr = true }
let dinstr = { sinstr with dynamic_instr = true }
let qdet = { dinstr with quiesce_detect = true }
let full = qdet

let with_regions t = { t with instrument_regions = true }

let name t =
  if t.quiesce_detect then "+QDet"
  else if t.dynamic_instr then "+DInstr"
  else if t.static_instr then "+SInstr"
  else if t.unblockify then "Unblock"
  else "baseline"

let table3_rows = [ ("Unblock", unblock); ("+SInstr", sinstr); ("+DInstr", dinstr); ("+QDet", qdet) ]
