(* Launching program versions into the simulated kernel, and propagating
   images across fork. This plays the role of the dynamic linker plus
   libmcr.so preloading: it builds the process image (symbol table, heaps,
   barrier) before main runs and re-binds it in every forked child. *)

module K = Mcr_simos.Kernel
module Ty = Mcr_types.Ty
module Tyreg = Mcr_types.Tyreg
module Symtab = Mcr_types.Symtab
module Heap = Mcr_alloc.Heap
module Pool = Mcr_alloc.Pool
module Slab = Mcr_alloc.Slab
module Sites = Mcr_alloc.Sites
module Aspace = Mcr_vmem.Aspace
module Addr = Mcr_vmem.Addr
module Barrier = Mcr_quiesce.Barrier
module Profiler = Mcr_quiesce.Profiler
open Progdef

let thread_key image th =
  match Hashtbl.find_opt image.i_thread_keys (K.tid th) with
  | Some key -> key
  | None ->
      let cls = K.thread_name th in
      let ordinal =
        match Hashtbl.find_opt image.i_thread_ordinals cls with
        | Some n ->
            Hashtbl.replace image.i_thread_ordinals cls (n + 1);
            n + 1
        | None ->
            Hashtbl.replace image.i_thread_ordinals cls 1;
            1
      in
      let key = Printf.sprintf "%s#%d" cls ordinal in
      Hashtbl.replace image.i_thread_keys (K.tid th) key;
      key

let run_entry entry body th =
  let proc = K.thread_proc th in
  let image = image_of_proc_exn proc in
  let ctx = { kernel = image.i_kernel; thread = th; proc; image } in
  ignore (thread_key image th);
  (match image.i_profiler with Some p -> Profiler.note_thread_start p th | None -> ());
  K.push_frame th entry;
  Fun.protect
    ~finally:(fun () ->
      (match image.i_profiler with Some p -> Profiler.note_thread_end p th | None -> ());
      if Hashtbl.mem image.i_registered (K.tid th) then begin
        Hashtbl.remove image.i_registered (K.tid th);
        Barrier.deregister_thread image.i_barrier
      end)
    (fun () -> body ctx)

let resolver_of version =
  fun entry ->
    Option.map (fun body -> run_entry entry body) (List.assoc_opt entry version.entries)

(* Build a child image for a forked process: same layout, heaps re-bound to
   the child's cloned address space, a fresh per-process barrier. *)
let fork_image parent child_proc =
  let aspace = K.aspace child_proc in
  let heap = Heap.rebind parent.i_heap aspace in
  let lib_heap = Heap.rebind parent.i_lib_heap aspace in
  (* the child's startup runs from the fork to its own first quiescent
     point: its allocations are startup-time and its first quiescence fires
     the per-process hooks, even when the parent forked long after its own
     startup (process-per-connection servers) *)
  Heap.restart_startup heap;
  let child =
    {
      parent with
      i_proc = child_proc;
      i_aspace = aspace;
      i_heap = heap;
      i_lib_heap = lib_heap;
      i_startup_complete = false;
      i_pools = List.map (fun (n, p) -> (n, Pool.rebind p heap)) parent.i_pools;
      i_slabs = List.map (fun (n, s) -> (n, Slab.rebind s heap)) parent.i_slabs;
      i_barrier = Barrier.create parent.i_kernel ~pid:(K.pid child_proc);
      i_registered = Hashtbl.create 8;
      i_qpoint_now = Hashtbl.create 8;
      i_stack_cursors = Hashtbl.create 8;
      i_stack_roots = parent.i_stack_roots;
      i_thread_ordinals = Hashtbl.copy parent.i_thread_ordinals;
      i_thread_keys = Hashtbl.create 8;
    }
  in
  K.set_payload child_proc (P_image child);
  List.iter (fun hook -> hook child) parent.i_child_hooks;
  child

(* One kernel-wide spawn hook propagates images into forked children.
   Tracked by kernel id so retired kernels are not kept alive. *)
let hooked_kernels : (int, unit) Hashtbl.t = Hashtbl.create 8

let install_spawn_hook kernel =
  if not (Hashtbl.mem hooked_kernels (K.id kernel)) then begin
    Hashtbl.replace hooked_kernels (K.id kernel) ();
    K.set_spawn_hook kernel
      (Some
         (fun child ->
           match K.find_proc kernel (K.parent_pid child) with
           | Some parent -> begin
               match (image_of_proc parent, K.payload child) with
               | Some pimg, None -> ignore (fork_image pimg child)
               | _, _ -> ()
             end
           | None -> ()))
  end

let build_image kernel proc version instr profiler aspace =
  let symtab =
    Symtab.build version.tyenv aspace ~data:version.globals ~funcs:version.funcs
      ~strings:version.strings
  in
  let heap =
    Heap.create aspace ~instrumented:instr.Instr.static_instr ~name:"heap"
      ~size:(version.heap_words * Addr.word_size) ()
  in
  let lib_heap =
    Heap.create aspace ~kind:Mcr_vmem.Region.Lib ~instrumented:false ~name:"libheap"
      ~size:(version.lib_heap_words * Addr.word_size) ()
  in
  (* lib allocations never carry type tags and are exempt from startup
     deferral (uninstrumented code cannot cooperate) *)
  Heap.end_startup lib_heap;
  let tyreg = Tyreg.create () in
  List.iter
    (fun name -> ignore (Tyreg.register tyreg ~name (Ty.env_find version.tyenv name)))
    (Ty.env_names version.tyenv);
  {
    i_kernel = kernel;
    i_proc = proc;
    i_version = version;
    i_instr = instr;
    i_aspace = aspace;
    i_tyreg = tyreg;
    i_sites = Sites.create ();
    i_symtab = symtab;
    i_heap = heap;
    i_lib_heap = lib_heap;
    i_pools = [];
    i_slabs = [];
    i_barrier = Barrier.create kernel ~pid:(K.pid proc);
    i_profiler = profiler;
    i_startup_complete = false;
    i_first_quiesce_hooks = [];
    i_child_hooks = [];
    i_registered = Hashtbl.create 8;
    i_qpoint_now = Hashtbl.create 8;
    i_stack_cursors = Hashtbl.create 8;
    i_stack_roots = [];
    i_thread_ordinals = Hashtbl.create 8;
    i_thread_keys = Hashtbl.create 8;
  }

let launch kernel ?(instr = Instr.full) ?profiler ?(extra_bias = 0) ?on_image ?force_pid version =
  install_spawn_hook kernel;
  let aspace = Aspace.create ~layout_bias:(version.layout_bias + extra_bias) () in
  let main_body =
    match List.assoc_opt "main" version.entries with
    | Some body -> body
    | None -> invalid_arg "Loader.launch: version has no main entry"
  in
  let proc =
    K.spawn_process kernel ?force_pid ~image:(K.Fresh_image aspace) ~name:version.prog
      ~entry:"main" ~main:(run_entry "main" main_body) ()
  in
  let image = build_image kernel proc version instr profiler aspace in
  K.set_payload proc (P_image image);
  K.set_entry_resolver proc (resolver_of version);
  (match on_image with Some f -> f image | None -> ());
  proc
