(** Launching program versions into the simulated kernel.

    The dynamic-linker-plus-libmcr.so analog: builds the process image
    (symbol table, heaps, barrier, registries) before main runs, installs
    the entry resolver that fork/thread_create use, and re-binds images
    into every forked child via the kernel's spawn hook. *)

val launch :
  Mcr_simos.Kernel.t ->
  ?instr:Instr.t ->
  ?profiler:Mcr_quiesce.Profiler.t ->
  ?extra_bias:int ->
  ?on_image:(Progdef.image -> unit) ->
  ?force_pid:int ->
  Progdef.version ->
  Mcr_simos.Kernel.proc
(** Create the root process of a program version. The process is runnable
    but has not executed yet — [on_image] fires with the fresh image before
    any program code runs, which is where the MCR runtime attaches its
    hooks. [extra_bias] shifts the address-space layout beyond the
    version's own bias (used by tests). *)

val run_entry : string -> Progdef.body -> Mcr_simos.Kernel.thread -> unit
(** Wrap an entry-point body with the per-thread bookkeeping (shadow-stack
    frame, thread key/ordinal, profiler notes, barrier deregistration).
    Exposed for runtime-created threads that mimic program entries. *)

val thread_key : Progdef.image -> Mcr_simos.Kernel.thread -> string
(** The stable cross-version identity of a thread: ["<class>#<ordinal>"],
    assigned on first use in thread-creation order. *)

val fork_image : Progdef.image -> Mcr_simos.Kernel.proc -> Progdef.image
(** Build (and attach) the child's image for a forked process: heaps and
    custom allocators re-bound onto the child's cloned address space, a
    fresh per-process barrier, startup tracking restarted. Normally invoked
    by the spawn hook; exposed for tests. *)

val install_spawn_hook : Mcr_simos.Kernel.t -> unit
(** Idempotently install the kernel-wide hook that propagates images into
    forked children. [launch] calls this. *)
