(* Program-version descriptors and per-process runtime images.

   A [version] is everything the build of one program release gives MCR: the
   type environment, global symbols, entry points, the quiescent points to
   instrument (as suggested by the profiler), and the user annotations. An
   [image] is the runtime instance of a version inside one simulated
   process: address space, heaps, symbol table, barrier — roughly what
   libmcr.so plus the static instrumentation maintain per process.

   The types are mutually recursive because entry-point bodies receive a
   [ctx] that exposes the image. *)

module K = Mcr_simos.Kernel
module Ty = Mcr_types.Ty
module Tyreg = Mcr_types.Tyreg
module Symtab = Mcr_types.Symtab
module Heap = Mcr_alloc.Heap
module Pool = Mcr_alloc.Pool
module Slab = Mcr_alloc.Slab
module Sites = Mcr_alloc.Sites
module Aspace = Mcr_vmem.Aspace
module Addr = Mcr_vmem.Addr
module Barrier = Mcr_quiesce.Barrier
module Profiler = Mcr_quiesce.Profiler

type version = {
  prog : string;  (** Program name, e.g. "nginx". *)
  version_tag : string;  (** Release tag, e.g. "0.8.54". *)
  layout_bias : int;
      (** Page bias for this version's address-space layout; versions differ
          so mutable tracing must genuinely relocate objects. *)
  heap_words : int;
  lib_heap_words : int;
  tyenv : Ty.env;
  globals : (string * Ty.t) list;
  funcs : string list;
  strings : string list;
  entries : (string * body) list;  (** Must include "main". *)
  qpoints : (string * string) list;
      (** (site, call) pairs to unblockify — the quiescence profiler's
          output, fed back into instrumentation. *)
  annotations : annot list;
}

and body = ctx -> unit

and ctx = {
  kernel : K.t;
  thread : K.thread;
  proc : K.proc;
  image : image;
}

and image = {
  i_kernel : K.t;
  i_proc : K.proc;
  i_version : version;
  i_instr : Instr.t;
  i_aspace : Aspace.t;
  i_tyreg : Tyreg.t;
  i_sites : Sites.t;
  i_symtab : Symtab.t;
  i_heap : Heap.t;
  i_lib_heap : Heap.t;
  mutable i_pools : (string * Pool.t) list;
  mutable i_slabs : (string * Slab.t) list;
  i_barrier : Barrier.t;
  i_profiler : Profiler.t option;
  mutable i_startup_complete : bool;
  mutable i_first_quiesce_hooks : (image -> unit) list;
      (** MCR runtime callbacks: the process reached its first quiescent
          point — end of startup. Inherited by forked children (each child
          fires them for its own image). *)
  mutable i_child_hooks : (image -> unit) list;
      (** Invoked with each forked child's image; inherited by children. *)
  i_registered : (int, unit) Hashtbl.t;  (** tids registered at the barrier. *)
  i_qpoint_now : (int, string) Hashtbl.t;  (** tid -> qpoint currently waited at. *)
  i_stack_cursors : (int, Addr.t ref * Addr.t) Hashtbl.t;
  mutable i_stack_roots : (string * Ty.t * Addr.t) list;
  i_thread_ordinals : (string, int) Hashtbl.t;
  i_thread_keys : (int, string) Hashtbl.t;  (** tid -> "class#ordinal". *)
}

and annot =
  | Obj_handler of { symbol : string; reveal : Ty.t }
      (** MCR_ADD_OBJ_HANDLER: discloses the real layout of an opaque
          buffer (hidden pointers), letting tracing treat it precisely. *)
  | Reinit_handler of { name : string; run : ctx -> unit }
      (** MCR_ADD_REINIT_HANDLER: extra control-migration code run in the
          new version after replayed startup (e.g. re-create volatile
          quiescent threads for inherited connections). *)
  | Transfer_handler of { ty_name : string; transform : transform }
      (** User state-transfer code for semantic transformations that cannot
          be remapped automatically. *)

and transform = old_words:int array -> new_words:int array -> unit

type K.payload += P_image of image

let image_of_proc proc =
  match K.payload proc with
  | Some (P_image img) -> Some img
  | Some _ | None -> None

let image_of_proc_exn proc =
  match image_of_proc proc with
  | Some img -> img
  | None -> invalid_arg "Progdef.image_of_proc_exn: process has no MCR image"

(* ------------------------------------------------------------------ *)
(* Version construction *)

let make_version ~prog ~version_tag ~layout_bias ?(heap_words = 64 * 1024)
    ?(lib_heap_words = 16 * 1024) ~tyenv ~globals ~funcs ~strings ~entries
    ?(qpoints = []) ?(annotations = []) () =
  if not (List.mem_assoc "main" entries) then
    invalid_arg "Progdef.make_version: entries must include main";
  {
    prog;
    version_tag;
    layout_bias;
    heap_words;
    lib_heap_words;
    tyenv;
    globals;
    funcs;
    strings;
    entries;
    qpoints;
    annotations;
  }

(* ------------------------------------------------------------------ *)
(* Annotation lookups *)

let obj_handler version symbol =
  List.find_map
    (function
      | Obj_handler { symbol = s; reveal } when s = symbol -> Some reveal
      | Obj_handler _ | Reinit_handler _ | Transfer_handler _ -> None)
    version.annotations

let reinit_handlers version =
  List.filter_map
    (function
      | Reinit_handler { name; run } -> Some (name, run)
      | Obj_handler _ | Transfer_handler _ -> None)
    version.annotations

let transfer_handler version ty_name =
  List.find_map
    (function
      | Transfer_handler { ty_name = n; transform } when n = ty_name -> Some transform
      | Transfer_handler _ | Obj_handler _ | Reinit_handler _ -> None)
    version.annotations

let annotation_count version = List.length version.annotations

(* ------------------------------------------------------------------ *)
(* Version diffing: the "Changes" columns of Table 1 *)

type change_summary = { funcs_changed : int; vars_changed : int; types_changed : int }

let diff_versions (a : version) (b : version) =
  let sym_diff l1 l2 =
    List.length (List.filter (fun x -> not (List.mem x l2)) l1)
    + List.length (List.filter (fun x -> not (List.mem x l1)) l2)
  in
  let funcs_changed = sym_diff a.funcs b.funcs in
  let var_changed (name, ty) =
    match List.assoc_opt name b.globals with
    | None -> true (* deleted *)
    | Some ty' -> not (Ty.equal a.tyenv b.tyenv ty ty')
  in
  let vars_changed =
    List.length (List.filter var_changed a.globals)
    + List.length (List.filter (fun (n, _) -> not (List.mem_assoc n a.globals)) b.globals)
  in
  let names_a = Ty.env_names a.tyenv and names_b = Ty.env_names b.tyenv in
  let ty_changed n =
    match (List.mem n names_a, List.mem n names_b) with
    | true, false | false, true -> true
    | true, true ->
        not (Ty.equal a.tyenv b.tyenv (Ty.Named n) (Ty.Named n))
    | false, false -> false
  in
  let types_changed =
    List.length (List.filter ty_changed (List.sort_uniq compare (names_a @ names_b)))
  in
  { funcs_changed; vars_changed; types_changed }
