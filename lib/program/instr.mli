(** Instrumentation configuration — the cumulative layers of Table 3.

    The paper measures run-time overhead as layers stack up: unblockification
    alone (Unblock), plus static instrumentation maintaining allocator tags
    (+SInstr), plus dynamic instrumentation tracking shared-library
    allocations and process/thread metadata (+DInstr), plus quiescence
    detection hooks (+QDet). [instrument_regions] is the separate [nginxreg]
    configuration extending tags into the region allocator. *)

type t = {
  unblockify : bool;
  static_instr : bool;
  dynamic_instr : bool;
  quiesce_detect : bool;
  instrument_regions : bool;
}

val baseline : t
(** Nothing enabled — the uninstrumented program. *)

val unblock : t

(** Unblock + static instrumentation. *)
val sinstr : t

(** [sinstr] + dynamic instrumentation. *)
val dinstr : t

(** [dinstr] + quiescence detection: the full MCR configuration. *)
val qdet : t

val full : t
(** [qdet] — the default for running MCR. *)

val with_regions : t -> t
(** Enable region-allocator instrumentation on top. *)

val name : t -> string
(** Row label: "baseline", "Unblock", "+SInstr", "+DInstr", "+QDet". *)

val table3_rows : (string * t) list
(** The four measured configurations, in the paper's column order. *)
