(** The programming interface simulated servers are written against.

    Everything a server does — calling the kernel, allocating typed memory,
    reading and writing its globals — goes through these combinators, which
    is where MCR's instrumentation lives: shadow call stacks ({!fn}),
    profiled loops ({!loop}), unblockified blocking calls ({!blocking}),
    and tag-maintaining allocation ({!malloc}).

    All functions take the {!Progdef.ctx} handed to the entry point and must
    run inside that simulated thread. *)

open Progdef

exception Sys_error of Mcr_simos.Sysdefs.err
(** Raised by the [_exn] conveniences on unexpected errors. *)

exception Unreachable_after_exit of int
(** Raised (with the pid) if control ever returns from {!exit} — a kernel
    bug; the [Exit] effect must unwind the thread. *)

(** {1 Control} *)

val fn : ctx -> string -> (unit -> 'a) -> 'a
(** [fn t name body] runs [body] with [name] pushed on the shadow call
    stack. Call-stack IDs (replay matching, object pairing) hash these
    frames. *)

val loop : ctx -> string -> (unit -> bool) -> unit
(** [loop t name step] runs [step] until it returns [false]. Loop profiling
    (long-lived loop detection) observes entry and termination. *)

val app_work : ctx -> int -> unit
(** Charge [n] application work units to virtual time (request handling
    compute). *)

val exit : ctx -> int -> 'a
(** Terminate the process. @raise Unreachable_after_exit if the kernel
    fails to unwind the calling thread. *)

(** {1 System calls} *)

val sys : ctx -> Mcr_simos.Sysdefs.call -> Mcr_simos.Sysdefs.result
(** A plain system call. *)

val blocking : ctx -> qpoint:string -> Mcr_simos.Sysdefs.call -> Mcr_simos.Sysdefs.result
(** A blocking call at a potential quiescent point. When the site is
    instrumented (listed in the version's [qpoints] and unblockification is
    on), the call is wrapped: it never truly blocks, periodically runs the
    quiescence hook, and parks at the barrier when an update is pending.
    The first wrapped call in a process marks the end of its startup. *)

val sys_fd_exn : ctx -> Mcr_simos.Sysdefs.call -> int
(** [sys] + expect [Ok_fd]. @raise Sys_error otherwise. *)

val sys_unit_exn : ctx -> Mcr_simos.Sysdefs.call -> unit

(** {1 Memory} *)

val sizeof : ctx -> string -> int
(** Size in words of a named type. *)

val malloc : ctx -> ?site:string -> string -> Mcr_vmem.Addr.t
(** [malloc t tyname] allocates one object of the named type from the
    instrumented heap, maintaining type/site/call-stack tags when static
    instrumentation is on. [site] defaults to ["<innermost frame>:<tyname>"]
    and is the cross-version identity of the allocation site. *)

val malloc_n : ctx -> ?site:string -> string -> int -> Mcr_vmem.Addr.t
(** Allocate an array of [n] objects of the named type (tagged as such). *)

val malloc_opaque : ctx -> ?site:string -> int -> Mcr_vmem.Addr.t
(** Allocate [words] of untyped storage (tagged opaque — conservatively
    traced). *)

val free : ctx -> Mcr_vmem.Addr.t -> unit

val lib_malloc : ctx -> int -> Mcr_vmem.Addr.t
(** Allocate from the uninstrumented shared-library heap. *)

val lib_free : ctx -> Mcr_vmem.Addr.t -> unit

val global : ctx -> string -> Mcr_vmem.Addr.t
(** Address of a global by symbol name. @raise Not_found. *)

val string_lit : ctx -> string -> Mcr_vmem.Addr.t
(** Address of an interned string literal. @raise Not_found. *)

val func_ptr : ctx -> string -> int
(** Value of a function pointer (the function symbol's address). *)

val load : ctx -> Mcr_vmem.Addr.t -> int
val store : ctx -> Mcr_vmem.Addr.t -> int -> unit

val load_field : ctx -> Mcr_vmem.Addr.t -> string -> string -> int
(** [load_field t base tyname field]. *)

val store_field : ctx -> Mcr_vmem.Addr.t -> string -> string -> int -> unit

val field_addr : ctx -> Mcr_vmem.Addr.t -> string -> string -> Mcr_vmem.Addr.t

val write_bytes : ctx -> Mcr_vmem.Addr.t -> string -> unit
val read_string : ctx -> Mcr_vmem.Addr.t -> string

val stack_var : ctx -> string -> string -> Mcr_vmem.Addr.t
(** [stack_var t name tyname] allocates a stack-resident variable for this
    thread and registers it as a tracing root (the paper's overlay stack
    metadata for functions active at quiescent points). The root key is
    ["<class>#<ordinal>:<name>"], stable across versions. *)

(** {1 Custom allocators} *)

val pool : ctx -> ?parent:Mcr_alloc.Pool.t -> ?chunk_words:int -> string -> Mcr_alloc.Pool.t
(** Create (and register with the image) a region allocator. Per-object
    instrumentation follows the image's [instrument_regions] flag. *)

val palloc : ctx -> Mcr_alloc.Pool.t -> ?site:string -> string -> Mcr_vmem.Addr.t
(** Typed pool allocation (tags maintained only in instrumented pools). *)

val palloc_words : ctx -> Mcr_alloc.Pool.t -> int -> Mcr_vmem.Addr.t

val slab : ctx -> string -> slot_words:int -> slots_per_chunk:int -> Mcr_alloc.Slab.t
val slab_alloc : ctx -> Mcr_alloc.Slab.t -> Mcr_vmem.Addr.t
val slab_free : ctx -> Mcr_alloc.Slab.t -> Mcr_vmem.Addr.t -> unit

val masquerade : ctx -> frames:string list -> (unit -> 'a) -> 'a
(** [masquerade t ~frames f] runs [f] with the thread's shadow call stack
    temporarily replaced by [frames] (innermost first). Reinit handlers use
    this to re-create processes with the same creation-time call-stack ID
    as the old version's original fork site — the manual control-migration
    effort the paper quantifies for volatile quiescent points. *)

val find_pool : ctx -> string -> Mcr_alloc.Pool.t
(** Registered pool by name (in this process's image — forked children see
    their rebound copies). @raise Not_found. *)

val find_slab : ctx -> string -> Mcr_alloc.Slab.t
(** Registered slab by name. @raise Not_found. *)

val subpool : ctx -> parent:Mcr_alloc.Pool.t -> string -> Mcr_alloc.Pool.t
(** A nested region (child pool), destroyed with its parent — httpd's
    per-request pools. Not registered with the image: transient pools are
    reached through their parent and never outlive a request. *)

val pool_destroy : ctx -> Mcr_alloc.Pool.t -> unit
val palloc_bytes : ctx -> Mcr_alloc.Pool.t -> string -> Mcr_vmem.Addr.t
(** Copy a string into pool storage; returns its address. *)
