module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module Costs = Mcr_simos.Costs
module Ty = Mcr_types.Ty
module Tyreg = Mcr_types.Tyreg
module Access = Mcr_types.Access
module Symtab = Mcr_types.Symtab
module Heap = Mcr_alloc.Heap
module Pool = Mcr_alloc.Pool
module Slab = Mcr_alloc.Slab
module Sites = Mcr_alloc.Sites
module Aspace = Mcr_vmem.Aspace
module Addr = Mcr_vmem.Addr
module Barrier = Mcr_quiesce.Barrier
module Profiler = Mcr_quiesce.Profiler
open Progdef

exception Sys_error of S.err
exception Unreachable_after_exit of int

(* Interval between quiescence-hook checks inside unblockified calls. *)
let qtick_ns = 10_000_000

let costs t = K.costs t.kernel
let charge t ns = K.charge t.kernel ns

(* ------------------------------------------------------------------ *)
(* Control *)

let fn t name body =
  K.push_frame t.thread name;
  Fun.protect ~finally:(fun () -> K.pop_frame t.thread) body

let loop t name step =
  (match t.image.i_profiler with
  | Some p -> Profiler.note_loop_enter p t.thread name
  | None -> ());
  let rec go () = if step () then go () in
  go ();
  match t.image.i_profiler with
  | Some p -> Profiler.note_loop_exit p t.thread name
  | None -> ()

let app_work t n = charge t (n * (costs t).Costs.app_work_ns)

let exit t status =
  ignore (K.syscall (S.Exit { status }));
  (* the kernel unwinds the thread inside the Exit effect; returning here
     means it failed to — surface a diagnosable error, not Assert_failure *)
  raise (Unreachable_after_exit (K.pid t.proc))

(* ------------------------------------------------------------------ *)
(* System calls *)

let sys _t call = K.syscall call

let sys_fd_exn t call =
  match sys t call with
  | S.Ok_fd fd -> fd
  | S.Err e -> raise (Sys_error e)
  | _ -> raise (Sys_error S.EINVAL)

let sys_unit_exn t call =
  match sys t call with
  | S.Ok_unit -> ()
  | S.Err e -> raise (Sys_error e)
  | _ -> raise (Sys_error S.EINVAL)

let qpoint_instrumented t ~qpoint call =
  t.image.i_instr.Instr.unblockify
  && List.mem (qpoint, S.call_name call) t.image.i_version.qpoints

let mark_first_quiesce t =
  if not t.image.i_startup_complete then begin
    t.image.i_startup_complete <- true;
    List.iter (fun f -> f t.image) (List.rev t.image.i_first_quiesce_hooks)
  end

let register_barrier_once t =
  let tid = K.tid t.thread in
  if not (Hashtbl.mem t.image.i_registered tid) then begin
    Hashtbl.replace t.image.i_registered tid ();
    Barrier.register_thread t.image.i_barrier
  end

(* The unblockification wrapper: expose blocking semantics to the caller,
   but never truly block — try the nonblocking variant, wait in short
   slices, and run the quiescence hook between slices (Section 4). *)
let unblockified t call =
  let image = t.image in
  (* the hook parks at the barrier when quiescence is pending; on resume the
     wrapped call reports EINTR so the program re-arms with fresh state *)
  let hook () =
    if image.i_instr.Instr.quiesce_detect then begin
      charge t (costs t).Costs.qhook_ns;
      Barrier.hook image.i_barrier
    end
    else false
  in
  let wait_fd fd =
    ignore (K.syscall (S.Poll { fds = [ fd ]; timeout_ns = Some qtick_ns; nonblock = false }))
  in
  match call with
  | S.Accept a ->
      (* the timeout-based variant (semtimedop-style): wakes one acceptor
         per connection rather than thundering every wrapped poller *)
      let rec go () =
        if hook () then S.Err S.EINTR
        else
          match K.syscall (S.Accept_timed { fd = a.fd; timeout_ns = qtick_ns }) with
          | S.Err S.ETIMEDOUT -> go ()
          | r -> r
      in
      go ()
  | S.Read r ->
      let rec go () =
        if hook () then S.Err S.EINTR
        else
          match K.syscall (S.Read { r with nonblock = true }) with
          | S.Err S.EAGAIN ->
              wait_fd r.fd;
              go ()
          | res -> res
      in
      go ()
  | S.Recv_fd r ->
      let rec go () =
        if hook () then S.Err S.EINTR
        else
          match K.syscall (S.Recv_fd { r with nonblock = true }) with
          | S.Err S.EAGAIN ->
              wait_fd r.conn;
              go ()
          | res -> res
      in
      go ()
  | S.Poll p ->
      let rec go remaining =
        if hook () then S.Err S.EINTR
        else begin
          let slice =
            match remaining with Some r -> min qtick_ns r | None -> qtick_ns
          in
          match K.syscall (S.Poll { p with timeout_ns = Some slice }) with
          | S.Ok_ready [] -> begin
              match remaining with
              | Some r when r <= slice -> S.Ok_ready []
              | Some r -> go (Some (r - slice))
              | None -> go None
            end
          | res -> res
        end
      in
      go p.timeout_ns
  | S.Sem_wait s ->
      let rec go remaining =
        if hook () then S.Err S.EINTR
        else begin
          let slice =
            match remaining with Some r -> min qtick_ns r | None -> qtick_ns
          in
          match K.syscall (S.Sem_wait { s with timeout_ns = Some slice }) with
          | S.Err S.ETIMEDOUT -> begin
              match remaining with
              | Some r when r <= slice -> S.Err S.ETIMEDOUT
              | Some r -> go (Some (r - slice))
              | None -> go None
            end
          | res -> res
        end
      in
      go s.timeout_ns
  | call ->
      (* calls with no unblockifiable variant pass through *)
      K.syscall call

let blocking t ~qpoint call =
  if not (qpoint_instrumented t ~qpoint call) then K.syscall call
  else begin
    charge t (costs t).Costs.unblock_wrap_ns;
    register_barrier_once t;
    mark_first_quiesce t;
    let tid = K.tid t.thread in
    Hashtbl.replace t.image.i_qpoint_now tid qpoint;
    Fun.protect
      ~finally:(fun () -> Hashtbl.remove t.image.i_qpoint_now tid)
      (fun () -> unblockified t call)
  end

(* ------------------------------------------------------------------ *)
(* Memory *)

let env t = t.image.i_version.tyenv

let sizeof t tyname = Ty.sizeof_words (env t) (Ty.Named tyname)

let default_site t tyname =
  let frame = match K.callstack t.thread with f :: _ -> f | [] -> "?" in
  frame ^ ":" ^ tyname

let charge_alloc t ~instrumented =
  let c = costs t in
  charge t (c.Costs.alloc_ns + if instrumented then 2 * c.Costs.tag_word_ns else 0)

let alloc_meta t ~site tyname =
  let ty_id =
    match Tyreg.id_of_name t.image.i_tyreg tyname with
    | Some id -> id
    | None -> Tyreg.register t.image.i_tyreg ~name:tyname (Ty.Named tyname)
  in
  let site_id = Sites.register t.image.i_sites ~label:site ~ty_id in
  (ty_id, site_id)

let malloc t ?site tyname =
  let site = Option.value site ~default:(default_site t tyname) in
  let ty_id, site_id = alloc_meta t ~site tyname in
  charge_alloc t ~instrumented:(Heap.instrumented t.image.i_heap);
  Heap.malloc t.image.i_heap ~ty_id ~site:site_id ~callstack:(K.callstack_id t.thread)
    (sizeof t tyname)

let malloc_n t ?site tyname n =
  let arr_name = Printf.sprintf "%s[%d]" tyname n in
  let arr_ty = Ty.Array (Ty.Named tyname, n) in
  let site = Option.value site ~default:(default_site t arr_name) in
  let ty_id =
    match Tyreg.id_of_name t.image.i_tyreg arr_name with
    | Some id -> id
    | None -> Tyreg.register t.image.i_tyreg ~name:arr_name arr_ty
  in
  let site_id = Sites.register t.image.i_sites ~label:site ~ty_id in
  charge_alloc t ~instrumented:(Heap.instrumented t.image.i_heap);
  Heap.malloc t.image.i_heap ~ty_id ~site:site_id ~callstack:(K.callstack_id t.thread)
    (n * sizeof t tyname)

let malloc_opaque t ?site words =
  let site = Option.value site ~default:(default_site t "opaque") in
  let site_id = Sites.register t.image.i_sites ~label:site ~ty_id:0 in
  charge_alloc t ~instrumented:(Heap.instrumented t.image.i_heap);
  (* large blocks are page-segregated, as ptmalloc does *)
  if words >= 256 then
    Heap.malloc_aligned t.image.i_heap ~ty_id:0 ~site:site_id
      ~callstack:(K.callstack_id t.thread) words
  else
    Heap.malloc t.image.i_heap ~ty_id:0 ~site:site_id ~callstack:(K.callstack_id t.thread) words

let free t addr =
  charge t (costs t).Costs.alloc_ns;
  Heap.free t.image.i_heap addr

let lib_malloc t words =
  let c = costs t in
  charge t c.Costs.alloc_ns;
  if t.image.i_instr.Instr.dynamic_instr then charge t c.Costs.tag_word_ns;
  Heap.malloc t.image.i_lib_heap words

let lib_free t addr =
  charge t (costs t).Costs.alloc_ns;
  Heap.free t.image.i_lib_heap addr

let global t name = (Symtab.lookup t.image.i_symtab name).Symtab.addr

let string_lit t s = Symtab.string_addr t.image.i_symtab s

let func_ptr t name = Symtab.func_addr t.image.i_symtab name

let load t addr = Aspace.read_word t.image.i_aspace addr
let store t addr v = Aspace.write_word t.image.i_aspace addr v

let load_field t base tyname field =
  Access.read_field t.image.i_aspace (env t) ~base (Ty.Named tyname) field

let store_field t base tyname field v =
  Access.write_field t.image.i_aspace (env t) ~base (Ty.Named tyname) field v

let field_addr t base tyname field =
  Access.field_addr (env t) ~base (Ty.Named tyname) field

let write_bytes t addr s = Access.write_bytes t.image.i_aspace addr s
let read_string t addr = Access.read_string t.image.i_aspace addr

let stack_var t name tyname =
  let image = t.image in
  let tid = K.tid t.thread in
  let cursor, limit =
    match Hashtbl.find_opt image.i_stack_cursors tid with
    | Some c -> c
    | None ->
        let base =
          Aspace.map image.i_aspace
            ~name:(Printf.sprintf "stack:%d" tid)
            (Aspace.Near Mcr_vmem.Region.Stack) ~size:Addr.page_size Mcr_vmem.Region.Stack
        in
        let c = (ref base, Addr.add base Addr.page_size) in
        Hashtbl.replace image.i_stack_cursors tid c;
        c
  in
  let words = sizeof t tyname in
  let addr = !cursor in
  if Addr.add_words addr words > limit then invalid_arg "Api.stack_var: stack overflow";
  cursor := Addr.add_words addr words;
  let key = Printf.sprintf "%s:%s" (Loader.thread_key image t.thread) name in
  image.i_stack_roots <- (key, Ty.Named tyname, addr) :: image.i_stack_roots;
  addr

(* ------------------------------------------------------------------ *)
(* Custom allocators *)

(* region-allocator tagging is part of the static instrumentation layer *)
let regions_instrumented t =
  t.image.i_instr.Instr.instrument_regions && t.image.i_instr.Instr.static_instr

let pool t ?parent ?chunk_words name =
  let p =
    Pool.create t.image.i_heap ?parent ~instrument:(regions_instrumented t) ?chunk_words ~name ()
  in
  t.image.i_pools <- (name, p) :: t.image.i_pools;
  p

let palloc t pool_ ?site tyname =
  let site = Option.value site ~default:(default_site t tyname) in
  let instrumented = Pool.is_instrumented pool_ in
  let c = costs t in
  charge t (c.Costs.alloc_ns + if instrumented then 2 * c.Costs.tag_word_ns else 0);
  if instrumented then begin
    let ty_id, site_id = alloc_meta t ~site tyname in
    Pool.palloc pool_ ~ty_id ~site:site_id ~callstack:(K.callstack_id t.thread) (sizeof t tyname)
  end
  else Pool.palloc pool_ (sizeof t tyname)

let palloc_words t pool_ words =
  charge t (costs t).Costs.alloc_ns;
  Pool.palloc pool_ words

let slab t name ~slot_words ~slots_per_chunk =
  let s = Slab.create t.image.i_heap ~slot_words ~slots_per_chunk ~name in
  t.image.i_slabs <- (name, s) :: t.image.i_slabs;
  s

let slab_alloc t s =
  charge t (costs t).Costs.alloc_ns;
  Slab.alloc s

let slab_free t s addr =
  charge t (costs t).Costs.alloc_ns;
  Slab.free s addr

let masquerade t ~frames f =
  let saved = K.callstack t.thread in
  let set fs =
    (* rebuild the stack exactly *)
    List.iter (fun _ -> K.pop_frame t.thread) (K.callstack t.thread);
    List.iter (K.push_frame t.thread) (List.rev fs)
  in
  set frames;
  Fun.protect ~finally:(fun () -> set saved) f

let find_pool t name = List.assoc name t.image.i_pools

let find_slab t name = List.assoc name t.image.i_slabs

let subpool t ~parent name =
  (* grabbing the chunk is a real (instrumented) heap allocation *)
  charge_alloc t ~instrumented:(Heap.instrumented t.image.i_heap);
  Pool.create t.image.i_heap ~parent ~instrument:(regions_instrumented t) ~chunk_words:64
    ~name ()

let pool_destroy t p =
  charge t (costs t).Costs.alloc_ns;
  Pool.destroy p

let palloc_bytes t p s =
  let words = (String.length s + 1 + Addr.word_size - 1) / Addr.word_size in
  let addr = palloc_words t p words in
  Access.write_bytes t.image.i_aspace addr s;
  addr
