module K = Mcr_simos.Kernel
module Costs = Mcr_simos.Costs
module Ty = Mcr_types.Ty
module Typlan = Mcr_types.Typlan
module Tyreg = Mcr_types.Tyreg
module Symtab = Mcr_types.Symtab
module Heap = Mcr_alloc.Heap
module Sites = Mcr_alloc.Sites
module Aspace = Mcr_vmem.Aspace
module Addr = Mcr_vmem.Addr
module Region = Mcr_vmem.Region
module P = Mcr_program.Progdef
module Trace = Mcr_obs.Trace
open Objgraph

(* Where the conflicting object sat in the transfer machinery when the
   conflict fired: its shard under the active plan (-1 unsharded), the last
   pre-copy round that staged it (0 = never), and its allocation call-stack
   ID. Captured eagerly — rollback destroys the state these are derived
   from, and the flight recorder must explain the failure afterwards. *)
type provenance = { shard : int; round : int; callstack : int }

type conflict =
  | Nonupdatable_changed of
      { addr : Addr.t; ty_name : string; detail : string; prov : provenance }
  | No_plan of { addr : Addr.t; ty_name : string; detail : string; prov : provenance }
  | Missing_type of { addr : Addr.t; ty_name : string; prov : provenance }
  | Injected of { detail : string }

type outcome = {
  transferred_objects : int;
  transferred_words : int;
  skipped_clean : int;
  skipped_clean_words : int;
  immutable_remapped : int;
  fresh_allocations : int;
  type_transformed : int;
  dangling_zeroed : int;
  conflicts : conflict list;
  cost_ns : int;
  live_words : int;
  precopied_objects : int;
  precopied_words : int;
  remapped_pages : int;
  remapped_words : int;
  hashed_words : int;
  workers : int;
  shard_words : int array;
  shard_cost_ns : int array;
  trace_shard_ns : int array;
  trace_critical_ns : int;
  sequential_cost_ns : int;
}

(* ------------------------------------------------------------------ *)
(* Pre-copy staging *)

(* A pre-copy session never writes the new version: it stages content
   hashes of reachable old objects host-side and returns what such a round
   would have cost. The final in-window [run] then treats objects whose
   staged hash still matches their current content as prepaid — the copy
   happens identically (so the result is byte-for-byte the single-shot
   result), only the virtual-time charge is waived. Staging nothing into
   the new address space is what makes rollback from mid-pre-copy free and
   keeps the order-sensitive startup-matching index untouched. *)

type precopy_entry = { pc_words : int; pc_hash : int; pc_round : int }

type precopy = {
  pc_entries : (Addr.t, precopy_entry) Hashtbl.t; (* old payload addr -> staged *)
  mutable pc_rounds : int;
}

type round_stats = {
  round_objects : int;  (** Objects (re-)staged this round. *)
  round_words : int;  (** Words (re-)staged this round — the delta size. *)
  round_invalidated : int;  (** Staged entries dropped (object freed/moved/resized). *)
  staged_objects : int;  (** Live staged entries after the round. *)
  round_cost_ns : int;  (** What transferring this round's delta costs. *)
}

let precopy_create () = { pc_entries = Hashtbl.create 256; pc_rounds = 0 }
let precopy_rounds pc = pc.pc_rounds

let content_hash aspace addr words =
  Aspace.fold_words aspace addr ~words ~init:(Mcr_util.Fnv.int words) ~f:(fun h v ->
      Mcr_util.Fnv.combine h (Mcr_util.Fnv.int v))

let precopy_round pc ~(old_image : P.image) ~analysis ?since ?(dirty_only = true)
    ?(workers = 1) () =
  let aspace = old_image.P.i_aspace in
  let costs = K.costs old_image.P.i_kernel in
  let twn = costs.Costs.transfer_word_ns in
  (* Dirty-driven staging: the final window only copies objects [run] will
     select, so staging (hashing) anything else is wasted work. When the
     transfer is dirty-only, soft-dirty-clean startup objects that will
     land on a startup match are skipped instead of hashed every round —
     this is what makes round cost scale with the dirty set rather than
     with the whole reachable graph. *)
  let will_copy (o : obj) =
    if o.immutable_ then true
    else
      match o.origin with
      | O_string _ -> false (* interned in the new rodata, never copied *)
      | O_static _ | O_stack _ -> o.dirty || not dirty_only
      | (O_heap | O_pool_obj _) when o.startup && o.site <> None ->
          o.dirty || not dirty_only
      | _ -> true
  in
  (* invalidate stale entries: the object behind a staged address was freed,
     moved, or resized since the previous round *)
  let live = Hashtbl.create (analysis.Objgraph.reachable_count + 1) in
  Objgraph.iter_reachable analysis (fun o -> Hashtbl.replace live o.addr o.words);
  let stale =
    Hashtbl.fold
      (fun addr e acc ->
        match Hashtbl.find_opt live addr with
        | Some w when w = e.pc_words -> acc
        | _ -> addr :: acc)
      pc.pc_entries []
  in
  List.iter (Hashtbl.remove pc.pc_entries) stale;
  (* the round's delta is copied by the same worker pool as the final
     window: charge per-shard and report the critical path *)
  let plan = Objgraph.shard analysis ~workers in
  let w = plan.Objgraph.sp_workers in
  let shard_words = Array.make w 0 in
  let objects = ref 0 and words = ref 0 in
  Objgraph.iter_reachable analysis (fun o ->
      let need =
        will_copy o
        &&
        match Hashtbl.find_opt pc.pc_entries o.addr with
        | None -> true
        | Some _ -> (
            match since with
            | None -> true
            | Some seq -> Aspace.range_written_since aspace o.addr ~words:o.words ~seq)
      in
      if need then begin
        Hashtbl.replace pc.pc_entries o.addr
          {
            pc_words = o.words;
            pc_hash = content_hash aspace o.addr o.words;
            pc_round = pc.pc_rounds + 1;
          };
        incr objects;
        words := !words + o.words;
        let s = plan.Objgraph.sp_shard_of.(o.id) in
        if s >= 0 then shard_words.(s) <- shard_words.(s) + o.words
      end);
  pc.pc_rounds <- pc.pc_rounds + 1;
  let round_cost_ns =
    if w <= 1 then !words * twn
    else
      (Array.fold_left max 0 shard_words * twn)
      + (w * (costs.Costs.worker_spawn_ns + costs.Costs.worker_join_ns))
  in
  {
    round_objects = !objects;
    round_words = !words;
    round_invalidated = List.length stale;
    staged_objects = Hashtbl.length pc.pc_entries;
    round_cost_ns;
  }

(* Where an old object lands in the new version. *)
type dest =
  | D_existing of { addr : Addr.t; ty : Ty.t option; copy : bool }
      (** Startup-matched (or static/stack); [copy] false = clean, skip. *)
  | D_fresh of { addr : Addr.t; ty : Ty.t option }
  | D_in_place  (** Immutable: same address, pages pinned. *)
  | D_string of Addr.t  (** Interned literal in the new rodata. *)
  | D_dropped

(* Per-destination-page bookkeeping for the zero-copy remap: a page is a
   remap candidate only if every byte written to it came from verbatim
   copies sharing one page-congruent src/dst delta. Handler output,
   non-identity transformations and fixup rewrites poison the page. *)
type page_contrib = {
  mutable pg_delta : int; (* dst byte address - src byte address *)
  mutable pg_seen : bool; (* a verbatim run contributed (pg_delta valid) *)
  mutable pg_ok : bool; (* still eligible *)
  mutable pg_shard : int; (* shard that pays the remap charge *)
  mutable pg_parts : (int * int * int) list; (* shard, words, charged ns *)
}

type state = {
  old_image : P.image;
  new_image : P.image;
  analysis : Objgraph.t;
  dirty_only : bool;
  remap : bool;
  precopy : precopy option;
  plan : Objgraph.shard_plan;
  shard_cost : int array; (* per-shard copy charge *)
  shard_w : int array; (* per-shard words copied *)
  dests : (int, dest) Hashtbl.t; (* old obj id -> destination *)
  plans : (int, Typlan.t) Hashtbl.t;
      (* transformation plan used per old object: interior pointers must
         follow their field through the plan, not a linear offset *)
  page_contribs : (int, page_contrib) Hashtbl.t; (* dst page number *)
  mutable conflicts : conflict list;
  mutable cost : int;
  mutable words_copied : int;
  mutable objects_copied : int;
  mutable skipped : int;
  mutable skipped_w : int;
  mutable pinned : int;
  mutable fresh : int;
  mutable transformed : int;
  mutable dangling : int;
  mutable precopied_objs : int;
  mutable precopied_w : int;
  mutable remapped_pages : int;
  mutable remapped_w : int;
  mutable hashed_w : int;
}

let conflictf st c = st.conflicts <- c :: st.conflicts

let provenance st (o : obj) =
  let round =
    match st.precopy with
    | Some pc -> (
        match Hashtbl.find_opt pc.pc_entries o.addr with
        | Some e -> e.pc_round
        | None -> 0)
    | None -> 0
  in
  { shard = st.plan.Objgraph.sp_shard_of.(o.id); round; callstack = o.callstack }

let old_env st = st.old_image.P.i_version.P.tyenv
let new_env st = st.new_image.P.i_version.P.tyenv

let new_ty_exists st name =
  match Ty.env_find (new_env st) name with _ -> true | exception Not_found -> false

(* ------------------------------------------------------------------ *)
(* Startup-object matching index (new version) *)

(* site label -> startup blocks in address order, consumed in order *)
let build_startup_index (new_image : P.image) =
  let index : (string, (Addr.t * int * string option) Queue.t) Hashtbl.t = Hashtbl.create 32 in
  let add_block ~site_label ~payload ~words ~ty_name =
    match site_label with
    | None -> ()
    | Some label ->
        let q =
          match Hashtbl.find_opt index label with
          | Some q -> q
          | None ->
              let q = Queue.create () in
              Hashtbl.replace index label q;
              q
        in
        Queue.push (payload, words, ty_name) q
  in
  let of_block (b : Heap.block) =
    if b.Heap.startup then begin
      let site_label =
        if b.Heap.site = 0 then None
        else
          match Sites.find new_image.P.i_sites b.Heap.site with
          | s -> Some s.Sites.label
          | exception Not_found -> None
      in
      let ty_name =
        if b.Heap.ty_id = 0 then None
        else
          match Tyreg.name_of_id new_image.P.i_tyreg b.Heap.ty_id with
          | n -> Some n
          | exception Not_found -> None
      in
      add_block ~site_label ~payload:b.Heap.payload ~words:b.Heap.words ~ty_name
    end
  in
  Heap.iter_live new_image.P.i_heap of_block;
  List.iter
    (fun (_, pool) -> Mcr_alloc.Pool.iter_objects pool of_block)
    new_image.P.i_pools;
  index

(* ------------------------------------------------------------------ *)
(* Destination assignment *)

let pin_pages st (o : obj) =
  let aspace = st.new_image.P.i_aspace in
  let rec go page =
    if page < Addr.add_words o.addr o.words then begin
      if not (Aspace.is_mapped_word aspace page) then
        ignore
          (Aspace.map aspace ~name:"mcr:pin" (Aspace.Fixed page) ~size:Addr.page_size
             (match o.region with Region.Lib -> Region.Lib | _ -> Region.Mmap));
      go (Addr.add page Addr.page_size)
    end
  in
  go (Addr.page_base o.addr)

let check_nonupdatable st (o : obj) =
  match o.ty_name with
  | Some name when new_ty_exists st name ->
      if not (Ty.equal (old_env st) (new_env st) (Ty.Named name) (Ty.Named name)) then
        conflictf st
          (Nonupdatable_changed
             {
               addr = o.addr;
               ty_name = name;
               detail = "object is conservatively traced and cannot be type-transformed";
               prov = provenance st o;
             })
  | Some _ | None -> ()

let assign_dest st startup_index (o : obj) =
  let dest =
    if o.immutable_ then begin
      check_nonupdatable st o;
      pin_pages st o;
      st.pinned <- st.pinned + 1;
      D_in_place
    end
    else
      match o.origin with
      | O_string s -> begin
          match Symtab.string_addr st.new_image.P.i_symtab s with
          | addr -> D_string addr
          | exception Not_found -> D_dropped
        end
      | O_static name -> begin
          match Symtab.lookup_opt st.new_image.P.i_symtab name with
          | Some e ->
              D_existing { addr = e.Symtab.addr; ty = Some e.Symtab.ty; copy = o.dirty || not st.dirty_only }
          | None -> D_dropped
        end
      | O_stack key -> begin
          match
            List.find_opt (fun (k, _, _) -> k = key) st.new_image.P.i_stack_roots
          with
          | Some (_, ty, addr) ->
              D_existing { addr; ty = Some ty; copy = o.dirty || not st.dirty_only }
          | None -> D_dropped
        end
      | O_pool_chunk _ | O_slab_chunk _ ->
          (* uninstrumented custom-allocator memory is conservatively traced
             by definition; reaching here (not marked immutable) still means
             it cannot be relocated safely *)
          pin_pages st o;
          st.pinned <- st.pinned + 1;
          D_in_place
      | O_lib | O_pinned ->
          pin_pages st o;
          st.pinned <- st.pinned + 1;
          D_in_place
      | O_heap | O_pool_obj _ -> begin
          (* dynamic object: try the startup-reallocation match first *)
          let matched =
            match o.site with
            | Some label when o.startup -> begin
                match Hashtbl.find_opt startup_index label with
                | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
                | _ -> None
              end
            | _ -> None
          in
          match matched with
          | Some (addr, _words, ty_name) ->
              let ty = Option.map (fun n -> Ty.Named n) ty_name in
              D_existing { addr; ty; copy = o.dirty || not st.dirty_only }
          | None -> begin
              (* reallocate at state-transfer time *)
              match o.ty_name with
              | Some name when not (new_ty_exists st name) ->
                  if o.dirty then
                    conflictf st
                      (Missing_type { addr = o.addr; ty_name = name; prov = provenance st o });
                  D_dropped
              | Some name ->
                  let words = Ty.sizeof_words (new_env st) (Ty.Named name) in
                  let ty_id = Tyreg.register st.new_image.P.i_tyreg ~name (Ty.Named name) in
                  let site_id =
                    match o.site with
                    | Some label -> Sites.register st.new_image.P.i_sites ~label ~ty_id
                    | None -> 0
                  in
                  let addr =
                    Heap.malloc st.new_image.P.i_heap ~ty_id ~site:site_id
                      ~callstack:o.callstack words
                  in
                  st.fresh <- st.fresh + 1;
                  D_fresh { addr; ty = Some (Ty.Named name) }
              | None ->
                  (* untyped block: re-create at same size, verbatim.
                     Mirror the allocator's ptmalloc-style segregation
                     (Api.malloc_opaque): large blocks get page-aligned
                     payloads, which keeps their pages layout-stable so
                     the remap pass can share them instead of copying. *)
                  let addr =
                    if o.words >= 256 then
                      Heap.malloc_aligned st.new_image.P.i_heap ~ty_id:0
                        ~callstack:o.callstack o.words
                    else
                      Heap.malloc st.new_image.P.i_heap ~ty_id:0 ~callstack:o.callstack
                        o.words
                  in
                  st.fresh <- st.fresh + 1;
                  D_fresh { addr; ty = None }
            end
        end
  in
  Hashtbl.replace st.dests o.id dest

(* ------------------------------------------------------------------ *)
(* Copy / transform *)

let read_old st (o : obj) =
  Array.init o.words (fun i -> Aspace.read_word st.old_image.P.i_aspace (Addr.add_words o.addr i))

(* State-transfer stores are kernel-mediated and must be UNTRACKED: a
   tracked store would stamp the page in every consumer's dirty epoch, so
   the next update's pre-copy rounds would re-hash (and the benches
   re-count) the entire transferred image as "dirty" even though the
   program never wrote it. Correctness across updates is preserved by the
   per-page [inherited] taint instead: transferred content diverges from
   what deterministic startup replay would re-create, so Objgraph treats
   inherited pages as dirty forever without polluting any write epoch. *)

let poison_pages st addr ~words =
  if st.remap && words > 0 then begin
    let first = Addr.page_of addr
    and last = Addr.page_of (Addr.add addr ((words * Addr.word_size) - 1)) in
    for pn = first to last do
      match Hashtbl.find_opt st.page_contribs pn with
      | Some c -> c.pg_ok <- false
      | None ->
          Hashtbl.replace st.page_contribs pn
            { pg_delta = 0; pg_seen = false; pg_ok = false; pg_shard = 0; pg_parts = [] }
    done
  end

let write_new st addr words_arr =
  let aspace = st.new_image.P.i_aspace in
  Array.iteri
    (fun i v -> Aspace.write_word_untracked aspace (Addr.add_words addr i) v)
    words_arr;
  Aspace.mark_inherited aspace addr ~words:(Array.length words_arr);
  (* handler output is synthesized, not a page-congruent copy *)
  poison_pages st addr ~words:(Array.length words_arr)

(* Was this object's current content staged by a pre-copy round? If so the
   copy already happened (speculatively, while the old version served) and
   the in-window charge is waived. A hash mismatch means the object was
   written after its last staging: it is part of the final delta and pays
   full price. *)
let prepaid st (o : obj) =
  match st.precopy with
  | None -> false
  | Some pc -> (
      match Hashtbl.find_opt pc.pc_entries o.addr with
      | Some e ->
          e.pc_words = o.words
          && begin
               st.hashed_w <- st.hashed_w + o.words;
               e.pc_hash = content_hash st.old_image.P.i_aspace o.addr o.words
             end
      | None -> false)

let shard_of st (o : obj) =
  let s = st.plan.Objgraph.sp_shard_of.(o.id) in
  if s >= 0 then s else 0

let charge_copy st ~prepaid (o : obj) words =
  let s = shard_of st o in
  st.shard_w.(s) <- st.shard_w.(s) + words;
  if prepaid then begin
    st.precopied_objs <- st.precopied_objs + 1;
    st.precopied_w <- st.precopied_w + words
  end
  else begin
    let c = words * (K.costs st.old_image.P.i_kernel).Costs.transfer_word_ns in
    st.cost <- st.cost + c;
    st.shard_cost.(s) <- st.shard_cost.(s) + c
  end;
  st.words_copied <- st.words_copied + words;
  st.objects_copied <- st.objects_copied + 1

(* Record a verbatim run against its destination pages. The copy itself
   already happened word-by-word; if a whole page ends up byte-identical to
   its (page-aligned congruent) source page, the remap pass below retracts
   the copy charge and shares the frame instead. *)
let record_verbatim st (o : obj) dst_addr n ~prepaid =
  if st.remap && n > 0 then begin
    let twn = (K.costs st.old_image.P.i_kernel).Costs.transfer_word_ns in
    let s = shard_of st o in
    let delta = dst_addr - o.addr in
    let rec go a remaining =
      if remaining > 0 then begin
        let pn = Addr.page_of a in
        let in_page = (Addr.page_size - Addr.page_offset a) / Addr.word_size in
        let portion = min remaining in_page in
        let c =
          match Hashtbl.find_opt st.page_contribs pn with
          | Some c -> c
          | None ->
              let c =
                { pg_delta = 0; pg_seen = false; pg_ok = true; pg_shard = s; pg_parts = [] }
              in
              Hashtbl.replace st.page_contribs pn c;
              c
        in
        if not c.pg_seen then begin
          c.pg_seen <- true;
          c.pg_delta <- delta;
          c.pg_shard <- s
        end
        else if c.pg_delta <> delta then c.pg_ok <- false;
        let charged = if prepaid then 0 else portion * twn in
        c.pg_parts <- (s, portion, charged) :: c.pg_parts;
        go (Addr.add_words a portion) (remaining - portion)
      end
    in
    go dst_addr n
  end

let verbatim st (o : obj) dst_addr dst_words =
  let prepaid = prepaid st o in
  let n = min o.words dst_words in
  Aspace.copy_words
    ~src:st.old_image.P.i_aspace o.addr
    ~dst:st.new_image.P.i_aspace dst_addr ~words:n;
  Aspace.mark_inherited st.new_image.P.i_aspace dst_addr ~words:n;
  record_verbatim st o dst_addr n ~prepaid;
  charge_copy st ~prepaid o n

let transform st (o : obj) ~src_ty ~dst_ty ~dst_addr =
  (* user transfer handlers take precedence (semantic transformations) *)
  let handler =
    match o.ty_name with
    | Some name -> P.transfer_handler st.new_image.P.i_version name
    | None -> None
  in
  match handler with
  | Some h ->
      let prepaid = prepaid st o in
      let old_words = read_old st o in
      let dst_words = Ty.sizeof_words (new_env st) dst_ty in
      let new_words = Array.make dst_words 0 in
      h ~old_words ~new_words;
      write_new st dst_addr new_words;
      charge_copy st ~prepaid o dst_words;
      st.transformed <- st.transformed + 1;
      true
  | None -> begin
      match Typlan.plan ~src_env:(old_env st) ~dst_env:(new_env st) ~src:src_ty ~dst:dst_ty with
      | Ok plan when Typlan.is_identity plan && plan.Typlan.dst_words <= o.words ->
          (* the type did not change shape: this is a plain copy, so route
             it through [verbatim] where the page-remap machinery can see
             it as a page-congruent run *)
          verbatim st o dst_addr plan.Typlan.dst_words;
          true
      | Ok plan ->
          let prepaid = prepaid st o in
          let src = st.old_image.P.i_aspace and dst = st.new_image.P.i_aspace in
          Typlan.apply plan
            ~read:(fun off -> Aspace.read_word src (Addr.add_words o.addr off))
            ~write:(fun off v ->
              Aspace.write_word_untracked dst (Addr.add_words dst_addr off) v);
          Aspace.mark_inherited dst dst_addr ~words:plan.Typlan.dst_words;
          (* a reshaping transformation is not a congruent byte copy *)
          poison_pages st dst_addr ~words:plan.Typlan.dst_words;
          charge_copy st ~prepaid o plan.Typlan.dst_words;
          if not (Typlan.is_identity plan) then begin
            st.transformed <- st.transformed + 1;
            Hashtbl.replace st.plans o.id plan
          end;
          true
      | Error detail ->
          conflictf st
            (No_plan
               {
                 addr = o.addr;
                 ty_name = Option.value o.ty_name ~default:(Ty.to_string src_ty);
                 detail;
                 prov = provenance st o;
               });
          false
    end

(* A clean object may only be skipped if re-running startup reproduced an
   equivalent value for every one of its words. Pointers into pinned
   memory (uninstrumented library state, custom-allocator chunks) break
   that premise: replay allocates *fresh* library state, while the
   transferred image must keep the old, pinned state reachable — so a
   skipped referrer would commit a pointer the full transfer never
   produces. The referrer set falls out of the same traversal that pinned
   the targets, so detecting it adds no analysis cost. *)
let points_into_pinned st (o : obj) =
  let word i = Aspace.read_word st.old_image.P.i_aspace (Addr.add_words o.addr i) in
  let pinned v =
    v <> 0
    &&
    match Objgraph.resolve st.analysis v with
    | Some (target, _) -> Hashtbl.find_opt st.dests target.id = Some D_in_place
    | None -> false
  in
  let found = ref false in
  (match o.ty with
  | Some ty ->
      let slots = Ty.slots (old_env st) ty in
      let tyw = Array.length slots in
      if tyw > 0 then
        for i = 0 to o.words - 1 do
          if not !found then
            match slots.(i mod tyw) with
            | Ty.Slot_ptr _ | Ty.Slot_void_ptr -> if pinned (word i) then found := true
            | Ty.Slot_encoded_ptr { mask; _ } ->
                if pinned (word i land lnot mask) then found := true
            | Ty.Slot_scalar | Ty.Slot_opaque | Ty.Slot_func_ptr -> ()
        done
  | None ->
      for i = 0 to o.words - 1 do
        if (not !found) && pinned (word i) then found := true
      done);
  !found

let force_copy_pin_referrers st (o : obj) =
  match Hashtbl.find_opt st.dests o.id with
  | Some (D_existing { addr; ty; copy = false }) when points_into_pinned st o ->
      Hashtbl.replace st.dests o.id (D_existing { addr; ty; copy = true })
  | _ -> ()

let copy_object st (o : obj) =
  match Hashtbl.find_opt st.dests o.id with
  | None | Some D_dropped | Some (D_string _) -> ()
  | Some (D_existing { copy = false; _ }) ->
      st.skipped <- st.skipped + 1;
      st.skipped_w <- st.skipped_w + o.words
  | Some (D_existing { addr; ty; copy = true }) | Some (D_fresh { addr; ty }) -> begin
      match (o.ty, ty) with
      | Some src_ty, Some dst_ty -> ignore (transform st o ~src_ty ~dst_ty ~dst_addr:addr)
      | _, _ ->
          (* untyped on either side: verbatim *)
          let dst_words =
            match ty with
            | Some dt -> Ty.sizeof_words (new_env st) dt
            | None -> o.words
          in
          verbatim st o addr dst_words
    end
  | Some D_in_place ->
      verbatim st o o.addr o.words

(* ------------------------------------------------------------------ *)
(* Pointer fixup *)

(* translate an interior word offset through the target's transformation
   plan: the word that held the pointed-at field may have moved *)
let translate_offset st target_id delta_words =
  if delta_words = 0 then Some 0 (* a base pointer is object identity, not "first field" *)
  else
    match Hashtbl.find_opt st.plans target_id with
    | None -> Some delta_words
    | Some plan ->
        List.find_map
          (function
            | Typlan.Copy { src_off; dst_off; words }
              when delta_words >= src_off && delta_words < src_off + words ->
                Some (dst_off + (delta_words - src_off))
            | Typlan.Copy _ | Typlan.Zero _ -> None)
          plan.Typlan.actions

let remap_value st v =
  if v = 0 then Some 0
  else
    match Objgraph.resolve st.analysis v with
    | Some (target, _) -> begin
        let delta = v - target.addr in
        let delta_words = delta / Addr.word_size in
        match Hashtbl.find_opt st.dests target.id with
        | Some (D_existing { addr; _ }) | Some (D_fresh { addr; _ }) -> begin
            match translate_offset st target.id delta_words with
            | Some w -> Some (Addr.add_words addr w + (delta mod Addr.word_size))
            | None ->
                (* the pointed-at field was dropped by the update *)
                st.dangling <- st.dangling + 1;
                Some 0
          end
        | Some (D_string addr) -> Some (addr + delta)
        | Some D_in_place -> Some v
        | Some D_dropped ->
            st.dangling <- st.dangling + 1;
            Some 0
        | None -> Some v
      end
    | None -> begin
        (* function pointers relocate by symbol *)
        match Symtab.func_name_of_addr st.old_image.P.i_symtab v with
        | Some fname -> begin
            match Symtab.func_addr st.new_image.P.i_symtab fname with
            | addr -> Some addr
            | exception Not_found ->
                st.dangling <- st.dangling + 1;
                Some 0
          end
        | None -> None (* not a pointer we know; leave untouched *)
      end

let fixup_object st (o : obj) =
  let fixup_at dst_addr dst_ty =
    let slots = Ty.slots (new_env st) dst_ty in
    let aspace = st.new_image.P.i_aspace in
    (* fixup is part of the kernel-mediated transfer too: untracked, and a
       word that actually changes disqualifies its page from remapping *)
    let store a v =
      Aspace.write_word_untracked aspace a v;
      Aspace.mark_inherited aspace a ~words:1;
      poison_pages st a ~words:1
    in
    let tyw = Array.length slots in
    if tyw > 0 then begin
      let dst_words = Ty.sizeof_words (new_env st) dst_ty in
      for w = 0 to dst_words - 1 do
        let a = Addr.add_words dst_addr w in
        match slots.(w mod tyw) with
        | Ty.Slot_ptr _ | Ty.Slot_void_ptr | Ty.Slot_func_ptr ->
            let v = Aspace.read_word aspace a in
            (match remap_value st v with
            | Some v' when v' <> v -> store a v'
            | Some _ | None -> ())
        | Ty.Slot_encoded_ptr { mask; _ } ->
            let v = Aspace.read_word aspace a in
            let ptr = v land lnot mask and meta = v land mask in
            (match remap_value st ptr with
            | Some p' when p' <> ptr -> store a (p' lor meta)
            | Some _ | None -> ())
        | Ty.Slot_scalar | Ty.Slot_opaque -> ()
      done
    end
  in
  match Hashtbl.find_opt st.dests o.id with
  | Some (D_existing { addr; ty = Some dst_ty; copy = true }) -> fixup_at addr dst_ty
  | Some (D_fresh { addr; ty = Some dst_ty }) -> fixup_at addr dst_ty
  | Some D_in_place -> begin
      (* typed pinned objects still get precise slot fixup; opaque pinned
         objects are left verbatim (their targets are pinned too) *)
      match o.ty with
      | Some ty when not (Ty.contains_opaque (old_env st) ty) -> fixup_at o.addr ty
      | Some _ | None -> ()
    end
  | Some (D_existing _) | Some (D_fresh _) | Some (D_string _) | Some D_dropped | None -> ()

(* ------------------------------------------------------------------ *)
(* Zero-copy page remap *)

(* After copy + fixup, any destination page whose content is byte-identical
   to its page-aligned congruent source page need not keep a private copy:
   the frame is shared into the new image (refcounted, COW on first write)
   and the per-word copy charge already accounted against that page is
   retracted in favour of one [remap_page_ns]. Running AFTER the copy keeps
   the committed image byte-identical by construction — equality is checked
   on the final bytes, so the pass only ever changes the virtual-time cost
   and the physical backing, never observable content. *)
let remap_pass st =
  let src = st.old_image.P.i_aspace and dst = st.new_image.P.i_aspace in
  let costs = K.costs st.old_image.P.i_kernel in
  let pw = Addr.words_per_page in
  let page_words aspace base =
    let arr = Array.make pw 0 in
    let i = ref 0 in
    Aspace.fold_words aspace base ~words:pw ~init:() ~f:(fun () v ->
        arr.(!i) <- v;
        incr i);
    arr
  in
  let pages =
    Hashtbl.fold (fun pn _ acc -> pn :: acc) st.page_contribs []
    |> List.sort compare
  in
  List.iter
    (fun pn ->
      let c = Hashtbl.find st.page_contribs pn in
      if c.pg_seen && c.pg_ok && c.pg_delta mod Addr.page_size = 0 then begin
        let dst_page = pn * Addr.page_size in
        let src_page = dst_page - c.pg_delta in
        if
          src_page >= 0
          && Aspace.is_mapped_word src src_page
          && Aspace.is_mapped_word dst dst_page
          (* tracked writes during the window (e.g. fresh-allocation
             headers) mean the page is not purely transfer-installed *)
          && not (Aspace.epoch_page_dirty dst ~name:"mcr.transfer" dst_page)
          && page_words src src_page = page_words dst dst_page
        then begin
          Aspace.share_page ~src src_page ~dst dst_page;
          List.iter
            (fun (s, w, charged) ->
              st.cost <- st.cost - charged;
              st.shard_cost.(s) <- st.shard_cost.(s) - charged;
              st.remapped_w <- st.remapped_w + w)
            c.pg_parts;
          st.cost <- st.cost + costs.Costs.remap_page_ns;
          st.shard_cost.(c.pg_shard) <- st.shard_cost.(c.pg_shard) + costs.Costs.remap_page_ns;
          st.remapped_pages <- st.remapped_pages + 1
        end
      end)
    pages

let run ~old_image ~new_image ~analysis ?(dirty_only = true) ?(remap = false) ?precopy
    ?(workers = 1) ?trace ?fault () =
  (* Sharding is a cost-accounting overlay on the sequential transfer: the
     walk below runs in canonical address order for every [workers] value
     (allocation order, startup-match consumption and the merge-phase fixup
     are unchanged), so the committed image is byte-identical to the
     single-worker result; only the virtual-time charge becomes the
     critical path over shards. *)
  let plan = Objgraph.shard analysis ~workers in
  let st =
    {
      old_image;
      new_image;
      analysis;
      dirty_only;
      remap;
      precopy;
      plan;
      shard_cost = Array.make plan.Objgraph.sp_workers 0;
      shard_w = Array.make plan.Objgraph.sp_workers 0;
      dests = Hashtbl.create 256;
      plans = Hashtbl.create 64;
      page_contribs = Hashtbl.create 256;
      conflicts = [];
      cost = 0;
      words_copied = 0;
      objects_copied = 0;
      skipped = 0;
      skipped_w = 0;
      pinned = 0;
      fresh = 0;
      transformed = 0;
      dangling = 0;
      precopied_objs = 0;
      precopied_w = 0;
      remapped_pages = 0;
      remapped_w = 0;
      hashed_w = 0;
    }
  in
  (* own the transfer's dirty epoch on the new image: tracked writes that
     land during the window (fresh allocations, user code) are visible to
     the remap eligibility check without touching anyone else's epoch *)
  Aspace.epoch_reset new_image.P.i_aspace ~name:"mcr.transfer";
  (match fault with
  | Some f when Mcr_fault.Fault.consume f Mcr_fault.Fault.Transfer_conflict ->
      conflictf st (Injected { detail = "injected transfer conflict" })
  | _ -> ());
  (* an Objgraph-level misclassification fault conflicts here: the pinned
     object cannot be relocated, which the transfer must refuse *)
  (match analysis.Objgraph.injected_pin with
  | Some o ->
      conflictf st
        (Nonupdatable_changed
           {
             addr = o.addr;
             ty_name = Option.value o.ty_name ~default:"<untyped>";
             detail = "injected: spurious likely pointer pinned a relocatable object";
             prov = provenance st o;
           })
  | None -> ());
  let startup_index = build_startup_index new_image in
  Objgraph.iter_reachable analysis (assign_dest st startup_index);
  Objgraph.iter_reachable analysis (force_copy_pin_referrers st);
  Objgraph.iter_reachable analysis (copy_object st);
  Objgraph.iter_reachable analysis (fixup_object st);
  if st.remap then remap_pass st;
  let live_words = analysis.Objgraph.reachable_words in
  let w = plan.Objgraph.sp_workers in
  let costs = K.costs old_image.P.i_kernel in
  let cost_ns =
    if w <= 1 then st.cost
    else
      Array.fold_left max 0 st.shard_cost
      + (w * (costs.Costs.worker_spawn_ns + costs.Costs.worker_join_ns))
  in
  let outcome =
    {
      transferred_objects = st.objects_copied;
      transferred_words = st.words_copied;
      skipped_clean = st.skipped;
      skipped_clean_words = st.skipped_w;
      immutable_remapped = st.pinned;
      fresh_allocations = st.fresh;
      type_transformed = st.transformed;
      dangling_zeroed = st.dangling;
      conflicts = List.rev st.conflicts;
      cost_ns;
      live_words;
      precopied_objects = st.precopied_objs;
      precopied_words = st.precopied_w;
      remapped_pages = st.remapped_pages;
      remapped_words = st.remapped_w;
      hashed_words = st.hashed_w;
      workers = w;
      shard_words = st.shard_w;
      shard_cost_ns = st.shard_cost;
      trace_shard_ns = plan.Objgraph.sp_trace_ns;
      trace_critical_ns = Array.fold_left max 0 plan.Objgraph.sp_trace_ns;
      sequential_cost_ns = st.cost;
    }
  in
  Trace.instant trace
    ~pid:(K.pid new_image.P.i_proc)
    ~cat:"transfer" "transfer.outcome"
    ~args:
      [
        ("objects", string_of_int outcome.transferred_objects);
        ("words", string_of_int outcome.transferred_words);
        ("skipped_clean", string_of_int outcome.skipped_clean);
        ("skipped_clean_words", string_of_int outcome.skipped_clean_words);
        ("remapped_pages", string_of_int outcome.remapped_pages);
        ("remapped_words", string_of_int outcome.remapped_words);
        ("immutable_remapped", string_of_int outcome.immutable_remapped);
        ("fresh_allocations", string_of_int outcome.fresh_allocations);
        ("type_transformed", string_of_int outcome.type_transformed);
        ("dangling_zeroed", string_of_int outcome.dangling_zeroed);
        ("conflicts", string_of_int (List.length outcome.conflicts));
        ("cost_ns", string_of_int outcome.cost_ns);
        ("precopied_objects", string_of_int outcome.precopied_objects);
        ("workers", string_of_int outcome.workers);
        ("sequential_cost_ns", string_of_int outcome.sequential_cost_ns);
      ];
  outcome

let conflict_obj = function
  | Nonupdatable_changed { addr; ty_name; detail; prov } ->
      {
        Mcr_error.co_kind = "nonupdatable_changed";
        co_addr = addr;
        co_ty = Some ty_name;
        co_callstack = prov.callstack;
        co_shard = prov.shard;
        co_round = prov.round;
        co_detail = detail;
      }
  | No_plan { addr; ty_name; detail; prov } ->
      {
        Mcr_error.co_kind = "no_plan";
        co_addr = addr;
        co_ty = Some ty_name;
        co_callstack = prov.callstack;
        co_shard = prov.shard;
        co_round = prov.round;
        co_detail = detail;
      }
  | Missing_type { addr; ty_name; prov } ->
      {
        Mcr_error.co_kind = "missing_type";
        co_addr = addr;
        co_ty = Some ty_name;
        co_callstack = prov.callstack;
        co_shard = prov.shard;
        co_round = prov.round;
        co_detail = "dirty object's type is absent from the new version";
      }
  | Injected { detail } ->
      {
        Mcr_error.co_kind = "injected";
        co_addr = 0;
        co_ty = None;
        co_callstack = 0;
        co_shard = -1;
        co_round = 0;
        co_detail = detail;
      }

let rollback_reason (conflicts : conflict list) =
  match conflicts with
  | [] -> None
  | cs -> Some (Mcr_error.Tracing_conflict (List.map conflict_obj cs))

let pp_conflict ppf = function
  | Nonupdatable_changed { addr; ty_name; detail; _ } ->
      Format.fprintf ppf "nonupdatable object %a (%s) changed by update: %s" Addr.pp addr
        ty_name detail
  | No_plan { addr; ty_name; detail; _ } ->
      Format.fprintf ppf "no transformation for %a (%s): %s" Addr.pp addr ty_name detail
  | Missing_type { addr; ty_name; _ } ->
      Format.fprintf ppf "dirty object %a has type %s absent from the new version" Addr.pp addr
        ty_name
  | Injected { detail } -> Format.fprintf ppf "injected conflict: %s" detail
