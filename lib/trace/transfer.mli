(** Mutable tracing, part 2: state transfer into the new version.

    Pairs every reachable old-version object with a destination in the new
    version — the matching rules of Section 6: static objects by symbol
    name, dynamic objects already reallocated by startup by allocation-site
    identity, other dynamic objects by fresh reallocation, stack variables
    by their stable keys, immutable objects pinned in place at their old
    addresses (pages mapped into the new address space on demand).

    Content then flows old-to-new with on-the-fly type transformation
    ({!Mcr_types.Typlan}), user transfer handlers for semantic changes, and
    a final fixup pass that rewrites every precise pointer slot through the
    relocation map (function pointers by symbol, string-literal pointers by
    interning). Likely pointers are deliberately not rewritten — their
    targets are pinned, which is exactly why conservative targets are
    immutable.

    Soft-dirty filtering implements the paper's incremental behaviour:
    clean objects whose startup-time counterpart was re-created by mutable
    reinitialization are skipped (the new version's own initialization
    stands). *)

type provenance = {
  shard : int;  (** Transfer shard the object belongs to under the plan. *)
  round : int;
      (** Pre-copy round that last staged the object (0 = never staged). *)
  callstack : int;  (** Allocation call-stack ID. *)
}
(** Where the conflicting object sat in the pipeline when the conflict was
    detected — captured eagerly because rollback destroys the state it is
    derived from. *)

type conflict =
  | Nonupdatable_changed of {
      addr : Mcr_vmem.Addr.t;
      ty_name : string;
      detail : string;
      prov : provenance;
    }  (** A conservatively-traced object's type was changed by the update. *)
  | No_plan of {
      addr : Mcr_vmem.Addr.t;
      ty_name : string;
      detail : string;
      prov : provenance;
    }  (** No automatic transformation exists and no handler was supplied. *)
  | Missing_type of { addr : Mcr_vmem.Addr.t; ty_name : string; prov : provenance }
      (** A dirty object's type no longer exists in the new version. *)
  | Injected of { detail : string }
      (** A synthetic conflict from the fault harness
          ({!Mcr_fault.Fault.Transfer_conflict}). *)

type outcome = {
  transferred_objects : int;
  transferred_words : int;
  skipped_clean : int;  (** Objects left to the new version's own init. *)
  skipped_clean_words : int;  (** Words of those clean objects, never copied. *)
  immutable_remapped : int;  (** Objects pinned at their old addresses. *)
  fresh_allocations : int;
  type_transformed : int;  (** Objects whose transformation was not an identity copy. *)
  dangling_zeroed : int;  (** Pointers to dropped objects, nulled. *)
  conflicts : conflict list;
  cost_ns : int;
      (** Virtual time of this process pair's transfer. With one worker this
          is the sequential sum of per-object copy charges; with [W >= 2] it
          is the critical path — [max] of [shard_cost_ns] — plus
          [W * (worker_spawn_ns + worker_join_ns)] pool overhead. *)
  live_words : int;  (** Total reachable words (for dirty-reduction ratios). *)
  precopied_objects : int;  (** Copies whose in-window charge was prepaid. *)
  precopied_words : int;
  remapped_pages : int;
      (** Destination pages backed by a shared source frame instead of a
          private copy (zero-copy remap; 0 unless [run ~remap:true]). *)
  remapped_words : int;
      (** Words whose per-word copy charge was retracted in favour of a
          per-page {!Mcr_simos.Costs.t.remap_page_ns}. Counted inside
          [transferred_words]: the copy happened (byte identity is checked
          on its result), only the charge moved. *)
  hashed_words : int;
      (** Words re-hashed in-window to validate pre-copy prepayment. With
          dirty-driven staging this scales with the copy set, not the
          reachable graph. *)
  workers : int;  (** Effective worker count ({!Objgraph.shard_plan}). *)
  shard_words : int array;  (** Words copied per shard. *)
  shard_cost_ns : int array;  (** Copy charge per shard (prepaid waived). *)
  trace_shard_ns : int array;  (** Tracing charge per shard, from the plan. *)
  trace_critical_ns : int;
      (** [max] of [trace_shard_ns] — the tracing critical path; equals
          [analysis.cost_ns] when [workers = 1]. *)
  sequential_cost_ns : int;
      (** The worker-independent sequential copy sum — what [cost_ns] would
          be with one worker. [cost_ns <= sequential_cost_ns] net of pool
          overhead. *)
}

(** {1 Pre-copy staging}

    A pre-copy session stages content hashes of the old version's reachable
    objects while it keeps serving; the final in-window {!run} waives the
    transfer charge for every object whose staged hash still matches
    ("prepaid"). The session never touches the new address space — the
    in-window copy is performed identically with or without it, so the
    committed new version is byte-for-byte the single-shot result and
    aborting mid-pre-copy requires no undo. *)

type precopy

type round_stats = {
  round_objects : int;  (** Objects (re-)staged this round. *)
  round_words : int;  (** Words (re-)staged this round — the delta size. *)
  round_invalidated : int;  (** Staged entries dropped (object freed/moved/resized). *)
  staged_objects : int;  (** Live staged entries after the round. *)
  round_cost_ns : int;  (** Virtual time the round's speculative copy costs. *)
}

val precopy_create : unit -> precopy

val precopy_round :
  precopy ->
  old_image:Mcr_program.Progdef.image ->
  analysis:Objgraph.t ->
  ?since:int ->
  ?dirty_only:bool ->
  ?workers:int ->
  unit ->
  round_stats
(** Stage one round. With [since] (an {!Mcr_vmem.Aspace.write_seq} mark from
    the previous round), only new objects and objects on pages written after
    the mark are re-staged — the delta. Without it, every object the final
    window will copy is staged (the first, full round). [dirty_only]
    (default true) must mirror the final {!run}'s flag: staging consults the
    analysis' soft-dirty classification and skips objects the dirty-only
    window will leave to the new version's own startup — so round cost
    scales with the dirty set, not the reachable graph. The caller charges
    [round_cost_ns] to the clock while the old version keeps running. With
    [workers > 1] the round's delta is charged per-shard over the same
    {!Objgraph.shard} plan as the final window and [round_cost_ns] is the
    critical path plus pool overhead. *)

val precopy_rounds : precopy -> int
(** Rounds staged into this session so far. *)

val run :
  old_image:Mcr_program.Progdef.image ->
  new_image:Mcr_program.Progdef.image ->
  analysis:Objgraph.t ->
  ?dirty_only:bool ->
  ?remap:bool ->
  ?precopy:precopy ->
  ?workers:int ->
  ?trace:Mcr_obs.Trace.t ->
  ?fault:Mcr_fault.Fault.t ->
  unit ->
  outcome
(** Transfer one process pair. [dirty_only] (default true) enables
    soft-dirty filtering; passing false transfers everything (the ablation
    baseline). The cost is charged to the kernel's virtual clock by the
    caller, not here — parallel multiprocess transfer takes the maximum
    across pairs, not the sum.

    [remap] (default false) enables the zero-copy page remap: after copy
    and fixup, destination pages that are byte-identical to a page-aligned
    congruent source page drop their private frame and share the source's
    ({!Mcr_vmem.Aspace.share_page}, copy-on-write afterwards); their
    per-word charge is retracted and one
    {!Mcr_simos.Costs.t.remap_page_ns} charged instead. Because
    eligibility is decided on the post-copy bytes, the committed image is
    byte-identical with and without [remap] for every [workers] value.
    The manager must {!Mcr_vmem.Aspace.detach_shared} the dying side when
    the window closes (rollback: new members; commit: old images) so no
    shared frame outlives the update.

    All stores into the new image (copy, transformation, handler output and
    fixup) are untracked — they must not pollute any consumer's dirty
    epoch — and taint their pages as {!Mcr_vmem.Aspace.mark_inherited}, which
    is what keeps transferred state classified dirty in later updates.

    [workers] (default 1) sets the simulated transfer worker pool. The
    partition into shards is pure cost accounting: the copy itself runs in
    canonical address order for every worker count, so the committed image,
    the conflict list and the rollback behaviour are identical for all
    values of [workers]; only [cost_ns] changes (critical path + spawn/join
    overhead instead of the sequential sum). With [?precopy], objects whose content was
    staged and is unchanged contribute nothing to [cost_ns] (they are
    counted in [precopied_objects]/[precopied_words]); the writes performed
    are identical either way. With [?trace], the outcome is emitted as a
    [transfer.outcome] instant event (category ["transfer"], under the new
    process's pid). With [?fault], an armed
    {!Mcr_fault.Fault.Transfer_conflict} yields an [Injected] conflict
    before any state moves; an [analysis] carrying an
    {!Objgraph.t.injected_pin} yields a [Nonupdatable_changed] conflict on
    the pinned object. *)

val rollback_reason : conflict list -> Mcr_error.rollback_reason option
(** [Some (Tracing_conflict objs)] when any conflict is present — the
    shared rollback vocabulary for transfer failures, carrying one
    {!Mcr_error.conflict_obj} per conflict (via {!conflict_obj}) so
    explanations survive the rollback that destroys the live state. *)

val conflict_obj : conflict -> Mcr_error.conflict_obj
(** The wire/report form of one conflict: kind tag, address, type tag,
    call-stack ID, shard and pre-copy round. [Injected] conflicts have no
    object — address 0, no type, shard -1. *)

val pp_conflict : Format.formatter -> conflict -> unit
