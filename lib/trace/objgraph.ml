module K = Mcr_simos.Kernel
module Costs = Mcr_simos.Costs
module Ty = Mcr_types.Ty
module Tyreg = Mcr_types.Tyreg
module Symtab = Mcr_types.Symtab
module Heap = Mcr_alloc.Heap
module Pool = Mcr_alloc.Pool
module Slab = Mcr_alloc.Slab
module Sites = Mcr_alloc.Sites
module Aspace = Mcr_vmem.Aspace
module Addr = Mcr_vmem.Addr
module Region = Mcr_vmem.Region
module P = Mcr_program.Progdef
module Instr = Mcr_program.Instr
module Trace = Mcr_obs.Trace

type origin =
  | O_static of string
  | O_string of string
  | O_heap
  | O_lib
  | O_pool_obj of string
  | O_pool_chunk of string
  | O_slab_chunk of string
  | O_stack of string
  | O_pinned

type obj = {
  id : int;
  addr : Addr.t;
  words : int;
  ty : Ty.t option;
  ty_name : string option;
  origin : origin;
  region : Region.kind;
  startup : bool;
  site : string option;
  callstack : int;
  mutable reachable : bool;
  mutable immutable_ : bool;
  mutable nonupdatable : bool;
  mutable dirty : bool;
}

type side = {
  mutable ptr : int;
  mutable src_static : int;
  mutable src_dynamic : int;
  mutable targ_static : int;
  mutable targ_dynamic : int;
  mutable targ_lib : int;
}

type stats = { precise : side; likely : side }

type t = {
  objects : obj array;
  roots : obj list;
  stats : stats;
  cost_ns : int;
  obj_cost : int array;
  reachable_count : int;
  reachable_words : int;
  injected_pin : obj option;
}

let new_side () =
  { ptr = 0; src_static = 0; src_dynamic = 0; targ_static = 0; targ_dynamic = 0; targ_lib = 0 }

let record_edge side ~src_region ~targ_region =
  side.ptr <- side.ptr + 1;
  (match src_region with
  | Region.Static -> side.src_static <- side.src_static + 1
  | Region.Heap | Region.Stack | Region.Mmap | Region.Lib ->
      side.src_dynamic <- side.src_dynamic + 1);
  match targ_region with
  | Region.Static -> side.targ_static <- side.targ_static + 1
  | Region.Lib -> side.targ_lib <- side.targ_lib + 1
  | Region.Heap | Region.Stack | Region.Mmap -> side.targ_dynamic <- side.targ_dynamic + 1

(* ------------------------------------------------------------------ *)
(* Object enumeration *)

let enumerate (image : P.image) =
  let next_id = ref 0 in
  let objs = ref [] in
  let version = image.P.i_version in
  let add ~addr ~words ~ty ~ty_name ~origin ~region ~startup ~site ~callstack =
    let o =
      {
        id = !next_id;
        addr;
        words;
        ty;
        ty_name;
        origin;
        region;
        startup;
        site;
        callstack;
        reachable = false;
        immutable_ = false;
        nonupdatable = false;
        dirty = false;
      }
    in
    incr next_id;
    objs := o :: !objs;
    o
  in
  (* static data symbols; MCR_ADD_OBJ_HANDLER annotations override the
     declared type to reveal hidden pointers *)
  List.iter
    (fun (e : Symtab.entry) ->
      let ty =
        match P.obj_handler version e.Symtab.name with
        | Some revealed -> revealed
        | None -> e.Symtab.ty
      in
      ignore
        (add ~addr:e.Symtab.addr ~words:e.Symtab.words ~ty:(Some ty) ~ty_name:None
           ~origin:(O_static e.Symtab.name) ~region:Region.Static ~startup:true ~site:None
           ~callstack:0))
    (Symtab.entries image.P.i_symtab);
  (* interned strings: conservative scanning's favourite targets *)
  List.iter
    (fun (s, addr) ->
      let words = (String.length s + 1 + Addr.word_size - 1) / Addr.word_size in
      ignore
        (add ~addr ~words ~ty:(Some (Ty.Char_array (String.length s + 1))) ~ty_name:None
           ~origin:(O_string s) ~region:Region.Static ~startup:true ~site:None ~callstack:0))
    (Symtab.strings image.P.i_symtab);
  (* instrumented-heap blocks *)
  let block_ty (b : Heap.block) =
    if b.Heap.instrumented && b.Heap.ty_id <> 0 then begin
      match Tyreg.find image.P.i_tyreg b.Heap.ty_id with
      | ty -> (Some ty, Some (Tyreg.name_of_id image.P.i_tyreg b.Heap.ty_id))
      | exception Not_found -> (None, None)
    end
    else (None, None)
  in
  let site_label (b : Heap.block) =
    if b.Heap.site = 0 then None
    else
      match Sites.find image.P.i_sites b.Heap.site with
      | s -> Some s.Sites.label
      | exception Not_found -> None
  in
  Heap.iter_live image.P.i_heap (fun b ->
      let ty, ty_name = block_ty b in
      ignore
        (add ~addr:b.Heap.payload ~words:b.Heap.words ~ty ~ty_name ~origin:O_heap
           ~region:Region.Heap ~startup:b.Heap.startup ~site:(site_label b)
           ~callstack:b.Heap.callstack));
  (* shared-library heap: per-block with dynamic instrumentation, one opaque
     blob without *)
  if image.P.i_instr.Instr.dynamic_instr then
    Heap.iter_live image.P.i_lib_heap (fun b ->
        ignore
          (add ~addr:b.Heap.payload ~words:b.Heap.words ~ty:None ~ty_name:None ~origin:O_lib
             ~region:Region.Lib ~startup:b.Heap.startup ~site:None ~callstack:0))
  else begin
    let base = Heap.base image.P.i_lib_heap in
    let words = (Heap.limit image.P.i_lib_heap - base) / Addr.word_size in
    ignore
      (add ~addr:base ~words ~ty:None ~ty_name:None ~origin:O_lib ~region:Region.Lib
         ~startup:true ~site:None ~callstack:0)
  end;
  (* pools: tagged objects when instrumented, opaque chunks otherwise *)
  List.iter
    (fun (pname, pool) ->
      if Pool.is_instrumented pool then
        Pool.iter_objects pool (fun b ->
            let ty, ty_name = block_ty b in
            ignore
              (add ~addr:b.Heap.payload ~words:b.Heap.words ~ty ~ty_name
                 ~origin:(O_pool_obj pname) ~region:Region.Heap ~startup:b.Heap.startup
                 ~site:(site_label b) ~callstack:b.Heap.callstack))
      else
        List.iter
          (fun (base, words) ->
            ignore
              (add ~addr:base ~words ~ty:None ~ty_name:None ~origin:(O_pool_chunk pname)
                 ~region:Region.Heap ~startup:false ~site:None ~callstack:0))
          (Pool.chunk_extents pool))
    image.P.i_pools;
  List.iter
    (fun (sname, slab) ->
      List.iter
        (fun (base, words) ->
          ignore
            (add ~addr:base ~words ~ty:None ~ty_name:None ~origin:(O_slab_chunk sname)
               ~region:Region.Heap ~startup:false ~site:None ~callstack:0))
        (Slab.chunk_extents slab))
    image.P.i_slabs;
  (* memory pinned by a previous update: one opaque object per pinned
     region, so chained updates re-discover (and re-pin) it *)
  List.iter
    (fun (r : Region.t) ->
      if r.Region.name = "mcr:pin" then
        ignore
          (add ~addr:r.Region.base ~words:(r.Region.size / Addr.word_size) ~ty:None
             ~ty_name:None ~origin:O_pinned ~region:r.Region.kind ~startup:false ~site:None
             ~callstack:0))
    (Aspace.regions image.P.i_aspace);
  (* stack variables registered at instrumented quiescent points *)
  List.iter
    (fun (key, ty, addr) ->
      let words = Ty.sizeof_words version.P.tyenv ty in
      ignore
        (add ~addr ~words ~ty:(Some ty) ~ty_name:None ~origin:(O_stack key)
           ~region:Region.Stack ~startup:false ~site:None ~callstack:0))
    image.P.i_stack_roots;
  List.rev !objs

(* ------------------------------------------------------------------ *)
(* Address index *)

let build_index objs =
  let arr = Array.of_list objs in
  Array.sort (fun a b -> compare a.addr b.addr) arr;
  arr

let resolve_in index addr =
  if addr <= 0 || not (Addr.is_aligned addr) then None
  else begin
    (* binary search: greatest object with obj.addr <= addr *)
    let lo = ref 0 and hi = ref (Array.length index - 1) and found = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if index.(mid).addr <= addr then begin
        found := Some index.(mid);
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    match !found with
    | Some o when addr < Addr.add_words o.addr o.words ->
        Some (o, (addr - o.addr) / Addr.word_size)
    | _ -> None
  end

(* ------------------------------------------------------------------ *)
(* Traversal *)

let analyze ?(policy = Ty.default_policy) ?(tag_free = false) ?cost_since ?trace ?fault
    (image : P.image) =
  let kernel = image.P.i_kernel in
  let costs = K.costs kernel in
  let cost = ref 0 in
  let objs = enumerate image in
  let objs =
    if not tag_free then objs
    else
      (* drop type knowledge from dynamic objects: the tag-free strategy *)
      List.map
        (fun o ->
          match o.origin with
          | O_heap | O_pool_obj _ -> { o with ty = None; ty_name = None }
          | _ -> o)
        objs
  in
  let index = build_index objs in
  let aspace = image.P.i_aspace in
  let env = image.P.i_version.P.tyenv in
  let stats = { precise = new_side (); likely = new_side () } in
  let text = Symtab.text_region image.P.i_symtab in
  (* Per-object cost attribution: every charge lands on the reachable object
     that caused it (first-visit charge, or the object whose opaque words are
     being scanned), so per-shard sums partition [cost_ns] exactly. *)
  let obj_cost = Array.make (List.length objs) 0 in
  (* Incremental re-trace accounting: with [cost_since], only objects on
     pages written after that {!Aspace.write_seq} mark are charged — a
     delta round walks the same graph (edges, pins and dirty flags must not
     depend on the round) but pays only for what changed. *)
  let charged =
    match cost_since with
    | None -> fun _ -> true
    | Some seq ->
        let memo = Hashtbl.create 256 in
        fun (o : obj) -> (
          match Hashtbl.find_opt memo o.id with
          | Some b -> b
          | None ->
              let b = Aspace.range_written_since aspace o.addr ~words:o.words ~seq in
              Hashtbl.add memo o.id b;
              b)
  in
  let charge (o : obj) c =
    cost := !cost + c;
    obj_cost.(o.id) <- obj_cost.(o.id) + c
  in
  let rec visit (o : obj) =
    if not o.reachable then begin
      o.reachable <- true;
      if charged o then charge o costs.Costs.trace_obj_ns;
      match o.ty with
      | Some ty -> visit_typed o ty
      | None -> visit_opaque o 0 o.words
    end
  and visit_typed o ty =
    let slots = Ty.slots ~policy env ty in
    (* objects can be arrays of their tagged type *)
    let tyw = Array.length slots in
    if tyw = 0 then ()
    else
      for w = 0 to o.words - 1 do
        match slots.(w mod tyw) with
        | Ty.Slot_scalar -> ()
        | Ty.Slot_ptr _ | Ty.Slot_void_ptr ->
            follow_precise o (Addr.add_words o.addr w)
        | Ty.Slot_func_ptr ->
            let v = Aspace.read_word aspace (Addr.add_words o.addr w) in
            if v <> 0 && Region.contains text v then
              record_edge stats.precise ~src_region:o.region ~targ_region:Region.Static
        | Ty.Slot_encoded_ptr { mask; _ } ->
            let v = Aspace.read_word aspace (Addr.add_words o.addr w) in
            let target = v land lnot mask in
            if target <> 0 then follow_precise_value o target
        | Ty.Slot_opaque -> scan_word o (Addr.add_words o.addr w)
      done
  and follow_precise o slot_addr =
    let v = Aspace.read_word aspace slot_addr in
    if v <> 0 then follow_precise_value o v
  and follow_precise_value o v =
    match resolve_in index v with
    | Some (target, _off) ->
        record_edge stats.precise ~src_region:o.region ~targ_region:target.region;
        visit target
    | None ->
        (* function pointers and other non-object targets *)
        if Region.contains text v then
          record_edge stats.precise ~src_region:o.region ~targ_region:Region.Static
  and visit_opaque o from_word words =
    if words > 0 then begin
      if charged o then charge o (words * costs.Costs.scan_word_ns);
      Aspace.fold_words aspace (Addr.add_words o.addr from_word) ~words ~init:()
        ~f:(fun () v -> scan_value o v)
    end
  and scan_word o word_addr =
    if charged o then charge o costs.Costs.scan_word_ns;
    scan_value o (Aspace.read_word aspace word_addr)
  and scan_value o v =
    if v <> 0 && Addr.is_aligned v then
      match resolve_in index v with
      | Some (target, _off) ->
          record_edge stats.likely ~src_region:o.region ~targ_region:target.region;
          (* conservative invariants: the target is pinned and neither side
             may be type-transformed *)
          target.immutable_ <- true;
          target.nonupdatable <- true;
          o.nonupdatable <- true;
          visit target
      | None -> ()
  in
  (* roots: global data symbols and stack variables *)
  let roots =
    List.filter
      (fun o ->
        match o.origin with O_static _ | O_stack _ -> true | _ -> false)
      objs
  in
  List.iter visit roots;
  (* fault injection: pretend conservative scanning found one more likely
     pointer, targeting a typed relocatable heap object — the
     misclassification the paper's Section 6 warns about. Pinning it makes
     the transfer conflict when its type has a transformation plan. *)
  let injected_pin =
    match fault with
    | Some f when Mcr_fault.Fault.consume f Mcr_fault.Fault.Likely_misclassification ->
        let victim =
          List.find_opt
            (fun o ->
              o.reachable
              && (not o.immutable_)
              && (match o.origin with O_heap | O_pool_obj _ -> true | _ -> false)
              && o.ty_name <> None)
            objs
        in
        (match victim with
        | Some o ->
            o.immutable_ <- true;
            o.nonupdatable <- true;
            record_edge stats.likely ~src_region:Region.Static ~targ_region:o.region
        | None -> ());
        victim
    | _ -> None
  in
  (* Dirtiness per object: written since the startup checkpoint's epoch, or
     sitting on a page whose content was installed by a previous update's
     state transfer (inherited). Transfer stores are untracked, so without
     the taint a transferred object would look startup-clean and be wrongly
     skipped — losing the transferred state. *)
  List.iter
    (fun o ->
      let rec pages a =
        if a < Addr.add_words o.addr o.words then
          if
            Aspace.epoch_page_dirty aspace ~name:"startup" a
            || Aspace.page_inherited aspace a
          then o.dirty <- true
          else pages (Addr.add a Addr.page_size)
      in
      pages (Addr.page_base o.addr))
    objs;
  let side_args prefix (s : side) =
    [
      (prefix ^ "_ptr", string_of_int s.ptr);
      (prefix ^ "_src_static", string_of_int s.src_static);
      (prefix ^ "_src_dynamic", string_of_int s.src_dynamic);
      (prefix ^ "_targ_static", string_of_int s.targ_static);
      (prefix ^ "_targ_dynamic", string_of_int s.targ_dynamic);
      (prefix ^ "_targ_lib", string_of_int s.targ_lib);
    ]
  in
  (* one pass over the index for every summary the instant and the cached
     counters need, instead of a List.filter per counter *)
  let n_reachable = ref 0 and n_pinned = ref 0 and r_words = ref 0 in
  Array.iter
    (fun o ->
      if o.reachable then begin
        incr n_reachable;
        r_words := !r_words + o.words
      end;
      if o.immutable_ then incr n_pinned)
    index;
  Trace.instant trace
    ~pid:(K.pid image.P.i_proc)
    ~cat:"objgraph" "objgraph.edges"
    ~args:
      (side_args "precise" stats.precise
      @ side_args "likely" stats.likely
      @ [
          ("reachable", string_of_int !n_reachable);
          ("pinned", string_of_int !n_pinned);
          ("cost_ns", string_of_int !cost);
        ]);
  {
    objects = index;
    roots;
    stats;
    cost_ns = !cost;
    obj_cost;
    reachable_count = !n_reachable;
    reachable_words = !r_words;
    injected_pin;
  }

let resolve t addr = resolve_in t.objects addr

let find_static t name =
  Array.find_opt
    (fun o -> match o.origin with O_static s -> s = name | _ -> false)
    t.objects

let iter_reachable t f = Array.iter (fun o -> if o.reachable then f o) t.objects

let reachable_objects t = Array.to_list t.objects |> List.filter (fun o -> o.reachable)

let dirty_objects t = Array.to_list t.objects |> List.filter (fun o -> o.dirty)

(* ------------------------------------------------------------------ *)
(* Shard partitioning for the worker-pool transfer model *)

type shard_plan = {
  sp_workers : int;
  sp_shard_of : int array;
  sp_objects : int array;
  sp_words : int array;
  sp_trace_ns : int array;
}

let shard t ~workers =
  if workers < 1 then invalid_arg "Objgraph.shard: workers must be >= 1";
  let reach =
    let buf = ref [] in
    Array.iter (fun o -> if o.reachable then buf := o :: !buf) t.objects;
    Array.of_list (List.rev !buf)
  in
  let n = Array.length reach in
  let w = max 1 (min workers n) in
  let total = Array.fold_left (fun acc o -> acc + o.words) 0 reach in
  (* contiguous address-order partition: shard k is reach.[bounds.(k),
     bounds.(k+1)). Greedy cuts at the word-count prefix-sum targets, never
     leaving a later shard without at least one object. *)
  let bounds = Array.make (w + 1) n in
  bounds.(0) <- 0;
  let s = ref 0 and prefix = ref 0 in
  for j = 0 to n - 1 do
    if
      !s < w - 1
      && j > bounds.(!s)
      && (n - j <= w - 1 - !s || !prefix * w >= (!s + 1) * total)
    then begin
      incr s;
      bounds.(!s) <- j
    end;
    prefix := !prefix + reach.(j).words
  done;
  (* work-stealing rebalance: shift boundary objects between adjacent shards
     whenever that strictly lowers the heavier side, until fixpoint (bounded
     pass count keeps this deterministic and terminating) *)
  let wsum = Array.make w 0 in
  for k = 0 to w - 1 do
    for j = bounds.(k) to bounds.(k + 1) - 1 do
      wsum.(k) <- wsum.(k) + reach.(j).words
    done
  done;
  let moved = ref (w > 1) and pass = ref 0 in
  while !moved && !pass < 8 * w do
    moved := false;
    incr pass;
    for k = 0 to w - 2 do
      let wk = wsum.(k) and wk1 = wsum.(k + 1) in
      if wk > wk1 && bounds.(k + 1) - bounds.(k) > 1 then begin
        let x = reach.(bounds.(k + 1) - 1).words in
        if max (wk - x) (wk1 + x) < wk then begin
          bounds.(k + 1) <- bounds.(k + 1) - 1;
          wsum.(k) <- wk - x;
          wsum.(k + 1) <- wk1 + x;
          moved := true
        end
      end
      else if wk1 > wk && bounds.(k + 2) - bounds.(k + 1) > 1 then begin
        let x = reach.(bounds.(k + 1)).words in
        if max (wk + x) (wk1 - x) < wk1 then begin
          bounds.(k + 1) <- bounds.(k + 1) + 1;
          wsum.(k) <- wk + x;
          wsum.(k + 1) <- wk1 - x;
          moved := true
        end
      end
    done
  done;
  let shard_of = Array.make (Array.length t.obj_cost) (-1) in
  let objects = Array.make w 0 and trace_ns = Array.make w 0 in
  for k = 0 to w - 1 do
    for j = bounds.(k) to bounds.(k + 1) - 1 do
      let o = reach.(j) in
      shard_of.(o.id) <- k;
      objects.(k) <- objects.(k) + 1;
      trace_ns.(k) <- trace_ns.(k) + t.obj_cost.(o.id)
    done
  done;
  {
    sp_workers = w;
    sp_shard_of = shard_of;
    sp_objects = objects;
    sp_words = wsum;
    sp_trace_ns = trace_ns;
  }

let trace_critical_ns t ~workers =
  if workers <= 1 then t.cost_ns
  else
    let plan = shard t ~workers in
    Array.fold_left max 0 plan.sp_trace_ns

let pp_side ppf (s : side) =
  Format.fprintf ppf "ptr=%d src(stat=%d dyn=%d) targ(stat=%d dyn=%d lib=%d)" s.ptr
    s.src_static s.src_dynamic s.targ_static s.targ_dynamic s.targ_lib

let pp_stats ppf t =
  Format.fprintf ppf "@[<v>precise: %a@,likely:  %a@]" pp_side t.precise pp_side t.likely
