(** Mutable tracing, part 1: the hybrid precise/conservative heap traversal
    (Section 6).

    Starting from root objects (globals and registered stack variables), the
    analysis follows typed pointer slots precisely and scans opaque slots
    (unions, char arrays, pointer-sized integers, uninstrumented
    allocations) conservatively for {e likely pointers} — aligned words
    whose value falls inside a live object. Likely-pointer targets become
    {e immutable} (cannot be relocated in the new version); objects
    containing likely pointers become {e nonupdatable} (a type change
    raises a conflict).

    The analysis also computes per-object dirtiness from the kernel's
    soft-dirty page bits and the pointer statistics of Table 2. *)

type origin =
  | O_static of string  (** Data symbol. *)
  | O_string of string  (** Interned string literal (rodata). *)
  | O_heap  (** Instrumented main-heap block. *)
  | O_lib  (** Shared-library heap block (or blob). *)
  | O_pool_obj of string  (** Tagged object in an instrumented pool. *)
  | O_pool_chunk of string  (** Opaque chunk of an uninstrumented pool. *)
  | O_slab_chunk of string  (** Opaque slab chunk. *)
  | O_stack of string  (** Stack variable, by stable key. *)
  | O_pinned
      (** Memory pinned in place by a previous update (an [mcr:pin]
          region): carried opaquely so chained updates keep immutable
          objects alive across any number of versions. *)

type obj = {
  id : int;
  addr : Mcr_vmem.Addr.t;
  words : int;
  ty : Mcr_types.Ty.t option;  (** [None] — fully opaque. *)
  ty_name : string option;  (** Registry name, for cross-version pairing. *)
  origin : origin;
  region : Mcr_vmem.Region.kind;
  startup : bool;  (** Allocated during startup (startup-flagged block or static). *)
  site : string option;  (** Allocation-site label (dynamic objects). *)
  callstack : int;  (** Allocation call-stack ID (dynamic objects; 0 if n/a). *)
  mutable reachable : bool;
  mutable immutable_ : bool;
  mutable nonupdatable : bool;
  mutable dirty : bool;
}

(** Table 2: one row side (precise or likely). *)
type side = {
  mutable ptr : int;
  mutable src_static : int;
  mutable src_dynamic : int;
  mutable targ_static : int;
  mutable targ_dynamic : int;
  mutable targ_lib : int;
}

type stats = { precise : side; likely : side }

type t = {
  objects : obj array;  (** Sorted by address. *)
  roots : obj list;
  stats : stats;
  cost_ns : int;  (** Virtual time the analysis would take. *)
  obj_cost : int array;
      (** Per-object share of [cost_ns], indexed by [obj.id]: the first-visit
          charge plus conservative-scan charges for the object's own opaque
          words. Sums over the reachable set exactly to [cost_ns], which is
          what lets {!shard} partition the tracing cost across workers. *)
  reachable_count : int;  (** Cached [List.length (reachable_objects t)]. *)
  reachable_words : int;  (** Total words of reachable objects. *)
  injected_pin : obj option;
      (** The object a {!Mcr_fault.Fault.Likely_misclassification} fault
          pinned (marked immutable + nonupdatable as if a spurious likely
          pointer targeted it). {!Transfer.run} turns it into a conflict.
          [None] on unfaulted runs. *)
}

val analyze :
  ?policy:Mcr_types.Ty.policy ->
  ?tag_free:bool ->
  ?cost_since:int ->
  ?trace:Mcr_obs.Trace.t ->
  ?fault:Mcr_fault.Fault.t ->
  Mcr_program.Progdef.image ->
  t
(** Analyze a quiescent process image.

    [cost_since] is an {!Mcr_vmem.Aspace.write_seq} mark: the traversal and
    its results (reachability, edges, pins, dirty flags) are unchanged, but
    [cost_ns] only charges objects overlapping pages written after the
    mark. Pre-copy delta rounds use this so re-tracing an almost-unchanged
    graph costs almost nothing, without perturbing what the final transfer
    sees. Honors the image's instrumentation
    config (uninstrumented pools/slabs yield opaque chunks; without dynamic
    instrumentation the lib heap is one opaque blob) and the version's
    [Obj_handler] annotations (which reveal hidden layouts of opaque
    globals). The analysis cost is returned, not charged — multiprocess
    tracing runs in parallel, so the caller charges the maximum across
    processes.

    [tag_free:true] ignores the in-band data-type tags (the Kitsune-style
    configuration the paper contrasts with, Section 8): every dynamic
    object becomes opaque, so all heap pointers degrade to likely pointers
    and their targets to immutable — the ablation quantifying what the tags
    buy.

    With [?trace] the analysis emits one [objgraph.edges] instant event
    (category ["objgraph"], under the analyzed process's pid) carrying the
    Table-2 edge classification — precise and likely pointer counts by
    source/target region — plus reachable/pinned object counts and the
    analysis cost.

    With [?fault], an armed {!Mcr_fault.Fault.Likely_misclassification}
    pins one reachable typed dynamic object as if a spurious likely
    pointer targeted it (recorded in [injected_pin] and in the likely-edge
    stats). *)

val resolve : t -> Mcr_vmem.Addr.t -> (obj * int) option
(** Object containing an address, with the word offset inside it. *)

val find_static : t -> string -> obj option
(** Static object by symbol name. *)

val iter_reachable : t -> (obj -> unit) -> unit
(** Iterate the reachable objects in address order without materializing a
    list — the order {!reachable_objects} returns them in. *)

val reachable_objects : t -> obj list
val dirty_objects : t -> obj list

(** {2 Shard partitioning (parallel state transfer)}

    The worker-pool transfer model partitions the reachable set into [W]
    contiguous address-range shards balanced by word count, so tracing and
    copy charges can be accounted per-shard and downtime charged as the
    critical path ([max] over shards) instead of the sequential sum. The
    partition is a pure accounting overlay: execution order is unchanged,
    so results are byte-identical for every [W]. *)

type shard_plan = {
  sp_workers : int;
      (** Effective worker count: requested workers clamped to [1 .. number
          of reachable objects]. *)
  sp_shard_of : int array;
      (** [obj.id -> shard index], [-1] for unreachable objects. *)
  sp_objects : int array;  (** Per-shard reachable-object count. *)
  sp_words : int array;  (** Per-shard word count (the balance target). *)
  sp_trace_ns : int array;
      (** Per-shard tracing cost: sum of {!t.obj_cost} over the shard.
          Sums to {!t.cost_ns}; its max is the tracing critical path. *)
}

val shard : t -> workers:int -> shard_plan
(** Deterministic partition of the reachable set into at most [workers]
    shards: address-order contiguous ranges, cut greedily at word-count
    prefix-sum targets, then rebalanced by shifting boundary objects toward
    the lighter neighbour (bounded work-stealing) until no move lowers a
    pair's heavier side. Every shard holds at least one object.
    @raise Invalid_argument if [workers < 1]. *)

val trace_critical_ns : t -> workers:int -> int
(** [max] of [sp_trace_ns] for the plan {!shard} builds — the tracing cost
    on the critical path. Equals [cost_ns] when [workers = 1]. *)

val pp_stats : Format.formatter -> stats -> unit
