module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module Stats = Mcr_util.Stats
module Trace = Mcr_obs.Trace

type block_stat = { mutable ns : int; mutable hits : int }

type loop_rec = { depth : int; mutable entries : int; mutable exits : int }

type trec = {
  cls : string;
  born_ns : int;
  mutable died_ns : int option;
  blocked : (string * string, block_stat) Hashtbl.t;
  blocked_hist : Stats.hist;  (* all blocking durations, any site *)
  loops : (string, loop_rec) Hashtbl.t;
  mutable cur_depth : int;
}

type t = {
  kernel : K.t;
  threads : (int, trec) Hashtbl.t; (* tid -> record *)
  mutable startup_ns : int option;
  mutable main_tid : int option; (* the program's initial thread *)
  mutable attached : bool;
  mutable filter : K.thread -> bool;
  mutable trace : Trace.t option;
}

let create kernel =
  {
    kernel;
    threads = Hashtbl.create 32;
    startup_ns = None;
    main_tid = None;
    attached = false;
    filter = (fun _ -> true);
    trace = None;
  }

let set_filter t f = t.filter <- f
let set_trace t trace = t.trace <- trace

let trec_for t th =
  match Hashtbl.find_opt t.threads (K.tid th) with
  | Some r -> r
  | None ->
      let r =
        {
          cls = K.thread_name th;
          born_ns = K.clock_ns t.kernel;
          died_ns = None;
          blocked = Hashtbl.create 8;
          blocked_hist = Stats.hist_create ~bounds:Stats.default_ns_bounds;
          loops = Hashtbl.create 4;
          cur_depth = 0;
        }
      in
      Hashtbl.replace t.threads (K.tid th) r;
      r

let add_block_stat t th call ns =
  let r = trec_for t th in
  let site = match K.callstack th with frame :: _ -> frame | [] -> K.thread_name th in
  let key = (site, S.call_name call) in
  let stat =
    match Hashtbl.find_opt r.blocked key with
    | Some s -> s
    | None ->
        let s = { ns = 0; hits = 0 } in
        Hashtbl.replace r.blocked key s;
        s
  in
  stat.ns <- stat.ns + ns;
  stat.hits <- stat.hits + 1;
  Stats.hist_observe r.blocked_hist ns

let on_block t th call ~blocked_ns =
  if not (t.filter th) then ()
  else begin
    (* startup completes when the program's initial thread first blocks —
       auxiliary threads (controllers, clients) may block much earlier *)
    if t.startup_ns = None && t.main_tid = Some (K.tid th) then
      t.startup_ns <- Some (K.clock_ns t.kernel - blocked_ns);
    add_block_stat t th call blocked_ns
  end

let attach t =
  t.attached <- true;
  K.set_block_monitor t.kernel (Some (fun th call ~blocked_ns -> on_block t th call ~blocked_ns))

let detach t =
  t.attached <- false;
  K.set_block_monitor t.kernel None

let note_thread_start t th =
  if t.main_tid = None then t.main_tid <- Some (K.tid th);
  Trace.instant t.trace
    ~pid:(K.pid (K.thread_proc th))
    ~tid:(K.tid th) ~cat:"profiler" "thread.start"
    ~args:[ ("class", K.thread_name th) ];
  ignore (trec_for t th)

let note_thread_end t th =
  let r = trec_for t th in
  Trace.instant t.trace
    ~pid:(K.pid (K.thread_proc th))
    ~tid:(K.tid th) ~cat:"profiler" "thread.end"
    ~args:[ ("class", K.thread_name th) ];
  r.died_ns <- Some (K.clock_ns t.kernel)

let note_loop_enter t th name =
  let r = trec_for t th in
  r.cur_depth <- r.cur_depth + 1;
  let l =
    match Hashtbl.find_opt r.loops name with
    | Some l -> l
    | None ->
        let l = { depth = r.cur_depth; entries = 0; exits = 0 } in
        Hashtbl.replace r.loops name l;
        l
  in
  l.entries <- l.entries + 1

let note_loop_exit t th name =
  let r = trec_for t th in
  r.cur_depth <- max 0 (r.cur_depth - 1);
  match Hashtbl.find_opt r.loops name with
  | Some l -> l.exits <- l.exits + 1
  | None -> ()

let mark_startup_complete t = t.startup_ns <- Some (K.clock_ns t.kernel)

type qpoint = { site : string; call : string; blocked_ns : int; hits : int }

type thread_class = {
  cls : string;
  instances : int;
  long_lived : bool;
  persistent : bool;
  quiescent_point : qpoint option;
  long_lived_loops : string list;
  blocked_p50_ns : int;
  blocked_p90_ns : int;
  blocked_p99_ns : int;
}

type report = {
  classes : thread_class list;
  short_lived : int;
  long_lived_count : int;
  quiescent_points : int;
  persistent_points : int;
  volatile_points : int;
}

let report t =
  (* sampling view: attribute currently-blocked threads to their blocking
     sites, weighted by how long they have been parked there *)
  let now = K.clock_ns t.kernel in
  List.iter
    (fun proc ->
      List.iter
        (fun th ->
          if t.filter th && K.thread_alive th then begin
            match (K.blocked_in th, K.blocked_since th) with
            | Some call, Some since ->
                (* a main thread parked for good marks the end of startup *)
                if t.startup_ns = None && t.main_tid = Some (K.tid th) then
                  t.startup_ns <- Some since;
                if Hashtbl.mem t.threads (K.tid th) then
                  add_block_stat t th call (max 1 (now - since))
            | _, _ -> ()
          end)
        (K.proc_threads proc))
    (K.procs t.kernel);
  let startup = Option.value t.startup_ns ~default:max_int in
  (* group thread records by class *)
  let by_class : (string, trec list ref) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ (r : trec) ->
      match Hashtbl.find_opt by_class r.cls with
      | Some l -> l := r :: !l
      | None -> Hashtbl.replace by_class r.cls (ref [ r ]))
    t.threads;
  let classes =
    Hashtbl.fold
      (fun cls recs acc ->
        let recs = !recs in
        let long_lived = List.exists (fun r -> r.died_ns = None) recs in
        let persistent = List.exists (fun r -> r.born_ns <= startup) recs in
        (* merge blocking stats across instances *)
        let merged : (string * string, block_stat) Hashtbl.t = Hashtbl.create 8 in
        List.iter
          (fun r ->
            Hashtbl.iter
              (fun key s ->
                match Hashtbl.find_opt merged key with
                | Some m ->
                    m.ns <- m.ns + s.ns;
                    m.hits <- m.hits + s.hits
                | None -> Hashtbl.replace merged key { ns = s.ns; hits = s.hits })
              r.blocked)
          recs;
        let quiescent_point =
          Hashtbl.fold
            (fun (site, call) s best ->
              match best with
              | Some b when b.blocked_ns >= s.ns -> best
              | _ -> Some { site; call; blocked_ns = s.ns; hits = s.hits })
            merged None
        in
        let quiescent_point = if long_lived then quiescent_point else None in
        (* deepest loops never exited, across instances *)
        let loop_best : (string, int) Hashtbl.t = Hashtbl.create 4 in
        List.iter
          (fun r ->
            Hashtbl.iter
              (fun name l ->
                if l.exits < l.entries then
                  match Hashtbl.find_opt loop_best name with
                  | Some d -> Hashtbl.replace loop_best name (max d l.depth)
                  | None -> Hashtbl.replace loop_best name l.depth)
              r.loops)
          recs;
        let max_depth = Hashtbl.fold (fun _ d m -> max d m) loop_best 0 in
        let long_lived_loops =
          Hashtbl.fold (fun name d acc -> if d = max_depth then name :: acc else acc) loop_best []
          |> List.sort compare
        in
        let class_hist =
          List.fold_left
            (fun acc r -> Stats.hist_merge acc r.blocked_hist)
            (Stats.hist_create ~bounds:Stats.default_ns_bounds)
            recs
        in
        {
          cls;
          instances = List.length recs;
          long_lived;
          persistent;
          quiescent_point;
          long_lived_loops;
          blocked_p50_ns = Stats.hist_percentile class_hist 50.;
          blocked_p90_ns = Stats.hist_percentile class_hist 90.;
          blocked_p99_ns = Stats.hist_percentile class_hist 99.;
        }
        :: acc)
      by_class []
    |> List.sort (fun a b -> compare a.cls b.cls)
  in
  let short_lived = List.length (List.filter (fun c -> not c.long_lived) classes) in
  let long = List.filter (fun c -> c.long_lived) classes in
  let qps = List.filter (fun c -> c.quiescent_point <> None) long in
  let persistent_points = List.length (List.filter (fun c -> c.persistent) qps) in
  {
    classes;
    short_lived;
    long_lived_count = List.length long;
    quiescent_points = List.length qps;
    persistent_points;
    volatile_points = List.length qps - persistent_points;
  }

let suggested_qpoints r =
  List.filter_map
    (fun c -> Option.map (fun q -> (q.site, q.call)) c.quiescent_point)
    r.classes
  |> List.sort_uniq compare

let pp_report ppf r =
  Format.fprintf ppf "@[<v>thread classes: %d (SL %d, LL %d); QP %d (Per %d, Vol %d)@,"
    (List.length r.classes) r.short_lived r.long_lived_count r.quiescent_points
    r.persistent_points r.volatile_points;
  List.iter
    (fun c ->
      Format.fprintf ppf "  %-24s x%d %s%s" c.cls c.instances
        (if c.long_lived then "long-lived" else "short-lived")
        (if c.persistent then " persistent" else "");
      (match c.quiescent_point with
      | Some q ->
          Format.fprintf ppf " qpoint=%s/%s (%.1f ms, %d hits)" q.site q.call
            (float_of_int q.blocked_ns /. 1e6)
            q.hits
      | None -> ());
      if c.blocked_p50_ns > 0 then
        Format.fprintf ppf " blocked p50/p90/p99=%.1f/%.1f/%.1f ms"
          (float_of_int c.blocked_p50_ns /. 1e6)
          (float_of_int c.blocked_p90_ns /. 1e6)
          (float_of_int c.blocked_p99_ns /. 1e6);
      (match c.long_lived_loops with
      | [] -> ()
      | loops -> Format.fprintf ppf " loops=[%s]" (String.concat ";" loops));
      Format.fprintf ppf "@,")
    r.classes;
  Format.fprintf ppf "@]"
