(** The quiescence profiler (Section 4).

    Runs the target program under a test workload and suggests per-thread
    quiescent points: "a quiescent point is simply identified by the
    blocking call where a given thread spends most of its time during the
    execution-stalling test workload", and long-lived loops: "the thread's
    deepest loop that never terminates during the test workload".

    Attach installs a kernel block monitor (the statistical profiling of
    library calls); loop and thread lifecycle events are reported by the
    program layer's combinators. *)

type t

val create : Mcr_simos.Kernel.t -> t

val attach : t -> unit
(** Install the kernel-wide block monitor. Only one profiler can be
    attached at a time. *)

val set_filter : t -> (Mcr_simos.Kernel.thread -> bool) -> unit
(** Restrict profiling to threads satisfying the predicate (e.g. threads of
    the program under test, excluding benchmark clients). Default: all. *)

val set_trace : t -> Mcr_obs.Trace.t option -> unit
(** Attach an observability sink: thread lifecycle events
    ([thread.start] / [thread.end], category ["profiler"]) are emitted as
    instants. Default: no sink. *)

val detach : t -> unit

(** {1 Events from the program layer} *)

val note_thread_start : t -> Mcr_simos.Kernel.thread -> unit
val note_thread_end : t -> Mcr_simos.Kernel.thread -> unit
val note_loop_enter : t -> Mcr_simos.Kernel.thread -> string -> unit
val note_loop_exit : t -> Mcr_simos.Kernel.thread -> string -> unit

val mark_startup_complete : t -> unit
(** Quiescent points visible before this instant are classified persistent;
    later ones volatile. Defaults to the first blocking event seen. *)

(** {1 Report} *)

type qpoint = {
  site : string;  (** Innermost shadow-stack frame at the blocking call. *)
  call : string;  (** Syscall mnemonic, e.g. "accept". *)
  blocked_ns : int;
  hits : int;
}

type thread_class = {
  cls : string;  (** Thread entry name; one row per class, as in Table 1. *)
  instances : int;
  long_lived : bool;  (** Some instance still alive at report time. *)
  persistent : bool;  (** Class already present right after startup. *)
  quiescent_point : qpoint option;  (** Dominant blocking site (long-lived only). *)
  long_lived_loops : string list;  (** Loops entered but never exited. *)
  blocked_p50_ns : int;
  blocked_p90_ns : int;
  blocked_p99_ns : int;
      (** Blocking-duration percentiles across all sites and instances of
          the class, from a shared {!Mcr_util.Stats.hist} (upper-bound
          estimates; 0 when the class never blocked). *)
}

type report = {
  classes : thread_class list;
  short_lived : int;  (** Count of short-lived classes (Table 1 "SL"). *)
  long_lived_count : int;  (** Table 1 "LL". *)
  quiescent_points : int;  (** Table 1 "QP". *)
  persistent_points : int;  (** Table 1 "Per". *)
  volatile_points : int;  (** Table 1 "Vol". *)
}

val report : t -> report
(** Build the report. Besides the accumulated resume statistics, threads
    {e currently} blocked at report time are attributed to their blocking
    site (weighted by thread lifetime) — the sampling view a statistical
    profiler would give, needed for quiescent points whose calls never
    complete during the workload (e.g. signal waits). *)

val suggested_qpoints : report -> (string * string) list
(** [(site, call)] pairs to instrument — the profiler's output consumed by
    the static instrumentation. *)

val pp_report : Format.formatter -> report -> unit
