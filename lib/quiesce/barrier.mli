(** Barrier-synchronization quiescence protocol (Section 4).

    One barrier per process. Long-lived threads register themselves the
    first time they pass a wrapped (unblockified) blocking call; when
    quiescence is requested, every registered thread calls {!hook} from its
    wrapper loop, parks on the barrier's semaphore, and the process is
    quiescent once all registered threads have arrived. {!release} lets
    them resume (rollback / update completion).

    The controller never busy-waits inside the simulation: the MCR runtime
    drives the kernel until {!quiesced} holds. *)

type t

val create : Mcr_simos.Kernel.t -> pid:int -> t
(** A barrier for the process [pid] (the pid only namespaces the semaphore). *)

val set_trace : t -> Mcr_obs.Trace.t option -> unit
(** Attach (or detach) an observability sink. With a sink installed the
    barrier emits instant events for every protocol transition —
    [barrier.request], [barrier.arrive] (per parking thread, with
    arrived/target counts), [barrier.quiesced], [barrier.release],
    [barrier.cancel] — under the process's pid, category ["barrier"].
    Default: no sink, zero overhead. *)

val set_refusal : t -> (unit -> bool) option -> unit
(** Fault injection: while the closure returns [true], threads reaching
    {!hook} decline to park (as if they had no quiescent point) and keep
    serving — modelling a thread that never quiesces. The closure is
    polled on every wrapper retry, so disarming the fault lets the next
    retry arrive normally. Default: no refusal. *)

val register_thread : t -> unit
(** Called once per long-lived thread (from the first wrapped blocking
    call). Raises the arrival target. *)

val registered : t -> int

val deregister_thread : t -> unit
(** A registered thread is exiting (connection handler done). *)

val request : t -> unit
(** Ask all registered threads to park at their quiescent points. *)

val requested : t -> bool

val cancel : t -> unit
(** Withdraw a request before all threads arrived (not used by the normal
    protocol, but needed for rollback of a failed request). *)

val hook : t -> bool
(** The quiescence hook, invoked from unblockification wrappers. If
    quiescence is requested, parks the calling thread until {!release} and
    returns [true]; otherwise returns [false] immediately. A [true] return
    makes the wrapper deliver EINTR, so the program's event loop re-arms
    with fresh state (exactly like a signal-interrupted blocking call).
    Must run inside a simulated thread. *)

val arrived : t -> int

val quiesced : t -> bool
(** All registered threads are parked at the barrier. Processes with no
    registered threads count as trivially quiescent. *)

val release : t -> unit
(** Wake every parked thread and clear the request. *)

val failure_reason : deadline_hit:bool -> Mcr_error.rollback_reason
(** The shared rollback vocabulary for a barrier that never quiesced:
    {!Mcr_error.Quiescence_deadline_exceeded} when an explicit quiescence
    deadline elapsed, {!Mcr_error.Quiescence_did_not_converge} when the
    protocol gave up without one. *)
