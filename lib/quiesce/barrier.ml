module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs

type t = {
  kernel : K.t;
  sem_name : string;
  mutable target : int;
  mutable arrived : int;
  mutable requested : bool;
  mutable epoch : int;
}

let create kernel ~pid =
  {
    kernel;
    sem_name = Printf.sprintf "mcr.barrier.%d" pid;
    target = 0;
    arrived = 0;
    requested = false;
    epoch = 0;
  }

let register_thread t = t.target <- t.target + 1

let registered t = t.target

let deregister_thread t = t.target <- max 0 (t.target - 1)

let request t = t.requested <- true

let requested t = t.requested

let cancel t =
  if t.requested then begin
    t.requested <- false;
    (* wake anyone already parked *)
    for _ = 1 to t.arrived do
      K.post_semaphore t.kernel t.sem_name
    done
  end

let hook t =
  if t.requested then begin
    let epoch = t.epoch in
    t.arrived <- t.arrived + 1;
    ignore (K.syscall (S.Sem_wait { name = t.sem_name; timeout_ns = None }));
    (* on resume: if the same episode, account departure *)
    if t.epoch = epoch then t.arrived <- t.arrived - 1;
    true
  end
  else false

let arrived t = t.arrived

let quiesced t = t.requested && t.arrived >= t.target

let release t =
  t.requested <- false;
  t.epoch <- t.epoch + 1;
  let n = t.arrived in
  t.arrived <- 0;
  for _ = 1 to n do
    K.post_semaphore t.kernel t.sem_name
  done
