module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module Trace = Mcr_obs.Trace

type t = {
  kernel : K.t;
  pid : int;
  sem_name : string;
  mutable target : int;
  mutable arrived : int;
  mutable requested : bool;
  mutable epoch : int;
  mutable trace : Trace.t option;
  mutable refuse : (unit -> bool) option;
}

let create kernel ~pid =
  {
    kernel;
    pid;
    sem_name = Printf.sprintf "mcr.barrier.%d" pid;
    target = 0;
    arrived = 0;
    requested = false;
    epoch = 0;
    trace = None;
    refuse = None;
  }

let set_trace t trace = t.trace <- trace
let set_refusal t f = t.refuse <- f

let counts t = [ ("arrived", string_of_int t.arrived); ("target", string_of_int t.target) ]

let register_thread t = t.target <- t.target + 1

let registered t = t.target

let deregister_thread t = t.target <- max 0 (t.target - 1)

let request t =
  t.requested <- true;
  Trace.instant t.trace ~pid:t.pid ~cat:"barrier" "barrier.request" ~args:(counts t)

let requested t = t.requested

let cancel t =
  if t.requested then begin
    t.requested <- false;
    Trace.instant t.trace ~pid:t.pid ~cat:"barrier" "barrier.cancel" ~args:(counts t);
    (* wake anyone already parked *)
    for _ = 1 to t.arrived do
      K.post_semaphore t.kernel t.sem_name
    done
  end

let refusing t = match t.refuse with Some f -> f () | None -> false

let hook t =
  if t.requested && refusing t then
    (* Fault injection: pretend this thread has no quiescent point right
       now. No trace instant — the wrapper retries every qtick and would
       flood the ring buffer. *)
    false
  else if t.requested then begin
    let epoch = t.epoch in
    t.arrived <- t.arrived + 1;
    Trace.instant t.trace ~pid:t.pid ~cat:"barrier" "barrier.arrive" ~args:(counts t);
    if t.arrived >= t.target then
      Trace.instant t.trace ~pid:t.pid ~cat:"barrier" "barrier.quiesced" ~args:(counts t);
    ignore (K.syscall (S.Sem_wait { name = t.sem_name; timeout_ns = None }));
    (* on resume: if the same episode, account departure *)
    if t.epoch = epoch then t.arrived <- t.arrived - 1;
    true
  end
  else false

let arrived t = t.arrived

let quiesced t = t.requested && t.arrived >= t.target

let release t =
  t.requested <- false;
  t.epoch <- t.epoch + 1;
  Trace.instant t.trace ~pid:t.pid ~cat:"barrier" "barrier.release" ~args:(counts t);
  let n = t.arrived in
  t.arrived <- 0;
  for _ = 1 to n do
    K.post_semaphore t.kernel t.sem_name
  done

let failure_reason ~deadline_hit =
  if deadline_hit then Mcr_error.Quiescence_deadline_exceeded
  else Mcr_error.Quiescence_did_not_converge
