(** The deterministic simulated load balancer.

    A balancer fronts the fleet's N instances and models what clients see
    during a rollout: requests are routed round-robin over the backends in
    [Serving] state with a persistent cursor (so consecutive
    {!route} calls continue the rotation instead of restarting it), and a
    request arriving while no backend serves is a {e client-visible
    error} — the number the fleet bench gates on.

    The balancer is pure accounting: it never drives the instance kernels.
    Routing a request to an instance asserts that the instance {e could}
    serve it (its server is quiescent-ready and not draining), which the
    rollout verifies separately with health probes. *)

type t

type state =
  | Serving  (** In rotation. *)
  | Draining  (** Accepts no new requests; update window imminent. *)
  | Out  (** Update window open (or failed health), fully rerouted. *)

val create : n:int -> t
(** All [n] backends start [Serving].
    @raise Invalid_argument if [n] is below 1. *)

val size : t -> int
val state : t -> int -> state
val set_state : t -> int -> state -> unit

val serving : t -> int
(** Backends currently in rotation. *)

val serving_ids : t -> int list
(** Their ids, ascending. *)

val route : t -> n:int -> (int * int) list
(** Route [n] requests over the serving backends: round-robin from the
    persistent cursor, so each gets [n/s] with the first [n mod s] after
    the cursor taking one extra. Returns [(instance, requests)] pairs
    sorted by instance id (only backends that received work). With no
    serving backend, all [n] count as client-visible errors and the result
    is empty. *)

val routed_total : t -> int
(** Requests successfully routed since {!create}. *)

val errors_total : t -> int
(** Requests dropped because no backend was serving. *)
