(* Deterministic round-robin balancing over the serving subset. The cursor
   is an absolute counter: it advances by the requests that broke the even
   split, so the rotation stays fair across route calls even as backends
   drain and rejoin. No randomness anywhere — two identical rollouts route
   identically. *)

type state = Serving | Draining | Out

type t = {
  states : state array;
  mutable cursor : int;
  mutable routed : int;
  mutable errors : int;
}

let create ~n =
  if n < 1 then invalid_arg "Balancer.create: n must be >= 1";
  { states = Array.make n Serving; cursor = 0; routed = 0; errors = 0 }

let size t = Array.length t.states
let state t i = t.states.(i)
let set_state t i s = t.states.(i) <- s

let serving_ids t =
  let ids = ref [] in
  Array.iteri (fun i s -> if s = Serving then ids := i :: !ids) t.states;
  List.rev !ids

let serving t = List.length (serving_ids t)

let route t ~n =
  if n <= 0 then []
  else
    match serving_ids t with
    | [] ->
        t.errors <- t.errors + n;
        []
    | ids ->
        let s = List.length ids in
        let arr = Array.of_list ids in
        let start = t.cursor mod s in
        let extra = n mod s in
        let counts = Array.make s (n / s) in
        for k = 0 to extra - 1 do
          let idx = (start + k) mod s in
          counts.(idx) <- counts.(idx) + 1
        done;
        t.cursor <- t.cursor + extra;
        t.routed <- t.routed + n;
        let out = ref [] in
        for k = s - 1 downto 0 do
          if counts.(k) > 0 then out := (arr.(k), counts.(k)) :: !out
        done;
        !out

let routed_total t = t.routed
let errors_total t = t.errors
