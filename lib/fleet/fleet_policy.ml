(* The fleet rollout policy record, following Policy's builder idiom:
   validation lives in the builders, the record itself is plain data. *)

type halt = Halt_only | Rollback_updated

type t = {
  canary : int;
  wave : int;
  max_unavailable : int;
  halt : halt;
  drain_ns : int;
  health_requests : int;
  tick_requests : int;
  fault_seed : int option;
  fault_instances : int list;
  update : Mcr_core.Policy.t;
}

let default =
  {
    canary = 1;
    wave = 4;
    max_unavailable = 4;
    halt = Halt_only;
    drain_ns = 50_000_000;
    health_requests = 4;
    tick_requests = 100;
    fault_seed = None;
    fault_instances = [];
    update = Mcr_core.Policy.default;
  }

let with_canary n t =
  if n < 1 then invalid_arg "Fleet_policy.with_canary: count must be >= 1";
  { t with canary = n }

let with_wave n t =
  if n < 1 then invalid_arg "Fleet_policy.with_wave: count must be >= 1";
  { t with wave = n }

let with_max_unavailable n t =
  if n < 1 then invalid_arg "Fleet_policy.with_max_unavailable: count must be >= 1";
  { t with max_unavailable = n }

let with_halt h t = { t with halt = h }

let with_drain_ns ns t =
  if ns < 0 then invalid_arg "Fleet_policy.with_drain_ns: must be >= 0";
  { t with drain_ns = ns }

let with_health_requests n t =
  if n < 1 then invalid_arg "Fleet_policy.with_health_requests: count must be >= 1";
  { t with health_requests = n }

let with_tick_requests n t =
  if n < 0 then invalid_arg "Fleet_policy.with_tick_requests: must be >= 0";
  { t with tick_requests = n }

let with_fault ~seed ~instances t =
  if List.exists (fun i -> i < 0) instances then
    invalid_arg "Fleet_policy.with_fault: instance ids must be >= 0";
  { t with fault_seed = seed; fault_instances = List.sort_uniq compare instances }

let with_update p t = { t with update = p }

let halt_to_string = function
  | Halt_only -> "halt_only"
  | Rollback_updated -> "rollback_updated"

let halt_of_string = function
  | "halt_only" -> Some Halt_only
  | "rollback_updated" -> Some Rollback_updated
  | _ -> None

let pp fmt t =
  Format.fprintf fmt
    "@[<hv>canary=%d wave=%d max_unavailable=%d halt=%s drain_ns=%d health_requests=%d@ \
     tick_requests=%d fault_seed=%s fault_instances=[%s]@ update=(%a)@]"
    t.canary t.wave t.max_unavailable (halt_to_string t.halt) t.drain_ns t.health_requests
    t.tick_requests
    (match t.fault_seed with None -> "-" | Some s -> string_of_int s)
    (String.concat "," (List.map string_of_int t.fault_instances))
    Mcr_core.Policy.pp t.update
