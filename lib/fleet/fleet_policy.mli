(** Consolidated fleet rollout policy.

    Mirrors {!Mcr_core.Policy}: one immutable record with builder
    functions, shared by reference across a {!Fleet.t} so the coordinator
    a rollout leaves behind keeps honouring runtime adjustments. The
    per-instance update policy rides along in {!t.update} — the fleet
    layer never invents its own single-update knobs. *)

type halt =
  | Halt_only
      (** A blocking verdict stops later waves; instances already on the
          target version stay there. *)
  | Rollback_updated
      (** ...and additionally reverts every already-updated instance back
          to the starting version in a final rollback wave. *)

type t = {
  canary : int;
      (** Instances updated in the first (gating) wave (default 1). *)
  wave : int;  (** Instances per subsequent wave (default 4). *)
  max_unavailable : int;
      (** Upper bound on instances simultaneously out of the balancer
          rotation; {!Rollout.plan} clamps canary and wave sizes to it
          (default 4). *)
  halt : halt;  (** What a blocking verdict does (default {!Halt_only}). *)
  drain_ns : int;
      (** Virtual time the balancer drains an instance before its update
          window opens (default 50 ms). *)
  health_requests : int;
      (** Requests the post-update health probe sends (default 4). *)
  tick_requests : int;
      (** Simulated client requests the balancer routes at each wave
          transition — the denominator of the client-visible error count
          (default 100). *)
  fault_seed : int option;
      (** Seed for per-instance fault plans (default none). Instance [i]
          in {!t.fault_instances} is armed with
          [Mcr_fault.Fault.of_seed (seed + i)] on its target update. *)
  fault_instances : int list;
      (** Which instances the seed arms (default none). *)
  update : Mcr_core.Policy.t;
      (** The single-instance update policy every wave member runs under
          (default {!Mcr_core.Policy.default}). *)
}

val default : t

val with_canary : int -> t -> t
(** @raise Invalid_argument if the count is below 1. *)

val with_wave : int -> t -> t
(** @raise Invalid_argument if the count is below 1. *)

val with_max_unavailable : int -> t -> t
(** @raise Invalid_argument if the count is below 1. *)

val with_halt : halt -> t -> t

val with_drain_ns : int -> t -> t
(** @raise Invalid_argument if negative. *)

val with_health_requests : int -> t -> t
(** @raise Invalid_argument if the count is below 1. *)

val with_tick_requests : int -> t -> t
(** @raise Invalid_argument if negative. *)

val with_fault : seed:int option -> instances:int list -> t -> t
(** @raise Invalid_argument if an instance id is negative. *)

val with_update : Mcr_core.Policy.t -> t -> t

val halt_to_string : halt -> string
(** ["halt_only" | "rollback_updated"] — the frozen form fleet summaries
    and the ctl surface use. *)

val halt_of_string : string -> halt option

val pp : Format.formatter -> t -> unit
