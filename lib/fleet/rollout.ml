(* Wave planning and execution. Time here is fleet-relative virtual time:
   every instance runs in its own kernel, so the rollout clock starts at 0
   and advances by drain windows and the slowest member of each wave (the
   members update concurrently in wall-clock terms — their simulations are
   independent). Availability is sampled at every balancer transition. *)

module K = Mcr_simos.Kernel
module Manager = Mcr_core.Manager
module Ctl = Mcr_core.Ctl
module Frame = Mcr_core.Frame
module Flight = Mcr_obs.Flight
module Fleet_flight = Mcr_obs.Fleet_flight

let plan (pol : Fleet_policy.t) ~n =
  if n < 1 then invalid_arg "Rollout.plan: n must be >= 1";
  let canary = min n (min pol.Fleet_policy.canary pol.Fleet_policy.max_unavailable) in
  let canary = max 1 canary in
  let wave = max 1 (min pol.Fleet_policy.wave pol.Fleet_policy.max_unavailable) in
  let ids = List.init n Fun.id in
  let split k l =
    let rec go i acc = function
      | x :: tl when i < k -> go (i + 1) (x :: acc) tl
      | rest -> (List.rev acc, rest)
    in
    go 0 [] l
  in
  let first, rest = split canary ids in
  let rec waves = function
    | [] -> []
    | l ->
        let w, rest = split wave l in
        w :: waves rest
  in
  first :: waves rest

(* ------------------------------------------------------------------ *)

let execute fleet =
  let pol = Fleet.policy fleet in
  let n = Fleet.size fleet in
  let bal = Fleet.balancer fleet in
  let routed0 = Balancer.routed_total bal in
  let errors0 = Balancer.errors_total bal in
  let from_tag = Fleet.version_tag fleet 0 in
  let waves = plan pol ~n in
  let now = ref 0 in
  let timeline = ref [] in
  let sample () =
    Fleet.refresh_serving fleet;
    timeline :=
      { Fleet_flight.s_ns = !now; s_serving = Balancer.serving bal } :: !timeline
  in
  let tick () = ignore (Balancer.route bal ~n:pol.Fleet_policy.tick_requests) in
  let wave_index = ref 0 in
  let done_waves = ref [] in
  let halted = ref false in
  let blocking = ref None in
  sample ();
  (* One wave: drain the members, run their updates (duration = slowest
     member), rejoin the healthy ones, route a client tick on each side of
     the window. [update] returns the member's verdict. *)
  let run_wave ~kind members ~update =
    let w_start = !now in
    List.iter (fun id -> Balancer.set_state bal id Balancer.Draining) members;
    sample ();
    tick ();
    now := !now + pol.Fleet_policy.drain_ns;
    List.iter (fun id -> Balancer.set_state bal id Balancer.Out) members;
    let verdicts, duration =
      List.fold_left
        (fun (vs, dur) id ->
          let v = update id in
          (v :: vs, max dur v.Fleet_flight.v_total_ns))
        ([], 0) members
    in
    let verdicts = List.rev verdicts in
    now := !now + duration;
    (* a rolled-back instance rejoins too: its old version resumed serving
       (the atomic-rollback guarantee); only a failed health probe keeps an
       instance out of rotation *)
    List.iter
      (fun (v : Fleet_flight.verdict) ->
        Balancer.set_state bal v.Fleet_flight.v_instance
          (if v.Fleet_flight.v_healthy then Balancer.Serving else Balancer.Out))
      verdicts;
    tick ();
    sample ();
    let w =
      {
        Fleet_flight.w_index = !wave_index;
        w_kind = kind;
        w_start_ns = w_start;
        w_end_ns = !now;
        w_verdicts = verdicts;
      }
    in
    incr wave_index;
    done_waves := w :: !done_waves;
    w
  in
  let target_update id =
    let report = Fleet.update_instance fleet id `Target in
    let success = report.Manager.success in
    let slo_violated =
      match report.Manager.flight.Flight.f_slo with
      | Some s -> Flight.slo_violated s
      | None -> false
    in
    let healthy = Fleet.healthy fleet id in
    let reason =
      if not success then
        Some
          (Option.fold ~none:"rolled back" ~some:Mcr_error.to_string report.Manager.failure)
      else if slo_violated then Some "slo budget violated"
      else if not healthy then Some "health probe failed"
      else None
    in
    {
      Fleet_flight.v_instance = id;
      v_wave = !wave_index;
      v_success = success;
      v_slo_violated = slo_violated;
      v_healthy = healthy;
      v_reason = reason;
      v_downtime_ns = report.Manager.downtime_ns;
      v_total_ns = report.Manager.total_ns;
      v_flight = Some report.Manager.flight;
    }
  in
  (* Staggered waves with the canary gate: the first blocking verdict stops
     everything after its wave. *)
  (try
     List.iter
       (fun members ->
         let kind = if !wave_index = 0 then "canary" else "wave" in
         let w = run_wave ~kind members ~update:target_update in
         let duration_ns = w.Fleet_flight.w_end_ns - w.Fleet_flight.w_start_ns in
         match List.find_opt Fleet_flight.blocks w.Fleet_flight.w_verdicts with
         | Some v ->
             blocking := Some v;
             halted := true;
             Fleet.note_wave fleet ~outcome:`Halted ~duration_ns;
             raise Exit
         | None -> Fleet.note_wave fleet ~outcome:`Promoted ~duration_ns)
       waves
   with Exit -> ());
  (* Halt policy: revert whatever already reached the target version. *)
  let reverted = ref 0 in
  if !halted && pol.Fleet_policy.halt = Fleet_policy.Rollback_updated then begin
    let on_target =
      List.filter
        (fun i -> Fleet.version_tag fleet i = Fleet.target_tag fleet i)
        (List.init n Fun.id)
    in
    if on_target <> [] then begin
      let revert_update id =
        let report = Fleet.update_instance fleet id `Revert in
        if report.Manager.success then incr reverted;
        {
          Fleet_flight.v_instance = id;
          v_wave = !wave_index;
          v_success = report.Manager.success;
          v_slo_violated = false;
          v_healthy = Fleet.healthy fleet id;
          v_reason = Some "reverted by halt policy";
          v_downtime_ns = report.Manager.downtime_ns;
          v_total_ns = report.Manager.total_ns;
          v_flight = None;
        }
      in
      let w = run_wave ~kind:"rollback" on_target ~update:revert_update in
      Fleet.note_wave fleet ~outcome:`Rollback
        ~duration_ns:(w.Fleet_flight.w_end_ns - w.Fleet_flight.w_start_ns)
    end
  end;
  (* Only the blocking verdict keeps its full flight record — the rest
     would bloat the summary without adding narrative. *)
  let keep_flight (v : Fleet_flight.verdict) =
    match !blocking with
    | Some b ->
        b.Fleet_flight.v_instance = v.Fleet_flight.v_instance
        && b.Fleet_flight.v_wave = v.Fleet_flight.v_wave
    | None -> false
  in
  let strip (w : Fleet_flight.wave) =
    {
      w with
      Fleet_flight.w_verdicts =
        List.map
          (fun (v : Fleet_flight.verdict) ->
            if keep_flight v then v else { v with Fleet_flight.v_flight = None })
          w.Fleet_flight.w_verdicts;
    }
  in
  let updated =
    List.length
      (List.filter
         (fun i -> Fleet.version_tag fleet i = Fleet.target_tag fleet i)
         (List.init n Fun.id))
  in
  let timeline = List.rev !timeline in
  let min_serving =
    List.fold_left (fun acc (s : Fleet_flight.sample) -> min acc s.Fleet_flight.s_serving) n
      timeline
  in
  let summary =
    {
      Fleet_flight.fs_prog = Fleet.prog fleet;
      fs_from = from_tag;
      fs_to = Fleet.target_tag fleet 0;
      fs_size = n;
      fs_canary = pol.Fleet_policy.canary;
      fs_wave_size = pol.Fleet_policy.wave;
      fs_max_unavailable = pol.Fleet_policy.max_unavailable;
      fs_halt = Fleet_policy.halt_to_string pol.Fleet_policy.halt;
      fs_waves = List.rev_map strip !done_waves;
      fs_halted = !halted;
      fs_blocking = !blocking;
      fs_updated = updated;
      fs_reverted = !reverted;
      fs_makespan_ns = !now;
      fs_min_serving = min_serving;
      fs_requests = Balancer.routed_total bal - routed0;
      fs_client_errors = Balancer.errors_total bal - errors0;
      fs_timeline = timeline;
    }
  in
  Fleet.record_rollout fleet summary;
  summary

(* ------------------------------------------------------------------ *)
(* The operator path: FLEET ROLLOUT over the control socket. *)

let request_over_ctl fleet =
  let kernel = Fleet.ctl_kernel fleet in
  let result = ref None in
  Ctl.exec kernel ~path:(Fleet.ctl_path fleet) (Ctl.Raw "FLEET ROLLOUT")
    ~on_result:(fun r -> result := Some r)
    ();
  ignore
    (K.run_until kernel
       ~max_ns:(K.clock_ns kernel + 10_000_000_000)
       (fun () -> Fleet.rollout_requested fleet));
  if not (Fleet.rollout_requested fleet) then Error "FLEET ROLLOUT request not delivered"
  else begin
    let summary = execute fleet in
    Fleet.respond_rollout fleet
      (Frame.ok_inline (if summary.Fleet_flight.fs_halted then "HALTED" else "COMPLETED"));
    ignore
      (K.run_until kernel ~max_ns:(K.clock_ns kernel + 10_000_000_000) (fun () ->
           !result <> None));
    match !result with
    | Some (Ok _) -> Ok summary
    | Some (Error e) -> Error (Format.asprintf "%a" Frame.pp_error e)
    | None -> Error "no reply from the fleet controller"
  end
