(** The wave planner and executor: canary-gated rolling update.

    {!plan} turns a {!Fleet_policy.t} into staggered waves (canary first,
    then fixed-size waves, every wave clamped to [max_unavailable]);
    {!execute} runs them on a fleet-relative virtual clock — drain, update
    every wave member on its own kernel (wave duration is the slowest
    member, the waves being independent simulations), health-probe,
    rejoin — and gates each wave on its verdicts: an update that rolled
    back, violated its SLO budget, or failed its health probe halts the
    rollout (and, under {!Fleet_policy.Rollback_updated}, reverts every
    already-updated instance in a final rollback wave). The whole run is
    summarised as a {!Mcr_obs.Fleet_flight.t}. *)

val plan : Fleet_policy.t -> n:int -> int list list
(** Wave membership over instance ids [0..n-1], execution order. The first
    wave is the canary ([min canary max_unavailable] instances, at most
    [n]); later waves take [min wave max_unavailable] each. Every id
    appears exactly once. *)

val execute : Fleet.t -> Mcr_obs.Fleet_flight.t
(** Run the rollout under the fleet's current policy. Returns the summary
    (also stored on the fleet for [FLEET EXPLAIN]) — inspect
    [fs_halted]/[fs_blocking] for the outcome. Instance managers are
    swapped in place as updates commit or revert. *)

val request_over_ctl : Fleet.t -> (Mcr_obs.Fleet_flight.t, string) result
(** Drive a rollout through the control plane the way an operator would:
    send [FLEET ROLLOUT] over the fleet socket (v1 frames), wait for the
    listener to park on the reply semaphore, {!execute}, deliver the
    reply, and surface the client's typed outcome. *)
