(* The fleet coordinator. Each instance is one kernel + one manager
   lineage — the single-instance MCR mechanism untouched — and the fleet
   holds them in an array behind a balancer, with a separate control-plane
   kernel serving the FLEET command family through the same Ctl_server the
   per-manager mcr-ctl endpoint uses. *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module P = Mcr_program.Progdef
module Manager = Mcr_core.Manager
module Policy = Mcr_core.Policy
module Frame = Mcr_core.Frame
module Ctl_server = Mcr_core.Ctl_server
module Metrics = Mcr_obs.Metrics
module Fleet_flight = Mcr_obs.Fleet_flight
module Aspace = Mcr_vmem.Aspace
module Image = Mcr_image.Image
module Testbed = Mcr_workloads.Testbed
module Bench_result = Mcr_workloads.Bench_result

type instance = { id : int; kernel : K.t; mutable manager : Manager.t }

(* The fleet's metric instruments; the registry is fleet-level, distinct
   from every instance manager's registry. *)
type fmset = {
  fm_size : Metrics.gauge;
  fm_serving : Metrics.gauge;
  fm_rollouts : Metrics.counter;
  fm_halts : Metrics.counter;
  fm_wave_promotions : Metrics.counter;
  fm_wave_halts : Metrics.counter;
  fm_instance_updates : Metrics.counter;
  fm_instance_rollbacks : Metrics.counter;
  fm_reverted : Metrics.counter;
  fm_requests : Metrics.counter;
  fm_client_errors : Metrics.counter;
  fm_migrations : Metrics.counter;
  fm_failovers : Metrics.counter;
  fm_wave_h : Metrics.histogram;
}

let make_fmset metrics =
  {
    fm_size = Metrics.gauge metrics "mcr_fleet_size";
    fm_serving = Metrics.gauge metrics "mcr_fleet_serving";
    fm_rollouts = Metrics.counter metrics "mcr_fleet_rollouts_total";
    fm_halts = Metrics.counter metrics "mcr_fleet_rollout_halts_total";
    fm_wave_promotions = Metrics.counter metrics "mcr_fleet_wave_promotions_total";
    fm_wave_halts = Metrics.counter metrics "mcr_fleet_wave_halts_total";
    fm_instance_updates = Metrics.counter metrics "mcr_fleet_instance_updates_total";
    fm_instance_rollbacks = Metrics.counter metrics "mcr_fleet_instance_rollbacks_total";
    fm_reverted = Metrics.counter metrics "mcr_fleet_reverted_instances_total";
    fm_requests = Metrics.counter metrics "mcr_fleet_requests_routed_total";
    fm_client_errors = Metrics.counter metrics "mcr_fleet_client_errors_total";
    fm_migrations = Metrics.counter metrics "mcr_fleet_migrations_total";
    fm_failovers = Metrics.counter metrics "mcr_fleet_failovers_total";
    fm_wave_h = Metrics.histogram metrics "mcr_fleet_wave_duration_ns";
  }

type t = {
  prog : string;
  size : int;
  policy : Fleet_policy.t ref;
  instances : instance array;
  balancer : Balancer.t;
  health : K.t -> Manager.t -> bool;
  target : int -> P.version;
  revert : int -> P.version;
  relaunch : int -> version_tag:string -> (K.t * Manager.t, string) result;
  ctl_kernel : K.t;
  ctl_path : string;
  ctl_pending : bool ref;
  ctl_result : string ref;
  ctl_sem : string;
  last_summary : Fleet_flight.t option ref;
  metrics : Metrics.t;
  fmset : fmset;
}

let prog t = t.prog
let size t = t.size
let policy t = !(t.policy)
let set_policy t p = t.policy := p
let balancer t = t.balancer
let serving t = Balancer.serving t.balancer
let manager t i = t.instances.(i).manager
let instance_kernel t i = t.instances.(i).kernel
let version_tag t i = (Manager.version t.instances.(i).manager).P.version_tag
let target_tag t i = (t.target i).P.version_tag
let last_summary t = !(t.last_summary)
let metrics t = t.metrics
let ctl_kernel t = t.ctl_kernel
let ctl_path t = t.ctl_path
let rollout_requested t = !(t.ctl_pending)

let metrics_snapshot t =
  Metrics.set t.fmset.fm_serving (Balancer.serving t.balancer);
  Metrics.snapshot t.metrics

let state_str = function
  | Balancer.Serving -> "serving"
  | Balancer.Draining -> "draining"
  | Balancer.Out -> "out"

(* Fleet-wide client latency: the open-loop driver observes
   mcr_request_latency_ns into each instance manager's own registry;
   merging the per-instance histograms (same log bounds everywhere) gives
   the tail a client of the whole fleet sees. *)
let client_latency t =
  Array.fold_left
    (fun acc inst ->
      match
        Metrics.find_histogram (Manager.metrics_snapshot inst.manager)
          "mcr_request_latency_ns"
      with
      | Some h when h.Metrics.total > 0 -> (
          match acc with
          | None -> Some h
          | Some m -> Some (Metrics.hist_snapshot_merge m h))
      | Some _ | None -> acc)
    None t.instances

let status_text t =
  let buf = Buffer.create 512 in
  let pol = !(t.policy) in
  Buffer.add_string buf
    (Printf.sprintf "fleet %s: size %d, serving %d, rollouts %d\n" t.prog t.size
       (Balancer.serving t.balancer)
       (Metrics.counter_value t.fmset.fm_rollouts));
  Buffer.add_string buf
    (Printf.sprintf "policy: canary=%d wave=%d max_unavailable=%d halt=%s drain_ns=%d\n"
       pol.Fleet_policy.canary pol.Fleet_policy.wave pol.Fleet_policy.max_unavailable
       (Fleet_policy.halt_to_string pol.Fleet_policy.halt)
       pol.Fleet_policy.drain_ns);
  Array.iter
    (fun inst ->
      Buffer.add_string buf
        (Printf.sprintf "instance %d: v%s %s\n" inst.id
           (Manager.version inst.manager).P.version_tag
           (state_str (Balancer.state t.balancer inst.id))))
    t.instances;
  (match client_latency t with
  | None -> ()
  | Some h ->
      let s = Metrics.hist_snapshot_summary h in
      Buffer.add_string buf
        (Printf.sprintf
           "client latency: %d request(s), p50 %d us, p99 %d us, p99.9 %d us, max %d us\n"
           s.Mcr_util.Stats.count
           (s.Mcr_util.Stats.p50_ns / 1000)
           (s.Mcr_util.Stats.p99_ns / 1000)
           (s.Mcr_util.Stats.p999_ns / 1000)
           (s.Mcr_util.Stats.max_ns / 1000)));
  Buffer.contents buf

(* FNV over the whole root-process address space: region identity plus
   every word. Identical deterministic instances hash identically — the
   byte-identical-commit witness, shared with the checkpoint-image layer.
   Seeded with the progdef's program name (not the fleet's display name)
   so the value is comparable with {!Image.fingerprint} of a saved
   image. *)
let image_fingerprint t i =
  let inst = t.instances.(i) in
  let root = List.hd (Manager.images inst.manager) in
  Image.aspace_fingerprint ~prog:root.P.i_version.P.prog
    (K.aspace (Manager.root_proc inst.manager))

(* ------------------------------------------------------------------ *)
(* Coordinator-side hooks *)

let update_instance t i which =
  let inst = t.instances.(i) in
  let pol = !(t.policy) in
  let version, update_policy =
    match which with
    | `Target ->
        let p =
          match pol.Fleet_policy.fault_seed with
          | Some s when List.mem i pol.Fleet_policy.fault_instances ->
              Policy.with_fault_seed (Some (s + i)) pol.Fleet_policy.update
          | _ -> pol.Fleet_policy.update
        in
        (t.target i, p)
    | `Revert -> (t.revert i, Policy.with_fault_seed None pol.Fleet_policy.update)
  in
  let m2, report = Manager.update inst.manager ~policy:update_policy version in
  inst.manager <- m2;
  if report.Manager.success then Metrics.incr t.fmset.fm_instance_updates
  else Metrics.incr t.fmset.fm_instance_rollbacks;
  report

let healthy t i =
  let inst = t.instances.(i) in
  t.health inst.kernel inst.manager

let refresh_serving t = Metrics.set t.fmset.fm_serving (Balancer.serving t.balancer)

let note_wave t ~outcome ~duration_ns =
  Metrics.observe t.fmset.fm_wave_h duration_ns;
  match outcome with
  | `Promoted -> Metrics.incr t.fmset.fm_wave_promotions
  | `Halted -> Metrics.incr t.fmset.fm_wave_halts
  | `Rollback -> ()

let record_rollout t (s : Fleet_flight.t) =
  t.last_summary := Some s;
  Metrics.incr t.fmset.fm_rollouts;
  if s.Fleet_flight.fs_halted then Metrics.incr t.fmset.fm_halts;
  Metrics.incr ~by:s.Fleet_flight.fs_reverted t.fmset.fm_reverted;
  Metrics.incr ~by:s.Fleet_flight.fs_requests t.fmset.fm_requests;
  Metrics.incr ~by:s.Fleet_flight.fs_client_errors t.fmset.fm_client_errors;
  refresh_serving t

(* ------------------------------------------------------------------ *)
(* Checkpoint images: save, migrate, warm standby *)

let check_instance t i =
  if i < 0 || i >= t.size then Error (Printf.sprintf "no instance %d" i) else Ok ()

let save_instance t i ~path =
  match check_instance t i with
  | Error e -> Error e
  | Ok () -> Manager.save_image t.instances.(i).manager ~path

(* A fresh kernel running exactly the image's version, settled and ready
   for install. The fleet's [relaunch] hook supplies it; the version check
   here turns a miswired hook into a named error instead of a downstream
   [Version_mismatch]. *)
let fresh_instance t i ~version_tag =
  match t.relaunch i ~version_tag with
  | Error _ as e -> e
  | Ok (kernel, m) ->
      let got = (Manager.version m).P.version_tag in
      if got <> version_tag then
        Error (Printf.sprintf "relaunch produced version %s, image holds %s" got version_tag)
      else Ok (kernel, m)

let migrate_instance t i ~path =
  match check_instance t i with
  | Error e -> Error e
  | Ok () ->
      let inst = t.instances.(i) in
      let prev_state = Balancer.state t.balancer i in
      let back_out e =
        Balancer.set_state t.balancer i prev_state;
        refresh_serving t;
        Error e
      in
      (* drain: out of rotation, in-flight work finishes in the instance's
         own virtual time *)
      Balancer.set_state t.balancer i Balancer.Draining;
      K.run_for inst.kernel !(t.policy).Fleet_policy.drain_ns;
      Balancer.set_state t.balancer i Balancer.Out;
      refresh_serving t;
      (match Manager.save_image inst.manager ~path with
      | Error e -> back_out e
      | Ok img -> (
          match fresh_instance t i ~version_tag:(Image.version_tag img) with
          | Error e -> back_out e
          | Ok (kernel, m) -> (
              (* install from the on-disk bytes — what a cross-host
                 migration actually ships (integrity checks included) *)
              let shipped =
                match Image.read ~path with Ok on_disk -> on_disk | Error _ -> img
              in
              match Manager.restore_image m shipped with
              | Error e -> back_out e
              | Ok _report ->
                  (* the drained original is abandoned: its kernel simply
                     stops being driven *)
                  t.instances.(i) <- { id = i; kernel; manager = m };
                  Metrics.incr t.fmset.fm_migrations;
                  Balancer.set_state t.balancer i Balancer.Serving;
                  refresh_serving t;
                  Ok (Image.fingerprint img))))

type standby = {
  sb_for : int;
  sb_kernel : K.t;
  sb_manager : Manager.t;
  sb_fingerprint : int;
}

let standby_fingerprint sb = sb.sb_fingerprint

let arm_standby t i =
  match check_instance t i with
  | Error e -> Error e
  | Ok () -> (
      let inst = t.instances.(i) in
      match Manager.quiesce_only inst.manager with
      | None -> Error "quiescence did not converge"
      | Some _ -> (
          (* the kernel has not been driven since the quiescent release, so
             the capture sees exactly the quiescent state — no host file
             needed for an intra-host standby *)
          let img =
            Image.capture inst.kernel
              ~members:(Manager.images inst.manager)
              ~policy_text:(Policy.to_kv (Manager.policy inst.manager))
              ()
          in
          match fresh_instance t i ~version_tag:(Image.version_tag img) with
          | Error e -> Error e
          | Ok (kernel, m) -> (
              match Manager.restore_image m img with
              | Error e -> Error e
              | Ok _ ->
                  Ok
                    {
                      sb_for = i;
                      sb_kernel = kernel;
                      sb_manager = m;
                      sb_fingerprint = Image.fingerprint img;
                    })))

let failover_instance t i sb =
  match check_instance t i with
  | Error e -> Error e
  | Ok () ->
      if sb.sb_for <> i then
        Error (Printf.sprintf "standby armed for instance %d, not %d" sb.sb_for i)
      else begin
        (* the failed primary is abandoned wholesale; the pre-restored
           standby takes its slot in rotation *)
        Balancer.set_state t.balancer i Balancer.Out;
        t.instances.(i) <- { id = i; kernel = sb.sb_kernel; manager = sb.sb_manager };
        Metrics.incr t.fmset.fm_failovers;
        Balancer.set_state t.balancer i Balancer.Serving;
        refresh_serving t;
        Ok sb.sb_fingerprint
      end

(* ------------------------------------------------------------------ *)
(* Control plane *)

let dispatch t ~versioned cmd =
  let words =
    String.split_on_char ' ' (String.trim cmd) |> List.filter (fun s -> s <> "")
  in
  match words with
  | "FLEET" :: rest -> begin
      match rest with
      | [ "STATUS" ] ->
          let s = status_text t in
          if versioned then Frame.ok_payload s else s
      | [ "EXPLAIN" ] -> begin
          match !(t.last_summary) with
          | Some s ->
              let json = Fleet_flight.to_json s in
              if versioned then Frame.ok_payload json else json
          | None -> if versioned then Frame.err "no rollouts" else "ERR"
        end
      | [ "ROLLOUT" ] ->
          (* mirror the manager's UPDATE: park until the host loop runs the
             rollout and posts the reply *)
          t.ctl_pending := true;
          ignore (K.syscall (S.Sem_wait { name = t.ctl_sem; timeout_ns = None }));
          !(t.ctl_result)
      | [ "SAVE"; is; path ] -> begin
          (* safe in-dispatch: the listener runs on the control-plane
             kernel, so the instance kernels are idle host-side state *)
          match int_of_string_opt is with
          | None -> if versioned then Frame.err "usage: FLEET SAVE <i> <path>" else "ERR"
          | Some i -> (
              match save_instance t i ~path with
              | Ok img ->
                  if versioned then Frame.ok_inline (string_of_int (Image.fingerprint img))
                  else "OK"
              | Error e -> if versioned then Frame.err e else "ERR")
        end
      | [ "MIGRATE"; is; path ] -> begin
          match int_of_string_opt is with
          | None -> if versioned then Frame.err "usage: FLEET MIGRATE <i> <path>" else "ERR"
          | Some i -> (
              match migrate_instance t i ~path with
              | Ok fp -> if versioned then Frame.ok_inline (string_of_int fp) else "OK"
              | Error e -> if versioned then Frame.err e else "ERR")
        end
      | _ ->
          if versioned then
            Frame.err "usage: FLEET STATUS|ROLLOUT|EXPLAIN|SAVE <i> <path>|MIGRATE <i> <path>"
          else "ERR"
    end
  | _ -> if versioned then Frame.err "unknown command" else "ERR"

let respond_rollout t frame =
  if !(t.ctl_pending) then begin
    t.ctl_result := frame;
    K.post_semaphore t.ctl_kernel t.ctl_sem;
    (* let the listener deliver the reply *)
    K.run_for t.ctl_kernel 5_000_000;
    t.ctl_pending := false
  end

(* ------------------------------------------------------------------ *)
(* Construction *)

let create ?(policy = Fleet_policy.default) ?relaunch ~prog ~n ~spawn ~health ~target
    ~revert () =
  if n < 1 then invalid_arg "Fleet.create: n must be >= 1";
  (* without a version-aware relaunch hook, migration falls back to the
     plain spawner — fine as long as the instance still runs the spawned
     version (install names the mismatch otherwise) *)
  let relaunch =
    match relaunch with
    | Some f -> f
    | None -> fun i ~version_tag:_ -> Ok (spawn i)
  in
  let instances =
    Array.init n (fun i ->
        let kernel, manager = spawn i in
        { id = i; kernel; manager })
  in
  let metrics = Metrics.create () in
  let fmset = make_fmset metrics in
  let ctl_kernel = K.create () in
  let ctl_proc =
    K.spawn_process ctl_kernel
      ~image:(K.Fresh_image (Aspace.create ()))
      ~name:"fleetd" ~entry:"fleetd_main"
      ~main:(fun _ ->
        (* the initial thread returning would end the process (and with it
           the listener); park it on a semaphore nobody posts *)
        ignore
          (K.syscall (S.Sem_wait { name = "mcr.fleet.park." ^ prog; timeout_ns = None })))
      ()
  in
  let t =
    {
      prog;
      size = n;
      policy = ref policy;
      instances;
      balancer = Balancer.create ~n;
      health;
      target;
      revert;
      relaunch;
      ctl_kernel;
      ctl_path = "/run/mcr/fleet." ^ prog ^ ".sock";
      ctl_pending = ref false;
      ctl_result = ref "";
      ctl_sem = Printf.sprintf "mcr.fleet.done.%d" (K.pid ctl_proc);
      last_summary = ref None;
      metrics;
      fmset;
    }
  in
  Metrics.set fmset.fm_size n;
  Metrics.set fmset.fm_serving n;
  Ctl_server.spawn ctl_kernel ctl_proc ~name:"fleet-ctl" ~path:t.ctl_path
    ~dispatch:(fun ~versioned cmd -> dispatch t ~versioned cmd)
    ();
  t

let of_testbed ?policy ?config server ~n =
  let pol = Option.value policy ~default:Fleet_policy.default in
  (* Testbed.benchmark issues (100_000 / scale) requests for the web
     servers; invert that to honour the policy's probe size. *)
  let health_scale = max 1 (100_000 / max 1 pol.Fleet_policy.health_requests) in
  let spawn _i =
    let kernel = K.create () in
    let m = Testbed.launch ?config kernel server in
    (kernel, m)
  in
  let health kernel _m =
    let r = Testbed.benchmark kernel server ~scale:health_scale () in
    r.Bench_result.errors = 0
  in
  let relaunch _i ~version_tag =
    match
      List.find_opt
        (fun (v : P.version) -> v.P.version_tag = version_tag)
        (Testbed.version_series server)
    with
    | None -> Error (Printf.sprintf "no %s version tagged %s" (Testbed.name server) version_tag)
    | Some v ->
        let kernel = K.create () in
        let m = Testbed.launch ?config ~version:v kernel server in
        Ok (kernel, m)
  in
  create ~policy:pol ~relaunch ~prog:(Testbed.name server) ~n ~spawn ~health
    ~target:(fun _ -> Testbed.final_version server)
    ~revert:(fun _ -> Testbed.base_version server)
    ()
