(** The fleet coordinator: N instances of one server program, each in its
    own simulated kernel with its own {!Mcr_core.Manager} lineage, fronted
    by a {!Balancer} and a dedicated control-plane kernel serving the
    [FLEET STATUS|ROLLOUT|EXPLAIN] command family over the v1 ctl protocol
    ({!Mcr_core.Ctl_server} on [/run/mcr/fleet.<prog>.sock]).

    This is the cluster-level coordinator layered {e above} the
    per-process MCR mechanism (the DMTCP lesson): the fleet never reaches
    into an instance's update pipeline — it only calls
    {!Mcr_core.Manager.update} per instance, reads the flight record each
    update produces, and lets {!Rollout} gate waves on those verdicts.

    Every instance is a fully independent deterministic simulation, so a
    fleet of identical instances commits byte-identical images —
    {!image_fingerprint} is the property test's witness. *)

type t

val create :
  ?policy:Fleet_policy.t ->
  ?relaunch:(int -> version_tag:string -> (Mcr_simos.Kernel.t * Mcr_core.Manager.t, string) result) ->
  prog:string ->
  n:int ->
  spawn:(int -> Mcr_simos.Kernel.t * Mcr_core.Manager.t) ->
  health:(Mcr_simos.Kernel.t -> Mcr_core.Manager.t -> bool) ->
  target:(int -> Mcr_program.Progdef.version) ->
  revert:(int -> Mcr_program.Progdef.version) ->
  unit ->
  t
(** [create ~prog ~n ~spawn ~health ~target ~revert ()] builds the fleet:
    [spawn i] must launch instance [i] (fresh kernel, settled manager);
    [health k m] probes whichever version the manager currently serves;
    [target i]/[revert i] name the rollout's destination and the halt
    policy's fallback version. Also creates the control-plane kernel and
    its listener.

    [?relaunch i ~version_tag] must launch a {e fresh} settled instance
    running exactly the named version — {!migrate_instance} and
    {!arm_standby} restore checkpoint images into it. Defaults to [spawn]
    (sufficient while the instance still runs its spawned version).
    @raise Invalid_argument if [n] is below 1. *)

val of_testbed :
  ?policy:Fleet_policy.t -> ?config:string -> Mcr_workloads.Testbed.server -> n:int -> t
(** A fleet of [n] identical {!Mcr_workloads.Testbed} instances: target is
    the server's final version, revert its base version, health a scaled
    {!Mcr_workloads.Testbed.benchmark} probe requiring zero errors
    ({!Fleet_policy.t.health_requests} requests). *)

(** {1 Introspection} *)

val prog : t -> string
val size : t -> int
val policy : t -> Fleet_policy.t
val set_policy : t -> Fleet_policy.t -> unit
val balancer : t -> Balancer.t

val serving : t -> int
(** Instances in balancer rotation (= [Balancer.serving (balancer t)]). *)

val manager : t -> int -> Mcr_core.Manager.t
(** Instance [i]'s current manager (changes when an update commits). *)

val instance_kernel : t -> int -> Mcr_simos.Kernel.t

val version_tag : t -> int -> string
(** The version instance [i] currently runs. *)

val target_tag : t -> int -> string

val image_fingerprint : t -> int -> int
(** FNV hash over instance [i]'s root-process address space — every
    region's name, base, and all its words. Identical deterministic
    instances hash identically; the test suite uses this as the
    byte-identical-commit witness. *)

val last_summary : t -> Mcr_obs.Fleet_flight.t option
(** The most recent rollout's fleet flight summary (served by
    [FLEET EXPLAIN]). *)

val status_text : t -> string
(** The [FLEET STATUS] payload: fleet headline, policy knobs, one line per
    instance (version and balancer state), and — once any instance has
    request-latency observations — the fleet-wide client-latency tail
    ({!client_latency}). *)

val client_latency : t -> Mcr_obs.Metrics.hist_snapshot option
(** The [mcr_request_latency_ns] histograms of every instance manager's
    registry, merged ({!Mcr_obs.Metrics.hist_snapshot_merge}) into the
    fleet-wide client-perceived latency distribution; [None] until some
    instance has observations (e.g. an open-loop {!Mcr_workloads.Loadgen}
    started with that manager's registry). *)

val metrics : t -> Mcr_obs.Metrics.t
(** The fleet-level registry ([mcr_fleet_*] instruments). Independent of
    the per-instance manager registries. *)

val metrics_snapshot : t -> Mcr_obs.Metrics.snapshot

(** {1 Checkpoint images}

    Migration and warm-standby failover on top of
    {!Mcr_image.Image}: the control-socket spellings are
    [FLEET SAVE <i> <path>] and [FLEET MIGRATE <i> <path>]. *)

val save_instance : t -> int -> path:string -> (Mcr_image.Image.t, string) result
(** Quiesce instance [i] and write its persistent checkpoint image to the
    host [path] ({!Mcr_core.Manager.save_image}). *)

val migrate_instance : t -> int -> path:string -> (int, string) result
(** Move instance [i] onto a fresh kernel through an on-disk image: drain
    it out of rotation (in-flight work finishes in its own virtual time),
    save its image to [path], [relaunch] the image's version, install the
    on-disk bytes over it, swap the fresh instance into slot [i] and
    rejoin the balancer. Returns the verified fingerprint; on any failure
    the original instance returns to its previous balancer state and the
    fleet is unchanged. The drained kernel is abandoned. *)

type standby
(** A pre-restored instance held out of rotation: a fresh kernel already
    carrying a checkpoint of its primary, waiting for {!failover_instance}. *)

val arm_standby : t -> int -> (standby, string) result
(** Capture instance [i] at quiescence (no host file involved) and restore
    the image into a freshly relaunched instance kept out of the
    balancer. The primary keeps serving. *)

val standby_fingerprint : standby -> int
(** The fingerprint the standby was verified against when armed. *)

val failover_instance : t -> int -> standby -> (int, string) result
(** Replace instance [i] with its armed standby: the (presumed failed)
    primary is abandoned, the standby takes slot [i] and enters rotation.
    Returns the standby's fingerprint. Fails if the standby was armed for
    a different instance. *)

(** {1 Coordinator-side hooks (used by {!Rollout})} *)

val update_instance : t -> int -> [ `Target | `Revert ] -> Mcr_core.Manager.report
(** Run one live update on instance [i]'s own kernel and swap in the
    returned manager. [`Target] applies the fleet policy's update policy,
    with [Mcr_fault.Fault.of_seed (seed + i)] armed when the policy's
    fault seed covers [i]; [`Revert] applies it with faults disarmed.
    Counts [mcr_fleet_instance_updates_total] /
    [mcr_fleet_instance_rollbacks_total]. *)

val healthy : t -> int -> bool
(** Run the health probe against instance [i]'s current version. *)

val refresh_serving : t -> unit
(** Re-read the balancer into the [mcr_fleet_serving] gauge — call after
    changing backend states. *)

val note_wave : t -> outcome:[ `Promoted | `Halted | `Rollback ] -> duration_ns:int -> unit
(** Record a finished wave: observes [mcr_fleet_wave_duration_ns] and
    counts [mcr_fleet_wave_promotions_total] / [mcr_fleet_wave_halts_total]
    ([`Rollback] waves count neither). *)

val record_rollout : t -> Mcr_obs.Fleet_flight.t -> unit
(** Store the summary for [FLEET EXPLAIN] and settle the rollout-level
    metrics (rollouts, halts, reverted instances, routed requests,
    client-visible errors). *)

(** {1 Control plane} *)

val ctl_kernel : t -> Mcr_simos.Kernel.t
(** The control-plane kernel the [FLEET] listener runs in — distinct from
    every instance kernel; drive it to deliver ctl traffic. *)

val ctl_path : t -> string
(** ["/run/mcr/fleet.<prog>.sock"]. *)

val rollout_requested : t -> bool
(** A [FLEET ROLLOUT] client is parked on the reply semaphore — the signal
    the host loop (or {!Rollout.request_over_ctl}) uses to run
    {!Rollout.execute} and then {!respond_rollout}. *)

val respond_rollout : t -> string -> unit
(** Deliver the pending [FLEET ROLLOUT] reply frame and drive the
    control-plane kernel briefly so the listener writes it. *)
