(** Virtual-time cost model.

    Every simulated operation advances the kernel's virtual clock by a fixed
    cost. Paper-shaped measurements (Table 3 overheads, Figure 3 transfer
    times, quiescence/control-migration times) are ratios and trends over
    these costs, so the absolute values only need to be mutually plausible;
    they are loosely calibrated to a ~3 GHz x86 like the paper's testbed. *)

type t = {
  syscall_ns : int;  (** Base cost of entering the kernel. *)
  byte_ns : int;  (** Per 64-byte cacheline moved by read/write. *)
  spawn_ns : int;  (** Process/thread creation. *)
  switch_ns : int;  (** Scheduler context switch. *)
  alloc_ns : int;  (** Allocator base cost (charged by the program layer). *)
  tag_word_ns : int;  (** Per in-band metadata word maintained. *)
  unblock_wrap_ns : int;  (** Unblockification wrapper, per blocking call. *)
  qhook_ns : int;  (** Quiescence-hook check, per wrapper iteration. *)
  transfer_word_ns : int;  (** State transfer, per word copied. *)
  trace_obj_ns : int;  (** Tracing, per object visited. *)
  scan_word_ns : int;  (** Conservative scan, per word examined. *)
  app_work_ns : int;  (** Application-level work unit (request handling). *)
  record_ns : int;  (** Startup-log recording, per intercepted call. *)
  replay_match_ns : int;  (** Replay matching + deep comparison, per call. *)
  worker_spawn_ns : int;
      (** Spawning one transfer worker thread (sharded state transfer). *)
  worker_join_ns : int;
      (** Joining one transfer worker thread at the shard merge barrier. *)
  remap_page_ns : int;
      (** Remapping one byte-identical page into the new image (page-table
          update + refcount) instead of copying its words. *)
}

val default : t

val zero : t
(** All-zero cost model, for tests that want a still clock. *)
