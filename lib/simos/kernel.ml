module S = Sysdefs
module Aspace = Mcr_vmem.Aspace

type payload = ..

(* ------------------------------------------------------------------ *)
(* Kernel object model *)

type endpoint = {
  inbox : string Queue.t;
  fd_inbox : desc Queue.t;
  mutable peer : endpoint option;
  mutable local_closed : bool;
  mutable ep_waiters : waiter list;
}

and listener = {
  backlog_q : endpoint Queue.t;
  backlog : int;
  l_addr : addr;
  mutable l_waiters : waiter list;
  mutable l_closed : bool;
  mutable l_parked : bool;
  parked_q : endpoint Queue.t;
      (* SYN-queue analog: while parked, new connections accumulate here —
         established from the client's point of view but invisible to
         Accept/Poll — and move FIFO into [backlog_q] on unpark. *)
}

and addr = Port of int | Path of string

and tcp_role = Unbound | Bound of addr | Listening of listener | Stream of endpoint

and kobj = Tcp of { mutable role : tcp_role } | File of { f_path : string; mutable offset : int }

and desc = { mutable refs : int; obj : kobj }

and waiter = {
  w_thread : thread;
  mutable fired : bool;
  check : unit -> S.result option;
  blocked_since : int;
  w_call : S.call;
  deliver : S.result -> unit;
}

and tstate = Running | Blocked of S.call | Finished

and thread = {
  t_tid : int;
  t_name : string;
  t_proc : proc;
  mutable t_state : tstate;
  mutable t_stack : string list;
  mutable t_result_map : (S.result -> S.result) option;
  mutable t_call_report : S.call option; (* original call for monitors under Rewrite/Post *)
  mutable t_blocked_since : int;
}

and proc = {
  p_pid : int;
  p_ppid : int;
  p_name : string;
  p_aspace : Aspace.t;
  p_fdt : (int, desc) Hashtbl.t;
  mutable p_reserved_mode : bool;
  mutable p_next_reserved : int;
  mutable p_alive : bool;
  mutable p_status : int option;
  mutable p_threads : thread list; (* reversed creation order *)
  mutable p_resolver : (string -> (thread -> unit) option) option;
  mutable p_interceptor : (thread -> S.call -> interception) option;
  mutable p_monitor : (thread -> S.call -> S.result -> unit) option;
  mutable p_payload : payload option;
  mutable p_exit_waiters : waiter list;
  p_creation_callstack : int;
}

and interception =
  | Execute
  | Short_circuit of S.result
  | Rewrite of S.call
  | Post of S.call * (S.result -> S.result)

(* Binary min-heap of pending timers, keyed (time, insertion seq) so equal
   deadlines fire in insertion order — exactly the order the previous
   sorted-list representation (stable merge, existing entries first)
   produced. The heap turns the O(n) insert that dominated 10k-client
   retry storms into O(log n) without changing any schedule. *)
module Theap = struct
  type entry = { at : int; seq : int; fn : unit -> unit }
  type h = { mutable arr : entry array; mutable n : int; mutable next_seq : int }

  let dummy = { at = 0; seq = 0; fn = ignore }
  let create () = { arr = Array.make 64 dummy; n = 0; next_seq = 0 }
  let is_empty h = h.n = 0
  let lt a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

  let push h ~at fn =
    if h.n = Array.length h.arr then begin
      let bigger = Array.make (2 * h.n) dummy in
      Array.blit h.arr 0 bigger 0 h.n;
      h.arr <- bigger
    end;
    let e = { at; seq = h.next_seq; fn } in
    h.next_seq <- h.next_seq + 1;
    let i = ref h.n in
    h.n <- h.n + 1;
    h.arr.(!i) <- e;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if lt h.arr.(!i) h.arr.(parent) then begin
        let tmp = h.arr.(parent) in
        h.arr.(parent) <- h.arr.(!i);
        h.arr.(!i) <- tmp;
        i := parent
      end
      else continue := false
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.arr.(0) in
      h.n <- h.n - 1;
      h.arr.(0) <- h.arr.(h.n);
      h.arr.(h.n) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.n && lt h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.n && lt h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.arr.(!smallest) in
          h.arr.(!smallest) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end

  let peek_at h = if h.n = 0 then None else Some h.arr.(0).at
end

type t = {
  kid : int;
  costs : Costs.t;
  mutable clock : int;
  mutable idle : int;
  runq : (unit -> unit) Queue.t;
  timers : Theap.h;
  mutable next_pid : int;
  mutable next_tid : int;
  mutable all_procs : proc list; (* reversed creation order *)
  ports : (int, desc) Hashtbl.t;
  paths : (string, desc) Hashtbl.t;
  sems : (string, sem) Hashtbl.t;
  fs : (string, string) Hashtbl.t;
  mutable block_monitor : (thread -> S.call -> blocked_ns:int -> unit) option;
  mutable spawn_hook : (proc -> unit) option;
  mutable fault_hook : (thread -> S.call -> S.result option) option;
  shm_ids : (int, int) Hashtbl.t; (* key -> globally-unique id; no namespaces *)
  mutable next_shm_id : int;
  (* Connection-parking conservation ledger: every parked connection is
     eventually resumed or aborted — [parked = resumed + aborted + still
     queued] at all times. *)
  mutable parked_total : int;
  mutable resumed_total : int;
  mutable aborted_total : int;
}

and sem = { mutable count : int; mutable sem_waiters : waiter list }

type image = Fresh_image of Aspace.t | Clone_image of proc

type _ Effect.t += Sys : S.call -> S.result Effect.t

let next_kid = ref 0

let create ?(costs = Costs.default) () =
  incr next_kid;
  {
    kid = !next_kid;
    costs;
    clock = 0;
    idle = 0;
    runq = Queue.create ();
    timers = Theap.create ();
    next_pid = 1;
    next_tid = 1;
    all_procs = [];
    ports = Hashtbl.create 16;
    paths = Hashtbl.create 16;
    sems = Hashtbl.create 16;
    fs = Hashtbl.create 16;
    block_monitor = None;
    spawn_hook = None;
    fault_hook = None;
    shm_ids = Hashtbl.create 8;
    next_shm_id = 100;
    parked_total = 0;
    resumed_total = 0;
    aborted_total = 0;
  }

let id t = t.kid
let clock_ns t = t.clock
let costs t = t.costs
let idle_ns t = t.idle
let charge t ns = t.clock <- t.clock + ns

(* ------------------------------------------------------------------ *)
(* Filesystem *)

let fs_write t ~path data = Hashtbl.replace t.fs path data
let fs_read t ~path = Hashtbl.find_opt t.fs path
let fs_exists t ~path = Hashtbl.mem t.fs path

(* ------------------------------------------------------------------ *)
(* Scheduling primitives *)

let schedule t job = Queue.push job t.runq

let add_timer t ~at f = Theap.push t.timers ~at f

(* Run one scheduling step. [deadline] stops the clock from jumping past a
   horizon. Returns false when there is nothing left to do (before the
   deadline). *)
let step t ?deadline () =
  if not (Queue.is_empty t.runq) then begin
    charge t t.costs.Costs.switch_ns;
    (Queue.pop t.runq) ();
    true
  end
  else
    match Theap.peek_at t.timers with
    | None -> false
    | Some time -> begin
        match deadline with
        | Some d when time > d ->
            t.clock <- max t.clock d;
            false
        | _ ->
            if time > t.clock then t.idle <- t.idle + (time - t.clock);
            t.clock <- max t.clock time;
            (match Theap.pop t.timers with
            | Some e -> e.Theap.fn ()
            | None -> assert false);
            true
      end

let run t = while step t () do () done

let run_until t ?max_ns pred =
  let deadline = Option.map (fun ns -> ns) max_ns in
  let rec loop () =
    if pred () then true
    else
      let continue_ =
        match deadline with
        | Some d when t.clock >= d -> false
        | _ -> step t ?deadline ()
      in
      if continue_ then loop () else pred ()
  in
  loop ()

let run_for t ns =
  let deadline = t.clock + ns in
  while t.clock < deadline && step t ~deadline () do () done

(* Charge [ns] of coordinator-side work (a state-transfer copy) while the
   rest of the machine stays live: the copy occupies one core, so runnable
   threads and due timers — client processes are separate machines whose
   retry timers do not stop for a server-side copy — keep dispatching as
   the window elapses. A plain [charge] freezes them: every timer pending
   at the start of the window leapfrogs to its end, which erases exactly
   the client-side retry dynamics an update window causes. *)
let charge_concurrent t ns =
  let deadline = t.clock + ns in
  while t.clock < deadline && step t ~deadline () do () done;
  if t.clock < deadline then t.clock <- deadline

let quiescent_system t = Queue.is_empty t.runq && Theap.is_empty t.timers

(* ------------------------------------------------------------------ *)
(* Waiters *)

let try_fire w =
  if (not w.fired) && w.w_thread.t_proc.p_alive then
    match w.check () with
    | Some r ->
        w.fired <- true;
        w.deliver r
    | None -> ()

let fire_timeout w r =
  if (not w.fired) && w.w_thread.t_proc.p_alive then begin
    w.fired <- true;
    w.deliver r
  end

let notify_waiters get set obj =
  let ws = get obj in
  set obj (List.filter (fun w -> not w.fired) ws);
  List.iter try_fire (get obj)

let notify_endpoint ep =
  notify_waiters (fun e -> e.ep_waiters) (fun e ws -> e.ep_waiters <- ws) ep

let notify_listener l =
  notify_waiters (fun l -> l.l_waiters) (fun l ws -> l.l_waiters <- ws) l

let notify_sem s =
  notify_waiters (fun s -> s.sem_waiters) (fun s ws -> s.sem_waiters <- ws) s

(* ------------------------------------------------------------------ *)
(* Processes and fds *)

let pid p = p.p_pid
let parent_pid p = p.p_ppid
let proc_name p = p.p_name
let aspace p = p.p_aspace
let alive p = p.p_alive
let exit_status p = p.p_status
let procs t = List.rev t.all_procs
let find_proc t pid = List.find_opt (fun p -> p.p_pid = pid) t.all_procs
let proc_threads p = List.rev p.p_threads
let payload p = p.p_payload
let set_payload p v = p.p_payload <- Some v
let creation_callstack p = p.p_creation_callstack
let set_entry_resolver p r = p.p_resolver <- Some r
let set_interceptor p i = p.p_interceptor <- i
let set_monitor p m = p.p_monitor <- m
let set_block_monitor t m = t.block_monitor <- m
let set_reserved_fd_mode p b = p.p_reserved_mode <- b

let fds p = Hashtbl.fold (fun fd _ acc -> fd :: acc) p.p_fdt [] |> List.sort compare

let reserved_fd_base = 1000

let alloc_fd p desc =
  let fd =
    if p.p_reserved_mode then begin
      let fd = p.p_next_reserved in
      p.p_next_reserved <- fd + 1;
      fd
    end
    else begin
      let rec find n = if Hashtbl.mem p.p_fdt n then find (n + 1) else n in
      find 3
    end
  in
  Hashtbl.replace p.p_fdt fd desc;
  fd

let install_fd_at p fd desc =
  if Hashtbl.mem p.p_fdt fd then Error S.EEXIST
  else begin
    Hashtbl.replace p.p_fdt fd desc;
    if fd >= p.p_next_reserved then p.p_next_reserved <- fd + 1;
    Ok fd
  end

let find_fd p fd = Hashtbl.find_opt p.p_fdt fd

let close_endpoint ep =
  ep.local_closed <- true;
  match ep.peer with Some peer -> notify_endpoint peer | None -> ()

let release_desc t desc =
  desc.refs <- desc.refs - 1;
  if desc.refs = 0 then
    match desc.obj with
    | Tcp r -> begin
        match r.role with
        | Stream ep -> close_endpoint ep
        | Listening l ->
            l.l_closed <- true;
            (match l.l_addr with
            | Port port -> Hashtbl.remove t.ports port
            | Path _ ->
                (* AF_UNIX fidelity: closing the listener does not remove
                   the socket's filesystem name — a later Unix_listen on
                   the same path gets EADDRINUSE until someone unlinks it
                   (see unlink_path) *)
                ());
            Queue.iter close_endpoint l.backlog_q;
            Queue.clear l.backlog_q;
            (* Parked connections that never reached an accept queue are
               aborted, not lost silently — the conservation ledger records
               them. *)
            t.aborted_total <- t.aborted_total + Queue.length l.parked_q;
            Queue.iter close_endpoint l.parked_q;
            Queue.clear l.parked_q
        | Bound (Port port) -> Hashtbl.remove t.ports port
        | Bound (Path _) -> ()
        | Unbound -> ()
      end
    | File _ -> ()

let close_fd t p fd =
  match find_fd p fd with
  | None -> Error S.EBADF
  | Some desc ->
      Hashtbl.remove p.p_fdt fd;
      release_desc t desc;
      Ok ()

let process_exit t p status =
  if p.p_alive then begin
    p.p_alive <- false;
    p.p_status <- Some status;
    List.iter (fun th -> th.t_state <- Finished) p.p_threads;
    List.iter (fun fd -> ignore (close_fd t p fd)) (fds p);
    p.p_exit_waiters <- List.filter (fun w -> not w.fired) p.p_exit_waiters;
    List.iter try_fire p.p_exit_waiters
  end

let kill_process t p ~status = process_exit t p status

(* ------------------------------------------------------------------ *)
(* Threads *)

let tid th = th.t_tid
let thread_name th = th.t_name
let thread_proc th = th.t_proc
let thread_alive th = th.t_state <> Finished
let push_frame th name = th.t_stack <- name :: th.t_stack
let pop_frame th = match th.t_stack with [] -> () | _ :: rest -> th.t_stack <- rest
let callstack th = th.t_stack
let callstack_id th = Mcr_util.Fnv.strings (List.rev th.t_stack)

let blocked_in th = match th.t_state with Blocked c -> Some c | Running | Finished -> None

let blocked_since th =
  match th.t_state with Blocked _ -> Some th.t_blocked_since | Running | Finished -> None

let syscall call = Effect.perform (Sys call)

(* Mutual recursion: starting threads needs the syscall handler, which can
   fork, which starts threads. *)

let rec start_thread t (th : thread) body =
  let open Effect.Deep in
  schedule t (fun () ->
      if th.t_proc.p_alive then
        match_with
          (fun () ->
            body th;
            th.t_state <- Finished;
            (* C semantics: the initial thread returning ends the process *)
            if th.t_tid = (match List.rev th.t_proc.p_threads with m :: _ -> m.t_tid | [] -> th.t_tid)
            then process_exit t th.t_proc 0)
          ()
          {
            retc = Fun.id;
            exnc =
              (fun e ->
                th.t_state <- Finished;
                match e with
                | S.Program_exit status -> process_exit t th.t_proc status
                | e ->
                    Logs.err (fun m ->
                        m "thread %s/%d crashed: %s" th.t_name th.t_tid (Printexc.to_string e));
                    process_exit t th.t_proc 139);
            effc =
              (fun (type a) (eff : a Effect.t) ->
                match eff with
                | Sys call ->
                    Some
                      (fun (k : (a, unit) continuation) ->
                        (* the Sys match refines a = S.result *)
                        let k : (S.result, unit) continuation = k in
                        handle_syscall t th call k)
                | _ -> None);
          })

and make_thread t p ~name =
  let th = { t_tid = t.next_tid; t_name = name; t_proc = p; t_state = Running; t_stack = []; t_result_map = None; t_call_report = None; t_blocked_since = 0 } in
  t.next_tid <- t.next_tid + 1;
  p.p_threads <- th :: p.p_threads;
  th

and spawn_thread t p ~name body =
  charge t t.costs.Costs.spawn_ns;
  let th = make_thread t p ~name in
  start_thread t th body;
  th

and spawn_process t ?parent ?force_pid ~image ~name ~entry ~main () =
  charge t t.costs.Costs.spawn_ns;
  let pid =
    match force_pid with
    | Some pid ->
        if List.exists (fun p -> p.p_pid = pid) t.all_procs then
          invalid_arg (Printf.sprintf "spawn_process: pid %d already in use" pid)
        else begin
          if pid >= t.next_pid then t.next_pid <- pid + 1;
          pid
        end
    | None ->
        let pid = t.next_pid in
        t.next_pid <- pid + 1;
        pid
  in
  let asp, fdt, creation_cs =
    match image with
    | Fresh_image asp -> (asp, Hashtbl.create 16, 0)
    | Clone_image src ->
        let fdt = Hashtbl.copy src.p_fdt in
        Hashtbl.iter (fun _ d -> d.refs <- d.refs + 1) fdt;
        (Aspace.clone src.p_aspace, fdt, 0)
  in
  let p =
    {
      p_pid = pid;
      p_ppid = (match parent with Some pp -> pp.p_pid | None -> 0);
      p_name = name;
      p_aspace = asp;
      p_fdt = fdt;
      p_reserved_mode = (match parent with Some pp -> pp.p_reserved_mode | None -> false);
      p_next_reserved = (match parent with Some pp -> pp.p_next_reserved | None -> reserved_fd_base);
      p_alive = true;
      p_status = None;
      p_threads = [];
      p_resolver = (match parent with Some pp -> pp.p_resolver | None -> None);
      p_interceptor = None;
      p_monitor = None;
      p_payload = None;
      p_exit_waiters = [];
      p_creation_callstack = creation_cs;
    }
  in
  t.all_procs <- p :: t.all_procs;
  (match t.spawn_hook with Some h -> h p | None -> ());
  let th = make_thread t p ~name:entry in
  start_thread t th main;
  p

and fork_process t (parent_thread : thread) entry =
  let parent = parent_thread.t_proc in
  match parent.p_resolver with
  | None -> Error S.EINVAL
  | Some resolver -> begin
      match resolver entry with
      | None -> Error S.EINVAL
      | Some body ->
          charge t t.costs.Costs.spawn_ns;
          let pid = t.next_pid in
          t.next_pid <- pid + 1;
          let fdt = Hashtbl.copy parent.p_fdt in
          Hashtbl.iter (fun _ d -> d.refs <- d.refs + 1) fdt;
          let p =
            {
              p_pid = pid;
              p_ppid = parent.p_pid;
              p_name = parent.p_name ^ ":" ^ entry;
              p_aspace = Aspace.clone parent.p_aspace;
              p_fdt = fdt;
              p_reserved_mode = parent.p_reserved_mode;
              p_next_reserved = parent.p_next_reserved;
              p_alive = true;
              p_status = None;
              p_threads = [];
              p_resolver = parent.p_resolver;
              p_interceptor = None;
              p_monitor = None;
              p_payload = None;
              p_exit_waiters = [];
              p_creation_callstack = callstack_id parent_thread;
            }
          in
          t.all_procs <- p :: t.all_procs;
          (match t.spawn_hook with Some h -> h p | None -> ());
          let th = make_thread t p ~name:entry in
          start_thread t th body;
          Ok p
    end

(* ---------------------------------------------------------------- *)
(* Blocking helpers *)

and park t th call (k : (S.result, unit) Effect.Deep.continuation) ~check ~registers ~timeout =
  th.t_state <- Blocked call;
  th.t_blocked_since <- t.clock;
  let w =
    {
      w_thread = th;
      fired = false;
      check;
      blocked_since = t.clock;
      w_call = call;
      deliver = (fun _ -> ());
    }
  in
  (* tie the knot: deliver needs the waiter for blocked-time accounting *)
  let w =
    { w with
      deliver =
        (fun r ->
          th.t_state <- Running;
          let r =
            match th.t_result_map with
            | Some f ->
                th.t_result_map <- None;
                f r
            | None -> r
          in
          let call =
            match th.t_call_report with
            | Some c ->
                th.t_call_report <- None;
                c
            | None -> call
          in
          (match t.block_monitor with
          | Some m -> m th call ~blocked_ns:(t.clock - w.blocked_since)
          | None -> ());
          (match th.t_proc.p_monitor with Some m -> m th call r | None -> ());
          schedule t (fun () -> Effect.Deep.continue k r));
    }
  in
  List.iter (fun reg -> reg w) registers;
  (match timeout with
  | Some (ns, timeout_result) -> add_timer t ~at:(t.clock + ns) (fun () -> fire_timeout w timeout_result)
  | None -> ());
  (* the condition may already hold *)
  try_fire w

(* ---------------------------------------------------------------- *)
(* Syscall execution *)

and handle_syscall t th call (k : (S.result, unit) Effect.Deep.continuation) =
  charge t t.costs.Costs.syscall_ns;
  let proc = th.t_proc in
  if not proc.p_alive then th.t_state <- Finished
  else begin
    let interception =
      match proc.p_interceptor with Some i -> i th call | None -> Execute
    in
    match interception with
    | Short_circuit r -> schedule t (fun () -> Effect.Deep.continue k r)
    | Execute -> execute_faultable t th call k
    | Rewrite call' ->
        th.t_call_report <- Some call;
        execute_faultable t th call' k
    | Post (call', f) ->
        th.t_call_report <- Some call;
        th.t_result_map <- Some f;
        execute_faultable t th call' k
  end

(* Consult the kernel-wide fault hook for calls that are about to execute
   for real (short-circuited replays never reach the kernel proper, exactly
   as in the real system). A hook result is delivered like any other
   syscall completion — through the result map and the process monitor —
   so recording and replay see injected failures as ordinary outcomes.
   [Exit] is never faultable: its continuation is abandoned by design. *)
and execute_faultable t th call (k : (S.result, unit) Effect.Deep.continuation) =
  match t.fault_hook with
  | Some h when (match call with S.Exit _ -> false | _ -> true) -> begin
      match h th call with
      | Some r -> finish t th call k r
      | None -> execute_call t th call k
    end
  | Some _ | None -> execute_call t th call k

and finish t th call (k : (S.result, unit) Effect.Deep.continuation) r =
  let r = match th.t_result_map with Some f -> th.t_result_map <- None; f r | None -> r in
  let call =
    match th.t_call_report with
    | Some c ->
        th.t_call_report <- None;
        c
    | None -> call
  in
  (match th.t_proc.p_monitor with Some m -> m th call r | None -> ());
  schedule t (fun () -> Effect.Deep.continue k r)

and stream_of_fd p fd =
  match find_fd p fd with
  | Some { obj = Tcp { role = Stream ep }; _ } -> Some ep
  | _ -> None

and readable _t p fd =
  match find_fd p fd with
  | None -> false
  | Some { obj = File _; _ } -> true
  | Some { obj = Tcp r; _ } -> begin
      match r.role with
      | Listening l -> not (Queue.is_empty l.backlog_q)
      | Stream ep ->
          (not (Queue.is_empty ep.inbox))
          || (not (Queue.is_empty ep.fd_inbox))
          || (match ep.peer with Some peer -> peer.local_closed | None -> true)
      | Unbound | Bound _ -> false
    end
  [@warning "-27"]

and waiter_registrars p fd =
  (* the wait lists an fd's readability depends on *)
  match find_fd p fd with
  | Some { obj = Tcp r; _ } -> begin
      match r.role with
      | Listening l -> [ (fun w -> l.l_waiters <- w :: l.l_waiters) ]
      | Stream ep ->
          let own w = ep.ep_waiters <- w :: ep.ep_waiters in
          (* peer close must also wake us; peers notify our endpoint *)
          [ own ]
      | Unbound | Bound _ -> []
    end
  | _ -> []

and do_read t p fd max =
  match find_fd p fd with
  | None -> Some (S.Err S.EBADF)
  | Some { obj = File f; _ } -> begin
      match fs_read t ~path:f.f_path with
      | None -> Some (S.Err S.ENOENT)
      | Some contents ->
          let len = min max (String.length contents - f.offset) in
          let len = max_int_0 len in
          let data = String.sub contents f.offset len in
          f.offset <- f.offset + len;
          charge t (len * t.costs.Costs.byte_ns / 64);
          Some (S.Ok_data data)
    end
  | Some { obj = Tcp { role = Stream ep }; _ } ->
      if not (Queue.is_empty ep.inbox) then begin
        let chunk = Queue.pop ep.inbox in
        let data =
          if String.length chunk <= max then chunk
          else begin
            (* keep the remainder at the front of the inbox *)
            let remainder = String.sub chunk max (String.length chunk - max) in
            let rest = Queue.create () in
            Queue.transfer ep.inbox rest;
            Queue.push remainder ep.inbox;
            Queue.transfer rest ep.inbox;
            String.sub chunk 0 max
          end
        in
        charge t (String.length data * t.costs.Costs.byte_ns / 64);
        Some (S.Ok_data data)
      end
      else if (match ep.peer with Some peer -> peer.local_closed | None -> true) then
        Some (S.Ok_data "")
      else None
  | Some _ -> Some (S.Err S.EINVAL)

and max_int_0 n = if n < 0 then 0 else n

and execute_call t th call (k : (S.result, unit) Effect.Deep.continuation) =
  let proc = th.t_proc in
  let ret r = finish t th call k r in
  match call with
  | S.Socket ->
      let desc = { refs = 1; obj = Tcp { role = Unbound } } in
      ret (S.Ok_fd (alloc_fd proc desc))
  | S.Bind { fd; port } -> begin
      match find_fd proc fd with
      | Some ({ obj = Tcp r; _ } as _d) ->
          if Hashtbl.mem t.ports port then ret (S.Err S.EADDRINUSE)
          else begin
            match r.role with
            | Unbound ->
                r.role <- Bound (Port port);
                Hashtbl.replace t.ports port (Hashtbl.find proc.p_fdt fd);
                ret S.Ok_unit
            | Bound _ | Listening _ | Stream _ -> ret (S.Err S.EINVAL)
          end
      | Some _ -> ret (S.Err S.EINVAL)
      | None -> ret (S.Err S.EBADF)
    end
  | S.Listen { fd; backlog } -> begin
      match find_fd proc fd with
      | Some { obj = Tcp r; _ } -> begin
          match r.role with
          | Bound addr ->
              r.role <-
                Listening
                  {
                    backlog_q = Queue.create ();
                    backlog;
                    l_addr = addr;
                    l_waiters = [];
                    l_closed = false;
                    l_parked = false;
                    parked_q = Queue.create ();
                  };
              ret S.Ok_unit
          | Unbound | Listening _ | Stream _ -> ret (S.Err S.EINVAL)
        end
      | Some _ -> ret (S.Err S.EINVAL)
      | None -> ret (S.Err S.EBADF)
    end
  | S.Accept { fd; nonblock } -> begin
      match find_fd proc fd with
      | Some { obj = Tcp { role = Listening l }; _ } ->
          let accept_one () =
            if Queue.is_empty l.backlog_q then None
            else begin
              let server_ep = Queue.pop l.backlog_q in
              let desc = { refs = 1; obj = Tcp { role = Stream server_ep } } in
              Some (S.Ok_fd (alloc_fd proc desc))
            end
          in
          begin
            match accept_one () with
            | Some r -> ret r
            | None ->
                if nonblock then ret (S.Err S.EAGAIN)
                else
                  park t th call k ~check:accept_one
                    ~registers:[ (fun w -> l.l_waiters <- w :: l.l_waiters) ]
                    ~timeout:None
          end
      | Some _ -> ret (S.Err S.EINVAL)
      | None -> ret (S.Err S.EBADF)
    end
  | S.Accept_timed { fd; timeout_ns } -> begin
      match find_fd proc fd with
      | Some { obj = Tcp { role = Listening l }; _ } ->
          let accept_one () =
            if Queue.is_empty l.backlog_q then None
            else begin
              let server_ep = Queue.pop l.backlog_q in
              let desc = { refs = 1; obj = Tcp { role = Stream server_ep } } in
              Some (S.Ok_fd (alloc_fd proc desc))
            end
          in
          begin
            match accept_one () with
            | Some r -> ret r
            | None ->
                park t th call k ~check:accept_one
                  ~registers:[ (fun w -> l.l_waiters <- w :: l.l_waiters) ]
                  ~timeout:(Some (timeout_ns, S.Err S.ETIMEDOUT))
          end
      | Some _ -> ret (S.Err S.EINVAL)
      | None -> ret (S.Err S.EBADF)
    end
  | S.Connect { port } -> begin
      match Hashtbl.find_opt t.ports port with
      | Some { obj = Tcp { role = Listening l }; _ } when not l.l_closed ->
          if l.l_parked then begin
            (* Parked listener: the handshake still completes (no refusal),
               but the connection waits in the SYN-queue analog until
               unpark — invisible to Accept and Poll meanwhile. *)
            let client_ep =
              { inbox = Queue.create (); fd_inbox = Queue.create (); peer = None;
                local_closed = false; ep_waiters = [] }
            in
            let server_ep =
              { inbox = Queue.create (); fd_inbox = Queue.create (); peer = Some client_ep;
                local_closed = false; ep_waiters = [] }
            in
            client_ep.peer <- Some server_ep;
            Queue.push server_ep l.parked_q;
            t.parked_total <- t.parked_total + 1;
            let desc = { refs = 1; obj = Tcp { role = Stream client_ep } } in
            ret (S.Ok_fd (alloc_fd proc desc))
          end
          else if Queue.length l.backlog_q >= l.backlog then ret (S.Err S.ECONNREFUSED)
          else begin
            let client_ep =
              { inbox = Queue.create (); fd_inbox = Queue.create (); peer = None;
                local_closed = false; ep_waiters = [] }
            in
            let server_ep =
              { inbox = Queue.create (); fd_inbox = Queue.create (); peer = Some client_ep;
                local_closed = false; ep_waiters = [] }
            in
            client_ep.peer <- Some server_ep;
            Queue.push server_ep l.backlog_q;
            notify_listener l;
            let desc = { refs = 1; obj = Tcp { role = Stream client_ep } } in
            ret (S.Ok_fd (alloc_fd proc desc))
          end
      | Some _ | None -> ret (S.Err S.ECONNREFUSED)
    end
  | S.Read { fd; max; nonblock } -> begin
      match do_read t proc fd max with
      | Some r -> ret r
      | None ->
          if nonblock then ret (S.Err S.EAGAIN)
          else begin
            match stream_of_fd proc fd with
            | Some ep ->
                park t th call k
                  ~check:(fun () -> do_read t proc fd max)
                  ~registers:[ (fun w -> ep.ep_waiters <- w :: ep.ep_waiters) ]
                  ~timeout:None
            | None -> ret (S.Err S.EBADF)
          end
    end
  | S.Write { fd; data } -> begin
      match find_fd proc fd with
      | None -> ret (S.Err S.EBADF)
      | Some { obj = File f; _ } ->
          let existing = Option.value (fs_read t ~path:f.f_path) ~default:"" in
          fs_write t ~path:f.f_path (existing ^ data);
          charge t (String.length data * t.costs.Costs.byte_ns / 64);
          ret (S.Ok_len (String.length data))
      | Some { obj = Tcp { role = Stream ep }; _ } -> begin
          match ep.peer with
          | Some peer when not peer.local_closed ->
              if ep.local_closed then ret (S.Err S.EPIPE)
              else begin
                Queue.push data peer.inbox;
                charge t (String.length data * t.costs.Costs.byte_ns / 64);
                notify_endpoint peer;
                ret (S.Ok_len (String.length data))
              end
          | Some _ | None -> ret (S.Err S.EPIPE)
        end
      | Some _ -> ret (S.Err S.EINVAL)
    end
  | S.Close { fd } -> begin
      match close_fd t proc fd with
      | Ok () -> ret S.Ok_unit
      | Error e -> ret (S.Err e)
    end
  | S.Open { path; create } ->
      if fs_exists t ~path then
        ret (S.Ok_fd (alloc_fd proc { refs = 1; obj = File { f_path = path; offset = 0 } }))
      else if create then begin
        fs_write t ~path "";
        ret (S.Ok_fd (alloc_fd proc { refs = 1; obj = File { f_path = path; offset = 0 } }))
      end
      else ret (S.Err S.ENOENT)
  | S.Open_at { path; create; force_fd } ->
      if (not (fs_exists t ~path)) && not create then ret (S.Err S.ENOENT)
      else begin
        if (not (fs_exists t ~path)) && create then fs_write t ~path "";
        match install_fd_at proc force_fd { refs = 1; obj = File { f_path = path; offset = 0 } } with
        | Ok fd -> ret (S.Ok_fd fd)
        | Error e -> ret (S.Err e)
      end
  | S.Dup { fd } -> begin
      match find_fd proc fd with
      | None -> ret (S.Err S.EBADF)
      | Some desc ->
          desc.refs <- desc.refs + 1;
          ret (S.Ok_fd (alloc_fd proc desc))
    end
  | S.Poll { fds; timeout_ns; nonblock } ->
      let ready () =
        let r = List.filter (readable t proc) fds in
        if r <> [] then Some (S.Ok_ready r) else None
      in
      begin
        match ready () with
        | Some r -> ret r
        | None ->
            if nonblock then ret (S.Ok_ready [])
            else begin
              let registers = List.concat_map (waiter_registrars proc) fds in
              let timeout =
                Option.map (fun ns -> (ns, S.Ok_ready [])) timeout_ns
              in
              park t th call k ~check:ready ~registers ~timeout
            end
      end
  | S.Getpid -> ret (S.Ok_pid proc.p_pid)
  | S.Getppid -> ret (S.Ok_pid proc.p_ppid)
  | S.Fork { entry } -> begin
      match fork_process t th entry with
      | Ok child -> ret (S.Ok_pid child.p_pid)
      | Error e -> ret (S.Err e)
    end
  | S.Thread_create { entry } -> begin
      match proc.p_resolver with
      | None -> ret (S.Err S.EINVAL)
      | Some resolver -> begin
          match resolver entry with
          | None -> ret (S.Err S.EINVAL)
          | Some body ->
              let th' = spawn_thread t proc ~name:entry body in
              ret (S.Ok_pid th'.t_tid)
        end
    end
  | S.Waitpid { pid } -> begin
      match find_proc t pid with
      | None -> ret (S.Err S.ECHILD)
      | Some child ->
          let status () =
            match child.p_status with Some s -> Some (S.Ok_status s) | None -> None
          in
          begin
            match status () with
            | Some r -> ret r
            | None ->
                park t th call k ~check:status
                  ~registers:[ (fun w -> child.p_exit_waiters <- w :: child.p_exit_waiters) ]
                  ~timeout:None
          end
    end
  | S.Exit { status } ->
      process_exit t proc status;
      ignore (Sys.opaque_identity k)
  | S.Nanosleep { ns } ->
      park t th call k ~check:(fun () -> None) ~registers:[] ~timeout:(Some (ns, S.Ok_unit))
  | S.Sem_wait { name; timeout_ns } ->
      let sem =
        match Hashtbl.find_opt t.sems name with
        | Some s -> s
        | None ->
            let s = { count = 0; sem_waiters = [] } in
            Hashtbl.replace t.sems name s;
            s
      in
      let take () =
        if sem.count > 0 then begin
          sem.count <- sem.count - 1;
          Some S.Ok_unit
        end
        else None
      in
      begin
        match take () with
        | Some r -> ret r
        | None ->
            let timeout = Option.map (fun ns -> (ns, S.Err S.ETIMEDOUT)) timeout_ns in
            park t th call k ~check:take
              ~registers:[ (fun w -> sem.sem_waiters <- w :: sem.sem_waiters) ]
              ~timeout
      end
  | S.Sem_post { name } ->
      let sem =
        match Hashtbl.find_opt t.sems name with
        | Some s -> s
        | None ->
            let s = { count = 0; sem_waiters = [] } in
            Hashtbl.replace t.sems name s;
            s
      in
      sem.count <- sem.count + 1;
      notify_sem sem;
      ret S.Ok_unit
  | S.Unix_listen { path } ->
      if Hashtbl.mem t.paths path then ret (S.Err S.EADDRINUSE)
      else begin
        let l =
          { backlog_q = Queue.create (); backlog = 64; l_addr = Path path; l_waiters = [];
            l_closed = false; l_parked = false; parked_q = Queue.create () }
        in
        let desc = { refs = 1; obj = Tcp { role = Listening l } } in
        Hashtbl.replace t.paths path desc;
        ret (S.Ok_fd (alloc_fd proc desc))
      end
  | S.Unix_connect { path } -> begin
      match Hashtbl.find_opt t.paths path with
      | Some { obj = Tcp { role = Listening l }; _ } when not l.l_closed ->
          let client_ep =
            { inbox = Queue.create (); fd_inbox = Queue.create (); peer = None;
              local_closed = false; ep_waiters = [] }
          in
          let server_ep =
            { inbox = Queue.create (); fd_inbox = Queue.create (); peer = Some client_ep;
              local_closed = false; ep_waiters = [] }
          in
          client_ep.peer <- Some server_ep;
          if l.l_parked then begin
            Queue.push server_ep l.parked_q;
            t.parked_total <- t.parked_total + 1
          end
          else begin
            Queue.push server_ep l.backlog_q;
            notify_listener l
          end;
          ret (S.Ok_fd (alloc_fd proc { refs = 1; obj = Tcp { role = Stream client_ep } }))
      | Some _ | None -> ret (S.Err S.ECONNREFUSED)
    end
  | S.Send_fd { conn; payload } -> begin
      match (stream_of_fd proc conn, find_fd proc payload) with
      | Some ep, Some payload_desc -> begin
          match ep.peer with
          | Some peer when not peer.local_closed ->
              payload_desc.refs <- payload_desc.refs + 1;
              Queue.push payload_desc peer.fd_inbox;
              notify_endpoint peer;
              ret S.Ok_unit
          | Some _ | None -> ret (S.Err S.EPIPE)
        end
      | None, _ -> ret (S.Err S.EBADF)
      | _, None -> ret (S.Err S.EBADF)
    end
  | S.Recv_fd { conn; nonblock } -> begin
      match stream_of_fd proc conn with
      | None -> ret (S.Err S.EBADF)
      | Some ep ->
          let recv () =
            if Queue.is_empty ep.fd_inbox then None
            else begin
              let desc = Queue.pop ep.fd_inbox in
              Some (S.Ok_fd (alloc_fd proc desc))
            end
          in
          begin
            match recv () with
            | Some r -> ret r
            | None ->
                if nonblock then ret (S.Err S.EAGAIN)
                else
                  park t th call k ~check:recv
                    ~registers:[ (fun w -> ep.ep_waiters <- w :: ep.ep_waiters) ]
                    ~timeout:None
          end
    end
  | S.Shmget { key } -> begin
      match Hashtbl.find_opt t.shm_ids key with
      | Some id -> ret (S.Ok_len id)
      | None ->
          let id = t.next_shm_id in
          t.next_shm_id <- id + 1;
          Hashtbl.replace t.shm_ids key id;
          ret (S.Ok_len id)
    end
  | S.Recv_fd_at { conn; force_fd; nonblock } -> begin
      match stream_of_fd proc conn with
      | None -> ret (S.Err S.EBADF)
      | Some ep ->
          let recv () =
            if Queue.is_empty ep.fd_inbox then None
            else begin
              let desc = Queue.pop ep.fd_inbox in
              match install_fd_at proc force_fd desc with
              | Ok fd -> Some (S.Ok_fd fd)
              | Error e ->
                  release_desc t desc;
                  Some (S.Err e)
            end
          in
          begin
            match recv () with
            | Some r -> ret r
            | None ->
                if nonblock then ret (S.Err S.EAGAIN)
                else
                  park t th call k ~check:recv
                    ~registers:[ (fun w -> ep.ep_waiters <- w :: ep.ep_waiters) ]
                    ~timeout:None
          end
    end

let set_spawn_hook t h = t.spawn_hook <- h
let set_fault_hook t h = t.fault_hook <- h

let unlink_path t ~path = Hashtbl.remove t.paths path

let path_active t ~path =
  match Hashtbl.find_opt t.paths path with
  | Some { obj = Tcp { role = Listening l }; _ } -> not l.l_closed
  | Some _ | None -> false

let post_semaphore t name =
  let sem =
    match Hashtbl.find_opt t.sems name with
    | Some s -> s
    | None ->
        let s = { count = 0; sem_waiters = [] } in
        Hashtbl.replace t.sems name s;
        s
  in
  sem.count <- sem.count + 1;
  notify_sem sem

let transfer_fd t ~src ~fd ~dst ~at =
  match find_fd src fd with
  | None -> Error S.EBADF
  | Some desc ->
      if Hashtbl.mem dst.p_fdt at then Error S.EEXIST
      else begin
        desc.refs <- desc.refs + 1;
        ignore (install_fd_at dst at desc);
        ignore t;
        Ok at
      end

let close_fd_external t p fd = ignore (close_fd t p fd)

(* ------------------------------------------------------------------ *)
(* Connection parking (controller-side) *)

let proc_listeners p =
  Hashtbl.fold
    (fun _ desc acc ->
      match desc.obj with
      | Tcp { role = Listening l } when not l.l_closed ->
          if List.memq l acc then acc else l :: acc
      | _ -> acc)
    p.p_fdt []

let park_listeners _t p =
  List.fold_left
    (fun n l ->
      if l.l_parked then n
      else begin
        l.l_parked <- true;
        n + 1
      end)
    0 (proc_listeners p)

let unpark_listeners t p =
  List.fold_left
    (fun n l ->
      if not l.l_parked then n
      else begin
        l.l_parked <- false;
        let moved = ref 0 in
        (* FIFO drain: arrival order is preserved across the parked window.
           The backlog bound applies to new connections only — the kernel
           owes every parked connection an accept slot. *)
        while not (Queue.is_empty l.parked_q) do
          Queue.push (Queue.pop l.parked_q) l.backlog_q;
          incr moved
        done;
        t.resumed_total <- t.resumed_total + !moved;
        if !moved > 0 then notify_listener l;
        n + !moved
      end)
    0 (proc_listeners p)

type parking_stats = { parked : int; resumed : int; aborted : int }

let parking_stats t =
  { parked = t.parked_total; resumed = t.resumed_total; aborted = t.aborted_total }
