type t = {
  syscall_ns : int;
  byte_ns : int;
  spawn_ns : int;
  switch_ns : int;
  alloc_ns : int;
  tag_word_ns : int;
  unblock_wrap_ns : int;
  qhook_ns : int;
  transfer_word_ns : int;
  trace_obj_ns : int;
  scan_word_ns : int;
  app_work_ns : int;
  record_ns : int;
  replay_match_ns : int;
  worker_spawn_ns : int;
  worker_join_ns : int;
  remap_page_ns : int;
}

let default =
  {
    syscall_ns = 1_200;
    byte_ns = 2;
    spawn_ns = 60_000;
    switch_ns = 900;
    alloc_ns = 90;
    tag_word_ns = 45;
    unblock_wrap_ns = 250;
    qhook_ns = 25;
    transfer_word_ns = 25;
    trace_obj_ns = 400;
    scan_word_ns = 6;
    app_work_ns = 3_000;
    record_ns = 150;
    replay_match_ns = 600;
    worker_spawn_ns = 80_000;
    worker_join_ns = 40_000;
    remap_page_ns = 1_500;
  }

let zero =
  {
    syscall_ns = 0;
    byte_ns = 0;
    spawn_ns = 0;
    switch_ns = 0;
    alloc_ns = 0;
    tag_word_ns = 0;
    unblock_wrap_ns = 0;
    qhook_ns = 0;
    transfer_word_ns = 0;
    trace_obj_ns = 0;
    scan_word_ns = 0;
    app_work_ns = 0;
    record_ns = 0;
    replay_match_ns = 0;
    worker_spawn_ns = 0;
    worker_join_ns = 0;
    remap_page_ns = 0;
  }
