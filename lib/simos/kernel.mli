(** The simulated kernel: processes, threads, scheduling, file descriptors,
    sockets, semaphores, timers, and the system-call layer.

    Threads are cooperative coroutines implemented with OCaml effects; a
    thread parks whenever a blocking call cannot complete and is resumed by
    the event (data arrival, connection, semaphore post, timer) that
    satisfies it. A single virtual clock orders everything; it advances by
    the {!Costs.t} of each operation and jumps to the next timer when every
    thread is blocked.

    The per-process {e interceptor} and {e monitor} hooks are the
    "library-level interception of all the startup-time syscalls"
    (Section 5) that mutable reinitialization is built on. *)

type t
type proc
type thread

type payload = ..
(** Extensible per-process slot; the program layer stores its image (heaps,
    symbol tables, globals) here. *)

val create : ?costs:Costs.t -> unit -> t

val id : t -> int
(** Unique identity of this kernel instance (monotonic across creates). *)

(** {1 Clock} *)

val clock_ns : t -> int
val costs : t -> Costs.t

val idle_ns : t -> int
(** Virtual time spent with no runnable thread (clock jumps to timers).
    [clock_ns - idle_ns] is busy time; their ratio is CPU utilization. *)

val charge : t -> int -> unit
(** Advance the virtual clock by a cost (ns). The program and MCR layers use
    this to bill instrumentation work to virtual time. Every timer pending
    at the call leapfrogs the charged span (it fires late, at the span's
    end) — appropriate for costs billed to the whole machine. *)

val charge_concurrent : t -> int -> unit
(** Advance the virtual clock by a coordinator-side cost (ns) while the
    rest of the machine stays live: runnable threads and due timers keep
    dispatching as the span elapses, as if the charged work occupied one
    core of many. Client processes standing in for remote machines see a
    state-transfer window as elapsed time, not frozen time — their retry
    and backoff timers fire inside it. *)

(** {1 Filesystem} *)

val fs_write : t -> path:string -> string -> unit
val fs_read : t -> path:string -> string option
val fs_exists : t -> path:string -> bool

(** {1 Processes} *)

type image =
  | Fresh_image of Mcr_vmem.Aspace.t  (** Run with this (new) address space. *)
  | Clone_image of proc  (** Deep-copy the other process's address space. *)

val spawn_process :
  t ->
  ?parent:proc ->
  ?force_pid:int ->
  image:image ->
  name:string ->
  entry:string ->
  main:(thread -> unit) ->
  unit ->
  proc
(** Create a process whose initial thread runs [main]. The fd table is
    copied from [parent] when cloning (fork semantics), empty otherwise.
    [force_pid] implements pid-namespace forcing; @raise Invalid_argument if
    the pid is taken. The process starts runnable. *)

val set_entry_resolver : proc -> (string -> (thread -> unit) option) -> unit
(** How [Fork]/[Thread_create] syscalls resolve their [entry] names. The
    resolver is inherited by forked children. *)

val pid : proc -> int
val parent_pid : proc -> int
val proc_name : proc -> string
val aspace : proc -> Mcr_vmem.Aspace.t
val alive : proc -> bool
val exit_status : proc -> int option
val procs : t -> proc list
(** All processes ever created, in creation order. *)

val find_proc : t -> int -> proc option

val proc_threads : proc -> thread list
val payload : proc -> payload option
val set_payload : proc -> payload -> unit
val creation_callstack : proc -> int
(** Call-stack id of the [Fork] that created this process (0 for roots);
    used to pair processes across versions (Section 6). *)

val kill_process : t -> proc -> status:int -> unit
(** Terminate a process from outside (MCR terminating the old version). *)

val fds : proc -> int list
(** Open fd numbers, sorted. *)

val set_reserved_fd_mode : proc -> bool -> unit
(** When on, new fds are allocated from a reserved high range "at the end of
    the file descriptor space" (Section 5, global separability). *)

(** {1 Threads} *)

val tid : thread -> int
val thread_name : thread -> string
val thread_proc : thread -> proc
val thread_alive : thread -> bool
val spawn_thread : t -> proc -> name:string -> (thread -> unit) -> thread

(** Shadow call stack, maintained by the program layer's [fn] combinator and
    hashed into call-stack ids. *)

val push_frame : thread -> string -> unit
val pop_frame : thread -> unit
val callstack : thread -> string list
(** Innermost frame first. *)

val callstack_id : thread -> int
(** FNV hash of the active function names (Section 5). *)

(** {1 System calls} *)

val syscall : Sysdefs.call -> Sysdefs.result
(** Perform a system call. Must run inside a simulated thread.
    [Exit] does not return. *)

type interception =
  | Execute  (** Run the call normally. *)
  | Short_circuit of Sysdefs.result  (** Replay: return this without executing. *)
  | Rewrite of Sysdefs.call
      (** Execute a different call instead (e.g. translating a virtual pid
          from the old version's namespace to the real one). *)
  | Post of Sysdefs.call * (Sysdefs.result -> Sysdefs.result)
      (** Execute the given call, then transform its result before the
          program sees it (e.g. returning the recorded child pid from a
          fork while tracking the real one). *)

val set_interceptor : proc -> (thread -> Sysdefs.call -> interception) option -> unit
(** Pre-execution hook (replay engine). *)

val set_monitor : proc -> (thread -> Sysdefs.call -> Sysdefs.result -> unit) option -> unit
(** Post-execution hook (startup-log recording). Not invoked for
    short-circuited calls. *)

val set_block_monitor :
  t -> (thread -> Sysdefs.call -> blocked_ns:int -> unit) option -> unit
(** Invoked whenever a thread that parked in a blocking call resumes; the
    quiescence profiler's statistical input. *)

val set_spawn_hook : t -> (proc -> unit) option -> unit
(** Invoked for every process created ({!spawn_process} or a [Fork]
    syscall), before its first thread runs. The MCR runtime uses this to
    attach instrumentation (interceptors, recorders) to children — the
    preloaded-library analog. *)

val set_fault_hook :
  t -> (thread -> Sysdefs.call -> Sysdefs.result option) option -> unit
(** Kernel-wide fault-injection hook, consulted for every call that is
    about to execute for real (after interception — short-circuited replay
    calls never reach it, and [Exit] is never faultable). Returning
    [Some r] delivers [r] instead of executing the call; the result flows
    through the process monitor like any genuine completion, so recording
    sees injected failures as ordinary outcomes. *)

val unlink_path : t -> path:string -> unit
(** Remove a Unix-domain socket's filesystem name (the [unlink] analog).
    Closing a listener does {e not} remove its name — as on a real system —
    so a later [Unix_listen] on the same path fails with [EADDRINUSE]
    until the stale name is unlinked. No-op if the path is not bound. *)

val path_active : t -> path:string -> bool
(** Whether [path] names a Unix-domain listener that is still open (i.e.
    unlinking it would disconnect a live service rather than collect a
    stale name). *)

(** {1 Scheduling} *)

val run : t -> unit
(** Run until no thread is runnable and no timer is pending. *)

val run_until : t -> ?max_ns:int -> (unit -> bool) -> bool
(** Run until the predicate holds (checked between scheduling steps), the
    system goes quiet, or the clock passes [max_ns] (an {e absolute} virtual
    time). Returns whether the predicate held. *)

val run_for : t -> int -> unit
(** Run for at most [ns] of virtual time. *)

val quiescent_system : t -> bool
(** No runnable threads and no pending timers. *)

val post_semaphore : t -> string -> unit
(** Post a named semaphore from outside any simulated thread. The MCR
    runtime (which runs as controller code, not as a simulated thread) uses
    this to release quiescence barriers. *)

val close_fd_external : t -> proc -> int -> unit
(** Close a descriptor on a process's behalf (controller-side). Used by the
    replay engine to garbage-collect inherited descriptors that no replay
    operation referenced, and to apply startup-deferred closes. No-op on a
    closed fd. *)

val transfer_fd :
  t -> src:proc -> fd:int -> dst:proc -> at:int -> (int, Sysdefs.err) result
(** Kernel-mediated descriptor inheritance (the CRIU-style support MCR
    builds on): install [src]'s descriptor [fd] into [dst] at exactly
    [at], sharing the open file description with the source — the old and
    new versions "share" the object until one of them closes it. Errors:
    [EBADF] if [fd] is not open in [src], [EEXIST] if [at] is taken in
    [dst]. *)

(** {1 Connection parking}

    The in-flight-request half of live update: while a listener is parked,
    new connections complete their handshake (no [ECONNREFUSED]) but wait
    in a SYN-queue analog, invisible to [Accept] and [Poll]; unparking
    moves them FIFO into the accept backlog of the surviving version
    (listener descriptors are shared across versions via {!transfer_fd}).
    The kernel keeps a conservation ledger: every parked connection is
    eventually resumed or aborted. *)

val park_listeners : t -> proc -> int
(** Park every open listener of [p]; returns how many listeners
    transitioned to parked (already-parked ones don't count). *)

val unpark_listeners : t -> proc -> int
(** Unpark [p]'s listeners, moving parked connections FIFO into their
    accept backlogs (the backlog bound applies only to new connections);
    returns the number of connections resumed. *)

type parking_stats = { parked : int; resumed : int; aborted : int }
(** Kernel-lifetime totals; [parked = resumed + aborted + still-queued]
    holds at all times. Aborted counts parked connections whose listener
    was closed before unpark. *)

val parking_stats : t -> parking_stats

val blocked_in : thread -> Sysdefs.call option
(** The blocking call a parked thread is sitting in, if any. *)

val blocked_since : thread -> int option
(** Virtual time at which the thread parked in its current blocking call
    ([None] when not blocked). The quiescence profiler's sampling input. *)
