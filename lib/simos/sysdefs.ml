type fd = int
type pid = int

type call =
  | Socket
  | Bind of { fd : fd; port : int }
  | Listen of { fd : fd; backlog : int }
  | Accept of { fd : fd; nonblock : bool }
  | Accept_timed of { fd : fd; timeout_ns : int }
  | Connect of { port : int }
  | Read of { fd : fd; max : int; nonblock : bool }
  | Write of { fd : fd; data : string }
  | Close of { fd : fd }
  | Open of { path : string; create : bool }
  | Open_at of { path : string; create : bool; force_fd : fd }
  | Dup of { fd : fd }
  | Poll of { fds : fd list; timeout_ns : int option; nonblock : bool }
  | Getpid
  | Getppid
  | Fork of { entry : string }
  | Thread_create of { entry : string }
  | Waitpid of { pid : pid }
  | Exit of { status : int }
  | Nanosleep of { ns : int }
  | Sem_wait of { name : string; timeout_ns : int option }
  | Sem_post of { name : string }
  | Unix_listen of { path : string }
  | Unix_connect of { path : string }
  | Send_fd of { conn : fd; payload : fd }
  | Recv_fd of { conn : fd; nonblock : bool }
  | Recv_fd_at of { conn : fd; force_fd : fd; nonblock : bool }
  | Shmget of { key : int }

type err =
  | EAGAIN
  | EBADF
  | EADDRINUSE
  | ECONNREFUSED
  | ENOENT
  | EEXIST
  | EPIPE
  | EINTR
  | ETIMEDOUT
  | ECHILD
  | EINVAL
  | EMFILE
  | ENOSPC
  | ECONNRESET

type result =
  | Ok_unit
  | Ok_fd of fd
  | Ok_pid of pid
  | Ok_data of string
  | Ok_len of int
  | Ok_ready of fd list
  | Ok_status of int
  | Err of err

exception Program_exit of int

let call_name = function
  | Socket -> "socket"
  | Bind _ -> "bind"
  | Listen _ -> "listen"
  | Accept _ -> "accept"
  | Accept_timed _ -> "accept_timed"
  | Connect _ -> "connect"
  | Read _ -> "read"
  | Write _ -> "write"
  | Close _ -> "close"
  | Open _ -> "open"
  | Open_at _ -> "open_at"
  | Dup _ -> "dup"
  | Poll _ -> "poll"
  | Getpid -> "getpid"
  | Getppid -> "getppid"
  | Fork _ -> "fork"
  | Thread_create _ -> "thread_create"
  | Waitpid _ -> "waitpid"
  | Exit _ -> "exit"
  | Nanosleep _ -> "nanosleep"
  | Sem_wait _ -> "sem_wait"
  | Sem_post _ -> "sem_post"
  | Unix_listen _ -> "unix_listen"
  | Unix_connect _ -> "unix_connect"
  | Send_fd _ -> "send_fd"
  | Recv_fd _ -> "recv_fd"
  | Recv_fd_at _ -> "recv_fd_at"
  | Shmget _ -> "shmget"

let is_blocking = function
  | Accept { nonblock; _ } | Read { nonblock; _ } | Recv_fd { nonblock; _ }
  | Recv_fd_at { nonblock; _ } | Poll { nonblock; _ } ->
      not nonblock
  | Waitpid _ | Nanosleep _ | Sem_wait _ | Accept_timed _ -> true
  | Socket | Bind _ | Listen _ | Connect _ | Write _ | Close _ | Open _ | Open_at _ | Dup _
  | Getpid
  | Getppid | Fork _ | Thread_create _ | Exit _ | Sem_post _ | Unix_listen _
  | Unix_connect _ | Send_fd _ | Shmget _ ->
      false

let err_name = function
  | EAGAIN -> "EAGAIN"
  | EBADF -> "EBADF"
  | EADDRINUSE -> "EADDRINUSE"
  | ECONNREFUSED -> "ECONNREFUSED"
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | EPIPE -> "EPIPE"
  | EINTR -> "EINTR"
  | ETIMEDOUT -> "ETIMEDOUT"
  | ECHILD -> "ECHILD"
  | EINVAL -> "EINVAL"
  | EMFILE -> "EMFILE"
  | ENOSPC -> "ENOSPC"
  | ECONNRESET -> "ECONNRESET"

let pp_err ppf e = Format.pp_print_string ppf (err_name e)

let pp_call ppf c =
  match c with
  | Socket | Getpid | Getppid -> Format.pp_print_string ppf (call_name c)
  | Bind { fd; port } -> Format.fprintf ppf "bind(fd=%d, port=%d)" fd port
  | Listen { fd; backlog } -> Format.fprintf ppf "listen(fd=%d, backlog=%d)" fd backlog
  | Accept { fd; nonblock } -> Format.fprintf ppf "accept(fd=%d%s)" fd (if nonblock then ", NB" else "")
  | Accept_timed { fd; timeout_ns } -> Format.fprintf ppf "accept_timed(fd=%d, t=%dns)" fd timeout_ns
  | Connect { port } -> Format.fprintf ppf "connect(port=%d)" port
  | Read { fd; max; nonblock } ->
      Format.fprintf ppf "read(fd=%d, max=%d%s)" fd max (if nonblock then ", NB" else "")
  | Write { fd; data } -> Format.fprintf ppf "write(fd=%d, %d bytes)" fd (String.length data)
  | Close { fd } -> Format.fprintf ppf "close(fd=%d)" fd
  | Open { path; create } -> Format.fprintf ppf "open(%S%s)" path (if create then ", O_CREAT" else "")
  | Open_at { path; force_fd; _ } -> Format.fprintf ppf "open_at(%S, fd=%d)" path force_fd
  | Dup { fd } -> Format.fprintf ppf "dup(fd=%d)" fd
  | Poll { fds; timeout_ns; nonblock } ->
      Format.fprintf ppf "poll([%s]%s%s)"
        (String.concat ";" (List.map string_of_int fds))
        (match timeout_ns with Some t -> Printf.sprintf ", t=%dns" t | None -> "")
        (if nonblock then ", NB" else "")
  | Fork { entry } -> Format.fprintf ppf "fork(entry=%s)" entry
  | Thread_create { entry } -> Format.fprintf ppf "thread_create(entry=%s)" entry
  | Waitpid { pid } -> Format.fprintf ppf "waitpid(%d)" pid
  | Exit { status } -> Format.fprintf ppf "exit(%d)" status
  | Nanosleep { ns } -> Format.fprintf ppf "nanosleep(%dns)" ns
  | Sem_wait { name; timeout_ns } ->
      Format.fprintf ppf "sem_wait(%s%s)" name
        (match timeout_ns with Some t -> Printf.sprintf ", t=%dns" t | None -> "")
  | Sem_post { name } -> Format.fprintf ppf "sem_post(%s)" name
  | Unix_listen { path } -> Format.fprintf ppf "unix_listen(%S)" path
  | Unix_connect { path } -> Format.fprintf ppf "unix_connect(%S)" path
  | Send_fd { conn; payload } -> Format.fprintf ppf "send_fd(conn=%d, fd=%d)" conn payload
  | Recv_fd { conn; nonblock } ->
      Format.fprintf ppf "recv_fd(conn=%d%s)" conn (if nonblock then ", NB" else "")
  | Recv_fd_at { conn; force_fd; nonblock } ->
      Format.fprintf ppf "recv_fd_at(conn=%d, at=%d%s)" conn force_fd
        (if nonblock then ", NB" else "")
  | Shmget { key } -> Format.fprintf ppf "shmget(key=%d)" key

let pp_result ppf = function
  | Ok_unit -> Format.pp_print_string ppf "ok"
  | Ok_fd fd -> Format.fprintf ppf "fd=%d" fd
  | Ok_pid pid -> Format.fprintf ppf "pid=%d" pid
  | Ok_data d -> Format.fprintf ppf "data(%d bytes)" (String.length d)
  | Ok_len n -> Format.fprintf ppf "len=%d" n
  | Ok_ready fds ->
      Format.fprintf ppf "ready=[%s]" (String.concat ";" (List.map string_of_int fds))
  | Ok_status s -> Format.fprintf ppf "status=%d" s
  | Err e -> pp_err ppf e
