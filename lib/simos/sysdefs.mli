(** System call definitions.

    Every interaction between a simulated program and the simulated kernel
    is one of these calls. The startup log records values of {!call} paired
    with their {!result}s; mutable reinitialization replays them. Calls are
    plain data so the replay engine's "deep comparison of the arguments"
    (Section 5) is structural equality. *)

type fd = int
type pid = int

type call =
  | Socket  (** TCP-like listening/connecting socket. *)
  | Bind of { fd : fd; port : int }
  | Listen of { fd : fd; backlog : int }
  | Accept of { fd : fd; nonblock : bool }
  | Accept_timed of { fd : fd; timeout_ns : int }
      (** The timeout-based variant unblockification wrappers use: parks at
          most [timeout_ns] and wakes exactly one waiter per connection
          (plain polling would thunder every wrapped acceptor). *)
  | Connect of { port : int }  (** Client side; returns the connected fd. *)
  | Read of { fd : fd; max : int; nonblock : bool }
  | Write of { fd : fd; data : string }
  | Close of { fd : fd }
  | Open of { path : string; create : bool }
  | Open_at of { path : string; create : bool; force_fd : fd }
      (** Replay-only: open installing the descriptor at exactly [force_fd],
          with a fresh file offset — how mutable reinitialization re-executes
          a recorded [open] while preserving the fd number. *)
  | Dup of { fd : fd }
  | Poll of { fds : fd list; timeout_ns : int option; nonblock : bool }
  | Getpid
  | Getppid
  | Fork of { entry : string }
      (** Spawn-with-inheritance (see DESIGN.md): the child copies the
          parent's address space and fd table and starts at [entry]. *)
  | Thread_create of { entry : string }
  | Waitpid of { pid : pid }
  | Exit of { status : int }
  | Nanosleep of { ns : int }
  | Sem_wait of { name : string; timeout_ns : int option }
  | Sem_post of { name : string }
  | Unix_listen of { path : string }  (** Unix-domain listening socket. *)
  | Unix_connect of { path : string }
  | Send_fd of { conn : fd; payload : fd }
      (** SCM_RIGHTS analog: pass [payload] to the peer process. *)
  | Recv_fd of { conn : fd; nonblock : bool }
  | Recv_fd_at of { conn : fd; force_fd : fd; nonblock : bool }
      (** Receive a passed fd and install it at exactly [force_fd] — the
          mechanism MCR's global inheritance uses to preserve old fd
          numbers. *)
  | Shmget of { key : int }
      (** SysV shared-memory segment: returns a {e globally} allocated id
          with no namespace support — the paper's Section 7 example of an
          immutable object class MCR cannot virtualize. *)

type err =
  | EAGAIN
  | EBADF
  | EADDRINUSE
  | ECONNREFUSED
  | ENOENT
  | EEXIST
  | EPIPE
  | EINTR
  | ETIMEDOUT
  | ECHILD
  | EINVAL
  | EMFILE
  | ENOSPC  (** Injected by the fault harness: device-full analog. *)
  | ECONNRESET  (** Injected by the fault harness: peer-reset analog. *)

type result =
  | Ok_unit
  | Ok_fd of fd
  | Ok_pid of pid
  | Ok_data of string  (** [""] means EOF on a stream. *)
  | Ok_len of int
  | Ok_ready of fd list
  | Ok_status of int  (** Exit status from [Waitpid]. *)
  | Err of err

exception Program_exit of int
(** Raised inside a thread by [Exit]; unwinds the thread. *)

val call_name : call -> string
(** Stable mnemonic ("socket", "bind", ...), used in logs and conflict
    reports. *)

val is_blocking : call -> bool
(** Whether the call can park the thread (its [nonblock] flag taken into
    account). *)

val pp_call : Format.formatter -> call -> unit
val pp_result : Format.formatter -> result -> unit
val pp_err : Format.formatter -> err -> unit
