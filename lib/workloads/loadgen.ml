(* Open-loop Poisson-arrival load driver.

   Closed-loop clients (http_bench and friends) hide update stalls behind
   coordinated omission: a client stuck in the window simply issues its
   next request late, so the stall shows up once instead of in every
   request that *would* have been sent. This driver is open-loop: every
   request has a scheduled arrival time drawn up front from a seeded
   exponential inter-arrival stream, and latency is measured from that
   schedule, so a 40 ms update window is charged to every request whose
   arrival it delayed.

   All client processes are pre-spawned before the run starts (spawning
   costs virtual time; paying it at arrival time would serialize the
   arrival process) and each sleeps until its scheduled arrival. *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module Stats = Mcr_util.Stats
module Rng = Mcr_util.Rng
module Metrics = Mcr_obs.Metrics
module Trace = Mcr_obs.Trace

let latency_metric = "mcr_request_latency_ns"

type record = {
  rq_id : int;
  rq_scheduled_ns : int;  (* open-loop submit instant *)
  rq_first_byte_ns : int;  (* first server byte; -1 if none arrived *)
  rq_complete_ns : int;
  rq_retries : int;  (* ECONNREFUSED-driven reconnect attempts *)
  rq_ok : bool;
}

type t = {
  kernel : K.t;
  server : Testbed.server;
  total : int;
  issued : int ref;
  completed : int ref;
  errored : int ref;
  refused_retries : int ref;
  in_flight : int ref;
  peak_in_flight : int ref;
  latency : Stats.hist;  (* scheduled arrival -> completion *)
  ttfb : Stats.hist;  (* scheduled arrival -> first server byte *)
  records : record option array;
  offsets : int array;
  base : int ref;  (* absolute schedule origin, set once spawning is done *)
  procs : K.proc list;
}

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Seeded exponential inter-arrivals; same seed, same schedule. *)
let arrival_offsets ~seed ~rate ~n =
  if rate <= 0 then invalid_arg "Loadgen: rate must be positive";
  let rng = Rng.create seed in
  let mean_ns = 1e9 /. float_of_int rate in
  let at = ref 0. in
  Array.init n (fun _ ->
      let u = (float_of_int (Rng.int rng 1_000_000) +. 1.) /. 1_000_000. in
      at := !at +. (-.log u *. mean_ns);
      int_of_float !at)

(* One request's protocol dialog on an established connection. Returns
   (ok, first_byte_clock, bytes). The first server byte is the banner for
   FTP/SSH and the response head for HTTP. *)
let dialog kernel server fd user =
  let fb = ref (-1) in
  let recv () =
    let r = Client.recv fd in
    (match r with
    | Some d when String.length d > 0 && !fb < 0 -> fb := K.clock_ns kernel
    | _ -> ());
    r
  in
  let cmd c =
    Client.send fd c;
    recv ()
  in
  let ok =
    match (server : Testbed.server) with
    | Testbed.Nginx | Testbed.Httpd -> (
        Client.send fd "GET /index.html";
        match recv () with
        | Some reply -> String.length reply >= 3 && String.sub reply 0 3 = "200"
        | None -> false)
    | Testbed.Vsftpd ->
        let _banner = recv () in
        let _ = cmd (Printf.sprintf "USER user%d" user) in
        let _ = cmd "PASS secret" in
        Client.send fd "RETR big.bin";
        let rec drain saw150 =
          match recv () with
          | Some reply when contains reply "226" -> saw150
          | Some reply when contains reply "550" -> false
          | Some reply -> drain (saw150 || contains reply "150")
          | None -> false
        in
        let ok = drain false in
        let _ = cmd "QUIT" in
        ok
    | Testbed.Sshd -> (
        let _banner = recv () in
        match cmd (Printf.sprintf "AUTH user%d" user) with
        | Some r when contains r "auth-ok" ->
            let ok =
              match cmd "RUN cmd1" with
              | Some reply -> contains reply "out:"
              | None -> false
            in
            let _ = cmd "EXIT" in
            ok
        | Some _ | None -> false)
  in
  (ok, !fb)

let start kernel ~server ?(seed = 1) ?metrics ?trace ~rate ~requests () =
  let port = Testbed.port server in
  let offsets = arrival_offsets ~seed ~rate ~n:requests in
  let lat_metric =
    Option.map (fun m -> Metrics.histogram m ~bounds:Stats.log_ns_bounds latency_metric) metrics
  in
  let issued_c = Option.map (fun m -> Metrics.counter m "mcr_requests_issued_total") metrics in
  let completed_c =
    Option.map (fun m -> Metrics.counter m "mcr_requests_completed_total") metrics
  in
  let errored_c = Option.map (fun m -> Metrics.counter m "mcr_requests_errored_total") metrics in
  let inflight_g = Option.map (fun m -> Metrics.gauge m "mcr_requests_in_flight") metrics in
  (* The absolute schedule base: set after every client process has been
     spawned (spawning advances the virtual clock), read by the clients
     when the kernel first runs them. *)
  let base = ref 0 in
  let t =
    {
      kernel;
      server;
      total = requests;
      issued = ref 0;
      completed = ref 0;
      errored = ref 0;
      refused_retries = ref 0;
      in_flight = ref 0;
      peak_in_flight = ref 0;
      latency = Stats.hist_create ~bounds:Stats.log_ns_bounds;
      ttfb = Stats.hist_create ~bounds:Stats.log_ns_bounds;
      records = Array.make requests None;
      offsets;
      base;
      procs = [];
    }
  in
  let span_name =
    match server with
    | Testbed.Nginx | Testbed.Httpd -> "request.http"
    | Testbed.Vsftpd -> "request.ftp"
    | Testbed.Sshd -> "request.ssh"
  in
  let procs =
    List.init requests (fun i ->
        Client.spawn kernel
          (Printf.sprintf "load-%d" i)
          (fun th ->
            let scheduled = !base + offsets.(i) in
            let now = K.clock_ns kernel in
            if scheduled > now then ignore (K.syscall (S.Nanosleep { ns = scheduled - now }));
            incr t.issued;
            Option.iter Metrics.incr issued_c;
            incr t.in_flight;
            if !(t.in_flight) > !(t.peak_in_flight) then t.peak_in_flight := !(t.in_flight);
            Option.iter (fun g -> Metrics.set g !(t.in_flight)) inflight_g;
            let retries = ref 0 in
            (* Exponential backoff on refused connects (1 ms doubling to a
               64 ms cap), the standard client response to an overloaded
               accept queue. This is what makes refusal expensive at the
               tail: a client refused by an update window sleeps past the
               window's end by up to its whole last backoff interval. *)
            let backoff = ref 1_000_000 in
            let rec connect n =
              match K.syscall (S.Connect { port }) with
              | S.Ok_fd fd -> Some fd
              | S.Err S.ECONNREFUSED when n > 0 ->
                  incr retries;
                  incr t.refused_retries;
                  ignore (K.syscall (S.Nanosleep { ns = !backoff }));
                  backoff := min (2 * !backoff) 64_000_000;
                  connect (n - 1)
              | _ -> None
            in
            let ok, fb =
              match connect 2000 with
              | None -> (false, -1)
              | Some fd ->
                  let ok, fb = dialog kernel server fd i in
                  Client.close fd;
                  (ok, fb)
            in
            let finish = K.clock_ns kernel in
            decr t.in_flight;
            Option.iter (fun g -> Metrics.set g !(t.in_flight)) inflight_g;
            let d = finish - scheduled in
            Stats.hist_observe t.latency d;
            if fb >= 0 then Stats.hist_observe t.ttfb (fb - scheduled);
            Option.iter (fun h -> Metrics.observe h d) lat_metric;
            if ok then begin
              incr t.completed;
              Option.iter Metrics.incr completed_c
            end
            else begin
              incr t.errored;
              Option.iter Metrics.incr errored_c
            end;
            Trace.complete trace ~pid:(K.pid (K.thread_proc th))
              ~cat:"request"
              ~args:
                [ ("id", string_of_int i);
                  ("server", Testbed.name server);
                  ("ok", if ok then "yes" else "no");
                  ("retries", string_of_int !retries) ]
              ~dur_ns:d span_name;
            t.records.(i) <-
              Some
                {
                  rq_id = i;
                  rq_scheduled_ns = scheduled;
                  rq_first_byte_ns = fb;
                  rq_complete_ns = finish;
                  rq_retries = !retries;
                  rq_ok = ok;
                }))
  in
  base := K.clock_ns kernel;
  { t with procs }

let finished t = List.for_all (fun p -> not (K.alive p)) t.procs
let drive ?max_s t = ignore (Client.drive ?max_s t.kernel (fun () -> finished t))

let issued t = !(t.issued)
let completed t = !(t.completed)
let errored t = !(t.errored)
let refused_retries t = !(t.refused_retries)

(* Open-loop concurrency: a request is outstanding from its *scheduled*
   arrival (the client-perceived submit) until completion, regardless of
   when the scheduler got around to running its thread — the same
   no-coordinated-omission rule the latency stamps follow. Classic
   max-overlap sweep over the completed records; requests still on the
   wire count from their schedule to now. *)
let peak_in_flight t =
  let now = K.clock_ns t.kernel in
  let events = ref [] in
  Array.iteri
    (fun i r ->
      match r with
      | Some r ->
          events := (r.rq_scheduled_ns, 1) :: (r.rq_complete_ns, -1) :: !events
      | None ->
          (* still on the wire: outstanding from its schedule until now *)
          let sched = !(t.base) + t.offsets.(i) in
          if sched <= now then events := (sched, 1) :: (now, -1) :: !events)
    t.records;
  let events =
    List.sort (fun (a, da) (b, db) -> if a <> b then compare a b else compare db da) !events
  in
  let cur = ref 0 and peak = ref 0 in
  List.iter
    (fun (_, d) ->
      cur := !cur + d;
      if !cur > !peak then peak := !cur)
    events;
  !peak
let latency t = Stats.hist_copy t.latency
let ttfb t = Stats.hist_copy t.ttfb
let summary t = Stats.hist_summary t.latency

(* Exact (unbucketed) percentile over the per-request records — the
   bucketed histograms bound relative error at the bucket width, which
   can tie two genuinely different tails; comparisons gate on this. *)
let exact_percentile t p =
  if p < 0. || p > 100. then invalid_arg "Loadgen.exact_percentile";
  let ds =
    Array.to_list t.records
    |> List.filter_map (Option.map (fun r -> r.rq_complete_ns - r.rq_scheduled_ns))
    |> List.sort compare |> Array.of_list
  in
  let n = Array.length ds in
  if n = 0 then 0
  else
    let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int n))) in
    ds.(min (n - 1) (rank - 1))
let records t = Array.to_list t.records |> List.filter_map Fun.id

(* The per-request stamps in mcr-postmortem's --requests dialect: feed this
   plus the update's flight record to [Postmortem.render_client_impact] to
   see which waterfall segment stalled which requests. *)
let requests_json t =
  Mcr_obs.Client_impact.reqs_to_json ~server:(Testbed.name t.server)
    (records t
    |> List.map (fun r ->
           {
             Mcr_obs.Client_impact.q_id = r.rq_id;
             q_scheduled_ns = r.rq_scheduled_ns;
             q_first_byte_ns = r.rq_first_byte_ns;
             q_complete_ns = r.rq_complete_ns;
             q_retries = r.rq_retries;
             q_ok = r.rq_ok;
           }))
let server t = t.server
let total t = t.total
