module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs

type t = {
  kernel : K.t;
  sem : string;
  n : int;
  mutable ready : int;
  mutable procs : K.proc list;
}

let uid = ref 0

let make kernel n prologue epilogue =
  incr uid;
  let t =
    { kernel; sem = Printf.sprintf "holders.release.%d" !uid; n; ready = 0; procs = [] }
  in
  t.procs <-
    List.init n (fun i ->
        Client.spawn kernel
          (Printf.sprintf "holder-%d-%d" !uid i)
          (fun _ ->
            match prologue i with
            | Some fd ->
                t.ready <- t.ready + 1;
                ignore (K.syscall (S.Sem_wait { name = t.sem; timeout_ns = None }));
                epilogue fd
            | None -> ()));
  t

let open_http kernel ~port ~n =
  make kernel n
    (fun _ ->
      match Client.connect port with
      | Some fd ->
          Client.send fd "HOLD";
          Some fd
      | None -> None)
    (fun fd -> Client.close fd)

let open_ftp kernel ~port ~n =
  make kernel n
    (fun i ->
      match Client.connect port with
      | Some fd ->
          let cmd c = Client.send fd c; ignore (Client.recv fd) in
          ignore (Client.recv fd);
          cmd (Printf.sprintf "USER holder%d" i);
          cmd "PASS pw";
          Some fd
      | None -> None)
    (fun fd ->
      Client.send fd "QUIT";
      ignore (Client.recv fd);
      Client.close fd)

let open_ssh kernel ~port ~n =
  make kernel n
    (fun i ->
      match Client.connect port with
      | Some fd ->
          let cmd c = Client.send fd c; ignore (Client.recv fd) in
          ignore (Client.recv fd);
          cmd (Printf.sprintf "AUTH holder%d" i);
          Some fd
      | None -> None)
    (fun fd ->
      Client.send fd "EXIT";
      ignore (Client.recv fd);
      Client.close fd)

let connected t = t.ready

let close_all t =
  for _ = 1 to t.n do
    K.post_semaphore t.kernel t.sem
  done

let all_done t = List.for_all (fun p -> not (K.alive p)) t.procs
