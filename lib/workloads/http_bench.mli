(** The Apache-benchmark (AB) analog: concurrent clients issuing one-shot
    HTTP-like GET requests against a simulated web server ("100,000 requests
    for a 1 KB HTML file" in the paper, scaled by the caller). *)

val run :
  Mcr_simos.Kernel.t ->
  port:int ->
  ?concurrency:int ->
  ?think_ns:int ->
  requests:int ->
  path:string ->
  unit ->
  Bench_result.t
(** [run kernel ~port ~requests ~path ()] spawns [concurrency] (default 4)
    client processes that together issue [requests] GETs and drives the
    kernel to completion. [think_ns] (default 0) inserts a pause between a
    client's requests — an open-loop load that leaves the server idle time
    (for CPU-utilization measurements). *)
