(** Long-lived open connections — the Figure 3 workload ("a number of users
    connect ... and measure the time to transfer the state") and the
    execution-stalling part of the quiescence-profiling workload.

    Each holder is a client process that completes the protocol prologue
    (HOLD for the web servers, login for FTP, auth for SSH) and then parks
    until {!close_all}. *)

type t

val open_http : Mcr_simos.Kernel.t -> port:int -> n:int -> t
(** [n] held HTTP connections (the server parks them as in-progress). *)

val open_ftp : Mcr_simos.Kernel.t -> port:int -> n:int -> t
(** [n] logged-in, idle FTP control sessions (one server process each). *)

val open_ssh : Mcr_simos.Kernel.t -> port:int -> n:int -> t
(** [n] authenticated, idle SSH sessions. *)

val connected : t -> int
(** Holders that completed their prologue. Drive the kernel until this
    reaches [n] before measuring. *)

val close_all : t -> unit
(** Wake every holder; each closes its connection and exits. Drive the
    kernel afterwards. *)

val all_done : t -> bool
