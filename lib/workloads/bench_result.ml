(* Common result record for the benchmark clients. *)

type t = {
  requests : int;  (** Completed successfully. *)
  errors : int;
  bytes : int;  (** Response payload bytes received. *)
  elapsed_ns : int;  (** Virtual time from first spawn to last completion. *)
}

let throughput t =
  if t.elapsed_ns = 0 then 0. else float_of_int t.requests /. (float_of_int t.elapsed_ns /. 1e9)

let pp ppf t =
  Format.fprintf ppf "%d ok, %d err, %d bytes in %.2f ms (%.0f req/s)" t.requests t.errors
    t.bytes
    (float_of_int t.elapsed_ns /. 1e6)
    (throughput t)
