(** Offline time travel over persistent checkpoint images.

    An image snapped at an update's quiescent point
    ({!Mcr_core.Policy.t.image_dir}) embeds the saving policy, the update's
    target version tag and — once the attempt finished — its flight
    record. Because updates are deterministic, restoring such an image into
    a fresh kernel and re-running the update must reproduce the recorded
    verdict bit-for-bit; {!replay} performs that re-run and says whether it
    did. [mcr-postmortem --replay] is the CLI spelling. *)

val server_of_prog : string -> Testbed.server option
(** Map an image's program name (e.g. ["nginx"]) back to its testbed
    server. *)

val restore :
  Mcr_image.Image.t ->
  ( Mcr_simos.Kernel.t * Mcr_core.Manager.t * Mcr_image.Image.install_report,
    string )
  result
(** Materialize the image into a brand-new kernel: launch the image's
    program and version via {!Testbed.launch}, then install the image over
    it ({!Mcr_core.Manager.restore_image}). On [Ok] the returned manager
    serves with the image's exact state (fingerprint verified). *)

type verdict = {
  v_reproduced : bool;
      (** The offline re-run reached the recorded outcome: same
          commit/rollback flag and, for rollbacks, the same frozen reason
          and failing stage. *)
  v_expected_success : bool;  (** What the embedded flight record says. *)
  v_got_success : bool;  (** What the offline re-run produced. *)
  v_expected_reason : string option;
  v_got_reason : string option;
  v_expected_stage : string option;
  v_got_stage : string option;
  v_fingerprint : int;  (** The image's recorded fingerprint. *)
}

val pp_verdict : Format.formatter -> verdict -> unit

val replay : Mcr_image.Image.t -> (verdict, string) result
(** {!restore} the image, rebuild the saving policy
    ({!Mcr_core.Policy.of_kv} of the embedded text — including any armed
    fault seed, so injected failures re-fire identically), re-run the
    update toward the embedded target tag and compare the outcome against
    the embedded flight record. [Error] means the replay could not run at
    all (no flight record, unknown program/version, restore failure) —
    distinct from [Ok { v_reproduced = false; _ }], which means it ran and
    contradicted the record. *)

val replay_path : path:string -> (verdict, string) result
(** {!Mcr_image.Image.read} then {!replay}. *)
