module K = Mcr_simos.Kernel

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let run kernel ~port ~users ?(retrievals = 1) ~file () =
  let ok = ref 0 and errors = ref 0 and bytes = ref 0 in
  let start = K.clock_ns kernel in
  let clients =
    List.init users (fun i ->
        Client.spawn kernel
          (Printf.sprintf "ftp-user-%d" i)
          (fun _ ->
            match Client.connect port with
            | None -> incr errors
            | Some fd ->
                let cmd c = Client.send fd c; Client.recv fd in
                let _banner = Client.recv fd in
                let _ = cmd (Printf.sprintf "USER user%d" i) in
                let _ = cmd "PASS secret" in
                for _ = 1 to retrievals do
                  (* drain the chunked transfer until the 226 completion *)
                  Client.send fd ("RETR " ^ file);
                  let rec drain acc saw150 =
                    match Client.recv fd with
                    | Some reply when contains reply "226" -> (acc, saw150)
                    | Some reply when contains reply "550" -> (acc, false)
                    | Some reply ->
                        drain (acc + String.length reply) (saw150 || contains reply "150")
                    | None -> (acc, false)
                  in
                  let got, ok150 = drain 0 false in
                  if ok150 then begin
                    incr ok;
                    bytes := !bytes + got
                  end
                  else incr errors
                done;
                let _ = cmd "QUIT" in
                Client.close fd))
  in
  ignore (Client.drive kernel (fun () -> List.for_all (fun p -> not (K.alive p)) clients));
  {
    Bench_result.requests = !ok;
    errors = !errors;
    bytes = !bytes;
    elapsed_ns = K.clock_ns kernel - start;
  }
