module K = Mcr_simos.Kernel
module Manager = Mcr_core.Manager
module Nginx = Mcr_servers.Nginx_sim
module Httpd = Mcr_servers.Httpd_sim
module Vsftpd = Mcr_servers.Vsftpd_sim
module Sshd = Mcr_servers.Sshd_sim

type server = Nginx | Httpd | Vsftpd | Sshd

let all = [ Httpd; Nginx; Vsftpd; Sshd ]

let name = function
  | Nginx -> "nginx"
  | Httpd -> "Apache httpd"
  | Vsftpd -> "vsftpd"
  | Sshd -> "OpenSSH"

let port = function
  | Nginx -> Nginx.port
  | Httpd -> Httpd.port
  | Vsftpd -> Vsftpd.port
  | Sshd -> Sshd.port

let base_version = function
  | Nginx -> Nginx.base ()
  | Httpd -> Httpd.base ()
  | Vsftpd -> Vsftpd.base ()
  | Sshd -> Sshd.base ()

let final_version = function
  | Nginx -> Nginx.final ()
  | Httpd -> Httpd.final ()
  | Vsftpd -> Vsftpd.final ()
  | Sshd -> Sshd.final ()

let version_series = function
  | Nginx -> Nginx.versions ()
  | Httpd -> Httpd.versions ()
  | Vsftpd -> Vsftpd.versions ()
  | Sshd -> Sshd.versions ()

let meta = function
  | Nginx -> Nginx.meta
  | Httpd -> Httpd.meta
  | Vsftpd -> Vsftpd.meta
  | Sshd -> Sshd.meta

let html_1k = String.concat "" (List.init 16 (fun _ -> String.make 63 'x' ^ "\n"))
let mb_1 = String.make (1 lsl 20) 'd'

let prepare_fs ?config kernel server =
  let conf default = Option.value config ~default in
  match server with
  | Nginx ->
      K.fs_write kernel ~path:"/etc/nginx.conf" (conf "worker_processes 1;");
      K.fs_write kernel ~path:"/www/index.html" html_1k;
      K.fs_write kernel ~path:"/www/big.bin" mb_1
  | Httpd ->
      K.fs_write kernel ~path:"/etc/httpd.conf" (conf "ServerLimit 2\nThreadsPerChild 2");
      K.fs_write kernel ~path:"/www/index.html" html_1k;
      K.fs_write kernel ~path:"/www/big.bin" mb_1
  | Vsftpd ->
      K.fs_write kernel ~path:"/etc/vsftpd.conf" (conf "anonymous_enable=NO");
      K.fs_write kernel ~path:(Vsftpd.ftp_root ^ "/big.bin") mb_1
  | Sshd -> K.fs_write kernel ~path:"/etc/sshd_config" (conf "PermitRootLogin no")

let expected_procs = function
  | Nginx -> 2 (* master + worker *)
  | Httpd -> 1 + Httpd.servers
  | Vsftpd | Sshd -> 1

let launch ?instr ?profiler ?version ?trace ?config kernel server =
  prepare_fs ?config kernel server;
  let version = Option.value version ~default:(base_version server) in
  let m = Manager.launch kernel ?instr ?profiler ?trace version in
  (* With quiescence instrumentation on, startup completion is observable;
     baseline/profiling runs just advance time until the tree settles. *)
  ignore
    (K.run_until kernel
       ~max_ns:(K.clock_ns kernel + 5_000_000_000)
       (fun () -> List.length (Manager.images m) >= expected_procs server));
  ignore (K.run_until kernel ~max_ns:(K.clock_ns kernel + 200_000_000) (fun () -> false));
  m

let benchmark kernel server ?(scale = 100) () =
  match server with
  | Nginx ->
      Http_bench.run kernel ~port:Nginx.port ~requests:(max 1 (100_000 / scale))
        ~path:"/index.html" ()
  | Httpd ->
      Http_bench.run kernel ~port:Httpd.port ~requests:(max 1 (100_000 / scale))
        ~path:"/index.html" ()
  | Vsftpd ->
      Ftp_bench.run kernel ~port:Vsftpd.port ~users:(max 1 (100 / max 1 (scale / 25)))
        ~file:"big.bin" ()
  | Sshd -> Ssh_bench.run kernel ~port:Sshd.port ~sessions:8 ~commands:4 ()

let open_holders kernel server ~n =
  let h =
    match server with
    | Nginx -> Holders.open_http kernel ~port:Nginx.port ~n
    | Httpd -> Holders.open_http kernel ~port:Httpd.port ~n
    | Vsftpd -> Holders.open_ftp kernel ~port:Vsftpd.port ~n
    | Sshd -> Holders.open_ssh kernel ~port:Sshd.port ~n
  in
  ignore (Client.drive kernel (fun () -> Holders.connected h >= n));
  (* client-side connects land in the backlog; give the server time to
     accept and register every held connection *)
  K.run_for kernel 100_000_000;
  h

let profiling_workload kernel server =
  let transient = open_holders kernel server ~n:2 in
  let persistent = open_holders kernel server ~n:2 in
  (match server with
  | Nginx -> ignore (Http_bench.run kernel ~port:Nginx.port ~requests:3 ~path:"/big.bin" ())
  | Httpd -> ignore (Http_bench.run kernel ~port:Httpd.port ~requests:3 ~path:"/big.bin" ())
  | Vsftpd ->
      ignore (Ftp_bench.run kernel ~port:Vsftpd.port ~users:2 ~file:"big.bin" ())
  | Sshd -> ignore (Ssh_bench.run kernel ~port:Sshd.port ~sessions:2 ~commands:2 ()));
  (* closing one group resumes (and thereby profiles) the blocked handler
     threads/processes; the other group keeps those classes long-lived *)
  Holders.close_all transient;
  ignore (Client.drive kernel (fun () -> Holders.all_done transient));
  persistent
