(** The OpenSSH built-in-test-suite analog: sessions that authenticate and
    run a series of commands. *)

val run :
  Mcr_simos.Kernel.t -> port:int -> sessions:int -> ?commands:int -> unit -> Bench_result.t
