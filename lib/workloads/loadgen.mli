(** Open-loop Poisson-arrival load driver.

    Unlike the closed-loop benchmark clients ({!Http_bench} etc.), which
    under-report update stalls through coordinated omission, this driver
    draws every request's arrival time up front from a seeded exponential
    inter-arrival stream and measures latency from the {e scheduled}
    arrival — so an update window is charged to every request it delayed,
    which is what a client fleet actually observes at p99/p99.9.

    All client processes are pre-spawned (spawning costs virtual time)
    and sleep until their scheduled arrival, so the driver sustains
    10k+ concurrent in-flight requests on the virtual clock. Each request
    is stamped submit / first-byte / complete into HDR-style log-bucketed
    histograms ({!Mcr_util.Stats.log_ns_bounds}), optionally mirrored into
    a metrics registry as [mcr_request_latency_ns] (plus
    [mcr_requests_issued/completed/errored_total] and the
    [mcr_requests_in_flight] gauge) and emitted as [request.*] trace
    spans (category ["request"]).

    Determinism: same seed, same kernel state — identical arrival
    schedule, identical histograms. *)

type t

type record = {
  rq_id : int;
  rq_scheduled_ns : int;  (** Open-loop submit instant (absolute). *)
  rq_first_byte_ns : int;  (** First server byte; -1 if none arrived. *)
  rq_complete_ns : int;
  rq_retries : int;  (** ECONNREFUSED-driven reconnect attempts. *)
  rq_ok : bool;
}

val start :
  Mcr_simos.Kernel.t ->
  server:Testbed.server ->
  ?seed:int ->
  ?metrics:Mcr_obs.Metrics.t ->
  ?trace:Mcr_obs.Trace.t ->
  rate:int ->
  requests:int ->
  unit ->
  t
(** Spawn [requests] client processes arriving at [rate] requests per
    second of virtual time (Poisson). Returns immediately; the clients run
    whenever the kernel is driven (including inside [Manager.update]).
    Pass the manager's registry as [metrics] to surface request latency in
    [mcr-ctl STATS] and [Manager.report]; give the driver its own [trace]
    sink so request spans don't evict update-pipeline spans. *)

val finished : t -> bool
(** Every client process has exited. *)

val drive : ?max_s:int -> t -> unit
(** Run the kernel until {!finished} (bounded by [max_s] virtual seconds,
    default 3600). *)

val issued : t -> int
val completed : t -> int
val errored : t -> int

val refused_retries : t -> int
(** Total ECONNREFUSED reconnect attempts across all requests — the
    retry-storm signal request parking exists to eliminate. *)

val peak_in_flight : t -> int
(** High-water mark of concurrently outstanding requests under the
    open-loop definition: a request is outstanding from its {e scheduled}
    arrival until completion (max-overlap sweep over the records), the
    same no-coordinated-omission rule the latency stamps follow. *)

val latency : t -> Mcr_util.Stats.hist
(** Scheduled-arrival -> completion histogram (copy). *)

val ttfb : t -> Mcr_util.Stats.hist
(** Scheduled-arrival -> first-server-byte histogram (copy). *)

val summary : t -> Mcr_util.Stats.hist_summary
(** Tail summary of {!latency}. *)

val exact_percentile : t -> float -> int
(** Exact percentile over the per-request records (no bucket error) —
    use for comparisons too fine for the histogram's bucket width. *)

val records : t -> record list
(** Per-request stamps for completed requests, in request-id order. *)

val requests_json : t -> string
(** {!records} in [mcr-postmortem --requests] dialect
    ({!Mcr_obs.Client_impact.reqs_to_json}): pair with the update's flight
    record to attribute stalled requests to waterfall segments. *)

val latency_metric : string
(** The registry histogram name ([mcr_request_latency_ns]). *)

val server : t -> Testbed.server
val total : t -> int
