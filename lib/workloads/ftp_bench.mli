(** The pyftpdlib-benchmark analog: concurrent FTP users logging in and
    retrieving a file (the paper: "100 users ... retrieve a 1 MB file"). *)

val run :
  Mcr_simos.Kernel.t ->
  port:int ->
  users:int ->
  ?retrievals:int ->
  file:string ->
  unit ->
  Bench_result.t
(** Each user: connect, USER/PASS, [retrievals] (default 1) RETRs, QUIT. *)
