(* Simulated clients: the building blocks every workload shares. *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module Aspace = Mcr_vmem.Aspace

let spawn kernel name body =
  K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name ~entry:"main"
    ~main:body ()

let connect ?(attempts = 500) port =
  let rec go n =
    match K.syscall (S.Connect { port }) with
    | S.Ok_fd fd -> Some fd
    | S.Err S.ECONNREFUSED when n > 0 ->
        ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
        go (n - 1)
    | _ -> None
  in
  go attempts

let send fd data = ignore (K.syscall (S.Write { fd; data }))

let recv ?(max = 1 lsl 20) fd =
  match K.syscall (S.Read { fd; max; nonblock = false }) with
  | S.Ok_data d -> Some d
  | _ -> None

let close fd = ignore (K.syscall (S.Close { fd }))

(* drive the kernel until a predicate holds; workloads are finite so a
   generous virtual deadline doubles as a hang detector *)
let drive ?(max_s = 3600) kernel pred =
  K.run_until kernel ~max_ns:(K.clock_ns kernel + (max_s * 1_000_000_000)) pred
