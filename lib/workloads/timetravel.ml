(* Offline time travel over persistent checkpoint images. An image snapped
   at an update's quiescent point holds everything needed to re-run that
   update outside production: the program bytes, the exact policy, the
   target version tag and (once the attempt finished) the flight record it
   produced. Restoring the image into a fresh kernel and re-running the
   update is fully deterministic, so the offline verdict either reproduces
   the recorded one — confirming the flight record explains the outcome —
   or it does not, which is itself a finding (the rollback depended on
   state outside the checkpoint). *)

module K = Mcr_simos.Kernel
module P = Mcr_program.Progdef
module Manager = Mcr_core.Manager
module Policy = Mcr_core.Policy
module Flight = Mcr_obs.Flight
module Image = Mcr_image.Image

(* Images record the progdef's program name (e.g. "httpd"), which is not
   always the testbed's display name ("Apache httpd") — accept either. *)
let server_of_prog prog =
  List.find_opt
    (fun s ->
      Testbed.name s = prog || (Testbed.base_version s).P.prog = prog)
    Testbed.all

let version_of_tag server tag =
  List.find_opt
    (fun (v : P.version) -> v.P.version_tag = tag)
    (Testbed.version_series server)

let restore img =
  match server_of_prog (Image.prog img) with
  | None -> Error (Printf.sprintf "image holds unknown program %S" (Image.prog img))
  | Some server -> (
      match version_of_tag server (Image.version_tag img) with
      | None ->
          Error
            (Printf.sprintf "no %s version tagged %s" (Image.prog img)
               (Image.version_tag img))
      | Some version -> (
          let kernel = K.create () in
          let m = Testbed.launch ~version kernel server in
          match Manager.restore_image m img with
          | Error e -> Error e
          | Ok report -> Ok (kernel, m, report)))

type verdict = {
  v_reproduced : bool;
  v_expected_success : bool;
  v_got_success : bool;
  v_expected_reason : string option;
  v_got_reason : string option;
  v_expected_stage : string option;
  v_got_stage : string option;
  v_fingerprint : int;
}

let pp_verdict ppf v =
  let opt = Option.value ~default:"-" in
  Format.fprintf ppf
    "@[<v>recorded: %s%s@,replayed: %s%s@,verdict: %s@]"
    (if v.v_expected_success then "COMMIT" else "ROLLBACK")
    (match v.v_expected_reason with
    | None -> ""
    | Some r -> Printf.sprintf " (%s @ %s)" r (opt v.v_expected_stage))
    (if v.v_got_success then "COMMIT" else "ROLLBACK")
    (match v.v_got_reason with
    | None -> ""
    | Some r -> Printf.sprintf " (%s @ %s)" r (opt v.v_got_stage))
    (if v.v_reproduced then "REPRODUCED" else "NOT REPRODUCED")

let explanation_parts = function
  | None -> (None, None)
  | Some (e : Flight.explanation) -> (Some e.Flight.e_reason, Some e.Flight.e_stage)

let replay img =
  match Image.flight_json img with
  | None -> Error "image carries no flight record (not snapped by an update attempt)"
  | Some flight_json -> (
      match Flight.of_json flight_json with
      | Error e -> Error ("embedded flight record does not parse: " ^ e)
      | Ok recorded -> (
          match Image.target_tag img with
          | None -> Error "image carries no update target tag"
          | Some target -> (
              match restore img with
              | Error e -> Error e
              | Ok (_kernel, m, _install) -> (
                  match server_of_prog (Image.prog img) with
                  | None -> Error "unreachable: program vanished after restore"
                  | Some server -> (
                      match version_of_tag server target with
                      | None ->
                          Error
                            (Printf.sprintf "no %s version tagged %s" (Image.prog img)
                               target)
                      | Some target_version ->
                          let policy =
                            match Image.policy_text img with
                            | None -> Policy.default
                            | Some text -> (
                                match Policy.of_kv text with
                                | Ok p -> p
                                | Error _ -> Policy.default)
                          in
                          let _, report = Manager.update m ~policy target_version in
                          let expected_reason, expected_stage =
                            explanation_parts recorded.Flight.f_explanation
                          in
                          let got_reason, got_stage =
                            explanation_parts report.Manager.flight.Flight.f_explanation
                          in
                          let reproduced =
                            report.Manager.success = recorded.Flight.f_success
                            && (recorded.Flight.f_success
                               || (expected_reason = got_reason
                                  && expected_stage = got_stage))
                          in
                          Ok
                            {
                              v_reproduced = reproduced;
                              v_expected_success = recorded.Flight.f_success;
                              v_got_success = report.Manager.success;
                              v_expected_reason = expected_reason;
                              v_got_reason = got_reason;
                              v_expected_stage = expected_stage;
                              v_got_stage = got_stage;
                              v_fingerprint = Image.fingerprint img;
                            })))))

let replay_path ~path =
  match Image.read ~path with
  | Error e -> Error (Image.error_to_string e)
  | Ok img -> replay img
