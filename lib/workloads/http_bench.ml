module K = Mcr_simos.Kernel

module S = Mcr_simos.Sysdefs

let run kernel ~port ?(concurrency = 4) ?(think_ns = 0) ~requests ~path () =
  let ok = ref 0 and errors = ref 0 and bytes = ref 0 in
  let start = K.clock_ns kernel in
  let per_client = requests / concurrency in
  let extra = requests - (per_client * concurrency) in
  let clients =
    List.init concurrency (fun i ->
        let n = per_client + if i < extra then 1 else 0 in
        Client.spawn kernel
          (Printf.sprintf "ab-%d" i)
          (fun _ ->
            for _ = 1 to n do
              if think_ns > 0 then ignore (K.syscall (S.Nanosleep { ns = think_ns }));
              match Client.connect port with
              | None -> incr errors
              | Some fd -> (
                  Client.send fd ("GET " ^ path);
                  (match Client.recv fd with
                  | Some reply when String.length reply >= 3 && String.sub reply 0 3 = "200" ->
                      incr ok;
                      bytes := !bytes + String.length reply
                  | Some _ | None -> incr errors);
                  Client.close fd)
            done))
  in
  ignore (Client.drive kernel (fun () -> List.for_all (fun p -> not (K.alive p)) clients));
  {
    Bench_result.requests = !ok;
    errors = !errors;
    bytes = !bytes;
    elapsed_ns = K.clock_ns kernel - start;
  }
