(** Shared experiment setup: one entry point per evaluated server covering
    filesystem fixtures, launch-and-settle, the paper's benchmark workload,
    the profiling workload, and held connections. The benchmark harness and
    the examples both build on this. *)

type server = Nginx | Httpd | Vsftpd | Sshd

val all : server list
val name : server -> string
val port : server -> int

val base_version : server -> Mcr_program.Progdef.version
val final_version : server -> Mcr_program.Progdef.version
val version_series : server -> Mcr_program.Progdef.version list
val meta : server -> Mcr_servers.Table_meta.t

val prepare_fs : ?config:string -> Mcr_simos.Kernel.t -> server -> unit
(** Config files, a 1 KB HTML file ([/www/index.html]), a 1 MB FTP payload
    ([big.bin]). [?config] overrides the server's config-file content —
    the downtime benchmark uses it to set per-connection buffer ballast
    ([conn_buffer_words] / [ConnBufferWords]). *)

val launch :
  ?instr:Mcr_program.Instr.t ->
  ?profiler:Mcr_quiesce.Profiler.t ->
  ?version:Mcr_program.Progdef.version ->
  ?trace:Mcr_obs.Trace.t ->
  ?config:string ->
  Mcr_simos.Kernel.t ->
  server ->
  Mcr_core.Manager.t
(** Prepare the fs, launch, and drive the kernel until the whole process
    tree has settled (children created and quiescent-ready). Works for both
    instrumented and baseline/profiling configurations. [?trace] threads an
    observability sink into the manager ({!Mcr_core.Manager.launch});
    [?config] overrides the config-file content ({!prepare_fs}). *)

val benchmark : Mcr_simos.Kernel.t -> server -> ?scale:int -> unit -> Bench_result.t
(** The paper's benchmark: AB (100k requests, 1 KB file) for the web
    servers, pyftpdlib (100 users, 1 MB file) for vsftpd, the test-suite
    analog for sshd — divided by [scale] (default 100) to keep simulation
    wall-clock reasonable. *)

val open_holders : Mcr_simos.Kernel.t -> server -> n:int -> Holders.t
(** Long-lived connections of the kind Figure 3 holds open; drives the
    kernel until all are established. *)

val profiling_workload : Mcr_simos.Kernel.t -> server -> Holders.t
(** The Table 1 profiling workload: long-lived connections plus one request
    for a very large file in parallel. One holder group is closed before
    return (so dynamically spawned handler classes produce blocking
    statistics and short-lived classes are observable); a second group is
    returned still open (so those classes are long-lived at report time) —
    close it after taking the profiler report. *)
