module K = Mcr_simos.Kernel

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let run kernel ~port ~sessions ?(commands = 3) () =
  let ok = ref 0 and errors = ref 0 and bytes = ref 0 in
  let start = K.clock_ns kernel in
  let clients =
    List.init sessions (fun i ->
        Client.spawn kernel
          (Printf.sprintf "ssh-%d" i)
          (fun _ ->
            match Client.connect port with
            | None -> incr errors
            | Some fd ->
                let cmd c = Client.send fd c; Client.recv fd in
                let _banner = Client.recv fd in
                (match cmd (Printf.sprintf "AUTH user%d" i) with
                | Some r when contains r "auth-ok" ->
                    for j = 1 to commands do
                      match cmd (Printf.sprintf "RUN cmd%d" j) with
                      | Some reply when contains reply "out:" ->
                          incr ok;
                          bytes := !bytes + String.length reply
                      | Some _ | None -> incr errors
                    done
                | Some _ | None -> incr errors);
                let _ = cmd "EXIT" in
                Client.close fd))
  in
  ignore (Client.drive kernel (fun () -> List.for_all (fun p -> not (K.alive p)) clients));
  {
    Bench_result.requests = !ok;
    errors = !errors;
    bytes = !bytes;
    elapsed_ns = K.clock_ns kernel - start;
  }
