(** Memory regions.

    Every mapping in an address space is classified by the role it plays in
    the program image. Mutable tracing's statistics (Table 2 of the paper)
    classify pointer sources and targets by exactly these region kinds. *)

type kind =
  | Static  (** Globals, strings, program image — inherited via linker script. *)
  | Heap    (** Allocator-managed memory. *)
  | Stack   (** Per-thread stacks (stack-variable metadata overlays). *)
  | Lib     (** Shared-library state — uninstrumented by default. *)
  | Mmap    (** Memory-mapped objects (remapped with MAP_FIXED). *)

type t = {
  base : Addr.t;
  size : int;  (** Bytes; always page-aligned. *)
  kind : kind;
  name : string;
}

val kind_to_string : kind -> string

val contains : t -> Addr.t -> bool
(** [contains r a] is true when [a] falls inside the region. *)

val limit : t -> Addr.t
(** One past the last byte. *)

val overlaps : t -> base:Addr.t -> size:int -> bool
(** Intersection test against a candidate mapping. *)

val pp : Format.formatter -> t -> unit
