type t = int

let word_size = 8
let page_size = 4096
let words_per_page = page_size / word_size

let null = 0

let is_aligned a = a land (word_size - 1) = 0

let align_up a = (a + word_size - 1) land lnot (word_size - 1)

let page_of a = a / page_size

let page_base a = a land lnot (page_size - 1)

let page_offset a = a land (page_size - 1)

let word_index a =
  assert (is_aligned a);
  page_offset a / word_size

let add a n = a + n

let add_words a n = a + (n * word_size)

let pp ppf a = Format.fprintf ppf "0x%x" a

let to_string a = Format.asprintf "%a" pp a
