(** Per-process virtual address spaces.

    An address space is a set of page-backed {!Region.t} mappings holding
    8-byte words. Pointers are stored as plain integer words — the ambiguity
    that makes conservative tracing necessary is real here, not simulated
    away.

    Pages are views onto refcounted {e frames}. Normally a page owns its
    frame exclusively; state transfer may {!share_page} a byte-identical
    frame into another address space (the zero-copy remap), after which any
    write through either page copies the frame first (copy-on-write), so
    neither image can mutate the other.

    Dirtiness mirrors the Linux soft-dirty mechanism MCR builds on, but is
    generation-based: every tracked write bumps the space-wide {!write_seq}
    and stamps the page. A consumer owns a named {e epoch} — a saved mark —
    and a page is dirty in that epoch iff it was written after the mark
    ({!epoch_reset}/{!epoch_page_dirty}). Arbitrarily many consumers (the
    startup checkpoint, pre-copy delta rounds, benches) coexist without
    clobbering each other. The named-epoch API is the only spelling: the
    startup checkpoint owns the ["startup"] epoch like any other
    consumer. *)

type t

exception Fault of Addr.t
(** Raised on access to an unmapped or misaligned address — the simulated
    SIGSEGV. *)

val create : ?layout_bias:int -> unit -> t
(** [create ()] is an empty address space. [layout_bias] shifts the default
    placement base of every region kind by that many pages, emulating the
    address-space layout differences between program versions (ASLR,
    recompilation) that force mutable tracing to relocate objects. *)

val layout_bias : t -> int

val clone : t -> t
(** Deep copy: pages, regions, epochs and dirty stamps. Every cloned page
    gets a private frame. Used by process spawn (the fork analog). *)

type placement =
  | Fixed of Addr.t  (** Map exactly here (MAP_FIXED); fails on overlap. *)
  | Near of Region.kind  (** First free gap in the kind's customary area. *)

val map : t -> ?name:string -> placement -> size:int -> Region.kind -> Addr.t
(** [map t placement ~size kind] creates a zeroed mapping and returns its
    base. [size] is rounded up to whole pages.
    @raise Invalid_argument on overlap with an existing region. *)

val unmap : t -> Addr.t -> unit
(** [unmap t base] removes the region based at [base], releasing each
    page's frame reference.
    @raise Not_found if no region has that base. *)

val regions : t -> Region.t list
(** All regions, sorted by base address. *)

val find_region : t -> Addr.t -> Region.t option
(** The region containing an address, if any. *)

val is_mapped_word : t -> Addr.t -> bool
(** True when the address is word-aligned and inside a mapping. *)

val read_word : t -> Addr.t -> int
(** @raise Fault on unmapped or unaligned access. *)

val write_word : t -> Addr.t -> int -> unit
(** Tracked write: bumps {!write_seq} and stamps the page (making it dirty
    in every epoch whose mark precedes the new sequence value). Breaks
    frame sharing first. @raise Fault as {!read_word}. *)

val write_word_untracked : t -> Addr.t -> int -> unit
(** Write without advancing dirty tracking. Used when the kernel itself
    populates memory (image loading, state transfer into the new version),
    which must not pollute any consumer's epoch. Still breaks frame
    sharing — untracked does not mean invisible. *)

val fold_words : t -> Addr.t -> words:int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** [fold_words t a ~words ~init ~f] folds [f] over the [words] consecutive
    words starting at [a], resolving each page once (a page cursor) instead
    of one hash lookup per word. @raise Fault as {!read_word}. *)

val copy_words : src:t -> Addr.t -> dst:t -> Addr.t -> words:int -> unit
(** Cross-space copy; tracked on the destination side as untracked writes
    (state transfer is a kernel-mediated operation). Pages are resolved
    once per run on each side, not once per word. *)

val copy_words_tracked : src:t -> Addr.t -> dst:t -> Addr.t -> words:int -> unit
(** Like {!copy_words} but with the exact observable semantics of a
    {!write_word} per word on the destination: the write sequence advances
    by one per word and each page's last-write stamp is the sequence value
    after the final word written to it. Used for in-place copies the
    program could itself have made. *)

(** {2 Dirty epochs} *)

val epoch_reset : t -> name:string -> unit
(** Begin (or restart) the named consumer's tracking epoch: its mark
    becomes the current {!write_seq}. Creating an epoch is implicit. *)

val epoch_mark : t -> name:string -> int
(** The named epoch's mark (0 if it was never reset — everything ever
    written counts as dirty). *)

val epoch_find : t -> name:string -> int option
(** Like {!epoch_mark} but [None] when the epoch has never been created —
    lets a delta-round consumer distinguish "first round" from "mark 0". *)

val epoch_remove : t -> name:string -> unit
(** Forget the named epoch entirely, returning it to the never-created
    state ({!epoch_find} yields [None]). A consumer whose session ended
    (e.g. a rolled-back update's pre-copy) removes its epoch so a later
    session starts from "first round", not from a stale mark. *)

val epoch_page_dirty : t -> name:string -> Addr.t -> bool
(** Whether the page containing the address saw a tracked write after the
    named epoch's mark. Unmapped pages are never dirty. *)

val epoch_range_dirty : t -> name:string -> Addr.t -> words:int -> bool
(** Whether any page overlapping [\[addr, addr + words)] is dirty in the
    named epoch. *)

val epoch_dirty_pages : t -> name:string -> Addr.t list
(** Base addresses of the named epoch's dirty pages, sorted ascending. *)

val write_seq : t -> int
(** Monotone per-space write sequence number, bumped by every tracked
    write. Epoch marks are saved values of this counter; raw marks remain
    available for consumers that manage their own storage. *)

val page_written_since : t -> Addr.t -> seq:int -> bool
(** Whether the page containing the address has seen a tracked write after
    the given {!write_seq} mark. Unmapped pages are never "written". *)

val range_written_since : t -> Addr.t -> words:int -> seq:int -> bool
(** Whether any page overlapping [\[addr, addr + words)] has seen a tracked
    write after the mark. *)

(** {2 Inherited content and zero-copy page remap} *)

val mark_inherited : t -> Addr.t -> words:int -> unit
(** Taint the pages overlapping [\[addr, addr + words)] as holding content
    installed by state transfer rather than by this program's own startup.
    Inherited content diverges permanently from what deterministic startup
    replay would re-create, so object-graph analysis must treat it as dirty
    in every later update even though the installing stores were
    untracked. The taint survives across updates (transfer re-marks the
    pages it populates in each new image). *)

val page_inherited : t -> Addr.t -> bool
(** Whether the page containing the address carries the inherited taint. *)

val share_page : src:t -> Addr.t -> dst:t -> Addr.t -> unit
(** [share_page ~src src_page ~dst dst_page] remaps [src]'s frame into
    [dst]: the destination page drops its own frame and references the
    source frame (refcount +1). Only correct when the two pages are already
    byte-identical — the caller (state transfer) verifies equality first,
    so sharing never changes observable content, only the transfer cost.
    The destination page is marked inherited.
    @raise Invalid_argument unless both addresses are page-aligned.
    @raise Fault if either page is unmapped. *)

val shared_frame_count : t -> int
(** Number of pages whose frame is shared with another page ([refs > 1]) —
    the refcount-leak witness: outside an update window this must be 0. *)

val detach_shared : t -> int
(** Give every shared page a private frame copy and release the shared
    reference; returns the number of pages detached. The manager calls
    this on the dying side of an update (new members on rollback, old
    images on commit) so frame sharing never outlives the window. *)

(** {2 Checkpoint export/import}

    Kernel-mediated operations used by the persistent checkpoint image
    (lib/image): a save exports the exact dirty-tracking state alongside
    page contents, and a restore re-installs it so that dirty-only and
    pre-copy updates on the restored instance behave exactly as they would
    have on the original. *)

type page_state = {
  ps_page : Addr.t;  (** Page base address. *)
  ps_last_write_seq : int;
  ps_touched : bool;
  ps_inherited : bool;
}

val page_states : t -> page_state list
(** Per-page dirty-tracking state for every mapped page, sorted by page
    base address. *)

val restore_page_state : t -> page_state -> unit
(** Re-stamp the page based at [ps_page] with the saved state. Does not
    touch page contents.
    @raise Invalid_argument unless the address is page-aligned.
    @raise Fault if the page is unmapped. *)

val epochs : t -> (string * int) list
(** Every named epoch with its mark, sorted by name. *)

val set_write_seq : t -> int -> unit
(** Overwrite the space-wide write sequence counter. Only meaningful while
    restoring a checkpoint image — epoch marks and page stamps saved
    against the original counter are only valid once it is re-installed
    too. *)

val restore_epochs : t -> (string * int) list -> unit
(** Replace the whole epoch table with the given [(name, mark)] entries —
    the restore-side counterpart of {!epochs}. Epochs the live space had
    but the checkpoint did not are forgotten. *)

val resident_bytes : t -> int
(** Total bytes of mapped pages. *)

val touched_bytes : t -> int
(** Bytes of pages ever written — the RSS analog (Linux only backs pages
    with frames when touched). *)

val pp : Format.formatter -> t -> unit
(** Region map listing, /proc/pid/maps style. *)
