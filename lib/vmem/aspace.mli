(** Per-process virtual address spaces.

    An address space is a set of page-backed {!Region.t} mappings holding
    8-byte words. Pointers are stored as plain integer words — the ambiguity
    that makes conservative tracing necessary is real here, not simulated
    away.

    Soft-dirty tracking mirrors the Linux mechanism MCR builds on: after
    {!clear_soft_dirty}, the first write to a page sets its soft-dirty bit;
    {!soft_dirty_pages} retrieves the set, with no per-access cost once a
    page is dirty. *)

type t

exception Fault of Addr.t
(** Raised on access to an unmapped or misaligned address — the simulated
    SIGSEGV. *)

val create : ?layout_bias:int -> unit -> t
(** [create ()] is an empty address space. [layout_bias] shifts the default
    placement base of every region kind by that many pages, emulating the
    address-space layout differences between program versions (ASLR,
    recompilation) that force mutable tracing to relocate objects. *)

val layout_bias : t -> int

val clone : t -> t
(** Deep copy: pages, regions and soft-dirty bits. Used by process spawn
    (the fork analog). *)

type placement =
  | Fixed of Addr.t  (** Map exactly here (MAP_FIXED); fails on overlap. *)
  | Near of Region.kind  (** First free gap in the kind's customary area. *)

val map : t -> ?name:string -> placement -> size:int -> Region.kind -> Addr.t
(** [map t placement ~size kind] creates a zeroed mapping and returns its
    base. [size] is rounded up to whole pages.
    @raise Invalid_argument on overlap with an existing region. *)

val unmap : t -> Addr.t -> unit
(** [unmap t base] removes the region based at [base].
    @raise Not_found if no region has that base. *)

val regions : t -> Region.t list
(** All regions, sorted by base address. *)

val find_region : t -> Addr.t -> Region.t option
(** The region containing an address, if any. *)

val is_mapped_word : t -> Addr.t -> bool
(** True when the address is word-aligned and inside a mapping. *)

val read_word : t -> Addr.t -> int
(** @raise Fault on unmapped or unaligned access. *)

val write_word : t -> Addr.t -> int -> unit
(** Tracked write: marks the page soft-dirty. @raise Fault as {!read_word}. *)

val write_word_untracked : t -> Addr.t -> int -> unit
(** Write without touching the soft-dirty bit. Used when the kernel itself
    populates memory (image loading, state transfer into the new version),
    which must not pollute dirty tracking. *)

val fold_words : t -> Addr.t -> words:int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** [fold_words t a ~words ~init ~f] folds [f] over the [words] consecutive
    words starting at [a], resolving each page once (a page cursor) instead
    of one hash lookup per word. @raise Fault as {!read_word}. *)

val copy_words : src:t -> Addr.t -> dst:t -> Addr.t -> words:int -> unit
(** Cross-space copy; tracked on the destination side as untracked writes
    (state transfer is a kernel-mediated operation). Pages are resolved
    once per run on each side, not once per word. *)

val copy_words_tracked : src:t -> Addr.t -> dst:t -> Addr.t -> words:int -> unit
(** Like {!copy_words} but with the exact observable semantics of a
    {!write_word} per word on the destination: the write sequence advances
    by one per word, every touched page becomes soft-dirty, and each page's
    last-write mark is the sequence value after the final word written to
    it. Used for in-place copies the program could itself have made. *)

val clear_soft_dirty : t -> unit
(** Reset all soft-dirty bits; begins a tracking epoch. *)

val soft_dirty_pages : t -> Addr.t list
(** Base addresses of pages written since the last {!clear_soft_dirty},
    sorted ascending. *)

val is_page_dirty : t -> Addr.t -> bool
(** Soft-dirty bit of the page containing the address. *)

val write_seq : t -> int
(** Monotone per-space write sequence number, bumped by every tracked
    write. Unlike the single soft-dirty epoch (owned by the startup
    checkpoint), arbitrarily many observers can each remember a mark and
    later ask what changed — this is what pre-copy delta rounds use, so
    they never have to clear the soft-dirty bits the transfer engine
    depends on. *)

val page_written_since : t -> Addr.t -> seq:int -> bool
(** Whether the page containing the address has seen a tracked write after
    the given {!write_seq} mark. Unmapped pages are never "written". *)

val range_written_since : t -> Addr.t -> words:int -> seq:int -> bool
(** Whether any page overlapping [\[addr, addr + words)] has seen a tracked
    write after the mark. *)

val resident_bytes : t -> int
(** Total bytes of mapped pages. *)

val touched_bytes : t -> int
(** Bytes of pages ever written — the RSS analog (Linux only backs pages
    with frames when touched). *)

val pp : Format.formatter -> t -> unit
(** Region map listing, /proc/pid/maps style. *)
