type page = {
  words : int array;
  mutable soft_dirty : bool;
  mutable touched : bool;
  mutable last_write_seq : int;
}

type t = {
  pages : (int, page) Hashtbl.t;
  mutable region_list : Region.t list; (* sorted by base *)
  bias : int;
  mutable wseq : int;
}

exception Fault of Addr.t

let create ?(layout_bias = 0) () =
  { pages = Hashtbl.create 64; region_list = []; bias = layout_bias; wseq = 0 }

let layout_bias t = t.bias

let clone t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter
    (fun k p ->
      Hashtbl.add pages k
        {
          words = Array.copy p.words;
          soft_dirty = p.soft_dirty;
          touched = p.touched;
          last_write_seq = p.last_write_seq;
        })
    t.pages;
  { pages; region_list = t.region_list; bias = t.bias; wseq = t.wseq }

type placement = Fixed of Addr.t | Near of Region.kind

(* Customary placement areas, loosely modeled on a 32-bit Linux layout
   (the paper's testbed). Biased per address space to emulate cross-version
   layout changes. *)
let kind_base t = function
  | Region.Static -> 0x08048000 + (t.bias * Addr.page_size)
  | Region.Heap -> 0x09000000 + (t.bias * Addr.page_size)
  | Region.Mmap -> 0x30000000 + (t.bias * Addr.page_size)
  | Region.Lib -> 0x40000000 + (t.bias * Addr.page_size)
  | Region.Stack -> 0x7f000000 + (t.bias * Addr.page_size)

let round_pages size = (size + Addr.page_size - 1) land lnot (Addr.page_size - 1)

let overlaps_any t ~base ~size =
  List.exists (fun r -> Region.overlaps r ~base ~size) t.region_list

(* First gap of [size] bytes at or after [from], skipping existing regions. *)
let find_gap t ~from ~size =
  let rec search base = function
    | [] -> base
    | (r : Region.t) :: rest ->
        if base + size <= r.base then base
        else if base >= Region.limit r then search base rest
        else search (Region.limit r) rest
  in
  search from (List.filter (fun (r : Region.t) -> Region.limit r > from) t.region_list)

let insert_region t (r : Region.t) =
  t.region_list <-
    List.sort (fun (a : Region.t) (b : Region.t) -> compare a.base b.base) (r :: t.region_list)

let map t ?(name = "") placement ~size kind =
  if size <= 0 then invalid_arg "Aspace.map: size must be positive";
  let size = round_pages size in
  let base =
    match placement with
    | Fixed base ->
        if base land (Addr.page_size - 1) <> 0 then
          invalid_arg "Aspace.map: fixed base must be page-aligned";
        if overlaps_any t ~base ~size then
          invalid_arg
            (Format.asprintf "Aspace.map: fixed mapping %a+%d overlaps" Addr.pp base size);
        base
    | Near k -> find_gap t ~from:(kind_base t k) ~size
  in
  let first_page = Addr.page_of base in
  let npages = size / Addr.page_size in
  for i = 0 to npages - 1 do
    Hashtbl.replace t.pages (first_page + i)
      {
        words = Array.make Addr.words_per_page 0;
        soft_dirty = false;
        touched = false;
        last_write_seq = 0;
      }
  done;
  insert_region t { Region.base; size; kind; name };
  base

let unmap t base =
  let r =
    match List.find_opt (fun (r : Region.t) -> r.base = base) t.region_list with
    | Some r -> r
    | None -> raise Not_found
  in
  let first_page = Addr.page_of r.base in
  let npages = r.size / Addr.page_size in
  for i = 0 to npages - 1 do
    Hashtbl.remove t.pages (first_page + i)
  done;
  t.region_list <- List.filter (fun (x : Region.t) -> x.base <> base) t.region_list

let regions t = t.region_list

let find_region t a = List.find_opt (fun r -> Region.contains r a) t.region_list

let page_for t a =
  if a <= 0 || not (Addr.is_aligned a) then raise (Fault a);
  match Hashtbl.find_opt t.pages (Addr.page_of a) with
  | Some p -> p
  | None -> raise (Fault a)

let is_mapped_word t a =
  a > 0 && Addr.is_aligned a && Hashtbl.mem t.pages (Addr.page_of a)

let read_word t a =
  let p = page_for t a in
  p.words.(Addr.word_index a)

let write_word t a v =
  let p = page_for t a in
  p.words.(Addr.word_index a) <- v;
  p.soft_dirty <- true;
  p.touched <- true;
  t.wseq <- t.wseq + 1;
  p.last_write_seq <- t.wseq

let write_word_untracked t a v =
  let p = page_for t a in
  p.words.(Addr.word_index a) <- v;
  p.touched <- true

let copy_words ~src src_addr ~dst dst_addr ~words =
  for i = 0 to words - 1 do
    write_word_untracked dst (Addr.add_words dst_addr i) (read_word src (Addr.add_words src_addr i))
  done

let clear_soft_dirty t = Hashtbl.iter (fun _ p -> p.soft_dirty <- false) t.pages

let soft_dirty_pages t =
  Hashtbl.fold (fun pn p acc -> if p.soft_dirty then pn :: acc else acc) t.pages []
  |> List.sort compare
  |> List.map (fun pn -> pn * Addr.page_size)

let is_page_dirty t a =
  match Hashtbl.find_opt t.pages (Addr.page_of a) with
  | Some p -> p.soft_dirty
  | None -> false

let write_seq t = t.wseq

let page_written_since t a ~seq =
  match Hashtbl.find_opt t.pages (Addr.page_of a) with
  | Some p -> p.last_write_seq > seq
  | None -> false

let range_written_since t a ~words ~seq =
  if words <= 0 then false
  else
    let first = Addr.page_of a in
    let last = Addr.page_of (Addr.add_words a (words - 1)) in
    let rec scan pn =
      pn <= last
      && ((match Hashtbl.find_opt t.pages pn with
          | Some p -> p.last_write_seq > seq
          | None -> false)
         || scan (pn + 1))
    in
    scan first

let resident_bytes t = Hashtbl.length t.pages * Addr.page_size

let touched_bytes t =
  Hashtbl.fold (fun _ p acc -> if p.touched then acc + Addr.page_size else acc) t.pages 0

let pp ppf t =
  List.iter (fun r -> Format.fprintf ppf "%a@." Region.pp r) t.region_list
