(* Pages are split from their backing frames so state transfer can remap a
   byte-identical page into the new version's address space: both pages then
   reference one refcounted frame, and the first subsequent write to either
   side copies the frame (copy-on-write) so neither image can mutate the
   other. Dirtiness is tracked per page as a last-write generation against
   the space-wide write sequence; consumers own named epochs (saved marks)
   instead of one global soft-dirty bit, so the startup checkpoint, pre-copy
   delta rounds and benches cannot clobber each other's view. *)

type frame = { mutable words : int array; mutable refs : int }

type page = {
  mutable frame : frame;
  mutable touched : bool;
  mutable last_write_seq : int;
  mutable inherited : bool;
}

type epoch = { mutable mark : int }

type t = {
  pages : (int, page) Hashtbl.t;
  mutable regions_arr : Region.t array; (* sorted by base, disjoint *)
  bias : int;
  mutable wseq : int;
  epochs : (string, epoch) Hashtbl.t;
}

exception Fault of Addr.t

let create ?(layout_bias = 0) () =
  {
    pages = Hashtbl.create 64;
    regions_arr = [||];
    bias = layout_bias;
    wseq = 0;
    epochs = Hashtbl.create 4;
  }

let layout_bias t = t.bias

let clone t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter
    (fun k p ->
      Hashtbl.add pages k
        {
          frame = { words = Array.copy p.frame.words; refs = 1 };
          touched = p.touched;
          last_write_seq = p.last_write_seq;
          inherited = p.inherited;
        })
    t.pages;
  let epochs = Hashtbl.create (Hashtbl.length t.epochs) in
  Hashtbl.iter (fun name e -> Hashtbl.add epochs name { mark = e.mark }) t.epochs;
  { pages; regions_arr = Array.copy t.regions_arr; bias = t.bias; wseq = t.wseq; epochs }

type placement = Fixed of Addr.t | Near of Region.kind

(* Customary placement areas, loosely modeled on a 32-bit Linux layout
   (the paper's testbed). Biased per address space to emulate cross-version
   layout changes. *)
let kind_base t = function
  | Region.Static -> 0x08048000 + (t.bias * Addr.page_size)
  | Region.Heap -> 0x09000000 + (t.bias * Addr.page_size)
  | Region.Mmap -> 0x30000000 + (t.bias * Addr.page_size)
  | Region.Lib -> 0x40000000 + (t.bias * Addr.page_size)
  | Region.Stack -> 0x7f000000 + (t.bias * Addr.page_size)

let round_pages size = (size + Addr.page_size - 1) land lnot (Addr.page_size - 1)

(* Index of the region with the greatest base <= [a], or -1. Regions are
   disjoint and sorted by base, so limits are sorted too — the floor region
   is the only candidate that can contain [a]. *)
let floor_index (arr : Region.t array) a =
  let lo = ref 0 and hi = ref (Array.length arr - 1) and res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid).Region.base <= a then begin
      res := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !res

let overlaps_any t ~base ~size =
  let arr = t.regions_arr in
  let i = floor_index arr base in
  (i >= 0 && Region.overlaps arr.(i) ~base ~size)
  || (i + 1 < Array.length arr && arr.(i + 1).Region.base < base + size)

(* First gap of [size] bytes at or after [from], skipping existing regions. *)
let find_gap t ~from ~size =
  let arr = t.regions_arr in
  let n = Array.length arr in
  let start =
    let i = floor_index arr from in
    if i >= 0 && Region.limit arr.(i) > from then i else i + 1
  in
  let rec search base j =
    if j >= n then base
    else
      let r = arr.(j) in
      if base + size <= r.Region.base then base
      else if base >= Region.limit r then search base (j + 1)
      else search (Region.limit r) (j + 1)
  in
  search from start

let insert_region t (r : Region.t) =
  let arr = t.regions_arr in
  let n = Array.length arr in
  let pos = floor_index arr r.Region.base + 1 in
  let out = Array.make (n + 1) r in
  Array.blit arr 0 out 0 pos;
  Array.blit arr pos out (pos + 1) (n - pos);
  t.regions_arr <- out

let map t ?(name = "") placement ~size kind =
  if size <= 0 then invalid_arg "Aspace.map: size must be positive";
  let size = round_pages size in
  let base =
    match placement with
    | Fixed base ->
        if base land (Addr.page_size - 1) <> 0 then
          invalid_arg "Aspace.map: fixed base must be page-aligned";
        if overlaps_any t ~base ~size then
          invalid_arg
            (Format.asprintf "Aspace.map: fixed mapping %a+%d overlaps" Addr.pp base size);
        base
    | Near k -> find_gap t ~from:(kind_base t k) ~size
  in
  let first_page = Addr.page_of base in
  let npages = size / Addr.page_size in
  for i = 0 to npages - 1 do
    Hashtbl.replace t.pages (first_page + i)
      {
        frame = { words = Array.make Addr.words_per_page 0; refs = 1 };
        touched = false;
        last_write_seq = 0;
        inherited = false;
      }
  done;
  insert_region t { Region.base; size; kind; name };
  base

let unmap t base =
  let arr = t.regions_arr in
  let n = Array.length arr in
  let i = floor_index arr base in
  if i < 0 || arr.(i).Region.base <> base then raise Not_found;
  let r = arr.(i) in
  let first_page = Addr.page_of r.Region.base in
  let npages = r.Region.size / Addr.page_size in
  for j = 0 to npages - 1 do
    (match Hashtbl.find_opt t.pages (first_page + j) with
    | Some p -> p.frame.refs <- p.frame.refs - 1
    | None -> ());
    Hashtbl.remove t.pages (first_page + j)
  done;
  let out = Array.make (n - 1) r in
  Array.blit arr 0 out 0 i;
  Array.blit arr (i + 1) out i (n - 1 - i);
  t.regions_arr <- out

let regions t = Array.to_list t.regions_arr

let find_region t a =
  let arr = t.regions_arr in
  let i = floor_index arr a in
  if i >= 0 && Region.contains arr.(i) a then Some arr.(i) else None

let page_for t a =
  if a <= 0 || not (Addr.is_aligned a) then raise (Fault a);
  match Hashtbl.find_opt t.pages (Addr.page_of a) with
  | Some p -> p
  | None -> raise (Fault a)

let is_mapped_word t a =
  a > 0 && Addr.is_aligned a && Hashtbl.mem t.pages (Addr.page_of a)

let read_word t a =
  let p = page_for t a in
  p.frame.words.(Addr.word_index a)

(* Copy-on-write: any store through a page whose frame is shared first gives
   the page a private copy, so a remapped image can never mutate the image
   it borrowed the frame from. The copy is host-side bookkeeping — the
   simulated program pays only its ordinary write cost. *)
let cow (p : page) =
  if p.frame.refs > 1 then begin
    p.frame.refs <- p.frame.refs - 1;
    p.frame <- { words = Array.copy p.frame.words; refs = 1 }
  end

let write_word t a v =
  let p = page_for t a in
  cow p;
  p.frame.words.(Addr.word_index a) <- v;
  p.touched <- true;
  t.wseq <- t.wseq + 1;
  p.last_write_seq <- t.wseq

let write_word_untracked t a v =
  let p = page_for t a in
  cow p;
  p.frame.words.(Addr.word_index a) <- v;
  p.touched <- true

let fold_words t a ~words ~init ~f =
  if words <= 0 then init
  else begin
    let acc = ref init in
    let addr = ref a in
    let remaining = ref words in
    while !remaining > 0 do
      let p = page_for t !addr in
      let idx = Addr.word_index !addr in
      let n = min !remaining (Addr.words_per_page - idx) in
      for i = idx to idx + n - 1 do
        acc := f !acc p.frame.words.(i)
      done;
      remaining := !remaining - n;
      addr := Addr.add_words !addr n
    done;
    !acc
  end

let copy_words ~src src_addr ~dst dst_addr ~words =
  let remaining = ref words in
  let sa = ref src_addr and da = ref dst_addr in
  while !remaining > 0 do
    let sp = page_for src !sa and dp = page_for dst !da in
    let si = Addr.word_index !sa and di = Addr.word_index !da in
    let n =
      min !remaining (min (Addr.words_per_page - si) (Addr.words_per_page - di))
    in
    cow dp;
    Array.blit sp.frame.words si dp.frame.words di n;
    dp.touched <- true;
    remaining := !remaining - n;
    sa := Addr.add_words !sa n;
    da := Addr.add_words !da n
  done

let copy_words_tracked ~src src_addr ~dst dst_addr ~words =
  let remaining = ref words in
  let sa = ref src_addr and da = ref dst_addr in
  while !remaining > 0 do
    let sp = page_for src !sa and dp = page_for dst !da in
    let si = Addr.word_index !sa and di = Addr.word_index !da in
    let n =
      min !remaining (min (Addr.words_per_page - si) (Addr.words_per_page - di))
    in
    cow dp;
    Array.blit sp.frame.words si dp.frame.words di n;
    dp.touched <- true;
    dst.wseq <- dst.wseq + n;
    dp.last_write_seq <- dst.wseq;
    remaining := !remaining - n;
    sa := Addr.add_words !sa n;
    da := Addr.add_words !da n
  done

(* ------------------------------------------------------------------ *)
(* Dirty epochs *)

let epoch t ~name =
  match Hashtbl.find_opt t.epochs name with
  | Some e -> e
  | None ->
      let e = { mark = 0 } in
      Hashtbl.replace t.epochs name e;
      e

let epoch_reset t ~name = (epoch t ~name).mark <- t.wseq
let epoch_mark t ~name = (epoch t ~name).mark
let epoch_remove t ~name = Hashtbl.remove t.epochs name

let epoch_find t ~name =
  Option.map (fun e -> e.mark) (Hashtbl.find_opt t.epochs name)

let epoch_page_dirty t ~name a =
  let mark = epoch_mark t ~name in
  match Hashtbl.find_opt t.pages (Addr.page_of a) with
  | Some p -> p.last_write_seq > mark
  | None -> false

let epoch_range_dirty t ~name a ~words =
  if words <= 0 then false
  else begin
    let mark = epoch_mark t ~name in
    let first = Addr.page_of a in
    let last = Addr.page_of (Addr.add_words a (words - 1)) in
    let rec scan pn =
      pn <= last
      && ((match Hashtbl.find_opt t.pages pn with
          | Some p -> p.last_write_seq > mark
          | None -> false)
         || scan (pn + 1))
    in
    scan first
  end

let epoch_dirty_pages t ~name =
  let mark = epoch_mark t ~name in
  Hashtbl.fold
    (fun pn p acc -> if p.last_write_seq > mark then pn :: acc else acc)
    t.pages []
  |> List.sort compare
  |> List.map (fun pn -> pn * Addr.page_size)

let write_seq t = t.wseq

let page_written_since t a ~seq =
  match Hashtbl.find_opt t.pages (Addr.page_of a) with
  | Some p -> p.last_write_seq > seq
  | None -> false

let range_written_since t a ~words ~seq =
  if words <= 0 then false
  else
    let first = Addr.page_of a in
    let last = Addr.page_of (Addr.add_words a (words - 1)) in
    let rec scan pn =
      pn <= last
      && ((match Hashtbl.find_opt t.pages pn with
          | Some p -> p.last_write_seq > seq
          | None -> false)
         || scan (pn + 1))
    in
    scan first

(* ------------------------------------------------------------------ *)
(* Inherited content and page remap *)

let mark_inherited t a ~words =
  if words > 0 then begin
    let first = Addr.page_of a in
    let last = Addr.page_of (Addr.add_words a (words - 1)) in
    for pn = first to last do
      match Hashtbl.find_opt t.pages pn with
      | Some p ->
          p.inherited <- true;
          p.touched <- true
      | None -> ()
    done
  end

let page_inherited t a =
  match Hashtbl.find_opt t.pages (Addr.page_of a) with
  | Some p -> p.inherited
  | None -> false

let share_page ~src src_addr ~dst dst_addr =
  if Addr.page_offset src_addr <> 0 || Addr.page_offset dst_addr <> 0 then
    invalid_arg "Aspace.share_page: addresses must be page-aligned";
  let sp =
    match Hashtbl.find_opt src.pages (Addr.page_of src_addr) with
    | Some p -> p
    | None -> raise (Fault src_addr)
  in
  let dp =
    match Hashtbl.find_opt dst.pages (Addr.page_of dst_addr) with
    | Some p -> p
    | None -> raise (Fault dst_addr)
  in
  if sp.frame != dp.frame then begin
    dp.frame.refs <- dp.frame.refs - 1;
    sp.frame.refs <- sp.frame.refs + 1;
    dp.frame <- sp.frame
  end;
  dp.touched <- true;
  dp.inherited <- true

let shared_frame_count t =
  Hashtbl.fold (fun _ p acc -> if p.frame.refs > 1 then acc + 1 else acc) t.pages 0

let detach_shared t =
  let n = ref 0 in
  Hashtbl.iter
    (fun _ p ->
      if p.frame.refs > 1 then begin
        incr n;
        p.frame.refs <- p.frame.refs - 1;
        p.frame <- { words = Array.copy p.frame.words; refs = 1 }
      end)
    t.pages;
  !n

(* ------------------------------------------------------------------ *)
(* Checkpoint export/import *)

type page_state = {
  ps_page : Addr.t;
  ps_last_write_seq : int;
  ps_touched : bool;
  ps_inherited : bool;
}

let page_states t =
  Hashtbl.fold
    (fun pn p acc ->
      {
        ps_page = pn * Addr.page_size;
        ps_last_write_seq = p.last_write_seq;
        ps_touched = p.touched;
        ps_inherited = p.inherited;
      }
      :: acc)
    t.pages []
  |> List.sort (fun a b -> compare a.ps_page b.ps_page)

let restore_page_state t ps =
  if Addr.page_offset ps.ps_page <> 0 then
    invalid_arg "Aspace.restore_page_state: address must be page-aligned";
  match Hashtbl.find_opt t.pages (Addr.page_of ps.ps_page) with
  | None -> raise (Fault ps.ps_page)
  | Some p ->
      p.last_write_seq <- ps.ps_last_write_seq;
      p.touched <- ps.ps_touched;
      p.inherited <- ps.ps_inherited

let epochs t =
  Hashtbl.fold (fun name e acc -> (name, e.mark) :: acc) t.epochs [] |> List.sort compare

let set_write_seq t seq = t.wseq <- seq

let restore_epochs t entries =
  Hashtbl.reset t.epochs;
  List.iter (fun (name, mark) -> Hashtbl.replace t.epochs name { mark }) entries

let resident_bytes t = Hashtbl.length t.pages * Addr.page_size

let touched_bytes t =
  Hashtbl.fold (fun _ p acc -> if p.touched then acc + Addr.page_size else acc) t.pages 0

let pp ppf t =
  Array.iter (fun r -> Format.fprintf ppf "%a@." Region.pp r) t.regions_arr
