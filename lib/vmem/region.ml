type kind = Static | Heap | Stack | Lib | Mmap

type t = {
  base : Addr.t;
  size : int;
  kind : kind;
  name : string;
}

let kind_to_string = function
  | Static -> "static"
  | Heap -> "heap"
  | Stack -> "stack"
  | Lib -> "lib"
  | Mmap -> "mmap"

let contains r a = a >= r.base && a < r.base + r.size

let limit r = r.base + r.size

let overlaps r ~base ~size = base < limit r && r.base < base + size

let pp ppf r =
  Format.fprintf ppf "%s %a-%a (%s)" (kind_to_string r.kind) Addr.pp r.base Addr.pp
    (limit r) r.name
