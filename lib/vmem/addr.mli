(** Virtual addresses.

    The simulated machine is 64-bit with 8-byte words. Addresses are byte
    addresses carried as OCaml ints; all word accesses must be 8-byte
    aligned, which is exactly the alignment constraint conservative tracing
    exploits when scanning for likely pointers. *)

type t = int
(** A byte address. Always non-negative. *)

val word_size : int
(** Bytes per machine word (8). *)

val page_size : int
(** Bytes per page (4096). *)

val words_per_page : int
(** [page_size / word_size]. *)

val null : t
(** The null address (0). Never mapped. *)

val is_aligned : t -> bool
(** Word alignment check. *)

val align_up : t -> t
(** Round up to the next word boundary. *)

val page_of : t -> int
(** Page number containing an address. *)

val page_base : t -> t
(** Base address of the page containing [t]. *)

val page_offset : t -> int
(** Byte offset within the page. *)

val word_index : t -> int
(** Word offset within the page. Requires alignment. *)

val add : t -> int -> t
(** Byte offset addition. *)

val add_words : t -> int -> t
(** Word offset addition ([add t (n * word_size)]). *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering, e.g. [0x804a044]. *)

val to_string : t -> string
