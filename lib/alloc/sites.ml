type site = {
  id : int;
  label : string;
  ty_id : int;
}

type t = {
  mutable next : int;
  by_id : (int, site) Hashtbl.t;
  by_label : (string, int) Hashtbl.t;
}

let create () = { next = 1; by_id = Hashtbl.create 32; by_label = Hashtbl.create 32 }

let register t ~label ~ty_id =
  match Hashtbl.find_opt t.by_label label with
  | Some id ->
      Hashtbl.replace t.by_id id { id; label; ty_id };
      id
  | None ->
      let id = t.next in
      t.next <- id + 1;
      Hashtbl.replace t.by_id id { id; label; ty_id };
      Hashtbl.replace t.by_label label id;
      id

let find t id = Hashtbl.find t.by_id id

let id_of_label t label = Hashtbl.find_opt t.by_label label

let count t = Hashtbl.length t.by_id
