(** Allocation-site registry.

    The paper's static analysis determines "the allocation type on a
    per-callsite basis" and matches dynamic objects across versions by
    "allocation site information" (Section 6). A site records where an
    allocation happens (function-name stack) and what type it produces;
    sites are matched across versions by their label. *)

type t

type site = {
  id : int;
  label : string;  (** Stable cross-version identity, e.g. ["server_init:conf"]. *)
  ty_id : int;  (** Type produced at this site; 0 when unknown. *)
}

val create : unit -> t

val register : t -> label:string -> ty_id:int -> int
(** Assigns (or returns the existing) site id for [label]. Re-registering
    with a new [ty_id] updates the type (an update changed the allocation's
    type). *)

val find : t -> int -> site
(** @raise Not_found. *)

val id_of_label : t -> string -> int option

val count : t -> int
