module Addr = Mcr_vmem.Addr

type chunk = {
  base : Addr.t;  (** Payload address of the backing heap block. *)
  words : int;
  micro : Heap.t option;  (** In-band walkable interior when instrumented. *)
  mutable bump : int;  (** Next free word offset (uninstrumented only). *)
}

type stats = {
  mutable pallocs : int;
  mutable tag_words : int;
  mutable chunks_grabbed : int;
}

type t = {
  heap : Heap.t;
  name : string;
  instrument : bool;
  chunk_words : int;
  mutable chunks : chunk list; (* newest first *)
  mutable kids : t list;
  mutable alive : bool;
  stats : stats;
}

let grab_chunk t words =
  let payload = Heap.malloc t.heap words in
  t.stats.chunks_grabbed <- t.stats.chunks_grabbed + 1;
  let micro =
    if t.instrument then begin
      let h =
        Heap.of_region (Heap.aspace t.heap) ~base:payload ~size:(words * Addr.word_size)
          ~instrumented:true
      in
      if not (Heap.in_startup t.heap) then Heap.end_startup h;
      Some h
    end
    else None
  in
  let c = { base = payload; words; micro; bump = 0 } in
  t.chunks <- c :: t.chunks;
  c

let create heap ?parent ?(instrument = false) ?(chunk_words = 1024) ~name () =
  let t =
    {
      heap;
      name;
      instrument;
      chunk_words;
      chunks = [];
      kids = [];
      alive = true;
      stats = { pallocs = 0; tag_words = 0; chunks_grabbed = 0 };
    }
  in
  ignore (grab_chunk t chunk_words);
  (match parent with Some p -> p.kids <- t :: p.kids | None -> ());
  t

let name t = t.name
let is_instrumented t = t.instrument
let stats t = t.stats

let check_alive t = if not t.alive then invalid_arg ("Pool " ^ t.name ^ " is destroyed")

let palloc t ?(ty_id = 0) ?(site = 0) ?(callstack = 0) words =
  check_alive t;
  let words = max 1 words in
  t.stats.pallocs <- t.stats.pallocs + 1;
  if t.instrument then begin
    t.stats.tag_words <- t.stats.tag_words + 2;
    (* In-band tags inside the chunk: delegate to the chunk's micro-heap;
       grab a dedicated chunk when the current one cannot fit the object. *)
    let rec try_chunks = function
      | [] ->
          let c = grab_chunk t (max t.chunk_words (words + 8)) in
          let micro = Option.get c.micro in
          Heap.malloc micro ~ty_id ~site ~callstack words
      | c :: rest -> begin
          match c.micro with
          | None -> try_chunks rest
          | Some micro -> begin
              try Heap.malloc micro ~ty_id ~site ~callstack words
              with Heap.Out_of_memory -> try_chunks rest
            end
        end
    in
    try_chunks t.chunks
  end
  else begin
    let c =
      match t.chunks with
      | c :: _ when c.bump + words <= c.words -> c
      | _ -> grab_chunk t (max t.chunk_words words)
    in
    let addr = Addr.add_words c.base c.bump in
    c.bump <- c.bump + words;
    for i = 0 to words - 1 do
      Mcr_vmem.Aspace.write_word (Heap.aspace t.heap) (Addr.add_words addr i) 0
    done;
    addr
  end

let release_chunks t chunks = List.iter (fun c -> Heap.free t.heap c.base) chunks

let rec destroy t =
  check_alive t;
  List.iter destroy t.kids;
  t.kids <- [];
  release_chunks t t.chunks;
  t.chunks <- [];
  t.alive <- false

let reset t =
  check_alive t;
  List.iter destroy t.kids;
  t.kids <- [];
  (match List.rev t.chunks with
  | [] -> ignore (grab_chunk t t.chunk_words)
  | first :: rest ->
      release_chunks t rest;
      first.bump <- 0;
      (match first.micro with
      | Some _ when t.instrument ->
          let micro =
            Heap.of_region (Heap.aspace t.heap) ~base:first.base
              ~size:(first.words * Addr.word_size) ~instrumented:true
          in
          if not (Heap.in_startup t.heap) then Heap.end_startup micro;
          t.chunks <- [ { first with micro = Some micro; bump = 0 } ]
      | _ -> t.chunks <- [ first ]))

let chunk_extents t = List.map (fun c -> (c.base, c.words)) t.chunks

let iter_objects t f =
  List.iter (fun c -> match c.micro with Some h -> Heap.iter_live h f | None -> ()) t.chunks

let children t = t.kids

type chunk_state = {
  cs_base : Addr.t;
  cs_words : int;
  cs_bump : int;
  cs_micro : bool;
}

type state = {
  st_name : string;
  st_instrument : bool;
  st_chunk_words : int;
  st_pallocs : int;
  st_tag_words : int;
  st_chunks_grabbed : int;
  st_chunks : chunk_state list;  (* newest first, like [chunks] *)
  st_kids : state list;
}

let rec export_state t =
  {
    st_name = t.name;
    st_instrument = t.instrument;
    st_chunk_words = t.chunk_words;
    st_pallocs = t.stats.pallocs;
    st_tag_words = t.stats.tag_words;
    st_chunks_grabbed = t.stats.chunks_grabbed;
    st_chunks =
      List.map
        (fun c ->
          { cs_base = c.base; cs_words = c.words; cs_bump = c.bump; cs_micro = c.micro <> None })
        t.chunks;
    st_kids = List.map export_state t.kids;
  }

(* Restoring must not touch the backing heap: the chunk blocks named in the
   state already exist in the (re-installed) in-band heap structure, so we
   only rebuild the OCaml-side view over them. Micro heaps are [Heap.attach]ed
   over the restored in-band tags. *)
let rec restore_state t st =
  let aspace = Heap.aspace t.heap in
  let chunk_of_state cs =
    let micro =
      if cs.cs_micro then
        Some (Heap.attach aspace ~base:cs.cs_base ~size:(cs.cs_words * Addr.word_size) ~instrumented:true)
      else None
    in
    { base = cs.cs_base; words = cs.cs_words; micro; bump = cs.cs_bump }
  in
  t.stats.pallocs <- st.st_pallocs;
  t.stats.tag_words <- st.st_tag_words;
  t.stats.chunks_grabbed <- st.st_chunks_grabbed;
  t.chunks <- List.map chunk_of_state st.st_chunks;
  t.alive <- true;
  t.kids <-
    List.map
      (fun kst ->
        let kid =
          {
            heap = t.heap;
            name = kst.st_name;
            instrument = kst.st_instrument;
            chunk_words = kst.st_chunk_words;
            chunks = [];
            kids = [];
            alive = true;
            stats = { pallocs = 0; tag_words = 0; chunks_grabbed = 0 };
          }
        in
        restore_state kid kst;
        kid)
      st.st_kids

let rec rebind t heap =
  let rebind_chunk c =
    { c with micro = Option.map (fun m -> Heap.rebind m (Heap.aspace heap)) c.micro }
  in
  {
    t with
    heap;
    chunks = List.map rebind_chunk t.chunks;
    kids = List.map (fun kid -> rebind kid heap) t.kids;
    stats =
      { pallocs = t.stats.pallocs; tag_words = t.stats.tag_words;
        chunks_grabbed = t.stats.chunks_grabbed };
  }
