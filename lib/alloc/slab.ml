module Addr = Mcr_vmem.Addr
module Aspace = Mcr_vmem.Aspace

type t = {
  heap : Heap.t;
  slot_words : int;
  slots_per_chunk : int;
  name : string;
  mutable chunks : Addr.t list;
  mutable free_head : Addr.t; (* 0 = empty; links live in slot word 0 *)
  mutable live : int;
}

let aspace t = Heap.aspace t.heap

let push_free t slot =
  Aspace.write_word (aspace t) slot t.free_head;
  t.free_head <- slot

let grab_chunk t =
  let words = t.slot_words * t.slots_per_chunk in
  let base = Heap.malloc t.heap words in
  t.chunks <- base :: t.chunks;
  (* thread all slots onto the free list, last first so allocation order is
     ascending *)
  for i = t.slots_per_chunk - 1 downto 0 do
    push_free t (Addr.add_words base (i * t.slot_words))
  done

let create heap ~slot_words ~slots_per_chunk ~name =
  assert (slot_words >= 1 && slots_per_chunk >= 1);
  let t =
    { heap; slot_words; slots_per_chunk; name; chunks = []; free_head = Addr.null; live = 0 }
  in
  grab_chunk t;
  t

let alloc t =
  if t.free_head = Addr.null then grab_chunk t;
  let slot = t.free_head in
  t.free_head <- Aspace.read_word (aspace t) slot;
  for i = 0 to t.slot_words - 1 do
    Aspace.write_word (aspace t) (Addr.add_words slot i) 0
  done;
  t.live <- t.live + 1;
  slot

let owns t addr =
  List.exists
    (fun base -> addr >= base && addr < Addr.add_words base (t.slot_words * t.slots_per_chunk))
    t.chunks

let slot_base t addr =
  let rec find = function
    | [] -> None
    | base :: rest ->
        let limit = Addr.add_words base (t.slot_words * t.slots_per_chunk) in
        if addr >= base && addr < limit then begin
          let off_words = (addr - base) / Addr.word_size in
          Some (Addr.add_words base (off_words / t.slot_words * t.slot_words))
        end
        else find rest
  in
  find t.chunks

let free t addr =
  if not (owns t addr) then
    invalid_arg (Format.asprintf "Slab.free: %a not in slab %s" Addr.pp addr t.name);
  push_free t addr;
  t.live <- t.live - 1

let live_slots t = t.live

let chunk_extents t = List.map (fun base -> (base, t.slot_words * t.slots_per_chunk)) t.chunks

let rebind t heap = { t with heap }

type state = {
  ss_slot_words : int;
  ss_chunks : Addr.t list;  (* newest first, like [chunks] *)
  ss_free_head : Addr.t;
  ss_live : int;
}

let export_state t =
  { ss_slot_words = t.slot_words; ss_chunks = t.chunks; ss_free_head = t.free_head; ss_live = t.live }

let restore_state t st =
  if st.ss_slot_words <> t.slot_words then
    invalid_arg
      (Printf.sprintf "Slab.restore_state: slab %s has %d-word slots, image has %d" t.name
         t.slot_words st.ss_slot_words);
  t.chunks <- st.ss_chunks;
  t.free_head <- st.ss_free_head;
  t.live <- st.ss_live
