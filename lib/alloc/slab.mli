(** Slab allocator — nginx's shared-memory allocation scheme.

    Fixed-size object classes carved out of chunks from a backing {!Heap}.
    Slabs are always uninstrumented in this prototype (the paper: "slabs and
    nested regions are not yet supported by our current MCR prototype"), and
    free slots are chained through a free list stored {e in the slots
    themselves} — raw next-pointers in reusable memory, the exact
    "allocator abstractions that aggressively use free lists" liveness
    hazard Section 6 discusses. *)

type t

val create : Heap.t -> slot_words:int -> slots_per_chunk:int -> name:string -> t
(** A slab class of objects of [slot_words] words. *)

val alloc : t -> Mcr_vmem.Addr.t
(** Pop a slot (zeroed). Grabs a new chunk when exhausted. *)

val free : t -> Mcr_vmem.Addr.t -> unit
(** Push a slot back. The slot's first word is overwritten with the free-list
    link — a stale-looking pointer that conservative tracing may pick up.
    @raise Invalid_argument on an address not belonging to this slab. *)

val live_slots : t -> int
val chunk_extents : t -> (Mcr_vmem.Addr.t * int) list
(** Opaque areas for conservative scanning. *)

val owns : t -> Mcr_vmem.Addr.t -> bool
(** True when the address falls inside one of the slab's chunks. *)

val slot_base : t -> Mcr_vmem.Addr.t -> Mcr_vmem.Addr.t option
(** Base address of the (allocated or free) slot containing the address. *)

val rebind : t -> Heap.t -> t
(** The forked child's view of this slab over the child's rebound heap. *)

(** {2 Checkpoint state} *)

type state = {
  ss_slot_words : int;
  ss_chunks : Mcr_vmem.Addr.t list;
  ss_free_head : Mcr_vmem.Addr.t;
  ss_live : int;
}

val export_state : t -> state
(** Serializable snapshot of the slab's OCaml-side view. The free-list
    links themselves live in slot memory and travel with the page
    contents; only the list head, chunk extents and live count need
    exporting. *)

val restore_state : t -> state -> unit
(** Replace the slab's OCaml-side view with a saved snapshot after the
    backing memory has been re-installed. Never touches the backing heap.
    @raise Invalid_argument when the image's slot size disagrees with the
    live slab (a config mismatch the caller should have rejected). *)
