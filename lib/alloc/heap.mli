(** Free-list heap allocator with in-band metadata tags.

    This is the ptmalloc analog plus the paper's allocator instrumentation:
    "change all the allocator invocations to call ad-hoc wrapper functions
    that maintain relocation and data type tags in in-band allocator
    metadata" (Section 6).

    The heap region's words are the only authority: every block starts with
    a header word encoding its size and status, so the whole heap can be
    walked from the region base — which is also how mutable tracing resolves
    an arbitrary address to its containing live object. Instrumented
    allocations carry two extra header words (type id + allocation site,
    call-stack id); uninstrumented allocations (shared libraries, custom
    allocator chunks) carry only the size header and therefore no type
    information — they are what forces conservative tracing.

    Startup-time support implements the paper's {e global separability}:
    with deferred free mode on (during startup), freed blocks are quarantined
    so no startup-time address is ever reused, and all blocks allocated
    before {!end_startup} are flagged startup-time in their headers. *)

type t

(** A live allocation, as discovered from in-band metadata. *)
type block = {
  header : Mcr_vmem.Addr.t;  (** Address of the header word. *)
  payload : Mcr_vmem.Addr.t;
  words : int;  (** Payload words. *)
  instrumented : bool;
  startup : bool;
  ty_id : int;  (** 0 when uninstrumented. *)
  site : int;  (** Allocation-site id; 0 when uninstrumented. *)
  callstack : int;  (** Call-stack id at allocation; 0 when uninstrumented. *)
}

(** Operation counters, consumed by the run-time cost model. *)
type stats = {
  mutable allocs : int;
  mutable frees : int;
  mutable tag_words : int;  (** Metadata words maintained (instrumentation cost). *)
}

val create :
  Mcr_vmem.Aspace.t ->
  ?kind:Mcr_vmem.Region.kind ->
  ?instrumented:bool ->
  name:string ->
  size:int ->
  unit ->
  t
(** [create aspace ~name ~size ()] maps a fresh heap region of [size] bytes.
    [instrumented] (default true) decides whether allocations carry type
    tags. [kind] defaults to [Heap]; shared-library allocators pass [Lib]. *)

val of_region : Mcr_vmem.Aspace.t -> base:Mcr_vmem.Addr.t -> size:int -> instrumented:bool -> t
(** Adopt an already-mapped region as an empty heap (used when the new
    version re-creates the old heap at a fixed address). *)

val rebind : t -> Mcr_vmem.Aspace.t -> t
(** A view of this heap's layout inside another address space — the forked
    child's copy. Walks the in-band headers (which the fork copied verbatim)
    to rebuild the payload cache and carries over the deferral/startup
    state. *)

val aspace : t -> Mcr_vmem.Aspace.t
val base : t -> Mcr_vmem.Addr.t
val limit : t -> Mcr_vmem.Addr.t
val instrumented : t -> bool
val stats : t -> stats

exception Out_of_memory

val malloc : t -> ?ty_id:int -> ?site:int -> ?callstack:int -> int -> Mcr_vmem.Addr.t
(** [malloc t words] returns the payload address of a fresh zeroed block.
    First-fit with block splitting; adjacent free blocks coalesce lazily.
    @raise Out_of_memory when no gap fits. *)

val malloc_aligned : t -> ?ty_id:int -> ?site:int -> ?callstack:int -> int -> Mcr_vmem.Addr.t
(** Like {!malloc} but the payload starts on a page boundary — how ptmalloc
    segregates large allocations, which keeps big startup-time tables from
    sharing pages with hot small objects (important for soft-dirty
    precision). @raise Out_of_memory. *)

val malloc_at : t -> at:Mcr_vmem.Addr.t -> ?ty_id:int -> ?site:int -> ?callstack:int -> int -> unit
(** Global reallocation (Section 5): carve a block whose payload sits at
    exactly [at]. Used by mutable reinitialization to re-create immutable
    heap objects at their old-version addresses in a fresh heap.
    @raise Invalid_argument if the needed words are not inside a free
    block. *)

val free : t -> Mcr_vmem.Addr.t -> unit
(** Free by payload address. In deferred mode the block is quarantined
    instead (no address reuse until {!end_startup}).
    @raise Invalid_argument on a non-live or foreign address. *)

val set_defer_frees : t -> bool -> unit
(** Startup separability switch. Created heaps start with deferral {b on},
    matching MCR's record phase; {!end_startup} turns it off. *)

val end_startup : t -> unit
(** Flush quarantined frees, stop flagging new blocks as startup-time, and
    disable deferral. Call when program startup completes. *)

val restart_startup : t -> unit
(** Re-enter the startup phase: a forked child's startup runs from the fork
    to its own first quiescent point, so its allocations are startup-time
    (re-created by the new version's reinitialization) even though the
    parent's startup ended long ago. *)

val in_startup : t -> bool
(** True until {!end_startup} is called. *)

val block_of_payload : t -> Mcr_vmem.Addr.t -> block option
(** Live block whose payload starts exactly at the address. *)

val block_containing : t -> Mcr_vmem.Addr.t -> block option
(** Live block whose payload range contains the address (interior pointers
    resolve too, as conservative tracing requires). *)

val iter_live : t -> (block -> unit) -> unit
(** Visit every live block in address order. *)

val live_words : t -> int
(** Total live payload words. *)

val metadata_words : t -> int
(** Header words currently consumed by live blocks — the in-band metadata
    footprint for memory accounting. *)

val attach : Mcr_vmem.Aspace.t -> base:Mcr_vmem.Addr.t -> size:int -> instrumented:bool -> t
(** Adopt an extent that {e already} holds a valid block tiling (e.g. just
    re-installed from a checkpoint image): no headers are written, the
    payload cache is rebuilt from the in-band state, and the heap comes up
    past its startup phase. Contrast {!of_region}, which formats the extent
    as one free block. *)

val refresh : t -> unit
(** Rebuild the payload cache in place by walking the in-band headers —
    the allocator's authoritative state. Call after a checkpoint-image
    restore overwrites the heap region's contents underneath this
    descriptor ({!rebind} is the same walk for a {e different} address
    space). *)

val restore_stats : t -> allocs:int -> frees:int -> tag_words:int -> unit
(** Overwrite the accounting counters with values saved in a checkpoint
    image, so restored instances report continuous allocator statistics. *)

val validate : t -> (unit, string) result
(** Walk the whole heap checking structural invariants: headers carry the
    magic, blocks tile the region exactly, and every cached payload is a
    live block. Used by property tests and debugging. *)
