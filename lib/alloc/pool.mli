(** Region ("pool") allocator — the custom allocation scheme of nginx and
    Apache httpd (nested regions) in the paper's evaluation.

    A pool bump-allocates out of large chunks obtained from a backing
    {!Heap}. By default pools are {e uninstrumented}: a chunk appears to
    mutable tracing as one big opaque object, so every pointer stored in
    pool memory becomes a likely pointer and its target immutable — the
    dominant source of likely pointers in Table 2 (httpd: 16,067).

    With per-object instrumentation enabled (the paper's [nginxreg]
    configuration), [palloc] additionally maintains in-band tags inside the
    chunk, making pool objects precisely traceable at the cost of extra
    allocator work (the 19.2% worst-case overhead the paper reports). *)

type t

type stats = {
  mutable pallocs : int;
  mutable tag_words : int;
  mutable chunks_grabbed : int;
}

val create : Heap.t -> ?parent:t -> ?instrument:bool -> ?chunk_words:int -> name:string -> unit -> t
(** [create heap ~name ()] makes a pool drawing chunks from [heap].
    [instrument] defaults to false. [chunk_words] defaults to 1024.
    When [parent] is given the new pool is destroyed with its parent
    (httpd's nested regions). *)

val name : t -> string
val is_instrumented : t -> bool
val stats : t -> stats

val palloc : t -> ?ty_id:int -> ?site:int -> ?callstack:int -> int -> Mcr_vmem.Addr.t
(** Bump-allocate [words] zeroed words. Grabs a new chunk when the current
    one is exhausted (oversized requests get a dedicated chunk). *)

val reset : t -> unit
(** Drop all objects but keep the pool usable; frees all chunks except the
    first. Child pools are destroyed. *)

val destroy : t -> unit
(** Destroy the pool and every descendant; returns all chunks to the heap.
    Using a destroyed pool raises [Invalid_argument]. *)

val chunk_extents : t -> (Mcr_vmem.Addr.t * int) list
(** [(base, words)] of every chunk owned by this pool (excluding children) —
    the opaque areas conservative tracing must scan when the pool is
    uninstrumented. *)

val iter_objects : t -> (Heap.block -> unit) -> unit
(** Visit tagged objects in an instrumented pool's chunks (in-band walk).
    Yields nothing for uninstrumented pools. *)

val children : t -> t list

val rebind : t -> Heap.t -> t
(** The forked child's view of this pool: same chunk addresses over the
    child's rebound backing heap. Child pools are rebound recursively; the
    result is detached from the original's parent. *)

(** {2 Checkpoint state} *)

type chunk_state = {
  cs_base : Mcr_vmem.Addr.t;
  cs_words : int;
  cs_bump : int;
  cs_micro : bool;  (** Whether the chunk carries in-band tags. *)
}

type state = {
  st_name : string;
  st_instrument : bool;
  st_chunk_words : int;
  st_pallocs : int;
  st_tag_words : int;
  st_chunks_grabbed : int;
  st_chunks : chunk_state list;
  st_kids : state list;
}

val export_state : t -> state
(** Serializable snapshot of the pool tree's OCaml-side view (chunk
    extents, bump cursors, stats, children) for the checkpoint image. The
    in-band tags of instrumented chunks live in pool memory and travel
    with the page contents. *)

val restore_state : t -> state -> unit
(** Replace the pool's OCaml-side view with a saved snapshot, after the
    backing memory has been re-installed. Never allocates from or frees to
    the backing heap — the chunk blocks named in the snapshot are already
    present in the restored in-band heap structure. Micro heaps are
    re-attached over the restored tags; children are rebuilt recursively. *)
