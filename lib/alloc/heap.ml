module Addr = Mcr_vmem.Addr
module Aspace = Mcr_vmem.Aspace
module Region = Mcr_vmem.Region

(* Header word layout:
     bits 0..2   flags: 1 = allocated, 2 = instrumented, 4 = startup-time
     bits 3..34  payload size in words
     bits 40..55 magic (0xA10C), a walking sanity check
   Instrumented allocated blocks have two extra header words:
     word1 = ty_id lor (site lsl 24)
     word2 = call-stack id *)

let magic = 0xA10C
let flag_allocated = 1
let flag_instrumented = 2
let flag_startup = 4

let pack ~flags ~payload_words = flags lor (payload_words lsl 3) lor (magic lsl 40)

let unpack w =
  let m = (w lsr 40) land 0xFFFF in
  if m <> magic then invalid_arg "Heap: corrupted block header";
  (w land 7, (w lsr 3) land 0xFFFFFFFF)

type t = {
  aspace : Aspace.t;
  base : Addr.t;
  limit : Addr.t;
  instrumented : bool;
  by_payload : (Addr.t, Addr.t) Hashtbl.t; (* payload -> header, a cache *)
  mutable defer : bool;
  mutable startup_phase : bool;
  mutable quarantine : Addr.t list;
  stats : stats;
}

and stats = {
  mutable allocs : int;
  mutable frees : int;
  mutable tag_words : int;
}

type block = {
  header : Addr.t;
  payload : Addr.t;
  words : int;
  instrumented : bool;
  startup : bool;
  ty_id : int;
  site : int;
  callstack : int;
}

exception Out_of_memory

let write = Aspace.write_word

let init_free_header (t : t) addr total_words =
  write t.aspace addr (pack ~flags:0 ~payload_words:(total_words - 1))

let make aspace ~base ~size ~instrumented =
  let t =
    {
      aspace;
      base;
      limit = Addr.add base size;
      instrumented;
      by_payload = Hashtbl.create 256;
      defer = true;
      startup_phase = true;
      quarantine = [];
      stats = { allocs = 0; frees = 0; tag_words = 0 };
    }
  in
  init_free_header t base (size / Addr.word_size);
  t

let create aspace ?(kind = Region.Heap) ?(instrumented = true) ~name ~size () =
  let base = Aspace.map aspace ~name (Aspace.Near kind) ~size kind in
  (* map rounds the size up to whole pages; use the real extent *)
  let size = (size + Addr.page_size - 1) land lnot (Addr.page_size - 1) in
  make aspace ~base ~size ~instrumented

let of_region aspace ~base ~size ~instrumented = make aspace ~base ~size ~instrumented

let aspace (t : t) = t.aspace
let base (t : t) = t.base
let limit (t : t) = t.limit
let instrumented (t : t) = t.instrumented
let stats (t : t) = t.stats

let header_words_of_flags flags =
  if flags land flag_allocated <> 0 && flags land flag_instrumented <> 0 then 3 else 1

let read_block (t : t) header =
  let flags, payload_words = unpack (Aspace.read_word t.aspace header) in
  let hdr = header_words_of_flags flags in
  let payload = Addr.add_words header hdr in
  let instrumented = flags land flag_instrumented <> 0 in
  let ty_id, site, callstack =
    if instrumented then begin
      let w1 = Aspace.read_word t.aspace (Addr.add_words header 1) in
      let w2 = Aspace.read_word t.aspace (Addr.add_words header 2) in
      (w1 land 0xFFFFFF, w1 lsr 24, w2)
    end
    else (0, 0, 0)
  in
  ( flags,
    {
      header;
      payload;
      words = payload_words;
      instrumented;
      startup = flags land flag_startup <> 0;
      ty_id;
      site;
      callstack;
    } )

let total_words flags payload_words = header_words_of_flags flags + payload_words

let next_header (t : t) header =
  let flags, payload_words = unpack (Aspace.read_word t.aspace header) in
  Addr.add_words header (total_words flags payload_words)

(* Merge the run of free blocks starting at [header]; returns merged total. *)
let coalesce_at (t : t) header =
  let flags, payload_words = unpack (Aspace.read_word t.aspace header) in
  if flags land flag_allocated <> 0 then total_words flags payload_words
  else begin
    let total = ref (total_words flags payload_words) in
    let rec absorb () =
      let next = Addr.add_words header !total in
      if next < t.limit then begin
        let nflags, npayload = unpack (Aspace.read_word t.aspace next) in
        if nflags land flag_allocated = 0 then begin
          total := !total + total_words nflags npayload;
          absorb ()
        end
      end
    in
    absorb ();
    init_free_header t header !total;
    !total
  end

let write_allocated_header (t : t) header ~payload_words ~ty_id ~site ~callstack =
  let flags =
    flag_allocated
    lor (if t.instrumented then flag_instrumented else 0)
    lor if t.startup_phase then flag_startup else 0
  in
  write t.aspace header (pack ~flags ~payload_words);
  if t.instrumented then begin
    write t.aspace (Addr.add_words header 1) ((ty_id land 0xFFFFFF) lor (site lsl 24));
    write t.aspace (Addr.add_words header 2) callstack;
    t.stats.tag_words <- t.stats.tag_words + 2
  end;
  let payload = Addr.add_words header (header_words_of_flags flags) in
  Hashtbl.replace t.by_payload payload header;
  t.stats.allocs <- t.stats.allocs + 1;
  for i = 0 to payload_words - 1 do
    write t.aspace (Addr.add_words payload i) 0
  done;
  payload

let malloc (t : t) ?(ty_id = 0) ?(site = 0) ?(callstack = 0) words =
  let words = max 1 words in
  let hdr = if t.instrumented then 3 else 1 in
  let needed = hdr + words in
  let rec walk header =
    if header >= t.limit then raise Out_of_memory
    else begin
      let flags, payload_words = unpack (Aspace.read_word t.aspace header) in
      if flags land flag_allocated <> 0 then walk (Addr.add_words header (total_words flags payload_words))
      else begin
        let total = coalesce_at t header in
        if total >= needed then begin
          (* split off the remainder when it can hold a free header + 1 word *)
          let payload_words =
            if total - needed >= 2 then begin
              init_free_header t (Addr.add_words header needed) (total - needed);
              words
            end
            else total - hdr
          in
          write_allocated_header t header ~payload_words ~ty_id ~site ~callstack
        end
        else walk (Addr.add_words header total)
      end
    end
  in
  walk t.base

let malloc_aligned (t : t) ?(ty_id = 0) ?(site = 0) ?(callstack = 0) words =
  let words = max 1 words in
  let hdr = if t.instrumented then 3 else 1 in
  (* find a free block able to host a page-aligned payload *)
  let rec walk header =
    if header >= t.limit then raise Out_of_memory
    else begin
      let flags, payload_words = unpack (Aspace.read_word t.aspace header) in
      if flags land flag_allocated <> 0 then
        walk (Addr.add_words header (total_words flags payload_words))
      else begin
        let total = coalesce_at t header in
        let block_end = Addr.add_words header total in
        (* candidate payload: first page boundary leaving room for the
           header and a possible free prefix *)
        let min_payload = Addr.add_words header (hdr + 2) in
        let candidate =
          let aligned = (min_payload + Addr.page_size - 1) land lnot (Addr.page_size - 1) in
          if Addr.add_words header hdr >= aligned - (2 * Addr.word_size) then
            (* header area would leave an unusable gap; take the next page *)
            aligned
          else aligned
        in
        if Addr.add_words candidate words <= block_end then begin
          let start = Addr.add_words candidate (-hdr) in
          let prefix_words = (start - header) / Addr.word_size in
          if prefix_words = 0 then ()
          else if prefix_words >= 2 then init_free_header t header prefix_words
          else raise Out_of_memory (* cannot represent the gap; give up *);
          let suffix_words = (block_end - Addr.add_words candidate words) / Addr.word_size in
          if suffix_words > 0 then begin
            if suffix_words >= 2 then init_free_header t (Addr.add_words candidate words) suffix_words
            else raise Out_of_memory
          end;
          write_allocated_header t start ~payload_words:words ~ty_id ~site ~callstack
        end
        else walk block_end
      end
    end
  in
  walk t.base

let malloc_at (t : t) ~at ?(ty_id = 0) ?(site = 0) ?(callstack = 0) words =
  let words = max 1 words in
  let hdr = if t.instrumented then 3 else 1 in
  let start = Addr.add_words at (-hdr) in
  let stop = Addr.add_words at words in
  if start < t.base || stop > t.limit then
    invalid_arg "Heap.malloc_at: address outside heap";
  let rec walk header =
    if header >= t.limit then
      invalid_arg
        (Format.asprintf "Heap.malloc_at: %a not inside a free block" Addr.pp at)
    else begin
      let flags, payload_words = unpack (Aspace.read_word t.aspace header) in
      if flags land flag_allocated <> 0 then
        walk (Addr.add_words header (total_words flags payload_words))
      else begin
        let total = coalesce_at t header in
        let block_end = Addr.add_words header total in
        if start >= header && stop <= block_end then begin
          let prefix_words = (start - header) / Addr.word_size in
          if prefix_words = 0 then ()
          else if prefix_words >= 2 then init_free_header t header prefix_words
          else
            invalid_arg "Heap.malloc_at: leaves unusable one-word prefix gap";
          let suffix_words = (block_end - stop) / Addr.word_size in
          if suffix_words > 0 then begin
            if suffix_words >= 2 then init_free_header t stop suffix_words
            else invalid_arg "Heap.malloc_at: leaves unusable one-word suffix gap"
          end;
          ignore (write_allocated_header t start ~payload_words:words ~ty_id ~site ~callstack)
        end
        else if header >= stop then
          invalid_arg
            (Format.asprintf "Heap.malloc_at: %a overlaps a live block" Addr.pp at)
        else walk block_end
      end
    end
  in
  walk t.base

let header_of_payload (t : t) payload =
  match Hashtbl.find_opt t.by_payload payload with
  | Some h -> Some h
  | None -> None

let do_free (t : t) payload =
  match header_of_payload t payload with
  | None -> invalid_arg (Format.asprintf "Heap.free: %a is not a live block" Addr.pp payload)
  | Some header ->
      let flags, payload_words = unpack (Aspace.read_word t.aspace header) in
      if flags land flag_allocated = 0 then
        invalid_arg (Format.asprintf "Heap.free: double free of %a" Addr.pp payload);
      init_free_header t header (total_words flags payload_words);
      Hashtbl.remove t.by_payload payload;
      t.stats.frees <- t.stats.frees + 1

let free (t : t) payload =
  if payload < t.base || payload >= t.limit then
    invalid_arg (Format.asprintf "Heap.free: foreign address %a" Addr.pp payload);
  if t.defer then begin
    (* Separability: no startup-time address reuse. Validate liveness now,
       release at end_startup. *)
    if header_of_payload t payload = None then
      invalid_arg (Format.asprintf "Heap.free: %a is not a live block" Addr.pp payload);
    t.quarantine <- payload :: t.quarantine
  end
  else do_free t payload

let set_defer_frees (t : t) b = t.defer <- b

let end_startup (t : t) =
  List.iter (do_free t) (List.rev t.quarantine);
  t.quarantine <- [];
  t.defer <- false;
  t.startup_phase <- false

let restart_startup (t : t) =
  t.startup_phase <- true;
  t.defer <- true

let in_startup (t : t) = t.startup_phase

let block_of_payload (t : t) payload =
  match header_of_payload t payload with
  | None -> None
  | Some header ->
      let flags, b = read_block t header in
      if flags land flag_allocated <> 0 && not (List.mem payload t.quarantine) then Some b
      else None

let iter_live (t : t) f =
  let rec walk header =
    if header < t.limit then begin
      let flags, b = read_block t header in
      if flags land flag_allocated <> 0 && not (List.mem b.payload t.quarantine) then f b;
      walk (next_header t header)
    end
  in
  walk t.base

let block_containing (t : t) addr =
  if addr < t.base || addr >= t.limit then None
  else begin
    let found = ref None in
    (try
       iter_live t (fun b ->
           if addr >= b.payload && addr < Addr.add_words b.payload b.words then begin
             found := Some b;
             raise Exit
           end)
     with Exit -> ());
    !found
  end

let live_words (t : t) =
  let n = ref 0 in
  iter_live t (fun b -> n := !n + b.words);
  !n

let metadata_words (t : t) =
  let n = ref 0 in
  iter_live t (fun b -> n := !n + if b.instrumented then 3 else 1);
  !n

let rebind (t : t) aspace =
  let fresh =
    {
      t with
      aspace;
      by_payload = Hashtbl.create (Hashtbl.length t.by_payload);
      stats = { allocs = t.stats.allocs; frees = t.stats.frees; tag_words = t.stats.tag_words };
    }
  in
  (* rebuild the payload cache from the copied in-band headers *)
  let rec walk header =
    if header < fresh.limit then begin
      let flags, payload_words = unpack (Aspace.read_word aspace header) in
      if flags land flag_allocated <> 0 then begin
        let hdr = header_words_of_flags flags in
        Hashtbl.replace fresh.by_payload (Addr.add_words header hdr) header
      end;
      walk (Addr.add_words header (header_words_of_flags flags + payload_words))
    end
  in
  walk fresh.base;
  fresh


let refresh (t : t) =
  Hashtbl.reset t.by_payload;
  let rec walk header =
    if header < t.limit then begin
      let flags, payload_words = unpack (Aspace.read_word t.aspace header) in
      if flags land flag_allocated <> 0 then begin
        let hdr = header_words_of_flags flags in
        Hashtbl.replace t.by_payload (Addr.add_words header hdr) header
      end;
      walk (Addr.add_words header (header_words_of_flags flags + payload_words))
    end
  in
  walk t.base

(* Like [of_region] but over memory that already holds a valid block
   tiling — attaching writes no headers, it only rebuilds the cache.
   Attached heaps come up past startup (checkpoint images are only taken
   after the first quiescent point). *)
let attach aspace ~base ~size ~instrumented =
  let t =
    {
      aspace;
      base;
      limit = Addr.add base size;
      instrumented;
      by_payload = Hashtbl.create 256;
      defer = false;
      startup_phase = false;
      quarantine = [];
      stats = { allocs = 0; frees = 0; tag_words = 0 };
    }
  in
  refresh t;
  t

let restore_stats (t : t) ~allocs ~frees ~tag_words =
  t.stats.allocs <- allocs;
  t.stats.frees <- frees;
  t.stats.tag_words <- tag_words

let validate (t : t) =
  let rec walk header live_payloads =
    if header = t.limit then Ok live_payloads
    else if header > t.limit then Error "block overruns the heap limit"
    else
      match unpack (Aspace.read_word t.aspace header) with
      | exception Invalid_argument m -> Error m
      | flags, payload_words ->
          let total = total_words flags payload_words in
          if total <= 0 then Error "non-positive block size"
          else
            let live_payloads =
              if flags land flag_allocated <> 0 then
                Addr.add_words header (header_words_of_flags flags) :: live_payloads
              else live_payloads
            in
            walk (Addr.add_words header total) live_payloads
  in
  match walk t.base [] with
  | Error e -> Error e
  | Ok live ->
      let cache_ok =
        Hashtbl.fold (fun payload _ ok -> ok && List.mem payload live) t.by_payload true
      in
      if cache_ok then Ok () else Error "payload cache references a dead block"
