(* The fleet rollout flight summary: plain data assembled by the fleet
   coordinator after every rollout, mirroring what Flight does for single
   updates. Never touches the kernel or the clock; the JSON codec follows
   Flight's conventions (fixed field order, integers only) so the same
   tooling consumes both. *)

type verdict = {
  v_instance : int;
  v_wave : int;
  v_success : bool;
  v_slo_violated : bool;
  v_healthy : bool;
  v_reason : string option;
  v_downtime_ns : int;
  v_total_ns : int;
  v_flight : Flight.record option;
}

type wave = {
  w_index : int;
  w_kind : string;
  w_start_ns : int;
  w_end_ns : int;
  w_verdicts : verdict list;
}

type sample = { s_ns : int; s_serving : int }

type t = {
  fs_prog : string;
  fs_from : string;
  fs_to : string;
  fs_size : int;
  fs_canary : int;
  fs_wave_size : int;
  fs_max_unavailable : int;
  fs_halt : string;
  fs_waves : wave list;
  fs_halted : bool;
  fs_blocking : verdict option;
  fs_updated : int;
  fs_reverted : int;
  fs_makespan_ns : int;
  fs_min_serving : int;
  fs_requests : int;
  fs_client_errors : int;
  fs_timeline : sample list;
}

let blocks v = (not v.v_success) || v.v_slo_violated || not v.v_healthy

let min_availability_permille t =
  if t.fs_size <= 0 then 0 else t.fs_min_serving * 1000 / t.fs_size

(* ------------------------------------------------------------------ *)
(* JSON encoding *)

let esc = Json_escape.escape
let opt_str = function None -> "null" | Some s -> Printf.sprintf "\"%s\"" (esc s)

let verdict_json v =
  Printf.sprintf
    "{\"instance\":%d,\"wave\":%d,\"success\":%b,\"slo_violated\":%b,\"healthy\":%b,\
     \"reason\":%s,\"downtime_ns\":%d,\"total_ns\":%d,\"flight\":%s}"
    v.v_instance v.v_wave v.v_success v.v_slo_violated v.v_healthy (opt_str v.v_reason)
    v.v_downtime_ns v.v_total_ns
    (match v.v_flight with None -> "null" | Some f -> Flight.to_json f)

let wave_json w =
  Printf.sprintf "{\"index\":%d,\"kind\":\"%s\",\"start_ns\":%d,\"end_ns\":%d,\"verdicts\":[%s]}"
    w.w_index (esc w.w_kind) w.w_start_ns w.w_end_ns
    (String.concat "," (List.map verdict_json w.w_verdicts))

let sample_json s = Printf.sprintf "{\"ns\":%d,\"serving\":%d}" s.s_ns s.s_serving

let to_json t =
  Printf.sprintf
    "{\"prog\":\"%s\",\"from\":\"%s\",\"to\":\"%s\",\"size\":%d,\"canary\":%d,\
     \"wave_size\":%d,\"max_unavailable\":%d,\"halt\":\"%s\",\"halted\":%b,\
     \"updated\":%d,\"reverted\":%d,\"makespan_ns\":%d,\"min_serving\":%d,\
     \"min_availability_permille\":%d,\"requests\":%d,\"client_errors\":%d,\
     \"blocking\":%s,\"waves\":[%s],\"timeline\":[%s]}"
    (esc t.fs_prog) (esc t.fs_from) (esc t.fs_to) t.fs_size t.fs_canary t.fs_wave_size
    t.fs_max_unavailable (esc t.fs_halt) t.fs_halted t.fs_updated t.fs_reverted
    t.fs_makespan_ns t.fs_min_serving (min_availability_permille t) t.fs_requests
    t.fs_client_errors
    (match t.fs_blocking with None -> "null" | Some v -> verdict_json v)
    (String.concat "," (List.map wave_json t.fs_waves))
    (String.concat "," (List.map sample_json t.fs_timeline))

(* ------------------------------------------------------------------ *)
(* JSON decoding (the postmortem tool's input path) *)

let decode_error what = Error (Printf.sprintf "fleet summary: missing or ill-typed %s" what)
let req what = function Some v -> Ok v | None -> decode_error what
let ( let* ) = Result.bind

let rec collect f = function
  | [] -> Ok []
  | x :: tl ->
      let* v = f x in
      let* rest = collect f tl in
      Ok (v :: rest)

let decode_verdict j =
  let* v_instance = req "verdict.instance" (Json.int_field "instance" j) in
  let* v_wave = req "verdict.wave" (Json.int_field "wave" j) in
  let* v_success = req "verdict.success" (Json.bool_field "success" j) in
  let* v_slo_violated = req "verdict.slo_violated" (Json.bool_field "slo_violated" j) in
  let* v_healthy = req "verdict.healthy" (Json.bool_field "healthy" j) in
  let v_reason = Json.str_field "reason" j in
  let* v_downtime_ns = req "verdict.downtime_ns" (Json.int_field "downtime_ns" j) in
  let* v_total_ns = req "verdict.total_ns" (Json.int_field "total_ns" j) in
  let* v_flight =
    match Json.member "flight" j with
    | None | Some Json.Null -> Ok None
    | Some f ->
        let* f = Flight.decode f in
        Ok (Some f)
  in
  Ok
    {
      v_instance;
      v_wave;
      v_success;
      v_slo_violated;
      v_healthy;
      v_reason;
      v_downtime_ns;
      v_total_ns;
      v_flight;
    }

let decode_wave j =
  let* w_index = req "wave.index" (Json.int_field "index" j) in
  let* w_kind = req "wave.kind" (Json.str_field "kind" j) in
  let* w_start_ns = req "wave.start_ns" (Json.int_field "start_ns" j) in
  let* w_end_ns = req "wave.end_ns" (Json.int_field "end_ns" j) in
  let* verdicts = req "wave.verdicts" (Json.list_field "verdicts" j) in
  let* w_verdicts = collect decode_verdict verdicts in
  Ok { w_index; w_kind; w_start_ns; w_end_ns; w_verdicts }

let decode_sample j =
  let* s_ns = req "sample.ns" (Json.int_field "ns" j) in
  let* s_serving = req "sample.serving" (Json.int_field "serving" j) in
  Ok { s_ns; s_serving }

let decode j =
  let* fs_prog = req "prog" (Json.str_field "prog" j) in
  let* fs_from = req "from" (Json.str_field "from" j) in
  let* fs_to = req "to" (Json.str_field "to" j) in
  let* fs_size = req "size" (Json.int_field "size" j) in
  let* fs_canary = req "canary" (Json.int_field "canary" j) in
  let* fs_wave_size = req "wave_size" (Json.int_field "wave_size" j) in
  let* fs_max_unavailable = req "max_unavailable" (Json.int_field "max_unavailable" j) in
  let* fs_halt = req "halt" (Json.str_field "halt" j) in
  let* fs_halted = req "halted" (Json.bool_field "halted" j) in
  let* fs_updated = req "updated" (Json.int_field "updated" j) in
  let* fs_reverted = req "reverted" (Json.int_field "reverted" j) in
  let* fs_makespan_ns = req "makespan_ns" (Json.int_field "makespan_ns" j) in
  let* fs_min_serving = req "min_serving" (Json.int_field "min_serving" j) in
  let* fs_requests = req "requests" (Json.int_field "requests" j) in
  let* fs_client_errors = req "client_errors" (Json.int_field "client_errors" j) in
  let* fs_blocking =
    match Json.member "blocking" j with
    | None | Some Json.Null -> Ok None
    | Some v ->
        let* v = decode_verdict v in
        Ok (Some v)
  in
  let* waves = req "waves" (Json.list_field "waves" j) in
  let* fs_waves = collect decode_wave waves in
  let* timeline = req "timeline" (Json.list_field "timeline" j) in
  let* fs_timeline = collect decode_sample timeline in
  Ok
    {
      fs_prog;
      fs_from;
      fs_to;
      fs_size;
      fs_canary;
      fs_wave_size;
      fs_max_unavailable;
      fs_halt;
      fs_waves;
      fs_halted;
      fs_blocking;
      fs_updated;
      fs_reverted;
      fs_makespan_ns;
      fs_min_serving;
      fs_requests;
      fs_client_errors;
      fs_timeline;
    }

let of_json s =
  let* j = Json.parse s in
  decode j
