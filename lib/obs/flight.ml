(* The update flight recorder: one structured record per Manager.update
   attempt, assembled by the manager on every exit path (commit and
   rollback alike) and kept in a bounded per-lineage ring. The record is
   plain data — this module never touches the kernel or the clock, so
   recording is free in virtual time and byte-identical across runs. *)

type attribution = {
  a_quiesce_ns : int;
  a_restart_ns : int;
  a_trace_ns : int;
  a_copy_ns : int;
  a_spawn_join_ns : int;
  a_relink_ns : int;
  a_channel_ns : int;
  a_handlers_ns : int;
  a_teardown_ns : int;
}

let zero_attribution =
  {
    a_quiesce_ns = 0;
    a_restart_ns = 0;
    a_trace_ns = 0;
    a_copy_ns = 0;
    a_spawn_join_ns = 0;
    a_relink_ns = 0;
    a_channel_ns = 0;
    a_handlers_ns = 0;
    a_teardown_ns = 0;
  }

let attribution_sum a =
  a.a_quiesce_ns + a.a_restart_ns + a.a_trace_ns + a.a_copy_ns + a.a_spawn_join_ns
  + a.a_relink_ns + a.a_channel_ns + a.a_handlers_ns + a.a_teardown_ns

(* (label, value) pairs in waterfall order — the downtime window's stages
   in the order they elapse. *)
let attribution_components a =
  [
    ("quiesce", a.a_quiesce_ns);
    ("restart_replay", a.a_restart_ns);
    ("handlers", a.a_handlers_ns);
    ("trace", a.a_trace_ns);
    ("copy", a.a_copy_ns);
    ("spawn_join", a.a_spawn_join_ns);
    ("relink", a.a_relink_ns);
    ("channel_setup", a.a_channel_ns);
    ("teardown", a.a_teardown_ns);
  ]

type conflict_ref = {
  c_kind : string;
  c_addr : int;
  c_ty : string option;
  c_callstack : int;
  c_shard : int;
  c_round : int;
  c_detail : string;
}

type explanation = {
  e_reason : string;
  e_stage : string;
  e_conflicts : conflict_ref list;
  e_fault : string option;
}

type round = { r_words : int; r_cost_ns : int }

type slo = {
  s_downtime_budget_ns : int option;
  s_total_budget_ns : int option;
  s_downtime_ok : bool;
  s_total_ok : bool;
}

let slo_violated s = (not s.s_downtime_ok) || not s.s_total_ok

type record = {
  f_seq : int;
  f_attempt : int;
  f_prog : string;
  f_from : string;
  f_to : string;
  f_success : bool;
  f_start_ns : int;
  f_total_ns : int;
  f_downtime_ns : int;
  f_precopy : bool;
  f_workers : int;
  f_remapped_words : int;
  f_skipped_clean_words : int;
  f_rounds : round list;
  f_attribution : attribution;
  f_slo : slo option;
  f_explanation : explanation option;
  f_prior : record list;
}

let unattributed_ns r = r.f_downtime_ns - attribution_sum r.f_attribution
let reconciled ?(epsilon = 0) r = abs (unattributed_ns r) <= epsilon

(* ------------------------------------------------------------------ *)
(* JSON encoding: fixed field order, integers only, no float printing. *)

let esc = Json_escape.escape

let opt_int = function None -> "null" | Some v -> string_of_int v
let opt_str = function None -> "null" | Some s -> Printf.sprintf "\"%s\"" (esc s)

let attribution_json a =
  Printf.sprintf
    "{\"quiesce_ns\":%d,\"restart_ns\":%d,\"trace_ns\":%d,\"copy_ns\":%d,\
     \"spawn_join_ns\":%d,\"relink_ns\":%d,\"channel_ns\":%d,\"handlers_ns\":%d,\
     \"teardown_ns\":%d}"
    a.a_quiesce_ns a.a_restart_ns a.a_trace_ns a.a_copy_ns a.a_spawn_join_ns a.a_relink_ns
    a.a_channel_ns a.a_handlers_ns a.a_teardown_ns

let conflict_json c =
  Printf.sprintf
    "{\"kind\":\"%s\",\"addr\":%d,\"ty\":%s,\"callstack\":%d,\"shard\":%d,\"round\":%d,\
     \"detail\":\"%s\"}"
    (esc c.c_kind) c.c_addr (opt_str c.c_ty) c.c_callstack c.c_shard c.c_round (esc c.c_detail)

let explanation_json e =
  Printf.sprintf "{\"reason\":\"%s\",\"stage\":\"%s\",\"fault\":%s,\"conflicts\":[%s]}"
    (esc e.e_reason) (esc e.e_stage) (opt_str e.e_fault)
    (String.concat "," (List.map conflict_json e.e_conflicts))

let slo_json s =
  Printf.sprintf
    "{\"downtime_budget_ns\":%s,\"total_budget_ns\":%s,\"downtime_ok\":%b,\"total_ok\":%b}"
    (opt_int s.s_downtime_budget_ns) (opt_int s.s_total_budget_ns) s.s_downtime_ok s.s_total_ok

let round_json r = Printf.sprintf "{\"words\":%d,\"cost_ns\":%d}" r.r_words r.r_cost_ns

let rec to_json r =
  Printf.sprintf
    "{\"seq\":%d,\"attempt\":%d,\"prog\":\"%s\",\"from\":\"%s\",\"to\":\"%s\",\
     \"success\":%b,\"start_ns\":%d,\"total_ns\":%d,\"downtime_ns\":%d,\
     \"unattributed_ns\":%d,\"precopy\":%b,\"workers\":%d,\
     \"remapped_words\":%d,\"skipped_clean_words\":%d,\"rounds\":[%s],\
     \"attribution\":%s,\"slo\":%s,\"explanation\":%s,\"prior\":[%s]}"
    r.f_seq r.f_attempt (esc r.f_prog) (esc r.f_from) (esc r.f_to) r.f_success r.f_start_ns
    r.f_total_ns r.f_downtime_ns (unattributed_ns r) r.f_precopy r.f_workers
    r.f_remapped_words r.f_skipped_clean_words
    (String.concat "," (List.map round_json r.f_rounds))
    (attribution_json r.f_attribution)
    (match r.f_slo with None -> "null" | Some s -> slo_json s)
    (match r.f_explanation with None -> "null" | Some e -> explanation_json e)
    (String.concat "," (List.map to_json r.f_prior))

let list_to_json records = "[" ^ String.concat ",\n" (List.map to_json records) ^ "]"

(* ------------------------------------------------------------------ *)
(* JSON decoding (the postmortem tool's input path) *)

let decode_error what = Error (Printf.sprintf "flight record: missing or ill-typed %s" what)

let req what = function Some v -> Ok v | None -> decode_error what

let ( let* ) = Result.bind

let decode_attribution j =
  let* a_quiesce_ns = req "attribution.quiesce_ns" (Json.int_field "quiesce_ns" j) in
  let* a_restart_ns = req "attribution.restart_ns" (Json.int_field "restart_ns" j) in
  let* a_trace_ns = req "attribution.trace_ns" (Json.int_field "trace_ns" j) in
  let* a_copy_ns = req "attribution.copy_ns" (Json.int_field "copy_ns" j) in
  let* a_spawn_join_ns = req "attribution.spawn_join_ns" (Json.int_field "spawn_join_ns" j) in
  let* a_relink_ns = req "attribution.relink_ns" (Json.int_field "relink_ns" j) in
  let* a_channel_ns = req "attribution.channel_ns" (Json.int_field "channel_ns" j) in
  let* a_handlers_ns = req "attribution.handlers_ns" (Json.int_field "handlers_ns" j) in
  let* a_teardown_ns = req "attribution.teardown_ns" (Json.int_field "teardown_ns" j) in
  Ok
    {
      a_quiesce_ns;
      a_restart_ns;
      a_trace_ns;
      a_copy_ns;
      a_spawn_join_ns;
      a_relink_ns;
      a_channel_ns;
      a_handlers_ns;
      a_teardown_ns;
    }

let decode_conflict j =
  let* c_kind = req "conflict.kind" (Json.str_field "kind" j) in
  let* c_addr = req "conflict.addr" (Json.int_field "addr" j) in
  let c_ty = Json.str_field "ty" j in
  let* c_callstack = req "conflict.callstack" (Json.int_field "callstack" j) in
  let* c_shard = req "conflict.shard" (Json.int_field "shard" j) in
  let* c_round = req "conflict.round" (Json.int_field "round" j) in
  let* c_detail = req "conflict.detail" (Json.str_field "detail" j) in
  Ok { c_kind; c_addr; c_ty; c_callstack; c_shard; c_round; c_detail }

let rec collect f = function
  | [] -> Ok []
  | x :: tl ->
      let* v = f x in
      let* rest = collect f tl in
      Ok (v :: rest)

let decode_explanation j =
  let* e_reason = req "explanation.reason" (Json.str_field "reason" j) in
  let* e_stage = req "explanation.stage" (Json.str_field "stage" j) in
  let e_fault = Json.str_field "fault" j in
  let* conflicts = req "explanation.conflicts" (Json.list_field "conflicts" j) in
  let* e_conflicts = collect decode_conflict conflicts in
  Ok { e_reason; e_stage; e_conflicts; e_fault }

let decode_slo j =
  let s_downtime_budget_ns = Json.int_field "downtime_budget_ns" j in
  let s_total_budget_ns = Json.int_field "total_budget_ns" j in
  let* s_downtime_ok = req "slo.downtime_ok" (Json.bool_field "downtime_ok" j) in
  let* s_total_ok = req "slo.total_ok" (Json.bool_field "total_ok" j) in
  Ok { s_downtime_budget_ns; s_total_budget_ns; s_downtime_ok; s_total_ok }

let decode_round j =
  let* r_words = req "round.words" (Json.int_field "words" j) in
  let* r_cost_ns = req "round.cost_ns" (Json.int_field "cost_ns" j) in
  Ok { r_words; r_cost_ns }

let rec decode j =
  let* f_seq = req "seq" (Json.int_field "seq" j) in
  let* f_attempt = req "attempt" (Json.int_field "attempt" j) in
  let* f_prog = req "prog" (Json.str_field "prog" j) in
  let* f_from = req "from" (Json.str_field "from" j) in
  let* f_to = req "to" (Json.str_field "to" j) in
  let* f_success = req "success" (Json.bool_field "success" j) in
  let* f_start_ns = req "start_ns" (Json.int_field "start_ns" j) in
  let* f_total_ns = req "total_ns" (Json.int_field "total_ns" j) in
  let* f_downtime_ns = req "downtime_ns" (Json.int_field "downtime_ns" j) in
  let* f_precopy = req "precopy" (Json.bool_field "precopy" j) in
  let* f_workers = req "workers" (Json.int_field "workers" j) in
  (* word counters postdate the first recorder format: default 0 so old
     artifacts still decode *)
  let f_remapped_words = Option.value (Json.int_field "remapped_words" j) ~default:0 in
  let f_skipped_clean_words =
    Option.value (Json.int_field "skipped_clean_words" j) ~default:0
  in
  let* rounds = req "rounds" (Json.list_field "rounds" j) in
  let* f_rounds = collect decode_round rounds in
  let* attribution = req "attribution" (Json.member "attribution" j) in
  let* f_attribution = decode_attribution attribution in
  let* f_slo =
    match Json.member "slo" j with
    | None | Some Json.Null -> Ok None
    | Some s ->
        let* s = decode_slo s in
        Ok (Some s)
  in
  let* f_explanation =
    match Json.member "explanation" j with
    | None | Some Json.Null -> Ok None
    | Some e ->
        let* e = decode_explanation e in
        Ok (Some e)
  in
  let* f_prior =
    match Json.list_field "prior" j with
    | None -> Ok []
    | Some priors -> collect decode priors
  in
  Ok
    {
      f_seq;
      f_attempt;
      f_prog;
      f_from;
      f_to;
      f_success;
      f_start_ns;
      f_total_ns;
      f_downtime_ns;
      f_precopy;
      f_workers;
      f_remapped_words;
      f_skipped_clean_words;
      f_rounds;
      f_attribution;
      f_slo;
      f_explanation;
      f_prior;
    }

let of_json s =
  let* j = Json.parse s in
  decode j

let of_json_list s =
  let* j = Json.parse s in
  match j with
  | Json.List items -> collect decode items
  | j -> decode j |> Result.map (fun r -> [ r ])
