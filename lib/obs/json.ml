(* A minimal JSON reader for the subsystem's own machine-readable outputs
   (flight records, benchmark baselines). Every writer in this repository
   emits integers only — no floats anywhere, by the determinism rules — so
   the number production is integer-only and a fractional or exponent form
   is a parse error, not a silent approximation. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "offset %d: %s" pos msg))

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail !pos (Printf.sprintf "expected %C, found %C" c d)
    | None -> fail !pos (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail !pos ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail !pos "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> begin
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'f' -> Buffer.add_char buf '\012'
          | Some 'u' ->
              if !pos + 4 >= n then fail !pos "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_char buf '?'
              | None -> fail !pos "bad \\u escape");
              pos := !pos + 4
          | _ -> fail !pos "bad escape");
          advance ();
          go ()
        end
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
          advance ();
          digits ()
      | _ -> ()
    in
    digits ();
    if !pos = start || (s.[start] = '-' && !pos = start + 1) then fail start "expected number";
    (match peek () with
    | Some ('.' | 'e' | 'E') -> fail !pos "non-integer numbers are not produced by any writer"
    | _ -> ());
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail start "integer out of range"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' -> begin
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail !pos "expected ',' or '}'"
          in
          Obj (members [])
        end
      end
    | Some '[' -> begin
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail !pos "expected ',' or ']'"
          in
          List (elements [])
        end
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Int (parse_int ())
    | Some c -> fail !pos (Printf.sprintf "unexpected %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing data after value";
  v

let parse s = match parse_exn s with v -> Ok v | exception Parse_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Accessors (lookup + shape checks for decoders) *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_int = function Int v -> Some v | _ -> None
let to_str = function Str v -> Some v | _ -> None
let to_bool = function Bool v -> Some v | _ -> None
let to_list = function List v -> Some v | _ -> None

let int_field key j = Option.bind (member key j) to_int
let str_field key j = Option.bind (member key j) to_str
let bool_field key j = Option.bind (member key j) to_bool
let list_field key j = Option.bind (member key j) to_list
