type phase = Begin | End | Instant | Complete of int

type event = {
  seq : int;
  ts_ns : int;
  pid : int;
  tid : int;
  name : string;
  cat : string;
  phase : phase;
  args : (string * string) list;
}

type t = {
  clock : unit -> int;
  capacity : int;
  buf : event option array;
  mutable next : int;  (* next write slot in the ring *)
  mutable count : int;  (* total events ever emitted; the seq source *)
}

let create ?(capacity = 65536) ~clock () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { clock; capacity; buf = Array.make capacity None; next = 0; count = 0 }

let capacity t = t.capacity
let emitted t = t.count
let length t = min t.count t.capacity
let dropped t = max 0 (t.count - t.capacity)

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.count <- 0

let emit t ?(pid = 0) ?(tid = 0) ?(cat = "mcr") ?(args = []) phase name =
  let e = { seq = t.count; ts_ns = t.clock (); pid; tid; name; cat; phase; args } in
  t.buf.(t.next) <- Some e;
  t.next <- (t.next + 1) mod t.capacity;
  t.count <- t.count + 1

(* The emitters the instrumented layers call: they take the sink as an
   option so a disabled sink costs one branch and zero virtual time. *)

let span_begin o ?pid ?tid ?cat ?args name =
  match o with None -> () | Some t -> emit t ?pid ?tid ?cat ?args Begin name

let span_end o ?pid ?tid ?cat ?args name =
  match o with None -> () | Some t -> emit t ?pid ?tid ?cat ?args End name

let instant o ?pid ?tid ?cat ?args name =
  match o with None -> () | Some t -> emit t ?pid ?tid ?cat ?args Instant name

let complete o ?pid ?tid ?cat ?args ~dur_ns name =
  match o with None -> () | Some t -> emit t ?pid ?tid ?cat ?args (Complete dur_ns) name

let events t =
  if t.count <= t.capacity then
    List.filter_map Fun.id (Array.to_list (Array.sub t.buf 0 t.next))
  else begin
    (* ring wrapped: oldest surviving event sits at [next] *)
    let out = ref [] in
    for i = t.capacity - 1 downto 0 do
      match t.buf.((t.next + i) mod t.capacity) with
      | Some e -> out := e :: !out
      | None -> ()
    done;
    !out
  end

let phase_name = function
  | Begin -> "B"
  | End -> "E"
  | Instant -> "i"
  | Complete _ -> "X"

let pp_event ppf e =
  Format.fprintf ppf "#%d %dns pid=%d tid=%d %s %s/%s" e.seq e.ts_ns e.pid e.tid
    (phase_name e.phase) e.cat e.name;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) e.args
