(** Trace exporters.

    Both exporters are deterministic functions of the event list: fixed
    field order, fixed-point decimal timestamps (no float printing), and
    per-sink sequence numbers carried in [args.seq] so equal-timestamp
    events keep a stable total order in any viewer. *)

val chrome_json : Trace.t -> string
(** Chrome trace-event JSON (object format, [traceEvents] array) —
    loadable by Perfetto ([ui.perfetto.dev]) and [chrome://tracing].
    Span begin/end map to ["B"]/["E"], instants to ["i"], explicit-duration
    events to ["X"]. Timestamps are microseconds with nanosecond
    precision. *)

val timeline : Trace.t -> string
(** Plain-text event timeline via {!Mcr_util.Tablefmt}: one row per event,
    oldest first — the no-tooling view of the same data. *)

(** {1 Span reconstruction} *)

type span = {
  s_name : string;
  s_cat : string;
  s_pid : int;
  s_tid : int;
  s_begin_ns : int;
  s_end_ns : int;
  s_depth : int;  (** Nesting depth on the (pid, tid) track; 0 = top level. *)
}

val spans : Trace.t -> span list * string list
(** Reconstruct completed spans by matching Begin/End per (pid, tid) track
    (Complete events yield spans directly). The second component lists
    structural violations — mismatched, unopened, or never-closed spans —
    and is empty for a well-nested trace. *)

val check_balanced : Trace.t -> (unit, string list) result
(** [Ok ()] iff every [Begin] has a matching [End] on its (pid, tid) track
    — the {!spans} violation list, as a result. The [@lint] alias
    ([bin/mcr_tracelint]) fails the build on [Error]. *)

(** {1 Flight records} *)

val flight_json : Flight.record list -> string
(** {!Flight.list_to_json} with a trailing newline — the artifact format
    the smoke benches write and CI uploads. *)

val us_of_ns : int -> string
(** Nanoseconds as a fixed-point microsecond decimal ("12.345"). *)

val json_escape : string -> string
