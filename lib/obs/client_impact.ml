(* Correlate per-request stamps with a flight record's downtime waterfall.
   Pure arithmetic over already-recorded data — nothing here touches the
   kernel. *)

type req = {
  q_id : int;
  q_scheduled_ns : int;
  q_first_byte_ns : int;
  q_complete_ns : int;
  q_retries : int;
  q_ok : bool;
}

let window (r : Flight.record) =
  if r.Flight.f_downtime_ns <= 0 then None
  else
    let w_end = r.Flight.f_start_ns + r.Flight.f_total_ns in
    Some (w_end - r.Flight.f_downtime_ns, w_end)

let overlaps (w_start, w_end) q = q.q_scheduled_ns < w_end && q.q_complete_ns > w_start

(* The waterfall component containing [offset] ns into the window: walk the
   components cumulatively, skipping zero-length ones. Offsets past the
   attributed span (possible only if the record failed reconciliation) fall
   into the last non-empty segment. *)
let segment_at (a : Flight.attribution) offset =
  let components = List.filter (fun (_, ns) -> ns > 0) (Flight.attribution_components a) in
  let rec walk acc last = function
    | [] -> last
    | (label, ns) :: rest ->
        if offset < acc + ns then Some label else walk (acc + ns) (Some label) rest
  in
  walk 0 None components

let stalling_segment (r : Flight.record) q =
  match window r with
  | None -> None
  | Some ((w_start, _) as w) ->
      if not (overlaps w q) then None
      else segment_at r.Flight.f_attribution (max (q.q_scheduled_ns - w_start) 0)

type summary = {
  ci_window_start_ns : int;
  ci_window_end_ns : int;
  ci_total : int;
  ci_stalled : int;
  ci_retried : int;
  ci_errored : int;
  ci_by_segment : (string * int) list;
  ci_stalled_p50_ns : int;
  ci_stalled_p99_ns : int;
  ci_stalled_max_ns : int;
  ci_clear_p99_ns : int;
}

(* Exact percentile, rank = ceil(p/100 * n) — same rule the load driver's
   [exact_percentile] uses, so report and bench numbers agree. *)
let percentile ds p =
  let ds = List.sort compare ds |> Array.of_list in
  let n = Array.length ds in
  if n = 0 then 0
  else
    let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int n))) in
    ds.(min (n - 1) (rank - 1))

let analyze (r : Flight.record) reqs =
  let w_start, w_end = match window r with Some w -> w | None -> (0, 0) in
  let stalled, clear =
    if w_end = 0 then ([], reqs) else List.partition (overlaps (w_start, w_end)) reqs
  in
  let counts =
    List.map
      (fun (label, _) ->
        ( label,
          List.length
            (List.filter
               (fun q -> segment_at r.Flight.f_attribution (max (q.q_scheduled_ns - w_start) 0)
                         = Some label)
               stalled) ))
      (Flight.attribution_components r.Flight.f_attribution)
    |> List.filter (fun (_, n) -> n > 0)
  in
  let lat q = q.q_complete_ns - q.q_scheduled_ns in
  let stalled_lat = List.map lat stalled in
  {
    ci_window_start_ns = w_start;
    ci_window_end_ns = w_end;
    ci_total = List.length reqs;
    ci_stalled = List.length stalled;
    ci_retried = List.length (List.filter (fun q -> q.q_retries > 0) stalled);
    ci_errored = List.length (List.filter (fun q -> not q.q_ok) stalled);
    ci_by_segment = counts;
    ci_stalled_p50_ns = percentile stalled_lat 50.;
    ci_stalled_p99_ns = percentile stalled_lat 99.;
    ci_stalled_max_ns = List.fold_left max 0 stalled_lat;
    ci_clear_p99_ns = percentile (List.map lat clear) 99.;
  }

(* ------------------------------------------------------------------ *)
(* JSON: integers only, fixed field order, same dialect as Flight. *)

let req_to_json q =
  Printf.sprintf
    {|{"id":%d,"scheduled_ns":%d,"first_byte_ns":%d,"complete_ns":%d,"retries":%d,"ok":%b}|}
    q.q_id q.q_scheduled_ns q.q_first_byte_ns q.q_complete_ns q.q_retries q.q_ok

let reqs_to_json ~server reqs =
  Printf.sprintf {|{"server":"%s","requests":[%s]}|}
    (Json_escape.escape server)
    (String.concat ",\n" (List.map req_to_json reqs))

let ( let* ) = Result.bind

let req_of_json j =
  let req what = function Some v -> Ok v | None -> Error ("request: missing " ^ what) in
  let* q_id = req "id" (Json.int_field "id" j) in
  let* q_scheduled_ns = req "scheduled_ns" (Json.int_field "scheduled_ns" j) in
  let* q_first_byte_ns = req "first_byte_ns" (Json.int_field "first_byte_ns" j) in
  let* q_complete_ns = req "complete_ns" (Json.int_field "complete_ns" j) in
  let* q_retries = req "retries" (Json.int_field "retries" j) in
  let* q_ok = req "ok" (Json.bool_field "ok" j) in
  Ok { q_id; q_scheduled_ns; q_first_byte_ns; q_complete_ns; q_retries; q_ok }

let reqs_of_json data =
  let* j = Json.parse data in
  let* server =
    match Json.str_field "server" j with
    | Some s -> Ok s
    | None -> Error "requests file: missing server"
  in
  let* items =
    match Json.list_field "requests" j with
    | Some l -> Ok l
    | None -> Error "requests file: missing requests array"
  in
  let* reqs =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* q = req_of_json item in
        Ok (q :: acc))
      (Ok []) items
  in
  Ok (server, List.rev reqs)
