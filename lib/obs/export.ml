module T = Trace

(* Chrome trace-event timestamps are microseconds; keep full nanosecond
   precision as a fixed-point decimal so the output is deterministic (no
   float formatting involved). *)
let us_of_ns ns =
  if ns < 0 then Printf.sprintf "-%d.%03d" (-ns / 1000) (-ns mod 1000)
  else Printf.sprintf "%d.%03d" (ns / 1000) (ns mod 1000)

let json_escape = Json_escape.escape

let event_json buf (e : T.event) =
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%s,\"pid\":%d,\"tid\":%d"
       (json_escape e.T.name) (json_escape e.T.cat) (T.phase_name e.T.phase)
       (us_of_ns e.T.ts_ns) e.T.pid e.T.tid);
  (match e.T.phase with
  | T.Complete dur -> Buffer.add_string buf (Printf.sprintf ",\"dur\":%s" (us_of_ns dur))
  | T.Instant -> Buffer.add_string buf ",\"s\":\"t\""
  | T.Begin | T.End -> ());
  Buffer.add_string buf (Printf.sprintf ",\"args\":{\"seq\":%d" e.T.seq);
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf ",\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    e.T.args;
  Buffer.add_string buf "}}"

let chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      event_json buf e)
    (T.events t);
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let timeline t =
  let module Tf = Mcr_util.Tablefmt in
  let tab = Tf.create ~header:[ "ts ms"; "ph"; "cat"; "pid"; "tid"; "name"; "args" ] in
  Tf.set_align tab [ Tf.Right; Tf.Left; Tf.Left; Tf.Right; Tf.Right; Tf.Left; Tf.Left ];
  List.iter
    (fun (e : T.event) ->
      let args =
        (match e.T.phase with
        | T.Complete dur -> [ Printf.sprintf "dur=%.3fms" (float_of_int dur /. 1e6) ]
        | _ -> [])
        @ List.map (fun (k, v) -> k ^ "=" ^ v) e.T.args
      in
      Tf.add_row tab
        [
          Printf.sprintf "%d.%06d" (e.T.ts_ns / 1_000_000) (e.T.ts_ns mod 1_000_000);
          T.phase_name e.T.phase;
          e.T.cat;
          string_of_int e.T.pid;
          string_of_int e.T.tid;
          e.T.name;
          String.concat " " args;
        ])
    (T.events t);
  let header =
    Printf.sprintf "trace: %d event(s), %d dropped\n" (T.length t) (T.dropped t)
  in
  header ^ Tf.render tab

(* ------------------------------------------------------------------ *)
(* Span reconstruction (structure checks, per-stage rollups) *)

type span = {
  s_name : string;
  s_cat : string;
  s_pid : int;
  s_tid : int;
  s_begin_ns : int;
  s_end_ns : int;
  s_depth : int;  (* nesting depth on its (pid, tid) track, 0 = top *)
}

let spans t =
  let stacks : (int * int, (T.event * int) list ref) Hashtbl.t = Hashtbl.create 8 in
  let out = ref [] in
  let errors = ref [] in
  List.iter
    (fun (e : T.event) ->
      let key = (e.T.pid, e.T.tid) in
      let stack =
        match Hashtbl.find_opt stacks key with
        | Some s -> s
        | None ->
            let s = ref [] in
            Hashtbl.replace stacks key s;
            s
      in
      match e.T.phase with
      | T.Begin -> stack := (e, List.length !stack) :: !stack
      | T.End -> (
          match !stack with
          | (b, depth) :: rest when b.T.name = e.T.name ->
              stack := rest;
              out :=
                {
                  s_name = b.T.name;
                  s_cat = b.T.cat;
                  s_pid = e.T.pid;
                  s_tid = e.T.tid;
                  s_begin_ns = b.T.ts_ns;
                  s_end_ns = e.T.ts_ns;
                  s_depth = depth;
                }
                :: !out
          | (b, _) :: _ ->
              errors :=
                Printf.sprintf "end %S closes open span %S on pid=%d tid=%d" e.T.name b.T.name
                  e.T.pid e.T.tid
                :: !errors
          | [] ->
              errors :=
                Printf.sprintf "end %S with no open span on pid=%d tid=%d" e.T.name e.T.pid
                  e.T.tid
                :: !errors)
      | T.Complete dur ->
          out :=
            {
              s_name = e.T.name;
              s_cat = e.T.cat;
              s_pid = e.T.pid;
              s_tid = e.T.tid;
              s_begin_ns = e.T.ts_ns;
              s_end_ns = e.T.ts_ns + dur;
              s_depth = List.length !stack;
            }
            :: !out
      | T.Instant -> ())
    (T.events t);
  Hashtbl.iter
    (fun (pid, tid) stack ->
      List.iter
        (fun ((b : T.event), _) ->
          errors := Printf.sprintf "span %S never ended on pid=%d tid=%d" b.T.name pid tid :: !errors)
        !stack)
    stacks;
  (List.rev !out, List.rev !errors)

(* The balance checker as a library function (the lint harness and test_obs
   share it): a sink is balanced iff span reconstruction reports zero
   structural violations. *)
let check_balanced t = match spans t with _, [] -> Ok () | _, errors -> Error errors

let flight_json records = Flight.list_to_json records ^ "\n"
