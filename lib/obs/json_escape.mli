val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control characters). *)
