(** The update flight recorder.

    One {!record} per [Manager.update] attempt, assembled by the manager on
    every exit path — commit and rollback alike — and kept in a bounded
    per-lineage ring served over the control socket
    ([mcr-ctl EXPLAIN [LAST|<n>]]). Three questions it answers:

    - {b Where did the downtime go?} {!attribution} decomposes the
      service-interruption window into independently measured segments that
      sum to the reported [downtime_ns] exactly ({!unattributed_ns} is the
      checked residue — property-tested to be 0 for every server, worker
      count and policy).
    - {b Why did it roll back?} {!explanation} names the failed pipeline
      stage, the frozen rollback reason, the conflicting objects (address,
      type tag, call-stack ID, shard, pre-copy round — captured when the
      conflict fired, never re-derived after rollback) and the
      fault-injection points that fired, with the retry lineage in
      [f_prior].
    - {b Did it meet its budget?} {!slo} evaluates the policy's optional
      downtime/total-time budgets; violations also count
      [mcr_slo_violations_total].

    This module is plain data: it never reads the kernel clock and charges
    nothing, so recording is always on and changes no measured number. *)

type attribution = {
  a_quiesce_ns : int;  (** Quiescence wait inside the window. *)
  a_restart_ns : int;
      (** Restart + replay; 0 under pre-copy (it runs before the window). *)
  a_trace_ns : int;  (** Critical pair's tracing critical path. *)
  a_copy_ns : int;  (** Critical pair's copy critical path (max shard). *)
  a_spawn_join_ns : int;  (** Critical pair's worker-pool spawn/join overhead. *)
  a_relink_ns : int;
      (** Program relink / library prelink; 0 under pre-copy (prepaid). *)
  a_channel_ns : int;  (** Per-process-pair transfer channel setup. *)
  a_handlers_ns : int;  (** Reinit-handler settling and transfer waves. *)
  a_teardown_ns : int;
      (** Commit/rollback tail: ctl reply delivery, kills, releases. *)
}
(** The downtime window, cut into the segments that elapse inside it, in
    waterfall order. Components are measured independently of
    [downtime_ns], so their sum reconciling with it is a real check, not an
    identity. *)

val zero_attribution : attribution
val attribution_sum : attribution -> int

val attribution_components : attribution -> (string * int) list
(** [(label, ns)] pairs in waterfall (elapsed) order. *)

type conflict_ref = {
  c_kind : string;  (** ["nonupdatable_changed" | "no_plan" | "missing_type" | "injected"]. *)
  c_addr : int;  (** Old-version payload address (0 for injected). *)
  c_ty : string option;  (** Type tag, when typed. *)
  c_callstack : int;  (** Allocation call-stack ID (0 if n/a). *)
  c_shard : int;  (** Transfer shard that touched it (-1 unsharded). *)
  c_round : int;  (** Pre-copy round that last staged it (0 = never). *)
  c_detail : string;
}

type explanation = {
  e_reason : string;  (** Frozen [Mcr_error.to_string] form. *)
  e_stage : string;
      (** Failed pipeline stage: ["init" | "quiesce" | "restart_replay" |
          "precopy" | "state_transfer"]. *)
  e_conflicts : conflict_ref list;
  e_fault : string option;
      (** Fault-injection points that fired, comma-joined, oldest first. *)
}

type round = { r_words : int; r_cost_ns : int }
(** One pre-copy round: delta words staged and what they cost. *)

type slo = {
  s_downtime_budget_ns : int option;
  s_total_budget_ns : int option;
  s_downtime_ok : bool;
  s_total_ok : bool;
}

val slo_violated : slo -> bool

type record = {
  f_seq : int;  (** Lineage-wide ordinal, 1-based, monotonic. *)
  f_attempt : int;  (** 0-based attempt index within one [update] call. *)
  f_prog : string;
  f_from : string;  (** Version tags. *)
  f_to : string;
  f_success : bool;
  f_start_ns : int;  (** Virtual clock at attempt start. *)
  f_total_ns : int;
  f_downtime_ns : int;
  f_precopy : bool;
  f_workers : int;  (** Requested transfer worker-pool size. *)
  f_remapped_words : int;
      (** Words whose copy charge the zero-copy page remap retracted,
          summed over process pairs. A word count, not a duration: it is
          NOT part of {!attribution_sum}. *)
  f_skipped_clean_words : int;
      (** Words of soft-dirty-clean objects never copied (left to the new
          version's own startup), summed over pairs. Word count, not ns. *)
  f_rounds : round list;  (** Pre-copy rounds, oldest first. *)
  f_attribution : attribution;
  f_slo : slo option;  (** [None] when the policy sets no budgets. *)
  f_explanation : explanation option;  (** [None] on success. *)
  f_prior : record list;
      (** Earlier attempts of the same [update] call, oldest first, each
          with its own explanation ([f_prior] inside them is emptied). *)
}

val unattributed_ns : record -> int
(** [f_downtime_ns - attribution_sum f_attribution] — the residue the
    decomposition failed to explain. 0 on every pipeline path. *)

val reconciled : ?epsilon:int -> record -> bool
(** [|unattributed_ns r| <= epsilon] (default 0). *)

(** {1 JSON}

    Deterministic encoding: fixed field order, integers only (the
    [unattributed_ns] field is included so consumers need not recompute),
    no float printing. [of_json] inverts [to_json]. *)

val to_json : record -> string
val list_to_json : record list -> string
val of_json : string -> (record, string) result

val decode : Json.t -> (record, string) result
(** Decode an already-parsed value — for containers (fleet summaries) that
    embed flight records. *)

val of_json_list : string -> (record list, string) result
(** Accepts either a JSON array of records or a single record. *)
