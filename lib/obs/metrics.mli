(** The metrics half of the observability subsystem: a registry of named
    counters, gauges, and fixed-bucket histograms.

    Deterministic by construction: instruments hold plain integers fed from
    virtual-time measurements, snapshots list entries sorted by name, and
    [diff] is pure arithmetic — so snapshots of two identical runs are
    structurally equal, and a snapshot can ride inside a
    {!Mcr_core.Manager.report} or cross the [mcr-ctl] socket as text
    without breaking reproducibility. *)

type t
(** A registry. Registering the same name twice returns the existing
    instrument; re-registering a name with a different kind raises
    [Invalid_argument]. *)

val create : unit -> t

type counter
type gauge
type histogram

val counter : t -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

val histogram : t -> ?bounds:int array -> string -> histogram
(** Default bounds: {!Mcr_util.Stats.default_ns_bounds}. *)

val observe : histogram -> int -> unit

(** {1 Snapshots} *)

type hist_snapshot = {
  bounds : int array;
  counts : int array;  (** Length [bounds + 1]; last cell is overflow. *)
  total : int;
  sum : int;
  vmax : int;  (** Largest value observed (0 when empty). *)
}

type snapshot = {
  counters : (string * int) list;  (** Sorted by name. *)
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

val snapshot : t -> snapshot

val diff : latest:snapshot -> earlier:snapshot -> snapshot
(** Per-interval view: counters and histogram cells subtract, gauges keep
    their latest value. Entries missing from [earlier] pass through. *)

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> int option
val find_histogram : snapshot -> string -> hist_snapshot option

val hist_snapshot_merge : hist_snapshot -> hist_snapshot -> hist_snapshot
(** Pointwise sum (counts, total, sum; max of maxima) — aggregating one
    instrument across registries, e.g. per-instance request-latency
    histograms into a fleet-wide tail.
    @raise Invalid_argument when the bounds differ. *)

val hist_snapshot_percentile : hist_snapshot -> float -> int

val hist_snapshot_summary : hist_snapshot -> Mcr_util.Stats.hist_summary
(** Tail summary (p50/p90/p99/p99.9/max) of a snapshotted histogram. *)

val render : snapshot -> string
(** Plain-text rendering (via {!Mcr_util.Tablefmt}) — the payload of the
    [mcr-ctl STATS] reply. *)
