(* Human-readable rendering of a flight record: a downtime waterfall plus
   the conflict narrative. All formatting is integer fixed-point — the
   output is deterministic and safe to golden-test. *)

let fms ns =
  let sign = if ns < 0 then "-" else "" in
  let ns = abs ns in
  Printf.sprintf "%s%d.%03d ms" sign (ns / 1_000_000) (ns mod 1_000_000 / 1000)

(* integer tenths of a percent, truncated: 2_333 -> "23.3%" *)
let pct part whole =
  if whole <= 0 then "  -  "
  else
    let tenths = part * 1000 / whole in
    Printf.sprintf "%2d.%d%%" (tenths / 10) (tenths mod 10)

let bar_width = 32

let waterfall buf (a : Flight.attribution) ~downtime_ns =
  let components = Flight.attribution_components a in
  let widest = List.fold_left (fun acc (_, v) -> max acc v) 0 components in
  Buffer.add_string buf "downtime waterfall:\n";
  if downtime_ns = 0 then
    Buffer.add_string buf "  (window never opened: zero downtime)\n"
  else
    List.iter
      (fun (label, ns) ->
        if ns > 0 then begin
          let len = if widest = 0 then 0 else ns * bar_width / widest in
          let len = if len = 0 then 1 else len in
          Buffer.add_string buf
            (Printf.sprintf "  %-14s %14s  %s  |%s%s|\n" label (fms ns) (pct ns downtime_ns)
               (String.make len '#')
               (String.make (bar_width - len) ' '))
        end)
      components;
  let residue = downtime_ns - Flight.attribution_sum a in
  Buffer.add_string buf
    (if residue = 0 then "  components sum to the reported downtime exactly\n"
     else Printf.sprintf "  !! %d ns of downtime unattributed\n" residue)

let conflict_line (c : Flight.conflict_ref) =
  let shard = if c.Flight.c_shard < 0 then "-" else string_of_int c.Flight.c_shard in
  let round = if c.Flight.c_round = 0 then "-" else string_of_int c.Flight.c_round in
  Printf.sprintf "    - %s at 0x%x (%s), callstack %d, shard %s, precopy round %s: %s\n"
    c.Flight.c_kind c.Flight.c_addr
    (Option.value c.Flight.c_ty ~default:"untyped")
    c.Flight.c_callstack shard round c.Flight.c_detail

let explanation buf (e : Flight.explanation) =
  Buffer.add_string buf "rollback explanation:\n";
  Buffer.add_string buf (Printf.sprintf "  failed stage: %s\n" e.Flight.e_stage);
  Buffer.add_string buf (Printf.sprintf "  reason: %s\n" e.Flight.e_reason);
  (match e.Flight.e_fault with
  | Some points -> Buffer.add_string buf (Printf.sprintf "  fault points fired: %s\n" points)
  | None -> ());
  match e.Flight.e_conflicts with
  | [] -> ()
  | conflicts ->
      Buffer.add_string buf "  conflicting objects:\n";
      List.iter (fun c -> Buffer.add_string buf (conflict_line c)) conflicts

let slo_line (s : Flight.slo) ~downtime_ns ~total_ns =
  let budget label actual ok = function
    | None -> Printf.sprintf "%s budget: none" label
    | Some b ->
        Printf.sprintf "%s budget %s — %s" label (fms b)
          (if ok then "ok (" ^ fms actual ^ ")" else "VIOLATED (" ^ fms actual ^ ")")
  in
  Printf.sprintf "slo: %s; %s\n"
    (budget "downtime" downtime_ns s.Flight.s_downtime_ok s.Flight.s_downtime_budget_ns)
    (budget "total" total_ns s.Flight.s_total_ok s.Flight.s_total_budget_ns)

let prior_line (r : Flight.record) =
  let outcome =
    if r.Flight.f_success then "committed"
    else
      match r.Flight.f_explanation with
      | Some e -> Printf.sprintf "rolled back at %s (%s)" e.Flight.e_stage e.Flight.e_reason
      | None -> "rolled back"
  in
  Printf.sprintf "  #%d attempt %d: %s, downtime %s\n" r.Flight.f_seq r.Flight.f_attempt
    outcome (fms r.Flight.f_downtime_ns)

let render (r : Flight.record) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "flight #%d %s %s -> %s — %s\n" r.Flight.f_seq r.Flight.f_prog
       r.Flight.f_from r.Flight.f_to
       (if r.Flight.f_success then "COMMITTED"
        else
          match r.Flight.f_explanation with
          | Some e -> "ROLLED BACK (" ^ e.Flight.e_reason ^ ")"
          | None -> "ROLLED BACK"));
  Buffer.add_string buf
    (Printf.sprintf "attempt %d; policy: %s, workers=%d\n" r.Flight.f_attempt
       (if r.Flight.f_precopy then
          Printf.sprintf "pre-copy (%d rounds run)" (List.length r.Flight.f_rounds)
        else "single-shot")
       r.Flight.f_workers);
  if r.Flight.f_remapped_words > 0 || r.Flight.f_skipped_clean_words > 0 then
    Buffer.add_string buf
      (Printf.sprintf "transfer: %d words remapped (zero-copy), %d clean words skipped\n"
         r.Flight.f_remapped_words r.Flight.f_skipped_clean_words);
  Buffer.add_string buf
    (Printf.sprintf "start %s into the run; total %s; downtime %s\n"
       (fms r.Flight.f_start_ns) (fms r.Flight.f_total_ns) (fms r.Flight.f_downtime_ns));
  Buffer.add_char buf '\n';
  waterfall buf r.Flight.f_attribution ~downtime_ns:r.Flight.f_downtime_ns;
  (match r.Flight.f_rounds with
  | [] -> ()
  | rounds ->
      Buffer.add_string buf "\npre-copy rounds (prepaid, outside the window):\n";
      List.iteri
        (fun i (rd : Flight.round) ->
          Buffer.add_string buf
            (Printf.sprintf "  round %d: %d delta words, %s\n" (i + 1) rd.Flight.r_words
               (fms rd.Flight.r_cost_ns)))
        rounds);
  (match r.Flight.f_explanation with
  | Some e ->
      Buffer.add_char buf '\n';
      explanation buf e
  | None -> ());
  (match r.Flight.f_slo with
  | Some s ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (slo_line s ~downtime_ns:r.Flight.f_downtime_ns ~total_ns:r.Flight.f_total_ns)
  | None -> ());
  (match r.Flight.f_prior with
  | [] -> ()
  | priors ->
      Buffer.add_string buf "\nprior attempts of this update:\n";
      List.iter (fun p -> Buffer.add_string buf (prior_line p)) priors);
  Buffer.contents buf

let render_list records = String.concat "\n" (List.map render records)

(* ------------------------------------------------------------------ *)
(* Client impact: which requests the window hit, and which waterfall
   segment held them. Same bar/fixed-point conventions as the waterfall
   so the two sections read side by side. *)

let render_client_impact (r : Flight.record) reqs =
  let s = Client_impact.analyze r reqs in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "client impact:\n";
  if s.Client_impact.ci_window_end_ns = 0 then
    Buffer.add_string buf "  (window never opened: zero downtime, no requests stalled)\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "  window %s -> %s (%s)\n"
         (fms s.Client_impact.ci_window_start_ns)
         (fms s.Client_impact.ci_window_end_ns)
         (fms (s.Client_impact.ci_window_end_ns - s.Client_impact.ci_window_start_ns)));
    Buffer.add_string buf
      (Printf.sprintf "  requests in flight or arriving inside the window: %d of %d\n"
         s.Client_impact.ci_stalled s.Client_impact.ci_total);
    (match s.Client_impact.ci_by_segment with
    | [] -> ()
    | counts ->
        let widest = List.fold_left (fun acc (_, n) -> max acc n) 0 counts in
        Buffer.add_string buf "  stalled in segment:\n";
        List.iter
          (fun (label, n) ->
            let len = if widest = 0 then 0 else n * bar_width / widest in
            let len = if len = 0 then 1 else len in
            Buffer.add_string buf
              (Printf.sprintf "    %-14s %6d  %s  |%s%s|\n" label n
                 (pct n s.Client_impact.ci_stalled)
                 (String.make len '#')
                 (String.make (bar_width - len) ' ')))
          counts);
    if s.Client_impact.ci_stalled > 0 then begin
      Buffer.add_string buf
        (Printf.sprintf "  stalled latency: p50 %s, p99 %s, max %s\n"
           (fms s.Client_impact.ci_stalled_p50_ns)
           (fms s.Client_impact.ci_stalled_p99_ns)
           (fms s.Client_impact.ci_stalled_max_ns));
      Buffer.add_string buf
        (Printf.sprintf "  unaffected latency: p99 %s\n" (fms s.Client_impact.ci_clear_p99_ns));
      Buffer.add_string buf
        (Printf.sprintf "  retried (connect backoff): %d; errored: %d\n"
           s.Client_impact.ci_retried s.Client_impact.ci_errored)
    end
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Fleet rollout rendering: the wave timeline with per-instance verdicts,
   then the blocking verdict's full conflict narrative (its embedded
   flight record rendered like any single update). *)

let verdict_line (v : Fleet_flight.verdict) =
  let outcome =
    if not v.Fleet_flight.v_success then "ROLLED BACK"
    else if v.Fleet_flight.v_slo_violated then "committed, SLO VIOLATED"
    else if not v.Fleet_flight.v_healthy then "committed, UNHEALTHY"
    else "committed"
  in
  Printf.sprintf "    #%-3d %s, downtime %s, total %s%s\n" v.Fleet_flight.v_instance outcome
    (fms v.Fleet_flight.v_downtime_ns)
    (fms v.Fleet_flight.v_total_ns)
    (match v.Fleet_flight.v_reason with Some r -> " — " ^ r | None -> "")

let render_fleet (t : Fleet_flight.t) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "fleet rollout %s %s -> %s — %s\n" t.Fleet_flight.fs_prog
       t.Fleet_flight.fs_from t.Fleet_flight.fs_to
       (if t.Fleet_flight.fs_halted then
          match t.Fleet_flight.fs_blocking with
          | Some v ->
              Printf.sprintf "HALTED (%s)"
                (Option.value v.Fleet_flight.v_reason ~default:"blocking verdict")
          | None -> "HALTED"
        else "COMPLETED"));
  Buffer.add_string buf
    (Printf.sprintf
       "size %d; canary %d, waves of %d, max-unavailable %d, halt policy %s\n"
       t.Fleet_flight.fs_size t.Fleet_flight.fs_canary t.Fleet_flight.fs_wave_size
       t.Fleet_flight.fs_max_unavailable t.Fleet_flight.fs_halt);
  Buffer.add_string buf
    (Printf.sprintf "makespan %s; updated %d, reverted %d\n"
       (fms t.Fleet_flight.fs_makespan_ns)
       t.Fleet_flight.fs_updated t.Fleet_flight.fs_reverted);
  Buffer.add_string buf
    (Printf.sprintf "availability floor %d/%d (%s serving); %d request(s) routed, %d client error(s)\n"
       t.Fleet_flight.fs_min_serving t.Fleet_flight.fs_size
       (pct t.Fleet_flight.fs_min_serving t.Fleet_flight.fs_size)
       t.Fleet_flight.fs_requests t.Fleet_flight.fs_client_errors);
  Buffer.add_string buf "\nwave timeline:\n";
  if t.Fleet_flight.fs_waves = [] then Buffer.add_string buf "  (no waves ran)\n"
  else
    List.iter
      (fun (w : Fleet_flight.wave) ->
        Buffer.add_string buf
          (Printf.sprintf "  wave %d (%s)  %s -> %s\n" w.Fleet_flight.w_index
             w.Fleet_flight.w_kind
             (fms w.Fleet_flight.w_start_ns)
             (fms w.Fleet_flight.w_end_ns));
        List.iter
          (fun v -> Buffer.add_string buf (verdict_line v))
          w.Fleet_flight.w_verdicts)
      t.Fleet_flight.fs_waves;
  (match t.Fleet_flight.fs_blocking with
  | None -> ()
  | Some v ->
      Buffer.add_string buf
        (Printf.sprintf "\nblocking verdict: instance #%d in wave %d%s\n"
           v.Fleet_flight.v_instance v.Fleet_flight.v_wave
           (match v.Fleet_flight.v_reason with Some r -> ": " ^ r | None -> ""));
      (match v.Fleet_flight.v_flight with
      | None -> ()
      | Some f ->
          Buffer.add_string buf "\n";
          Buffer.add_string buf (render f)));
  Buffer.contents buf
