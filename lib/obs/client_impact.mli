(** Client-perceived impact of an update window.

    Correlates per-request latency stamps (the open-loop load driver's
    records, serialized by [Loadgen.requests_json]) with a {!Flight.record}:
    for every request whose lifetime overlapped the service-interruption
    window, names the attribution segment — quiesce, copy, relink, … — that
    the request first stalled in, by walking the downtime waterfall to the
    offset at which the request entered the window. The result is the
    "client impact" section of [mcr-postmortem]: not just {e how long} the
    window was, but {e who} it hit and {e which} pipeline stage held them.

    Plain data like {!Flight}: no kernel clock, no charges. *)

type req = {
  q_id : int;
  q_scheduled_ns : int;  (** Open-loop scheduled arrival (submit instant). *)
  q_first_byte_ns : int;  (** First server byte; -1 if none arrived. *)
  q_complete_ns : int;
  q_retries : int;  (** ECONNREFUSED-driven reconnect attempts. *)
  q_ok : bool;
}

val window : Flight.record -> (int * int) option
(** The service-interruption window
    [[f_start_ns + f_total_ns - f_downtime_ns, f_start_ns + f_total_ns)];
    [None] when the attempt had zero downtime (window never opened). *)

val stalling_segment : Flight.record -> req -> string option
(** The attribution segment the request first stalled in: the waterfall
    component containing the offset [max (q_scheduled_ns - window_start) 0]
    into the window. [None] when the request's [scheduled, complete) span
    does not overlap the window (or the window never opened). *)

type summary = {
  ci_window_start_ns : int;
  ci_window_end_ns : int;
  ci_total : int;  (** Requests analyzed. *)
  ci_stalled : int;  (** Requests overlapping the window. *)
  ci_retried : int;  (** Stalled requests that cycled connect backoff. *)
  ci_errored : int;  (** Stalled requests that ultimately failed. *)
  ci_by_segment : (string * int) list;
      (** Stalled count per entry segment, waterfall order, zeros omitted. *)
  ci_stalled_p50_ns : int;  (** Exact percentiles over stalled requests. *)
  ci_stalled_p99_ns : int;
  ci_stalled_max_ns : int;
  ci_clear_p99_ns : int;
      (** Exact p99 over requests that never touched the window — the
          baseline the stalled tail is read against. *)
}

val analyze : Flight.record -> req list -> summary

(** {1 JSON}

    Same dialect as {!Flight}: integers only, fixed field order.
    [reqs_of_json] inverts [reqs_to_json]; the wrapper object carries the
    server name so reports can label themselves. *)

val reqs_to_json : server:string -> req list -> string
val reqs_of_json : string -> (string * req list, string) result
