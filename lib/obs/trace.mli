(** The structured event sink of the observability subsystem.

    A trace is a fixed-capacity ring buffer of events keyed by the
    {e virtual} clock: the sink never reads wall-clock time or randomness,
    so two identical runs produce byte-identical traces, and emitting never
    charges virtual time — enabling tracing cannot change any measured
    number. Events are totally ordered by [(ts_ns, seq)]: the virtual
    timestamp first, then the per-sink sequence number for events emitted
    at the same instant.

    Four event shapes mirror the Chrome trace-event model the exporter
    targets ({!Export.chrome_json}): [Begin]/[End] bracket a named span on
    a (pid, tid) track, [Instant] marks a point event, and [Complete]
    carries an explicit duration — used for the per-process-pair state
    transfers, whose cost is charged as a parallel maximum rather than
    serially, so begin/end pairs could not represent them. *)

type phase = Begin | End | Instant | Complete of int  (** duration, ns *)

type event = {
  seq : int;  (** Per-sink sequence number, dense from 0. *)
  ts_ns : int;  (** Virtual time of emission. *)
  pid : int;  (** Simulated process the event belongs to (0 = controller). *)
  tid : int;  (** Simulated thread (0 = controller). *)
  name : string;
  cat : string;  (** Category: "stage", "barrier", "replay", ... *)
  phase : phase;
  args : (string * string) list;
}

type t

val create : ?capacity:int -> clock:(unit -> int) -> unit -> t
(** [create ~clock ()] makes a sink reading timestamps from [clock]
    (normally [fun () -> Kernel.clock_ns k]). Default capacity: 65536
    events; when full, the oldest events are dropped (ring semantics). *)

val capacity : t -> int

val emitted : t -> int
(** Total events ever emitted (not capped by capacity). *)

val length : t -> int
(** Events currently retained. *)

val dropped : t -> int
(** Events lost to ring overflow ([emitted - length] when positive). *)

val clear : t -> unit

val emit :
  t ->
  ?pid:int ->
  ?tid:int ->
  ?cat:string ->
  ?args:(string * string) list ->
  phase ->
  string ->
  unit
(** Low-level emission on a known-enabled sink. *)

(** {1 Instrumentation-point emitters}

    These take the sink as an option: every instrumented layer stores a
    [Trace.t option] (disabled by default) and calls through unconditionally
    — a [None] sink is a single branch. *)

val span_begin :
  t option -> ?pid:int -> ?tid:int -> ?cat:string -> ?args:(string * string) list ->
  string -> unit

val span_end :
  t option -> ?pid:int -> ?tid:int -> ?cat:string -> ?args:(string * string) list ->
  string -> unit

val instant :
  t option -> ?pid:int -> ?tid:int -> ?cat:string -> ?args:(string * string) list ->
  string -> unit

val complete :
  t option -> ?pid:int -> ?tid:int -> ?cat:string -> ?args:(string * string) list ->
  dur_ns:int -> string -> unit

val events : t -> event list
(** Retained events, oldest first. *)

val phase_name : phase -> string
(** Chrome phase letter: "B", "E", "i", "X". *)

val pp_event : Format.formatter -> event -> unit
