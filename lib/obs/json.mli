(** Minimal JSON reader for the subsystem's own machine-readable outputs
    (flight records, benchmark baselines).

    Deliberately smaller than JSON: every writer in this repository emits
    integers only (determinism forbids float formatting), so numbers parse
    as [int] and fractional/exponent forms are an error. [\uXXXX] escapes
    above ASCII decode to ['?'] — no writer emits them. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value spanning the whole input (surrounding whitespace
    allowed). The error carries a byte offset and a cause. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Object member by key ([None] for missing keys and non-objects). *)

val to_int : t -> int option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

val int_field : string -> t -> int option
(** [int_field k j] = [member k j] narrowed to [Int]; likewise below. *)

val str_field : string -> t -> string option
val bool_field : string -> t -> bool option
val list_field : string -> t -> t list option
