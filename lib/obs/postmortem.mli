(** Human-readable post-mortem rendering of {!Flight.record}s.

    {!render} turns one record into a downtime waterfall (per-component
    bars, fixed-point milliseconds, integer percentages — no float
    printing, so output is deterministic) followed by the rollback
    narrative: failed stage, frozen reason, the conflicting objects with
    their captured identities, fired fault points, SLO verdicts and the
    retry lineage. [bin/mcr_postmortem] is the command-line wrapper. *)

val render : Flight.record -> string

val render_list : Flight.record list -> string
(** Concatenated {!render}s, blank-line separated. *)

val render_client_impact : Flight.record -> Client_impact.req list -> string
(** The client-impact section: the service-interruption window, how many
    requests stalled in it, the stall count per attribution segment
    ({!Client_impact.analyze}), and stalled-vs-unaffected latency tails.
    Appended to {!render} output when [mcr-postmortem --requests] supplies
    per-request stamps. *)

val render_fleet : Fleet_flight.t -> string
(** A fleet rollout: headline outcome, policy knobs, availability floor,
    the wave timeline with per-instance verdicts, and — when a verdict
    halted the rollout — the blocking instance's full flight narrative
    ({!render} of its embedded record). *)
