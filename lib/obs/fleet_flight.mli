(** The fleet rollout flight summary.

    One {!t} per [Rollout.execute] run, assembled by the fleet coordinator
    the same way {!Flight} records single updates: plain data, never reads
    a clock, deterministic integer-only JSON. It aggregates the per-wave,
    per-instance verdicts the canary gate acted on — which instance halted
    the fleet and why (its full {!Flight.record} rides along on the
    blocking verdict), how many instances were updated or reverted, and
    the availability timeline the balancer observed (fleet-relative
    virtual time, instances serving at each transition). Served over the
    fleet control socket by [FLEET EXPLAIN]. *)

type verdict = {
  v_instance : int;  (** Fleet instance id, 0-based. *)
  v_wave : int;  (** Wave ordinal the instance was updated in, 0-based. *)
  v_success : bool;  (** The instance's update committed. *)
  v_slo_violated : bool;  (** Its flight record's SLO evaluation. *)
  v_healthy : bool;  (** Post-update health probe passed. *)
  v_reason : string option;
      (** Why the verdict blocks promotion ([None] when it passes). *)
  v_downtime_ns : int;
  v_total_ns : int;
  v_flight : Flight.record option;
      (** Only the blocking verdict carries its full flight record — the
          conflict narrative [mcr-postmortem] renders. *)
}

type wave = {
  w_index : int;  (** 0 is the canary wave. *)
  w_kind : string;  (** ["canary" | "wave" | "rollback"]. *)
  w_start_ns : int;  (** Fleet-relative virtual time. *)
  w_end_ns : int;
  w_verdicts : verdict list;  (** Instance order within the wave. *)
}

type sample = { s_ns : int; s_serving : int }
(** One availability timeline point: instances serving at [s_ns]. *)

type t = {
  fs_prog : string;
  fs_from : string;  (** Version tags. *)
  fs_to : string;
  fs_size : int;  (** Fleet size N. *)
  fs_canary : int;  (** Policy knobs the plan ran under. *)
  fs_wave_size : int;
  fs_max_unavailable : int;
  fs_halt : string;  (** ["halt_only" | "rollback_updated"]. *)
  fs_waves : wave list;  (** Execution order; absent waves never started. *)
  fs_halted : bool;
  fs_blocking : verdict option;  (** The verdict that halted the rollout. *)
  fs_updated : int;  (** Instances on the target version at the end. *)
  fs_reverted : int;  (** Instances rolled back by the halt policy. *)
  fs_makespan_ns : int;  (** Rollout duration, fleet-relative. *)
  fs_min_serving : int;  (** Minimum of the timeline's [s_serving]. *)
  fs_requests : int;  (** Workload requests routed during the rollout. *)
  fs_client_errors : int;  (** Requests no serving instance could take. *)
  fs_timeline : sample list;  (** Oldest first; starts at 0 ns. *)
}

val blocks : verdict -> bool
(** Whether the verdict gates promotion: update failed, SLO violated, or
    unhealthy. *)

val min_availability_permille : t -> int
(** [fs_min_serving * 1000 / fs_size] — the availability floor the rollout
    held, in integer permille (1000 = whole fleet serving throughout). *)

(** {1 JSON}

    Same contract as {!Flight}: fixed field order, integers only,
    [of_json] inverts [to_json]. A fleet summary is distinguishable from a
    single-update flight record by its ["waves"] member. *)

val to_json : t -> string
val of_json : string -> (t, string) result
