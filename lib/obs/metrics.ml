module Stats = Mcr_util.Stats

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : int }
type histogram = { h_name : string; h_hist : Stats.hist }

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  by_name : (string, instrument) Hashtbl.t;
  mutable order : string list;  (* registration order, reversed *)
}

let create () = { by_name = Hashtbl.create 32; order = [] }

let register t name make match_existing =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> (
      match match_existing i with
      | Some x -> x
      | None -> invalid_arg (Printf.sprintf "Metrics: %s already registered with another kind" name))
  | None ->
      let i, x = make () in
      Hashtbl.replace t.by_name name i;
      t.order <- name :: t.order;
      x

let counter t name =
  register t name
    (fun () ->
      let c = { c_name = name; c_value = 0 } in
      (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun () ->
      let g = { g_name = name; g_value = 0 } in
      (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let histogram t ?(bounds = Stats.default_ns_bounds) name =
  register t name
    (fun () ->
      let h = { h_name = name; h_hist = Stats.hist_create ~bounds } in
      (Histogram h, h))
    (function Histogram h -> Some h | _ -> None)

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let counter_value c = c.c_value
let set g v = g.g_value <- v
let gauge_value g = g.g_value
let observe h v = Stats.hist_observe h.h_hist v

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type hist_snapshot = {
  bounds : int array;
  counts : int array;
  total : int;
  sum : int;
  vmax : int;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

let snapshot t =
  let names = List.rev t.order in
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.by_name name with
      | Some (Counter c) -> counters := (name, c.c_value) :: !counters
      | Some (Gauge g) -> gauges := (name, g.g_value) :: !gauges
      | Some (Histogram h) ->
          hists :=
            ( name,
              {
                bounds = Array.copy h.h_hist.Stats.bounds;
                counts = Array.copy h.h_hist.Stats.counts;
                total = h.h_hist.Stats.total;
                sum = h.h_hist.Stats.sum;
                vmax = h.h_hist.Stats.vmax;
              } )
            :: !hists
      | None -> ())
    names;
  let by_name l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  { counters = by_name !counters; gauges = by_name !gauges; histograms = by_name !hists }

(* latest - earlier: counters and histogram counts subtract (monotonic
   accumulation since the earlier snapshot); gauges keep their latest
   value. Entries absent from [earlier] pass through unchanged. *)
let diff ~latest ~earlier =
  let sub l earlier_l =
    List.map
      (fun (name, v) ->
        match List.assoc_opt name earlier_l with
        | Some e -> (name, v - e)
        | None -> (name, v))
      l
  in
  let sub_hist (name, (h : hist_snapshot)) =
    match List.assoc_opt name earlier.histograms with
    | Some e when e.bounds = h.bounds ->
        ( name,
          {
            h with
            counts = Array.mapi (fun i c -> c - e.counts.(i)) h.counts;
            total = h.total - e.total;
            sum = h.sum - e.sum;
          } )
    | _ -> (name, h)
  in
  {
    counters = sub latest.counters earlier.counters;
    gauges = latest.gauges;
    histograms = List.map sub_hist latest.histograms;
  }

let find_counter s name = List.assoc_opt name s.counters
let find_gauge s name = List.assoc_opt name s.gauges
let find_histogram s name = List.assoc_opt name s.histograms

(* Pointwise sum via Stats.hist_merge, so the bounds check and the merge
   arithmetic live in one place. *)
let hist_snapshot_merge (a : hist_snapshot) (b : hist_snapshot) =
  let to_hist (h : hist_snapshot) =
    { Stats.bounds = h.bounds; counts = h.counts; total = h.total; sum = h.sum; vmax = h.vmax }
  in
  let m = Stats.hist_merge (to_hist a) (to_hist b) in
  {
    bounds = m.Stats.bounds;
    counts = m.Stats.counts;
    total = m.Stats.total;
    sum = m.Stats.sum;
    vmax = m.Stats.vmax;
  }

let hist_snapshot_percentile (h : hist_snapshot) p =
  Stats.hist_percentile
    { Stats.bounds = h.bounds; counts = h.counts; total = h.total; sum = h.sum; vmax = h.vmax }
    p

let hist_snapshot_summary (h : hist_snapshot) =
  Stats.hist_summary
    { Stats.bounds = h.bounds; counts = h.counts; total = h.total; sum = h.sum; vmax = h.vmax }

let render s =
  let module T = Mcr_util.Tablefmt in
  let buf = Buffer.create 512 in
  if s.counters <> [] || s.gauges <> [] then begin
    let t = T.create ~header:[ "metric"; "kind"; "value" ] in
    List.iter (fun (n, v) -> T.add_row t [ n; "counter"; string_of_int v ]) s.counters;
    List.iter (fun (n, v) -> T.add_row t [ n; "gauge"; string_of_int v ]) s.gauges;
    Buffer.add_string buf (T.render t)
  end;
  if s.histograms <> [] then begin
    let t = T.create ~header:[ "histogram"; "count"; "sum"; "p50"; "p90"; "p99"; "p99.9"; "max" ] in
    List.iter
      (fun (n, h) ->
        T.add_row t
          [
            n;
            string_of_int h.total;
            string_of_int h.sum;
            string_of_int (hist_snapshot_percentile h 50.);
            string_of_int (hist_snapshot_percentile h 90.);
            string_of_int (hist_snapshot_percentile h 99.);
            string_of_int (hist_snapshot_percentile h 99.9);
            string_of_int h.vmax;
          ])
      s.histograms;
    Buffer.add_string buf (T.render t)
  end;
  if Buffer.length buf = 0 then Buffer.add_string buf "(no metrics)\n";
  Buffer.contents buf
