(** The replay phase of mutable reinitialization (Section 5).

    The new version starts from scratch; system calls that refer to
    immutable state objects (descriptors, pids) and perfectly match the old
    startup log — same call-stack ID, same deeply-compared arguments — are
    short-circuited with their recorded results, so the startup code runs
    against the inherited objects without disturbing them. Everything else
    executes live. Mismatched arguments and omitted recorded calls raise
    conflicts, which the MCR runtime turns into a rollback.

    Pid virtualization: recorded pids are returned to the program (the
    namespace illusion), while an internal map translates them to real pids
    for calls like [waitpid].

    Call {!start} on a launched-but-not-yet-run root image, after the
    inherited descriptors have been installed. When each process reaches its
    first quiescent point the replayer checks for omitted calls, applies
    startup-deferred closes, and garbage-collects inherited descriptors the
    replay never referenced. *)

type conflict =
  | Arg_mismatch of {
      pid : int;  (** New-version pid where the conflict arose. *)
      callstack : int;
      recorded : Mcr_simos.Sysdefs.call;
      observed : Mcr_simos.Sysdefs.call;
    }
  | Omitted of { pid : int; callstack : int; call : Mcr_simos.Sysdefs.call }
  | Unsupported of { pid : int; callstack : int; call : Mcr_simos.Sysdefs.call }
      (** A recorded call creates an immutable object MCR cannot
          virtualize (e.g. SysV shm ids — no namespace support, Section 7);
          replaying it safely is impossible, so the update rolls back
          unless a user annotation takes over. *)
  | Injected of { pid : int; callstack : int; call : Mcr_simos.Sysdefs.call }
      (** A synthetic conflict from the fault harness
          ({!Mcr_fault.Fault.Replay_conflict}): [call] is whatever the new
          version happened to be executing when the fault fired. *)

type t

val start :
  ?trace:Mcr_obs.Trace.t ->
  ?fault:Mcr_fault.Fault.t ->
  Mcr_simos.Kernel.t ->
  Mcr_program.Progdef.image ->
  logs:Logdefs.plog list ->
  inherited:int list ->
  t
(** [start kernel root ~logs ~inherited] arms replay on the new version's
    root image. [inherited] are the reserved-range fd numbers installed
    from the old version (candidates for garbage collection if unused).
    With [?trace], every replay decision emits an instant event under the
    new process's pid, category ["replay"]: [replay.replayed] for
    short-circuited calls, [replay.live] for calls executed live, and
    [replay.conflict] (with a [kind] argument) for mismatches, omissions,
    and unsupported objects. With [?fault], an armed
    {!Mcr_fault.Fault.Replay_conflict} fires on the next intercepted
    syscall as an [Injected] conflict. *)

val conflicts : t -> conflict list
(** Conflicts observed so far, oldest first. *)

val replayed_calls : t -> int
(** Short-circuited call count (control-migration statistics). *)

val live_calls : t -> int

val finished_procs : t -> int
(** Processes whose startup (and omission check) completed. *)

val map_old_pid : t -> int -> int option
(** Translate an old-version (virtual) pid to the new-version real pid. *)

val pp_conflict : Format.formatter -> conflict -> unit

val new_logs : t -> Logdefs.plog list
(** The new version's reconstructed startup logs (replayed entries carry
    their recorded results, live entries their actual results) — the input
    to the {e next} live update. *)

val pairs : t -> (Logdefs.proc_key * int) list
(** New-version processes by cross-version key, in creation order — the
    pairing state transfer uses to connect each new process to its old
    counterpart. *)

val rollback_reason : t -> Mcr_error.rollback_reason option
(** [Some Reinit_conflict] when any replay conflict was observed — the
    shared rollback vocabulary for mutable-reinitialization failures. *)
