(* Startup-log data shared by the recorder and the replayer. *)

module S = Mcr_simos.Sysdefs

type entry = {
  seq : int;
  callstack : int;  (** Call-stack ID of the issuing thread (Section 5). *)
  call : S.call;
  result : S.result;
}

(* How a process is identified across versions: the root by being the root,
   forked children by the call-stack ID of the fork that created them plus
   an ordinal among same-site siblings (Section 6: "identified by the same
   creation-time call stack ID"). *)
type proc_key = Root | Child of { creation_callstack : int; ordinal : int }

type plog = {
  key : proc_key;
  pid : int;  (** Pid in the recorded (old) version — a virtual pid for replay. *)
  mutable entries : entry list;  (** Reversed while recording. *)
  mutable closed : bool;  (** Startup finished; no more recording. *)
}

let pp_key ppf = function
  | Root -> Format.pp_print_string ppf "root"
  | Child { creation_callstack; ordinal } ->
      Format.fprintf ppf "child(cs=%d#%d)" creation_callstack ordinal

(* Calls that operate on immutable state objects and are therefore replayed
   rather than re-executed (Section 5): descriptor-creating and
   descriptor-state calls, pid queries, forks. Everything else runs live. *)
let replay_class (call : S.call) =
  match call with
  | S.Socket | S.Bind _ | S.Listen _ | S.Unix_listen _ | S.Open _ | S.Dup _ | S.Close _
  | S.Getpid | S.Getppid | S.Fork _ | S.Shmget _ ->
      true
  | S.Open_at _ (* replay-internal; never recorded *)
  | S.Accept _ | S.Accept_timed _ | S.Connect _ | S.Read _ | S.Write _ | S.Poll _ | S.Thread_create _
  | S.Waitpid _ | S.Exit _ | S.Nanosleep _ | S.Sem_wait _ | S.Sem_post _
  | S.Unix_connect _ | S.Send_fd _ | S.Recv_fd _ | S.Recv_fd_at _ ->
      false

(* Same call constructor (used for consuming live-class entries without
   insisting on argument equality, which may legitimately change between
   versions). *)
let same_kind (a : S.call) (b : S.call) = S.call_name a = S.call_name b

(* The deep argument comparison for replay-class matches: structural
   equality of the call payloads (all arguments are immediate values or
   strings, the "follow pointers" analog). *)
let deep_equal (a : S.call) (b : S.call) = a = b
