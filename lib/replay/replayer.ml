module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module P = Mcr_program.Progdef
module Trace = Mcr_obs.Trace
module F = Mcr_fault.Fault
open Logdefs

type conflict =
  | Arg_mismatch of { pid : int; callstack : int; recorded : S.call; observed : S.call }
  | Omitted of { pid : int; callstack : int; call : S.call }
  | Unsupported of { pid : int; callstack : int; call : S.call }
  | Injected of { pid : int; callstack : int; call : S.call }

type pstate = {
  ps_pid : int;
  ps_key : proc_key;
  entries : entry array;
  consumed : bool array;
  queues : (int * string, int Queue.t) Hashtbl.t; (* (callstack, kind) -> indices *)
  touched : (int, unit) Hashtbl.t;
      (* fds participating in replay — including those an ancestor's replay
         touched before the fork (fork semantics propagate them) *)
  created : (int, unit) Hashtbl.t;
  mutable finished : bool;
  mutable out_entries : entry list; (* reconstructed startup log, reversed *)
  mutable out_seq : int;
}

type t = {
  kernel : K.t;
  mutable pstates : pstate list; (* reversed creation order *)
  pstate_by_pid : (int, pstate) Hashtbl.t;
  mutable conflicts : conflict list; (* reversed *)
  pid_map : (int, int) Hashtbl.t; (* old virtual pid -> new real pid *)
  child_ordinals : (int, int) Hashtbl.t;
  inherited : (int, unit) Hashtbl.t;
  mutable replayed : int;
  mutable live : int;
  mutable finished_count : int;
  trace : Trace.t option;
  fault : F.t option;
}

let reserved_base = 1000

let conflict_kind = function
  | Arg_mismatch _ -> "arg_mismatch"
  | Omitted _ -> "omitted"
  | Unsupported _ -> "unsupported"
  | Injected _ -> "injected"

let conflict t c =
  (match c with
  | Arg_mismatch { pid; callstack; observed; _ } ->
      Trace.instant t.trace ~pid ~cat:"replay" "replay.conflict"
        ~args:
          [ ("kind", conflict_kind c); ("call", S.call_name observed);
            ("callstack", string_of_int callstack) ]
  | Omitted { pid; callstack; call }
  | Unsupported { pid; callstack; call }
  | Injected { pid; callstack; call } ->
      Trace.instant t.trace ~pid ~cat:"replay" "replay.conflict"
        ~args:
          [ ("kind", conflict_kind c); ("call", S.call_name call);
            ("callstack", string_of_int callstack) ]);
  t.conflicts <- c :: t.conflicts

let build_pstate ?parent plog_opt pid key =
  let entries =
    match plog_opt with Some (l : plog) -> Array.of_list l.entries | None -> [||]
  in
  let queues = Hashtbl.create 32 in
  Array.iteri
    (fun idx e ->
      let key = (e.callstack, S.call_name e.call) in
      let q =
        match Hashtbl.find_opt queues key with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.replace queues key q;
            q
      in
      Queue.push idx q)
    entries;
  let touched =
    match parent with
    | Some (p : pstate) -> Hashtbl.copy p.touched
    | None -> Hashtbl.create 16
  in
  {
    ps_pid = pid;
    ps_key = key;
    entries;
    consumed = Array.make (Array.length entries) false;
    queues;
    touched;
    created = Hashtbl.create 16;
    finished = false;
    out_entries = [];
    out_seq = 0;
  }

(* First unconsumed entry recorded at this (call-stack ID, call kind). *)
let pop_match ps ~callstack call =
  match Hashtbl.find_opt ps.queues (callstack, S.call_name call) with
  | None -> None
  | Some q ->
      let rec pop () =
        if Queue.is_empty q then None
        else begin
          let idx = Queue.pop q in
          if ps.consumed.(idx) then pop ()
          else begin
            ps.consumed.(idx) <- true;
            Some ps.entries.(idx)
          end
        end
      in
      pop ()

let touch ps fd = Hashtbl.replace ps.touched fd ()

let out ps ~callstack call result =
  ps.out_seq <- ps.out_seq + 1;
  ps.out_entries <- { seq = ps.out_seq; callstack; call; result } :: ps.out_entries

let touch_result ps = function S.Ok_fd fd -> touch ps fd | _ -> ()

(* Pid-translating live execution. *)
let live_interception t call =
  match call with
  | S.Waitpid { pid } -> begin
      match Hashtbl.find_opt t.pid_map pid with
      | Some real -> K.Rewrite (S.Waitpid { pid = real })
      | None -> K.Execute
    end
  | _ -> K.Execute

(* Executed (Post/Rewrite) replays reach the process monitor, which logs
   them into the reconstructed startup log; short-circuited replays never
   execute, so they are logged here explicitly. *)
let replay_effect t ps ~callstack ~proc call (e : entry) =
  t.replayed <- t.replayed + 1;
  Trace.instant t.trace ~pid:ps.ps_pid ~cat:"replay" "replay.replayed"
    ~args:[ ("call", S.call_name call); ("callstack", string_of_int callstack) ];
  let short_circuit () =
    out ps ~callstack call e.result;
    K.Short_circuit e.result
  in
  match e.call with
  | S.Socket | S.Unix_listen _ | S.Dup _ ->
      touch_result ps e.result;
      short_circuit ()
  | S.Open { path; create } -> begin
      (* preserve the fd number but re-open for a fresh file offset (and
         fresh content — config may legitimately change between versions) *)
      match e.result with
      | S.Ok_fd fd ->
          touch ps fd;
          (* displace the inherited descriptor occupying the number *)
          K.close_fd_external t.kernel proc fd;
          K.Post (S.Open_at { path; create; force_fd = fd }, fun _ -> e.result)
      | _ -> short_circuit ()
    end
  | S.Bind { fd; _ } | S.Listen { fd; _ } ->
      touch ps fd;
      short_circuit ()
  | S.Close { fd } ->
      (* execute for real: reserved-range numbers are allocated
         monotonically, so the number is never reused (separability) even
         after an immediate close; executing keeps forked children's fd
         tables identical to the recorded run's *)
      touch ps fd;
      K.Execute
  | S.Getpid | S.Getppid -> short_circuit ()
  | S.Shmget _ ->
      (* the id carries in-kernel state with no namespace support: neither
         inheriting nor re-creating it preserves MCR semantics *)
      conflict t (Unsupported { pid = ps.ps_pid; callstack; call = e.call });
      short_circuit ()
  | S.Fork _ ->
      (* run the real fork, remember the virtual->real mapping, and give the
         program the recorded (old) child pid; the monitor logs the mapped
         result *)
      let recorded = e.result in
      K.Post
        ( e.call,
          fun real_result ->
            (match (real_result, recorded) with
            | S.Ok_pid real, S.Ok_pid virt -> Hashtbl.replace t.pid_map virt real
            | _, _ -> ());
            recorded )
  | _ ->
      (* not reachable: replay_class filters the constructors above *)
      K.Execute

let intercept t ps th call =
  if ps.finished then K.Execute
  else begin
    K.charge t.kernel (K.costs t.kernel).Mcr_simos.Costs.replay_match_ns;
    let callstack = K.callstack_id th in
    (match t.fault with
    | Some f when F.consume f F.Replay_conflict ->
        conflict t (Injected { pid = ps.ps_pid; callstack; call })
    | _ -> ());
    match pop_match ps ~callstack call with
    | Some e when replay_class e.call ->
        if deep_equal e.call call then
          replay_effect t ps ~callstack ~proc:(K.thread_proc th) call e
        else begin
          conflict t
            (Arg_mismatch { pid = ps.ps_pid; callstack; recorded = e.call; observed = call });
          K.Short_circuit e.result
        end
    | Some _ ->
        (* live-class entry: consumed for omission accounting, executed live *)
        t.live <- t.live + 1;
        Trace.instant t.trace ~pid:ps.ps_pid ~cat:"replay" "replay.live"
          ~args:[ ("call", S.call_name call); ("callstack", string_of_int callstack) ];
        live_interception t call
    | None ->
        (* a call the old version never made: execute live *)
        t.live <- t.live + 1;
        Trace.instant t.trace ~pid:ps.ps_pid ~cat:"replay" "replay.live"
          ~args:[ ("call", S.call_name call); ("callstack", string_of_int callstack);
                  ("recorded", "no") ];
        live_interception t call
  end

let finish_proc t ps (image : P.image) =
  if not ps.finished then begin
    ps.finished <- true;
    t.finished_count <- t.finished_count + 1;
    let proc = image.P.i_proc in
    (* conservative omission detection: every unreplayed replay-class entry
       is a conflict (Section 5) *)
    Array.iteri
      (fun idx e ->
        if (not ps.consumed.(idx)) && replay_class e.call then
          conflict t (Omitted { pid = ps.ps_pid; callstack = e.callstack; call = e.call }))
      ps.entries;
    (* garbage-collect inherited descriptors neither this process's replay
       nor any ancestor's (pre-fork) replay referenced *)
    List.iter
      (fun fd ->
        if
          fd >= reserved_base && Hashtbl.mem t.inherited fd
          && (not (Hashtbl.mem ps.touched fd))
          && not (Hashtbl.mem ps.created fd)
        then K.close_fd_external t.kernel proc fd)
      (K.fds proc);
    K.set_reserved_fd_mode proc false;
    K.set_monitor proc None
  end

let attach_proc t ?parent (image : P.image) plog_opt key =
  let proc = image.P.i_proc in
  let ps = build_pstate ?parent plog_opt (K.pid proc) key in
  t.pstates <- ps :: t.pstates;
  Hashtbl.replace t.pstate_by_pid (K.pid proc) ps;
  K.set_reserved_fd_mode proc true;
  K.set_interceptor proc (Some (fun th call -> intercept t ps th call));
  (* live fd creations are tracked for garbage-collection accounting *)
  K.set_monitor proc
    (Some
       (fun th call result ->
         if not ps.finished then begin
           out ps ~callstack:(K.callstack_id th) call result;
           match result with S.Ok_fd fd -> Hashtbl.replace ps.created fd () | _ -> ()
         end));
  image.P.i_first_quiesce_hooks <-
    (fun (img : P.image) ->
      if K.pid img.P.i_proc = K.pid proc then finish_proc t ps img)
    :: image.P.i_first_quiesce_hooks;
  ps

let start ?trace ?fault kernel (root : P.image) ~logs ~inherited =
  let t =
    {
      kernel;
      pstates = [];
      pstate_by_pid = Hashtbl.create 8;
      conflicts = [];
      pid_map = Hashtbl.create 16;
      child_ordinals = Hashtbl.create 8;
      inherited = Hashtbl.create 16;
      replayed = 0;
      live = 0;
      finished_count = 0;
      trace;
      fault;
    }
  in
  List.iter (fun fd -> Hashtbl.replace t.inherited fd ()) inherited;
  let root_log = List.find_opt (fun l -> l.key = Root) logs in
  (* seed the pid map with the root pair *)
  (match root_log with
  | Some l -> Hashtbl.replace t.pid_map l.pid (K.pid root.P.i_proc)
  | None -> ());
  ignore (attach_proc t root root_log Root);
  root.P.i_child_hooks <-
    (fun (child : P.image) ->
      let cs = K.creation_callstack child.P.i_proc in
      let ordinal =
        let n = Option.value (Hashtbl.find_opt t.child_ordinals cs) ~default:0 + 1 in
        Hashtbl.replace t.child_ordinals cs n;
        n
      in
      let key = Child { creation_callstack = cs; ordinal } in
      let log = List.find_opt (fun l -> l.key = key) logs in
      let parent = Hashtbl.find_opt t.pstate_by_pid (K.parent_pid child.P.i_proc) in
      ignore (attach_proc t ?parent child log key))
    :: root.P.i_child_hooks;
  t

let conflicts t = List.rev t.conflicts

let replayed_calls t = t.replayed
let live_calls t = t.live
let finished_procs t = t.finished_count

let map_old_pid t pid = Hashtbl.find_opt t.pid_map pid

let new_logs t =
  List.rev_map
    (fun ps ->
      { key = ps.ps_key; pid = ps.ps_pid; entries = List.rev ps.out_entries; closed = ps.finished })
    t.pstates

let pairs t = List.rev_map (fun ps -> (ps.ps_key, ps.ps_pid)) t.pstates

let pp_conflict ppf = function
  | Arg_mismatch { pid; callstack; recorded; observed } ->
      Format.fprintf ppf "pid %d cs %d: argument mismatch: recorded %a, observed %a" pid
        callstack S.pp_call recorded S.pp_call observed
  | Omitted { pid; callstack; call } ->
      Format.fprintf ppf "pid %d cs %d: recorded call omitted by new version: %a" pid callstack
        S.pp_call call
  | Unsupported { pid; callstack; call } ->
      Format.fprintf ppf
        "pid %d cs %d: %a creates an immutable object with no namespace support" pid callstack
        S.pp_call call
  | Injected { pid; callstack; call } ->
      Format.fprintf ppf "pid %d cs %d: injected replay conflict at %a" pid callstack
        S.pp_call call

let rollback_reason t =
  match t.conflicts with [] -> None | _ :: _ -> Some Mcr_error.Reinit_conflict
