(** Startup-log recording (the record phase of mutable reinitialization).

    "During program startup, MCR records all the operations (i.e., system
    calls) performed by the program in a startup log" (Section 3).
    Recording attaches to the root process at launch, follows forked
    children, enables reserved-range fd allocation for global separability,
    and stops per process when that process reaches its first quiescent
    point. *)

type t

val start : Mcr_simos.Kernel.t -> Mcr_program.Progdef.image -> t
(** Attach to a freshly launched (not yet run) root image. *)

val logs : t -> Logdefs.plog list
(** Per-process startup logs, root first, children in creation order.
    Entries are in issue order. *)

val log_for : t -> Logdefs.proc_key -> Logdefs.plog option

val recording : t -> int
(** Number of processes still recording (startup not finished). *)

val entry_count : t -> int
(** Total recorded entries across processes (memory-accounting input). *)
