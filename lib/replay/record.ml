module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module P = Mcr_program.Progdef
open Logdefs

type t = {
  kernel : K.t;
  mutable plogs : plog list; (* reversed creation order *)
  child_ordinals : (int, int) Hashtbl.t; (* creation callstack -> count *)
  mutable seq : int;
}

let next_seq t =
  t.seq <- t.seq + 1;
  t.seq

let attach_proc t (image : P.image) key =
  let proc = image.P.i_proc in
  let plog = { key; pid = K.pid proc; entries = []; closed = false } in
  t.plogs <- plog :: t.plogs;
  (* global separability: startup-time fds live in the reserved range *)
  K.set_reserved_fd_mode proc true;
  K.set_monitor proc
    (Some
       (fun th call result ->
         if not plog.closed then begin
           K.charge t.kernel (K.costs t.kernel).Mcr_simos.Costs.record_ns;
           plog.entries <-
             { seq = next_seq t; callstack = K.callstack_id th; call; result }
             :: plog.entries
         end));
  image.P.i_first_quiesce_hooks <-
    (fun (img : P.image) ->
      if K.pid img.P.i_proc = K.pid proc then begin
        plog.closed <- true;
        K.set_reserved_fd_mode proc false;
        K.set_monitor proc None
      end)
    :: image.P.i_first_quiesce_hooks

let start kernel (root : P.image) =
  let t = { kernel; plogs = []; child_ordinals = Hashtbl.create 8; seq = 0 } in
  attach_proc t root Root;
  root.P.i_child_hooks <-
    (fun (child : P.image) ->
      let cs = K.creation_callstack child.P.i_proc in
      let ordinal =
        let n = Option.value (Hashtbl.find_opt t.child_ordinals cs) ~default:0 + 1 in
        Hashtbl.replace t.child_ordinals cs n;
        n
      in
      attach_proc t child (Child { creation_callstack = cs; ordinal }))
    :: root.P.i_child_hooks;
  t

let logs t =
  List.rev_map
    (fun plog -> { plog with entries = List.rev plog.entries })
    t.plogs

let log_for t key = List.find_opt (fun l -> l.key = key) (logs t)

let recording t = List.length (List.filter (fun l -> not l.closed) t.plogs)

let entry_count t = List.fold_left (fun acc l -> acc + List.length l.entries) 0 t.plogs
