(* Quickstart: the paper's Listing 1 server, live-updated with MCR.

   The program: an event-driven server whose state is a request counter, a
   linked list of l_t nodes (one per request), and a startup configuration.
   The update (v1 -> v2) adds a field to the list node type — Figure 2's
   type transformation — and changes the reply banner.

     dune exec examples/quickstart.exe *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module Manager = Mcr_core.Manager
module Listing1 = Mcr_servers.Listing1
module Aspace = Mcr_vmem.Aspace

(* a one-shot client: connect, send, print the reply *)
let request kernel label =
  let p =
    K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"client"
      ~entry:"main"
      ~main:(fun _ ->
        let rec connect n =
          match K.syscall (S.Connect { port = Listing1.port }) with
          | S.Ok_fd fd -> Some fd
          | S.Err S.ECONNREFUSED when n > 0 ->
              ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
              connect (n - 1)
          | _ -> None
        in
        match connect 100 with
        | Some fd -> (
            ignore (K.syscall (S.Write { fd; data = "GET /" }));
            match K.syscall (S.Read { fd; max = 256; nonblock = false }) with
            | S.Ok_data reply -> Printf.printf "  %s -> %s\n" label reply
            | _ -> Printf.printf "  %s -> (no reply)\n" label)
        | None -> Printf.printf "  %s -> (no connection)\n" label)
      ()
  in
  ignore
    (K.run_until kernel ~max_ns:(K.clock_ns kernel + 60_000_000_000) (fun () -> not (K.alive p)))

let () =
  (* 1. a simulated machine with a config file on its filesystem *)
  let kernel = K.create () in
  K.fs_write kernel ~path:Listing1.config_path "welcome=hello";

  (* 2. launch the MCR-enabled v1: the manager records the startup log and
     opens the mcr-ctl control socket *)
  print_endline "launching listing1 v1.0 under MCR...";
  let m = Manager.launch kernel (Listing1.v1 ()) in
  assert (Manager.wait_startup m ());

  (* 3. serve some requests: each appends a node to the global list *)
  print_endline "serving requests on v1:";
  request kernel "request 1";
  request kernel "request 2";
  request kernel "request 3";

  (* 4. live-update to v2: quiesce, replay the startup log in the new
     version, transfer (and type-transform) the dirty state, commit *)
  print_endline "live-updating to v2.0 (l_t gains a field)...";
  let m2, report = Manager.update m (Listing1.v2 ()) in
  Printf.printf "  success=%b quiesce=%.1fms cm=%.1fms st=%.1fms downtime=%.1f/%.1fms\n"
    report.Manager.success
    (float_of_int report.Manager.quiesce_ns /. 1e6)
    (float_of_int report.Manager.control_migration_ns /. 1e6)
    (float_of_int report.Manager.state_transfer_ns /. 1e6)
    (float_of_int report.Manager.downtime_ns /. 1e6)
    (float_of_int report.Manager.total_ns /. 1e6);

  (* 5. the counter and the (transformed) list survived *)
  print_endline "serving requests on v2 (state preserved):";
  request kernel "request 4";
  request kernel "request 5";

  (* 6. look at the transformed nodes in the new version's memory *)
  let image = Manager.root_image m2 in
  let open Mcr_types in
  let aspace = image.Mcr_program.Progdef.i_aspace in
  let env = image.Mcr_program.Progdef.i_version.Mcr_program.Progdef.tyenv in
  let head = (Symtab.lookup image.Mcr_program.Progdef.i_symtab "list").Symtab.addr in
  let field base name = Access.read_field aspace env ~base (Ty.Named "l_t") name in
  print_endline "the transformed list in v2's memory (value, new field):";
  let rec walk addr =
    if addr <> 0 then begin
      Printf.printf "  node value=%d new=%d\n" (field addr "value") (field addr "new");
      walk (field addr "next")
    end
  in
  walk (field head "next")
