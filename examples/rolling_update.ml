(* Rolling through an update series under continuous load.

   nginx's tight release cycle gives the paper its 25-update series; this
   example walks a slice of that series — one live update after another —
   while a client keeps hammering the server, and shows that the request
   counter (i.e., transferred state) is continuous and no request fails.

     dune exec examples/rolling_update.exe *)

module K = Mcr_simos.Kernel
module Manager = Mcr_core.Manager
module Nginx = Mcr_servers.Nginx_sim
module Testbed = Mcr_workloads.Testbed
module Http = Mcr_workloads.Http_bench

let () =
  let kernel = K.create () in
  let m = ref (Testbed.launch kernel Testbed.Nginx) in
  let total_ok = ref 0 and total_err = ref 0 in
  let burst label =
    let r = Http.run kernel ~port:Nginx.port ~requests:50 ~path:"/index.html" () in
    total_ok := !total_ok + r.Mcr_workloads.Bench_result.requests;
    total_err := !total_err + r.Mcr_workloads.Bench_result.errors;
    Printf.printf "  %-18s %3d ok %d err\n%!" label r.Mcr_workloads.Bench_result.requests
      r.Mcr_workloads.Bench_result.errors
  in
  (* every 5th release of the series, ending at the final version *)
  let series = Nginx.versions () in
  let steps =
    List.filteri (fun i _ -> i > 0 && (i mod 5 = 0 || i = List.length series - 1)) series
  in
  Printf.printf "rolling nginx through %d live updates (of the %d-update series)\n"
    (List.length steps)
    (List.length series - 1);
  burst "before updates";
  List.iter
    (fun version ->
      let tag = version.Mcr_program.Progdef.version_tag in
      let next, report = Manager.update !m version in
      if not report.Manager.success then begin
        Printf.printf "update to %s ROLLED BACK: %s\n" tag
          (Option.fold ~none:"?" ~some:Mcr_error.to_string report.Manager.failure);
        exit 1
      end;
      m := next;
      Printf.printf "updated to %-12s (%.1f ms total, %d calls replayed)\n%!" tag
        (float_of_int report.Manager.total_ns /. 1e6)
        report.Manager.replayed_calls;
      burst ("on " ^ tag))
    steps;
  Printf.printf "total: %d requests served, %d errors, across %d live updates\n" !total_ok
    !total_err (List.length steps);
  if !total_err > 0 then exit 1
