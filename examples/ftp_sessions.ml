(* Live-updating a process-per-connection server with active sessions.

   vsftpd forks one process per control connection; those processes have
   volatile quiescent points that do not exist at startup, so after the
   update a reinit-handler annotation re-forks them at the original fork
   site's call-stack identity and mutable tracing transfers each session's
   state (login state, command counter) process-by-process.

   The scenario: two users log in and stay connected; the server is
   live-updated to a version whose session structure has a new field; both
   users keep working in the same sessions without reconnecting.

     dune exec examples/ftp_sessions.exe *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module Manager = Mcr_core.Manager
module Vsftpd = Mcr_servers.Vsftpd_sim
module Testbed = Mcr_workloads.Testbed
module Aspace = Mcr_vmem.Aspace

type user = { name : string; mutable transcript : string list; proc : K.proc }

let spawn_user kernel name script =
  let transcript = ref [] in
  let proc =
    K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name ~entry:"main"
      ~main:(fun _ ->
        let rec connect n =
          match K.syscall (S.Connect { port = Vsftpd.port }) with
          | S.Ok_fd fd -> Some fd
          | S.Err S.ECONNREFUSED when n > 0 ->
              ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
              connect (n - 1)
          | _ -> None
        in
        match connect 100 with
        | None -> transcript := [ "connect failed" ]
        | Some fd ->
            let recv () =
              match K.syscall (S.Read { fd; max = 1 lsl 20; nonblock = false }) with
              | S.Ok_data d -> d
              | _ -> "(err)"
            in
            ignore (recv ());
            List.iter
              (function
                | `Cmd c ->
                    ignore (K.syscall (S.Write { fd; data = c }));
                    transcript := !transcript @ [ Printf.sprintf "%-12s -> %s" c (recv ()) ]
                | `Wait ns -> ignore (K.syscall (S.Nanosleep { ns })))
              script)
      ()
  in
  fun () -> { name; transcript = !transcript; proc }

let () =
  let kernel = K.create () in
  K.fs_write kernel ~path:(Vsftpd.ftp_root ^ "/notes.txt") "remember the milk";
  let m = Testbed.launch kernel Testbed.Vsftpd in
  (* two users: log in, check status, then keep the session open while the
     update happens, then keep using it *)
  let script who =
    [
      `Cmd (Printf.sprintf "USER %s" who);
      `Cmd "PASS secret";
      `Cmd "STAT";
      `Wait 700_000_000 (* the live update happens during this pause *);
      `Cmd "STAT";
      `Cmd "QUIT";
    ]
  in
  let alice = spawn_user kernel "alice" (script "alice") in
  let bob = spawn_user kernel "bob" (script "bob") in
  (* let both sessions reach their pause (3 replies each) *)
  ignore
    (K.run_until kernel
       ~max_ns:(K.clock_ns kernel + 120_000_000_000)
       (fun () ->
         List.length (alice ()).transcript >= 3 && List.length (bob ()).transcript >= 3));
  Printf.printf "sessions active: %d server processes\n" (List.length (Manager.images m));
  print_endline "live-updating vsftpd 1.1.0 -> 2.0.2 (session struct gains bytes_sent)...";
  let _m2, report = Manager.update m (Vsftpd.final ()) in
  Printf.printf "  %s; state transfer %.1f ms across %d process pairs\n"
    (if report.Manager.success then "COMMITTED" else "ROLLED BACK")
    (float_of_int report.Manager.state_transfer_ns /. 1e6)
    (List.length report.Manager.transfers);
  assert report.Manager.success;
  (* both users finish their sessions on the new version *)
  ignore
    (K.run_until kernel
       ~max_ns:(K.clock_ns kernel + 120_000_000_000)
       (fun () -> (not (K.alive (alice ()).proc)) && not (K.alive (bob ()).proc)));
  List.iter
    (fun user ->
      Printf.printf "%s's session transcript (uninterrupted across the update):\n" user.name;
      List.iter (fun line -> Printf.printf "  %s\n" line) user.transcript)
    [ alice (); bob () ]
