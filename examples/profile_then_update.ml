(* The full Figure 1 workflow, from build time to run time:

   1. run the quiescence profiler on the uninstrumented program under a
      test workload;
   2. feed the suggested quiescent points back into the build (the version
      descriptor's [qpoints] — the static-instrumentation input);
   3. launch the MCR-enabled build and live-update it.

   The example deliberately starts from a version with NO quiescent points
   configured, proving that the profiled ones are what make the update
   possible.

     dune exec examples/profile_then_update.exe *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module P = Mcr_program.Progdef
module Profiler = Mcr_quiesce.Profiler
module Manager = Mcr_core.Manager
module Listing1 = Mcr_servers.Listing1
module Aspace = Mcr_vmem.Aspace

let request kernel =
  let reply = ref "(none)" in
  let p =
    K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"client"
      ~entry:"main"
      ~main:(fun _ ->
        let rec connect n =
          match K.syscall (S.Connect { port = Listing1.port }) with
          | S.Ok_fd fd -> Some fd
          | S.Err S.ECONNREFUSED when n > 0 ->
              ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
              connect (n - 1)
          | _ -> None
        in
        match connect 100 with
        | Some fd -> (
            ignore (K.syscall (S.Write { fd; data = "GET /" }));
            match K.syscall (S.Read { fd; max = 256; nonblock = false }) with
            | S.Ok_data d -> reply := d
            | _ -> ())
        | None -> ())
      ()
  in
  ignore
    (K.run_until kernel ~max_ns:(K.clock_ns kernel + 60_000_000_000) (fun () -> not (K.alive p)));
  !reply

let () =
  (* -- build time: profile ------------------------------------------- *)
  print_endline "step 1: profiling the uninstrumented program under a test workload";
  let kernel = K.create () in
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let profiler = Profiler.create kernel in
  Profiler.set_filter profiler (fun th ->
      K.thread_name th <> "mcr-ctl" && P.image_of_proc (K.thread_proc th) <> None);
  Profiler.attach profiler;
  (* a build with no instrumented quiescent points at all *)
  let unprofiled_v1 = { (Listing1.v1 ()) with P.qpoints = [] } in
  let m0 = Manager.launch kernel ~instr:Mcr_program.Instr.baseline ~profiler unprofiled_v1 in
  ignore m0;
  (* the execution-stalling workload: a few requests, then idle *)
  for _ = 1 to 3 do
    ignore (request kernel)
  done;
  ignore (K.run_until kernel ~max_ns:(K.clock_ns kernel + 100_000_000) (fun () -> false));
  Profiler.detach profiler;
  let report = Profiler.report profiler in
  Format.printf "%a@." Profiler.pp_report report;
  let qpoints = Profiler.suggested_qpoints report in
  print_endline "suggested quiescent points:";
  List.iter (fun (site, call) -> Printf.printf "  %s / %s\n" site call) qpoints;

  (* -- build time: instrument with the profiled points --------------- *)
  print_endline "\nstep 2: building the MCR-enabled versions with those points";
  let v1 = { (Listing1.v1 ()) with P.qpoints = qpoints } in
  let v2 = { (Listing1.v2 ()) with P.qpoints = qpoints } in

  (* -- run time: launch and live-update ------------------------------ *)
  print_endline "step 3: launching the instrumented build and live-updating it";
  let kernel = K.create () in
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let m = Manager.launch kernel v1 in
  assert (Manager.wait_startup m ());
  Printf.printf "  v1 serves: %s\n" (request kernel);
  let _m2, result = Manager.update m v2 in
  Printf.printf "  update: %s (quiesced in %.1f ms at the profiled point)\n"
    (if result.Manager.success then "COMMITTED" else "ROLLED BACK")
    (float_of_int result.Manager.quiesce_ns /. 1e6);
  Printf.printf "  v2 serves: %s\n" (request kernel)
