(* Atomic rollback: what happens when an update cannot be applied.

   Three failure classes, all ending with the old version resuming service
   as if nothing happened:

   1. mutable-reinitialization conflict — the new version's startup omits a
      recorded system call (listing1 `Omit_listen`);
   2. mutable-tracing conflict — the update changes a data structure that
      conservative tracing marked nonupdatable (listing1 `Change_hidden`,
      the hidden pointer of Figure 2);
   3. startup crash — httpd built without the paper's 8-LOC preparation
      aborts when it detects the running instance's pidfile.

     dune exec examples/failed_update_rollback.exe *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module Manager = Mcr_core.Manager
module Listing1 = Mcr_servers.Listing1
module Httpd = Mcr_servers.Httpd_sim
module Testbed = Mcr_workloads.Testbed
module Aspace = Mcr_vmem.Aspace

let request kernel port payload =
  let reply = ref "(none)" in
  let p =
    K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"client"
      ~entry:"main"
      ~main:(fun _ ->
        let rec connect n =
          match K.syscall (S.Connect { port }) with
          | S.Ok_fd fd -> Some fd
          | S.Err S.ECONNREFUSED when n > 0 ->
              ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
              connect (n - 1)
          | _ -> None
        in
        match connect 100 with
        | Some fd -> (
            ignore (K.syscall (S.Write { fd; data = payload }));
            match K.syscall (S.Read { fd; max = 65536; nonblock = false }) with
            | S.Ok_data d -> reply := d
            | _ -> ())
        | None -> ())
      ()
  in
  ignore
    (K.run_until kernel ~max_ns:(K.clock_ns kernel + 60_000_000_000) (fun () -> not (K.alive p)));
  !reply

let attempt name m version =
  let m', report = Manager.update m version in
  Printf.printf "update %-28s -> %s\n" name
    (if report.Manager.success then "COMMITTED (unexpected!)"
     else "ROLLED BACK: " ^ Option.fold ~none:"?" ~some:Mcr_error.to_string report.Manager.failure);
  List.iter
    (fun c -> Format.printf "    %a@." Mcr_replay.Replayer.pp_conflict c)
    report.Manager.replay_conflicts;
  List.iter
    (fun c -> Format.printf "    %a@." Mcr_trace.Transfer.pp_conflict c)
    report.Manager.transfer_conflicts;
  assert (not report.Manager.success);
  assert (m' == m);
  m'

let () =
  (* listing1: replay and tracing conflicts *)
  let kernel = K.create () in
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let m = Manager.launch kernel (Listing1.v1 ()) in
  assert (Manager.wait_startup m ());
  Printf.printf "before: %s\n" (request kernel Listing1.port "GET /");
  let m = attempt "omitting a recorded call" m (Listing1.v2 ~variant:`Omit_listen ()) in
  Printf.printf "after rollback, old version serves: %s\n"
    (request kernel Listing1.port "GET /");
  let m = attempt "changing a pinned structure" m (Listing1.v2 ~variant:`Change_hidden ()) in
  Printf.printf "after rollback, old version serves: %s\n"
    (request kernel Listing1.port "GET /");
  ignore m;
  (* httpd: the unprepared build aborts during replayed startup *)
  print_endline "";
  let kernel2 = K.create () in
  let mh = Testbed.launch kernel2 Testbed.Httpd in
  Printf.printf "httpd before: %s\n"
    (String.sub (request kernel2 Httpd.port "GET /index.html") 0 20);
  let mh = attempt "unprepared httpd (pidfile)" mh (Httpd.unprepared ()) in
  ignore mh;
  Printf.printf "httpd after rollback: %s\n"
    (String.sub (request kernel2 Httpd.port "GET /index.html") 0 20);
  (* and the prepared build of the same release updates fine *)
  let mh2, report = Manager.update mh (Httpd.final ()) in
  Printf.printf "prepared httpd 2.3.8: %s\n"
    (if report.Manager.success then "COMMITTED" else "failed?!");
  ignore mh2
