let w_u64 b n =
  for i = 0 to 7 do Buffer.add_char b (Char.chr ((n lsr (8*i)) land 0xff)) done
let () =
  let b = Buffer.create 64 in
  Buffer.add_string b "MCRIMAGE";
  w_u64 b 1;            (* format version *)
  w_u64 b 1;            (* section count *)
  Buffer.add_string b "META";
  (* name length = max_int: pos + n overflows negative, bounds check passes *)
  w_u64 b max_int;
  Buffer.add_string b "xx";
  let data = Buffer.contents b in
  (match Mcr_image.Image.decode data with
   | Ok _ -> print_endline "Ok ?!"
   | Error e -> print_endline ("typed error: " ^ Mcr_image.Image.error_to_string e)
   | exception e -> print_endline ("UNCAUGHT EXCEPTION: " ^ Printexc.to_string e))
