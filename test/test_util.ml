(* Tests for Mcr_util: hashing, RNG, statistics, table rendering. *)

open Mcr_util

(* ------------------------------------------------------------------ *)
(* Fnv *)

let test_fnv_deterministic () =
  Alcotest.(check int) "same input same hash" (Fnv.string "accept") (Fnv.string "accept")

let test_fnv_distinguishes () =
  Alcotest.(check bool) "different strings differ" false
    (Fnv.string "server_init" = Fnv.string "server_loop")

let test_fnv_nonnegative () =
  List.iter
    (fun s -> Alcotest.(check bool) ("nonneg " ^ s) true (Fnv.string s >= 0))
    [ ""; "a"; "main"; String.make 1000 'x' ]

let test_fnv_strings_order_sensitive () =
  Alcotest.(check bool) "order matters" false
    (Fnv.strings [ "main"; "server_init" ] = Fnv.strings [ "server_init"; "main" ])

let test_fnv_strings_no_concat_collision () =
  (* ["ab"; "c"] must not collide with ["a"; "bc"]: the separator byte breaks
     plain concatenation. *)
  Alcotest.(check bool) "no concat collision" false
    (Fnv.strings [ "ab"; "c" ] = Fnv.strings [ "a"; "bc" ])

let test_fnv_empty_stack () =
  Alcotest.(check bool) "empty stack hash differs from empty string" true
    (Fnv.strings [] <> Fnv.string "" || Fnv.strings [] = Fnv.strings [])

let test_fnv_combine_not_commutative () =
  let a = Fnv.string "a" and b = Fnv.string "b" in
  Alcotest.(check bool) "combine is order sensitive" false
    (Fnv.combine a b = Fnv.combine b a)

let test_fnv_int () =
  Alcotest.(check bool) "int hashes differ" false (Fnv.int 1 = Fnv.int 2);
  Alcotest.(check int) "int deterministic" (Fnv.int 42) (Fnv.int 42)

let prop_fnv_nonneg =
  QCheck.Test.make ~name:"fnv strings always nonnegative" ~count:200
    QCheck.(small_list small_string)
    (fun names -> Fnv.strings names >= 0)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_copy_independent () =
  let a = Rng.create 11 in
  let _ = Rng.next a in
  let b = Rng.copy a in
  let xa = Rng.next a in
  let xb = Rng.next b in
  Alcotest.(check int) "copy continues the same stream" xa xb;
  (* advancing a further does not affect b *)
  let _ = Rng.next a in
  let ya = Rng.next a and yb = Rng.next b in
  Alcotest.(check bool) "streams diverge after independent advance" true (ya <> yb || ya = yb)

let test_rng_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_pick_member () =
  let r = Rng.create 9 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 50 do
    let v = Rng.pick r arr in
    Alcotest.(check bool) "member" true (Array.exists (( = ) v) arr)
  done

(* ------------------------------------------------------------------ *)
(* Stats *)

let feq = Alcotest.(float 1e-9)

let test_median_odd () = Alcotest.check feq "median odd" 2. (Stats.median [ 3.; 1.; 2. ])

let test_median_even () =
  Alcotest.check feq "median even" 2.5 (Stats.median [ 4.; 1.; 2.; 3. ])

let test_median_single () = Alcotest.check feq "median single" 7. (Stats.median [ 7. ])

let test_mean () = Alcotest.check feq "mean" 2. (Stats.mean [ 1.; 2.; 3. ])

let test_stddev_constant () =
  Alcotest.check feq "stddev of constant" 0. (Stats.stddev [ 5.; 5.; 5. ])

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  (* interpolated: p50 of 1..100 sits between the 50th and 51st values *)
  Alcotest.check feq "p50" 50.5 (Stats.percentile 50. xs);
  Alcotest.check feq "p100" 100. (Stats.percentile 100. xs);
  Alcotest.check feq "p0" 1. (Stats.percentile 0. xs)

let test_percentile_small () =
  (* pins on tiny inputs: p50 must agree with median (the nearest-rank
     implementation returned 1.0 here) *)
  Alcotest.check feq "p50 pair" 1.5 (Stats.percentile 50. [ 1.; 2. ]);
  Alcotest.check feq "p50 = median" (Stats.median [ 1.; 2. ]) (Stats.p50 [ 2.; 1. ]);
  Alcotest.check feq "p90 pair" 1.9 (Stats.percentile 90. [ 1.; 2. ]);
  Alcotest.check feq "p99 pair" 1.99 (Stats.percentile 99. [ 1.; 2. ]);
  Alcotest.check feq "p50 triple" 2. (Stats.percentile 50. [ 3.; 1.; 2. ]);
  Alcotest.check feq "p50 quad = median" (Stats.median [ 4.; 1.; 2.; 3. ])
    (Stats.percentile 50. [ 4.; 1.; 2.; 3. ]);
  Alcotest.check feq "p90 quad" 3.7 (Stats.percentile 90. [ 4.; 1.; 2.; 3. ]);
  Alcotest.check feq "singleton any p" 7. (Stats.percentile 33. [ 7. ])

let test_min_max () =
  let lo, hi = Stats.min_max [ 3.; -1.; 7. ] in
  Alcotest.check feq "min" (-1.) lo;
  Alcotest.check feq "max" 7. hi

let test_geometric_mean () =
  Alcotest.check feq "geomean" 2. (Stats.geometric_mean [ 1.; 2.; 4. ])

let test_summary () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  let s = Stats.summary xs in
  Alcotest.(check int) "n" 100 s.Stats.n;
  Alcotest.check feq "p50" (Stats.p50 xs) s.Stats.p50;
  Alcotest.check feq "p90" 90.1 s.Stats.p90;
  Alcotest.check feq "p99" 99.01 s.Stats.p99;
  Alcotest.check feq "min" 1. s.Stats.min;
  Alcotest.check feq "max" 100. s.Stats.max

let test_hist_observe_percentile () =
  let h = Stats.hist_create ~bounds:[| 10; 100; 1000 |] in
  Alcotest.(check int) "empty percentile" 0 (Stats.hist_percentile h 99.);
  List.iter (Stats.hist_observe h) [ 5; 7; 50; 200; 5000 ];
  Alcotest.(check int) "total" 5 h.Stats.total;
  Alcotest.(check int) "sum" 5262 h.Stats.sum;
  (* counts: <=10 -> 2, <=100 -> 1, <=1000 -> 1, overflow -> 1 *)
  Alcotest.(check (array int)) "bucket counts" [| 2; 1; 1; 1 |] h.Stats.counts;
  Alcotest.(check int) "p50 = bucket upper bound" 100 (Stats.hist_percentile h 50.);
  (* overflow observations saturate at the last finite bound *)
  Alcotest.(check int) "p99 saturates" 1000 (Stats.hist_percentile h 99.)

let test_hist_merge () =
  let a = Stats.hist_create ~bounds:[| 10; 100 |] in
  let b = Stats.hist_create ~bounds:[| 10; 100 |] in
  Stats.hist_observe a 5;
  Stats.hist_observe b 50;
  Stats.hist_observe b 5000;
  let m = Stats.hist_merge a b in
  Alcotest.(check int) "merged total" 3 m.Stats.total;
  Alcotest.(check (array int)) "merged counts" [| 1; 1; 1 |] m.Stats.counts;
  (* merge leaves the inputs alone *)
  Alcotest.(check int) "a untouched" 1 a.Stats.total;
  (match Stats.hist_merge a (Stats.hist_create ~bounds:[| 1 |]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bounds mismatch must raise");
  match Stats.hist_create ~bounds:[| 10; 10 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-increasing bounds must raise"

let prop_median_bounded =
  QCheck.Test.make ~name:"median lies within min..max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 40) (float_range (-1e6) 1e6))
    (fun xs ->
      let m = Stats.median xs in
      let lo, hi = Stats.min_max xs in
      m >= lo && m <= hi)

let prop_mean_shift =
  QCheck.Test.make ~name:"mean commutes with shift" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 40) (float_range (-1e3) 1e3))
    (fun xs ->
      let shifted = List.map (fun x -> x +. 10.) xs in
      abs_float (Stats.mean shifted -. (Stats.mean xs +. 10.)) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Tablefmt *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table_renders_all_cells () =
  let t = Tablefmt.create ~header:[ "name"; "value" ] in
  Tablefmt.add_row t [ "alpha"; "1" ];
  Tablefmt.add_row t [ "b"; "22" ];
  let s = Tablefmt.render t in
  List.iter
    (fun sub -> Alcotest.(check bool) ("contains " ^ sub) true (contains s sub))
    [ "name"; "value"; "alpha"; "22" ]

let test_table_pads_short_rows () =
  let t = Tablefmt.create ~header:[ "a"; "b"; "c" ] in
  Tablefmt.add_row t [ "x" ];
  let s = Tablefmt.render t in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_table_separator () =
  let t = Tablefmt.create ~header:[ "a" ] in
  Tablefmt.add_row t [ "1" ];
  Tablefmt.add_sep t;
  Tablefmt.add_row t [ "2" ];
  let s = Tablefmt.render t in
  (* header separator + explicit separator *)
  let dashes = String.split_on_char '\n' s |> List.filter (fun l -> l <> "" && String.for_all (( = ) '-') l) in
  Alcotest.(check int) "two separator lines" 2 (List.length dashes)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mcr_util"
    [
      ( "fnv",
        [
          Alcotest.test_case "deterministic" `Quick test_fnv_deterministic;
          Alcotest.test_case "distinguishes strings" `Quick test_fnv_distinguishes;
          Alcotest.test_case "nonnegative" `Quick test_fnv_nonnegative;
          Alcotest.test_case "stack order sensitive" `Quick test_fnv_strings_order_sensitive;
          Alcotest.test_case "no concat collision" `Quick test_fnv_strings_no_concat_collision;
          Alcotest.test_case "empty stack" `Quick test_fnv_empty_stack;
          Alcotest.test_case "combine not commutative" `Quick test_fnv_combine_not_commutative;
          Alcotest.test_case "int hashing" `Quick test_fnv_int;
          qt prop_fnv_nonneg;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "copy independence" `Quick test_rng_copy_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "pick membership" `Quick test_rng_pick_member;
        ] );
      ( "stats",
        [
          Alcotest.test_case "median odd" `Quick test_median_odd;
          Alcotest.test_case "median even" `Quick test_median_even;
          Alcotest.test_case "median single" `Quick test_median_single;
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "stddev constant" `Quick test_stddev_constant;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile small inputs" `Quick test_percentile_small;
          Alcotest.test_case "min max" `Quick test_min_max;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "hist observe/percentile" `Quick test_hist_observe_percentile;
          Alcotest.test_case "hist merge" `Quick test_hist_merge;
          qt prop_median_bounded;
          qt prop_mean_shift;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "renders all cells" `Quick test_table_renders_all_cells;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "separator lines" `Quick test_table_separator;
        ] );
    ]
