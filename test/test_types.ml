(* Tests for Mcr_types: descriptors, layout, slots, transformation plans,
   symbol tables, typed access. *)

open Mcr_types
module Aspace = Mcr_vmem.Aspace
module Addr = Mcr_vmem.Addr
module Region = Mcr_vmem.Region

(* The paper's running example (Listing 1 / Figure 2): a linked list node
   that gains a [new] field in v2. *)
let list_node_v1 =
  Ty.Struct { sname = "l_t"; fields = [ ("value", Ty.Int); ("next", Ty.Ptr (Ty.Named "l_t")) ] }

let list_node_v2 =
  Ty.Struct
    {
      sname = "l_t";
      fields = [ ("value", Ty.Int); ("next", Ty.Ptr (Ty.Named "l_t")); ("new", Ty.Int) ];
    }

let env_v1 () =
  let e = Ty.env_create () in
  Ty.env_add e "l_t" list_node_v1;
  e

let env_v2 () =
  let e = Ty.env_create () in
  Ty.env_add e "l_t" list_node_v2;
  e

(* ------------------------------------------------------------------ *)
(* Ty: sizeof and offsets *)

let test_sizeof_scalars () =
  let env = Ty.env_create () in
  List.iter
    (fun (ty, w) -> Alcotest.(check int) (Ty.to_string ty) w (Ty.sizeof_words env ty))
    [
      (Ty.Int, 1);
      (Ty.Word, 1);
      (Ty.Ptr Ty.Int, 1);
      (Ty.Void_ptr, 1);
      (Ty.Func_ptr, 1);
      (Ty.Char_array 8, 1);
      (Ty.Char_array 9, 2);
      (Ty.Char_array 1, 1);
      (Ty.Opaque 3, 3);
      (Ty.Array (Ty.Int, 10), 10);
    ]

let test_sizeof_struct () =
  let env = env_v1 () in
  Alcotest.(check int) "l_t is 2 words" 2 (Ty.sizeof_words env (Ty.Named "l_t"));
  Alcotest.(check int) "v2 l_t is 3 words" 3 (Ty.sizeof_words (env_v2 ()) list_node_v2)

let test_sizeof_union_max () =
  let env = Ty.env_create () in
  let u = Ty.Union [ ("a", Ty.Int); ("b", Ty.Char_array 24) ] in
  Alcotest.(check int) "union sized to max member" 3 (Ty.sizeof_words env u)

let test_sizeof_recursive_rejected () =
  let env = Ty.env_create () in
  Ty.env_add env "bad" (Ty.Struct { sname = "bad"; fields = [ ("self", Ty.Named "bad") ] });
  Alcotest.check_raises "unbounded recursion rejected"
    (Invalid_argument "Ty.sizeof_words: unbounded recursive struct bad") (fun () ->
      ignore (Ty.sizeof_words env (Ty.Named "bad")))

let test_field_offsets () =
  let env = env_v2 () in
  Alcotest.(check int) "value at 0" 0 (Ty.field_offset env (Ty.Named "l_t") "value");
  Alcotest.(check int) "next at 1" 1 (Ty.field_offset env (Ty.Named "l_t") "next");
  Alcotest.(check int) "new at 2" 2 (Ty.field_offset env (Ty.Named "l_t") "new")

let test_field_ty () =
  let env = env_v1 () in
  match Ty.field_ty env (Ty.Named "l_t") "next" with
  | Ty.Ptr (Ty.Named "l_t") -> ()
  | other -> Alcotest.failf "unexpected field type %s" (Ty.to_string other)

let test_resolve_cycle_rejected () =
  let env = Ty.env_create () in
  Ty.env_add env "a" (Ty.Named "b");
  Ty.env_add env "b" (Ty.Named "a");
  Alcotest.check_raises "pure name cycle rejected"
    (Invalid_argument "Ty.resolve: cyclic named type a") (fun () ->
      ignore (Ty.resolve env (Ty.Named "a")))

(* ------------------------------------------------------------------ *)
(* Ty: slot classification *)

let slot_kind = function
  | Ty.Slot_scalar -> "scalar"
  | Ty.Slot_ptr _ -> "ptr"
  | Ty.Slot_void_ptr -> "voidptr"
  | Ty.Slot_func_ptr -> "funcptr"
  | Ty.Slot_encoded_ptr _ -> "encptr"
  | Ty.Slot_opaque -> "opaque"

let check_slots name env ty expected =
  let got = Array.to_list (Ty.slots env ty) |> List.map slot_kind in
  Alcotest.(check (list string)) name expected got

let test_slots_list_node () =
  check_slots "l_t slots" (env_v1 ()) (Ty.Named "l_t") [ "scalar"; "ptr" ]

let test_slots_char_array_opaque () =
  check_slots "char[16] opaque" (Ty.env_create ()) (Ty.Char_array 16) [ "opaque"; "opaque" ]

let test_slots_word_opaque_by_default () =
  check_slots "long opaque" (Ty.env_create ()) Ty.Word [ "opaque" ]

let test_slots_word_precise_policy () =
  let policy = { Ty.default_policy with words_opaque = false } in
  let got = Ty.slots ~policy (Ty.env_create ()) Ty.Word in
  Alcotest.(check string) "long scalar under relaxed policy" "scalar" (slot_kind got.(0))

let test_slots_union_opaque () =
  let u = Ty.Union [ ("p", Ty.Ptr Ty.Int); ("n", Ty.Word) ] in
  check_slots "union opaque" (Ty.env_create ()) u [ "opaque" ]

let test_slots_nested () =
  let env = env_v1 () in
  let ty =
    Ty.Struct
      {
        sname = "outer";
        fields =
          [ ("node", Ty.Named "l_t"); ("buf", Ty.Char_array 8); ("fp", Ty.Func_ptr) ];
      }
  in
  check_slots "nested struct" env ty [ "scalar"; "ptr"; "opaque"; "funcptr" ]

let test_slots_array_expansion () =
  let env = env_v1 () in
  let ty = Ty.Array (Ty.Named "l_t", 3) in
  check_slots "array of structs" env ty [ "scalar"; "ptr"; "scalar"; "ptr"; "scalar"; "ptr" ]

let test_slots_encoded_ptr () =
  let ty = Ty.Encoded_ptr { target = Ty.Int; mask = 3 } in
  check_slots "encoded ptr slot" (Ty.env_create ()) ty [ "encptr" ]

let test_slots_length_matches_sizeof () =
  let env = env_v2 () in
  let tys =
    [
      Ty.Named "l_t";
      Ty.Array (Ty.Named "l_t", 5);
      Ty.Char_array 100;
      Ty.Union [ ("a", Ty.Char_array 32); ("b", Ty.Int) ];
      Ty.Struct { sname = "s"; fields = [ ("a", Ty.Int); ("b", Ty.Array (Ty.Void_ptr, 4)) ] };
    ]
  in
  List.iter
    (fun ty ->
      Alcotest.(check int)
        ("len = sizeof for " ^ Ty.to_string ty)
        (Ty.sizeof_words env ty)
        (Array.length (Ty.slots env ty)))
    tys

let test_contains_opaque () =
  let env = env_v1 () in
  Alcotest.(check bool) "l_t has no opaque" false (Ty.contains_opaque env (Ty.Named "l_t"));
  Alcotest.(check bool) "char[8] opaque" true (Ty.contains_opaque env (Ty.Char_array 8))

(* ------------------------------------------------------------------ *)
(* Ty: equality across environments *)

let test_equal_same_type () =
  Alcotest.(check bool) "l_t = l_t across same-def envs" true
    (Ty.equal (env_v1 ()) (env_v1 ()) (Ty.Named "l_t") (Ty.Named "l_t"))

let test_equal_detects_added_field () =
  Alcotest.(check bool) "v1 l_t <> v2 l_t" false
    (Ty.equal (env_v1 ()) (env_v2 ()) (Ty.Named "l_t") (Ty.Named "l_t"))

let test_equal_recursive_terminates () =
  (* Recursive struct referencing itself through Ptr must not loop. *)
  Alcotest.(check bool) "recursive equality terminates" true
    (Ty.equal (env_v1 ()) (env_v1 ()) list_node_v1 list_node_v1)

let test_equal_scalar_kinds_differ () =
  let e = Ty.env_create () in
  Alcotest.(check bool) "int <> long" false (Ty.equal e e Ty.Int Ty.Word);
  Alcotest.(check bool) "ptr <> voidptr" false (Ty.equal e e (Ty.Ptr Ty.Int) Ty.Void_ptr)

(* ------------------------------------------------------------------ *)
(* Typlan *)

let test_plan_identity () =
  let env = env_v1 () in
  match Typlan.plan ~src_env:env ~dst_env:env ~src:(Ty.Named "l_t") ~dst:(Ty.Named "l_t") with
  | Ok p ->
      Alcotest.(check bool) "identity" true (Typlan.is_identity p);
      Alcotest.(check int) "words" 2 p.Typlan.dst_words
  | Error e -> Alcotest.fail e

let test_plan_figure2_added_field () =
  (* Figure 2: v2 adds field [new]; values copy, new field zeroes. *)
  match
    Typlan.plan ~src_env:(env_v1 ()) ~dst_env:(env_v2 ()) ~src:(Ty.Named "l_t")
      ~dst:(Ty.Named "l_t")
  with
  | Ok p ->
      Alcotest.(check bool) "not identity" false (Typlan.is_identity p);
      let src = [| 5; 0x9da68e8 |] in
      let dst = Array.make 3 (-1) in
      Typlan.apply p ~read:(fun i -> src.(i)) ~write:(fun i v -> dst.(i) <- v);
      Alcotest.(check (array int)) "value copied, next copied, new zeroed"
        [| 5; 0x9da68e8; 0 |] dst
  | Error e -> Alcotest.fail e

let test_plan_removed_field () =
  match
    Typlan.plan ~src_env:(env_v2 ()) ~dst_env:(env_v1 ()) ~src:(Ty.Named "l_t")
      ~dst:(Ty.Named "l_t")
  with
  | Ok p ->
      let src = [| 7; 0xbeef0; 99 |] in
      let dst = Array.make 2 (-1) in
      Typlan.apply p ~read:(fun i -> src.(i)) ~write:(fun i v -> dst.(i) <- v);
      Alcotest.(check (array int)) "removed field dropped" [| 7; 0xbeef0 |] dst
  | Error e -> Alcotest.fail e

let test_plan_reordered_fields () =
  let src_env = Ty.env_create () and dst_env = Ty.env_create () in
  let src = Ty.Struct { sname = "s"; fields = [ ("a", Ty.Int); ("b", Ty.Int) ] } in
  let dst = Ty.Struct { sname = "s"; fields = [ ("b", Ty.Int); ("a", Ty.Int) ] } in
  match Typlan.plan ~src_env ~dst_env ~src ~dst with
  | Ok p ->
      let sv = [| 1; 2 |] in
      let dv = Array.make 2 0 in
      Typlan.apply p ~read:(fun i -> sv.(i)) ~write:(fun i v -> dv.(i) <- v);
      Alcotest.(check (array int)) "fields follow names" [| 2; 1 |] dv
  | Error e -> Alcotest.fail e

let test_plan_char_array_grow_shrink () =
  let env = Ty.env_create () in
  (match Typlan.plan ~src_env:env ~dst_env:env ~src:(Ty.Char_array 8) ~dst:(Ty.Char_array 24) with
  | Ok p ->
      let sv = [| 0xAA |] in
      let dv = Array.make 3 (-1) in
      Typlan.apply p ~read:(fun i -> sv.(i)) ~write:(fun i v -> dv.(i) <- v);
      Alcotest.(check (array int)) "grow copies prefix, zeroes tail" [| 0xAA; 0; 0 |] dv
  | Error e -> Alcotest.fail e);
  match Typlan.plan ~src_env:env ~dst_env:env ~src:(Ty.Char_array 24) ~dst:(Ty.Char_array 8) with
  | Ok p ->
      let sv = [| 1; 2; 3 |] in
      let dv = Array.make 1 (-1) in
      Typlan.apply p ~read:(fun i -> sv.(i)) ~write:(fun i v -> dv.(i) <- v);
      Alcotest.(check (array int)) "shrink keeps prefix" [| 1 |] dv
  | Error e -> Alcotest.fail e

let test_plan_array_resize_with_elem_transform () =
  let src_env = env_v1 () and dst_env = env_v2 () in
  match
    Typlan.plan ~src_env ~dst_env ~src:(Ty.Array (Ty.Named "l_t", 2))
      ~dst:(Ty.Array (Ty.Named "l_t", 3))
  with
  | Ok p ->
      let sv = [| 1; 100; 2; 200 |] in
      let dv = Array.make 9 (-1) in
      Typlan.apply p ~read:(fun i -> sv.(i)) ~write:(fun i v -> dv.(i) <- v);
      Alcotest.(check (array int)) "elements transformed, tail zeroed"
        [| 1; 100; 0; 2; 200; 0; 0; 0; 0 |] dv
  | Error e -> Alcotest.fail e

let test_plan_scalar_pointer_confusion_rejected () =
  let env = Ty.env_create () in
  match Typlan.plan ~src_env:env ~dst_env:env ~src:Ty.Int ~dst:(Ty.Ptr Ty.Int) with
  | Ok _ -> Alcotest.fail "int -> ptr should be rejected"
  | Error _ -> ()

let test_plan_union_change_rejected () =
  let env = Ty.env_create () in
  let u1 = Ty.Union [ ("a", Ty.Int) ] in
  let u2 = Ty.Union [ ("a", Ty.Int); ("b", Ty.Ptr Ty.Int) ] in
  match Typlan.plan ~src_env:env ~dst_env:env ~src:u1 ~dst:u2 with
  | Ok _ -> Alcotest.fail "changed union should be rejected"
  | Error msg ->
      Alcotest.(check bool) "mentions handler" true
        (String.length msg > 0)

let test_plan_encoded_mask_change_rejected () =
  let env = Ty.env_create () in
  let p1 = Ty.Encoded_ptr { target = Ty.Int; mask = 3 } in
  let p2 = Ty.Encoded_ptr { target = Ty.Int; mask = 1 } in
  match Typlan.plan ~src_env:env ~dst_env:env ~src:p1 ~dst:p2 with
  | Ok _ -> Alcotest.fail "mask change should be rejected"
  | Error _ -> ()

let test_plan_nested_struct_evolution () =
  (* evolving a field that is itself a struct recurses field-by-field *)
  let inner_v1 = Ty.Struct { sname = "in"; fields = [ ("a", Ty.Int); ("b", Ty.Int) ] } in
  let inner_v2 =
    Ty.Struct { sname = "in"; fields = [ ("b", Ty.Int); ("a", Ty.Int); ("c", Ty.Int) ] }
  in
  let outer inner =
    Ty.Struct { sname = "out"; fields = [ ("pre", Ty.Int); ("mid", inner); ("post", Ty.Int) ] }
  in
  let env = Ty.env_create () in
  match Typlan.plan ~src_env:env ~dst_env:env ~src:(outer inner_v1) ~dst:(outer inner_v2) with
  | Ok p ->
      let src = [| 7; 100; 200; 9 |] in
      let dst = Array.make 5 (-1) in
      Typlan.apply p ~read:(Array.get src) ~write:(Array.set dst);
      Alcotest.(check (array int)) "nested fields follow names"
        [| 7; 200; 100; 0; 9 |] dst
  | Error e -> Alcotest.fail e

let test_plan_int_word_interchange () =
  let env = Ty.env_create () in
  match Typlan.plan ~src_env:env ~dst_env:env ~src:Ty.Int ~dst:Ty.Word with
  | Ok p -> Alcotest.(check bool) "int->long ok" true (Typlan.is_identity p)
  | Error e -> Alcotest.fail e

(* Property: for struct-to-struct plans, every word of the destination is
   written exactly once (copies and zeroes partition the destination). *)
let arbitrary_fields =
  let field_ty =
    QCheck.Gen.oneofl [ Ty.Int; Ty.Word; Ty.Ptr Ty.Int; Ty.Char_array 16; Ty.Void_ptr ]
  in
  QCheck.Gen.(
    list_size (int_range 1 8)
      (pair (oneofl [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ]) field_ty))

let dedup_fields fields =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (n, _) -> if Hashtbl.mem seen n then false else (Hashtbl.add seen n (); true))
    fields

let prop_plan_covers_destination =
  QCheck.Test.make ~name:"struct plan writes every destination word exactly once" ~count:200
    (QCheck.make (QCheck.Gen.pair arbitrary_fields arbitrary_fields))
    (fun (f1, f2) ->
      let f1 = dedup_fields f1 and f2 = dedup_fields f2 in
      QCheck.assume (f1 <> [] && f2 <> []);
      let env = Ty.env_create () in
      let src = Ty.Struct { sname = "s"; fields = f1 } in
      let dst = Ty.Struct { sname = "s"; fields = f2 } in
      match Typlan.plan ~src_env:env ~dst_env:env ~src ~dst with
      | Error _ -> true (* rejection is fine; we only check accepted plans *)
      | Ok p ->
          let writes = Array.make p.Typlan.dst_words 0 in
          Typlan.apply p
            ~read:(fun _ -> 0)
            ~write:(fun i _ -> writes.(i) <- writes.(i) + 1);
          Array.for_all (( = ) 1) writes)

(* ------------------------------------------------------------------ *)
(* Symtab *)

let build_symtab () =
  let env = env_v1 () in
  let sp = Aspace.create () in
  let st =
    Symtab.build env sp
      ~data:[ ("b", Ty.Char_array 8); ("list", Ty.Named "l_t"); ("conf", Ty.Ptr Ty.Void_ptr) ]
      ~funcs:[ "main"; "server_init"; "server_get_event" ]
      ~strings:[ "welcome"; "config.path" ]
  in
  (env, sp, st)

let test_symtab_layout_order () =
  let _, _, st = build_symtab () in
  let b = Symtab.lookup st "b" in
  let list = Symtab.lookup st "list" in
  let conf = Symtab.lookup st "conf" in
  Alcotest.(check int) "b is 1 word" 1 b.Symtab.words;
  Alcotest.(check int) "list follows b" (Addr.add_words b.Symtab.addr 1) list.Symtab.addr;
  Alcotest.(check int) "conf follows list" (Addr.add_words list.Symtab.addr 2) conf.Symtab.addr

let test_symtab_lookup_missing () =
  let _, _, st = build_symtab () in
  Alcotest.(check bool) "missing is None" true (Symtab.lookup_opt st "nope" = None)

let test_symtab_func_roundtrip () =
  let _, _, st = build_symtab () in
  let a = Symtab.func_addr st "server_init" in
  Alcotest.(check (option string)) "reverse lookup" (Some "server_init")
    (Symtab.func_name_of_addr st a);
  Alcotest.(check bool) "distinct funcs distinct addrs" true
    (Symtab.func_addr st "main" <> Symtab.func_addr st "server_get_event")

let test_symtab_strings_interned () =
  let _, sp, st = build_symtab () in
  let a = Symtab.string_addr st "welcome" in
  Alcotest.(check string) "string readable" "welcome" (Access.read_string sp a)

let test_symtab_find_by_addr () =
  let _, _, st = build_symtab () in
  let list = Symtab.lookup st "list" in
  (match Symtab.find_data_by_addr st (Addr.add_words list.Symtab.addr 1) with
  | Some e -> Alcotest.(check string) "interior addr resolves" "list" e.Symtab.name
  | None -> Alcotest.fail "interior address should resolve");
  Alcotest.(check bool) "unrelated addr" true (Symtab.find_data_by_addr st 0x100 = None)

let test_symtab_regions_are_static () =
  let _, _, st = build_symtab () in
  List.iter
    (fun r -> Alcotest.(check bool) "static kind" true (r.Region.kind = Region.Static))
    [ Symtab.data_region st; Symtab.rodata_region st; Symtab.text_region st ]

(* ------------------------------------------------------------------ *)
(* Access *)

let test_access_field_roundtrip () =
  let env, sp, st = build_symtab () in
  let list = Symtab.lookup st "list" in
  Access.write_field sp env ~base:list.Symtab.addr (Ty.Named "l_t") "value" 42;
  Alcotest.(check int) "field roundtrip" 42
    (Access.read_field sp env ~base:list.Symtab.addr (Ty.Named "l_t") "value")

let test_access_elem_addr () =
  let env = env_v1 () in
  let base = 0x10000 in
  let a2 = Access.elem_addr env ~base (Ty.Array (Ty.Named "l_t", 4)) 2 in
  Alcotest.(check int) "element 2 of 2-word elems" (Addr.add_words base 4) a2

let test_access_write_bytes_tracked () =
  let _, sp, st = build_symtab () in
  let b = Symtab.lookup st "b" in
  Aspace.epoch_reset sp ~name:"startup";
  Access.write_bytes sp b.Symtab.addr "hi";
  Alcotest.(check bool) "server writes dirty the page" true
    (Aspace.epoch_page_dirty sp ~name:"startup" b.Symtab.addr);
  Alcotest.(check string) "bytes readable" "hi" (Access.read_string sp b.Symtab.addr)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mcr_types"
    [
      ( "sizeof-offsets",
        [
          Alcotest.test_case "scalars" `Quick test_sizeof_scalars;
          Alcotest.test_case "structs" `Quick test_sizeof_struct;
          Alcotest.test_case "union max" `Quick test_sizeof_union_max;
          Alcotest.test_case "recursion rejected" `Quick test_sizeof_recursive_rejected;
          Alcotest.test_case "field offsets" `Quick test_field_offsets;
          Alcotest.test_case "field type" `Quick test_field_ty;
          Alcotest.test_case "resolve cycle rejected" `Quick test_resolve_cycle_rejected;
        ] );
      ( "slots",
        [
          Alcotest.test_case "list node" `Quick test_slots_list_node;
          Alcotest.test_case "char array opaque" `Quick test_slots_char_array_opaque;
          Alcotest.test_case "word opaque by default" `Quick test_slots_word_opaque_by_default;
          Alcotest.test_case "word precise under policy" `Quick test_slots_word_precise_policy;
          Alcotest.test_case "union opaque" `Quick test_slots_union_opaque;
          Alcotest.test_case "nested struct" `Quick test_slots_nested;
          Alcotest.test_case "array expansion" `Quick test_slots_array_expansion;
          Alcotest.test_case "encoded pointer" `Quick test_slots_encoded_ptr;
          Alcotest.test_case "length matches sizeof" `Quick test_slots_length_matches_sizeof;
          Alcotest.test_case "contains opaque" `Quick test_contains_opaque;
        ] );
      ( "equality",
        [
          Alcotest.test_case "same type" `Quick test_equal_same_type;
          Alcotest.test_case "added field detected" `Quick test_equal_detects_added_field;
          Alcotest.test_case "recursion terminates" `Quick test_equal_recursive_terminates;
          Alcotest.test_case "scalar kinds differ" `Quick test_equal_scalar_kinds_differ;
        ] );
      ( "typlan",
        [
          Alcotest.test_case "identity" `Quick test_plan_identity;
          Alcotest.test_case "figure 2 added field" `Quick test_plan_figure2_added_field;
          Alcotest.test_case "removed field" `Quick test_plan_removed_field;
          Alcotest.test_case "reordered fields" `Quick test_plan_reordered_fields;
          Alcotest.test_case "char array resize" `Quick test_plan_char_array_grow_shrink;
          Alcotest.test_case "array resize + transform" `Quick test_plan_array_resize_with_elem_transform;
          Alcotest.test_case "scalar/pointer confusion rejected" `Quick
            test_plan_scalar_pointer_confusion_rejected;
          Alcotest.test_case "union change rejected" `Quick test_plan_union_change_rejected;
          Alcotest.test_case "encoded mask change rejected" `Quick
            test_plan_encoded_mask_change_rejected;
          Alcotest.test_case "int/long interchange" `Quick test_plan_int_word_interchange;
          Alcotest.test_case "nested struct evolution" `Quick test_plan_nested_struct_evolution;
          qt prop_plan_covers_destination;
        ] );
      ( "symtab",
        [
          Alcotest.test_case "layout order" `Quick test_symtab_layout_order;
          Alcotest.test_case "missing symbol" `Quick test_symtab_lookup_missing;
          Alcotest.test_case "function roundtrip" `Quick test_symtab_func_roundtrip;
          Alcotest.test_case "strings interned" `Quick test_symtab_strings_interned;
          Alcotest.test_case "find by address" `Quick test_symtab_find_by_addr;
          Alcotest.test_case "regions are static" `Quick test_symtab_regions_are_static;
        ] );
      ( "access",
        [
          Alcotest.test_case "field roundtrip" `Quick test_access_field_roundtrip;
          Alcotest.test_case "element address" `Quick test_access_elem_addr;
          Alcotest.test_case "write bytes tracked" `Quick test_access_write_bytes_tracked;
        ] );
    ]
