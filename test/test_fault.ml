(* The rollback guarantee, proved by fault injection: every injection point
   in lib/fault, driven both deterministically (one test per rollback
   reason, pinning the exact reason string, the trace event and the
   per-reason metric) and property-based (seeded single-fault plans across
   all four evaluated servers: after any injected failure the old version
   still serves, its memory is byte-identical, no new-version process or
   descriptor leaks, and a subsequent clean update commits). *)

module K = Mcr_simos.Kernel
module S = Mcr_simos.Sysdefs
module P = Mcr_program.Progdef
module Manager = Mcr_core.Manager
module Policy = Mcr_core.Policy
module Ctl = Mcr_core.Ctl
module Fault = Mcr_fault.Fault
module Trace = Mcr_obs.Trace
module Metrics = Mcr_obs.Metrics
module Testbed = Mcr_workloads.Testbed
module Listing1 = Mcr_servers.Listing1
module Aspace = Mcr_vmem.Aspace
module Addr = Mcr_vmem.Addr

let drive kernel pred =
  ignore (K.run_until kernel ~max_ns:(K.clock_ns kernel + 120_000_000_000) pred)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let rpc kernel ~port data =
  let reply = ref None in
  let p =
    K.spawn_process kernel ~image:(K.Fresh_image (Aspace.create ())) ~name:"rpc" ~entry:"main"
      ~main:(fun _ ->
        let rec connect n =
          match K.syscall (S.Connect { port }) with
          | S.Ok_fd fd -> Some fd
          | S.Err S.ECONNREFUSED when n > 0 ->
              ignore (K.syscall (S.Nanosleep { ns = 1_000_000 }));
              connect (n - 1)
          | _ -> None
        in
        match connect 100 with
        | None -> reply := Some "NOCONN"
        | Some fd -> (
            ignore (K.syscall (S.Write { fd; data }));
            match K.syscall (S.Read { fd; max = 65536; nonblock = false }) with
            | S.Ok_data d -> reply := Some d
            | _ -> reply := Some "NOREAD"))
      ()
  in
  drive kernel (fun () -> not (K.alive p));
  Option.value !reply ~default:"NONE"

let launch_listing1 ?trace kernel =
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let m = Manager.launch kernel ?trace (Listing1.v1 ()) in
  assert (Manager.wait_startup m ());
  ignore (rpc kernel ~port:Listing1.port "GET /");
  m

(* One faulted update against Listing1, returning the rollback reason. *)
let faulted_reason ?quiesce_deadline_ns ?update_deadline_ns fault =
  let kernel = K.create () in
  let m = launch_listing1 kernel in
  let policy =
    Policy.default
    |> Policy.with_deadlines ~quiesce_ns:quiesce_deadline_ns ~update_ns:update_deadline_ns
  in
  let m2, report = Manager.update m ~policy ~fault (Listing1.v2 ()) in
  Alcotest.(check bool) "rolled back" false report.Manager.success;
  Alcotest.(check bool) "same manager" true (m == m2);
  (* the guarantee: the old version still serves, with its state intact *)
  let r = rpc kernel ~port:Listing1.port "GET /" in
  Alcotest.(check bool) "old version serves after rollback" true (contains r "v1:2");
  (* and a subsequent clean update commits *)
  let _, clean = Manager.update m2 (Listing1.v2 ()) in
  Alcotest.(check bool) "clean update succeeds afterwards" true clean.Manager.success;
  Option.fold ~none:"<none>" ~some:Mcr_error.to_string report.Manager.failure

(* ------------------------------------------------------------------ *)
(* One test per rollback reason *)

let test_quiesce_deadline () =
  (* the acceptance scenario: a thread that refuses to quiesce used to hang
     the update inside the 5 s budget and fail with a generic convergence
     error; with a deadline it is a first-class, observable rollback *)
  let kernel = K.create () in
  let trace = Trace.create ~clock:(fun () -> K.clock_ns kernel) () in
  let m = launch_listing1 ~trace kernel in
  let before = K.clock_ns kernel in
  let m2, report =
    Manager.update m
      ~policy:(Policy.with_quiesce_deadline_ns (Some 500_000_000) Policy.default)
      ~fault:(Fault.script [ Fault.Quiesce_refusal ])
      (Listing1.v2 ())
  in
  Alcotest.(check bool) "rolled back" false report.Manager.success;
  Alcotest.(check (option string)) "exact reason" (Some "quiescence deadline exceeded")
    (Option.map Mcr_error.to_string report.Manager.failure);
  (* the deadline actually fired: the update took ~the deadline, not the 5 s
     convergence budget *)
  Alcotest.(check bool) "deadline bounded the stage" true
    (K.clock_ns kernel - before < 2_000_000_000);
  (* observable in the trace ... *)
  let fail_events =
    List.filter (fun (e : Trace.event) -> e.Trace.name = "update.fail") (Trace.events trace)
  in
  Alcotest.(check int) "one update.fail instant" 1 (List.length fail_events);
  Alcotest.(check (option string)) "trace carries the reason"
    (Some "quiescence deadline exceeded")
    (List.assoc_opt "reason" (List.hd fail_events).Trace.args);
  Alcotest.(check bool) "fault.inject instant traced" true
    (List.exists
       (fun (e : Trace.event) -> e.Trace.name = "fault.inject" && e.Trace.cat = "fault")
       (Trace.events trace));
  (* ... and in the metrics snapshot attached to the report *)
  Alcotest.(check (option int)) "per-reason counter" (Some 1)
    (Metrics.find_counter report.Manager.metrics
       "mcr_rollback_reason_quiescence_deadline_exceeded_total");
  Alcotest.(check (option int)) "rollbacks counter" (Some 1)
    (Metrics.find_counter report.Manager.metrics "mcr_update_rollbacks_total");
  (* the old version serves and the next update is clean *)
  let r = rpc kernel ~port:Listing1.port "GET /" in
  Alcotest.(check bool) "old version serves" true (contains r "v1:2");
  let _, clean = Manager.update m2 (Listing1.v2 ()) in
  Alcotest.(check bool) "clean update succeeds afterwards" true clean.Manager.success

let test_refusal_without_deadline_is_legacy_reason () =
  (* no deadline set: the built-in budget still expires eventually and the
     pre-existing reason string is preserved *)
  Alcotest.(check string) "legacy reason" "quiescence did not converge"
    (faulted_reason (Fault.script [ Fault.Quiesce_refusal ]))

let test_update_deadline_during_quiesce () =
  Alcotest.(check string) "whole-update deadline wins" "update deadline exceeded"
    (faulted_reason ~quiesce_deadline_ns:2_000_000_000 ~update_deadline_ns:400_000_000
       (Fault.script [ Fault.Quiesce_refusal ]))

let test_replay_conflict () =
  Alcotest.(check string) "reinit conflict reason" "mutable reinitialization conflict"
    (faulted_reason (Fault.script [ Fault.Replay_conflict ]))

let test_startup_crash () =
  Alcotest.(check string) "crash reason" "new version crashed during startup"
    (faulted_reason (Fault.script [ Fault.Startup_crash ]))

let test_startup_hang () =
  Alcotest.(check string) "startup hang reason"
    "new version did not reach a quiescent startup"
    (faulted_reason (Fault.script [ Fault.Startup_hang ]))

let test_reinit_hang () =
  Alcotest.(check string) "reinit hang reason" "reinit handlers did not quiesce"
    (faulted_reason (Fault.script [ Fault.Reinit_hang ]))

let test_transfer_conflict () =
  Alcotest.(check string) "transfer conflict reason" "mutable tracing conflict"
    (faulted_reason (Fault.script [ Fault.Transfer_conflict ]))

let test_likely_misclassification () =
  (* the injected spurious likely pointer pins a relocatable object; the
     transfer must conflict on it rather than silently move it *)
  let kernel = K.create () in
  let m = launch_listing1 kernel in
  let fault = Fault.script [ Fault.Likely_misclassification ] in
  let _, report = Manager.update m ~fault (Listing1.v2 ()) in
  Alcotest.(check bool) "rolled back" false report.Manager.success;
  Alcotest.(check (option string)) "tracing conflict" (Some "mutable tracing conflict")
    (Option.map Mcr_error.to_string report.Manager.failure);
  Alcotest.(check bool) "conflict names the injected pin" true
    (List.exists
       (fun c ->
         contains (Format.asprintf "%a" Mcr_trace.Transfer.pp_conflict c) "injected")
       report.Manager.transfer_conflicts);
  let r = rpc kernel ~port:Listing1.port "GET /" in
  Alcotest.(check bool) "old version serves" true (contains r "v1:2")

let test_retry_recovers_from_transient_fault () =
  (* the plan is shared across attempts: attempt 1 consumes the injected
     conflict and rolls back, attempt 2 runs clean and commits *)
  let kernel = K.create () in
  let m = launch_listing1 kernel in
  let fault = Fault.script [ Fault.Replay_conflict ] in
  let policy = Policy.with_retries ~backoff_ns:10_000_000 2 Policy.default in
  let _, report = Manager.update m ~policy ~fault (Listing1.v2 ()) in
  Alcotest.(check bool) "retry commits" true report.Manager.success;
  Alcotest.(check bool) "fault did fire on the way" true
    (List.mem "replay_conflict" (Fault.fired fault));
  Alcotest.(check (option int)) "retry counted" (Some 1)
    (Metrics.find_counter report.Manager.metrics "mcr_update_retries_total");
  Alcotest.(check (option int)) "one rollback behind the commit" (Some 1)
    (Metrics.find_counter report.Manager.metrics "mcr_update_rollbacks_total");
  let r = rpc kernel ~port:Listing1.port "GET /" in
  Alcotest.(check bool) "new version serves" true (contains r "v2:2")

let test_policy_over_ctl () =
  (* deadlines/retry/fault knobs are settable over the control socket and
     picked up by the next update *)
  let kernel = K.create () in
  let m = launch_listing1 kernel in
  let path = Manager.ctl_path m in
  let replies = ref [] in
  let ask req =
    req kernel ~path ~on_reply:(fun r -> replies := r :: !replies);
    drive kernel (fun () -> !replies <> [])
  in
  ask (Ctl.request_deadlines ~quiesce_ns:(Some 400_000_000) ~update_ns:None);
  Alcotest.(check (list string)) "DEADLINES ok" [ "OK" ] !replies;
  replies := [];
  ask (Ctl.request_retry ~retries:0 ~backoff_ns:1_000_000);
  Alcotest.(check (list string)) "RETRY ok" [ "OK" ] !replies;
  replies := [];
  ask (Ctl.request_fault ~seed:None);
  Alcotest.(check (list string)) "FAULT OFF ok" [ "OK" ] !replies;
  (* the policy deadline applies without per-call arguments *)
  let m2, report =
    Manager.update m ~fault:(Fault.script [ Fault.Quiesce_refusal ]) (Listing1.v2 ())
  in
  Alcotest.(check (option string)) "policy deadline applied"
    (Some "quiescence deadline exceeded")
    (Option.map Mcr_error.to_string report.Manager.failure);
  (* malformed policy commands answer with usage, not silence *)
  replies := [];
  ask (fun kernel ~path ~on_reply -> Ctl.request kernel ~path ~command:"DEADLINES x" ~on_reply);
  Alcotest.(check bool) "usage error" true (contains (List.hd !replies) "ERR usage");
  ignore m2

let test_stale_ctl_socket_relaunch () =
  (* regression: a crashed program leaves its control-socket file behind;
     relaunching used to die with EADDRINUSE inside the controller *)
  let kernel = K.create () in
  K.fs_write kernel ~path:Listing1.config_path "welcome=hi";
  let m = Manager.launch kernel (Listing1.v1 ()) in
  assert (Manager.wait_startup m ());
  let path = Manager.ctl_path m in
  List.iter
    (fun (im : P.image) -> if K.alive im.P.i_proc then K.kill_process kernel im.P.i_proc ~status:137)
    (Manager.images m);
  drive kernel (fun () -> K.quiescent_system kernel);
  (* the socket file is still there (unclean exit) *)
  let m2 = Manager.launch kernel (Listing1.v1 ()) in
  Alcotest.(check string) "same ctl path" path (Manager.ctl_path m2);
  assert (Manager.wait_startup m2 ());
  let reply = ref None in
  Ctl.request_stats kernel ~path ~on_reply:(fun r -> reply := Some r);
  drive kernel (fun () -> !reply <> None);
  match !reply with
  | Some r ->
      Alcotest.(check bool) "relaunched controller answers STATS" true
        (contains r "mcr_updates_total")
  | None -> Alcotest.fail "no STATS reply after relaunch"

let test_syscall_fault_invariant () =
  (* ENOSPC/ECONNRESET analogs during new-version startup: whatever the
     outcome, the atomic invariant holds *)
  List.iter
    (fun (call, err) ->
      let kernel = K.create () in
      let m = launch_listing1 kernel in
      let fault = Fault.script [ Fault.Syscall_failure { call; err; after = 0 } ] in
      let m2, report = Manager.update m ~fault (Listing1.v2 ()) in
      if report.Manager.success then begin
        let r = rpc kernel ~port:Listing1.port "GET /" in
        Alcotest.(check bool)
          (Printf.sprintf "%s fault: new version serves" call)
          true (contains r "v2:2");
        ignore m2
      end
      else begin
        Alcotest.(check bool)
          (Printf.sprintf "%s fault: same manager" call)
          true (m == m2);
        let r = rpc kernel ~port:Listing1.port "GET /" in
        Alcotest.(check bool)
          (Printf.sprintf "%s fault: old version serves" call)
          true (contains r "v1:2")
      end)
    [ ("open_at", S.ENOSPC); ("write", S.ENOSPC); ("read", S.ECONNRESET);
      ("accept", S.ECONNRESET) ]

(* ------------------------------------------------------------------ *)
(* The property: seeded faults across all four servers *)

(* Byte-identity digest of an address space: every mapped word of every
   region folded into a polynomial hash. *)
let aspace_digest asp =
  List.fold_left
    (fun h (r : Mcr_vmem.Region.t) ->
      let words = r.Mcr_vmem.Region.size / Addr.word_size in
      let rec go h i =
        if i >= words then h
        else
          let a = Addr.add_words r.Mcr_vmem.Region.base i in
          let h =
            if Aspace.is_mapped_word asp a then (h * 1_000_003) + Aspace.read_word asp a
            else h * 31
          in
          go h (i + 1)
      in
      go h 0)
    17 (Aspace.regions asp)

let alive_pids kernel =
  List.filter_map (fun p -> if K.alive p then Some (K.pid p) else None) (K.procs kernel)
  |> List.sort compare

let prop_rollback_guarantee =
  let servers = Array.of_list Testbed.all in
  QCheck.Test.make ~name:"injected faults never break the old version" ~count:112
    QCheck.(pair (int_range 0 (Array.length servers - 1)) (int_range 0 1_000_000))
    (fun (si, seed) ->
      let server = servers.(si) in
      let kernel = K.create () in
      let m = Testbed.launch kernel server in
      let old_root = Manager.root_proc m in
      let old_image = Manager.root_image m in
      let pre_digest = aspace_digest old_image.P.i_aspace in
      let pre_pids = alive_pids kernel in
      let pre_fds = K.fds old_root in
      let fault = Fault.of_seed seed in
      let m2, report =
        Manager.update m
          ~policy:
            (Policy.with_deadlines ~quiesce_ns:(Some 3_000_000_000)
               ~update_ns:(Some 15_000_000_000) Policy.default)
          ~fault
          (Testbed.final_version server)
      in
      if report.Manager.success then
        (* faults can be absorbed (e.g. a result map masks an injected
           syscall error, or the faulted call never runs): then the update
           must have fully committed *)
        K.alive (Manager.root_proc m2)
      else begin
        (* rollback: old version intact — byte-identical memory, same
           processes, same descriptors, nothing leaked *)
        let ok_alive = K.alive old_root in
        let ok_digest = aspace_digest old_image.P.i_aspace = pre_digest in
        let ok_fds = K.fds old_root = pre_fds in
        let post_pids = alive_pids kernel in
        let ok_no_leak = List.for_all (fun p -> List.mem p pre_pids) post_pids in
        (* and the failure is recoverable: a clean update commits *)
        let _, clean = Manager.update m2 (Testbed.final_version server) in
        if not (ok_alive && ok_digest && ok_fds && ok_no_leak && clean.Manager.success)
        then
          QCheck.Test.fail_reportf
            "server=%s seed=%d reason=%s alive=%b digest=%b fds=%b leak=%b clean=%b"
            (Testbed.name server) seed
            (Option.fold ~none:"<none>" ~some:Mcr_error.to_string report.Manager.failure)
            ok_alive ok_digest ok_fds (not ok_no_leak) clean.Manager.success
        else true
      end)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mcr_fault"
    [
      ( "reasons",
        [
          Alcotest.test_case "quiescence deadline exceeded" `Quick test_quiesce_deadline;
          Alcotest.test_case "refusal without deadline keeps legacy reason" `Slow
            test_refusal_without_deadline_is_legacy_reason;
          Alcotest.test_case "update deadline exceeded" `Quick
            test_update_deadline_during_quiesce;
          Alcotest.test_case "mutable reinitialization conflict" `Quick test_replay_conflict;
          Alcotest.test_case "new version crashed during startup" `Quick test_startup_crash;
          Alcotest.test_case "non-quiescent startup" `Quick test_startup_hang;
          Alcotest.test_case "reinit handlers did not quiesce" `Quick test_reinit_hang;
          Alcotest.test_case "mutable tracing conflict" `Quick test_transfer_conflict;
          Alcotest.test_case "likely-pointer misclassification" `Quick
            test_likely_misclassification;
          Alcotest.test_case "syscall faults keep the invariant" `Quick
            test_syscall_fault_invariant;
        ] );
      ( "policy",
        [
          Alcotest.test_case "retry recovers from transient fault" `Quick
            test_retry_recovers_from_transient_fault;
          Alcotest.test_case "knobs over the control socket" `Quick test_policy_over_ctl;
          Alcotest.test_case "stale ctl socket relaunch" `Quick test_stale_ctl_socket_relaunch;
        ] );
      ("property", [ qt prop_rollback_guarantee ]);
    ]
