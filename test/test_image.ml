(* Persistent checkpoint images: codec round-trips, golden corruption
   rejection, restart-from-file under load, ctl SAVE/RESTORE, fleet
   migration/failover and offline replay of recorded updates. *)

module K = Mcr_simos.Kernel
module P = Mcr_program.Progdef
module Manager = Mcr_core.Manager
module Policy = Mcr_core.Policy
module Ctl = Mcr_core.Ctl
module Fault = Mcr_fault.Fault
module Image = Mcr_image.Image
module Fnv = Mcr_util.Fnv
module Metrics = Mcr_obs.Metrics
module Testbed = Mcr_workloads.Testbed
module Bench_result = Mcr_workloads.Bench_result
module Timetravel = Mcr_workloads.Timetravel
module Fleet = Mcr_fleet.Fleet

let drive kernel pred =
  ignore (K.run_until kernel ~max_ns:(K.clock_ns kernel + 30_000_000_000) pred)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let error = Alcotest.testable Image.pp_error ( = )

let tmp_image name =
  let path = Filename.temp_file ("mcr_" ^ name) ".mcrimg" in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let tmp_dir name =
  let path = Filename.temp_file ("mcr_" ^ name) ".d" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

(* A small loaded instance: launch, run the paper benchmark so heaps,
   pools and page-dirty state are non-trivial, then save. *)
let loaded_save server name =
  let kernel = K.create () in
  let m = Testbed.launch kernel server in
  ignore (Testbed.benchmark kernel server ~scale:3_000 ());
  let path = tmp_image name in
  match Manager.save_image m ~path with
  | Error e -> Alcotest.fail e
  | Ok img -> (kernel, m, path, img)

(* {1 Codec} *)

let test_roundtrip () =
  let _kernel, _m, path, img = loaded_save Testbed.Httpd "roundtrip" in
  match Image.read ~path with
  | Error e -> Alcotest.failf "read back: %s" (Image.error_to_string e)
  | Ok img' ->
      Alcotest.(check string) "prog survives" (Image.prog img) (Image.prog img');
      Alcotest.(check string) "version survives" (Image.version_tag img)
        (Image.version_tag img');
      Alcotest.(check int) "fingerprint survives" (Image.fingerprint img)
        (Image.fingerprint img');
      Alcotest.(check int) "proc count survives" (Image.proc_count img)
        (Image.proc_count img');
      Alcotest.(check int) "clock survives" (Image.clock_ns img) (Image.clock_ns img');
      Alcotest.(check string) "re-encode is byte-identical" (Image.encode img)
        (Image.encode img')

let test_layout_names_sections () =
  let _kernel, _m, _path, img = loaded_save Testbed.Vsftpd "layout" in
  let tags = List.map (fun (tag, _, _) -> tag) (Image.layout img) in
  Alcotest.(check bool) "meta section present" true (List.mem "META" tags);
  Alcotest.(check bool) "proc sections present" true (List.mem "PROC" tags);
  Alcotest.(check int) "one PROC per process" (Image.proc_count img)
    (List.length (List.filter (( = ) "PROC") tags))

(* {1 Golden corruption: every broken image is rejected with a typed error
   naming the failing section.}

   Layout under test (all integers 64-bit LE): magic at 0, format version
   at 8, section count at 16, first section (META) tag at 24, its name
   string ["meta"] at 28 (length) / 36 (bytes), its payload length at 40,
   payload at 48 — which itself starts with the program-name string, so
   byte 56 is the first program-name byte. *)

let flip s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
  Bytes.to_string b

let set_byte s i v =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr v);
  Bytes.to_string b

let check_rejected name expected data =
  match Image.decode data with
  | Ok _ -> Alcotest.failf "%s: corrupted image decoded successfully" name
  | Error e -> Alcotest.check error name expected e

let test_corruption_goldens () =
  let _kernel, _m, _path, img = loaded_save Testbed.Httpd "goldens" in
  let enc = Image.encode img in
  let len = String.length enc in
  check_rejected "flipped magic" Image.Bad_magic (flip enc 0);
  check_rejected "empty file" (Image.Truncated { section = "header" }) "";
  check_rejected "bumped format version"
    (Image.Version_skew { found = 2; expected = 1 })
    (set_byte enc 8 2);
  (* version skew outranks every hash: a future-format image is reported
     as such even though its trailer no longer matches *)
  check_rejected "version skew beats hash check"
    (Image.Version_skew { found = 3; expected = 1 })
    (set_byte (flip enc 56) 8 3);
  check_rejected "chopped trailer"
    (Image.Truncated { section = "trailer" })
    (String.sub enc 0 (len - 1));
  check_rejected "cut mid-section"
    (Image.Truncated { section = "meta" })
    (String.sub enc 0 40);
  check_rejected "bit flip inside meta payload"
    (Image.Hash_mismatch { section = "meta" })
    (flip enc 56);
  check_rejected "bit flip in trailer"
    (Image.Hash_mismatch { section = "image" })
    (flip enc (len - 1))

let u64_le n =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int n);
  Bytes.to_string b

let w_str s = u64_le (String.length s) ^ s

let test_unknown_section_skipped () =
  (* forward compatibility: a same-format image carrying a section tag we
     do not know decodes fine — the unknown section is skipped *)
  let _kernel, _m, _path, img = loaded_save Testbed.Httpd "forward" in
  let enc = Image.encode img in
  let body = String.sub enc 0 (String.length enc - 8) in
  let count = Int64.to_int (Bytes.get_int64_le (Bytes.of_string enc) 16) in
  let body = Bytes.of_string body in
  Bytes.blit_string (u64_le (count + 1)) 0 body 16 8;
  let payload = "opaque bytes from the future" in
  let extra = "ZZZZ" ^ w_str "future" ^ w_str payload ^ u64_le (Fnv.string payload) in
  let body = Bytes.to_string body ^ extra in
  match Image.decode (body ^ u64_le (Fnv.string body)) with
  | Error e ->
      Alcotest.failf "unknown section rejected: %s" (Image.error_to_string e)
  | Ok img' ->
      Alcotest.(check int) "payload intact" (Image.fingerprint img)
        (Image.fingerprint img');
      Alcotest.(check int) "known procs intact" (Image.proc_count img)
        (Image.proc_count img')

(* {1 Restart-from-file} *)

let test_restore_under_load () =
  (* the acceptance scenario: nginx saved under load (benchmark traffic
     plus held-open connections) restores into a brand-new kernel with a
     byte-identical root fingerprint, resumes serving, and a subsequent
     live update still commits *)
  let kernel = K.create () in
  let m = Testbed.launch kernel Testbed.Nginx in
  let _holders = Testbed.open_holders kernel Testbed.Nginx ~n:4 in
  ignore (Testbed.benchmark kernel Testbed.Nginx ~scale:3_000 ());
  let path = tmp_image "nginx_load" in
  let img =
    match Manager.save_image m ~path with
    | Error e -> Alcotest.fail e
    | Ok img -> img
  in
  match Timetravel.restore img with
  | Error e -> Alcotest.fail e
  | Ok (k2, m2, report) ->
      Alcotest.(check bool) "root paired" true (report.Image.paired_procs >= 1);
      Alcotest.(check int) "restored fingerprint is byte-identical"
        (Image.fingerprint img)
        (Image.aspace_fingerprint ~prog:(Image.prog img)
           (K.aspace (Manager.root_proc m2)));
      let r = Testbed.benchmark k2 Testbed.Nginx ~scale:3_000 () in
      Alcotest.(check int) "restored instance serves without errors" 0
        r.Bench_result.errors;
      Alcotest.(check bool) "restored instance completes requests" true
        (r.Bench_result.requests > 0);
      let _m3, rep = Manager.update m2 (Testbed.final_version Testbed.Nginx) in
      Alcotest.(check bool) "update after restore commits" true rep.Manager.success

let test_install_refuses_wrong_program () =
  let _k, _m, _path, img = loaded_save Testbed.Httpd "mismatch" in
  let kernel = K.create () in
  let m = Testbed.launch kernel Testbed.Nginx in
  match Manager.restore_image m img with
  | Ok _ -> Alcotest.fail "httpd image restored over nginx"
  | Error e ->
      Alcotest.(check bool) "error names both programs" true
        (contains e (Testbed.base_version Testbed.Httpd).P.prog
        && contains e (Testbed.base_version Testbed.Nginx).P.prog)

(* {1 Control socket} *)

let test_ctl_save_restore () =
  let kernel = K.create () in
  let m = Testbed.launch kernel Testbed.Httpd in
  let ctl = Manager.ctl_path m in
  let path = tmp_image "ctl" in
  let reply = ref None in
  Ctl.exec kernel ~path:ctl (Ctl.Save path) ~on_result:(fun r -> reply := Some r) ();
  drive kernel (fun () -> !reply <> None);
  let fp =
    match !reply with
    | Some (Ok s) -> int_of_string s
    | Some (Error e) -> Alcotest.failf "SAVE refused: %a" Ctl.pp_error e
    | None -> Alcotest.fail "no SAVE reply"
  in
  (* serve more traffic so live state drifts away from the image... *)
  ignore (Testbed.benchmark kernel Testbed.Httpd ~scale:3_000 ());
  (* ...then restore in place over the control socket *)
  let reply = ref None in
  Ctl.exec kernel ~path:ctl (Ctl.Restore path) ~on_result:(fun r -> reply := Some r) ();
  drive kernel (fun () -> !reply <> None);
  (match !reply with
  | Some (Ok s) ->
      Alcotest.(check bool) "RESTORE reply carries the fingerprint" true
        (contains s (Printf.sprintf "fingerprint=%d" fp))
  | Some (Error e) -> Alcotest.failf "RESTORE refused: %a" Ctl.pp_error e
  | None -> Alcotest.fail "no RESTORE reply");
  Alcotest.(check int) "live state wound back to the saved fingerprint" fp
    (Image.aspace_fingerprint
       ~prog:(Testbed.base_version Testbed.Httpd).P.prog
       (K.aspace (Manager.root_proc m)))

let test_ctl_save_bad_path () =
  let kernel = K.create () in
  let m = Testbed.launch kernel Testbed.Httpd in
  let reply = ref None in
  Ctl.exec kernel ~path:(Manager.ctl_path m)
    (Ctl.Save "/nonexistent-dir/x.mcrimg")
    ~on_result:(fun r -> reply := Some r)
    ();
  drive kernel (fun () -> !reply <> None);
  match !reply with
  | Some (Error _) -> ()
  | Some (Ok s) -> Alcotest.failf "SAVE to unwritable path answered OK %s" s
  | None -> Alcotest.fail "no reply"

(* {1 Property: save -> restore preserves state and behaviour} *)

let prop_save_restore_identity =
  QCheck.Test.make ~count:4 ~name:"image.save_restore_identity"
    (QCheck.oneofl Testbed.all)
    (fun server ->
      let kernel = K.create () in
      let m = Testbed.launch kernel server in
      ignore (Testbed.benchmark kernel server ~scale:2_000 ());
      let path = tmp_image "prop" in
      let img =
        match Manager.save_image m ~path with
        | Error e -> QCheck.Test.fail_reportf "save: %s" e
        | Ok img -> img
      in
      match Timetravel.restore img with
      | Error e -> QCheck.Test.fail_reportf "restore: %s" e
      | Ok (k2, m2, _) ->
          let fp =
            Image.aspace_fingerprint ~prog:(Image.prog img)
              (K.aspace (Manager.root_proc m2))
          in
          if fp <> Image.fingerprint img then
            QCheck.Test.fail_reportf "fingerprint drift: %d <> %d" fp
              (Image.fingerprint img);
          (* the original (released after the save quiesce) and the restored
             copy hold identical state, so the same workload must get
             identical answers from both *)
          let a = Testbed.benchmark kernel server ~scale:2_000 () in
          let b = Testbed.benchmark k2 server ~scale:2_000 () in
          a.Bench_result.requests = b.Bench_result.requests
          && a.Bench_result.errors = b.Bench_result.errors
          && a.Bench_result.bytes = b.Bench_result.bytes)

(* {1 Fleet: migration and standby failover} *)

let test_fleet_migrate () =
  let fleet = Fleet.of_testbed Testbed.Nginx ~n:2 in
  let path = tmp_image "migrate" in
  (match Fleet.migrate_instance fleet 0 ~path with
  | Error e -> Alcotest.fail e
  | Ok fp ->
      Alcotest.(check int) "replacement carries the shipped state" fp
        (Fleet.image_fingerprint fleet 0));
  Alcotest.(check bool) "migrated instance serves" true (Fleet.healthy fleet 0);
  Fleet.refresh_serving fleet;
  Alcotest.(check int) "both instances back in rotation" 2 (Fleet.serving fleet);
  Alcotest.(check (option int)) "migration counted"
    (Some 1)
    (Metrics.find_counter (Fleet.metrics_snapshot fleet) "mcr_fleet_migrations_total")

let test_fleet_standby_failover () =
  let fleet = Fleet.of_testbed Testbed.Httpd ~n:2 in
  let sb =
    match Fleet.arm_standby fleet 1 with
    | Error e -> Alcotest.fail e
    | Ok sb -> sb
  in
  (* arming is non-disruptive: the primary keeps serving afterwards *)
  Alcotest.(check bool) "primary serves after arming" true (Fleet.healthy fleet 1);
  (match Fleet.failover_instance fleet 0 sb with
  | Ok _ -> Alcotest.fail "standby for instance 1 accepted by instance 0"
  | Error _ -> ());
  (match Fleet.failover_instance fleet 1 sb with
  | Error e -> Alcotest.fail e
  | Ok fp ->
      Alcotest.(check int) "failover reports the armed fingerprint"
        (Fleet.standby_fingerprint sb) fp;
      Alcotest.(check int) "standby carries the armed state" fp
        (Fleet.image_fingerprint fleet 1));
  Alcotest.(check bool) "standby serves" true (Fleet.healthy fleet 1);
  Alcotest.(check (option int)) "failover counted"
    (Some 1)
    (Metrics.find_counter (Fleet.metrics_snapshot fleet) "mcr_fleet_failovers_total")

(* {1 Replay: the image written at quiesce re-runs the recorded update} *)

(* A seed whose injected fault fires after the quiescent point (so the
   checkpoint image is still captured) yet forces a rollback. The seed
   rides inside the image's policy text, so the replay re-arms it. *)
let rollback_seed =
  let rec find s =
    if s > 10_000 then Alcotest.fail "no replay-conflict seed below 10000"
    else
      let f = Fault.of_seed s in
      if Fault.fires f Fault.Replay_conflict || Fault.fires f Fault.Transfer_conflict
      then s
      else find (s + 1)
  in
  lazy (find 1)

let written_image dir =
  match Sys.readdir dir with
  | [| file |] -> Filename.concat dir file
  | files -> Alcotest.failf "expected one image in %s, found %d" dir (Array.length files)

let test_replay_reproduces_rollback () =
  let dir = tmp_dir "replay_rb" in
  let kernel = K.create () in
  let m = Testbed.launch kernel Testbed.Httpd in
  ignore (Testbed.benchmark kernel Testbed.Httpd ~scale:2_000 ());
  let policy =
    Policy.default
    |> Policy.with_image_dir (Some dir)
    |> Policy.with_fault_seed (Some (Lazy.force rollback_seed))
  in
  let _m2, report = Manager.update m ~policy (Testbed.final_version Testbed.Httpd) in
  Alcotest.(check bool) "injected fault rolled the update back" false
    report.Manager.success;
  let path = written_image dir in
  match Timetravel.replay_path ~path with
  | Error e -> Alcotest.fail e
  | Ok v ->
      Alcotest.(check bool) "recorded verdict is a rollback" false
        v.Timetravel.v_expected_success;
      Alcotest.(check bool) "offline re-run reproduces reason and stage" true
        v.Timetravel.v_reproduced

let test_replay_reproduces_commit () =
  let dir = tmp_dir "replay_ok" in
  let kernel = K.create () in
  let m = Testbed.launch kernel Testbed.Vsftpd in
  ignore (Testbed.benchmark kernel Testbed.Vsftpd ~scale:2_000 ());
  let policy = Policy.default |> Policy.with_image_dir (Some dir) in
  let _m2, report = Manager.update m ~policy (Testbed.final_version Testbed.Vsftpd) in
  Alcotest.(check bool) "update committed" true report.Manager.success;
  let path = written_image dir in
  match Timetravel.replay_path ~path with
  | Error e -> Alcotest.fail e
  | Ok v ->
      Alcotest.(check bool) "recorded verdict is a commit" true
        v.Timetravel.v_expected_success;
      Alcotest.(check bool) "offline re-run commits too" true
        v.Timetravel.v_reproduced

let test_replay_requires_flight () =
  (* a manually saved image (no update attempt) has nothing to replay *)
  let _k, _m, _path, img = loaded_save Testbed.Httpd "noflight" in
  match Timetravel.replay img with
  | Ok _ -> Alcotest.fail "replay of a flightless image succeeded"
  | Error e -> Alcotest.(check bool) "error says why" true (contains e "flight")

let () =
  Alcotest.run "image"
    [
      ( "codec",
        [
          Alcotest.test_case "save -> read round-trip" `Quick test_roundtrip;
          Alcotest.test_case "layout names sections" `Quick test_layout_names_sections;
          Alcotest.test_case "corruption goldens" `Quick test_corruption_goldens;
          Alcotest.test_case "unknown section skipped" `Quick test_unknown_section_skipped;
        ] );
      ( "restore",
        [
          Alcotest.test_case "nginx under load restores and updates" `Quick
            test_restore_under_load;
          Alcotest.test_case "wrong program refused" `Quick
            test_install_refuses_wrong_program;
          QCheck_alcotest.to_alcotest prop_save_restore_identity;
        ] );
      ( "ctl",
        [
          Alcotest.test_case "SAVE/RESTORE over the socket" `Quick test_ctl_save_restore;
          Alcotest.test_case "SAVE to unwritable path errs" `Quick test_ctl_save_bad_path;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "migrate carries state across kernels" `Quick
            test_fleet_migrate;
          Alcotest.test_case "standby failover" `Quick test_fleet_standby_failover;
        ] );
      ( "replay",
        [
          Alcotest.test_case "rollback reproduced offline" `Quick
            test_replay_reproduces_rollback;
          Alcotest.test_case "commit reproduced offline" `Quick
            test_replay_reproduces_commit;
          Alcotest.test_case "flightless image refused" `Quick test_replay_requires_flight;
        ] );
    ]
